package reorder

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/plan"
)

func TestExplainAnalyzeObserved(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	ob := NewObserver(8)
	rep, err := ExplainAnalyzeObserved(context.Background(), q, db, 1, Limits{}, ob)
	if err != nil {
		t.Fatal(err)
	}

	// One flight record, stamped and fully populated.
	if ob.Flight.Len() != 1 {
		t.Fatalf("flight records = %d, want 1", ob.Flight.Len())
	}
	rec := ob.Flight.Snapshot()[0]
	if rec.Query != plan.Key(q) {
		t.Errorf("record query = %q, want %q", rec.Query, plan.Key(q))
	}
	node, _ := rep.Plan()
	if rec.PlanKey != plan.Key(node) {
		t.Errorf("record plan key = %q, want %q", rec.PlanKey, plan.Key(node))
	}
	if rec.Hash == 0 || rec.Seq != 1 || rec.DurNs <= 0 {
		t.Errorf("record not stamped: hash=%d seq=%d dur=%d", rec.Hash, rec.Seq, rec.DurNs)
	}
	if rec.RowsOut != rep.RowsOut {
		t.Errorf("record rows = %d, report rows = %d", rec.RowsOut, rep.RowsOut)
	}
	if len(rec.Ops) != plan.CountNodes(node) {
		t.Errorf("record has %d op rows, plan has %d nodes", len(rec.Ops), plan.CountNodes(node))
	}
	opTypes := map[string]bool{}
	for _, op := range rec.Ops {
		if op.Key == "" || op.Op == "" {
			t.Errorf("op row missing key/op: %+v", op)
		}
		if op.QError < 1 {
			t.Errorf("op %s q-error %v < 1", op.Op, op.QError)
		}
		opTypes[op.Op] = true
	}
	if !opTypes["scan"] {
		t.Errorf("no scan op row; ops = %v", opTypes)
	}
	// Phase timings include the optimizer phases and execution.
	names := map[string]bool{}
	for _, p := range rec.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"explore", "cost", "execute"} {
		if !names[want] {
			t.Errorf("record phases missing %q: %v", want, rec.Phases)
		}
	}
	// The counter subset carries optimizer provenance, not executor noise.
	if rec.Counters["optimizer.plans_enumerated"] == 0 {
		t.Errorf("record counters missing optimizer.plans_enumerated: %v", rec.Counters)
	}
	for name := range rec.Counters {
		if strings.HasPrefix(name, "executor.") {
			t.Errorf("executor counter %q leaked into the flight subset", name)
		}
	}

	// The aggregate registry got the merged run, including per-op-type
	// q-error histograms.
	agg := ob.Registry.Snapshot()
	if agg.Counters["optimizer.plans_enumerated"] != int64(rep.Considered) {
		t.Errorf("aggregate plans_enumerated = %d, want %d",
			agg.Counters["optimizer.plans_enumerated"], rep.Considered)
	}
	qerrSeen := 0
	for name, h := range agg.Histograms {
		base, labels := obs.SplitLabels(name)
		if base != "executor.qerror_milli" {
			continue
		}
		qerrSeen++
		if !strings.HasPrefix(labels, `op="`) {
			t.Errorf("q-error histogram %q not labeled by op", name)
		}
		// milli-q-error is >= 1000 by construction (q-error >= 1).
		if h.Count == 0 || h.Min < 1000 {
			t.Errorf("q-error histogram %q: count=%d min=%d", name, h.Count, h.Min)
		}
	}
	if qerrSeen == 0 {
		t.Fatal("no per-op q-error histograms in the aggregate registry")
	}

	// The report's own registry stays private: a second observed run
	// doubles the aggregate but not the report snapshot.
	rep2, err := ExplainAnalyzeObserved(context.Background(), q, db, 1, Limits{}, ob)
	if err != nil {
		t.Fatal(err)
	}
	if ob.Flight.Len() != 2 {
		t.Fatalf("flight records after second run = %d", ob.Flight.Len())
	}
	if got := ob.Registry.Snapshot().Counters["optimizer.plans_enumerated"]; got != int64(rep.Considered+rep2.Considered) {
		t.Errorf("aggregate after two runs = %d, want %d", got, rep.Considered+rep2.Considered)
	}
	if rep2.Metrics.Counters["optimizer.plans_enumerated"] != int64(rep2.Considered) {
		t.Error("second report's private metrics polluted by the aggregate")
	}
}

func TestExplainAnalyzeObservedNilObserver(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	if _, err := ExplainAnalyzeObserved(context.Background(), datagen.SupplierQuery(), db, 1, Limits{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObserverRecordsFailedRuns(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	ob := NewObserver(4)
	// A one-row execution budget aborts the instrumented run.
	_, err := ExplainAnalyzeObserved(context.Background(), q, db, 1, Limits{MaxRows: 1}, ob)
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if ob.Flight.Len() != 1 {
		t.Fatalf("failed run not recorded: len = %d", ob.Flight.Len())
	}
	rec := ob.Flight.Snapshot()[0]
	if rec.Error == "" {
		t.Fatal("record has no error")
	}
	trips := strings.Join(rec.BudgetTrips, ",")
	if !strings.Contains(trips, "rows") {
		t.Errorf("budget trips = %q, want rows", trips)
	}
}

// TestObserverScrapeWhileExecuting scrapes /metrics and /debug/queries
// while observed queries run concurrently; every response must parse.
// Meaningful under -race.
func TestObserverScrapeWhileExecuting(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	ob := NewObserver(16)
	srv := httptest.NewServer(ob.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var runners sync.WaitGroup
	for w := 0; w < 2; w++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ExplainAnalyzeObserved(context.Background(), q, db, 1, Limits{}, ob); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		_, perr := obs.ParseExposition(resp.Body)
		resp.Body.Close()
		if perr != nil {
			close(stop)
			runners.Wait()
			t.Fatalf("scrape %d failed strict parse: %v", i, perr)
		}

		resp, err = http.Get(srv.URL + "/debug/queries")
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Capacity int               `json:"capacity"`
			Records  []json.RawMessage `json:"records"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if derr != nil {
			close(stop)
			runners.Wait()
			t.Fatalf("queries dump %d not valid JSON: %v", i, derr)
		}
		if dump.Capacity != 16 || len(dump.Records) > 16 {
			close(stop)
			runners.Wait()
			t.Fatalf("dump %d out of bounds: cap=%d records=%d", i, dump.Capacity, len(dump.Records))
		}
	}
	close(stop)
	runners.Wait()
}

// TestAnalyzeJSONQuantilesAndSpans pins the -statsjson satellite: the
// JSON report carries histogram quantiles (P50/P95/P99), occupied
// buckets and the span tree, and all of them survive a round trip.
func TestAnalyzeJSONQuantilesAndSpans(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	rep, err := ExplainAnalyze(datagen.SupplierQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := rep.Metrics.Histograms["executor.op_ns"]
	if !ok {
		t.Fatal("report missing executor.op_ns histogram")
	}
	if h.P50 <= 0 || h.P95 < h.P50 || h.P99 < h.P95 {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d", h.P50, h.P95, h.P99)
	}
	if len(h.Buckets) == 0 {
		t.Fatal("histogram snapshot has no buckets")
	}
	if len(rep.Spans) == 0 {
		t.Fatal("report has no spans")
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAnalyzeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	h2 := back.Metrics.Histograms["executor.op_ns"]
	if h2.P50 != h.P50 || h2.P95 != h.P95 || h2.P99 != h.P99 {
		t.Errorf("quantiles changed across round trip: %+v vs %+v", h, h2)
	}
	if len(h2.Buckets) != len(h.Buckets) {
		t.Errorf("buckets lost: %d vs %d", len(h.Buckets), len(h2.Buckets))
	}
	if len(back.Spans) != len(rep.Spans) {
		t.Errorf("spans lost: %d vs %d", len(rep.Spans), len(back.Spans))
	}
	// And the raw JSON literally carries the fields -statsjson consumers
	// read.
	for _, want := range []string{`"p95"`, `"buckets"`, `"spans"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("statsjson output missing %s", want)
		}
	}
}
