// Package reorder is a Go implementation of "SQL Query Optimization:
// Reordering for a General Class of Queries" (Goel & Iyer, SIGMOD
// 1996): exhaustive reordering of SQL queries containing joins,
// one-sided and full outer joins, and GROUP BY aggregations, built on
// the paper's generalized selection operator σ*.
//
// The package is a facade over the internal subsystems:
//
//   - internal/algebra — the operators themselves (σ, σ*, ⋈, →, ←, ↔,
//     π_{X,f(Y)}, MGOJ) over in-memory relations;
//   - internal/plan — logical plans with reference evaluation;
//   - internal/hypergraph — the query hypergraph with preserved sets
//     and conflict sets (Definition 3.3);
//   - internal/assoctree — association-tree enumeration
//     (Definition 3.2 vs the [BHAR95a] baseline);
//   - internal/core — the association identities (1)–(8), Theorem 1
//     predicate break-up, group-by push-up and correlated-COUNT
//     unnesting;
//   - internal/optimizer — cost-based selection over the equivalence
//     class;
//   - internal/executor — hash-based physical operators;
//   - internal/sql — a SQL front end for the paper's query class.
//
// Quick start:
//
//	db := reorder.Database{"t": ..., "s": ...}
//	res, err := reorder.OptimizeSQL("select ... from t ...", db)
//	rows, err := reorder.Execute(res.Best.Plan, db)
package reorder

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/assoctree"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/guard"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/simplify"
	"repro/internal/sql"
	"repro/internal/stats"
)

// Database binds relation names to in-memory extensions.
type Database = plan.Database

// Relation is an in-memory relation (schema plus tuples).
type Relation = relation.Relation

// Node is a logical query plan.
type Node = plan.Node

// Result is an optimization report: best plan, original plan, and the
// whole costed equivalence class.
type Result = optimizer.Result

// Parse parses a SQL query of the supported subset and lowers it to a
// logical plan against db's schemas. Views (derived tables) are
// merged, aggregated views become generalized projections, and
// correlated COUNT subqueries are unnested into the paper's
// outer-join + group-by + generalized-selection form.
func Parse(query string, db Database) (Node, error) {
	return sql.ParseAndLower(query, db)
}

// Optimize enumerates the equivalence class of q under the paper's
// identities (predicate break-up with Theorem 1 compensation, outer
// join reassociation, MGOJ introduction, aggregation push-up), costs
// every plan against statistics computed from db, and returns the
// cheapest.
func Optimize(q Node, db Database) (*Result, error) {
	est := stats.NewEstimator(stats.FromDatabase(db))
	return optimizer.New(est).Optimize(q, db)
}

// OptimizeBaseline is Optimize restricted to the pre-paper rule set:
// no generalized selection, no predicate break-up, no aggregation
// push-up. Comparing with Optimize reproduces the paper's headline
// claims.
func OptimizeBaseline(q Node, db Database) (*Result, error) {
	est := stats.NewEstimator(stats.FromDatabase(db))
	return optimizer.NewBaseline(est).Optimize(q, db)
}

// Limits caps an optimization or execution: MaxExprs bounds the
// number of plan expressions the enumerator may admit (tripping it
// degrades gracefully to the best plan found, see Result.Degraded),
// MaxRows and MaxBytes bound the intermediate rows an execution may
// materialize (tripping them aborts with a guard.ErrBudget error).
// The zero value is unlimited.
type Limits = guard.Limits

// ErrCancelled is returned (wrapped) by the budgeted entry points
// when ctx is cancelled or its deadline expires. Test with
// guard.IsCancelled or errors.Is.
var ErrCancelled = guard.ErrCancelled

// OptimizeBudget is Optimize under resource governance: ctx
// cancellation and deadline are observed at the optimizer's wave
// boundaries (returning ErrCancelled), and tripping l.MaxExprs
// degrades to a best-effort plan tagged in Result.Degraded instead of
// enumerating the full class.
func OptimizeBudget(ctx context.Context, q Node, db Database, l Limits) (*Result, error) {
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := optimizer.New(est)
	o.Opts.Budget = guard.New(ctx, l, nil)
	return o.Optimize(q, db)
}

// ExecuteBudget is Execute under resource governance: cancellation
// and the MaxRows/MaxBytes intermediate-result limits are checked at
// operator and batch boundaries, and panics inside the executor come
// back as *guard.PanicError instead of unwinding.
func ExecuteBudget(ctx context.Context, q Node, db Database, l Limits) (*Relation, error) {
	return executor.RunGuarded(q, db, guard.New(ctx, l, nil))
}

// OptimizeSQL is Parse followed by Optimize.
func OptimizeSQL(query string, db Database) (*Result, error) {
	q, err := Parse(query, db)
	if err != nil {
		return nil, err
	}
	return Optimize(q, db)
}

// Execute runs a plan with the hash-based physical executor.
func Execute(q Node, db Database) (*Relation, error) {
	return executor.Run(q, db)
}

// ExecuteSQL parses, optimizes and executes a query.
func ExecuteSQL(query string, db Database) (*Relation, error) {
	res, err := OptimizeSQL(query, db)
	if err != nil {
		return nil, err
	}
	return Execute(res.Best.Plan, db)
}

// Explain renders an optimization result.
func Explain(res *Result) string { return optimizer.Explain(res) }

// ExplainPlan renders a plan as an indented operator tree.
func ExplainPlan(q Node) string { return plan.Indent(q) }

// Enumerate returns the equivalence class of q under the paper's full
// rule set, capped at maxPlans (0 = default).
func Enumerate(q Node, maxPlans int) []Node {
	return core.Saturate(q, core.SaturateOptions{MaxPlans: maxPlans})
}

// JoinOrders lists the distinct association-tree shapes of a set of
// plans.
func JoinOrders(plans []Node) []string { return core.JoinOrders(plans) }

// Hypergraph builds the query hypergraph of a pure join tree, as in
// the paper's Figure 1.
func Hypergraph(q Node) (*hypergraph.Hypergraph, error) {
	return hypergraph.FromPlan(q)
}

// AssociationTreeCounts returns the number of association trees of
// the query's hypergraph under the paper's Definition 3.2 (with
// hyperedge break-up) and under the [BHAR95a] baseline (without).
func AssociationTreeCounts(q Node) (broken, strict uint64, err error) {
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		return 0, 0, err
	}
	be, err := assoctree.NewEnumerator(h, hypergraph.Broken)
	if err != nil {
		return 0, 0, err
	}
	se, err := assoctree.NewEnumerator(h, hypergraph.Strict)
	if err != nil {
		return 0, 0, err
	}
	return be.Count(), se.Count(), nil
}

// Equivalent evaluates both plans against db and reports whether they
// produce the same relation — the ground-truth equivalence check.
func Equivalent(a, b Node, db Database) (bool, error) {
	return plan.Equivalent(a, b, db)
}

// Simplify applies outer join simplification ([BHAR95c]): outer joins
// whose NULL-padded rows are rejected by null-intolerant predicates
// upstream are downgraded (full outer to one-sided, one-sided to
// inner), which both shrinks intermediate results and widens the
// reordering space. Optimize applies it automatically.
func Simplify(q Node) Node { return simplify.Simplify(q) }

// OptimizeTrees runs the paper's own Section 4 pipeline instead of
// rule saturation: enumerate the association trees of the query
// hypergraph (Definition 3.2), assign operators and σ* compensations
// to each (core.AssignOperators), and return the cheapest.
func OptimizeTrees(q Node, db Database) (*Result, error) {
	est := stats.NewEstimator(stats.FromDatabase(db))
	return optimizer.New(est).OptimizeTrees(q, db)
}

// OptimizeDP runs a System-R dynamic program over the hypergraph for
// pure inner-join queries (run Simplify first for queries whose outer
// joins are all removable).
func OptimizeDP(q Node, db Database) (*Result, error) {
	est := stats.NewEstimator(stats.FromDatabase(db))
	return optimizer.New(est).OptimizeDP(q, db)
}

// LoadCSVDir loads every *.csv file in dir as a base relation named
// after the file (without extension). See relation.FromCSV for the
// format and type inference.
func LoadCSVDir(dir string) (Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := Database{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		rel, err := relation.FromCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("reorder: no .csv files in %s", dir)
	}
	return db, nil
}

// EncodePlan serializes a plan to JSON for caching or external
// tooling; DecodePlan inverts it.
func EncodePlan(q Node) ([]byte, error) { return plan.EncodeJSON(q) }

// DecodePlan deserializes a plan encoded by EncodePlan.
func DecodePlan(data []byte) (Node, error) { return plan.DecodeJSON(data) }

// PlanDOT renders a plan as Graphviz DOT.
func PlanDOT(q Node) string { return plan.DOT(q) }
