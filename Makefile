GO ?= go

.PHONY: all build vet test race race-par race-exec race-vec race-order race-adapt spill-smoke faults smoke obs serve-smoke bench bench-all check clean

all: vet build test

# The full pre-merge gauntlet: static checks, build, the tier-1 test
# suite, the fault-injection suite under the race detector, the
# observability smoke, the low-budget spill smoke, the query-service
# smoke, the order-property suite, the adaptive/feedback suite, and
# the benchmark regression gates.
check: vet build test faults obs spill-smoke serve-smoke race-order race-adapt bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the executor has a parallel
# probe, obs is updated concurrently, and saturation/costing run
# worker pools).
race:
	$(GO) test -race ./...

# Focused race run for the parallel optimizer paths: saturation
# worker-pool equivalence, the fingerprint cache, the shared cost
# session, and the memo engine's saturation-equality and
# worker-determinism property suite.
race-par:
	$(GO) test -race -run 'TestParallelSaturation|TestSaturateWorkers|TestFingerprintConcurrent|TestSessionConcurrent|TestOptimizeWorkers|TestMemo|TestHandlerConcurrentScrape|TestRecorderConcurrent|TestObserverScrapeWhileExecuting' \
		./internal/core/ ./internal/plan/ ./internal/stats/ ./internal/optimizer/ ./internal/obs/ ./internal/obs/flight/ .

# Focused race run for the partitioned executor: the grace-partitioned
# join equivalence/determinism suite and the forced-collision tests.
race-exec:
	$(GO) test -race -run 'TestPartitioned|TestJoinExecParallel|TestRunParallel|TestColliding|TestHashJoinCollision|TestGroupByCollisions|TestDistinctAggCollisions|TestGenSelMGOJCollisions' \
		./internal/executor/

# Focused race run for the vectorized engine and the spill path: the
# Run ≡ RunParallel ≡ RunVectorized property suite across batch sizes,
# the columnar batch kernels, and the grace spill equivalence /
# determinism / recursion tests.
race-vec:
	$(GO) test -race -run 'TestVectorized|TestExecutorSpill|TestBatch|TestVec' \
		./internal/executor/ ./internal/batch/

# Focused race run for the order-aware layer: the merge-join and
# streaming-aggregation equivalence suites (vs their hash twins,
# across Run/RunInstrumented/RunParallel at several worker counts),
# the order-detection/propagation pins, the top-K sort, and the
# optimizer's order property suite — including the order-free
# memo-vs-saturation identical-best-cost pin at any worker count.
race-order:
	$(GO) test -race -run 'TestMergeJoin|TestStreamAgg|TestOrder|TestSortRowsTopK|TestDeliveredOrder|TestDetectOrder|TestRequalifyOrder' \
		./internal/executor/ ./internal/plan/ ./internal/optimizer/

# Focused race run for the feedback/adaptive layer: the feedback
# store's decay/clamp/bounds properties and concurrent hammering, the
# plan cache's singleflight refresh, the mid-query adaptive join pins
# (build/probe swap ≡ static across engines and worker counts, spill
# escalation), and the service-level drift → replan convergence loop.
race-adapt:
	$(GO) test -race -count=1 ./internal/stats/feedback/
	$(GO) test -race -run 'TestRefresh|TestEntriesSnapshot' ./internal/plancache/
	$(GO) test -race -run 'TestAdapt' ./internal/executor/
	$(GO) test -race -run 'TestServiceFeedback|TestServiceCacheDebug' .

# Low-MaxBytes spill smoke: the vectorized join must escape to the
# disk-backed grace join and complete — with spill counters moving —
# under a byte budget the in-memory build cannot fit.
spill-smoke:
	$(GO) test -run 'TestVectorizedSpills|TestExecutorSpillCompletesWhereInMemoryTrips' \
		./internal/executor/

# Resource-governance and fault-injection suite under the race
# detector: every registered guard point armed to error and to panic
# across optimizer engines, executor entry points and datagen;
# cancellation, budget-trip and worker-drain properties; the
# untripped-budget determinism gates; and the cmd/reorder exit-code
# contract.
faults:
	$(GO) test -race -run 'TestOptimizerFault|TestOptimizerCancelled|TestOptimizerBudget|TestExecutor|TestGuarded|TestGuard|TestBudget|TestSafely|TestRecover|TestFault|TestValidate|TestRun|TestAdaptFault' \
		./internal/guard/ ./internal/optimizer/ ./internal/executor/ ./internal/datagen/ ./internal/plan/ ./cmd/reorder/
	$(GO) test -race -run 'TestFault|TestBuildPanicContained|TestBuildErrorNotCached|TestServiceFault|TestRefreshFault|TestFeedbackFaults|TestServiceFeedbackFault' \
		./internal/plancache/ ./internal/stats/feedback/ .

# Quick observability smoke: the concurrent registry/tracer tests.
smoke:
	$(GO) test -run TestObs -race ./internal/obs/...

# Observability v2 smoke under the race detector: the full obs and
# flight-recorder suites (exposition writer + strict parser, label
# vectors, diff/merge, handler, ring bounds), the root observer
# (flight records, q-error accounting, scrape-while-executing) and
# the cmd/reorder -metrics-addr endpoint test.
obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestExplainAnalyzeObserved|TestObserver|TestAnalyzeJSONQuantilesAndSpans' .
	$(GO) test -race -run 'TestRunMetricsAddr' ./cmd/reorder/

# Benchmark gates: benchopt measures saturation (serial vs parallel),
# the memo engine vs saturation end-to-end, and the cost memo, writes
# BENCH_optimizer.json, and fails if the parallel engine is slower
# than the serial one — or the memo engine slower than saturation —
# on the canned workloads; benchexec measures the physical operators (equi-join
# serial vs grace-partitioned, hash aggregation, distinct projection),
# writes BENCH_executor.json, and fails if the partitioned join loses
# to the serial hash join on the large equi-join workload.
bench:
	$(GO) run ./cmd/benchopt -out BENCH_optimizer.json
	$(GO) run ./cmd/benchexec -out BENCH_executor.json
	$(GO) run ./cmd/benchserve -out BENCH_serve.json

# Query-service smoke under the race detector: the plan cache
# (singleflight, eviction, fault containment), the serving layer
# (one optimization per template, typed shed/deadline/budget errors,
# admission faults), the HTTP surface, the daemon boot/drain cycle —
# then a short benchserve burst with the same gates as the full run
# (cache-hit speedup, typed shed at 2x saturation, goroutine drain,
# /metrics scrape).
serve-smoke:
	$(GO) test -race -count=1 ./internal/plancache/ ./cmd/reorderd/
	$(GO) test -race -count=1 -run 'TestService|TestHandler' .
	$(GO) run -race ./cmd/benchserve -short -out BENCH_serve_smoke.json

# The full go test benchmark sweep (root experiment benches included).
bench-all:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
