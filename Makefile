GO ?= go

.PHONY: all build vet test race smoke bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the executor has a parallel
# probe and obs is updated concurrently).
race:
	$(GO) test -race ./...

# Quick observability smoke: the concurrent registry/tracer tests.
smoke:
	$(GO) test -run TestObs -race ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
