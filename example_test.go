package reorder_test

import (
	"fmt"
	"log"

	reorder "repro"
	"repro/internal/relation"
	"repro/internal/value"
)

func exampleDB() reorder.Database {
	emp := relation.NewBuilder("emp", "name", "dept", "salary").
		Row(value.NewString("ada"), value.NewInt(1), value.NewInt(120)).
		Row(value.NewString("grace"), value.NewInt(2), value.NewInt(130)).
		Row(value.NewString("alan"), value.Null, value.NewInt(95)).
		Relation()
	dept := relation.NewBuilder("dept", "id", "dname").
		Row(value.NewInt(1), value.NewString("research")).
		Row(value.NewInt(2), value.NewString("systems")).
		Relation()
	return reorder.Database{"emp": emp, "dept": dept}
}

// ExampleExecuteSQL parses, optimizes and runs a query in one call.
func ExampleExecuteSQL() {
	db := exampleDB()
	rows, err := reorder.ExecuteSQL(
		`select emp.name, dept.dname
		 from emp left outer join dept on emp.dept = dept.id
		 order by name`, db)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < rows.Len(); i++ {
		t := rows.Tuple(i)
		fmt.Printf("%s %s\n", t[0], t[1])
	}
	// Output:
	// ada research
	// alan -
	// grace systems
}

// ExampleOptimize shows cost-based plan selection and the identity
// chain that produced the winner.
func ExampleOptimize() {
	db := exampleDB()
	q, err := reorder.Parse(
		`select emp.name from emp join dept on emp.dept = dept.id
		 where dept.dname = 'systems'`, db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reorder.Optimize(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("considered %d plans; best filters before joining: %v\n",
		res.Considered, res.Best.Cost < res.Original.Cost)
	// The memo engine counts admitted group expressions, which include
	// shared subplans the old exhaustive enumeration never listed.
	// Output:
	// considered 9 plans; best filters before joining: true
}

// ExampleAssociationTreeCounts reproduces the paper's plan-space
// widening on Example 3.2's query Q4.
func ExampleAssociationTreeCounts() {
	db := exampleDB()
	_ = db
	q, err := reorder.Parse(
		`select t.a from t left outer join s on t.a = s.a`,
		reorder.Database{
			"t": relation.NewBuilder("t", "a").Relation(),
			"s": relation.NewBuilder("s", "a").Relation(),
		})
	if err != nil {
		log.Fatal(err)
	}
	// Strip the final projection: the enumerators work on join trees.
	broken, strict, err := reorder.AssociationTreeCounts(q.Children()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Definition 3.2 trees: %d, [BHAR95a] trees: %d\n", broken, strict)
	// Output:
	// Definition 3.2 trees: 1, [BHAR95a] trees: 1
}
