package reorder

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler serves the query API over HTTP:
//
//	POST /query         {"sql": "...", ...}  → Response JSON
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/queries flight-recorder dump
//	GET  /debug/cache   plan-cache stats
//
// Errors return {"error":{"code":...,"message":...}} with the status
// from the serving taxonomy (400 bad_query, 429 overloaded, 504
// deadline, 422 budget, 500 typed internal).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.ob.Handler())
	mux.Handle("/debug/queries", s.ob.Handler())
	mux.HandleFunc("/debug/cache", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.CacheDebug())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
			return
		}
		if req.SQL == "" {
			writeAPIError(w, http.StatusBadRequest, "bad_request", "missing \"sql\"")
			return
		}
		resp, err := s.Query(r.Context(), req)
		if err != nil {
			se := &ServeError{}
			if errors.As(err, &se) {
				writeAPIError(w, se.HTTPStatus, se.Code, se.Err.Error())
				return
			}
			writeAPIError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: apiErrorBody{Code: code, Message: msg}})
}
