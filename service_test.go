// Tests for the query-serving layer: one optimization per distinct
// template, correct rebinding per request, admission control with
// typed shed errors, tenant budgets, and the serve-path fault matrix.
package reorder

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/relation"
	"repro/internal/value"
)

// serveDB: t(a,b) with enough rows that joins do real work.
func serveDB() Database {
	tb := relation.NewBuilder("t", "a", "b")
	sb := relation.NewBuilder("s", "a", "c")
	for i := 0; i < 30; i++ {
		tb.Row(value.NewInt(int64(i%5)), value.NewInt(int64(i%7)))
		sb.Row(value.NewInt(int64(i%5)), value.NewInt(int64(100+i)))
	}
	return Database{"t": tb.Relation(), "s": sb.Relation()}
}

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = serveDB()
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceOneOptimizationPerTemplate is the cache's core claim:
// queries that differ only in constants share one optimization, and
// each still gets the rows its own constants select.
func TestServiceOneOptimizationPerTemplate(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx := context.Background()

	countRows := func(where int64) int {
		n := 0
		for i := 0; i < 30; i++ {
			if int64(i%5) == where {
				n++
			}
		}
		return n
	}

	for round, a := range []int64{0, 1, 2, 3, 1} {
		resp, err := svc.Query(ctx, Request{SQL: fmt.Sprintf("select b from t where a = %d", a)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		wantStatus := "hit"
		if round == 0 {
			wantStatus = "miss"
		}
		if resp.CacheStatus != wantStatus {
			t.Fatalf("round %d: cache=%s, want %s", round, resp.CacheStatus, wantStatus)
		}
		if resp.Params != 1 {
			t.Fatalf("round %d: params=%d, want 1", round, resp.Params)
		}
		if got, want := len(resp.Rows), countRows(a); got != want {
			t.Fatalf("round %d (a=%d): %d rows, want %d", round, a, got, want)
		}
	}

	st := svc.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses=%d: the template must be optimized exactly once", st.Misses)
	}
	if st.Hits != 4 {
		t.Fatalf("hits=%d, want 4", st.Hits)
	}

	// A different shape is a second template.
	if resp, err := svc.Query(ctx, Request{SQL: "select b from t where a < 2"}); err != nil {
		t.Fatal(err)
	} else if resp.CacheStatus != "miss" {
		t.Fatalf("new shape: cache=%s, want miss", resp.CacheStatus)
	}
	if st := svc.CacheStats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats after second shape = %+v", st)
	}
}

// TestServiceJoinTemplate: the cached template survives multi-relation
// optimization and rebinding changes answers, not plans.
func TestServiceJoinTemplate(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx := context.Background()

	q := func(a int64) *Response {
		resp, err := svc.Query(ctx, Request{
			SQL: fmt.Sprintf("select t.b, s.c from t, s where t.a = s.a and t.a = %d", a),
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first, second := q(1), q(2)
	if first.CacheStatus != "miss" || second.CacheStatus != "hit" {
		t.Fatalf("cache statuses: %s then %s", first.CacheStatus, second.CacheStatus)
	}
	// 6 t-rows × 6 s-rows match per residue class.
	if len(first.Rows) != 36 || len(second.Rows) != 36 {
		t.Fatalf("row counts: %d and %d, want 36 each", len(first.Rows), len(second.Rows))
	}
	if first.PlanKey == second.PlanKey {
		t.Fatal("bound plan keys must differ: they carry different constants")
	}
}

func TestServiceBadQuery(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	_, err := svc.Query(context.Background(), Request{SQL: "selec b from t"})
	se := &ServeError{}
	if !errors.As(err, &se) || se.Code != "bad_query" || se.HTTPStatus != 400 {
		t.Fatalf("want bad_query/400, got %v", err)
	}
	_, err = svc.Query(context.Background(), Request{SQL: "select b from missing_table"})
	if !errors.As(err, &se) || se.Code != "bad_query" {
		t.Fatalf("unknown relation: want bad_query, got %v", err)
	}
}

// TestServiceTenantBudget: a tenant with a tiny row budget gets a
// typed 422, and the default tenant is unaffected.
func TestServiceTenantBudget(t *testing.T) {
	svc := newTestService(t, ServiceConfig{
		Tenants: map[string]Limits{"starved": {MaxRows: 1}},
	})
	ctx := context.Background()
	q := "select t.b from t, s where t.a = s.a"

	se := &ServeError{}
	if _, err := svc.Query(ctx, Request{SQL: q, Tenant: "starved"}); !errors.As(err, &se) || se.Code != "budget" || se.HTTPStatus != 422 {
		t.Fatalf("starved tenant: want budget/422, got %v", err)
	}
	if _, err := svc.Query(ctx, Request{SQL: q}); err != nil {
		t.Fatalf("default tenant must succeed: %v", err)
	}
}

// TestServiceDeadline: an expired request context surfaces as the
// typed deadline error (504), not a raw context error.
func TestServiceDeadline(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := svc.Query(ctx, Request{SQL: "select b from t where a = 1"})
	se := &ServeError{}
	if !errors.As(err, &se) || se.Code != "deadline" || se.HTTPStatus != 504 {
		t.Fatalf("want deadline/504, got %v", err)
	}
}

// TestServiceShed: with one slot and one queue position, a third
// simultaneous request is rejected immediately with the typed overload
// error — and the queue drains once the blocker finishes.
func TestServiceShed(t *testing.T) {
	defer guard.Clear()
	svc := newTestService(t, ServiceConfig{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()
	q := "select b from t where a = 1"

	// Block the only slot inside execution via the operator fault
	// point (hook sleeps, then allows the run to proceed).
	release := make(chan struct{})
	var once sync.Once
	guard.Inject(guard.PointExecOperator, func(guard.Point) error {
		once.Do(func() { <-release })
		return nil
	})

	first := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, Request{SQL: q})
		first <- err
	}()
	// Wait until the first request holds the slot (inflight=1 and
	// queue observed); then enqueue the second.
	waitFor(t, func() bool { return svc.inflight.Load() == 1 })
	second := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, Request{SQL: q})
		second <- err
	}()
	waitFor(t, func() bool { return svc.inflight.Load() == 2 })

	// Third arrival: queue is full, must shed instantly.
	_, err := svc.Query(ctx, Request{SQL: q})
	se := &ServeError{}
	if !errors.As(err, &se) || se.Code != "overloaded" || se.HTTPStatus != 429 {
		t.Fatalf("want overloaded/429, got %v", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("shed error must wrap ErrOverloaded")
	}

	close(release)
	for i, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d wedged after shed", i)
		}
	}
	if n := svc.inflight.Load(); n != 0 {
		t.Fatalf("inflight=%d after drain, want 0", n)
	}
	if v := svc.ob.Registry.Counter("serve.shed").Value(); v != 1 {
		t.Fatalf("serve.shed=%d, want 1", v)
	}
}

// TestServiceQueueWaitReported: a queued request reports its queue
// time in the response and the guard histogram.
func TestServiceQueueWaitReported(t *testing.T) {
	defer guard.Clear()
	svc := newTestService(t, ServiceConfig{MaxConcurrent: 1, MaxQueue: 2})
	ctx := context.Background()

	release := make(chan struct{})
	var once sync.Once
	guard.Inject(guard.PointExecOperator, func(guard.Point) error {
		once.Do(func() { <-release })
		return nil
	})
	first := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, Request{SQL: "select b from t where a = 0"})
		first <- err
	}()
	waitFor(t, func() bool { return svc.inflight.Load() == 1 })

	done := make(chan *Response, 1)
	go func() {
		resp, err := svc.Query(ctx, Request{SQL: "select b from t where a = 1"})
		if err != nil {
			t.Error(err)
		}
		done <- resp
	}()
	waitFor(t, func() bool { return svc.inflight.Load() == 2 })
	time.Sleep(20 * time.Millisecond) // let the second request queue measurably
	close(release)

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	resp := <-done
	if resp == nil {
		t.Fatal("queued request failed")
	}
	if resp.QueuedNs < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("QueuedNs=%d, want >= 10ms of measured queue wait", resp.QueuedNs)
	}
	if c := svc.ob.Registry.Histogram("guard.queue_wait_milli").Count(); c == 0 {
		t.Fatal("queue-wait histogram recorded nothing")
	}
}

// TestServiceFaultAdmit covers the serve.admit fault matrix: injected
// error and panic both become typed client errors, consume no
// queue slot, and leave the service fully functional.
func TestServiceFaultAdmit(t *testing.T) {
	defer guard.Clear()
	svc := newTestService(t, ServiceConfig{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()
	q := "select b from t where a = 1"
	se := &ServeError{}

	guard.InjectError(guard.PointServeAdmit)
	if _, err := svc.Query(ctx, Request{SQL: q}); !errors.As(err, &se) || se.Code != "injected" {
		t.Fatalf("want injected, got %v", err)
	}

	guard.InjectPanic(guard.PointServeAdmit)
	if _, err := svc.Query(ctx, Request{SQL: q}); !errors.As(err, &se) || se.Code != "panic" {
		t.Fatalf("want contained panic, got %v", err)
	}

	if n := svc.inflight.Load(); n != 0 {
		t.Fatalf("admit faults leaked %d inflight slots", n)
	}
	guard.Clear()
	if _, err := svc.Query(ctx, Request{SQL: q}); err != nil {
		t.Fatalf("service wedged after admit faults: %v", err)
	}
}

// TestServiceFaultCache covers the plancache fault points end to end
// through the service: typed errors out, no cache pollution, full
// recovery.
func TestServiceFaultCache(t *testing.T) {
	defer guard.Clear()
	svc := newTestService(t, ServiceConfig{})
	ctx := context.Background()
	q := "select b from t where a = 1"
	se := &ServeError{}

	for _, p := range []guard.Point{guard.PointCacheLookup, guard.PointCacheInsert} {
		guard.InjectError(p)
		if _, err := svc.Query(ctx, Request{SQL: q}); !errors.As(err, &se) || se.Code != "injected" {
			t.Fatalf("%s error: want injected, got %v", p, err)
		}
		guard.InjectPanic(p)
		if _, err := svc.Query(ctx, Request{SQL: q}); !errors.As(err, &se) || (se.Code != "panic" && se.Code != "injected") {
			t.Fatalf("%s panic: want typed error, got %v", p, err)
		}
		guard.Clear()
	}
	if st := svc.CacheStats(); st.Entries != 0 {
		t.Fatalf("faulted builds cached %d entries", st.Entries)
	}
	resp, err := svc.Query(ctx, Request{SQL: q})
	if err != nil || resp.CacheStatus != "miss" {
		t.Fatalf("recovery: resp=%v err=%v", resp, err)
	}
	if resp, err = svc.Query(ctx, Request{SQL: q}); err != nil || resp.CacheStatus != "hit" {
		t.Fatalf("recovery hit: resp=%v err=%v", resp, err)
	}
}

// TestServiceConcurrent drives mixed templates from many goroutines
// under -race: every request gets its own constants' rows, and the
// cache converges to one entry per template.
func TestServiceConcurrent(t *testing.T) {
	svc := newTestService(t, ServiceConfig{MaxConcurrent: 4, MaxQueue: 64})
	ctx := context.Background()
	const goroutines = 8
	const rounds = 25

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a := int64((g + r) % 5)
				resp, err := svc.Query(ctx, Request{SQL: fmt.Sprintf("select b from t where a = %d", a)})
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp.Rows) != 6 {
					t.Errorf("a=%d: %d rows, want 6", a, len(resp.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := svc.CacheStats()
	if st.Entries != 1 {
		t.Fatalf("entries=%d: all requests share one template", st.Entries)
	}
	if st.Misses != 1 {
		t.Fatalf("misses=%d: the template must be optimized exactly once even under concurrency", st.Misses)
	}
	if st.Hits+st.Waits < goroutines*rounds-1 {
		t.Fatalf("hits=%d waits=%d: every non-building request must be served from the cache", st.Hits, st.Waits)
	}
}

// TestServiceBypass: cache bypass optimizes from scratch and leaves
// the cache untouched.
func TestServiceBypass(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		resp, err := svc.Query(ctx, Request{SQL: "select b from t where a = 1", Cache: "bypass"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheStatus != "bypass" {
			t.Fatalf("cache=%s, want bypass", resp.CacheStatus)
		}
		if resp.OptimizeNs == 0 {
			t.Fatal("bypass must run the optimizer every time")
		}
	}
	if st := svc.CacheStats(); st.Hits+st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("bypass touched the cache: %+v", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
