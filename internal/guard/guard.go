// Package guard is the engine's resource-governance layer: budgets
// (wall-clock deadlines via context.Context, enumeration-expression,
// intermediate-row and estimated-byte caps), the typed errors every
// long-running subsystem surfaces when a limit is hit, panic
// containment that converts a crashing rule application or operator
// into a diagnostic error, and a deterministic fault-injection
// harness the robustness test suites drive.
//
// Budgets are checked at cheap, deterministic points — saturation
// wave boundaries, memo explore/extract loops, executor batch and
// partition boundaries — so a guarded run that never trips a limit
// produces bit-identical results to an unguarded one. All methods are
// nil-safe: a nil *Budget never cancels, never trips, and costs one
// pointer comparison per check, which keeps the guarded paths within
// noise of the unguarded ones.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrCancelled is the sentinel every cancellation error wraps: the
// run's context was cancelled or its deadline expired. Match with
// errors.Is or IsCancelled.
var ErrCancelled = errors.New("guard: cancelled")

// Kind names one budgeted resource.
type Kind uint8

// The budgeted resource kinds.
const (
	// Exprs counts optimizer enumeration work: saturation plans
	// admitted and memo expressions (plus join-tree
	// materializations) admitted.
	Exprs Kind = iota
	// Rows counts intermediate tuples materialized by the executor.
	Rows
	// Bytes counts the executor's estimated intermediate bytes
	// (rows × columns × an assumed per-value width).
	Bytes

	numKinds
)

// String returns the kind's counter label.
func (k Kind) String() string {
	switch k {
	case Exprs:
		return "exprs"
	case Rows:
		return "rows"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrBudget reports a tripped budget: which resource, its limit, and
// the charge that crossed it. Match with IsBudget (or errors.As).
type ErrBudget struct {
	Kind  Kind
	Limit int64
	Used  int64
}

// Error implements error.
func (e *ErrBudget) Error() string {
	return fmt.Sprintf("guard: %s budget exceeded (%d > limit %d)", e.Kind, e.Used, e.Limit)
}

// PanicError is a contained panic: a rule application, estimator or
// physical operator panicked and the package-boundary recovery
// converted it into this diagnostic error instead of taking the
// process down. Phase names the pipeline stage ("saturate", "explore",
// "cost", "execute", …) and PlanKey is the fingerprint (plan.Key) of
// the plan being processed, so the failure is reproducible.
type PanicError struct {
	Phase   string
	PlanKey string
	Value   any
	Stack   []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: recovered panic in %s (plan %s): %v", e.Phase, e.PlanKey, e.Value)
}

// IsCancelled reports whether err stems from context cancellation or
// deadline expiry.
func IsCancelled(err error) bool { return errors.Is(err, ErrCancelled) }

// IsBudget reports whether err is (or wraps) a tripped budget.
func IsBudget(err error) bool {
	var be *ErrBudget
	return errors.As(err, &be)
}

// IsPanic reports whether err is (or wraps) a contained panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// IsGuard reports whether err is any of the guard layer's typed
// failures: cancellation, budget trip, contained panic, or an
// injected test fault.
func IsGuard(err error) bool {
	return IsCancelled(err) || IsBudget(err) || IsPanic(err) || IsInjected(err)
}

// Limits bound one run. Zero values mean unlimited.
type Limits struct {
	// MaxExprs caps enumeration expressions (saturation plans, memo
	// expressions and join-tree materializations). Tripping it
	// degrades the optimizer gracefully instead of erroring.
	MaxExprs int64
	// MaxRows caps the executor's cumulative intermediate rows.
	MaxRows int64
	// MaxBytes caps the executor's estimated intermediate bytes.
	MaxBytes int64
}

// limit returns the configured cap for a kind (0 = unlimited).
func (l Limits) limit(k Kind) int64 {
	switch k {
	case Exprs:
		return l.MaxExprs
	case Rows:
		return l.MaxRows
	case Bytes:
		return l.MaxBytes
	}
	return 0
}

// Budget is one run's resource envelope: a cancellation context plus
// cumulative charge counters against Limits. Charges and checks are
// safe for concurrent use (executor workers charge the same budget),
// and every method is nil-safe, so unbudgeted callers pass nil and
// pay a pointer comparison.
//
// Trips are sticky: once a kind crosses its limit every later Charge
// and Err call keeps failing, which is what lets worker pools drain
// deterministically — each worker observes the same tripped state at
// its next boundary check.
type Budget struct {
	ctx    context.Context
	limits Limits
	reg    *obs.Registry

	used      [numKinds]atomic.Int64
	tripped   [numKinds]atomic.Bool
	cancelled atomic.Bool
	queuedNs  atomic.Int64
}

// New builds a budget. ctx may be nil (never cancelled); reg receives
// the guard.cancelled and guard.budget_trips.<kind> counters and may
// be nil (obs.Default()).
func New(ctx context.Context, l Limits, reg *obs.Registry) *Budget {
	return &Budget{ctx: ctx, limits: l, reg: reg}
}

// Context returns the budget's context (context.Background() for a
// nil budget or nil context).
func (b *Budget) Context() context.Context {
	if b == nil || b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Cancelled returns a typed cancellation error when the budget's
// context is done, nil otherwise. This is the check long loops place
// at deterministic boundaries; budget trips are reported separately
// (Charge*, Err) so enumeration callers can degrade on a trip while
// still aborting on cancellation.
func (b *Budget) Cancelled() error {
	if b == nil || b.ctx == nil {
		return nil
	}
	if err := b.ctx.Err(); err != nil {
		if b.cancelled.CompareAndSwap(false, true) {
			b.reg.Counter("guard.cancelled").Inc()
		}
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return nil
}

// Err is the boundary check for paths that cannot degrade (the
// executor): cancellation first, then any already-tripped execution
// budget kind. A tripped Exprs budget is deliberately not reported —
// it is the optimizer's degradable condition, and the same budget
// legitimately flows into executing the degraded plan afterwards
// (ExplainAnalyzeBudget optimizes and executes under one envelope).
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if err := b.Cancelled(); err != nil {
		return err
	}
	for k := Rows; k < numKinds; k++ {
		if b.tripped[k].Load() {
			return &ErrBudget{Kind: k, Limit: b.limits.limit(k), Used: b.used[k].Load()}
		}
	}
	return nil
}

// Tripped reports whether the kind's budget has been exceeded.
func (b *Budget) Tripped(k Kind) bool { return b != nil && b.tripped[k].Load() }

// Trips returns the names of every budget kind that has tripped, in
// kind order — the flight recorder stamps them onto query records.
// Nil (no trips) for a nil or untripped budget.
func (b *Budget) Trips() []string {
	if b == nil {
		return nil
	}
	var out []string
	for k := Exprs; k < numKinds; k++ {
		if b.tripped[k].Load() {
			out = append(out, k.String())
		}
	}
	return out
}

// Used returns the cumulative charge against a kind.
func (b *Budget) Used(k Kind) int64 {
	if b == nil {
		return 0
	}
	return b.used[k].Load()
}

// charge adds n to the kind's usage and trips when it crosses the
// configured limit. The first trip of each kind bumps
// guard.budget_trips.<kind>.
func (b *Budget) charge(k Kind, n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	limit := b.limits.limit(k)
	if limit <= 0 {
		return nil
	}
	used := b.used[k].Add(n)
	if used <= limit {
		return nil
	}
	if b.tripped[k].CompareAndSwap(false, true) {
		b.reg.Counter("guard.budget_trips." + k.String()).Inc()
	}
	return &ErrBudget{Kind: k, Limit: limit, Used: used}
}

// ChargeExprs charges n enumeration expressions.
func (b *Budget) ChargeExprs(n int64) error { return b.charge(Exprs, n) }

// ChargeRows charges n intermediate rows.
func (b *Budget) ChargeRows(n int64) error { return b.charge(Rows, n) }

// ChargeBytes charges n estimated intermediate bytes.
func (b *Budget) ChargeBytes(n int64) error { return b.charge(Bytes, n) }

// ReserveBytes charges n estimated bytes for a transient resident
// structure — a join's build-side hash table, a spill partition read
// back into memory. Unlike operator outputs (which stay live as the
// parent's input and are charged permanently via ChargeOut), a
// reservation is paired with ReleaseBytes when the structure is
// dropped, so out-of-core execution is accounted by its resident peak
// rather than its cumulative traffic. Reserving past MaxBytes trips
// the byte budget exactly like ChargeBytes.
func (b *Budget) ReserveBytes(n int64) error { return b.charge(Bytes, n) }

// ReleaseBytes returns n previously reserved bytes to the byte
// budget. Each reservation must be released exactly once; releases
// are ignored when the byte budget is unlimited (charge never
// tracked them) and do not un-trip a tripped budget (trips are
// sticky by design).
func (b *Budget) ReleaseBytes(n int64) {
	if b == nil || n <= 0 || b.limits.MaxBytes <= 0 {
		return
	}
	b.used[Bytes].Add(-n)
}

// BytesFree reports the byte budget's remaining headroom. limited is
// false when no MaxBytes cap is configured (free is then
// meaningless); a spilling join consults this to decide whether a
// build side fits in memory without risking a sticky trip.
func (b *Budget) BytesFree() (free int64, limited bool) {
	if b == nil || b.limits.MaxBytes <= 0 {
		return 0, false
	}
	free = b.limits.MaxBytes - b.used[Bytes].Load()
	if free < 0 {
		free = 0
	}
	return free, true
}

// AddQueueWait records time this run spent admitted-but-queued by a
// serving layer's admission controller, before any optimizer or
// executor work started. The wait is surfaced three ways so shed
// decisions are observable: QueueWait (EXPLAIN ANALYZE's "queued"
// phase), the guard.queue_wait_milli histogram on the budget's
// registry, and whatever queue-depth gauges the admitting layer keeps.
func (b *Budget) AddQueueWait(d time.Duration) {
	if b == nil || d <= 0 {
		return
	}
	b.queuedNs.Add(int64(d))
	b.reg.Histogram("guard.queue_wait_milli").Observe(d.Milliseconds())
}

// QueueWait returns the cumulative admission-queue wait recorded for
// this run (zero for a nil budget).
func (b *Budget) QueueWait() time.Duration {
	if b == nil {
		return 0
	}
	return time.Duration(b.queuedNs.Load())
}

// ChargeOut charges one operator's materialized output — rows tuples
// of width columns — against both the row and byte budgets, assuming
// valueWidthEstimate bytes per value.
func (b *Budget) ChargeOut(rows, width int) error {
	if b == nil {
		return nil
	}
	if err := b.ChargeRows(int64(rows)); err != nil {
		return err
	}
	return b.ChargeBytes(int64(rows) * int64(width) * valueWidthEstimate)
}

// valueWidthEstimate is the assumed in-memory footprint of one value
// for the byte budget: an interface header plus a small payload.
const valueWidthEstimate = 32
