package guard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNilBudgetIsInert(t *testing.T) {
	var b *Budget
	if err := b.Cancelled(); err != nil {
		t.Fatalf("nil budget Cancelled: %v", err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("nil budget Err: %v", err)
	}
	if err := b.ChargeExprs(1 << 40); err != nil {
		t.Fatalf("nil budget ChargeExprs: %v", err)
	}
	if err := b.ChargeOut(1<<30, 100); err != nil {
		t.Fatalf("nil budget ChargeOut: %v", err)
	}
	if b.Tripped(Rows) {
		t.Fatal("nil budget reports tripped")
	}
	if b.Context() == nil {
		t.Fatal("nil budget Context is nil")
	}
}

func TestCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{}, reg)
	if err := b.Cancelled(); err != nil {
		t.Fatalf("pre-cancel: %v", err)
	}
	cancel()
	err := b.Cancelled()
	if !IsCancelled(err) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !IsCancelled(b.Err()) {
		t.Fatalf("Err after cancel: %v", b.Err())
	}
	// The counter latches once even across repeated checks.
	b.Cancelled()
	b.Cancelled()
	if got := reg.Snapshot().Counters["guard.cancelled"]; got != 1 {
		t.Fatalf("guard.cancelled = %d, want 1", got)
	}
}

func TestDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	b := New(ctx, Limits{}, nil)
	if !IsCancelled(b.Cancelled()) {
		t.Fatalf("deadline not surfaced: %v", b.Cancelled())
	}
}

func TestBudgetTripSticky(t *testing.T) {
	reg := obs.NewRegistry()
	b := New(context.Background(), Limits{MaxRows: 100}, reg)
	if err := b.ChargeRows(100); err != nil {
		t.Fatalf("at limit: %v", err)
	}
	err := b.ChargeRows(1)
	if !IsBudget(err) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	var be *ErrBudget
	if !errors.As(err, &be) || be.Kind != Rows || be.Limit != 100 {
		t.Fatalf("bad trip detail: %+v", be)
	}
	if !b.Tripped(Rows) {
		t.Fatal("trip not sticky")
	}
	if !IsBudget(b.Err()) {
		t.Fatalf("Err after trip: %v", b.Err())
	}
	// Further charges keep failing; the counter latches once.
	b.ChargeRows(1)
	b.ChargeRows(1)
	if got := reg.Snapshot().Counters["guard.budget_trips.rows"]; got != 1 {
		t.Fatalf("guard.budget_trips.rows = %d, want 1", got)
	}
	// Other kinds are unaffected.
	if b.Tripped(Exprs) || b.Tripped(Bytes) {
		t.Fatal("unrelated kinds tripped")
	}
	if err := b.ChargeExprs(5); err != nil {
		t.Fatalf("exprs after rows trip: %v", err)
	}
}

func TestZeroLimitUnlimited(t *testing.T) {
	b := New(context.Background(), Limits{}, nil)
	if err := b.ChargeRows(1 << 50); err != nil {
		t.Fatalf("unlimited budget tripped: %v", err)
	}
}

func TestChargeOutBytes(t *testing.T) {
	b := New(context.Background(), Limits{MaxBytes: 1000}, nil)
	// 10 rows × 4 cols × 32 bytes = 1280 > 1000.
	err := b.ChargeOut(10, 4)
	if !IsBudget(err) {
		t.Fatalf("want bytes trip, got %v", err)
	}
	var be *ErrBudget
	if !errors.As(err, &be) || be.Kind != Bytes {
		t.Fatalf("want Bytes kind, got %+v", be)
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := New(context.Background(), Limits{MaxRows: 1000}, obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.ChargeRows(1)
			}
		}()
	}
	wg.Wait()
	if !b.Tripped(Rows) {
		t.Fatal("concurrent charges did not trip")
	}
}

func TestHitUnarmed(t *testing.T) {
	Clear()
	for _, p := range Points() {
		if err := Hit(p); err != nil {
			t.Fatalf("unarmed Hit(%s): %v", p, err)
		}
	}
}

func TestInjectError(t *testing.T) {
	defer Clear()
	InjectError(PointExecBatch)
	err := Hit(PointExecBatch)
	if !IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if !strings.Contains(err.Error(), string(PointExecBatch)) {
		t.Fatalf("error does not name the point: %v", err)
	}
	// Other points stay clean.
	if err := Hit(PointCost); err != nil {
		t.Fatalf("unrelated point: %v", err)
	}
	Clear()
	if err := Hit(PointExecBatch); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestInjectHookCounting(t *testing.T) {
	defer Clear()
	var mu sync.Mutex
	n := 0
	Inject(PointMemoWave, func(Point) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
	for i := 0; i < 3; i++ {
		if err := Hit(PointMemoWave); err != nil {
			t.Fatalf("counting hook errored: %v", err)
		}
	}
	if n != 3 {
		t.Fatalf("hook ran %d times, want 3", n)
	}
}

func TestRecoverAs(t *testing.T) {
	reg := obs.NewRegistry()
	phase := "seed"
	run := func() (err error) {
		defer RecoverAs(&err, &phase, "plankey123", reg)
		phase = "explore"
		panic("boom")
	}
	err := run()
	if !IsPanic(err) {
		t.Fatalf("want PanicError, got %v", err)
	}
	var pe *PanicError
	errors.As(err, &pe)
	if pe.Phase != "explore" || pe.PlanKey != "plankey123" || pe.Value != "boom" {
		t.Fatalf("bad PanicError: phase=%q key=%q val=%v", pe.Phase, pe.PlanKey, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if got := reg.Snapshot().Counters["guard.recovered_panics"]; got != 1 {
		t.Fatalf("guard.recovered_panics = %d, want 1", got)
	}
	// No panic: err stays nil, counter untouched.
	clean := func() (err error) {
		defer RecoverAs(&err, &phase, "k", reg)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
}

func TestSafely(t *testing.T) {
	err := Safely("cost", "k42", nil, func() error { panic("worker boom") })
	if !IsPanic(err) {
		t.Fatalf("want PanicError, got %v", err)
	}
	var pe *PanicError
	errors.As(err, &pe)
	if pe.Phase != "cost" || pe.PlanKey != "k42" {
		t.Fatalf("bad PanicError: %+v", pe)
	}
	if err := Safely("cost", "k", nil, func() error { return nil }); err != nil {
		t.Fatalf("clean Safely: %v", err)
	}
	want := errors.New("plain")
	if err := Safely("cost", "k", nil, func() error { return want }); err != want {
		t.Fatalf("Safely error passthrough: %v", err)
	}
}

func TestIsGuard(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrCancelled, true},
		{&ErrBudget{Kind: Rows, Limit: 1, Used: 2}, true},
		{&PanicError{Phase: "x"}, true},
		{ErrInjected, true},
		{errors.New("other"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsGuard(c.err); got != c.want {
			t.Fatalf("IsGuard(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestErrIgnoresExprsTrip: a tripped exprs budget is the optimizer's
// degradable condition — Err (the executor's boundary check) must not
// report it, so a degraded optimization's plan can still execute
// under the same budget envelope.
func TestErrIgnoresExprsTrip(t *testing.T) {
	b := New(context.Background(), Limits{MaxExprs: 1, MaxRows: 10}, obs.NewRegistry())
	if err := b.ChargeExprs(5); !IsBudget(err) {
		t.Fatalf("ChargeExprs over limit = %v, want budget error", err)
	}
	if !b.Tripped(Exprs) {
		t.Fatal("exprs budget not tripped")
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err after exprs trip = %v, want nil (exprs is degradable)", err)
	}
	if err := b.ChargeRows(20); !IsBudget(err) {
		t.Fatalf("ChargeRows over limit = %v, want budget error", err)
	}
	if err := b.Err(); !IsBudget(err) {
		t.Fatalf("Err after rows trip = %v, want budget error", err)
	}
}
