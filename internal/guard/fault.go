package guard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// A Point names one fault-injection site. Points sit at the same
// deterministic boundaries the budget checks use, so an injected
// fault exercises exactly the abort path a real cancellation or
// budget trip would take.
type Point string

// The registered fault points. Every guarded subsystem hits its
// points unconditionally; when no injector is armed the hit is a
// single atomic load.
const (
	// PointSimplify fires before the optimizer's simplification seed.
	PointSimplify Point = "optimizer.simplify"
	// PointSaturateWave fires at every saturation wave boundary
	// (serial dequeue batch or parallel frontier wave).
	PointSaturateWave Point = "optimizer.saturate.wave"
	// PointRuleApply fires inside each rule application work item —
	// in the worker goroutines when saturation or the memo runs
	// parallel, exercising worker-level containment.
	PointRuleApply Point = "optimizer.rule.apply"
	// PointCost fires inside each plan-costing work item.
	PointCost Point = "optimizer.cost"
	// PointMemoWave fires at every memo exploration wave boundary.
	PointMemoWave Point = "memo.explore.wave"
	// PointMemoExtract fires on each group entry during branch-and-
	// bound extraction.
	PointMemoExtract Point = "memo.extract.group"
	// PointExecOperator fires as each operator in a guarded execution
	// finishes materializing its output.
	PointExecOperator Point = "exec.operator"
	// PointExecBatch fires at the executor's per-batch boundaries
	// inside join probe loops.
	PointExecBatch Point = "exec.join.batch"
	// PointExecPartition fires as each partition of the grace-
	// partitioned parallel join is claimed by a worker.
	PointExecPartition Point = "exec.join.partition"
	// PointExecMergeJoin fires at the sort-merge join's per-batch
	// output boundaries.
	PointExecMergeJoin Point = "executor.mergejoin"
	// PointExecStreamAgg fires at the streaming aggregation's
	// per-batch input boundaries.
	PointExecStreamAgg Point = "executor.streamagg"
	// PointDatagenBatch fires at datagen's per-batch boundaries.
	PointDatagenBatch Point = "datagen.batch"
	// PointSpillWrite fires as each spill partition file is flushed
	// during the out-of-core grace join's partitioning phase.
	PointSpillWrite Point = "exec.spill.write"
	// PointSpillRead fires as each spilled partition is read back for
	// joining (or recursive re-partitioning).
	PointSpillRead Point = "exec.spill.read"
	// PointServeAdmit fires as the query service admits a request,
	// before it is queued for a concurrency slot. An injected fault
	// here must surface as a typed client error without consuming a
	// queue slot.
	PointServeAdmit Point = "serve.admit"
	// PointCacheLookup fires on every plan-cache lookup, before the
	// shard is consulted.
	PointCacheLookup Point = "plancache.lookup"
	// PointCacheInsert fires before a freshly optimized plan is
	// inserted into the cache. A fault here fails the building request
	// but must release the singleflight so waiters and later requests
	// are not wedged.
	PointCacheInsert Point = "plancache.insert"
	// PointFeedbackRecord fires as an actual-row observation is folded
	// into the cardinality feedback store.
	PointFeedbackRecord Point = "feedback.record"
	// PointFeedbackLookup fires as the estimator consults the feedback
	// store for a corrected cardinality.
	PointFeedbackLookup Point = "feedback.lookup"
	// PointCacheReplan fires before a drift-triggered rebuild of a
	// cached plan. A fault here must leave the old entry serving —
	// never a wedged or poisoned slot.
	PointCacheReplan Point = "plancache.replan"
	// PointExecBuildSwap fires as an adaptive hash join commits to a
	// build/probe swap or a spill escalation — before the first probe,
	// so forcing a fault here exercises the transition boundary.
	PointExecBuildSwap Point = "executor.buildswap"
)

// Points returns every registered fault point, sorted.
func Points() []Point {
	pts := []Point{
		PointSimplify,
		PointSaturateWave,
		PointRuleApply,
		PointCost,
		PointMemoWave,
		PointMemoExtract,
		PointExecOperator,
		PointExecBatch,
		PointExecPartition,
		PointExecMergeJoin,
		PointExecStreamAgg,
		PointDatagenBatch,
		PointSpillWrite,
		PointSpillRead,
		PointServeAdmit,
		PointCacheLookup,
		PointCacheInsert,
		PointFeedbackRecord,
		PointFeedbackLookup,
		PointCacheReplan,
		PointExecBuildSwap,
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// ErrInjected is the sentinel wrapped by faults injected with
// InjectError.
var ErrInjected = errors.New("guard: injected fault")

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Hook is a fault injector: return a non-nil error to make the site
// fail, or panic to exercise containment. Hooks run on whichever
// goroutine hits the point — they must be safe for concurrent calls.
type Hook func(p Point) error

// injector is the process-global registry. armed is the fast path:
// production runs never arm it, so Hit is one atomic load.
var injector struct {
	armed atomic.Bool
	mu    sync.Mutex
	hooks map[Point]Hook
}

// Hit is placed at each fault point. It returns nil unless a test has
// armed an injector for p.
func Hit(p Point) error {
	if !injector.armed.Load() {
		return nil
	}
	injector.mu.Lock()
	h := injector.hooks[p]
	injector.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(p)
}

// Inject arms hook at point p (replacing any previous hook there).
// Test-only; pair with Clear.
func Inject(p Point, h Hook) {
	injector.mu.Lock()
	defer injector.mu.Unlock()
	if injector.hooks == nil {
		injector.hooks = make(map[Point]Hook)
	}
	injector.hooks[p] = h
	injector.armed.Store(true)
}

// InjectError arms p to fail every hit with a typed injected error.
func InjectError(p Point) {
	Inject(p, func(p Point) error {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	})
}

// InjectPanic arms p to panic on every hit, exercising the panic
// containment boundaries.
func InjectPanic(p Point) {
	Inject(p, func(p Point) error {
		panic(fmt.Sprintf("injected panic at %s", p))
	})
}

// Clear disarms every injector. Call it (deferred) after every test
// that injects.
func Clear() {
	injector.mu.Lock()
	defer injector.mu.Unlock()
	injector.hooks = nil
	injector.armed.Store(false)
}
