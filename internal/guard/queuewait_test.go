package guard

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAddQueueWait: admission-queue wait accumulates on the budget and
// lands in the guard.queue_wait_milli histogram the serving layer
// exposes.
func TestAddQueueWait(t *testing.T) {
	reg := obs.NewRegistry()
	b := New(context.Background(), Limits{}, reg)

	if b.QueueWait() != 0 {
		t.Fatal("fresh budget must report zero queue wait")
	}
	b.AddQueueWait(30 * time.Millisecond)
	b.AddQueueWait(70 * time.Millisecond)
	if got := b.QueueWait(); got != 100*time.Millisecond {
		t.Fatalf("QueueWait = %v, want 100ms", got)
	}

	h := reg.Histogram("guard.queue_wait_milli")
	if got := h.Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}

	// Zero and negative waits are ignored, not observed.
	b.AddQueueWait(0)
	b.AddQueueWait(-time.Second)
	if got := b.QueueWait(); got != 100*time.Millisecond {
		t.Fatalf("QueueWait after no-op adds = %v, want 100ms", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("histogram count after no-op adds = %d, want 2", got)
	}
}

// TestAddQueueWaitNil: a nil budget (ungoverned run) absorbs queue
// accounting without panicking, like every other Budget method.
func TestAddQueueWaitNil(t *testing.T) {
	var b *Budget
	b.AddQueueWait(time.Millisecond)
	if b.QueueWait() != 0 {
		t.Fatal("nil budget must report zero queue wait")
	}
}
