package guard

import (
	"runtime/debug"

	"repro/internal/obs"
)

// RecoverAs is the package-boundary panic container: deferred at the
// top of optimizer.Optimize and executor.Run*, it converts a panic
// into a *PanicError stored in *errp, carrying the phase the pipeline
// was in (read through phase at recovery time, so the boundary
// reports the innermost stage reached) and the fingerprint of the
// plan being processed. Recovered panics bump guard.recovered_panics.
//
// Deliberate nil-map/nil-pointer crashes in worker goroutines are NOT
// visible to a boundary defer — worker pools additionally wrap each
// work item with Safely.
func RecoverAs(errp *error, phase *string, planKey string, reg *obs.Registry) {
	r := recover()
	if r == nil {
		return
	}
	ph := ""
	if phase != nil {
		ph = *phase
	}
	reg.Counter("guard.recovered_panics").Inc()
	*errp = &PanicError{Phase: ph, PlanKey: planKey, Value: r, Stack: debug.Stack()}
}

// Safely runs one work item with panic containment, for worker pools
// whose goroutines a boundary defer cannot cover: a panic in f comes
// back as a *PanicError tagged with the item's phase and plan
// fingerprint. reg may be nil (obs.Default()).
func Safely(phase, planKey string, reg *obs.Registry, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			reg.Counter("guard.recovered_panics").Inc()
			err = &PanicError{Phase: phase, PlanKey: planKey, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}
