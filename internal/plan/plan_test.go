package plan

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func testDB() Database {
	r1 := relation.NewBuilder("r1", "x", "y").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(2), value.NewInt(20)).
		Relation()
	r2 := relation.NewBuilder("r2", "x", "z").
		Row(value.NewInt(2), value.NewInt(200)).
		Row(value.NewInt(3), value.NewInt(300)).
		Relation()
	return Database{"r1": r1, "r2": r2}
}

func TestScanAlias(t *testing.T) {
	db := testDB()
	s := NewScanAs("r1", "q")
	sc, err := s.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Contains(schema.Attr("q", "x")) || sc.Contains(schema.Attr("r1", "x")) {
		t.Errorf("alias schema = %s", sc)
	}
	out, err := s.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("alias eval rows = %d", out.Len())
	}
	if s.Name() != "q" || NewScan("r1").Name() != "r1" {
		t.Error("Name wrong")
	}
	if s.String() != "r1:q" {
		t.Errorf("String = %q", s.String())
	}
}

func TestUnknownRelation(t *testing.T) {
	db := testDB()
	s := NewScan("nosuch")
	if _, err := s.Schema(db); err == nil {
		t.Error("Schema of unknown relation must fail")
	}
	if _, err := s.Eval(db); err == nil {
		t.Error("Eval of unknown relation must fail")
	}
	j := NewJoin(InnerJoin, expr.EqCols("r1", "x", "nosuch", "x"), NewScan("r1"), s)
	if _, err := j.Eval(db); err == nil {
		t.Error("join over unknown relation must fail")
	}
}

func TestJoinKindsEval(t *testing.T) {
	db := testDB()
	p := expr.EqCols("r1", "x", "r2", "x")
	counts := map[JoinKind]int{InnerJoin: 1, LeftJoin: 2, RightJoin: 2, FullJoin: 3}
	for kind, want := range counts {
		j := NewJoin(kind, p, NewScan("r1"), NewScan("r2"))
		out, err := j.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != want {
			t.Errorf("%v rows = %d, want %d", kind, out.Len(), want)
		}
		sc, err := j.Schema(db)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Len() != 6 {
			t.Errorf("%v schema len = %d", kind, sc.Len())
		}
	}
}

func TestWithChildrenRebuild(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	j := NewJoin(LeftJoin, p, NewScan("r1"), NewScan("r2"))
	swapped := j.WithChildren([]Node{j.R, j.L})
	if swapped.(*Join).L != j.R {
		t.Error("WithChildren did not replace children")
	}
	gs := NewGenSel(p, []PreservedSpec{NewPreserved("r1")}, j)
	if gs.WithChildren([]Node{NewScan("r1")}).(*GenSel).Pred.String() != p.String() {
		t.Error("GenSel WithChildren lost fields")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	j.WithChildren([]Node{j.L})
}

func TestPreservedSpec(t *testing.T) {
	s := NewPreserved("r2", "r1")
	if s.String() != "r1r2" {
		t.Errorf("spec string = %q (must be sorted)", s)
	}
	set := s.Set()
	if !set["r1"] || !set["r2"] || len(set) != 2 {
		t.Errorf("set = %v", set)
	}
}

func TestGroupBySchemaAndEval(t *testing.T) {
	db := testDB()
	cnt := schema.Attr("q", "c")
	g := NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: cnt}},
		NewScan("r1"))
	sc, err := g.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 || !sc.Contains(cnt) {
		t.Errorf("GP schema = %s", sc)
	}
	out, err := g.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("groups = %d", out.Len())
	}
}

func TestRewriteReplacesNode(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	j := NewJoin(LeftJoin, p, NewScan("r1"), NewScan("r2"))
	out := Rewrite(j, func(n Node) Node {
		if s, ok := n.(*Scan); ok && s.Rel == "r2" {
			return NewScanAs("r2", "renamed")
		}
		return nil
	})
	if !strings.Contains(out.String(), "r2:renamed") {
		t.Errorf("rewrite missed: %s", out)
	}
	// The untouched branch is shared, not copied.
	if out.(*Join).L != j.L {
		t.Error("unchanged subtree must be shared")
	}
}

func TestBaseRels(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	j := NewJoin(InnerJoin, p, NewScan("r1"), NewScanAs("r2", "q"))
	rels := BaseRels(j)
	if len(rels) != 2 || rels[0] != "q" || rels[1] != "r1" {
		t.Errorf("BaseRels = %v (alias names count)", rels)
	}
	if CountNodes(j) != 3 {
		t.Errorf("CountNodes = %d", CountNodes(j))
	}
}

func TestIndentCoversAllNodes(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	node := NewProject(
		[]schema.Attribute{schema.Attr("r1", "x")}, true,
		NewSelect(p,
			NewGenSel(p, []PreservedSpec{NewPreserved("r1")},
				NewMGOJ(p, []PreservedSpec{NewPreserved("r1")},
					NewGroupBy([]schema.Attribute{schema.Attr("r1", "x")}, nil, NewScan("r1")),
					NewScan("r2")))))
	out := Indent(node)
	for _, want := range []string{"Project", "Select", "GenSel", "MGOJ", "GroupBy", "Scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Indent missing %q:\n%s", want, out)
		}
	}
}

func TestEquivalentErrors(t *testing.T) {
	db := testDB()
	good := NewScan("r1")
	bad := NewScan("nosuch")
	if _, err := Equivalent(bad, good, db); err == nil {
		t.Error("error from lhs must propagate")
	}
	if _, err := Equivalent(good, bad, db); err == nil {
		t.Error("error from rhs must propagate")
	}
	ok, err := Equivalent(good, good, db)
	if err != nil || !ok {
		t.Error("a plan is equivalent to itself")
	}
}

// TestStringCanonical pins that semantically distinct plans render to
// distinct strings (the saturation engine's dedup invariant).
func TestStringCanonical(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	variants := []Node{
		NewJoin(InnerJoin, p, NewScan("r1"), NewScan("r2")),
		NewJoin(LeftJoin, p, NewScan("r1"), NewScan("r2")),
		NewJoin(LeftJoin, p, NewScan("r2"), NewScan("r1")),
		NewGenSel(p, []PreservedSpec{NewPreserved("r1")},
			NewJoin(InnerJoin, p, NewScan("r1"), NewScan("r2"))),
		NewSelect(p, NewJoin(InnerJoin, p, NewScan("r1"), NewScan("r2"))),
	}
	seen := map[string]bool{}
	for _, v := range variants {
		s := v.String()
		if seen[s] {
			t.Errorf("duplicate canonical string %q", s)
		}
		seen[s] = true
	}
}

func TestDOT(t *testing.T) {
	p := expr.EqCols("r1", "x", "r2", "x")
	n := NewGenSel(p, []PreservedSpec{NewPreserved("r1")},
		NewJoin(LeftJoin, p, NewScan("r1"),
			NewGroupBy([]schema.Attribute{schema.Attr("r2", "x")}, nil, NewScan("r2"))))
	out := DOT(n)
	for _, want := range []string{"digraph", "hexagon", "trapezium", "box", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
