// Package plan implements logical operator trees (the paper's
// "expression trees") over the operators of package algebra: scans,
// inner/outer/full outer joins, selections, generalized selections,
// generalized projections and MGOJ.
//
// Plans are immutable: rewrites build new trees sharing unchanged
// subtrees. Every node can be evaluated directly against a Database,
// which is the reference semantics used to verify that rewritten
// plans are equivalent to the original query.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
)

// Database binds base relation names to extensions.
type Database map[string]*relation.Relation

// Node is a logical plan operator.
type Node interface {
	// Children returns the node's inputs in order.
	Children() []Node
	// WithChildren returns a copy of the node with the given inputs;
	// len(ch) must match len(Children()).
	WithChildren(ch []Node) Node
	// Schema derives the output schema from the database's base
	// schemas without evaluating.
	Schema(db Database) (*schema.Schema, error)
	// Eval computes the node's result relation.
	Eval(db Database) (*relation.Relation, error)
	// String renders the plan canonically; equal strings mean equal
	// plans, which the saturation engine relies on for memoization.
	// Nodes of this package cache the rendering (see Key and
	// Fingerprint), so repeated calls cost a pointer load.
	String() string
}

// JoinKind enumerates the binary operators of the paper.
type JoinKind uint8

// The join kinds.
const (
	InnerJoin JoinKind = iota // ⋈
	LeftJoin                  // →
	RightJoin                 // ←
	FullJoin                  // ↔
)

// String renders the kind mnemonic used in plan strings.
func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LOJ"
	case RightJoin:
		return "ROJ"
	case FullJoin:
		return "FOJ"
	default:
		return fmt.Sprintf("JoinKind(%d)", uint8(k))
	}
}

// Scan reads a base relation, optionally renaming it (footnote 5 of
// the paper: relations occurring more than once are renamed apart).
type Scan struct {
	Rel string
	// As, when non-empty, requalifies every attribute of the
	// relation (including its virtual row identifier) to this name.
	As string

	fp fpCache
}

// NewScan returns a scan of rel.
func NewScan(rel string) *Scan { return &Scan{Rel: rel} }

// NewScanAs returns a scan of rel renamed to alias.
func NewScanAs(rel, alias string) *Scan { return &Scan{Rel: rel, As: alias} }

// Name returns the name the scan's attributes are qualified with.
func (s *Scan) Name() string {
	if s.As != "" {
		return s.As
	}
	return s.Rel
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node {
	if len(ch) != 0 {
		panic("plan: Scan has no children")
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema(db Database) (*schema.Schema, error) {
	r, ok := db[s.Rel]
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %q", s.Rel)
	}
	if s.As == "" || s.As == s.Rel {
		return r.Schema(), nil
	}
	return renameSchema(r.Schema(), s.Rel, s.As), nil
}

// Eval implements Node.
func (s *Scan) Eval(db Database) (*relation.Relation, error) {
	r, ok := db[s.Rel]
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %q", s.Rel)
	}
	if s.As == "" || s.As == s.Rel {
		return r, nil
	}
	renamed := relation.New(renameSchema(r.Schema(), s.Rel, s.As))
	for _, t := range r.Tuples() {
		renamed.Append(t)
	}
	return renamed, nil
}

func renameSchema(s *schema.Schema, old, new string) *schema.Schema {
	attrs := s.Attrs()
	for i := range attrs {
		if attrs[i].Rel == old {
			attrs[i].Rel = new
		}
	}
	return schema.New(attrs...)
}

func (s *Scan) fingerprint() *fpVal {
	return s.fp.val(func() string {
		if s.As == "" || s.As == s.Rel {
			return s.Rel
		}
		return s.Rel + ":" + s.As
	})
}

// String implements Node.
func (s *Scan) String() string { return s.fingerprint().key }

// Join is a binary operator r_l ⊙_p r_r of the given kind.
type Join struct {
	Kind JoinKind
	Pred expr.Pred
	L, R Node

	fp fpCache
}

// NewJoin builds a join node.
func NewJoin(kind JoinKind, p expr.Pred, l, r Node) *Join {
	return &Join{Kind: kind, Pred: p, L: l, R: r}
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	if len(ch) != 2 {
		panic("plan: Join needs two children")
	}
	return &Join{Kind: j.Kind, Pred: j.Pred, L: ch[0], R: ch[1]}
}

// Schema implements Node.
func (j *Join) Schema(db Database) (*schema.Schema, error) {
	ls, err := j.L.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := j.R.Schema(db)
	if err != nil {
		return nil, err
	}
	return ls.Concat(rs), nil
}

// Eval implements Node.
func (j *Join) Eval(db Database) (*relation.Relation, error) {
	l, err := j.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(db)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case InnerJoin:
		return algebra.Join(j.Pred, l, r), nil
	case LeftJoin:
		return algebra.LeftOuter(j.Pred, l, r), nil
	case RightJoin:
		return algebra.RightOuter(j.Pred, l, r), nil
	case FullJoin:
		return algebra.FullOuter(j.Pred, l, r), nil
	}
	return nil, fmt.Errorf("plan: unknown join kind %v", j.Kind)
}

func (j *Join) fingerprint() *fpVal {
	return j.fp.val(func() string {
		// Built by concatenation, not fmt: this runs once per candidate
		// plan the enumerator generates and fmt's reflection dominated
		// its profile.
		return "(" + Key(j.L) + " " + j.Kind.String() + "[" + predKey(j.Pred) + "] " + Key(j.R) + ")"
	})
}

// String implements Node.
func (j *Join) String() string { return j.fingerprint().key }

// Select is the conventional selection σ_p.
type Select struct {
	Pred  expr.Pred
	Input Node

	fp fpCache
}

// NewSelect builds a selection node.
func NewSelect(p expr.Pred, in Node) *Select { return &Select{Pred: p, Input: in} }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Select) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: Select needs one child")
	}
	return &Select{Pred: s.Pred, Input: ch[0]}
}

// Schema implements Node.
func (s *Select) Schema(db Database) (*schema.Schema, error) { return s.Input.Schema(db) }

// Eval implements Node.
func (s *Select) Eval(db Database) (*relation.Relation, error) {
	in, err := s.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return algebra.Select(s.Pred, in), nil
}

func (s *Select) fingerprint() *fpVal {
	return s.fp.val(func() string {
		return "SEL[" + predKey(s.Pred) + "](" + Key(s.Input) + ")"
	})
}

// String implements Node.
func (s *Select) String() string { return s.fingerprint().key }

// PreservedSpec names the base relations spanned by one preserved
// relation of a generalized selection (the "r1r2" of σ*_p[r1r2]).
type PreservedSpec []string

// NewPreserved builds a sorted spec.
func NewPreserved(rels ...string) PreservedSpec {
	s := append(PreservedSpec(nil), rels...)
	sort.Strings(s)
	return s
}

// Set converts the spec to a set.
func (p PreservedSpec) Set() map[string]bool {
	set := make(map[string]bool, len(p))
	for _, r := range p {
		set[r] = true
	}
	return set
}

// String renders e.g. "r1r2".
func (p PreservedSpec) String() string { return strings.Join(p, "") }

// GenSel is the generalized selection σ*_p[specs](input)
// (Definition 2.1).
type GenSel struct {
	Pred      expr.Pred
	Preserved []PreservedSpec
	Input     Node

	fp fpCache
}

// NewGenSel builds a generalized selection node with canonically
// ordered preserved specs.
func NewGenSel(p expr.Pred, preserved []PreservedSpec, in Node) *GenSel {
	specs := append([]PreservedSpec(nil), preserved...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].String() < specs[j].String() })
	return &GenSel{Pred: p, Preserved: specs, Input: in}
}

// Children implements Node.
func (g *GenSel) Children() []Node { return []Node{g.Input} }

// WithChildren implements Node.
func (g *GenSel) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: GenSel needs one child")
	}
	return &GenSel{Pred: g.Pred, Preserved: g.Preserved, Input: ch[0]}
}

// Schema implements Node.
func (g *GenSel) Schema(db Database) (*schema.Schema, error) { return g.Input.Schema(db) }

// Eval implements Node.
func (g *GenSel) Eval(db Database) (*relation.Relation, error) {
	in, err := g.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	specs := make([]map[string]bool, len(g.Preserved))
	for i, s := range g.Preserved {
		specs[i] = s.Set()
	}
	return algebra.GenSelect(g.Pred, specs, in)
}

func (g *GenSel) fingerprint() *fpVal {
	return g.fp.val(func() string {
		return "GS[" + predKey(g.Pred) + "; " + specsKey(g.Preserved) + "](" + Key(g.Input) + ")"
	})
}

// String implements Node.
func (g *GenSel) String() string { return g.fingerprint().key }

// MGOJNode is the modified generalized outer join
// MGOJ_p[specs](l, r) of [BHAR95a].
type MGOJNode struct {
	Pred      expr.Pred
	Preserved []PreservedSpec
	L, R      Node

	fp fpCache
}

// NewMGOJ builds an MGOJ node.
func NewMGOJ(p expr.Pred, preserved []PreservedSpec, l, r Node) *MGOJNode {
	specs := append([]PreservedSpec(nil), preserved...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].String() < specs[j].String() })
	return &MGOJNode{Pred: p, Preserved: specs, L: l, R: r}
}

// Children implements Node.
func (m *MGOJNode) Children() []Node { return []Node{m.L, m.R} }

// WithChildren implements Node.
func (m *MGOJNode) WithChildren(ch []Node) Node {
	if len(ch) != 2 {
		panic("plan: MGOJ needs two children")
	}
	return &MGOJNode{Pred: m.Pred, Preserved: m.Preserved, L: ch[0], R: ch[1]}
}

// Schema implements Node.
func (m *MGOJNode) Schema(db Database) (*schema.Schema, error) {
	ls, err := m.L.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := m.R.Schema(db)
	if err != nil {
		return nil, err
	}
	return ls.Concat(rs), nil
}

// Eval implements Node.
func (m *MGOJNode) Eval(db Database) (*relation.Relation, error) {
	l, err := m.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := m.R.Eval(db)
	if err != nil {
		return nil, err
	}
	specs := make([]map[string]bool, len(m.Preserved))
	for i, s := range m.Preserved {
		specs[i] = s.Set()
	}
	return algebra.MGOJ(m.Pred, specs, l, r)
}

func (m *MGOJNode) fingerprint() *fpVal {
	return m.fp.val(func() string {
		return "(" + Key(m.L) + " MGOJ[" + predKey(m.Pred) + "; " + specsKey(m.Preserved) + "] " + Key(m.R) + ")"
	})
}

// String implements Node.
func (m *MGOJNode) String() string { return m.fingerprint().key }

// GroupBy is the generalized projection π_{X,f(Y)}(input).
type GroupBy struct {
	Keys  []schema.Attribute
	Aggs  []algebra.Aggregate
	Input Node

	fp fpCache
}

// NewGroupBy builds a generalized projection node.
func NewGroupBy(keys []schema.Attribute, aggs []algebra.Aggregate, in Node) *GroupBy {
	return &GroupBy{Keys: keys, Aggs: aggs, Input: in}
}

// Children implements Node.
func (g *GroupBy) Children() []Node { return []Node{g.Input} }

// WithChildren implements Node.
func (g *GroupBy) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: GroupBy needs one child")
	}
	return &GroupBy{Keys: g.Keys, Aggs: g.Aggs, Input: ch[0]}
}

// Schema implements Node.
func (g *GroupBy) Schema(db Database) (*schema.Schema, error) {
	if _, err := g.Input.Schema(db); err != nil {
		return nil, err
	}
	attrs := append([]schema.Attribute(nil), g.Keys...)
	for _, a := range g.Aggs {
		attrs = append(attrs, a.Out)
	}
	return schema.New(attrs...), nil
}

// Eval implements Node.
func (g *GroupBy) Eval(db Database) (*relation.Relation, error) {
	in, err := g.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return algebra.GroupProject(g.Keys, g.Aggs, in), nil
}

func (g *GroupBy) fingerprint() *fpVal {
	return g.fp.val(func() string {
		keys := make([]string, len(g.Keys))
		for i, k := range g.Keys {
			keys[i] = k.String()
		}
		aggs := make([]string, len(g.Aggs))
		for i, a := range g.Aggs {
			aggs[i] = a.String()
		}
		return "GP[" + strings.Join(keys, ",") + "; " + strings.Join(aggs, ",") + "](" + Key(g.Input) + ")"
	})
}

// String implements Node.
func (g *GroupBy) String() string { return g.fingerprint().key }

// Project is π over the listed attributes, optionally distinct.
type Project struct {
	Attrs    []schema.Attribute
	Distinct bool
	Input    Node

	fp fpCache
}

// NewProject builds a projection node.
func NewProject(attrs []schema.Attribute, distinct bool, in Node) *Project {
	return &Project{Attrs: attrs, Distinct: distinct, Input: in}
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: Project needs one child")
	}
	return &Project{Attrs: p.Attrs, Distinct: p.Distinct, Input: ch[0]}
}

// Schema implements Node.
func (p *Project) Schema(db Database) (*schema.Schema, error) {
	if _, err := p.Input.Schema(db); err != nil {
		return nil, err
	}
	return schema.New(p.Attrs...), nil
}

// Eval implements Node.
func (p *Project) Eval(db Database) (*relation.Relation, error) {
	in, err := p.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return in.Project(p.Attrs, p.Distinct), nil
}

func (p *Project) fingerprint() *fpVal {
	return p.fp.val(func() string {
		attrs := make([]string, len(p.Attrs))
		for i, a := range p.Attrs {
			attrs[i] = a.String()
		}
		d := ""
		if p.Distinct {
			d = " distinct"
		}
		return fmt.Sprintf("PROJ[%s%s](%s)", strings.Join(attrs, ","), d, Key(p.Input))
	})
}

// String implements Node.
func (p *Project) String() string { return p.fingerprint().key }
