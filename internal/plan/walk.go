package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Walk visits n and all descendants pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// BaseRels returns the sorted base relation names scanned in the
// subtree rooted at n.
func BaseRels(n Node) []string {
	set := make(map[string]bool)
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok {
			set[s.Name()] = true
		}
	})
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// BaseRelSet returns the set of base relation names under n.
func BaseRelSet(n Node) map[string]bool {
	set := make(map[string]bool)
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok {
			set[s.Name()] = true
		}
	})
	return set
}

// CountNodes returns the number of operators in the tree.
func CountNodes(n Node) int {
	count := 0
	Walk(n, func(Node) { count++ })
	return count
}

// Rewrite applies f bottom-up: children are rewritten first, then f
// is applied to the node with its new children. f returning nil keeps
// the node.
func Rewrite(n Node, f func(Node) Node) Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]Node, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = Rewrite(c, f)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	if out := f(n); out != nil {
		return out
	}
	return n
}

// Equivalent evaluates both plans against db and reports whether they
// produce the same set of tuples over the same attributes. It is the
// ground-truth equivalence check used throughout the tests.
func Equivalent(a, b Node, db Database) (bool, error) {
	ra, err := a.Eval(db)
	if err != nil {
		return false, fmt.Errorf("plan: evaluating %s: %w", a, err)
	}
	rb, err := b.Eval(db)
	if err != nil {
		return false, fmt.Errorf("plan: evaluating %s: %w", b, err)
	}
	return ra.EqualAsSets(rb), nil
}

// Indent renders the plan as an indented tree, one operator per line,
// for EXPLAIN-style output.
func Indent(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch m := n.(type) {
		case *Scan:
			fmt.Fprintf(&b, "%sScan %s\n", pad, m.Rel)
		case *Join:
			fmt.Fprintf(&b, "%s%s on %s\n", pad, m.Kind, m.Pred)
		case *Select:
			fmt.Fprintf(&b, "%sSelect %s\n", pad, m.Pred)
		case *GenSel:
			parts := make([]string, len(m.Preserved))
			for i, s := range m.Preserved {
				parts[i] = s.String()
			}
			fmt.Fprintf(&b, "%sGenSel %s preserving [%s]\n", pad, m.Pred, strings.Join(parts, ", "))
		case *MGOJNode:
			parts := make([]string, len(m.Preserved))
			for i, s := range m.Preserved {
				parts[i] = s.String()
			}
			fmt.Fprintf(&b, "%sMGOJ %s preserving [%s]\n", pad, m.Pred, strings.Join(parts, ", "))
		case *GroupBy:
			keys := make([]string, len(m.Keys))
			for i, k := range m.Keys {
				keys[i] = k.String()
			}
			aggs := make([]string, len(m.Aggs))
			for i, a := range m.Aggs {
				aggs[i] = a.String()
			}
			fmt.Fprintf(&b, "%sGroupBy [%s] aggs [%s]\n", pad, strings.Join(keys, ", "), strings.Join(aggs, ", "))
		case *Project:
			fmt.Fprintf(&b, "%sProject %v distinct=%v\n", pad, m.Attrs, m.Distinct)
		case *Sort:
			keys := make([]string, len(m.Keys))
			for i, k := range m.Keys {
				keys[i] = k.String()
			}
			origin := ""
			if m.Origin != "" {
				origin = " (" + m.Origin + ")"
			}
			if m.Limit >= 0 {
				fmt.Fprintf(&b, "%sSort [%s] limit %d%s\n", pad, strings.Join(keys, ", "), m.Limit, origin)
			} else {
				fmt.Fprintf(&b, "%sSort [%s]%s\n", pad, strings.Join(keys, ", "), origin)
			}
		case *MergeJoin:
			keys := make([]string, len(m.LKeys))
			for i := range m.LKeys {
				d := ""
				if m.Desc[i] {
					d = " desc"
				}
				keys[i] = m.LKeys[i].String() + "=" + m.RKeys[i].String() + d
			}
			fmt.Fprintf(&b, "%sMergeJoin %s on %s keys [%s]\n", pad, m.Kind, m.Pred, strings.Join(keys, ", "))
		case *StreamAgg:
			keys := make([]string, len(m.Keys))
			for i, k := range m.Keys {
				keys[i] = k.String()
			}
			aggs := make([]string, len(m.Aggs))
			for i, a := range m.Aggs {
				aggs[i] = a.String()
			}
			fmt.Fprintf(&b, "%sStreamAgg [%s] aggs [%s] sorted %s\n", pad, strings.Join(keys, ", "), strings.Join(aggs, ", "), m.InOrder)
		default:
			fmt.Fprintf(&b, "%s%s\n", pad, n)
		}
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
