package plan

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/schema"
)

// Validate checks the structural invariants every well-formed plan
// over db must satisfy, without evaluating it:
//
//   - schema derivation succeeds at every node, so column positions
//     are consistent bottom-up;
//   - every attribute a predicate, projection, grouping, aggregate or
//     sort key references is present in the node's input schema
//     (virtual #rid attributes are part of base schemas and resolve
//     like any other column);
//   - the preserved specifications of generalized selections and
//     MGOJ nodes name only base relations available beneath the node
//     — the preserved-list ⊆ inputs side condition of the paper's
//     reordering theorems — and each resolves to at least one
//     attribute;
//   - only node types of this package appear (a foreign Node — e.g. a
//     memo binding that leaked out of extraction — is rejected).
//
// The optimizer's property suites run Validate on every winner, and
// the degradation paths run it on budget-tripped best-effort plans
// before returning them: a plan that optimizes "successfully" but
// violates these invariants is a bug worth failing loudly on.
func Validate(n Node, db Database) error {
	_, err := validate(n, db, OrderSourceFromDB(db))
	return err
}

func validate(n Node, db Database, src OrderSource) (*schema.Schema, error) {
	switch m := n.(type) {
	case *Scan:
		return m.Schema(db)
	case *Join:
		ls, err := validate(m.L, db, src)
		if err != nil {
			return nil, err
		}
		rs, err := validate(m.R, db, src)
		if err != nil {
			return nil, err
		}
		if !ls.Disjoint(rs) {
			return nil, fmt.Errorf("plan: join inputs share attributes in %s", m)
		}
		out := ls.Concat(rs)
		if err := predIn(m.Pred, out, m); err != nil {
			return nil, err
		}
		return out, nil
	case *Select:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		if err := predIn(m.Pred, in, m); err != nil {
			return nil, err
		}
		return in, nil
	case *GenSel:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		if err := predIn(m.Pred, in, m); err != nil {
			return nil, err
		}
		if err := specsIn(m.Preserved, BaseRelSet(m.Input), in, m); err != nil {
			return nil, err
		}
		return in, nil
	case *MGOJNode:
		ls, err := validate(m.L, db, src)
		if err != nil {
			return nil, err
		}
		rs, err := validate(m.R, db, src)
		if err != nil {
			return nil, err
		}
		if !ls.Disjoint(rs) {
			return nil, fmt.Errorf("plan: MGOJ inputs share attributes in %s", m)
		}
		out := ls.Concat(rs)
		if err := predIn(m.Pred, out, m); err != nil {
			return nil, err
		}
		rels := BaseRelSet(m.L)
		for r := range BaseRelSet(m.R) {
			rels[r] = true
		}
		if err := specsIn(m.Preserved, rels, out, m); err != nil {
			return nil, err
		}
		return out, nil
	case *GroupBy:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		for _, k := range m.Keys {
			if !in.Contains(k) {
				return nil, fmt.Errorf("plan: group key %s not in input of %s", k, m)
			}
		}
		attrs := append([]schema.Attribute(nil), m.Keys...)
		for _, a := range m.Aggs {
			if a.Arg != nil { // COUNT(*) has no argument
				for _, ref := range a.Arg.Attrs(nil) {
					if !in.Contains(ref) {
						return nil, fmt.Errorf("plan: aggregate input %s not in input of %s", ref, m)
					}
				}
			}
			attrs = append(attrs, a.Out)
		}
		return schema.New(attrs...), nil
	case *Project:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		for _, a := range m.Attrs {
			if !in.Contains(a) {
				return nil, fmt.Errorf("plan: projected attribute %s not in input of %s", a, m)
			}
		}
		return schema.New(m.Attrs...), nil
	case *Sort:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		for _, k := range m.Keys {
			if !in.Contains(k.Attr) {
				return nil, fmt.Errorf("plan: sort key %s not in input of %s", k.Attr, m)
			}
		}
		return in, nil
	case *MergeJoin:
		ls, err := validate(m.L, db, src)
		if err != nil {
			return nil, err
		}
		rs, err := validate(m.R, db, src)
		if err != nil {
			return nil, err
		}
		if !ls.Disjoint(rs) {
			return nil, fmt.Errorf("plan: merge join inputs share attributes in %s", m)
		}
		out := ls.Concat(rs)
		if err := predIn(m.Pred, out, m); err != nil {
			return nil, err
		}
		if len(m.LKeys) == 0 || len(m.LKeys) != len(m.RKeys) || len(m.LKeys) != len(m.Desc) {
			return nil, fmt.Errorf("plan: merge join key lists mismatched in %s", m)
		}
		for i := range m.LKeys {
			if !ls.Contains(m.LKeys[i]) {
				return nil, fmt.Errorf("plan: merge key %s not in left input of %s", m.LKeys[i], m)
			}
			if !rs.Contains(m.RKeys[i]) {
				return nil, fmt.Errorf("plan: merge key %s not in right input of %s", m.RKeys[i], m)
			}
		}
		// The delivered-order claims must hold statically: each input's
		// computed order (enforcer sorts, sorted scans, order-preserving
		// operators in between) must imply the merge key order.
		if got := DeliveredOrder(m.L, src); !got.Satisfies(m.LeftOrder()) {
			return nil, fmt.Errorf("plan: left input of %s delivers %s, merge needs %s", m, got, m.LeftOrder())
		}
		if got := DeliveredOrder(m.R, src); !got.Satisfies(m.RightOrder()) {
			return nil, fmt.Errorf("plan: right input of %s delivers %s, merge needs %s", m, got, m.RightOrder())
		}
		return out, nil
	case *StreamAgg:
		in, err := validate(m.Input, db, src)
		if err != nil {
			return nil, err
		}
		for _, k := range m.Keys {
			if !in.Contains(k) {
				return nil, fmt.Errorf("plan: group key %s not in input of %s", k, m)
			}
		}
		attrs := append([]schema.Attribute(nil), m.Keys...)
		for _, a := range m.Aggs {
			if a.Arg != nil {
				for _, ref := range a.Arg.Attrs(nil) {
					if !in.Contains(ref) {
						return nil, fmt.Errorf("plan: aggregate input %s not in input of %s", ref, m)
					}
				}
			}
			attrs = append(attrs, a.Out)
		}
		// InOrder must cover exactly the grouping keys: consecutive
		// equality on the order keys must coincide with group identity.
		if len(m.InOrder) != len(m.Keys) {
			return nil, fmt.Errorf("plan: stream agg order %s does not cover keys of %s", m.InOrder, m)
		}
		keySet := make(map[schema.Attribute]bool, len(m.Keys))
		for _, k := range m.Keys {
			keySet[k] = true
		}
		for _, k := range m.InOrder {
			if !keySet[k.Attr] {
				return nil, fmt.Errorf("plan: stream agg order key %s is not a group key of %s", k.Attr, m)
			}
			delete(keySet, k.Attr)
		}
		if got := DeliveredOrder(m.Input, src); !got.Satisfies(m.InOrder) {
			return nil, fmt.Errorf("plan: input of %s delivers %s, streaming needs %s", m, got, m.InOrder)
		}
		return schema.New(attrs...), nil
	default:
		return nil, fmt.Errorf("plan: Validate: unknown node type %T", n)
	}
}

// predIn checks every attribute p references against s. A nil
// predicate (cross join) references nothing.
func predIn(p expr.Pred, s *schema.Schema, at Node) error {
	if p == nil {
		return nil
	}
	for _, a := range p.Attrs(nil) {
		if !s.Contains(a) {
			return fmt.Errorf("plan: predicate attribute %s not in input of %s", a, at)
		}
	}
	return nil
}

// specsIn checks that every preserved spec names only base relations
// under the node and resolves to at least one attribute of s.
func specsIn(specs []PreservedSpec, rels map[string]bool, s *schema.Schema, at Node) error {
	for _, spec := range specs {
		for _, r := range spec {
			if !rels[r] {
				return fmt.Errorf("plan: preserved relation %q not an input of %s", r, at)
			}
		}
		if len(s.AttrsOfRels(spec.Set())) == 0 {
			return fmt.Errorf("plan: preserved spec %s resolves to no attributes in %s", spec, at)
		}
	}
	return nil
}
