package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph for visualization
// (`go run ./cmd/reorder -dot ... | dot -Tsvg`). Operator kinds get
// distinct shapes: scans are boxes, joins ellipses, generalized
// selections and MGOJ hexagons (the paper's new machinery stands
// out), grouping trapezia.
func DOT(n Node) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  node [fontname=\"Helvetica\"];\n  rankdir=BT;\n")
	id := 0
	var rec func(n Node) int
	rec = func(n Node) int {
		my := id
		id++
		label, shape := describe(n)
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", my, label, shape)
		for _, c := range n.Children() {
			ci := rec(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ci, my)
		}
		return my
	}
	rec(n)
	b.WriteString("}\n")
	return b.String()
}

func describe(n Node) (label, shape string) {
	switch m := n.(type) {
	case *Scan:
		return m.String(), "box"
	case *Join:
		return fmt.Sprintf("%s\n%s", m.Kind, m.Pred), "ellipse"
	case *Select:
		return fmt.Sprintf("σ %s", m.Pred), "diamond"
	case *GenSel:
		parts := make([]string, len(m.Preserved))
		for i, s := range m.Preserved {
			parts[i] = s.String()
		}
		return fmt.Sprintf("σ* %s\npreserve [%s]", m.Pred, strings.Join(parts, ", ")), "hexagon"
	case *MGOJNode:
		parts := make([]string, len(m.Preserved))
		for i, s := range m.Preserved {
			parts[i] = s.String()
		}
		return fmt.Sprintf("MGOJ %s\npreserve [%s]", m.Pred, strings.Join(parts, ", ")), "hexagon"
	case *GroupBy:
		keys := make([]string, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = k.String()
		}
		aggs := make([]string, len(m.Aggs))
		for i, a := range m.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("π %s\n%s", strings.Join(keys, ","), strings.Join(aggs, ",")), "trapezium"
	case *Project:
		return "proj", "triangle"
	case *Sort:
		if m.Origin != "" {
			return "sort (" + m.Origin + ")", "invtriangle"
		}
		return "sort", "invtriangle"
	case *MergeJoin:
		return fmt.Sprintf("merge %s\n%s", m.Kind, m.Pred), "ellipse"
	case *StreamAgg:
		keys := make([]string, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = k.String()
		}
		return fmt.Sprintf("stream π %s\nsorted %s", strings.Join(keys, ","), m.InOrder), "trapezium"
	default:
		return n.String(), "plaintext"
	}
}
