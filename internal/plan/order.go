package plan

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Order is a physical sort property: the tuple stream is sorted
// lexicographically by the keys, NULLs last ascending (first
// descending) — exactly the comparator SortRows applies. A nil Order
// means "no order guaranteed".
type Order []SortKey

// OrderBy builds an all-ascending order over attrs.
func OrderBy(attrs ...schema.Attribute) Order {
	o := make(Order, len(attrs))
	for i, a := range attrs {
		o[i] = SortKey{Attr: a}
	}
	return o
}

// Satisfies reports whether a stream sorted by o is also sorted by
// req: req must be a prefix of o with identical attributes and
// directions. Every stream satisfies the empty requirement.
func (o Order) Satisfies(req Order) bool {
	if len(req) > len(o) {
		return false
	}
	for i, k := range req {
		if o[i].Attr != k.Attr || o[i].Desc != k.Desc {
			return false
		}
	}
	return true
}

// Key renders the order canonically — the string (group, order)
// optimization contexts are keyed by. The empty order keys as "".
func (o Order) Key() string {
	if len(o) == 0 {
		return ""
	}
	parts := make([]string, len(o))
	for i, k := range o {
		parts[i] = k.String()
	}
	return strings.Join(parts, ",")
}

// String renders e.g. "[t.a, t.b desc]".
func (o Order) String() string {
	parts := make([]string, len(o))
	for i, k := range o {
		parts[i] = k.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// OrderSource answers what order a base-relation scan delivers (nil
// when unknown or unsorted). The catalog is the usual source — order
// is a property of the stored extension, not of the plan shape, so it
// is deliberately kept out of node fingerprints.
type OrderSource func(s *Scan) Order

// DeliveredOrder computes the sort order the tuple stream of n is
// guaranteed to have under the serial executor, given src for base
// scans (nil src means scans deliver no order):
//
//   - Sort delivers its keys;
//   - Select passes its input's order through (filtering preserves
//     relative order);
//   - a non-distinct Project delivers the longest prefix of its
//     input's order whose attributes survive the projection;
//   - MergeJoin delivers its left-key order for Inner and Left kinds
//     (right padding breaks it for the other kinds);
//   - StreamAgg delivers the order its input was consumed in;
//   - hash-based operators (Join, GroupBy, GenSel, MGOJ, distinct
//     Project) deliver nothing — their parallel and partitioned
//     engines do not preserve input order.
func DeliveredOrder(n Node, src OrderSource) Order {
	switch m := n.(type) {
	case *Scan:
		if src == nil {
			return nil
		}
		return src(m)
	case *Sort:
		return Order(m.Keys)
	case *Select:
		return DeliveredOrder(m.Input, src)
	case *Project:
		if m.Distinct {
			return nil
		}
		in := DeliveredOrder(m.Input, src)
		keep := make(map[schema.Attribute]bool, len(m.Attrs))
		for _, a := range m.Attrs {
			keep[a] = true
		}
		var out Order
		for _, k := range in {
			if !keep[k.Attr] {
				break
			}
			out = append(out, k)
		}
		return out
	case *MergeJoin:
		if m.Kind == InnerJoin || m.Kind == LeftJoin {
			return m.LeftOrder()
		}
		return nil
	case *StreamAgg:
		return m.InOrder
	default:
		return nil
	}
}

// detectDepth caps how many key levels DetectOrder searches for; the
// optimizer never needs more than a few leading keys and each level
// costs a pass over the relation per remaining column.
const detectDepth = 3

// DetectOrder finds the maximal physical sort order of a stored
// extension, greedily: at each level it picks the first schema-order,
// non-virtual column (ascending preferred over descending) that is
// monotone within the tie groups of the keys chosen so far. The
// result is deterministic for a given extension, and is what the
// statistics catalog records as a table's delivered scan order.
func DetectOrder(r *relation.Relation) Order {
	if r.Len() < 2 {
		return nil
	}
	s := r.Schema()
	var ord Order
	used := make(map[int]bool)
	idx := make([]int, 0, detectDepth)
	desc := make([]bool, 0, detectDepth)
	for len(ord) < detectDepth {
		found := false
		for i := 0; i < s.Len() && !found; i++ {
			if used[i] || s.At(i).Virtual {
				continue
			}
			for _, d := range []bool{false, true} {
				if sortedWithin(r, idx, desc, i, d) {
					ord = append(ord, SortKey{Attr: s.At(i), Desc: d})
					idx = append(idx, i)
					desc = append(desc, d)
					used[i] = true
					found = true
					break
				}
			}
		}
		if !found {
			break
		}
	}
	return ord
}

// sortedWithin reports whether column cand (direction candDesc) is
// monotone within every tie group of the prefix keys idx/desc.
func sortedWithin(r *relation.Relation, idx []int, desc []bool, cand int, candDesc bool) bool {
	tuples := r.Tuples()
	for i := 1; i < len(tuples); i++ {
		prev, cur := tuples[i-1], tuples[i]
		tie := true
		for j, k := range idx {
			c := compareForSort(prev[k], cur[k])
			if desc[j] {
				c = -c
			}
			if c != 0 {
				tie = false
				break
			}
		}
		if !tie {
			continue
		}
		c := compareForSort(prev[cand], cur[cand])
		if candDesc {
			c = -c
		}
		if c > 0 {
			return false
		}
	}
	return true
}

// OrderSourceFromDB builds an OrderSource that detects each base
// relation's physical order on first use and caches it — the source
// Validate verifies delivered-order claims against.
func OrderSourceFromDB(db Database) OrderSource {
	cache := make(map[string]Order)
	return func(s *Scan) Order {
		ord, ok := cache[s.Rel]
		if !ok {
			if rel, found := db[s.Rel]; found {
				ord = DetectOrder(rel)
			}
			cache[s.Rel] = ord
		}
		return RequalifyOrder(ord, s.Rel, s.Name())
	}
}

// RequalifyOrder rewrites the relation qualifier of every key from
// old to new (scans renamed with AS requalify their delivered order
// the same way they requalify their schema).
func RequalifyOrder(o Order, old, new string) Order {
	if old == new || len(o) == 0 {
		return o
	}
	out := make(Order, len(o))
	for i, k := range o {
		if k.Attr.Rel == old {
			k.Attr.Rel = new
		}
		out[i] = k
	}
	return out
}

// CompareForSort is the sort comparator of this package's physical
// operators: NULLs order after every non-NULL value ascending, and
// incomparable kinds order by rendered text for determinism. The
// merge-join and streaming-aggregation executors use it to walk (and
// verify) their sorted inputs.
func CompareForSort(a, b value.Value) int { return compareForSort(a, b) }

// CheckSorted verifies that a materialized relation is physically
// sorted by o, with this package's comparator — the runtime
// counterpart of Validate's static delivered-order check. Property
// suites run it on every winner whose plan claims a delivered order;
// the error names the first out-of-order row.
func CheckSorted(r *relation.Relation, o Order) error {
	if len(o) == 0 {
		return nil
	}
	s := r.Schema()
	idx := make([]int, len(o))
	for i, k := range o {
		idx[i] = s.IndexOf(k.Attr)
		if idx[i] < 0 {
			return fmt.Errorf("plan: order key %s not in schema %s", k.Attr, s)
		}
	}
	tuples := r.Tuples()
	for row := 1; row < len(tuples); row++ {
		for i, j := range idx {
			c := compareForSort(tuples[row-1][j], tuples[row][j])
			if o[i].Desc {
				c = -c
			}
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Errorf("plan: row %d violates order %s on %s", row, o, o[i].Attr)
			}
		}
	}
	return nil
}
