package plan

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	db := testDB()
	join := NewJoin(InnerJoin, expr.EqCols("r1", "x", "r2", "x"), NewScan("r1"), NewScan("r2"))
	plans := []Node{
		NewScan("r1"),
		join,
		NewSelect(expr.Eq(expr.Column("r1", "y"), expr.Int(10)), join),
		NewGenSel(expr.Eq(expr.Column("r2", "z"), expr.Int(200)),
			[]PreservedSpec{NewPreserved("r1")}, join),
		NewMGOJ(expr.EqCols("r1", "x", "r2", "x"),
			[]PreservedSpec{NewPreserved("r1")}, NewScan("r1"), NewScan("r2")),
		NewProject([]schema.Attribute{schema.Attr("r1", "x")}, true, join),
		NewProject([]schema.Attribute{schema.RID("r1")}, false, NewScan("r1")),
		NewSort([]SortKey{{Attr: schema.Attr("r1", "y")}}, 1, join),
	}
	for _, p := range plans {
		if err := Validate(p, db); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", p, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	db := testDB()
	join := NewJoin(InnerJoin, expr.EqCols("r1", "x", "r2", "x"), NewScan("r1"), NewScan("r2"))
	cases := []struct {
		name string
		p    Node
		want string
	}{
		{"unknown relation", NewScan("nosuch"), "unknown relation"},
		{"dangling predicate column",
			NewSelect(expr.Eq(expr.Column("r9", "q"), expr.Int(1)), join),
			"predicate attribute"},
		{"join predicate outside inputs",
			NewJoin(InnerJoin, expr.EqCols("r1", "x", "r9", "x"), NewScan("r1"), NewScan("r2")),
			"predicate attribute"},
		{"self-join without renaming",
			NewJoin(InnerJoin, expr.True{}, NewScan("r1"), NewScan("r1")),
			"share attributes"},
		{"preserved relation not an input",
			NewGenSel(expr.True{}, []PreservedSpec{NewPreserved("r9")}, join),
			"preserved relation"},
		{"MGOJ preserved outside inputs",
			NewMGOJ(expr.EqCols("r1", "x", "r2", "x"),
				[]PreservedSpec{NewPreserved("r9")}, NewScan("r1"), NewScan("r2")),
			"preserved relation"},
		{"projected attribute missing",
			NewProject([]schema.Attribute{schema.Attr("r1", "nope")}, false, join),
			"projected attribute"},
		{"sort key missing",
			NewSort([]SortKey{{Attr: schema.Attr("r2", "nope")}}, -1, join),
			"sort key"},
		{"group key missing",
			NewGroupBy([]schema.Attribute{schema.Attr("r1", "nope")}, nil, join),
			"group key"},
	}
	for _, c := range cases {
		err := Validate(c.p, db)
		if err == nil {
			t.Errorf("%s: Validate = nil, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

type foreignNode struct{ Node }

func TestValidateRejectsForeignNode(t *testing.T) {
	err := Validate(foreignNode{NewScan("r1")}, testDB())
	if err == nil || !strings.Contains(err.Error(), "unknown node type") {
		t.Errorf("Validate(foreign) = %v, want unknown node type error", err)
	}
}
