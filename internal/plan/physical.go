// Physical order-consuming operators. MergeJoin and StreamAgg are
// the plan-level spellings of the executor's sort-merge join and
// streaming sorted aggregation: logically identical to Join and
// GroupBy (Eval delegates to the same algebra reference semantics),
// but carrying the key order their inputs must be sorted in. The
// memo's ordered extraction is the only producer; it places them
// exactly where the required/delivered property analysis proves the
// input orders hold.
package plan

import (
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
)

// MergeJoin is a Join evaluated by merging inputs sorted on the equi
// keys: the i-th left key joins the i-th right key, both sorted with
// the i-th direction. Pred is the full join predicate — key
// equalities included — so the node is logically interchangeable with
// Join{Kind, Pred}; the executor re-derives the residual from it.
type MergeJoin struct {
	Kind  JoinKind
	Pred  expr.Pred
	LKeys []schema.Attribute
	RKeys []schema.Attribute
	Desc  []bool
	L, R  Node

	fp fpCache
}

// NewMergeJoin builds a merge join node; lkeys, rkeys and desc must
// be parallel and non-empty.
func NewMergeJoin(kind JoinKind, p expr.Pred, lkeys, rkeys []schema.Attribute, desc []bool, l, r Node) *MergeJoin {
	return &MergeJoin{Kind: kind, Pred: p, LKeys: lkeys, RKeys: rkeys, Desc: desc, L: l, R: r}
}

// LeftOrder is the order the left input must deliver — and the order
// the join's output has for Inner and Left kinds (unmatched left rows
// pad in place, and NULL keys sort consistently with the comparator).
func (m *MergeJoin) LeftOrder() Order {
	o := make(Order, len(m.LKeys))
	for i, a := range m.LKeys {
		o[i] = SortKey{Attr: a, Desc: m.Desc[i]}
	}
	return o
}

// RightOrder is the order the right input must deliver.
func (m *MergeJoin) RightOrder() Order {
	o := make(Order, len(m.RKeys))
	for i, a := range m.RKeys {
		o[i] = SortKey{Attr: a, Desc: m.Desc[i]}
	}
	return o
}

// Children implements Node.
func (m *MergeJoin) Children() []Node { return []Node{m.L, m.R} }

// WithChildren implements Node.
func (m *MergeJoin) WithChildren(ch []Node) Node {
	if len(ch) != 2 {
		panic("plan: MergeJoin needs two children")
	}
	return &MergeJoin{Kind: m.Kind, Pred: m.Pred, LKeys: m.LKeys, RKeys: m.RKeys, Desc: m.Desc, L: ch[0], R: ch[1]}
}

// Schema implements Node.
func (m *MergeJoin) Schema(db Database) (*schema.Schema, error) {
	ls, err := m.L.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := m.R.Schema(db)
	if err != nil {
		return nil, err
	}
	return ls.Concat(rs), nil
}

// Eval implements Node with the reference join semantics — the
// merge strategy is an executor concern; logically the node is its
// Join equivalent.
func (m *MergeJoin) Eval(db Database) (*relation.Relation, error) {
	return NewJoin(m.Kind, m.Pred, m.L, m.R).Eval(db)
}

func (m *MergeJoin) fingerprint() *fpVal {
	return m.fp.val(func() string {
		keys := make([]string, len(m.LKeys))
		for i := range m.LKeys {
			d := ""
			if m.Desc[i] {
				d = " desc"
			}
			keys[i] = m.LKeys[i].String() + "~" + m.RKeys[i].String() + d
		}
		return "(" + Key(m.L) + " MERGE" + m.Kind.String() + "[" + predKey(m.Pred) + "; " + strings.Join(keys, ",") + "] " + Key(m.R) + ")"
	})
}

// String implements Node.
func (m *MergeJoin) String() string { return m.fingerprint().key }

// StreamAgg is a GroupBy evaluated by streaming over an input sorted
// on all the grouping keys: group boundaries are key changes, so one
// accumulator set is live at a time. InOrder is the order the input
// is consumed in — a permutation of Keys with directions — and is
// also the order the output is emitted in. Keys keeps the logical
// GroupBy's column order, so the output schema is unchanged.
type StreamAgg struct {
	Keys    []schema.Attribute
	Aggs    []algebra.Aggregate
	InOrder Order
	Input   Node

	fp fpCache
}

// NewStreamAgg builds a streaming aggregation node; inOrder must
// cover every key (its attribute set equals the key set).
func NewStreamAgg(keys []schema.Attribute, aggs []algebra.Aggregate, inOrder Order, in Node) *StreamAgg {
	return &StreamAgg{Keys: keys, Aggs: aggs, InOrder: inOrder, Input: in}
}

// Children implements Node.
func (g *StreamAgg) Children() []Node { return []Node{g.Input} }

// WithChildren implements Node.
func (g *StreamAgg) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: StreamAgg needs one child")
	}
	return &StreamAgg{Keys: g.Keys, Aggs: g.Aggs, InOrder: g.InOrder, Input: ch[0]}
}

// Schema implements Node.
func (g *StreamAgg) Schema(db Database) (*schema.Schema, error) {
	return NewGroupBy(g.Keys, g.Aggs, g.Input).Schema(db)
}

// Eval implements Node with the reference grouping semantics.
func (g *StreamAgg) Eval(db Database) (*relation.Relation, error) {
	return NewGroupBy(g.Keys, g.Aggs, g.Input).Eval(db)
}

func (g *StreamAgg) fingerprint() *fpVal {
	return g.fp.val(func() string {
		keys := make([]string, len(g.Keys))
		for i, k := range g.Keys {
			keys[i] = k.String()
		}
		aggs := make([]string, len(g.Aggs))
		for i, a := range g.Aggs {
			aggs[i] = a.String()
		}
		return "SA[" + strings.Join(keys, ",") + "; " + strings.Join(aggs, ",") + "; " + g.InOrder.Key() + "](" + Key(g.Input) + ")"
	})
}

// String implements Node.
func (g *StreamAgg) String() string { return g.fingerprint().key }
