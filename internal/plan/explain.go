package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Annotation carries the measured (and optionally estimated)
// per-operator figures an instrumented execution attaches to a plan
// node: the substrate of EXPLAIN ANALYZE. Extra holds
// operator-specific counters (hash-build sizes, residual-predicate
// evaluations, null-padding counts, nested-loop fallbacks) keyed by
// stable snake_case names.
type Annotation struct {
	Rows    int              `json:"rows"`
	EstRows float64          `json:"estRows,omitempty"`
	Elapsed time.Duration    `json:"elapsedNs"`
	Extra   map[string]int64 `json:"extra,omitempty"`
}

// Annotations maps plan nodes (by identity — every node occurs once
// in a tree) to their measured figures.
type Annotations map[Node]*Annotation

// For returns the annotation for n, creating an empty one on first
// use.
func (a Annotations) For(n Node) *Annotation {
	an := a[n]
	if an == nil {
		an = &Annotation{}
		a[n] = an
	}
	return an
}

// AddExtra bumps an operator-specific counter on the annotation.
func (an *Annotation) AddExtra(key string, n int64) {
	if an.Extra == nil {
		an.Extra = make(map[string]int64)
	}
	an.Extra[key] += n
}

// TotalRows sums actual output cardinalities over the whole tree —
// the volume figure benchmarks report.
func (a Annotations) TotalRows() int64 {
	var total int64
	for _, an := range a {
		total += int64(an.Rows)
	}
	return total
}

// annotationSuffix renders one node's annotation in the EXPLAIN
// ANALYZE style: (actual rows=N est=M time=D [k=v ...]).
func annotationSuffix(an *Annotation) string {
	if an == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  (actual rows=%d", an.Rows)
	if an.EstRows > 0 {
		fmt.Fprintf(&b, " est=%.0f", an.EstRows)
	}
	fmt.Fprintf(&b, " time=%s", an.Elapsed.Round(time.Microsecond))
	keys := make([]string, 0, len(an.Extra))
	for k := range an.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, an.Extra[k])
	}
	b.WriteString(")")
	return b.String()
}

// IndentAnnotated renders the plan as Indent does, with each
// operator line carrying its measured annotation — the textual
// EXPLAIN ANALYZE output.
func IndentAnnotated(n Node, ann Annotations) string {
	plain := Indent(n)
	lines := strings.Split(strings.TrimRight(plain, "\n"), "\n")
	// Indent emits exactly one line per node in pre-order, so a
	// parallel pre-order walk pairs lines with nodes.
	var nodes []Node
	Walk(n, func(m Node) { nodes = append(nodes, m) })
	if len(nodes) != len(lines) {
		return plain // defensive: never mangle output on mismatch
	}
	var b strings.Builder
	for i, line := range lines {
		b.WriteString(line)
		if an := ann[nodes[i]]; an != nil {
			b.WriteString(annotationSuffix(an))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DOTAnnotated renders the plan as DOT does, with actual-vs-estimated
// row counts and timings appended to each node label.
func DOTAnnotated(n Node, ann Annotations) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  node [fontname=\"Helvetica\"];\n  rankdir=BT;\n")
	id := 0
	var rec func(n Node) int
	rec = func(n Node) int {
		my := id
		id++
		label, shape := describe(n)
		if an := ann[n]; an != nil {
			label += fmt.Sprintf("\nactual %d rows", an.Rows)
			if an.EstRows > 0 {
				label += fmt.Sprintf(" (est %.0f)", an.EstRows)
			}
			label += fmt.Sprintf("\n%s", an.Elapsed.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", my, label, shape)
		for _, c := range n.Children() {
			ci := rec(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ci, my)
		}
		return my
	}
	rec(n)
	b.WriteString("}\n")
	return b.String()
}
