package plan

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/value"
)

// BindParams returns a copy of n with every expr.Param{Idx: i}
// replaced by expr.Const{Val: params[i-1]}. This is the hit path of
// the plan cache: the optimizer runs once on the parameterized
// template and each request rebinds its own constants into the cached
// winner. Only the spine above a changed predicate is rebuilt —
// untouched subtrees (and their cached fingerprints) are shared with
// the template.
//
// A slot index outside 1..len(params) is an error: executing a plan
// with an unbound parameter would silently compare against NULL.
func BindParams(n Node, params []value.Value) (Node, error) {
	var bindErr error
	leaf := func(s expr.Scalar) expr.Scalar {
		p, ok := s.(expr.Param)
		if !ok {
			return s
		}
		if p.Idx < 1 || p.Idx > len(params) {
			if bindErr == nil {
				bindErr = fmt.Errorf("plan: parameter $%d out of range (have %d)", p.Idx, len(params))
			}
			return s
		}
		return expr.Const{Val: params[p.Idx-1]}
	}
	out, _ := bindNode(n, leaf)
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}

// ParamCount returns the highest parameter slot index referenced
// anywhere in n (0 for an unparameterized plan).
func ParamCount(n Node) int {
	max := 0
	note := func(s expr.Scalar) {
		if p, ok := s.(expr.Param); ok && p.Idx > max {
			max = p.Idx
		}
	}
	walkNodeScalars(n, note)
	return max
}

// bindNode rewrites one node bottom-up, reporting whether anything
// under it changed.
func bindNode(n Node, leaf func(expr.Scalar) expr.Scalar) (Node, bool) {
	switch x := n.(type) {
	case *Scan:
		return x, false
	case *Join:
		p, pc := expr.RewritePred(x.Pred, leaf)
		l, lc := bindNode(x.L, leaf)
		r, rc := bindNode(x.R, leaf)
		if !pc && !lc && !rc {
			return x, false
		}
		return NewJoin(x.Kind, p, l, r), true
	case *Select:
		p, pc := expr.RewritePred(x.Pred, leaf)
		in, ic := bindNode(x.Input, leaf)
		if !pc && !ic {
			return x, false
		}
		return NewSelect(p, in), true
	case *GenSel:
		p, pc := expr.RewritePred(x.Pred, leaf)
		in, ic := bindNode(x.Input, leaf)
		if !pc && !ic {
			return x, false
		}
		return &GenSel{Pred: p, Preserved: x.Preserved, Input: in}, true
	case *MGOJNode:
		p, pc := expr.RewritePred(x.Pred, leaf)
		l, lc := bindNode(x.L, leaf)
		r, rc := bindNode(x.R, leaf)
		if !pc && !lc && !rc {
			return x, false
		}
		return &MGOJNode{Pred: p, Preserved: x.Preserved, L: l, R: r}, true
	case *GroupBy:
		aggs, ac := bindAggs(x.Aggs, leaf)
		in, ic := bindNode(x.Input, leaf)
		if !ac && !ic {
			return x, false
		}
		return NewGroupBy(x.Keys, aggs, in), true
	case *Project:
		in, ic := bindNode(x.Input, leaf)
		if !ic {
			return x, false
		}
		return NewProject(x.Attrs, x.Distinct, in), true
	case *Sort:
		in, ic := bindNode(x.Input, leaf)
		if !ic {
			return x, false
		}
		return NewSortOrigin(x.Keys, x.Limit, in, x.Origin), true
	case *MergeJoin:
		p, pc := expr.RewritePred(x.Pred, leaf)
		l, lc := bindNode(x.L, leaf)
		r, rc := bindNode(x.R, leaf)
		if !pc && !lc && !rc {
			return x, false
		}
		return NewMergeJoin(x.Kind, p, x.LKeys, x.RKeys, x.Desc, l, r), true
	case *StreamAgg:
		aggs, ac := bindAggs(x.Aggs, leaf)
		in, ic := bindNode(x.Input, leaf)
		if !ac && !ic {
			return x, false
		}
		return NewStreamAgg(x.Keys, aggs, x.InOrder, in), true
	default:
		// Unknown node kinds pass through children generically.
		ch := n.Children()
		if len(ch) == 0 {
			return n, false
		}
		changed := false
		out := make([]Node, len(ch))
		for i, c := range ch {
			nc, cc := bindNode(c, leaf)
			out[i] = nc
			changed = changed || cc
		}
		if !changed {
			return n, false
		}
		return n.WithChildren(out), true
	}
}

func bindAggs(aggs []algebra.Aggregate, leaf func(expr.Scalar) expr.Scalar) ([]algebra.Aggregate, bool) {
	changed := false
	out := make([]algebra.Aggregate, len(aggs))
	for i, a := range aggs {
		out[i] = a
		if a.Arg != nil {
			s, c := expr.RewriteScalar(a.Arg, leaf)
			out[i].Arg = s
			changed = changed || c
		}
	}
	if !changed {
		return aggs, false
	}
	return out, true
}

// walkNodeScalars visits every scalar leaf in every predicate and
// aggregate argument of the tree.
func walkNodeScalars(n Node, f func(expr.Scalar)) {
	switch x := n.(type) {
	case *Join:
		expr.WalkScalars(x.Pred, f)
	case *Select:
		expr.WalkScalars(x.Pred, f)
	case *GenSel:
		expr.WalkScalars(x.Pred, f)
	case *MGOJNode:
		expr.WalkScalars(x.Pred, f)
	case *MergeJoin:
		expr.WalkScalars(x.Pred, f)
	case *GroupBy:
		for _, a := range x.Aggs {
			if a.Arg != nil {
				expr.WalkScalarLeaves(a.Arg, f)
			}
		}
	case *StreamAgg:
		for _, a := range x.Aggs {
			if a.Arg != nil {
				expr.WalkScalarLeaves(a.Arg, f)
			}
		}
	}
	for _, c := range n.Children() {
		walkNodeScalars(c, f)
	}
}
