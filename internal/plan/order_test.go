package plan

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func ordKeys(attrs ...schema.Attribute) []SortKey {
	ks := make([]SortKey, len(attrs))
	for i, a := range attrs {
		ks[i] = SortKey{Attr: a}
	}
	return ks
}

func TestOrderSatisfiesAndKey(t *testing.T) {
	a, b := schema.Attr("t", "a"), schema.Attr("t", "b")
	ab := OrderBy(a, b)
	justA := OrderBy(a)
	descA := Order{{Attr: a, Desc: true}}
	cases := []struct {
		o, req Order
		want   bool
	}{
		{ab, nil, true},            // every stream satisfies empty
		{nil, nil, true},           // no order satisfies empty
		{ab, justA, true},          // prefix
		{justA, ab, false},         // requirement longer than delivery
		{ab, ab, true},             // exact
		{descA, justA, false},      // direction mismatch
		{justA, descA, false},      // direction mismatch, other way
		{OrderBy(b, a), justA, false}, // wrong leading attr
		{nil, justA, false},        // nothing delivered
	}
	for i, c := range cases {
		if got := c.o.Satisfies(c.req); got != c.want {
			t.Errorf("case %d: %s.Satisfies(%s) = %v, want %v", i, c.o, c.req, got, c.want)
		}
	}
	if justA.Key() == descA.Key() {
		t.Error("Key must distinguish directions")
	}
	if (Order(nil)).Key() != "" {
		t.Error("empty order must key as \"\"")
	}
	if ab.Key() == justA.Key() {
		t.Error("Key must distinguish lengths")
	}
}

// orderTestRel builds t(a, b, c) sorted by (a asc, b desc); c is
// non-monotone in both directions within (a, b) tie groups, so the
// detected order stops at two keys.
func orderTestRel() *relation.Relation {
	return relation.NewBuilder("t", "a", "b", "c").
		Row(value.NewInt(1), value.NewInt(9), value.NewInt(5)).
		Row(value.NewInt(1), value.NewInt(9), value.NewInt(1)).
		Row(value.NewInt(1), value.NewInt(4), value.NewInt(2)).
		Row(value.NewInt(2), value.NewInt(7), value.NewInt(0)).
		Row(value.NewInt(2), value.NewInt(7), value.NewInt(9)).
		Row(value.NewInt(3), value.NewInt(8), value.NewInt(2)).
		Relation()
}

func TestDetectOrder(t *testing.T) {
	a, b := schema.Attr("t", "a"), schema.Attr("t", "b")
	got := DetectOrder(orderTestRel())
	want := Order{{Attr: a}, {Attr: b, Desc: true}}
	if got.Key() != want.Key() {
		t.Fatalf("DetectOrder = %s, want %s", got, want)
	}

	unsorted := relation.NewBuilder("u", "x").
		Row(value.NewInt(3)).Row(value.NewInt(1)).Row(value.NewInt(2)).
		Relation()
	if ord := DetectOrder(unsorted); len(ord) != 0 {
		t.Errorf("unsorted relation detected as %s", ord)
	}

	// NULLs sort last ascending — a NULL in the middle breaks asc but
	// trailing NULLs do not.
	trailingNull := relation.NewBuilder("n", "x").
		Row(value.NewInt(1)).Row(value.NewInt(2)).Row(value.Null).
		Relation()
	if ord := DetectOrder(trailingNull); len(ord) != 1 || ord[0].Desc {
		t.Errorf("trailing NULL should stay asc-sorted, got %s", ord)
	}
	midNull := relation.NewBuilder("n", "x").
		Row(value.NewInt(1)).Row(value.Null).Row(value.NewInt(2)).
		Relation()
	if ord := DetectOrder(midNull); len(ord) != 0 {
		t.Errorf("NULL in the middle is not sorted either way, got %s", ord)
	}

	// Single-row and empty relations deliver no detectable order.
	if ord := DetectOrder(relation.NewBuilder("e", "x").Relation()); ord != nil {
		t.Errorf("empty relation detected as %s", ord)
	}
}

func TestDeliveredOrderPerNode(t *testing.T) {
	a, b := schema.Attr("t", "a"), schema.Attr("t", "b")
	db := Database{"t": orderTestRel()}
	src := OrderSourceFromDB(db)
	scan := NewScan("t")

	scanOrd := DeliveredOrder(scan, src)
	if !scanOrd.Satisfies(OrderBy(a)) {
		t.Fatalf("scan order %s does not lead with t.a", scanOrd)
	}
	if DeliveredOrder(scan, nil) != nil {
		t.Error("nil source must mean no scan order")
	}

	// Select passes through; non-distinct Project keeps the surviving
	// prefix; distinct Project destroys order.
	sel := NewSelect(expr.Cmp{Op: value.LT, L: expr.Column("t", "a"), R: expr.Int(10)}, scan)
	if DeliveredOrder(sel, src).Key() != scanOrd.Key() {
		t.Error("Select must pass order through")
	}
	proj := NewProject([]schema.Attribute{a}, false, scan)
	if got := DeliveredOrder(proj, src); got.Key() != OrderBy(a).Key() {
		t.Errorf("Project[a] order = %s, want [t.a]", got)
	}
	projB := NewProject([]schema.Attribute{b}, false, scan)
	if got := DeliveredOrder(projB, src); len(got) != 0 {
		t.Errorf("Project[b] drops the leading key, order = %s", got)
	}
	dist := NewProject([]schema.Attribute{a}, true, scan)
	if DeliveredOrder(dist, src) != nil {
		t.Error("distinct Project must deliver nothing")
	}

	// Sort delivers its keys regardless of input.
	srt := NewSort([]SortKey{{Attr: b, Desc: true}}, -1, scan)
	if got := DeliveredOrder(srt, src); got.Key() != (Order{{Attr: b, Desc: true}}).Key() {
		t.Errorf("Sort order = %s", got)
	}

	// MergeJoin: left order for Inner/Left, nothing for Right/Full.
	other := relation.NewBuilder("s", "a").
		Row(value.NewInt(1)).Row(value.NewInt(2)).Relation()
	db["s"] = other
	pred := expr.EqCols("t", "a", "s", "a")
	lk := []schema.Attribute{a}
	rk := []schema.Attribute{schema.Attr("s", "a")}
	for _, kind := range []JoinKind{InnerJoin, LeftJoin} {
		mj := NewMergeJoin(kind, pred, lk, rk, []bool{false}, NewScan("t"), NewScan("s"))
		if got := DeliveredOrder(mj, src); got.Key() != OrderBy(a).Key() {
			t.Errorf("%s merge join order = %s, want [t.a]", kind, got)
		}
	}
	for _, kind := range []JoinKind{RightJoin, FullJoin} {
		mj := NewMergeJoin(kind, pred, lk, rk, []bool{false}, NewScan("t"), NewScan("s"))
		if got := DeliveredOrder(mj, src); got != nil {
			t.Errorf("%s merge join must deliver nothing, got %s", kind, got)
		}
	}

	// StreamAgg delivers its input order; hash operators nothing.
	sa := NewStreamAgg([]schema.Attribute{a},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "c")}},
		OrderBy(a), scan)
	if got := DeliveredOrder(sa, src); got.Key() != OrderBy(a).Key() {
		t.Errorf("StreamAgg order = %s", got)
	}
	hj := NewJoin(InnerJoin, pred, NewScan("t"), NewScan("s"))
	if DeliveredOrder(hj, src) != nil {
		t.Error("hash join must deliver nothing")
	}
	gb := NewGroupBy([]schema.Attribute{a}, nil, scan)
	if DeliveredOrder(gb, src) != nil {
		t.Error("hash GroupBy must deliver nothing")
	}
}

func TestRequalifyOrder(t *testing.T) {
	o := OrderBy(schema.Attr("t", "a"), schema.Attr("t", "b"))
	q := RequalifyOrder(o, "t", "x")
	if q.Key() != OrderBy(schema.Attr("x", "a"), schema.Attr("x", "b")).Key() {
		t.Errorf("requalified = %s", q)
	}
	if RequalifyOrder(o, "t", "t").Key() != o.Key() {
		t.Error("same-name requalify must be identity")
	}
	// Aliased scans requalify the detected order to the alias.
	db := Database{"t": orderTestRel()}
	src := OrderSourceFromDB(db)
	al := NewScanAs("t", "u")
	got := DeliveredOrder(al, src)
	if len(got) == 0 || got[0].Attr != schema.Attr("u", "a") {
		t.Errorf("aliased scan order = %s, want u.a leading", got)
	}
}

// topKInput builds n rows with heavy duplication in the key column
// (forcing tie-breaks), interspersed NULLs, and a payload column that
// distinguishes physically distinct rows with equal keys.
func topKInput(n int) *relation.Relation {
	b := relation.NewBuilder("t", "k", "p")
	for i := 0; i < n; i++ {
		var k value.Value
		switch {
		case i%11 == 3:
			k = value.Null
		default:
			k = value.NewInt(int64((i * 37) % 10)) // many duplicates
		}
		b.Row(k, value.NewInt(int64(i)))
	}
	return b.Relation()
}

// TestSortRowsTopKPinnedToFullSort is the satellite pin: for every
// limit, the bounded-heap top-K selection must return row-for-row the
// same output as the full stable sort truncated — including stable
// tie order among equal keys and NULL placement.
func TestSortRowsTopKPinnedToFullSort(t *testing.T) {
	in := topKInput(100)
	keySets := [][]SortKey{
		{{Attr: schema.Attr("t", "k")}},
		{{Attr: schema.Attr("t", "k"), Desc: true}},
		{{Attr: schema.Attr("t", "k")}, {Attr: schema.Attr("t", "p"), Desc: true}},
	}
	for ki, keys := range keySets {
		idx := []int{0}
		if len(keys) == 2 {
			idx = []int{0, 1}
		}
		for _, limit := range []int{0, 1, 2, 7, 50, 99} {
			want := sortRowsAll(in, keys, idx, limit)
			got := sortRowsTopK(in, keys, idx, limit)
			if got.Len() != want.Len() {
				t.Fatalf("keys=%d limit=%d: topK %d rows, full %d", ki, limit, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				for j := range got.Tuple(i) {
					if !value.Equal(got.Tuple(i)[j], want.Tuple(i)[j]) {
						t.Fatalf("keys=%d limit=%d row %d differs:\ntopK: %v\nfull: %v",
							ki, limit, i, got.Tuple(i), want.Tuple(i))
					}
				}
			}
		}
	}
	// The dispatch in SortRows: limit >= Len takes the full path,
	// limit < Len the heap; both must agree at the boundary.
	keys := keySets[0]
	atLen, _ := SortRows(in, keys, in.Len())
	under, _ := SortRows(in, keys, in.Len()-1)
	if atLen.Len() != in.Len() || under.Len() != in.Len()-1 {
		t.Fatalf("boundary limits wrong: %d, %d", atLen.Len(), under.Len())
	}
	for i := 0; i < under.Len(); i++ {
		if !value.Equal(atLen.Tuple(i)[1], under.Tuple(i)[1]) {
			t.Fatalf("boundary row %d differs", i)
		}
	}
}

// BenchmarkSortRows contrasts the full sort against the bounded heap
// at small k — the top-K path should not allocate or compare
// proportionally to n log n.
func BenchmarkSortRows(b *testing.B) {
	in := topKInput(10000)
	keys := []SortKey{{Attr: schema.Attr("t", "k")}, {Attr: schema.Attr("t", "p")}}
	for _, limit := range []int{-1, 10, 100} {
		name := "full"
		if limit >= 0 {
			name = fmt.Sprintf("top%d", limit)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SortRows(in, keys, limit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
