package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// SortKey orders by one attribute; NULLs sort last ascending (first
// descending), matching common SQL defaults.
type SortKey struct {
	Attr schema.Attribute
	Desc bool
}

// String renders e.g. "t.a desc".
func (k SortKey) String() string {
	if k.Desc {
		return k.Attr.String() + " desc"
	}
	return k.Attr.String()
}

// Sort orders its input by the keys and optionally keeps only the
// first Limit rows (Limit < 0 means no limit). It is a presentation
// operator: lowering places it at the root and the reordering rules
// pass over it untouched.
type Sort struct {
	Keys  []SortKey
	Limit int
	Input Node

	fp fpCache
}

// NewSort builds a sort node; limit < 0 disables the limit.
func NewSort(keys []SortKey, limit int, in Node) *Sort {
	return &Sort{Keys: keys, Limit: limit, Input: in}
}

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: Sort needs one child")
	}
	return &Sort{Keys: s.Keys, Limit: s.Limit, Input: ch[0]}
}

// Schema implements Node.
func (s *Sort) Schema(db Database) (*schema.Schema, error) { return s.Input.Schema(db) }

// Eval implements Node.
func (s *Sort) Eval(db Database) (*relation.Relation, error) {
	in, err := s.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return SortRows(in, s.Keys, s.Limit)
}

// SortRows applies the ordering and limit to a materialized relation.
func SortRows(in *relation.Relation, keys []SortKey, limit int) (*relation.Relation, error) {
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = in.Schema().IndexOf(k.Attr)
		if idx[i] < 0 {
			return nil, fmt.Errorf("plan: sort key %s not in %s", k.Attr, in.Schema())
		}
	}
	rows := append([]relation.Tuple(nil), in.Tuples()...)
	sort.SliceStable(rows, func(a, b int) bool {
		for i, j := range idx {
			va, vb := rows[a][j], rows[b][j]
			c := compareForSort(va, vb)
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := relation.New(in.Schema())
	for _, t := range rows {
		out.Append(t)
	}
	return out, nil
}

// compareForSort orders values with NULLs after every non-NULL value.
func compareForSort(a, b value.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return 1
	case b.IsNull():
		return -1
	}
	if c, ok := value.Compare(a, b); ok {
		return c
	}
	// Incomparable kinds: order by rendered text for determinism.
	as, bs := a.Key(), b.Key()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func (s *Sort) fingerprint() *fpVal {
	return s.fp.val(func() string {
		keys := make([]string, len(s.Keys))
		for i, k := range s.Keys {
			keys[i] = k.String()
		}
		lim := ""
		if s.Limit >= 0 {
			lim = fmt.Sprintf(" limit %d", s.Limit)
		}
		return fmt.Sprintf("SORT[%s%s](%s)", strings.Join(keys, ","), lim, Key(s.Input))
	})
}

// String implements Node.
func (s *Sort) String() string { return s.fingerprint().key }
