package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// SortKey orders by one attribute; NULLs sort last ascending (first
// descending), matching common SQL defaults.
type SortKey struct {
	Attr schema.Attribute
	Desc bool
}

// String renders e.g. "t.a desc".
func (k SortKey) String() string {
	if k.Desc {
		return k.Attr.String() + " desc"
	}
	return k.Attr.String()
}

// Sort origins, carried for EXPLAIN provenance: who asked for this
// sort. The zero value ("") renders as nothing, keeping plans that
// never met the order-aware optimizer unchanged.
const (
	// SortOriginQuery marks a sort the query text required (ORDER BY).
	SortOriginQuery = "query"
	// SortOriginEnforcer marks a sort the optimizer injected to
	// establish a required order no child delivered for free.
	SortOriginEnforcer = "enforcer"
)

// Sort orders its input by the keys and optionally keeps only the
// first Limit rows (Limit < 0 means no limit). Lowering places it at
// the root for ORDER BY/LIMIT and the reordering rules pass over it
// untouched; the order-aware memo additionally injects it as an
// enforcer wherever a required order must be established.
type Sort struct {
	Keys  []SortKey
	Limit int
	// Origin records provenance for EXPLAIN (SortOriginQuery,
	// SortOriginEnforcer, or ""). It is excluded from the fingerprint:
	// two sorts with the same keys are the same operator regardless of
	// who asked for them.
	Origin string
	Input  Node

	fp fpCache
}

// NewSort builds a sort node; limit < 0 disables the limit.
func NewSort(keys []SortKey, limit int, in Node) *Sort {
	return &Sort{Keys: keys, Limit: limit, Input: in}
}

// NewSortOrigin is NewSort with explicit provenance.
func NewSortOrigin(keys []SortKey, limit int, in Node, origin string) *Sort {
	return &Sort{Keys: keys, Limit: limit, Origin: origin, Input: in}
}

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("plan: Sort needs one child")
	}
	return &Sort{Keys: s.Keys, Limit: s.Limit, Origin: s.Origin, Input: ch[0]}
}

// Schema implements Node.
func (s *Sort) Schema(db Database) (*schema.Schema, error) { return s.Input.Schema(db) }

// Eval implements Node.
func (s *Sort) Eval(db Database) (*relation.Relation, error) {
	in, err := s.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	return SortRows(in, s.Keys, s.Limit)
}

// SortRows applies the ordering and limit to a materialized relation.
// With a limit below the input size it selects the top K rows with a
// bounded heap — O(n log k) instead of sorting everything — and is
// pinned row-identical to the full sort-then-truncate: ties break by
// original row position, which is exactly what the stable sort did.
func SortRows(in *relation.Relation, keys []SortKey, limit int) (*relation.Relation, error) {
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = in.Schema().IndexOf(k.Attr)
		if idx[i] < 0 {
			return nil, fmt.Errorf("plan: sort key %s not in %s", k.Attr, in.Schema())
		}
	}
	if limit >= 0 && limit < in.Len() {
		return sortRowsTopK(in, keys, idx, limit), nil
	}
	return sortRowsAll(in, keys, idx, limit), nil
}

// sortRowsAll is the full stable sort (and the reference the top-K
// selection is pinned against in the tests).
func sortRowsAll(in *relation.Relation, keys []SortKey, idx []int, limit int) *relation.Relation {
	rows := append([]relation.Tuple(nil), in.Tuples()...)
	sort.SliceStable(rows, func(a, b int) bool {
		for i, j := range idx {
			va, vb := rows[a][j], rows[b][j]
			c := compareForSort(va, vb)
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := relation.New(in.Schema())
	for _, t := range rows {
		out.Append(t)
	}
	return out
}

// sortRowsTopK selects the first limit rows of the sorted order with
// a bounded max-heap of row indexes: a row enters only when it beats
// the current k-th row, so n-k rows cost one comparison each. The
// (keys, original position) comparator is a total order, which makes
// the selection — and the final in-heap sort — reproduce the stable
// full sort's output exactly.
func sortRowsTopK(in *relation.Relation, keys []SortKey, idx []int, limit int) *relation.Relation {
	out := relation.New(in.Schema())
	if limit == 0 {
		return out
	}
	tuples := in.Tuples()
	// less orders by the sort keys, then by original position —
	// stable-tie semantics as a strict weak... in fact total order.
	less := func(a, b int) bool {
		for i, j := range idx {
			c := compareForSort(tuples[a][j], tuples[b][j])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	// heap[0] is the WORST of the kept rows (max-heap under less).
	heap := make([]int, 0, limit)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && less(heap[big], heap[l]) {
				big = l
			}
			if r < len(heap) && less(heap[big], heap[r]) {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[p], heap[i]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for i := range tuples {
		if len(heap) < limit {
			heap = append(heap, i)
			siftUp(len(heap) - 1)
			continue
		}
		if less(i, heap[0]) {
			heap[0] = i
			siftDown(0)
		}
	}
	sort.Slice(heap, func(a, b int) bool { return less(heap[a], heap[b]) })
	for _, i := range heap {
		out.Append(tuples[i])
	}
	return out
}

// compareForSort orders values with NULLs after every non-NULL value.
func compareForSort(a, b value.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return 1
	case b.IsNull():
		return -1
	}
	if c, ok := value.Compare(a, b); ok {
		return c
	}
	// Incomparable kinds: order by rendered text for determinism.
	as, bs := a.Key(), b.Key()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func (s *Sort) fingerprint() *fpVal {
	return s.fp.val(func() string {
		keys := make([]string, len(s.Keys))
		for i, k := range s.Keys {
			keys[i] = k.String()
		}
		lim := ""
		if s.Limit >= 0 {
			lim = fmt.Sprintf(" limit %d", s.Limit)
		}
		return fmt.Sprintf("SORT[%s%s](%s)", strings.Join(keys, ","), lim, Key(s.Input))
	})
}

// String implements Node.
func (s *Sort) String() string { return s.fingerprint().key }
