package plan

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestJSONRoundTrip pins EncodeJSON ∘ DecodeJSON = identity (up to
// canonical strings) across every operator and predicate form, and
// that the decoded plan evaluates identically.
func TestJSONRoundTrip(t *testing.T) {
	db := testDB()
	p := expr.EqCols("r1", "x", "r2", "x")
	disj := expr.Or(
		expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Int(3)},
		expr.Not{P: expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"),
			R: expr.Arith{Op: expr.Mul, L: expr.Float(1.5), R: expr.Column("r1", "y")}}},
	)
	plans := []Node{
		NewScan("r1"),
		NewScanAs("r1", "alias"),
		NewJoin(FullJoin, expr.And(p, disj), NewScan("r1"), NewScan("r2")),
		NewSelect(expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"), R: expr.Str("lit")}, NewScan("r1")),
		NewGenSel(p, []PreservedSpec{NewPreserved("r1"), NewPreserved("r1", "r2")},
			NewJoin(LeftJoin, p, NewScan("r1"), NewScan("r2"))),
		NewMGOJ(p, []PreservedSpec{NewPreserved("r2")}, NewScan("r1"), NewScan("r2")),
		NewGroupBy(
			[]schema.Attribute{schema.Attr("r1", "x"), schema.RID("r1")},
			[]algebra.Aggregate{
				{Func: algebra.CountStar, Out: schema.Attr("q", "a")},
				{Func: algebra.Count, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "b"), NullIfEmpty: true},
				{Func: algebra.SumDistinct, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "c")},
				{Func: algebra.Avg, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "d")},
			},
			NewScan("r1")),
		NewProject([]schema.Attribute{schema.Attr("r1", "x")}, true, NewScan("r1")),
		NewSort([]SortKey{{Attr: schema.Attr("r1", "x"), Desc: true}}, 3,
			NewJoin(InnerJoin, p, NewScan("r1"), NewScan("r2"))),
		NewSort(nil, -1, NewScan("r1")),
		NewJoin(InnerJoin, expr.True{}, NewScan("r1"), NewScan("r2")),
		NewMergeJoin(LeftJoin, p,
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]schema.Attribute{schema.Attr("r2", "x")},
			[]bool{true}, NewScan("r1"), NewScan("r2")),
		NewStreamAgg(
			[]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "y")},
			[]algebra.Aggregate{
				{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
				{Func: algebra.Sum, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "s"), NullIfEmpty: true},
			},
			Order{{Attr: schema.Attr("r1", "y"), Desc: true}, {Attr: schema.Attr("r1", "x")}},
			NewScan("r1")),
	}
	for _, orig := range plans {
		data, err := EncodeJSON(orig)
		if err != nil {
			t.Fatalf("encode %s: %v", orig, err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("decode %s: %v\njson: %s", orig, err, data)
		}
		if back.String() != orig.String() {
			t.Errorf("round trip changed plan:\norig: %s\nback: %s", orig, back)
		}
		ok, err := Equivalent(orig, back, db)
		if err != nil {
			t.Fatalf("%s: %v", orig, err)
		}
		if !ok {
			t.Errorf("decoded plan evaluates differently: %s", orig)
		}
	}
}

// TestJSONGroupByNullIfEmpty: the count-bug flag must survive.
func TestJSONGroupByNullIfEmpty(t *testing.T) {
	g := NewGroupBy(nil,
		[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r1", "x"),
			Out: schema.Attr("q", "c"), NullIfEmpty: true}},
		NewScan("r1"))
	data, err := EncodeJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.(*GroupBy).Aggs[0].NullIfEmpty {
		t.Error("NullIfEmpty lost in round trip")
	}
}

// TestJSONSortOriginRoundTrip: the Origin provenance is excluded from
// the fingerprint (so String-comparison round trips cannot see it) but
// must survive JSON encoding — EXPLAIN consumers rely on it to tell
// query-required sorts from optimizer-injected enforcers.
func TestJSONSortOriginRoundTrip(t *testing.T) {
	for _, origin := range []string{SortOriginQuery, SortOriginEnforcer, ""} {
		orig := NewSortOrigin([]SortKey{{Attr: schema.Attr("r1", "x")}}, -1, NewScan("r1"), origin)
		data, err := EncodeJSON(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := back.(*Sort)
		if !ok {
			t.Fatalf("decoded %T, want *Sort", back)
		}
		if s.Origin != origin {
			t.Errorf("origin %q round-tripped as %q", origin, s.Origin)
		}
	}
	// MergeJoin key directions and StreamAgg input order are part of
	// the fingerprint, but pin the decoded fields directly too.
	mj := NewMergeJoin(InnerJoin, expr.EqCols("r1", "x", "r2", "x"),
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]bool{true}, NewScan("r1"), NewScan("r2"))
	data, err := EncodeJSON(mj)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := back.(*MergeJoin)
	if !ok || !m.Desc[0] || m.LKeys[0] != schema.Attr("r1", "x") || m.RKeys[0] != schema.Attr("r2", "x") {
		t.Fatalf("merge join fields lost in round trip: %#v", back)
	}
	sa := NewStreamAgg([]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		Order{{Attr: schema.Attr("r1", "x"), Desc: true}}, NewScan("r1"))
	if data, err = EncodeJSON(sa); err != nil {
		t.Fatal(err)
	}
	if back, err = DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	g, ok := back.(*StreamAgg)
	if !ok || g.InOrder.Key() != sa.InOrder.Key() {
		t.Fatalf("stream agg input order lost in round trip: %#v", back)
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	bad := []string{
		``,
		`{"op":"nosuch"}`,
		`{"op":"scan"}`,
		`{"op":"join","kind":"XX","pred":{"kind":"true"},"left":{"op":"scan","rel":"a"},"right":{"op":"scan","rel":"b"}}`,
		`{"op":"join","kind":"JOIN","pred":{"kind":"wat"},"left":{"op":"scan","rel":"a"},"right":{"op":"scan","rel":"b"}}`,
		`{"op":"groupby","input":{"op":"scan","rel":"a"},"aggs":[{"func":"median","out":{"rel":"q","col":"c"}}]}`,
		// mergejoin with mismatched key lists (one lkey, no rkeys/desc).
		`{"op":"mergejoin","kind":"JOIN","pred":{"kind":"true"},"left":{"op":"scan","rel":"a"},"right":{"op":"scan","rel":"b"},"lkeys":[{"rel":"a","col":"x"}]}`,
	}
	for _, b := range bad {
		if _, err := DecodeJSON([]byte(b)); err == nil {
			t.Errorf("DecodeJSON(%q) should fail", b)
		}
	}
}
