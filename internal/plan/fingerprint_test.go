package plan

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
)

func fpQuery() Node {
	j := NewJoin(LeftJoin, expr.EqCols("r1", "x", "r2", "x"),
		NewScan("r1"),
		NewJoin(InnerJoin, expr.EqCols("r2", "y", "r3", "y"),
			NewScan("r2"), NewScan("r3")))
	gs := NewGenSel(expr.EqCols("r1", "y", "r3", "x"),
		[]PreservedSpec{NewPreserved("r1")}, j)
	return NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x")}, nil,
		NewSelect(expr.EqCols("r1", "x", "r2", "x"), gs))
}

// TestKeyMatchesString pins the contract Key is built on: the cached
// key is byte-for-byte the canonical String rendering, for every
// operator kind.
func TestKeyMatchesString(t *testing.T) {
	q := fpQuery()
	Walk(q, func(n Node) {
		if Key(n) != n.String() {
			t.Errorf("Key(%T) = %q, String = %q", n, Key(n), n.String())
		}
	})
	srt := NewSort([]SortKey{{Attr: schema.Attr("r1", "x")}}, 3, NewScan("r1"))
	if Key(srt) != srt.String() {
		t.Errorf("Sort Key %q != String %q", Key(srt), srt.String())
	}
	mg := NewMGOJ(expr.EqCols("r1", "x", "r2", "x"),
		[]PreservedSpec{NewPreserved("r1")}, NewScan("r1"), NewScan("r2"))
	if Key(mg) != mg.String() {
		t.Errorf("MGOJ Key %q != String %q", Key(mg), mg.String())
	}
}

// TestFingerprintStable: same node, same fingerprint; equal trees
// built independently agree; distinct trees disagree.
func TestFingerprintStable(t *testing.T) {
	a, b := fpQuery(), fpQuery()
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("equal plans must share a fingerprint")
	}
	if Key(a) != Key(b) {
		t.Error("equal plans must share a key")
	}
	other := NewScan("r9")
	if Fingerprint(a) == Fingerprint(other) {
		t.Error("distinct plans should not collide on this input")
	}
	// Repeated calls hit the cache and return identical values.
	if Fingerprint(a) != Fingerprint(a) || Key(a) != Key(a) {
		t.Error("cached fingerprint must be stable")
	}
}

// TestWithChildrenFreshFingerprint: rewriting a node yields a fresh
// cache, so the new tree's key reflects the new child while the old
// tree's cached key is untouched.
func TestWithChildrenFreshFingerprint(t *testing.T) {
	j := NewJoin(InnerJoin, expr.EqCols("r1", "x", "r2", "x"),
		NewScan("r1"), NewScan("r2"))
	oldKey := Key(j)
	swapped := j.WithChildren([]Node{NewScan("r2"), NewScan("r1")})
	if Key(swapped) == oldKey {
		t.Error("rewritten join must have a different key")
	}
	if Key(j) != oldKey {
		t.Error("original key must be unchanged after WithChildren")
	}
}

// TestFingerprintConcurrent hammers one shared tree from many
// goroutines; run under -race this proves the lazy cache is sound for
// the parallel saturation workers that key shared subtrees
// concurrently.
func TestFingerprintConcurrent(t *testing.T) {
	q := fpQuery()
	want := Key(fpQuery()) // independently built twin, serial
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if Key(q) != want {
					t.Error("concurrent Key mismatch")
					return
				}
				_ = Fingerprint(q)
			}
		}()
	}
	wg.Wait()
}
