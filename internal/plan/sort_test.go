package plan

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func sortInput() Database {
	r := relation.NewBuilder("t", "a", "b").
		Row(value.NewInt(3), value.NewString("x")).
		Row(value.NewInt(1), value.NewString("z")).
		Row(value.Null, value.NewString("y")).
		Row(value.NewInt(1), value.NewString("a")).
		Relation()
	return Database{"t": r}
}

func TestSortAscNullsLast(t *testing.T) {
	db := sortInput()
	s := NewSort([]SortKey{{Attr: schema.Attr("t", "a")}}, -1, NewScan("t"))
	out, err := s.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	a := schema.Attr("t", "a")
	if out.Value(out.Tuple(0), a).Int() != 1 || !out.Value(out.Tuple(3), a).IsNull() {
		t.Errorf("asc nulls-last wrong:\n%s", out)
	}
	if sc, _ := s.Schema(db); !sc.Equal(db["t"].Schema()) {
		t.Error("sort schema must pass through")
	}
}

func TestSortDescAndTieBreak(t *testing.T) {
	db := sortInput()
	s := NewSort([]SortKey{
		{Attr: schema.Attr("t", "a"), Desc: true},
		{Attr: schema.Attr("t", "b")},
	}, -1, NewScan("t"))
	out, err := s.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	a, b := schema.Attr("t", "a"), schema.Attr("t", "b")
	// Desc: NULL first, then 3, then the two 1s tie-broken by b asc.
	if !out.Value(out.Tuple(0), a).IsNull() {
		t.Errorf("desc nulls-first wrong:\n%s", out)
	}
	if out.Value(out.Tuple(1), a).Int() != 3 {
		t.Errorf("desc order wrong:\n%s", out)
	}
	if out.Value(out.Tuple(2), b).Str() != "a" || out.Value(out.Tuple(3), b).Str() != "z" {
		t.Errorf("tie break wrong:\n%s", out)
	}
}

func TestSortLimit(t *testing.T) {
	db := sortInput()
	s := NewSort([]SortKey{{Attr: schema.Attr("t", "a")}}, 2, NewScan("t"))
	out, err := s.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("limit = %d rows", out.Len())
	}
	if !strings.Contains(s.String(), "limit 2") {
		t.Errorf("String = %q", s.String())
	}
	// Limit larger than input is a no-op.
	s2 := NewSort(nil, 100, NewScan("t"))
	out2, err := s2.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 4 {
		t.Errorf("over-limit rows = %d", out2.Len())
	}
}

func TestSortErrorsAndWithChildren(t *testing.T) {
	db := sortInput()
	bad := NewSort([]SortKey{{Attr: schema.Attr("t", "nosuch")}}, -1, NewScan("t"))
	if _, err := bad.Eval(db); err == nil {
		t.Error("missing sort key must fail")
	}
	s := NewSort([]SortKey{{Attr: schema.Attr("t", "a")}}, -1, NewScan("t"))
	if len(s.Children()) != 1 {
		t.Error("Children wrong")
	}
	replaced := s.WithChildren([]Node{NewScan("t")})
	if replaced.(*Sort).Limit != -1 {
		t.Error("WithChildren lost fields")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	s.WithChildren(nil)
}

func TestSortMixedKindsDeterministic(t *testing.T) {
	r := relation.NewBuilder("m", "v").
		Row(value.NewString("b")).
		Row(value.NewInt(1)).
		Row(value.NewString("a")).
		Relation()
	db := Database{"m": r}
	s := NewSort([]SortKey{{Attr: schema.Attr("m", "v")}}, -1, NewScan("m"))
	out1, err := s.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := s.Eval(db)
	for i := 0; i < out1.Len(); i++ {
		if !value.Equal(out1.Tuple(i)[0], out2.Tuple(i)[0]) {
			t.Fatal("mixed-kind ordering must be deterministic")
		}
	}
}

// TestNodeStringsAndEvalCoverage pushes the remaining node methods
// through their paces: MGOJ/GenSel/Project eval via plans, Indent of
// a Sort, and scan alias round trips.
func TestNodeStringsAndEvalCoverage(t *testing.T) {
	db := testDB()
	p := expr.EqCols("r1", "x", "r2", "x")
	mgoj := NewMGOJ(p, []PreservedSpec{NewPreserved("r1")}, NewScan("r1"), NewScan("r2"))
	out, err := mgoj.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("MGOJ eval empty")
	}
	if sc, err := mgoj.Schema(db); err != nil || sc.Len() != 6 {
		t.Errorf("MGOJ schema: %v %v", sc, err)
	}
	if mgoj.WithChildren([]Node{mgoj.R, mgoj.L}).(*MGOJNode).Pred.String() != p.String() {
		t.Error("MGOJ WithChildren lost pred")
	}
	if !strings.Contains(mgoj.String(), "MGOJ") {
		t.Errorf("MGOJ String = %q", mgoj)
	}

	gs := NewGenSel(p, []PreservedSpec{NewPreserved("r1")}, mgoj)
	if _, err := gs.Eval(db); err != nil {
		t.Fatal(err)
	}
	if sc, err := gs.Schema(db); err != nil || sc.Len() != 6 {
		t.Errorf("GS schema: %v %v", sc, err)
	}

	proj := NewProject([]schema.Attribute{schema.Attr("r1", "x")}, true, NewScan("r1"))
	if out, err := proj.Eval(db); err != nil || out.Len() != 2 {
		t.Errorf("project eval: %v %v", out, err)
	}
	if sc, err := proj.Schema(db); err != nil || sc.Len() != 1 {
		t.Errorf("project schema: %v %v", sc, err)
	}
	if proj.WithChildren([]Node{NewScan("r1")}).(*Project).Distinct != true {
		t.Error("project WithChildren lost distinct")
	}
	if !strings.Contains(proj.String(), "distinct") {
		t.Errorf("project String = %q", proj)
	}

	sel := NewSelect(p, NewScan("r1"))
	if sel.WithChildren([]Node{NewScan("r2")}).(*Select).Pred.String() != p.String() {
		t.Error("select WithChildren lost pred")
	}
	gb := NewGroupBy([]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "c")}}, NewScan("r1"))
	if gb.WithChildren([]Node{NewScan("r1")}).(*GroupBy).Aggs[0].Out != schema.Attr("q", "c") {
		t.Error("groupby WithChildren lost aggs")
	}
	if !strings.Contains(gb.String(), "count(*)") {
		t.Errorf("groupby String = %q", gb)
	}

	sorted := NewSort([]SortKey{{Attr: schema.Attr("r1", "x"), Desc: true}}, 1, NewScan("r1"))
	text := Indent(sorted)
	if !strings.Contains(text, "Sort") || !strings.Contains(text, "limit 1") {
		t.Errorf("Indent(Sort) = %q", text)
	}
	if !strings.Contains(DOT(sorted), "invtriangle") {
		t.Error("DOT(Sort) missing shape")
	}
	if !strings.Contains(DOT(sel), "diamond") {
		t.Error("DOT(Select) missing shape")
	}
	if !strings.Contains(DOT(mgoj), "MGOJ") {
		t.Error("DOT(MGOJ) missing label")
	}
	if !strings.Contains(DOT(NewProject(nil, false, NewScan("r1"))), "triangle") {
		t.Error("DOT(Project) missing shape")
	}
	// Schema error propagation through unary/binary nodes.
	for _, n := range []Node{
		NewSelect(p, NewScan("nosuch")),
		NewProject(nil, false, NewScan("nosuch")),
		NewGenSel(p, nil, NewScan("nosuch")),
		NewGroupBy(nil, nil, NewScan("nosuch")),
		NewSort(nil, -1, NewScan("nosuch")),
		NewMGOJ(p, nil, NewScan("nosuch"), NewScan("r1")),
		NewMGOJ(p, nil, NewScan("r1"), NewScan("nosuch")),
		NewJoin(InnerJoin, p, NewScan("nosuch"), NewScan("r1")),
	} {
		if _, err := n.Schema(db); err == nil {
			t.Errorf("schema error not propagated for %T", n)
		}
		if _, err := n.Eval(db); err == nil {
			t.Errorf("eval error not propagated for %T", n)
		}
	}
}
