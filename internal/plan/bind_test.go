package plan

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

// bindFixture: Join(r1.x = r2.x) under Select(r1.y = $1) with a second
// Select(r2.y = $2) on the right input — two parameter slots in
// different spines with a param-free join subtree between them.
func bindFixture() Node {
	return NewSelect(
		expr.Cmp{Op: value.EQ, L: expr.Column("r1", "y"), R: expr.Param{Idx: 1}},
		NewJoin(InnerJoin,
			expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"), R: expr.Column("r2", "x")},
			NewScan("r1"),
			NewSelect(
				expr.Cmp{Op: value.LT, L: expr.Column("r2", "y"), R: expr.Param{Idx: 2}},
				NewScan("r2"),
			),
		),
	)
}

func TestBindParamsEqualsDirectTree(t *testing.T) {
	tmpl := bindFixture()
	bound, err := BindParams(tmpl, []value.Value{value.NewInt(4), value.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	direct := NewSelect(
		expr.Cmp{Op: value.EQ, L: expr.Column("r1", "y"), R: expr.Int(4)},
		NewJoin(InnerJoin,
			expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"), R: expr.Column("r2", "x")},
			NewScan("r1"),
			NewSelect(
				expr.Cmp{Op: value.LT, L: expr.Column("r2", "y"), R: expr.Int(7)},
				NewScan("r2"),
			),
		),
	)
	if Key(bound) != Key(direct) {
		t.Fatalf("bound key != direct key:\n  bound  %s\n  direct %s", Key(bound), Key(direct))
	}
	if Fingerprint(bound) != Fingerprint(direct) {
		t.Fatal("fingerprints diverge for identical trees")
	}
	// The template is untouched: its key still renders the $n slots.
	if k := Key(tmpl); !strings.Contains(k, "$1") || !strings.Contains(k, "$2") {
		t.Fatalf("template mutated by BindParams: %s", k)
	}
}

// TestBindParamsSharesUnchangedSubtrees: rebinding rebuilds only the
// spine above changed predicates; param-free subtrees are shared
// pointer-identically with the template, so their cached fingerprints
// carry over to every bound plan.
func TestBindParamsSharesUnchangedSubtrees(t *testing.T) {
	tmpl := bindFixture().(*Select)
	join := tmpl.Input.(*Join)

	bound, err := BindParams(tmpl, []value.Value{value.NewInt(1), value.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	bj := bound.(*Select).Input.(*Join)
	if bj == join {
		t.Fatal("join spine must be rebuilt: its right input holds $2")
	}
	if bj.L != join.L {
		t.Fatal("param-free left scan must be shared with the template")
	}
	if bj.R == join.R {
		t.Fatal("right input holds $2 and must be rebuilt")
	}
	if bj.R.(*Select).Input != join.R.(*Select).Input {
		t.Fatal("scan under the parameterized select must be shared")
	}

	// A tree with no params at all comes back as-is.
	free := NewSelect(
		expr.Cmp{Op: value.EQ, L: expr.Column("r1", "y"), R: expr.Int(3)},
		NewScan("r1"),
	)
	same, err := BindParams(free, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != Node(free) {
		t.Fatal("param-free tree must be returned unchanged")
	}
}

func TestBindParamsOutOfRange(t *testing.T) {
	tmpl := bindFixture()
	// Two slots, one value: binding must fail closed, not compare
	// against NULL at runtime.
	if _, err := BindParams(tmpl, []value.Value{value.NewInt(4)}); err == nil {
		t.Fatal("want out-of-range error for $2 with 1 param")
	} else if !strings.Contains(err.Error(), "$2") {
		t.Fatalf("error should name the slot: %v", err)
	}
	if _, err := BindParams(tmpl, nil); err == nil {
		t.Fatal("want out-of-range error with no params")
	}
}

func TestParamCount(t *testing.T) {
	if got := ParamCount(bindFixture()); got != 2 {
		t.Fatalf("ParamCount = %d, want 2", got)
	}
	free := NewSelect(
		expr.Cmp{Op: value.EQ, L: expr.Column("r1", "y"), R: expr.Int(3)},
		NewScan("r1"),
	)
	if got := ParamCount(free); got != 0 {
		t.Fatalf("ParamCount on param-free tree = %d, want 0", got)
	}
}
