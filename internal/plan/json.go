package plan

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/schema"
)

// The JSON plan encoding is a tagged union per operator, used for
// plan caching and external tooling. EncodeJSON ∘ DecodeJSON is the
// identity up to canonical plan strings (round-trip tested).

type jsonNode struct {
	Op        string          `json:"op"`
	Rel       string          `json:"rel,omitempty"`
	As        string          `json:"as,omitempty"`
	Kind      string          `json:"kind,omitempty"`
	Pred      json.RawMessage `json:"pred,omitempty"`
	Left      json.RawMessage `json:"left,omitempty"`
	Right     json.RawMessage `json:"right,omitempty"`
	Input     json.RawMessage `json:"input,omitempty"`
	Preserved [][]string      `json:"preserved,omitempty"`
	Keys      []jsonAttr      `json:"keys,omitempty"`
	Aggs      []jsonAgg       `json:"aggs,omitempty"`
	Attrs     []jsonAttr      `json:"attrs,omitempty"`
	Distinct  bool            `json:"distinct,omitempty"`
	SortKeys  []jsonSortKey   `json:"sortKeys,omitempty"`
	Limit     *int            `json:"limit,omitempty"`
	Origin    string          `json:"origin,omitempty"`
	LKeys     []jsonAttr      `json:"lkeys,omitempty"`
	RKeys     []jsonAttr      `json:"rkeys,omitempty"`
	Desc      []bool          `json:"desc,omitempty"`
	InOrder   []jsonSortKey   `json:"inOrder,omitempty"`
	Actual    *jsonActual     `json:"actual,omitempty"`
}

type jsonAttr struct {
	Rel     string `json:"rel"`
	Col     string `json:"col"`
	Virtual bool   `json:"virtual,omitempty"`
}

type jsonAgg struct {
	Func        string          `json:"func"`
	Arg         json.RawMessage `json:"arg,omitempty"`
	Out         jsonAttr        `json:"out"`
	NullIfEmpty bool            `json:"nullIfEmpty,omitempty"`
}

type jsonSortKey struct {
	Attr jsonAttr `json:"attr"`
	Desc bool     `json:"desc,omitempty"`
}

// jsonActual carries a node's EXPLAIN ANALYZE measurements through
// the JSON encoding; absent on plain plans.
type jsonActual struct {
	Rows      int              `json:"rows"`
	EstRows   float64          `json:"estRows,omitempty"`
	ElapsedNs int64            `json:"elapsedNs"`
	Extra     map[string]int64 `json:"extra,omitempty"`
}

func attrToJSON(a schema.Attribute) jsonAttr {
	return jsonAttr{Rel: a.Rel, Col: a.Col, Virtual: a.Virtual}
}

func attrFromJSON(j jsonAttr) schema.Attribute {
	return schema.Attribute{Rel: j.Rel, Col: j.Col, Virtual: j.Virtual}
}

// EncodeJSON serializes a plan.
func EncodeJSON(n Node) ([]byte, error) { return encodeJSON(n, nil) }

// EncodeJSONAnnotated serializes a plan with each node's EXPLAIN
// ANALYZE annotation (actual rows, estimated rows, timing, operator
// counters) attached under the "actual" key. DecodeJSONAnnotated
// inverts it.
func EncodeJSONAnnotated(n Node, ann Annotations) ([]byte, error) {
	return encodeJSON(n, ann)
}

func encodeJSON(n Node, ann Annotations) ([]byte, error) {
	j, err := buildJSONNode(n, ann)
	if err != nil {
		return nil, err
	}
	if a := ann[n]; a != nil {
		j.Actual = &jsonActual{Rows: a.Rows, EstRows: a.EstRows, ElapsedNs: int64(a.Elapsed), Extra: a.Extra}
	}
	return json.Marshal(j)
}

func buildJSONNode(n Node, ann Annotations) (jsonNode, error) {
	switch m := n.(type) {
	case *Scan:
		return jsonNode{Op: "scan", Rel: m.Rel, As: m.As}, nil
	case *Join:
		pred, err := expr.EncodePred(m.Pred)
		if err != nil {
			return jsonNode{}, err
		}
		l, err := encodeJSON(m.L, ann)
		if err != nil {
			return jsonNode{}, err
		}
		r, err := encodeJSON(m.R, ann)
		if err != nil {
			return jsonNode{}, err
		}
		return jsonNode{Op: "join", Kind: m.Kind.String(), Pred: pred, Left: l, Right: r}, nil
	case *Select:
		pred, err := expr.EncodePred(m.Pred)
		if err != nil {
			return jsonNode{}, err
		}
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		return jsonNode{Op: "select", Pred: pred, Input: in}, nil
	case *GenSel:
		pred, err := expr.EncodePred(m.Pred)
		if err != nil {
			return jsonNode{}, err
		}
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		specs := make([][]string, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = append([]string(nil), s...)
		}
		return jsonNode{Op: "gensel", Pred: pred, Input: in, Preserved: specs}, nil
	case *MGOJNode:
		pred, err := expr.EncodePred(m.Pred)
		if err != nil {
			return jsonNode{}, err
		}
		l, err := encodeJSON(m.L, ann)
		if err != nil {
			return jsonNode{}, err
		}
		r, err := encodeJSON(m.R, ann)
		if err != nil {
			return jsonNode{}, err
		}
		specs := make([][]string, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = append([]string(nil), s...)
		}
		return jsonNode{Op: "mgoj", Pred: pred, Left: l, Right: r, Preserved: specs}, nil
	case *GroupBy:
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		keys := make([]jsonAttr, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = attrToJSON(k)
		}
		aggs, err := aggsToJSON(m.Aggs)
		if err != nil {
			return jsonNode{}, err
		}
		return jsonNode{Op: "groupby", Input: in, Keys: keys, Aggs: aggs}, nil
	case *Project:
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		attrs := make([]jsonAttr, len(m.Attrs))
		for i, a := range m.Attrs {
			attrs[i] = attrToJSON(a)
		}
		return jsonNode{Op: "project", Input: in, Attrs: attrs, Distinct: m.Distinct}, nil
	case *Sort:
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		keys := make([]jsonSortKey, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = jsonSortKey{Attr: attrToJSON(k.Attr), Desc: k.Desc}
		}
		limit := m.Limit
		return jsonNode{Op: "sort", Input: in, SortKeys: keys, Limit: &limit, Origin: m.Origin}, nil
	case *MergeJoin:
		pred, err := expr.EncodePred(m.Pred)
		if err != nil {
			return jsonNode{}, err
		}
		l, err := encodeJSON(m.L, ann)
		if err != nil {
			return jsonNode{}, err
		}
		r, err := encodeJSON(m.R, ann)
		if err != nil {
			return jsonNode{}, err
		}
		lk := make([]jsonAttr, len(m.LKeys))
		rk := make([]jsonAttr, len(m.RKeys))
		for i := range m.LKeys {
			lk[i] = attrToJSON(m.LKeys[i])
			rk[i] = attrToJSON(m.RKeys[i])
		}
		return jsonNode{Op: "mergejoin", Kind: m.Kind.String(), Pred: pred, Left: l, Right: r,
			LKeys: lk, RKeys: rk, Desc: append([]bool(nil), m.Desc...)}, nil
	case *StreamAgg:
		in, err := encodeJSON(m.Input, ann)
		if err != nil {
			return jsonNode{}, err
		}
		keys := make([]jsonAttr, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = attrToJSON(k)
		}
		aggs, err := aggsToJSON(m.Aggs)
		if err != nil {
			return jsonNode{}, err
		}
		ord := make([]jsonSortKey, len(m.InOrder))
		for i, k := range m.InOrder {
			ord[i] = jsonSortKey{Attr: attrToJSON(k.Attr), Desc: k.Desc}
		}
		return jsonNode{Op: "streamagg", Input: in, Keys: keys, Aggs: aggs, InOrder: ord}, nil
	default:
		return jsonNode{}, fmt.Errorf("plan: cannot encode %T", n)
	}
}

// aggsToJSON / aggsFromJSON convert aggregate lists, shared by the
// groupby and streamagg encodings.
func aggsToJSON(aggs []algebra.Aggregate) ([]jsonAgg, error) {
	out := make([]jsonAgg, len(aggs))
	for i, a := range aggs {
		ja := jsonAgg{Func: a.Func.String(), Out: attrToJSON(a.Out), NullIfEmpty: a.NullIfEmpty}
		if a.Arg != nil {
			arg, err := expr.EncodeScalar(a.Arg)
			if err != nil {
				return nil, err
			}
			ja.Arg = arg
		}
		out[i] = ja
	}
	return out, nil
}

func aggsFromJSON(jaggs []jsonAgg) ([]algebra.Aggregate, error) {
	aggs := make([]algebra.Aggregate, len(jaggs))
	for i, ja := range jaggs {
		fn, err := aggFuncOf(ja.Func)
		if err != nil {
			return nil, err
		}
		a := algebra.Aggregate{Func: fn, Out: attrFromJSON(ja.Out), NullIfEmpty: ja.NullIfEmpty}
		if len(ja.Arg) > 0 {
			arg, err := expr.DecodeScalar(ja.Arg)
			if err != nil {
				return nil, err
			}
			a.Arg = arg
		}
		aggs[i] = a
	}
	return aggs, nil
}

// DecodeJSON deserializes a plan.
func DecodeJSON(data []byte) (Node, error) { return decodeJSON(data, nil) }

// DecodeJSONAnnotated deserializes a plan encoded by
// EncodeJSONAnnotated, reconstructing the per-node annotations keyed
// by the freshly decoded nodes.
func DecodeJSONAnnotated(data []byte) (Node, Annotations, error) {
	ann := Annotations{}
	n, err := decodeJSON(data, ann)
	if err != nil {
		return nil, nil, err
	}
	return n, ann, nil
}

func decodeJSON(data []byte, ann Annotations) (Node, error) {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	n, err := nodeFromJSON(j, ann)
	if err != nil {
		return nil, err
	}
	if j.Actual != nil && ann != nil {
		ann[n] = &Annotation{
			Rows:    j.Actual.Rows,
			EstRows: j.Actual.EstRows,
			Elapsed: time.Duration(j.Actual.ElapsedNs),
			Extra:   j.Actual.Extra,
		}
	}
	return n, nil
}

func nodeFromJSON(j jsonNode, ann Annotations) (Node, error) {
	switch j.Op {
	case "scan":
		if j.Rel == "" {
			return nil, fmt.Errorf("plan: scan without relation")
		}
		return &Scan{Rel: j.Rel, As: j.As}, nil
	case "join", "mgoj":
		pred, err := expr.DecodePred(j.Pred)
		if err != nil {
			return nil, err
		}
		l, err := decodeJSON(j.Left, ann)
		if err != nil {
			return nil, err
		}
		r, err := decodeJSON(j.Right, ann)
		if err != nil {
			return nil, err
		}
		if j.Op == "mgoj" {
			return NewMGOJ(pred, specsFromJSON(j.Preserved), l, r), nil
		}
		kind, err := joinKindOf(j.Kind)
		if err != nil {
			return nil, err
		}
		return NewJoin(kind, pred, l, r), nil
	case "select", "gensel":
		pred, err := expr.DecodePred(j.Pred)
		if err != nil {
			return nil, err
		}
		in, err := decodeJSON(j.Input, ann)
		if err != nil {
			return nil, err
		}
		if j.Op == "select" {
			return NewSelect(pred, in), nil
		}
		return NewGenSel(pred, specsFromJSON(j.Preserved), in), nil
	case "groupby":
		in, err := decodeJSON(j.Input, ann)
		if err != nil {
			return nil, err
		}
		keys := make([]schema.Attribute, len(j.Keys))
		for i, k := range j.Keys {
			keys[i] = attrFromJSON(k)
		}
		aggs, err := aggsFromJSON(j.Aggs)
		if err != nil {
			return nil, err
		}
		return NewGroupBy(keys, aggs, in), nil
	case "project":
		in, err := decodeJSON(j.Input, ann)
		if err != nil {
			return nil, err
		}
		attrs := make([]schema.Attribute, len(j.Attrs))
		for i, a := range j.Attrs {
			attrs[i] = attrFromJSON(a)
		}
		return NewProject(attrs, j.Distinct, in), nil
	case "sort":
		in, err := decodeJSON(j.Input, ann)
		if err != nil {
			return nil, err
		}
		keys := make([]SortKey, len(j.SortKeys))
		for i, k := range j.SortKeys {
			keys[i] = SortKey{Attr: attrFromJSON(k.Attr), Desc: k.Desc}
		}
		limit := -1
		if j.Limit != nil {
			limit = *j.Limit
		}
		return NewSortOrigin(keys, limit, in, j.Origin), nil
	case "mergejoin":
		pred, err := expr.DecodePred(j.Pred)
		if err != nil {
			return nil, err
		}
		l, err := decodeJSON(j.Left, ann)
		if err != nil {
			return nil, err
		}
		r, err := decodeJSON(j.Right, ann)
		if err != nil {
			return nil, err
		}
		kind, err := joinKindOf(j.Kind)
		if err != nil {
			return nil, err
		}
		if len(j.LKeys) == 0 || len(j.LKeys) != len(j.RKeys) || len(j.LKeys) != len(j.Desc) {
			return nil, fmt.Errorf("plan: mergejoin with mismatched key lists")
		}
		lk := make([]schema.Attribute, len(j.LKeys))
		rk := make([]schema.Attribute, len(j.RKeys))
		for i := range j.LKeys {
			lk[i] = attrFromJSON(j.LKeys[i])
			rk[i] = attrFromJSON(j.RKeys[i])
		}
		return NewMergeJoin(kind, pred, lk, rk, append([]bool(nil), j.Desc...), l, r), nil
	case "streamagg":
		in, err := decodeJSON(j.Input, ann)
		if err != nil {
			return nil, err
		}
		keys := make([]schema.Attribute, len(j.Keys))
		for i, k := range j.Keys {
			keys[i] = attrFromJSON(k)
		}
		aggs, err := aggsFromJSON(j.Aggs)
		if err != nil {
			return nil, err
		}
		ord := make(Order, len(j.InOrder))
		for i, k := range j.InOrder {
			ord[i] = SortKey{Attr: attrFromJSON(k.Attr), Desc: k.Desc}
		}
		return NewStreamAgg(keys, aggs, ord, in), nil
	default:
		return nil, fmt.Errorf("plan: unknown operator %q", j.Op)
	}
}

func specsFromJSON(specs [][]string) []PreservedSpec {
	out := make([]PreservedSpec, len(specs))
	for i, s := range specs {
		out[i] = NewPreserved(s...)
	}
	return out
}

func joinKindOf(s string) (JoinKind, error) {
	switch s {
	case "JOIN":
		return InnerJoin, nil
	case "LOJ":
		return LeftJoin, nil
	case "ROJ":
		return RightJoin, nil
	case "FOJ":
		return FullJoin, nil
	}
	return 0, fmt.Errorf("plan: unknown join kind %q", s)
}

func aggFuncOf(s string) (algebra.AggFunc, error) {
	for _, f := range []algebra.AggFunc{
		algebra.CountStar, algebra.Count, algebra.CountDistinct,
		algebra.Sum, algebra.SumDistinct, algebra.Min, algebra.Max,
		algebra.Avg, algebra.AvgDistinct,
	} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown aggregate %q", s)
}
