package plan

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// Plans are immutable and rewrites share unchanged subtrees, so the
// canonical string of a node never changes once built. Every node
// therefore carries a fingerprint cache: the canonical key plus a
// 64-bit hash, computed bottom-up at most once per node and reused by
// every parent that embeds the subtree. This is what makes saturation
// dedup and cost memoization cheap — a freshly rewritten plan shares
// all but its spine with existing plans, so its key is a handful of
// concatenations of already-cached child keys instead of a full
// re-serialization of the tree.

// fpVal is the computed fingerprint: the canonical plan string and its
// FNV-1a hash (used for sharding and as a compact memo key).
type fpVal struct {
	key  string
	hash uint64
}

// fpCache lazily caches a node's fingerprint. The zero value is ready
// to use; concurrent computation is benign because the key is a pure
// function of the (immutable) node, so whichever goroutine wins the
// CompareAndSwap stores the same value the losers computed.
type fpCache struct {
	v atomic.Pointer[fpVal]
}

// val returns the cached fingerprint, building it with build on first
// use.
func (c *fpCache) val(build func() string) *fpVal {
	if v := c.v.Load(); v != nil {
		return v
	}
	key := build()
	v := &fpVal{key: key, hash: fnv64(key)}
	if !c.v.CompareAndSwap(nil, v) {
		return c.v.Load()
	}
	return v
}

// fingerprinter is implemented by every node in this package; external
// Node implementations fall back to String().
type fingerprinter interface {
	fingerprint() *fpVal
}

// Key returns the canonical plan string of n — identical text to
// n.String(), but cached on the node so repeated keying of the same
// (sub)tree is O(1) after the first call. Equal keys mean equal plans;
// the saturation engine, the optimizer's cross-seed dedup and the cost
// memo all key by it.
func Key(n Node) string {
	if f, ok := n.(fingerprinter); ok {
		return f.fingerprint().key
	}
	return n.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of Key(n), cached alongside
// it. Hashes are for sharding and compact indexing; correctness-
// critical dedup must compare the full Key (hash collisions, while
// unlikely, would silently merge distinct plans).
func Fingerprint(n Node) uint64 {
	if f, ok := n.(fingerprinter); ok {
		return f.fingerprint().hash
	}
	return fnv64(n.String())
}

// predStrings memoizes rendered comparison atoms. A query has a
// handful of distinct predicates but the enumerator renders them once
// per candidate plan (millions of times per saturation), and rewrites
// share the very same predicate values, so the cache hits almost
// always. Keyed by the expr.Cmp value itself — all its current Scalar
// implementations (Col, Const, Arith) are comparable structs.
var predStrings sync.Map

// predKey renders a predicate canonically — identical text to
// p.String() — with comparison atoms memoized.
func predKey(p expr.Pred) string {
	switch q := p.(type) {
	case expr.Cmp:
		if s, ok := predStrings.Load(q); ok {
			return s.(string)
		}
		s := q.String()
		predStrings.Store(q, s)
		return s
	case expr.Conj:
		if len(q.Preds) == 0 {
			return "true"
		}
		parts := make([]string, len(q.Preds))
		for i, sub := range q.Preds {
			parts[i] = predKey(sub)
		}
		return strings.Join(parts, " and ")
	default:
		return p.String()
	}
}

// specsKey renders a preserved-spec list as "r1r2,r3" — identical to
// joining the specs' String()s with "," but without the intermediate
// slice; the single-spec case (the overwhelmingly common one during
// enumeration) is a straight join of the spec itself.
func specsKey(specs []PreservedSpec) string {
	if len(specs) == 1 {
		return strings.Join(specs[0], "")
	}
	var b strings.Builder
	for i, s := range specs {
		if i > 0 {
			b.WriteByte(',')
		}
		for _, rel := range s {
			b.WriteString(rel)
		}
	}
	return b.String()
}

// fnv64 is FNV-1a, inlined to keep the hot path free of hash.Hash64
// allocations.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
