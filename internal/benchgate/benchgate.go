// Package benchgate holds the measurement and regression-gate
// plumbing shared by the benchmark harnesses (cmd/benchopt,
// cmd/benchexec): the JSON result schema, the testing.Benchmark
// driver, report serialization, and the tolerance check that turns a
// slower-than-baseline ratio into a non-zero exit.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// Result is one workload's measurement.
type Result struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	MsPerOp     float64 `json:"msPerOp"`
}

// SeedBaseline is a pre-change measurement kept for comparison.
type SeedBaseline struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine,omitempty"`
	MsPerOp     float64 `json:"msPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	Note        string  `json:"note"`
}

// Header is the part of the report schema every harness shares; embed
// it first so the JSON field order matches the historical reports.
type Header struct {
	GoMaxProcs    int            `json:"gomaxprocs"`
	GoVersion     string         `json:"goVersion"`
	SeedBaselines []SeedBaseline `json:"seedBaselines"`
	Results       []Result       `json:"results"`
}

// NewHeader fills the environment fields.
func NewHeader(seeds []SeedBaseline, results []Result) Header {
	return Header{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		SeedBaselines: seeds,
		Results:       results,
	}
}

// Run measures one workload through testing.Benchmark, appends the
// result to results, and echoes a human-readable line.
func Run(name string, results *[]Result, f func(b *testing.B)) Result {
	return RunEngine(name, "", results, f)
}

// RunEngine is Run with the result stamped with the execution engine
// that produced it ("tuple", "vector", "spill"). Engine-specific
// workloads record it so their numbers are never gated against a
// different engine's baselines by accident.
func RunEngine(name, engine string, results *[]Result, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	res := Result{
		Name:        name,
		Engine:      engine,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
	*results = append(*results, res)
	fmt.Printf("%-28s %4d iter  %10.2f ms/op  %12d B/op  %9d allocs/op\n",
		name, res.Iterations, res.MsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

// WriteJSON writes the report with the harnesses' historical
// formatting (two-space indent, trailing newline).
func WriteJSON(path string, rep any) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// Deltas runs fn and returns the movement of the default registry's
// counters across it (obs.Snapshot.Diff of before/after snapshots,
// zero deltas dropped; nil when nothing moved). The harnesses wrap
// each workload in it so BENCH_*.json reports how much engine work —
// waves, rule firings, prunes, hash builds — one measurement drove,
// alongside how long it took.
func Deltas(fn func()) map[string]int64 {
	before := obs.Default().Snapshot()
	fn()
	d := obs.Default().Snapshot().Diff(before)
	if len(d.Counters) == 0 {
		return nil
	}
	return d.Counters
}

// Gate is one regression check: Candidate must not exceed Baseline by
// more than Tolerance (a time ratio, e.g. 1.10 for +10%).
type Gate struct {
	// Label names the check in the failure message, e.g.
	// "parallel SaturateQ5 vs serial".
	Label     string
	Candidate Result
	Baseline  Result
	Tolerance float64
}

// Check evaluates the gates in order and returns an error describing
// the first failure, or nil when every candidate is within tolerance.
// Gates whose candidate or baseline has zero iterations are skipped:
// a zero-iteration Result means the workload was filtered out with
// -workload and there is nothing to compare.
func Check(gates ...Gate) error {
	for _, g := range gates {
		if g.Candidate.Iterations == 0 || g.Baseline.Iterations == 0 {
			continue
		}
		if ratio := g.Candidate.MsPerOp / g.Baseline.MsPerOp; ratio > g.Tolerance {
			return fmt.Errorf("FAIL %s is %.2fx the baseline time (tolerance %.2fx)",
				g.Label, ratio, g.Tolerance)
		}
	}
	return nil
}

// RunBest measures a workload rounds times and keeps the fastest
// run (the minimum is the stable estimator of a workload's true cost
// under scheduler noise). Use it for tight-tolerance gates — a
// single-sample comparison at a few percent tolerance flakes on an
// otherwise-idle machine.
func RunBest(name string, results *[]Result, rounds int, f func(b *testing.B)) Result {
	best := testing.Benchmark(f)
	for i := 1; i < rounds; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	res := Result{
		Name:        name,
		Iterations:  best.N,
		NsPerOp:     best.NsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
		AllocsPerOp: best.AllocsPerOp(),
		MsPerOp:     float64(best.NsPerOp()) / 1e6,
	}
	*results = append(*results, res)
	fmt.Printf("%-28s %4d iter  %10.2f ms/op  %12d B/op  %9d allocs/op  (best of %d)\n",
		name, res.Iterations, res.MsPerOp, res.BytesPerOp, res.AllocsPerOp, rounds)
	return res
}
