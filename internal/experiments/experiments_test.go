package experiments

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
)

// TestAllExperimentsRun smoke-tests every experiment report; each
// must produce non-trivial output and no embedded error text.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range All {
		if testing.Short() && (id == "e7" || id == "e8" || id == "e13" || id == "e14") {
			continue
		}
		out, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 80 {
			t.Errorf("%s: suspiciously short output:\n%s", id, out)
		}
		if strings.Contains(out, "bug") && !strings.Contains(out, "count bug") {
			t.Errorf("%s: report contains a failure marker:\n%s", id, out)
		}
	}
	if _, err := Run("nosuch"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// TestE4AllIdentitiesHold pins that the E4 report shows zero failures.
func TestE4AllIdentitiesHold(t *testing.T) {
	out := E4()
	if strings.Contains(out, " 199/200") || !strings.Contains(out, "200/200") {
		t.Errorf("identity failures reported:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trials equal") && !strings.Contains(line, "200/200") {
			t.Errorf("identity line with failures: %s", line)
		}
	}
}

// TestE11NoFailures pins zero subsumption failures.
func TestE11NoFailures(t *testing.T) {
	out := E11()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "failures") && !strings.Contains(line, " 0 failures") {
			t.Errorf("subsumption failures: %s", line)
		}
	}
}

// TestE14OptimizerFindsJoinFirst pins the Query 1 headline: with a
// highly filtering r4, the chosen plan joins r4 below the
// aggregation, and it is equivalent to the query as written.
func TestE14OptimizerFindsJoinFirst(t *testing.T) {
	q := Query1()
	db := Query1DB(2)
	est := stats.NewEstimator(stats.FromDatabase(db))
	res, err := optimizer.New(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost >= res.Original.Cost {
		t.Errorf("expected a strict win: best %.0f vs original %.0f", res.Best.Cost, res.Original.Cost)
	}
	// The winning plan's aggregation must sit above the r4 join.
	found := false
	plan.Walk(res.Best.Plan, func(n plan.Node) {
		if gb, ok := n.(*plan.GroupBy); ok {
			rels := plan.BaseRelSet(gb.Input)
			if rels["r4"] {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("chosen plan does not aggregate after the r4 join:\n%s", plan.Indent(res.Best.Plan))
	}
	ok, err := plan.Equivalent(q, res.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("chosen plan not equivalent")
	}
}
