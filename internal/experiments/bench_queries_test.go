package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestBenchQueryClosureSizes pins the workload sizes the benchmark
// harness (cmd/benchopt) and BENCH_optimizer.json rely on: Q5's
// closure is exhausted below the cap, ChainQuery(7)'s exceeds it.
func TestBenchQueryClosureSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("closure enumeration is slow")
	}
	q5 := core.Saturate(Q5(), core.SaturateOptions{MaxPlans: 10000})
	if len(q5) != 2752 {
		t.Errorf("Q5 closure has %d members, want 2752", len(q5))
	}
	chain := core.Saturate(ChainQuery(7), core.SaturateOptions{MaxPlans: 10000})
	if len(chain) != 10000 {
		t.Errorf("ChainQuery(7) should hit the 10000-plan cap, got %d", len(chain))
	}
	q6 := core.Saturate(Q6(), core.SaturateOptions{MaxPlans: 10000})
	if len(q6) == 0 || len(q6) >= 10000 {
		t.Errorf("Q6 closure size %d out of expected range", len(q6))
	}
}
