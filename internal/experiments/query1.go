package experiments

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/value"
)

// V1Count is view V_1's generated column c (a count).
var V1Count = schema.Attr("v1", "c")

// Query1 builds the paper's very first example (Section 1.1):
//
//	View V1: Select r1.c as a, r2.d as b, c = count(r1)
//	         From r1, r2 Where r1.b θ1 r2.b Groupby r1.c, r2.d
//	Query 1: Select r3.a, r4.b, V1.b
//	         From (Select * from V1 LeftOuterJoin r3 On r3.b θ2 V1.c), r4
//	         Where r4.b = V1.b
//
// The outer join predicate references the aggregated column c, which
// is why no prior algorithm could reorder the query: "if predicate
// r4.b = V1.b is highly filtering then it may be beneficial to
// perform this join first, before performing the aggregation".
func Query1() plan.Node {
	v1 := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "c"), schema.Attr("r2", "d")},
		[]algebra.Aggregate{algebra.CountRel("r1", V1Count)},
		plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "b", "r2", "b"),
			plan.NewScan("r1"), plan.NewScan("r2")))
	loj := plan.NewJoin(plan.LeftJoin,
		expr.Cmp{Op: value.GE, L: expr.Column("r3", "b"), R: expr.Col{Attr: V1Count}},
		v1, plan.NewScan("r3"))
	return plan.NewJoin(plan.InnerJoin,
		expr.EqCols("r4", "b", "r2", "d"), // r4.b = V1.b, resolved through the view
		loj, plan.NewScan("r4"))
}

// E14 reproduces Query 1: the optimizer pushes the aggregation above
// both joins and reorders the highly filtering r4 join below it, as
// the paper's introduction promises.
func E14() string {
	var b strings.Builder
	b.WriteString("E14 — Query 1 (Section 1.1): outer join over an aggregated column\n\n")
	q := Query1()
	b.WriteString("as written:\n" + plan.Indent(q) + "\n")
	for _, r4Rows := range []int{2, 20, 200} {
		db := Query1DB(r4Rows)
		est := stats.NewEstimator(stats.FromDatabase(db))
		full, err := optimizer.New(est).Optimize(q, db)
		if err != nil {
			return err.Error()
		}
		base, err := optimizer.NewBaseline(est).Optimize(q, db)
		if err != nil {
			return err.Error()
		}
		want, err := executor.Run(q, db)
		if err != nil {
			return err.Error()
		}
		got, err := executor.Run(full.Best.Plan, db)
		if err != nil {
			return err.Error()
		}
		equal := got.EqualAsSets(want)
		tAsIs := timeRun(q, db)
		tBest := timeRun(full.Best.Plan, db)
		fmt.Fprintf(&b, "|r4|=%-4d plans %4d (baseline %d)  cost %8.0f -> %8.0f  time %10s -> %10s  equal=%v\n",
			r4Rows, full.Considered, base.Considered, base.Best.Cost, full.Best.Cost, tAsIs, tBest, equal)
	}
	db := Query1DB(2)
	est := stats.NewEstimator(stats.FromDatabase(db))
	full, err := optimizer.New(est).Optimize(q, db)
	if err != nil {
		return err.Error()
	}
	b.WriteString("\nchosen plan for |r4|=2 (aggregation last, r4 joined early):\n")
	b.WriteString(plan.Indent(full.Best.Plan))
	if len(full.Best.Derivation) > 0 {
		b.WriteString("derivation: " + strings.Join(full.Best.Derivation, " -> ") + "\n")
	}
	return b.String()
}

// Query1DB generates the Query 1 workload; r4Rows controls how
// filtering the r4 join is.
func Query1DB(r4Rows int) plan.Database {
	rng := newSeeded(141)
	db := plan.Database{}
	mk := func(name string, cols []string, rows, domain int) {
		bld := relation.NewBuilder(name, cols...)
		for i := 0; i < rows; i++ {
			vals := make([]value.Value, len(cols))
			for j := range cols {
				vals[j] = value.NewInt(int64(rng.Intn(domain)))
			}
			bld.Row(vals...)
		}
		db[name] = bld.Relation()
	}
	// r1 ⋈ r2 fans out heavily; r3 is small so the outer join's
	// range predicate does not dominate; r4's selectivity is the
	// experiment's sweep variable.
	mk("r1", []string{"b", "c"}, 3000, 50)
	mk("r2", []string{"b", "d"}, 3000, 50)
	mk("r3", []string{"a", "b"}, 10, 5000)
	mk("r4", []string{"b"}, r4Rows, 50)
	return db
}
