package experiments

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
)

// Q5 is the Section 3 example with two independent complex predicates:
//
//	Q5 = (r1 ↔(p12∧p13) (r2 →p23 r3)) →p24 (r4 →(p45∧p46) (r5 ⋈p56 r6))
//
// Its closure under the full rule set has 2752 members, which makes it
// the standard saturation workload for the benchmarks (see
// cmd/benchopt and BENCH_optimizer.json).
func Q5() plan.Node {
	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	left := plan.NewJoin(plan.FullJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r3")),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"), plan.NewScan("r2"), plan.NewScan("r3")))
	right := plan.NewJoin(plan.LeftJoin, expr.And(eqX("r4", "r5"), eqY("r4", "r6")),
		plan.NewScan("r4"),
		plan.NewJoin(plan.InnerJoin, eqX("r5", "r6"), plan.NewScan("r5"), plan.NewScan("r6")))
	return plan.NewJoin(plan.LeftJoin, eqY("r2", "r4"), left, right)
}

// Q6 is the Section 3 example with dependent complex predicates:
//
//	Q6 = r1 ↔(p12∧p14) (r2 →(p23∧p24) (r3 →p34 r4))
func Q6() plan.Node {
	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	return plan.NewJoin(plan.FullJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r4")),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r2", "r3"), eqY("r2", "r4")),
			plan.NewScan("r2"),
			plan.NewJoin(plan.LeftJoin, eqX("r3", "r4"), plan.NewScan("r3"), plan.NewScan("r4"))))
}

// StarQuery builds an n-relation inner-join star: r1 is the hub and
// r2..rn join it on x, with the last edge additionally carrying a
// complex conjunct between the two outermost satellites. Inner joins
// commute and associate freely, so the star's closure exercises the
// enumeration's join-order space (and the complex predicate gives the
// break-up rule something to defer); it is the memo property suite's
// bushy-space workload.
func StarQuery(n int) plan.Node {
	rel := func(i int) string { return fmt.Sprintf("r%d", i) }
	var node plan.Node = plan.NewScan(rel(1))
	for i := 2; i <= n; i++ {
		var pred expr.Pred = expr.EqCols(rel(1), "x", rel(i), "x")
		if i == n && n > 2 {
			pred = expr.And(pred, expr.EqCols(rel(n-1), "y", rel(n), "y"))
		}
		node = plan.NewJoin(plan.InnerJoin, pred, node, plan.NewScan(rel(i)))
	}
	return node
}

// ChainQuery builds an n-relation left-outer-join chain whose final
// edge carries a complex predicate referencing r1. Its closure grows
// fast enough with n to hit any realistic MaxPlans cap (n=7 exceeds
// 10000 plans), exercising the enumeration at scale.
func ChainQuery(n int) plan.Node {
	rel := func(i int) string { return fmt.Sprintf("r%d", i) }
	var node plan.Node = plan.NewScan(rel(1))
	for i := 2; i < n; i++ {
		node = plan.NewJoin(plan.LeftJoin, expr.EqCols(rel(i-1), "x", rel(i), "x"),
			node, plan.NewScan(rel(i)))
	}
	last := expr.And(
		expr.EqCols(rel(1), "y", rel(n), "y"),
		expr.EqCols(rel(n-1), "x", rel(n), "x"),
	)
	return plan.NewJoin(plan.LeftJoin, last, node, plan.NewScan(rel(n)))
}
