package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
)

// --- E15: observability — metrics, phase trace, EXPLAIN ANALYZE ----

// E15 runs the Example 1.1 supplier query with a private metrics
// registry and tracer threaded through the optimizer and the
// instrumented executor, then prints the three views the
// observability layer offers: the annotated plan (actual vs estimated
// rows and per-operator timings), the span trace of the run, and the
// aggregate counter snapshot. It is the write-up behind the CLI's
// -stats/-trace flags.
func E15() string {
	var b strings.Builder
	b.WriteString("E15 — observability: phase trace and EXPLAIN ANALYZE of the supplier query\n\n")

	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	est := stats.NewEstimator(stats.FromDatabase(db))
	opt := optimizer.New(est)
	opt.Opts.Obs = reg
	opt.Opts.Tracer = tracer
	res, err := opt.Optimize(q, db)
	if err != nil {
		return err.Error()
	}
	span := tracer.Start("execute")
	out, ann, err := executor.RunInstrumented(res.Best.Plan, db, reg)
	span.End()
	if err != nil {
		return err.Error()
	}
	plan.Walk(res.Best.Plan, func(n plan.Node) {
		if a := ann[n]; a != nil {
			if rows, err := est.Rows(n); err == nil {
				a.EstRows = rows
			}
		}
	})

	fmt.Fprintf(&b, "rows returned: %d   plans considered: %d\n\n", out.Len(), res.Considered)
	b.WriteString("annotated plan (actual vs estimated rows):\n")
	b.WriteString(plan.IndentAnnotated(res.Best.Plan, ann))
	b.WriteString("\nspan trace:\n")
	b.WriteString(tracer.String())

	// Where did the optimizer's time go, and how well did its
	// estimates hold up?
	if len(res.Phases) > 0 {
		var total time.Duration
		for _, p := range res.Phases {
			total += p.Elapsed
		}
		b.WriteString("\noptimizer phase shares:\n")
		for _, p := range res.Phases {
			share := 0.0
			if total > 0 {
				share = 100 * float64(p.Elapsed) / float64(total)
			}
			fmt.Fprintf(&b, "  %-10s %10s  %5.1f%%\n", p.Name, p.Elapsed.Round(time.Microsecond), share)
		}
	}
	worst := 1.0
	var worstNode plan.Node
	plan.Walk(res.Best.Plan, func(n plan.Node) {
		a := ann[n]
		if a == nil || a.EstRows <= 0 || a.Rows == 0 {
			return
		}
		q := float64(a.Rows) / a.EstRows
		if q < 1 {
			q = 1 / q
		}
		if q > worst {
			worst, worstNode = q, n
		}
	})
	if worstNode != nil {
		fmt.Fprintf(&b, "\nworst cardinality estimate: %.1fx off at %s\n", worst, worstNode)
	}

	snap := reg.Snapshot()
	b.WriteString("\nselected counters:\n")
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		if strings.HasPrefix(k, "optimizer.rule_admitted.") ||
			k == "optimizer.dedup_hits" || k == "optimizer.plans_enumerated" ||
			strings.HasPrefix(k, "executor.") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-44s %d\n", k, snap.Counters[k])
	}
	return b.String()
}
