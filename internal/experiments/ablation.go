package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
)

// E13 is the ablation study DESIGN.md calls for: remove one rule
// family at a time from the optimizer and measure how the plan space
// and the best plan's estimated cost change, on the three main
// workloads. It quantifies which of the paper's mechanisms does the
// work: predicate break-up (σ*), MGOJ introduction, the outer-join
// associativities, and aggregation push-up.
func E13() string {
	type config struct {
		name   string
		rules  []core.Rule
		pushUp bool
	}
	without := func(drop string) []core.Rule {
		var out []core.Rule
		for _, r := range core.DefaultRules() {
			if r.Name != drop {
				out = append(out, r)
			}
		}
		return out
	}
	configs := []config{
		{"full", nil, true},
		{"-split (no σ*)", without("split"), true},
		{"-mgoj-intro", without("mgoj-intro"), true},
		{"-assoc-left", without("assoc-left"), true},
		{"-push-up-aggregation", nil, false},
		{"baseline (pre-paper)", core.BaselineRules(), false},
	}

	type workload struct {
		name string
		db   plan.Database
		q    plan.Node
	}
	supplierCfg := datagen.DefaultSupplierConfig
	supplierCfg.DetailRows = 4000
	workloads := []workload{
		{"query2", e9Database(), Query2()},
		{"q4", q4Database(), Q4()},
		{"supplier", datagen.Supplier(supplierCfg), datagen.SupplierQuery()},
	}

	var b strings.Builder
	b.WriteString("E13 — ablation: contribution of each mechanism to plan space and best cost\n")
	for _, w := range workloads {
		est := stats.NewEstimator(stats.FromDatabase(w.db))
		fmt.Fprintf(&b, "\nworkload %s:\n", w.name)
		fmt.Fprintf(&b, "  %-24s %8s %12s\n", "configuration", "plans", "best cost")
		for _, c := range configs {
			opt := &optimizer.Optimizer{Est: est, Opts: optimizer.Options{
				Rules:            c.rules,
				PushUpAggregates: c.pushUp,
			}}
			res, err := opt.Optimize(w.q, w.db)
			if err != nil {
				fmt.Fprintf(&b, "  %-24s %s\n", c.name, err)
				continue
			}
			fmt.Fprintf(&b, "  %-24s %8d %12.0f\n", c.name, res.Considered, res.Best.Cost)
		}
	}
	b.WriteString("\n(rows: dropping σ*-split shrinks the plan space most on complex-predicate queries;\n dropping push-up costs the most on the aggregation workload)\n")
	return b.String()
}

func newSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func e9Database() plan.Database {
	db := plan.Database{}
	rng := newSeeded(13)
	db["r1"] = datagen.Uniform(rng, "r1", datagen.UniformConfig{Rows: 2000, Domain: 40})
	db["r2"] = datagen.Uniform(rng, "r2", datagen.UniformConfig{Rows: 100, Domain: 40})
	db["r3"] = datagen.Uniform(rng, "r3", datagen.UniformConfig{Rows: 100, Domain: 40})
	return db
}

func q4Database() plan.Database {
	db := plan.Database{}
	rng := newSeeded(14)
	for _, name := range []string{"r1", "r2", "r3", "r4", "r5"} {
		db[name] = datagen.Uniform(rng, name, datagen.UniformConfig{Rows: 200, Domain: 20})
	}
	return db
}
