// Package experiments regenerates every table, figure and worked
// example of the paper (the per-experiment index E1–E12 in
// DESIGN.md). Each experiment returns a plain-text report; the
// cmd/experiments binary prints them and the root benchmarks measure
// the competing plans' execution times.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/assoctree"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/simplify"
	"repro/internal/stats"
	"repro/internal/value"
)

// All lists the experiment ids in order.
var All = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15"}

// Run dispatches one experiment by id.
func Run(id string) (string, error) {
	switch strings.ToLower(id) {
	case "e1":
		return E1(), nil
	case "e2":
		return E2(), nil
	case "e3":
		return E3(), nil
	case "e4":
		return E4(), nil
	case "e5":
		return E5(), nil
	case "e6":
		return E6(), nil
	case "e7":
		return E7(DefaultE7Config()), nil
	case "e8":
		return E8(DefaultE8Config()), nil
	case "e9":
		return E9(), nil
	case "e10":
		return E10(), nil
	case "e11":
		return E11(), nil
	case "e12":
		return E12(), nil
	case "e13":
		return E13(), nil
	case "e14":
		return E14(), nil
	case "e15":
		return E15(), nil
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(All, ", "))
	}
}

// --- E1: Example 2.1 — tables T1, T2 and the GS compensation -------

// Example21Plans returns the three plans of Example 2.1: T1 (the
// query as written), T2 (complex predicate broken off) and the
// GS-compensated T2.
func Example21Plans() (t1, t2, compensated plan.Node) {
	p12 := expr.EqCols("r1", "c", "r2", "c")
	p13 := expr.EqCols("r1", "f", "r3", "f")
	p23 := expr.EqCols("r2", "e", "r3", "e")
	inner := plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2"))
	t1 = plan.NewJoin(plan.LeftJoin, expr.And(p13, p23), inner, plan.NewScan("r3"))
	t2 = plan.NewJoin(plan.LeftJoin, p23, inner, plan.NewScan("r3"))
	compensated = plan.NewGenSel(p13, []plan.PreservedSpec{plan.NewPreserved("r1", "r2")}, t2)
	return
}

// E1 prints Example 2.1's input relations, T1, T2, and verifies
// σ*_{p13}[r1r2](T2) = T1.
func E1() string {
	db := datagen.Example21()
	t1p, t2p, comp := Example21Plans()
	var b strings.Builder
	b.WriteString("E1 — Example 2.1: generalized selection compensates a broken-up complex predicate\n\n")
	for _, name := range []string{"r1", "r2", "r3"} {
		fmt.Fprintf(&b, "%s:\n%s\n", name, db[name])
	}
	t1, _ := executor.Run(t1p, db)
	t2, _ := executor.Run(t2p, db)
	got, _ := executor.Run(comp, db)
	t1.SortForDisplay()
	t2.SortForDisplay()
	got.SortForDisplay()
	fmt.Fprintf(&b, "T1 = (r1 -> r2) ->[p13 and p23] r3:\n%s\n", t1)
	fmt.Fprintf(&b, "T2 = (r1 -> r2) ->[p23] r3:\n%s\n", t2)
	fmt.Fprintf(&b, "GS[p13; r1r2](T2):\n%s\n", got)
	fmt.Fprintf(&b, "GS[p13; r1r2](T2) == T1: %v   (paper: they are equal)\n", got.EqualAsSets(t1))
	return b.String()
}

// --- E2: Figure 1 — the hypergraph of Q4 ---------------------------

// Q4 builds the query of Example 3.2 / Figure 1.
func Q4() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p24 := expr.EqCols("r2", "a", "r4", "a")
	p25 := expr.EqCols("r2", "b", "r5", "b")
	p45 := expr.EqCols("r4", "c", "r5", "c")
	p35 := expr.EqCols("r3", "d", "r5", "d")
	inner := plan.NewJoin(plan.InnerJoin, p35,
		plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
		plan.NewScan("r3"))
	mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
	return plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid)
}

// E2 prints Figure 1's hypergraph with preserved and conflict sets.
func E2() string {
	h, err := hypergraph.FromPlan(Q4())
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	b.WriteString("E2 — Figure 1: hypergraph of Q4 with preserved/conflict sets\n\n")
	b.WriteString(h.String())
	fmt.Fprintf(&b, "acyclic: %v\n\n", h.IsAcyclic())
	for _, e := range h.Edges {
		if e.Kind != hypergraph.Undirected {
			fmt.Fprintf(&b, "pres(h%d) = %v\n", e.ID, h.Pres(e))
		}
		fmt.Fprintf(&b, "conf(h%d) = %s\n", e.ID, edgeIDs(h.Conf(e)))
		if e.Kind == hypergraph.Undirected {
			fmt.Fprintf(&b, "ccoj(h%d) = %s\n", e.ID, edgeIDs(h.CCOJ(e)))
		}
	}
	return b.String()
}

func edgeIDs(edges []*hypergraph.Hyperedge) string {
	if len(edges) == 0 {
		return "{}"
	}
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("h%d", e.ID)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// --- E3: association-tree counts under Definition 3.2 --------------

// E3 compares the association-tree space of Q4 with and without
// hyperedge break-up and lists the paper's example trees.
func E3() string {
	h, err := hypergraph.FromPlan(Q4())
	if err != nil {
		return err.Error()
	}
	strict, _ := assoctree.NewEnumerator(h, hypergraph.Strict)
	broken, _ := assoctree.NewEnumerator(h, hypergraph.Broken)
	var b strings.Builder
	b.WriteString("E3 — association trees of Q4 (Example 3.2)\n\n")
	fmt.Fprintf(&b, "[BHAR95a] baseline (no break-up):  %d trees\n", strict.Count())
	fmt.Fprintf(&b, "Definition 3.2 (with break-up):    %d trees\n\n", broken.Count())
	b.WriteString("paper's listed trees:\n")
	for _, s := range []string{
		"((r1.r2).((r4.r5).r3))",
		"((r1.r2).(r4.(r5.r3)))",
		"(r1.((r2.r4).(r5.r3)))",
		"(r1.((r2.r5).(r4.r3)))",
	} {
		tr, err := assoctree.ParseTree(s)
		if err != nil {
			return err.Error()
		}
		fmt.Fprintf(&b, "  %-28s strict=%-5v broken=%v\n", s, strict.HasTree(tr), broken.HasTree(tr))
	}
	b.WriteString("\n(the last listed tree violates Definition 3.2 item 2 as stated; see DESIGN.md)\n")
	b.WriteString("\nall Definition 3.2 trees:\n")
	for _, tr := range broken.Trees(0) {
		fmt.Fprintf(&b, "  %s\n", tr)
	}
	return b.String()
}

// --- E4: identities (1)–(8) on randomized databases ----------------

// E4 verifies each association identity by execution.
func E4() string {
	rng := rand.New(rand.NewSource(4))
	scan := plan.NewScan
	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	type identity struct {
		name string
		mk   func() (plan.Node, plan.Node)
	}
	ids := []identity{
		{"(1) LOJ at root", func() (plan.Node, plan.Node) {
			return core.Identity1(scan("r1"), scan("r2"), eqY("r1", "r2"), eqX("r1", "r2"))
		}},
		{"(2) FOJ at root", func() (plan.Node, plan.Node) {
			return core.Identity2(scan("r1"), scan("r2"), eqY("r1", "r2"), eqX("r1", "r2"))
		}},
		{"(3) LOJ over pair", func() (plan.Node, plan.Node) {
			return core.Identity3(plan.InnerJoin, scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r1", "r3"), eqX("r2", "r3"))
		}},
		{"(4) FOJ over pair", func() (plan.Node, plan.Node) {
			return core.Identity4(plan.LeftJoin, scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r1", "r3"), eqX("r2", "r3"))
		}},
		{"(5) join under LOJ", func() (plan.Node, plan.Node) {
			return core.Identity5(scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		}},
		{"(6) join under FOJ (corrected)", func() (plan.Node, plan.Node) {
			return core.Identity6(scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		}},
		{"(7) ROJ under FOJ", func() (plan.Node, plan.Node) {
			return core.Identity7(scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		}},
		{"(8) join+ROJ under FOJ", func() (plan.Node, plan.Node) {
			return core.Identity8(scan("r1"), scan("r2"), scan("r3"), scan("r4"),
				eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"), eqX("r2", "r4"))
		}},
	}
	var b strings.Builder
	b.WriteString("E4 — association identities (1)-(8), verified by execution on 200 random databases\n\n")
	for _, id := range ids {
		trials, fails := 200, 0
		for i := 0; i < trials; i++ {
			db := randDB(rng, 5, 3, "r1", "r2", "r3", "r4")
			lhs, rhs := id.mk()
			ok, err := plan.Equivalent(lhs, rhs, db)
			if err != nil || !ok {
				fails++
			}
		}
		fmt.Fprintf(&b, "identity %-32s %d/%d trials equal\n", id.name, trials-fails, trials)
	}
	return b.String()
}

func randDB(rng *rand.Rand, maxRows, domain int, rels ...string) plan.Database {
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		bld := relation.NewBuilder(name, "x", "y")
		n := rng.Intn(maxRows + 1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 2)
			for j := range vals {
				if rng.Intn(8) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(domain)))
				}
			}
			bld.Row(vals...)
		}
		db[name] = bld.Relation()
	}
	return db
}

// --- E5: Theorem 1 compensation specs -------------------------------

// E5 prints the Theorem 1 preserved lists for representative edges.
func E5() string {
	var b strings.Builder
	b.WriteString("E5 — Theorem 1: generalized-selection compensation per edge kind\n\n")
	show := func(desc string, q plan.Node, pick func(h *hypergraph.Hypergraph) *hypergraph.Hyperedge) {
		h, err := hypergraph.FromPlan(q)
		if err != nil {
			fmt.Fprintf(&b, "%s: %v\n", desc, err)
			return
		}
		e := pick(h)
		specs := core.CompensationSpecs(h, e)
		parts := make([]string, len(specs))
		for i, s := range specs {
			parts[i] = s.String()
		}
		fmt.Fprintf(&b, "%-46s edge %-24s specs [%s]\n", desc, fmt.Sprintf("h%d (%s)", e.ID, e.Kind), strings.Join(parts, ", "))
	}
	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	// Directed complex edge (Q4's h2): pres = {r1, r2}.
	show("Q4: break h2 (directed, complex)", Q4(), func(h *hypergraph.Hypergraph) *hypergraph.Hyperedge {
		for _, e := range h.Edges {
			if e.Complex() {
				return e
			}
		}
		return h.Edges[0]
	})
	// FOJ at root (identity 2 shape).
	foj := plan.NewJoin(plan.FullJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r2")),
		plan.NewScan("r1"), plan.NewScan("r2"))
	show("r1 FOJ r2 (bi-directed at root)", foj, func(h *hypergraph.Hypergraph) *hypergraph.Hyperedge {
		return h.Edges[0]
	})
	// Join under a FOJ (identity 6 shape).
	i6 := plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"),
		plan.NewJoin(plan.InnerJoin, expr.And(eqX("r2", "r3"), eqY("r2", "r3")),
			plan.NewScan("r2"), plan.NewScan("r3")))
	show("join under FOJ (identity 6 shape)", i6, func(h *hypergraph.Hypergraph) *hypergraph.Hyperedge {
		for _, e := range h.Edges {
			if e.Kind == hypergraph.Undirected {
				return e
			}
		}
		return h.Edges[0]
	})
	// ROJ under FOJ (identity 7 shape).
	i7 := plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"),
		plan.NewJoin(plan.RightJoin, expr.And(eqX("r2", "r3"), eqY("r2", "r3")),
			plan.NewScan("r2"), plan.NewScan("r3")))
	show("ROJ under FOJ (identity 7 shape)", i7, func(h *hypergraph.Hypergraph) *hypergraph.Hyperedge {
		for _, e := range h.Edges {
			if e.Kind == hypergraph.Directed {
				return e
			}
		}
		return h.Edges[0]
	})
	return b.String()
}

// --- E6: Q5 / Q6 recursive splitting --------------------------------

// E6 prints the recursive double-splits of Q5 and Q6 and their
// execution-verified equivalence.
func E6() string {
	var b strings.Builder
	b.WriteString("E6 — recursive splitting of multiple complex predicates (Q5, Q6)\n\n")
	rng := rand.New(rand.NewSource(6))

	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	q6 := plan.NewJoin(plan.FullJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r4")),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r2", "r3"), eqY("r2", "r4")),
			plan.NewScan("r2"),
			plan.NewJoin(plan.LeftJoin, eqX("r3", "r4"), plan.NewScan("r3"), plan.NewScan("r4"))))
	// Q6 as printed is not simple (its inner outer join is removable
	// by null rejection); the machinery requires the simplified,
	// equivalent form.
	q6 = simplify.Simplify(q6).(*plan.Join)

	var q6Node plan.Node = q6
	top := q6
	for outer := 0; outer < 2; outer++ {
		first, err := core.DeferConjuncts(q6Node, top, []int{outer})
		if err != nil {
			fmt.Fprintf(&b, "outer split %d: %v\n", outer, err)
			continue
		}
		gs := first.(*plan.GenSel)
		var inner *plan.Join
		plan.Walk(gs.Input, func(n plan.Node) {
			if j, ok := n.(*plan.Join); ok && len(expr.Conjuncts(j.Pred)) == 2 {
				inner = j
			}
		})
		for innerIdx := 0; innerIdx < 2; innerIdx++ {
			second, err := core.DeferConjuncts(gs.Input, inner, []int{innerIdx})
			if err != nil {
				fmt.Fprintf(&b, "inner split: %v\n", err)
				continue
			}
			full := first.WithChildren([]plan.Node{second})
			equal := true
			for trial := 0; trial < 40; trial++ {
				db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4")
				ok, err := plan.Equivalent(q6Node, full, db)
				if err != nil || !ok {
					equal = false
				}
			}
			fmt.Fprintf(&b, "Q6 split outer=%d inner=%d: %s\n  equivalent on 40 random databases: %v\n",
				outer, innerIdx, full, equal)
		}
	}
	// Dependent-predicate rule: the inner predicate cannot be broken
	// first.
	var innerJoin *plan.Join
	plan.Walk(q6Node, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && j.Kind == plan.LeftJoin && len(expr.Conjuncts(j.Pred)) == 2 {
			innerJoin = j
		}
	})
	if _, err := core.DeferConjuncts(q6Node, innerJoin, []int{0}); err != nil {
		fmt.Fprintf(&b, "\nbreaking the dependent (inner) predicate first is rejected:\n  %v\n", err)
	}
	return b.String()
}

// --- E7: Example 1.1 — supplier audit cost crossover ----------------

// E7Config parameterizes the supplier experiment.
type E7Config struct {
	Base          datagen.SupplierConfig
	BankruptSweep []float64
}

// DefaultE7Config sweeps the BANKRUPT selectivity.
func DefaultE7Config() E7Config {
	return E7Config{
		Base:          datagen.DefaultSupplierConfig,
		BankruptSweep: []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0},
	}
}

// E7Plans returns the Example 1.1 query as written and its
// aggregation-pulled-up reordering for the given database.
func E7Plans(db plan.Database) (asWritten, reordered plan.Node, err error) {
	asWritten = datagen.SupplierQuery()
	reordered, err = core.PushUpGroupBy(asWritten.(*plan.Join), db)
	return
}

// E7 sweeps the fraction of BANKRUPT suppliers and reports, for each
// point, the estimated cost and measured execution time of the plan
// as written (aggregate 95DETAIL first) and of the reordered plan
// (join first, aggregate last). The paper's claim: with few bankrupt
// suppliers the reordering wins; as the filter admits everything the
// advantage shrinks.
func E7(cfg E7Config) string {
	var b strings.Builder
	b.WriteString("E7 — Example 1.1: supplier audit, aggregate-first vs join-first\n\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %8s\n",
		"bankrupt", "cost(asis)", "cost(reord)", "time(asis)", "time(reord)", "speedup")
	for _, frac := range cfg.BankruptSweep {
		c := cfg.Base
		c.BankruptFrac = frac
		db := datagen.Supplier(c)
		asWritten, reordered, err := E7Plans(db)
		if err != nil {
			return err.Error()
		}
		est := stats.NewEstimator(stats.FromDatabase(db))
		costA, _ := est.PlanCost(asWritten)
		costR, _ := est.PlanCost(reordered)
		timeA := timeRun(asWritten, db)
		timeR := timeRun(reordered, db)
		ra, _ := executor.Run(asWritten, db)
		rr, _ := executor.Run(reordered, db)
		if !ra.EqualAsSets(rr) {
			return "E7: plans disagree — reordering bug"
		}
		fmt.Fprintf(&b, "%-10.2f %12.0f %12.0f %12s %12s %7.2fx\n",
			frac, costA, costR, timeA, timeR, float64(timeA)/float64(timeR))
	}
	b.WriteString("\n(speedup > 1 means the paper's reordering wins; the advantage shrinks as the filter admits more suppliers)\n")
	return b.String()
}

func timeRun(p plan.Node, db plan.Database) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := executor.Run(p, db); err != nil {
			return 0
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// --- E8: unnesting vs tuple iteration semantics ---------------------

// E8Config sizes the join-aggregate experiment.
type E8Config struct {
	Sizes []int // |r1| sweep
	R2    int
	R3    int
	Seed  int64
}

// DefaultE8Config sweeps the outer relation size.
func DefaultE8Config() E8Config {
	return E8Config{Sizes: []int{50, 100, 200, 400, 800}, Seed: 8}
}

// E8Query builds the Section 1.1 join-aggregate query.
func E8Query() *core.JoinAggregateQuery {
	return &core.JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []core.CountFilter{{
			LHS: expr.Column("r1", "b"),
			Op:  value.GE,
			Sub: &core.CountQuery{
				Rel:  "r2",
				Corr: expr.EqCols("r2", "c", "r1", "c"),
				Filters: []core.CountFilter{{
					LHS: expr.Column("r2", "d"),
					Op:  value.GE,
					Sub: &core.CountQuery{
						Rel: "r3",
						Corr: expr.And(
							expr.EqCols("r2", "e", "r3", "e"),
							expr.EqCols("r1", "f", "r3", "f"),
						),
					},
				}},
			},
		}},
	}
}

// E8DB builds the relations for one sweep point.
func E8DB(n int, cfg E8Config) plan.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := make(plan.Database)
	build := func(name string, cols []string, rows, domain int) {
		b := relation.NewBuilder(name, cols...)
		for i := 0; i < rows; i++ {
			vals := make([]value.Value, len(cols))
			for j := range vals {
				vals[j] = value.NewInt(int64(rng.Intn(domain)))
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	r2, r3 := cfg.R2, cfg.R3
	if r2 == 0 {
		r2 = n / 2 // scale with the outer relation: TIS then degrades quadratically
	}
	if r3 == 0 {
		r3 = n / 2
	}
	build("r1", []string{"a", "b", "c", "f"}, n, 20)
	build("r2", []string{"c", "d", "e"}, r2, 20)
	build("r3", []string{"e", "f"}, r3, 20)
	return db
}

// E8 compares tuple iteration semantics with the unnested outer-join
// plan as |r1| grows: TIS degrades superlinearly while the unnested
// plan stays near-linear — the [GANS87]/[MURA92] motivation the paper
// builds on.
func E8(cfg E8Config) string {
	var b strings.Builder
	b.WriteString("E8 — join-aggregate queries: TIS vs unnested outer-join plan\n\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %9s %7s\n", "|r1|", "TIS", "unnested", "speedup", "equal")
	q := E8Query()
	for _, n := range cfg.Sizes {
		db := E8DB(n, cfg)
		unnested, err := q.Unnest(db)
		if err != nil {
			return err.Error()
		}
		startTIS := time.Now()
		want, err := q.TIS(db)
		if err != nil {
			return err.Error()
		}
		tisTime := time.Since(startTIS)
		startUn := time.Now()
		got, err := executor.Run(unnested, db)
		if err != nil {
			return err.Error()
		}
		unTime := time.Since(startUn)
		fmt.Fprintf(&b, "%-8d %12s %12s %8.1fx %7v\n",
			n, tisTime, unTime, float64(tisTime)/float64(unTime), got.EqualAsMultisets(want))
	}
	b.WriteString("\n(the unnested plan contains the generalized selection that closes the count bug; see core.Unnest)\n")
	return b.String()
}

// --- E9: Query 2 — plan space with and without GS -------------------

// Query2 builds (r1 →p12 r2) →(p13∧p23) r3.
func Query2() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p13 := expr.EqCols("r1", "y", "r3", "y")
	p23 := expr.EqCols("r2", "x", "r3", "x")
	return plan.NewJoin(plan.LeftJoin, expr.And(p13, p23),
		plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
}

// E9 reports the join orders reachable for Query 2 with and without
// generalized selection, and the cost-based choice on a skewed
// database.
func E9() string {
	var b strings.Builder
	b.WriteString("E9 — Query 2 (Section 1.1): partial reordering through generalized selection\n\n")
	q := Query2()
	baseline := core.Saturate(q, core.SaturateOptions{Rules: core.BaselineRules()})
	full := core.Saturate(q, core.SaturateOptions{})
	fmt.Fprintf(&b, "join orders without GS (baseline): %v\n", core.JoinOrders(baseline))
	fmt.Fprintf(&b, "join orders with GS (this paper):  %v\n\n", core.JoinOrders(full))

	rng := rand.New(rand.NewSource(9))
	db := plan.Database{
		"r1": datagen.Uniform(rng, "r1", datagen.UniformConfig{Rows: 2000, Domain: 40}),
		"r2": datagen.Uniform(rng, "r2", datagen.UniformConfig{Rows: 100, Domain: 40}),
		"r3": datagen.Uniform(rng, "r3", datagen.UniformConfig{Rows: 100, Domain: 40}),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	fullRes, err := optimizer.New(est).Optimize(q, db)
	if err != nil {
		return err.Error()
	}
	baseRes, err := optimizer.NewBaseline(est).Optimize(q, db)
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&b, "plans considered: baseline %d, with GS %d\n", baseRes.Considered, fullRes.Considered)
	fmt.Fprintf(&b, "best cost:        baseline %.0f, with GS %.0f\n", baseRes.Best.Cost, fullRes.Best.Cost)
	fmt.Fprintf(&b, "chosen plan:\n%s", plan.Indent(fullRes.Best.Plan))
	return b.String()
}

// --- E10: plan-space growth and enumeration time --------------------

// E10 measures equivalence-class size and enumeration time as the
// number of relations grows, for chains of outer joins whose top
// predicate is complex.
func E10() string {
	var b strings.Builder
	b.WriteString("E10 — enumeration scaling: chain queries with one complex predicate\n\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %12s %14s %12s\n", "rels", "baseline", "with GS", "enum time", "assoc(strict)", "assoc(broken)")
	for n := 3; n <= 6; n++ {
		q := complexChain(n)
		base := core.Saturate(q, core.SaturateOptions{Rules: core.BaselineRules(), MaxPlans: 100000})
		start := time.Now()
		full := core.Saturate(q, core.SaturateOptions{MaxPlans: 100000})
		enumTime := time.Since(start)
		h, err := hypergraph.FromPlan(q)
		if err != nil {
			return err.Error()
		}
		se, _ := assoctree.NewEnumerator(h, hypergraph.Strict)
		be, _ := assoctree.NewEnumerator(h, hypergraph.Broken)
		fmt.Fprintf(&b, "%-6d %10d %10d %12s %14d %12d\n", n, len(base), len(full), enumTime.Round(time.Microsecond), se.Count(), be.Count())
	}
	b.WriteString("\n(plans = distinct expression trees in the closure; assoc = association trees of the hypergraph)\n")
	return b.String()
}

// complexChain builds r1 → r2 → … with the final edge carrying a
// complex two-conjunct predicate referencing the first relation.
func complexChain(n int) plan.Node {
	rel := func(i int) string { return fmt.Sprintf("r%d", i) }
	var node plan.Node = plan.NewScan(rel(1))
	for i := 2; i < n; i++ {
		node = plan.NewJoin(plan.LeftJoin, expr.EqCols(rel(i-1), "x", rel(i), "x"),
			node, plan.NewScan(rel(i)))
	}
	last := expr.And(
		expr.EqCols(rel(1), "y", rel(n), "y"),
		expr.EqCols(rel(n-1), "x", rel(n), "x"),
	)
	return plan.NewJoin(plan.LeftJoin, last, node, plan.NewScan(rel(n)))
}

// --- E11: GS subsumes the binary operators ---------------------------

// E11 verifies the Section 2 equations on random inputs.
func E11() string {
	rng := rand.New(rand.NewSource(11))
	trials := 300
	failJoin, failLOJ, failFOJ := 0, 0, 0
	for i := 0; i < trials; i++ {
		db := randDB(rng, 6, 3, "r1", "r2")
		r1, r2 := db["r1"], db["r2"]
		if r1.Len() == 0 || r2.Len() == 0 {
			continue
		}
		p := expr.EqCols("r1", "x", "r2", "x")
		prod := algebra.Product(r1, r2)
		if !algebra.MustGenSelect(p, nil, prod).EqualAsSets(algebra.Join(p, r1, r2)) {
			failJoin++
		}
		if !algebra.MustGenSelect(p, []map[string]bool{algebra.RelSet("r1")}, prod).
			EqualAsSets(algebra.LeftOuter(p, r1, r2)) {
			failLOJ++
		}
		if !algebra.MustGenSelect(p, []map[string]bool{algebra.RelSet("r1"), algebra.RelSet("r2")}, prod).
			EqualAsSets(algebra.FullOuter(p, r1, r2)) {
			failFOJ++
		}
	}
	var b strings.Builder
	b.WriteString("E11 — Section 2: the binary operators as generalized selections over ×\n\n")
	fmt.Fprintf(&b, "r1 JOIN r2 = GS[p; ](r1 x r2):        %d failures / %d trials\n", failJoin, trials)
	fmt.Fprintf(&b, "r1 LOJ r2  = GS[p; r1](r1 x r2):      %d failures / %d trials\n", failLOJ, trials)
	fmt.Fprintf(&b, "r1 FOJ r2  = GS[p; r1, r2](r1 x r2):  %d failures / %d trials\n", failFOJ, trials)
	b.WriteString("\n(empty-input caveat of Definition 2.1 excluded; see TestGSEmptySideCaveat)\n")
	return b.String()
}

// --- E12: Example 3.1 — group-by push-up -----------------------------

// E12Plans builds Example 3.1's expression and its push-up rewriting.
func E12Plans(db plan.Database) (original, rewritten plan.Node, err error) {
	cCol := schema.Attr("v", "c")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r2", "x")},
		[]algebra.Aggregate{algebra.CountRel("r1", cCol)},
		plan.NewJoin(plan.LeftJoin, expr.EqCols("r1", "x", "r2", "x"),
			plan.NewScan("r1"), plan.NewScan("r2")),
	)
	p13 := expr.Cmp{Op: value.GE, L: expr.Column("r3", "y"), R: expr.Col{Attr: cCol}}
	p23 := expr.EqCols("r2", "x", "r3", "x")
	original = plan.NewJoin(plan.LeftJoin, expr.And(p13, p23), gp, plan.NewScan("r3"))
	rewritten, err = core.PushUpGroupBy(original.(*plan.Join), db)
	return
}

// E12 demonstrates the push-up of Example 3.1 and verifies it.
func E12() string {
	rng := rand.New(rand.NewSource(12))
	var b strings.Builder
	b.WriteString("E12 — Example 3.1: aggregation push-up with deferred predicate on the aggregated column\n\n")
	db := randDB(rng, 5, 3, "r1", "r2", "r3")
	original, rewritten, err := E12Plans(db)
	if err != nil {
		return err.Error()
	}
	b.WriteString("original:\n" + plan.Indent(original))
	b.WriteString("\nrewritten:\n" + plan.Indent(rewritten))
	equal := true
	for trial := 0; trial < 100; trial++ {
		db := randDB(rng, 5, 3, "r1", "r2", "r3")
		ok, err := plan.Equivalent(original, rewritten, db)
		if err != nil || !ok {
			equal = false
		}
	}
	fmt.Fprintf(&b, "\nequivalent on 100 random databases: %v\n", equal)
	return b.String()
}
