package algebra

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// AggFunc enumerates the aggregate functions of the paper's
// generalized projections, including the duplicate-insensitive forms
// (max, min, count(distinct), sum(distinct), avg(distinct)) that make
// a GP a δ in the paper's notation.
type AggFunc uint8

// The aggregate functions.
const (
	CountStar AggFunc = iota // COUNT(*)
	Count                    // COUNT(expr): non-NULL count
	CountDistinct
	Sum
	SumDistinct
	Min
	Max
	Avg
	AvgDistinct
)

// String renders the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case CountStar:
		return "count(*)"
	case Count:
		return "count"
	case CountDistinct:
		return "count(distinct)"
	case Sum:
		return "sum"
	case SumDistinct:
		return "sum(distinct)"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	case AvgDistinct:
		return "avg(distinct)"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// DuplicateInsensitive reports whether the function ignores
// duplicates of its argument, which is what lets a GP be pulled
// above duplicate-generating joins without count adjustments.
func (f AggFunc) DuplicateInsensitive() bool {
	switch f {
	case CountDistinct, SumDistinct, Min, Max, AvgDistinct:
		return true
	}
	return false
}

// Aggregate is one f(Y) term of a generalized projection π_{X,f(Y)}:
// function, argument expression (nil for COUNT(*)) and the attribute
// naming the generated column.
type Aggregate struct {
	Func AggFunc
	Arg  expr.Scalar
	Out  schema.Attribute
	// NullIfEmpty makes a count yield NULL instead of 0 when no
	// qualifying row exists in the group. It is set when a
	// generalized projection is pulled above the null-supplying side
	// of an outer join: groups formed solely from NULL-padded rows
	// must reproduce the NULLs the original outer join produced
	// rather than a spurious zero (the classic "count bug" of
	// [GANS87]). Sum/min/max/avg already yield NULL on empty groups.
	NullIfEmpty bool
}

// String renders e.g. "v1.c=count(r1.#rid)".
func (a Aggregate) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	switch a.Func {
	case CountStar:
		return fmt.Sprintf("%s=count(*)", a.Out)
	case CountDistinct, SumDistinct, AvgDistinct:
		base := strings.TrimSuffix(a.Func.String(), "(distinct)")
		return fmt.Sprintf("%s=%s(distinct %s)", a.Out, base, arg)
	default:
		return fmt.Sprintf("%s=%s(%s)", a.Out, a.Func, arg)
	}
}

// CountRel builds the count(r_i) aggregate the paper writes in
// Example 3.1 and View V_1: a count of the tuples contributed by base
// relation rel, implemented as COUNT over rel's virtual row
// identifier (NULL-padded tuples do not count).
func CountRel(rel string, out schema.Attribute) Aggregate {
	return Aggregate{Func: Count, Arg: expr.Col{Attr: schema.RID(rel)}, Out: out}
}

// valueSet is a hash set of values bucketed by Hash64 with Equal
// verification — the DISTINCT tracker of the duplicate-insensitive
// aggregates, free of the per-value Key() rendering the string-keyed
// map paid.
type valueSet struct {
	buckets map[uint64][]value.Value
}

// add inserts v and reports whether it was absent.
func (s *valueSet) add(v value.Value) bool {
	h := v.Hash64()
	for _, o := range s.buckets[h] {
		if value.Equal(v, o) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], v)
	return true
}

// AggState accumulates one aggregate within one group. It is
// exported so the vectorized executor's generic aggregation path
// shares this exact accumulator — distinct tracking, INT/FLOAT sum
// promotion and empty-group results cannot drift between engines.
type AggState struct {
	n        int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max value.Value
	seen     *valueSet
}

// NewAggState returns an empty accumulator for the function.
func NewAggState(f AggFunc) *AggState {
	s := &AggState{min: value.Null, max: value.Null}
	if f.DuplicateInsensitive() && f != Min && f != Max {
		s.seen = &valueSet{buckets: make(map[uint64][]value.Value)}
	}
	return s
}

// Add folds one row's argument value into the accumulator. NULL is
// ignored for every function except COUNT(*), where v is unused.
func (s *AggState) Add(f AggFunc, v value.Value) {
	if f == CountStar {
		s.n++
		return
	}
	if v.IsNull() {
		return
	}
	if s.seen != nil && !s.seen.add(v) {
		return
	}
	s.n++
	switch f {
	case Sum, SumDistinct, Avg, AvgDistinct:
		if v.Kind() == value.KindFloat {
			s.isFloat = true
			s.sumF += v.Float()
		} else {
			s.sumI += v.Int()
			s.sumF += v.Float()
		}
	case Min:
		if s.min.IsNull() {
			s.min = v
		} else if c, ok := value.Compare(v, s.min); ok && c < 0 {
			s.min = v
		}
	case Max:
		if s.max.IsNull() {
			s.max = v
		} else if c, ok := value.Compare(v, s.max); ok && c > 0 {
			s.max = v
		}
	}
}

// Result finalizes the accumulator into the group's output value.
func (s *AggState) Result(f AggFunc, nullIfEmpty bool) value.Value {
	switch f {
	case CountStar, Count, CountDistinct:
		if s.n == 0 && nullIfEmpty {
			return value.Null
		}
		return value.NewInt(s.n)
	case Sum, SumDistinct:
		if s.n == 0 {
			return value.Null
		}
		if s.isFloat {
			return value.NewFloat(s.sumF)
		}
		return value.NewInt(s.sumI)
	case Min:
		return s.min
	case Max:
		return s.max
	case Avg, AvgDistinct:
		if s.n == 0 {
			return value.Null
		}
		return value.NewFloat(s.sumF / float64(s.n))
	}
	return value.Null
}

// GroupProject implements the generalized projection π_{X,f(Y)}(r)
// ([GUPT95], Section 1.2): group r by the attributes X and compute
// each aggregate per group. The result schema is X followed by the
// generated columns. With no aggregates this is SELECT DISTINCT X.
// Following SQL, an empty input with a non-empty X yields no groups;
// grouping keys treat NULL as identical to NULL.
func GroupProject(groupBy []schema.Attribute, aggs []Aggregate, r *relation.Relation) *relation.Relation {
	outAttrs := append([]schema.Attribute(nil), groupBy...)
	for _, a := range aggs {
		outAttrs = append(outAttrs, a.Out)
	}
	out := relation.New(schema.New(outAttrs...))

	keyIdx := make([]int, len(groupBy))
	for i, a := range groupBy {
		keyIdx[i] = r.Schema().IndexOf(a)
		if keyIdx[i] < 0 {
			panic(fmt.Sprintf("algebra: group-by attribute %s not in %s", a, r.Schema()))
		}
	}

	type group struct {
		key    relation.Tuple
		states []*AggState
	}
	// Groups bucket by the key tuple's 64-bit hash with EqualTuple
	// verification; the scratch key is cloned only when it opens a new
	// group, so the per-row cost is hashing alone — no string
	// rendering, no per-row key allocation.
	groups := make(map[uint64][]*group)
	var order []*group
	scratch := make(relation.Tuple, len(keyIdx))

	for _, t := range r.Tuples() {
		for i, j := range keyIdx {
			scratch[i] = t[j]
		}
		h := scratch.Hash64()
		var g *group
		for _, cand := range groups[h] {
			if cand.key.EqualTuple(scratch) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: scratch.Clone(), states: make([]*AggState, len(aggs))}
			for i, a := range aggs {
				g.states[i] = NewAggState(a.Func)
			}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		env := expr.TupleEnv{Schema: r.Schema(), Tuple: t}
		for i, a := range aggs {
			var v value.Value
			if a.Arg != nil {
				v = a.Arg.Eval(env)
			}
			g.states[i].Add(a.Func, v)
		}
	}

	// SQL: aggregation over an empty input with no GROUP BY columns
	// produces a single row of "empty" aggregates.
	if len(groups) == 0 && len(groupBy) == 0 && len(aggs) > 0 {
		row := make(relation.Tuple, 0, len(aggs))
		for _, a := range aggs {
			row = append(row, NewAggState(a.Func).Result(a.Func, a.NullIfEmpty))
		}
		out.Append(row)
		return out
	}

	for _, g := range order {
		row := make(relation.Tuple, 0, len(outAttrs))
		row = append(row, g.key...)
		for i, a := range aggs {
			row = append(row, g.states[i].Result(a.Func, a.NullIfEmpty))
		}
		out.Append(row)
	}
	return out
}
