package algebra

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// relPair is a quick.Generator producing two joinable relations with
// small domains, NULLs and duplicates.
type relPair struct {
	r1, r2 *relation.Relation
}

// Generate implements quick.Generator.
func (relPair) Generate(rng *rand.Rand, _ int) reflect.Value {
	gen := func(name string, cols []string) *relation.Relation {
		b := relation.NewBuilder(name, cols...)
		n := rng.Intn(7)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, len(cols))
			for j := range vals {
				if rng.Intn(7) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(3)))
				}
			}
			b.Row(vals...)
		}
		return b.Relation()
	}
	return reflect.ValueOf(relPair{
		r1: gen("r1", []string{"x", "y"}),
		r2: gen("r2", []string{"x", "y"}),
	})
}

var propPred = expr.EqCols("r1", "x", "r2", "x")

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 300} }

// TestPropJoinCommutative: r1 ⋈p r2 = r2 ⋈p r1 as sets.
func TestPropJoinCommutative(t *testing.T) {
	f := func(p relPair) bool {
		return Join(propPred, p.r1, p.r2).EqualAsSets(Join(propPred, p.r2, p.r1))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropFullOuterCommutative: r1 ↔p r2 = r2 ↔p r1 as sets.
func TestPropFullOuterCommutative(t *testing.T) {
	f := func(p relPair) bool {
		return FullOuter(propPred, p.r1, p.r2).EqualAsSets(FullOuter(propPred, p.r2, p.r1))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropLOJContainsJoin: the left outer join contains the inner
// join, and its cardinality is at least |r1|.
func TestPropLOJContainsJoin(t *testing.T) {
	f := func(p relPair) bool {
		join := Join(propPred, p.r1, p.r2)
		loj := LeftOuter(propPred, p.r1, p.r2)
		if loj.Len() < p.r1.Len() || loj.Len() < join.Len() {
			return false
		}
		keys := make(map[string]bool, loj.Len())
		for _, t := range loj.Tuples() {
			keys[t.Key()] = true
		}
		for _, t := range join.Tuples() {
			if !keys[t.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropFOJDecomposition: ↔ = ⋈ ∪ (r1 ▷) ∪ (▷ r2) with counts.
func TestPropFOJDecomposition(t *testing.T) {
	f := func(p relPair) bool {
		full := FullOuter(propPred, p.r1, p.r2)
		join := Join(propPred, p.r1, p.r2)
		a1 := AntiJoin(propPred, p.r1, p.r2)
		a2 := AntiJoin(propPred, p.r2, p.r1)
		return full.Len() == join.Len()+a1.Len()+a2.Len()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropGSIdempotentOnSelected: applying σ* twice with the same
// predicate and specs is the same as once (its output's selected part
// passes again and its preserved part is re-preserved).
func TestPropGSIdempotentOnSelected(t *testing.T) {
	f := func(p relPair) bool {
		in := LeftOuter(propPred, p.r1, p.r2)
		pred := expr.EqCols("r1", "y", "r2", "y")
		specs := []map[string]bool{RelSet("r1")}
		once := MustGenSelect(pred, specs, in)
		twice := MustGenSelect(pred, specs, once)
		return twice.EqualAsSets(once)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropGSEmptySpecIsSelect: σ*_p[](r) = σ_p(r).
func TestPropGSEmptySpecIsSelect(t *testing.T) {
	f := func(p relPair) bool {
		in := LeftOuter(propPred, p.r1, p.r2)
		pred := expr.EqCols("r1", "y", "r2", "y")
		return MustGenSelect(pred, nil, in).EqualAsSets(Select(pred, in))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropGSPreservesRelationExactly: after σ*_p[r1], the distinct
// set of non-NULL r1-projections equals the input's (nothing lost,
// nothing invented).
func TestPropGSPreservesRelationExactly(t *testing.T) {
	attrs := func(r *relation.Relation) []schema.Attribute {
		return r.Schema().AttrsOfRels(map[string]bool{"r1": true})
	}
	f := func(p relPair) bool {
		in := Product(p.r1, p.r2)
		pred := expr.EqCols("r1", "y", "r2", "y")
		out := MustGenSelect(pred, []map[string]bool{RelSet("r1")}, in)
		want := in.Project(attrs(in), true)
		got := out.Project(attrs(out), true)
		return got.EqualAsSets(want)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropGroupCountsSumToInput: COUNT(*) per group sums to the input
// cardinality.
func TestPropGroupCountsSumToInput(t *testing.T) {
	cnt := schema.Attr("q", "c")
	f := func(p relPair) bool {
		out := GroupProject(
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]Aggregate{{Func: CountStar, Out: cnt}},
			p.r1)
		var sum int64
		for _, t := range out.Tuples() {
			sum += out.Value(t, cnt).Int()
		}
		return sum == int64(p.r1.Len())
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropSelectMonotone: σ never grows a relation and σ_p∘σ_p = σ_p.
func TestPropSelectMonotone(t *testing.T) {
	pred := expr.Cmp{Op: value.GE, L: expr.Column("r1", "x"), R: expr.Int(1)}
	f := func(p relPair) bool {
		once := Select(pred, p.r1)
		return once.Len() <= p.r1.Len() && Select(pred, once).EqualAsSets(once)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropProductCardinality: |r1 × r2| = |r1|·|r2|.
func TestPropProductCardinality(t *testing.T) {
	f := func(p relPair) bool {
		return Product(p.r1, p.r2).Len() == p.r1.Len()*p.r2.Len()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
