// Package algebra implements the paper's relational operators over
// in-memory relations: selection σ, cartesian product ×, inner join
// ⋈, left/right/full outer join →/←/↔, anti join ▷, the novel
// generalized selection σ* (Definition 2.1), generalized projection
// π_{X,f(Y)} for GROUP BY aggregation, and MGOJ, the modified
// generalized outer join of [BHAR95a] used during partial
// reorderings.
//
// These are *reference* implementations: straightforward nested-loop
// definitions that mirror the paper's set-theoretic definitions
// exactly. The executor package provides faster physical operators;
// its results are cross-checked against this package in tests.
package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Select returns σ_p(r): the tuples of r for which p evaluates to
// True (Unknown filters out, making predicates null in-tolerant).
func Select(p expr.Pred, r *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		if p.Eval(expr.TupleEnv{Schema: r.Schema(), Tuple: t}).Holds() {
			out.Append(t)
		}
	}
	return out
}

// Product returns the cartesian product r1 × r2. The schemas must be
// disjoint (relations renamed apart, footnote 5).
func Product(r1, r2 *relation.Relation) *relation.Relation {
	s := r1.Schema().Concat(r2.Schema())
	out := relation.New(s)
	for _, t1 := range r1.Tuples() {
		for _, t2 := range r2.Tuples() {
			t := make(relation.Tuple, 0, len(t1)+len(t2))
			t = append(t, t1...)
			t = append(t, t2...)
			out.Append(t)
		}
	}
	return out
}

// Join returns the inner join r1 ⋈_p r2.
func Join(p expr.Pred, r1, r2 *relation.Relation) *relation.Relation {
	s := r1.Schema().Concat(r2.Schema())
	out := relation.New(s)
	for _, t1 := range r1.Tuples() {
		for _, t2 := range r2.Tuples() {
			t := make(relation.Tuple, 0, len(t1)+len(t2))
			t = append(t, t1...)
			t = append(t, t2...)
			if p.Eval(expr.TupleEnv{Schema: s, Tuple: t}).Holds() {
				out.Append(t)
			}
		}
	}
	return out
}

// AntiJoin returns r1 ▷_p r2: the tuples of r1 with no p-match in r2.
func AntiJoin(p expr.Pred, r1, r2 *relation.Relation) *relation.Relation {
	s := r1.Schema().Concat(r2.Schema())
	out := relation.New(r1.Schema())
	scratch := make(relation.Tuple, s.Len())
	for _, t1 := range r1.Tuples() {
		matched := false
		copy(scratch, t1)
		for _, t2 := range r2.Tuples() {
			copy(scratch[len(t1):], t2)
			if p.Eval(expr.TupleEnv{Schema: s, Tuple: scratch}).Holds() {
				matched = true
				break
			}
		}
		if !matched {
			out.Append(t1.Clone())
		}
	}
	return out
}

// LeftOuter returns r1 →_p r2: the union of r1 ⋈_p r2 and r1 ▷_p r2,
// with unmatched r1 tuples NULL-padded on sch(r2). r1 is the
// preserved relation, r2 the null-supplying relation.
func LeftOuter(p expr.Pred, r1, r2 *relation.Relation) *relation.Relation {
	s := r1.Schema().Concat(r2.Schema())
	out := relation.New(s)
	n2 := r2.Schema().Len()
	for _, t1 := range r1.Tuples() {
		matched := false
		for _, t2 := range r2.Tuples() {
			t := make(relation.Tuple, 0, len(t1)+len(t2))
			t = append(t, t1...)
			t = append(t, t2...)
			if p.Eval(expr.TupleEnv{Schema: s, Tuple: t}).Holds() {
				out.Append(t)
				matched = true
			}
		}
		if !matched {
			t := make(relation.Tuple, 0, len(t1)+n2)
			t = append(t, t1...)
			for i := 0; i < n2; i++ {
				t = append(t, value.Null)
			}
			out.Append(t)
		}
	}
	return out
}

// RightOuter returns r1 ←_p r2, preserving r2.
func RightOuter(p expr.Pred, r1, r2 *relation.Relation) *relation.Relation {
	// r1 ← r2 has schema R1R2 but preserves r2; compute as the
	// mirrored left outer join and restore column order.
	s := r1.Schema().Concat(r2.Schema())
	return LeftOuter(p, r2, r1).Reorder(s)
}

// FullOuter returns r1 ↔_p r2: matched pairs plus both sides'
// unmatched tuples, NULL-padded.
func FullOuter(p expr.Pred, r1, r2 *relation.Relation) *relation.Relation {
	s := r1.Schema().Concat(r2.Schema())
	out := relation.New(s)
	n1, n2 := r1.Schema().Len(), r2.Schema().Len()
	rightMatched := make([]bool, r2.Len())
	for _, t1 := range r1.Tuples() {
		matched := false
		for j, t2 := range r2.Tuples() {
			t := make(relation.Tuple, 0, n1+n2)
			t = append(t, t1...)
			t = append(t, t2...)
			if p.Eval(expr.TupleEnv{Schema: s, Tuple: t}).Holds() {
				out.Append(t)
				matched = true
				rightMatched[j] = true
			}
		}
		if !matched {
			t := make(relation.Tuple, 0, n1+n2)
			t = append(t, t1...)
			for i := 0; i < n2; i++ {
				t = append(t, value.Null)
			}
			out.Append(t)
		}
	}
	for j, t2 := range r2.Tuples() {
		if rightMatched[j] {
			continue
		}
		t := make(relation.Tuple, 0, n1+n2)
		for i := 0; i < n1; i++ {
			t = append(t, value.Null)
		}
		t = append(t, t2...)
		out.Append(t)
	}
	return out
}

// Project returns π over the given attributes; distinct selects set
// semantics (SELECT DISTINCT / the projections of Definition 2.1).
func Project(attrs []schema.Attribute, distinct bool, r *relation.Relation) *relation.Relation {
	return r.Project(attrs, distinct)
}

// resolvePreserved maps a preserved-relation specification (a set of
// base relation names, e.g. the "r1r2" of σ*_{p}[r1r2]) to the
// attributes of the input schema belonging to those relations.
func resolvePreserved(s *schema.Schema, spec map[string]bool) ([]schema.Attribute, error) {
	attrs := s.AttrsOfRels(spec)
	if len(attrs) == 0 {
		return nil, fmt.Errorf("algebra: preserved relations %v have no attributes in schema %s", keys(spec), s)
	}
	return attrs, nil
}

func allNull(t relation.Tuple) bool {
	for _, v := range t {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// GenSelect implements generalized selection σ*_p[r_1,…,r_n](r)
// (Definition 2.1):
//
//	E' = σ_p(r) ⊎_{1≤i≤n} { π_{R_iV_i}(r) − π_{R_iV_i}(σ_p(r)) }
//
// Each preserved relation is specified as the set of base relation
// names whose attributes it spans (e.g. {"r1","r2"} for the combined
// relation r1r2); the projection π_{R_iV_i} includes both real and
// virtual attributes, so duplicates in the preserved relation survive
// exactly as the paper intends. The preserved tuples are padded with
// NULLs for the remaining attributes of r.
func GenSelect(p expr.Pred, preserved []map[string]bool, r *relation.Relation) (*relation.Relation, error) {
	return GenSelectWith(Select(p, r), preserved, r)
}

// GenSelectWith is GenSelect over a precomputed sel = σ_p(r): it
// appends the preserved-projection compensation to sel's tuples. The
// executor's parallel path computes σ_p(r) with partitioned workers
// and reuses the compensation logic through this entry point.
func GenSelectWith(sel *relation.Relation, preserved []map[string]bool, r *relation.Relation) (*relation.Relation, error) {
	out := relation.New(r.Schema())
	for _, t := range sel.Tuples() {
		out.Append(t)
	}
	for _, spec := range preserved {
		attrs, err := resolvePreserved(r.Schema(), spec)
		if err != nil {
			return nil, err
		}
		all := r.Project(attrs, true)
		kept := sel.Project(attrs, true)
		missing := all.Minus(kept)
		for _, t := range missing.PadTo(r.Schema()).Tuples() {
			// A projection that is entirely NULL (including the
			// virtual row identifiers) arises only from tuples of r
			// that were themselves NULL-padded on the preserved
			// relation's attributes; it represents no actual tuple
			// of r_i and is not preserved.
			if allNull(t) {
				continue
			}
			out.Append(t)
		}
	}
	return out, nil
}

// MustGenSelect is GenSelect that panics on specification errors; it
// is used in tests and examples where the specs are static.
func MustGenSelect(p expr.Pred, preserved []map[string]bool, r *relation.Relation) *relation.Relation {
	out, err := GenSelect(p, preserved, r)
	if err != nil {
		panic(err)
	}
	return out
}

// MGOJ implements the modified generalized outer join of [BHAR95a]:
// join r1 and r2 on p while preserving, for every listed
// specification P_i, the distinct P_i-projections that found no join
// partner, NULL-padded on the remaining attributes. The paper notes
// (Section 4) that MGOJ and generalized selection have the same
// implementation shape: for non-empty inputs
//
//	MGOJ_p[P_1,…,P_n](r1, r2) = σ*_p[P_1,…,P_n](r1 × r2).
//
// Unlike the literal cartesian-product form, the preserved
// projections here are drawn from the input that carries them, so an
// empty opposite side still preserves correctly (matching the outer
// joins MGOJ generalizes). A specification spanning both inputs falls
// back to projecting the product.
func MGOJ(p expr.Pred, preserved []map[string]bool, r1, r2 *relation.Relation) (*relation.Relation, error) {
	join := Join(p, r1, r2)
	s := join.Schema()
	out := relation.New(s)
	for _, t := range join.Tuples() {
		out.Append(t)
	}
	for _, spec := range preserved {
		attrs, err := resolvePreserved(s, spec)
		if err != nil {
			return nil, err
		}
		var source *relation.Relation
		switch {
		case containsAllAttrs(r1.Schema(), attrs):
			source = r1
		case containsAllAttrs(r2.Schema(), attrs):
			source = r2
		default:
			source = Product(r1, r2)
		}
		all := source.Project(attrs, true)
		kept := join.Project(attrs, true)
		for _, t := range all.Minus(kept).PadTo(s).Tuples() {
			if allNull(t) {
				continue
			}
			out.Append(t)
		}
	}
	return out, nil
}

func containsAllAttrs(s *schema.Schema, attrs []schema.Attribute) bool {
	for _, a := range attrs {
		if !s.Contains(a) {
			return false
		}
	}
	return true
}

// RelSet builds a relation-name set from names; a convenience for
// writing preserved specifications.
func RelSet(names ...string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}
