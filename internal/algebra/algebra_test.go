package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// example21 builds the three relations of Example 2.1.
func example21() (r1, r2, r3 *relation.Relation) {
	s := value.NewString
	r1 = relation.NewBuilder("r1", "a", "b", "c", "f").
		Row(s("a1"), s("b1"), s("c1"), s("f1")).
		Row(s("a2"), s("b1"), s("c1"), s("f2")).
		Row(s("a2"), s("b1"), s("c2"), s("f2")).
		Relation()
	r2 = relation.NewBuilder("r2", "c", "d", "e").
		Row(s("c1"), s("d1"), s("e1")).
		Relation()
	r3 = relation.NewBuilder("r3", "e", "f").
		Row(s("e1"), s("f1")).
		Row(s("e1"), s("f3")).
		Relation()
	return
}

var (
	p12 = expr.EqCols("r1", "c", "r2", "c")
	p13 = expr.EqCols("r1", "f", "r3", "f")
	p23 = expr.EqCols("r2", "e", "r3", "e")
)

func strAt(t *testing.T, r *relation.Relation, row int, attr schema.Attribute) string {
	t.Helper()
	v := r.Value(r.Tuple(row), attr)
	return v.String()
}

// TestExample21T1 reproduces table T1: (r1 →p12 r2) →(p13∧p23) r3.
func TestExample21T1(t *testing.T) {
	r1, r2, r3 := example21()
	t1 := LeftOuter(expr.And(p13, p23), LeftOuter(p12, r1, r2), r3)
	t1.SortForDisplay()
	if t1.Len() != 3 {
		t.Fatalf("T1 has %d rows, want 3:\n%s", t1.Len(), t1)
	}
	// Row with a1 joins r2 and r3(e1,f1); the two a2 rows are padded
	// on r3 (and the c2 row padded on r2 as well).
	type row struct{ a, d, e3, f3 string }
	want := []row{
		{"a1", "d1", "e1", "f1"},
		{"a2", "d1", "-", "-"},
		{"a2", "-", "-", "-"},
	}
	for i, w := range want {
		got := row{
			a:  strAt(t, t1, i, schema.Attr("r1", "a")),
			d:  strAt(t, t1, i, schema.Attr("r2", "d")),
			e3: strAt(t, t1, i, schema.Attr("r3", "e")),
			f3: strAt(t, t1, i, schema.Attr("r3", "f")),
		}
		if got != w {
			t.Errorf("T1 row %d = %+v, want %+v\n%s", i, got, w, t1)
		}
	}
}

// TestExample21T2 computes table T2: (r1 →p12 r2) →p23 r3. Dropping
// p13 from the outer join lets the a2/c1 tuple (and the a1 tuple)
// match both r3 rows, so unlike T1 the a2/c1 tuple carries non-null
// e and f values — the difference the paper points out.
func TestExample21T2(t *testing.T) {
	r1, r2, r3 := example21()
	t2 := LeftOuter(p23, LeftOuter(p12, r1, r2), r3)
	if t2.Len() != 5 {
		t.Fatalf("T2 has %d rows, want 5 (two matches each for the two c1 tuples, one padded row):\n%s", t2.Len(), t2)
	}
	padded := 0
	for i := 0; i < t2.Len(); i++ {
		if t2.Value(t2.Tuple(i), schema.Attr("r3", "e")).IsNull() {
			padded++
			if got := strAt(t, t2, i, schema.Attr("r1", "c")); got != "c2" {
				t.Errorf("padded T2 row should be the c2 tuple, got r1.c=%s", got)
			}
		}
	}
	if padded != 1 {
		t.Errorf("T2 has %d padded rows, want 1:\n%s", padded, t2)
	}
}

// TestExample21Compensation is the paper's punchline for Example 2.1:
// applying σ*_{p13}[r1r2] on top of T2 compensates for the broken-up
// complex predicate and yields exactly T1.
func TestExample21Compensation(t *testing.T) {
	r1, r2, r3 := example21()
	t1 := LeftOuter(expr.And(p13, p23), LeftOuter(p12, r1, r2), r3)
	t2 := LeftOuter(p23, LeftOuter(p12, r1, r2), r3)
	got := MustGenSelect(p13, []map[string]bool{RelSet("r1", "r2")}, t2)
	if !got.EqualAsSets(t1) {
		t.Fatalf("σ*_p13[r1r2](T2) != T1\ngot:\n%s\nwant:\n%s", got.Format(true), t1.Format(true))
	}
}

// randRel builds a random relation with the given name, columns, row
// count and value domain size. Small domains force joins, NULLs and
// duplicates to occur.
func randRel(rng *rand.Rand, name string, cols []string, rows, domain int) *relation.Relation {
	b := relation.NewBuilder(name, cols...)
	for i := 0; i < rows; i++ {
		vals := make([]value.Value, len(cols))
		for j := range cols {
			if rng.Intn(8) == 0 {
				vals[j] = value.Null
			} else {
				vals[j] = value.NewInt(int64(rng.Intn(domain)))
			}
		}
		b.Row(vals...)
	}
	return b.Relation()
}

// TestGSSubsumesJoins checks the Section 2 equations
//
//	r1 ⋈p r2 = σ*_p[](r1 × r2)
//	r1 →p r2 = σ*_p[r1](r1 × r2)
//	r1 ↔p r2 = σ*_p[r1,r2](r1 × r2)
//
// on randomized inputs. The equations hold whenever both inputs are
// non-empty; the empty-side caveat of Definition 2.1 (π is taken over
// r = r1 × r2, which loses the preserved side when the other side is
// empty) is pinned separately in TestGSEmptySideCaveat.
func TestGSSubsumesJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		r1 := randRel(rng, "r1", []string{"a", "b"}, 1+rng.Intn(6), 4)
		r2 := randRel(rng, "r2", []string{"b", "c"}, 1+rng.Intn(6), 4)
		p := expr.EqCols("r1", "b", "r2", "b")
		prod := Product(r1, r2)

		if got, want := MustGenSelect(p, nil, prod), Join(p, r1, r2); !got.EqualAsSets(want) {
			t.Fatalf("trial %d: σ*_p[](r1×r2) != r1⋈r2\ngot:\n%s\nwant:\n%s", trial, got.Format(true), want.Format(true))
		}
		if got, want := MustGenSelect(p, []map[string]bool{RelSet("r1")}, prod), LeftOuter(p, r1, r2); !got.EqualAsSets(want) {
			t.Fatalf("trial %d: σ*_p[r1](r1×r2) != r1→r2\ngot:\n%s\nwant:\n%s", trial, got.Format(true), want.Format(true))
		}
		if got, want := MustGenSelect(p, []map[string]bool{RelSet("r1"), RelSet("r2")}, prod), FullOuter(p, r1, r2); !got.EqualAsSets(want) {
			t.Fatalf("trial %d: σ*_p[r1,r2](r1×r2) != r1↔r2\ngot:\n%s\nwant:\n%s", trial, got.Format(true), want.Format(true))
		}
	}
}

// TestGSEmptySideCaveat documents that Definition 2.1 taken literally
// (projections over r, not over the preserved relations' own
// extensions) diverges from the left outer join when the
// null-supplying side is empty: the cartesian product is empty, so
// nothing is preserved.
func TestGSEmptySideCaveat(t *testing.T) {
	r1 := relation.NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	r2 := relation.NewBuilder("r2", "a").Relation()
	p := expr.EqCols("r1", "a", "r2", "a")
	loj := LeftOuter(p, r1, r2)
	if loj.Len() != 1 {
		t.Fatalf("LOJ with empty null-supplier should preserve r1, got %d rows", loj.Len())
	}
	gs := MustGenSelect(p, []map[string]bool{RelSet("r1")}, Product(r1, r2))
	if gs.Len() != 0 {
		t.Fatalf("literal Definition 2.1 over an empty product preserves nothing, got %d rows", gs.Len())
	}
}

// TestRightOuter checks r1 ←p r2 = mirror of r2 →p r1 with r1's
// columns leading.
func TestRightOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		r1 := randRel(rng, "r1", []string{"a"}, rng.Intn(5), 3)
		r2 := randRel(rng, "r2", []string{"a"}, rng.Intn(5), 3)
		p := expr.EqCols("r1", "a", "r2", "a")
		got := RightOuter(p, r1, r2)
		want := LeftOuter(p, r2, r1)
		if !got.EqualAsSets(want) {
			t.Fatalf("trial %d: ← is not the mirror of →", trial)
		}
		if !got.Schema().Equal(r1.Schema().Concat(r2.Schema())) {
			t.Fatalf("trial %d: ← schema %s", trial, got.Schema())
		}
	}
}

// TestFullOuterDecomposition checks r1 ↔p r2 = (r1 ⋈p r2) ∪ padded(r1
// ▷p r2) ∪ padded(r2 ▷p r1), the Section 1.2 definition.
func TestFullOuterDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		r1 := randRel(rng, "r1", []string{"a", "b"}, rng.Intn(6), 3)
		r2 := randRel(rng, "r2", []string{"b", "c"}, rng.Intn(6), 3)
		p := expr.EqCols("r1", "b", "r2", "b")
		full := FullOuter(p, r1, r2)
		join := Join(p, r1, r2)
		want := join.
			OuterUnion(AntiJoin(p, r1, r2)).
			OuterUnion(AntiJoin(p, r2, r1)).
			Reorder(full.Schema())
		if !full.EqualAsSets(want) {
			t.Fatalf("trial %d: full outer join decomposition failed\ngot:\n%s\nwant:\n%s",
				trial, full.Format(true), want.Format(true))
		}
	}
}

// TestAntiJoinComplementsJoin checks that the join and anti-join
// partition r1 by matchedness.
func TestAntiJoinComplementsJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		r1 := randRel(rng, "r1", []string{"a"}, rng.Intn(8), 3)
		r2 := randRel(rng, "r2", []string{"a"}, rng.Intn(8), 3)
		p := expr.EqCols("r1", "a", "r2", "a")
		join := Join(p, r1, r2)
		anti := AntiJoin(p, r1, r2)
		rid := schema.RID("r1")
		matched := make(map[string]bool)
		for _, tu := range join.Tuples() {
			matched[join.Value(tu, rid).Key()] = true
		}
		for _, tu := range anti.Tuples() {
			if matched[anti.Value(tu, rid).Key()] {
				t.Fatalf("trial %d: anti-join kept a matched tuple", trial)
			}
		}
		if join.Project([]schema.Attribute{rid}, true).Len()+anti.Len() != r1.Len() {
			t.Fatalf("trial %d: join/anti-join do not partition r1", trial)
		}
	}
}

// TestSelectNullIntolerance pins footnote 2: predicates evaluate to
// (effectively) false on NULL inputs.
func TestSelectNullIntolerance(t *testing.T) {
	r := relation.NewBuilder("r", "a").
		Row(value.NewInt(1)).
		Row(value.Null).
		Relation()
	for _, op := range []value.CmpOp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE} {
		p := expr.Cmp{Op: op, L: expr.Column("r", "a"), R: expr.Column("r", "a")}
		got := Select(p, r)
		for _, tu := range got.Tuples() {
			if got.Value(tu, schema.Attr("r", "a")).IsNull() {
				t.Errorf("op %s selected a NULL tuple", op)
			}
		}
	}
}

func TestGroupProjectBasics(t *testing.T) {
	r := relation.NewBuilder("r", "g", "v").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(1), value.NewInt(20)).
		Row(value.NewInt(2), value.Null).
		Row(value.NewInt(2), value.NewInt(5)).
		Row(value.Null, value.NewInt(7)).
		Relation()
	g := schema.Attr("r", "g")
	aggs := []Aggregate{
		{Func: CountStar, Out: schema.Attr("q", "cstar")},
		{Func: Count, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "cnt")},
		{Func: Sum, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "sum")},
		{Func: Min, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "min")},
		{Func: Max, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "max")},
		{Func: Avg, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "avg")},
	}
	out := GroupProject([]schema.Attribute{g}, aggs, r)
	if out.Len() != 3 {
		t.Fatalf("got %d groups, want 3 (NULL groups with NULL):\n%s", out.Len(), out)
	}
	byKey := map[string][]string{}
	for _, tu := range out.Tuples() {
		row := make([]string, 0, 6)
		for _, a := range aggs {
			row = append(row, out.Value(tu, a.Out).String())
		}
		byKey[out.Value(tu, g).String()] = row
	}
	check := func(key string, want []string) {
		t.Helper()
		got := byKey[key]
		if len(got) != len(want) {
			t.Fatalf("group %s missing", key)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("group %s agg %d = %s, want %s", key, i, got[i], want[i])
			}
		}
	}
	check("1", []string{"2", "2", "30", "10", "20", "15"})
	check("2", []string{"2", "1", "5", "5", "5", "5"})
	check("-", []string{"1", "1", "7", "7", "7", "7"})
}

func TestGroupProjectDistinctAggs(t *testing.T) {
	r := relation.NewBuilder("r", "v").
		Row(value.NewInt(3)).
		Row(value.NewInt(3)).
		Row(value.NewInt(4)).
		Row(value.Null).
		Relation()
	aggs := []Aggregate{
		{Func: CountDistinct, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "cd")},
		{Func: SumDistinct, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "sd")},
		{Func: AvgDistinct, Arg: expr.Column("r", "v"), Out: schema.Attr("q", "ad")},
	}
	out := GroupProject(nil, aggs, r)
	if out.Len() != 1 {
		t.Fatalf("want one row, got %d", out.Len())
	}
	tu := out.Tuple(0)
	if got := out.Value(tu, schema.Attr("q", "cd")).Int(); got != 2 {
		t.Errorf("count(distinct) = %d, want 2", got)
	}
	if got := out.Value(tu, schema.Attr("q", "sd")).Int(); got != 7 {
		t.Errorf("sum(distinct) = %d, want 7", got)
	}
	if got := out.Value(tu, schema.Attr("q", "ad")).Float(); got != 3.5 {
		t.Errorf("avg(distinct) = %v, want 3.5", got)
	}
}

func TestGroupProjectEmptyInput(t *testing.T) {
	r := relation.NewBuilder("r", "g", "v").Relation()
	aggs := []Aggregate{{Func: CountStar, Out: schema.Attr("q", "c")}}
	withKeys := GroupProject([]schema.Attribute{schema.Attr("r", "g")}, aggs, r)
	if withKeys.Len() != 0 {
		t.Errorf("empty input with GROUP BY should give 0 groups, got %d", withKeys.Len())
	}
	scalar := GroupProject(nil, aggs, r)
	if scalar.Len() != 1 || scalar.Value(scalar.Tuple(0), schema.Attr("q", "c")).Int() != 0 {
		t.Errorf("scalar aggregate over empty input should give one row with count 0:\n%s", scalar)
	}
}

// TestGroupProjectDistinctOnly checks π_X with no aggregates = SELECT
// DISTINCT X.
func TestGroupProjectDistinctOnly(t *testing.T) {
	r := relation.NewBuilder("r", "a", "b").
		Row(value.NewInt(1), value.NewInt(2)).
		Row(value.NewInt(1), value.NewInt(2)).
		Row(value.NewInt(1), value.NewInt(3)).
		Relation()
	out := GroupProject([]schema.Attribute{schema.Attr("r", "a"), schema.Attr("r", "b")}, nil, r)
	if out.Len() != 2 {
		t.Fatalf("distinct projection: got %d rows, want 2", out.Len())
	}
}

// TestMGOJ checks that MGOJ with a full left-side preservation equals
// the left outer join (on non-empty inputs) and that a partial
// preservation keeps only the specified projection.
func TestMGOJ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		r1 := randRel(rng, "r1", []string{"a", "b"}, 1+rng.Intn(5), 3)
		r2 := randRel(rng, "r2", []string{"b", "c"}, 1+rng.Intn(5), 3)
		p := expr.EqCols("r1", "b", "r2", "b")
		got, err := MGOJ(p, []map[string]bool{RelSet("r1")}, r1, r2)
		if err != nil {
			t.Fatal(err)
		}
		want := LeftOuter(p, r1, r2)
		if !got.EqualAsSets(want) {
			t.Fatalf("trial %d: MGOJ[r1] != LOJ", trial)
		}
	}
}

func TestGenSelectBadSpec(t *testing.T) {
	r := relation.NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	_, err := GenSelect(expr.True{}, []map[string]bool{RelSet("nosuch")}, r)
	if err == nil {
		t.Fatal("expected error for preserved spec naming an absent relation")
	}
}

func TestCountRel(t *testing.T) {
	r1, r2, _ := example21()
	joined := Join(p12, r1, r2)
	out := GroupProject(
		[]schema.Attribute{schema.Attr("r1", "c"), schema.Attr("r2", "d")},
		[]Aggregate{CountRel("r1", schema.Attr("v1", "c"))},
		joined,
	)
	if out.Len() != 1 {
		t.Fatalf("want one (c1,d1) group, got %d:\n%s", out.Len(), out)
	}
	if got := out.Value(out.Tuple(0), schema.Attr("v1", "c")).Int(); got != 2 {
		t.Errorf("count(r1) = %d, want 2 (two r1 tuples with c=c1)", got)
	}
}
