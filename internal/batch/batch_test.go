package batch

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// randRel builds a relation exercising every physical column kind plus
// a mixed column, with ~12% NULLs sprinkled everywhere.
func randRel(t *testing.T, rows int, seed int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("t", "i", "f", "s", "b", "mix")
	for r := 0; r < rows; r++ {
		mk := func(v value.Value) value.Value {
			if rng.Intn(8) == 0 {
				return value.Null
			}
			return v
		}
		var mixed value.Value
		switch rng.Intn(3) {
		case 0:
			mixed = value.NewInt(rng.Int63n(50))
		case 1:
			mixed = value.NewString("m")
		default:
			mixed = value.NewFloat(rng.Float64())
		}
		b.Row(
			mk(value.NewInt(rng.Int63n(100))),
			mk(value.NewFloat(rng.NormFloat64())),
			mk(value.NewString(string(rune('a'+rng.Intn(26))))),
			mk(value.NewBool(rng.Intn(2) == 0)),
			mk(mixed),
		)
	}
	return b.Relation()
}

func TestBatchRoundTrip(t *testing.T) {
	in := randRel(t, 300, 1)
	col := FromRelation(in)
	if col.N != in.Len() {
		t.Fatalf("N = %d, want %d", col.N, in.Len())
	}
	// Monomorphic columns get typed representations; the mixed column
	// degrades to PhysAny. Column order: i f s b mix #rid.
	want := []Phys{PhysInt, PhysFloat, PhysStr, PhysBool, PhysAny, PhysInt}
	for c, p := range want {
		if col.Cols[c].Phys != p {
			t.Errorf("col %d phys = %s, want %s", c, col.Cols[c].Phys, p)
		}
	}
	out := col.ToRelation()
	if !in.EqualAsMultisets(out) {
		t.Fatal("round trip is not multiset-identical")
	}
	// Exact value identity row by row, not just multiset equality.
	for i, tup := range in.Tuples() {
		if !tup.EqualTuple(out.Tuple(i)) {
			t.Fatalf("row %d changed: %v vs %v", i, tup, out.Tuple(i))
		}
		if !tup.EqualTuple(col.Tuple(i)) {
			t.Fatalf("Tuple(%d) changed", i)
		}
	}
}

func TestBatchKeyHashesMatchTupleHashOn(t *testing.T) {
	in := randRel(t, 200, 2)
	col := FromRelation(in)
	idx := []int{0, 2, 4} // int, string, mixed — includes NULLs
	hs, ok := col.KeyHashes(idx, false)
	for i, tup := range in.Tuples() {
		th, tok := tup.HashOn(idx)
		if ok[i] != tok {
			t.Fatalf("row %d: ok=%v, tuple ok=%v", i, ok[i], tok)
		}
		if tok && hs[i] != th {
			t.Fatalf("row %d: hash %x, tuple hash %x", i, hs[i], th)
		}
	}
	// Grouping form: NULL participates; hash must match the boxed
	// HashCombine chain with HashNull for NULL slots.
	ghs, gok := col.KeyHashes(idx, true)
	for i, tup := range in.Tuples() {
		if !gok[i] {
			t.Fatalf("row %d: grouping hash not ok", i)
		}
		h := value.HashSeed
		for _, c := range idx {
			h = value.HashCombine(h, tup[c].Hash64())
		}
		if ghs[i] != h {
			t.Fatalf("row %d: grouping hash %x, want %x", i, ghs[i], h)
		}
	}
}

func TestBatchGatherPadsNulls(t *testing.T) {
	in := randRel(t, 50, 3)
	col := FromRelation(in)
	sel := []int32{4, -1, 0, 49, -1}
	for c := range col.Cols {
		g := col.Cols[c].Gather(sel)
		for i, s := range sel {
			var want value.Value
			if s >= 0 {
				want = col.Cols[c].At(int(s))
			} else {
				want = value.Null
			}
			if !value.Equal(g.At(i), want) {
				t.Fatalf("col %d row %d: got %v, want %v", c, i, g.At(i), want)
			}
		}
	}
}

func TestBatchEqualRows(t *testing.T) {
	// INT and FLOAT columns holding the same numeric value must compare
	// equal across physical kinds, exactly as value.Equal merges them.
	iv := Vec{Phys: PhysInt, Ints: []int64{3, 7}}
	fv := Vec{Phys: PhysFloat, Floats: []float64{3, 8}}
	if !iv.EqualRows(0, &fv, 0) {
		t.Fatal("INT 3 != FLOAT 3.0 across physical kinds")
	}
	if iv.EqualRows(1, &fv, 1) {
		t.Fatal("7 == 8?")
	}
	nv := Vec{Phys: PhysInt, Ints: []int64{0, 5}}
	nv.setNull(0, 2)
	if !nv.IsNull(0) || nv.IsNull(1) {
		t.Fatal("null bitmap wrong")
	}
	if nv.EqualRows(0, &iv, 0) {
		t.Fatal("NULL == 3?")
	}
	nv2 := Vec{Phys: PhysStr, Strs: []string{""}}
	nv2.setNull(0, 1)
	if !nv.EqualRows(0, &nv2, 0) {
		t.Fatal("NULL must be identical to NULL for grouping equality")
	}
}

func TestBatchGather2PadsSides(t *testing.T) {
	l := FromRelation(relation.NewBuilder("l", "x").
		Row(value.NewInt(1)).Row(value.NewInt(2)).Relation())
	r := FromRelation(relation.NewBuilder("r", "y").
		Row(value.NewString("a")).Relation())
	s := l.Schema.Concat(r.Schema)
	out := Gather2(s, l, []int32{0, 1, -1}, r, []int32{0, -1, 0})
	if out.N != 3 {
		t.Fatalf("N = %d", out.N)
	}
	rel := out.ToRelation()
	// Row 1: left row 1 padded on the right; row 2: right row 0 padded
	// on the left.
	if !rel.Tuple(1)[2].IsNull() || !rel.Tuple(2)[0].IsNull() {
		t.Fatalf("padding missing: %v", rel.Tuples())
	}
	if rel.Tuple(0)[0].Int() != 1 || rel.Tuple(0)[2].Str() != "a" {
		t.Fatalf("inner row wrong: %v", rel.Tuple(0))
	}
}
