// Package batch is the columnar side of the executor: relations
// re-shaped as per-column typed slices with null bitmaps, plus the
// branch-light kernels (gather, key hashing, typed row equality) the
// vectorized operators are built from.
//
// A column is a Vec: one physical representation (PhysInt, PhysFloat,
// PhysStr, PhysBool when the column is monomorphic, PhysAny otherwise)
// plus a 1-bit-per-row null bitmap. NULLs never degrade a column to
// PhysAny — they live in the bitmap with a zero payload slot, so a 10%
// NULL integer column still runs the int64 kernels. A Rel is a schema
// plus one Vec per attribute, all of the same length.
//
// Operators communicate row subsets with selection vectors: []int32
// row indices into a Rel, in ascending order for filters (preserving
// input order) and arbitrary order for join match lists. Index -1 in a
// gather means "NULL-pad this row" and is how outer-join padding stays
// inside the columnar kernels.
//
// Hashing is delegated to the value package's exported per-kind
// helpers (value.HashInt64 etc.), so a columnar key hash is
// bit-identical to Tuple.HashOn on the same data — columnar and tuple
// hash joins agree bucket-for-bucket, and the collision-verification
// contract (hash equality must be confirmed with value.Equal) carries
// over unchanged.
package batch

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Phys is a column's physical representation.
type Phys uint8

// The physical column kinds. PhysAny is the escape hatch for columns
// that mix value kinds (other than NULL): rows are kept as boxed
// value.Value and the kernels fall back to generic code for that
// column only.
const (
	PhysAny Phys = iota
	PhysInt
	PhysFloat
	PhysStr
	PhysBool
)

// String returns the kind's short name.
func (p Phys) String() string {
	switch p {
	case PhysAny:
		return "any"
	case PhysInt:
		return "int"
	case PhysFloat:
		return "float"
	case PhysStr:
		return "str"
	case PhysBool:
		return "bool"
	default:
		return fmt.Sprintf("phys(%d)", uint8(p))
	}
}

// Vec is one column: a typed payload slice selected by Phys, plus an
// optional null bitmap (nil when the column has no NULLs). Payload
// slots of NULL rows hold the zero value and must not be interpreted.
type Vec struct {
	Phys   Phys
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Any    []value.Value
	Nulls  []uint64
}

// Len returns the column's row count.
func (v *Vec) Len() int {
	switch v.Phys {
	case PhysInt:
		return len(v.Ints)
	case PhysFloat:
		return len(v.Floats)
	case PhysStr:
		return len(v.Strs)
	case PhysBool:
		return len(v.Bools)
	default:
		return len(v.Any)
	}
}

// IsNull reports whether row i is NULL.
func (v *Vec) IsNull(i int) bool {
	return v.Nulls != nil && v.Nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// setNull marks row i NULL, growing the bitmap to cover n rows on
// first use.
func (v *Vec) setNull(i, n int) {
	if v.Nulls == nil {
		v.Nulls = make([]uint64, (n+63)>>6)
	}
	v.Nulls[i>>6] |= 1 << (uint(i) & 63)
}

// At boxes row i back into a value.Value. It allocates nothing (Value
// is a small struct); hot kernels still prefer the typed slices.
func (v *Vec) At(i int) value.Value {
	if v.IsNull(i) {
		return value.Null
	}
	switch v.Phys {
	case PhysInt:
		return value.NewInt(v.Ints[i])
	case PhysFloat:
		return value.NewFloat(v.Floats[i])
	case PhysStr:
		return value.NewString(v.Strs[i])
	case PhysBool:
		return value.NewBool(v.Bools[i])
	default:
		return v.Any[i]
	}
}

// Hash returns row i's value hash, identical to At(i).Hash64() (NULL
// hashes as value.HashNull, as grouping keys require).
func (v *Vec) Hash(i int) uint64 {
	if v.IsNull(i) {
		return value.HashNull()
	}
	switch v.Phys {
	case PhysInt:
		return value.HashInt64(v.Ints[i])
	case PhysFloat:
		return value.HashFloat64(v.Floats[i])
	case PhysStr:
		return value.HashStr(v.Strs[i])
	case PhysBool:
		return value.HashBoolean(v.Bools[i])
	default:
		return v.Any[i].Hash64()
	}
}

// HashInto folds each row's value hash into the running per-row key
// hashes hs (seeded with value.HashSeed by the caller), the columnar
// equivalent of one column's contribution to Tuple.HashOn. When
// nullMatches is false (join keys under null in-tolerant predicates) a
// NULL row clears ok[i] instead — its hash lane is left unusable, the
// row can never match. When nullMatches is true (grouping keys, where
// NULL is identical to NULL) NULL contributes value.HashNull and ok is
// untouched. The typed loops hoist the kind switch out of the per-row
// path; only PhysAny pays the per-row dispatch.
func (v *Vec) HashInto(hs []uint64, ok []bool, nullMatches bool) {
	n := len(hs)
	markNull := func(i int) {
		if nullMatches {
			hs[i] = value.HashCombine(hs[i], value.HashNull())
		} else {
			ok[i] = false
		}
	}
	switch v.Phys {
	case PhysInt:
		if v.Nulls == nil {
			for i := 0; i < n; i++ {
				hs[i] = value.HashCombine(hs[i], value.HashInt64(v.Ints[i]))
			}
			return
		}
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				markNull(i)
				continue
			}
			hs[i] = value.HashCombine(hs[i], value.HashInt64(v.Ints[i]))
		}
	case PhysFloat:
		if v.Nulls == nil {
			for i := 0; i < n; i++ {
				hs[i] = value.HashCombine(hs[i], value.HashFloat64(v.Floats[i]))
			}
			return
		}
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				markNull(i)
				continue
			}
			hs[i] = value.HashCombine(hs[i], value.HashFloat64(v.Floats[i]))
		}
	case PhysStr:
		if v.Nulls == nil {
			for i := 0; i < n; i++ {
				hs[i] = value.HashCombine(hs[i], value.HashStr(v.Strs[i]))
			}
			return
		}
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				markNull(i)
				continue
			}
			hs[i] = value.HashCombine(hs[i], value.HashStr(v.Strs[i]))
		}
	case PhysBool:
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				markNull(i)
				continue
			}
			hs[i] = value.HashCombine(hs[i], value.HashBoolean(v.Bools[i]))
		}
	default:
		for i := 0; i < n; i++ {
			if v.Any[i].IsNull() {
				markNull(i)
				continue
			}
			hs[i] = value.HashCombine(hs[i], v.Any[i].Hash64())
		}
	}
}

// EqualRows reports value.Equal between this column's row i and o's
// row j (NULL identical to NULL) — the collision-verification step
// after a hash bucket hit. Matching typed columns compare without
// boxing; mismatched or PhysAny columns go through value.Equal, which
// also handles the INT/FLOAT identity merge.
func (v *Vec) EqualRows(i int, o *Vec, j int) bool {
	ln, rn := v.IsNull(i), o.IsNull(j)
	if ln || rn {
		return ln && rn
	}
	if v.Phys == o.Phys {
		switch v.Phys {
		case PhysInt:
			return v.Ints[i] == o.Ints[j]
		case PhysFloat:
			return v.Floats[i] == o.Floats[j]
		case PhysStr:
			return v.Strs[i] == o.Strs[j]
		case PhysBool:
			return v.Bools[i] == o.Bools[j]
		}
	}
	return value.Equal(v.At(i), o.At(j))
}

// Gather returns a new column holding rows sel[0], sel[1], … of v.
// Index -1 emits a NULL row — the outer-join padding convention.
func (v *Vec) Gather(sel []int32) Vec {
	n := len(sel)
	out := Vec{Phys: v.Phys}
	fill := func(i int, s int32) bool {
		if s < 0 || v.IsNull(int(s)) {
			out.setNull(i, n)
			return false
		}
		return true
	}
	switch v.Phys {
	case PhysInt:
		out.Ints = make([]int64, n)
		for i, s := range sel {
			if fill(i, s) {
				out.Ints[i] = v.Ints[s]
			}
		}
	case PhysFloat:
		out.Floats = make([]float64, n)
		for i, s := range sel {
			if fill(i, s) {
				out.Floats[i] = v.Floats[s]
			}
		}
	case PhysStr:
		out.Strs = make([]string, n)
		for i, s := range sel {
			if fill(i, s) {
				out.Strs[i] = v.Strs[s]
			}
		}
	case PhysBool:
		out.Bools = make([]bool, n)
		for i, s := range sel {
			if fill(i, s) {
				out.Bools[i] = v.Bools[s]
			}
		}
	default:
		out.Any = make([]value.Value, n)
		for i, s := range sel {
			if fill(i, s) {
				out.Any[i] = v.Any[s]
			}
		}
	}
	return out
}

// Rel is a columnar relation: a schema and one equal-length Vec per
// attribute.
type Rel struct {
	Schema *schema.Schema
	Cols   []Vec
	N      int
}

// FromRelation re-shapes a row-major relation into columns. Each
// column's physical kind is sniffed from its non-NULL values: a
// monomorphic column gets its typed representation, a mixed-kind
// column (including INT mixed with FLOAT — kept boxed so the exact
// original values round-trip) degrades to PhysAny.
func FromRelation(r *relation.Relation) *Rel {
	n, w := r.Len(), r.Schema().Len()
	out := &Rel{Schema: r.Schema(), Cols: make([]Vec, w), N: n}
	phys := make([]Phys, w)
	sniffed := make([]bool, w)
	for _, t := range r.Tuples() {
		for c, v := range t {
			if v.IsNull() || (sniffed[c] && phys[c] == PhysAny) {
				continue
			}
			var p Phys
			switch v.Kind() {
			case value.KindInt:
				p = PhysInt
			case value.KindFloat:
				p = PhysFloat
			case value.KindString:
				p = PhysStr
			case value.KindBool:
				p = PhysBool
			}
			if !sniffed[c] {
				phys[c], sniffed[c] = p, true
			} else if phys[c] != p {
				phys[c] = PhysAny
			}
		}
	}
	for c := 0; c < w; c++ {
		col := &out.Cols[c]
		col.Phys = phys[c]
		switch phys[c] {
		case PhysInt:
			col.Ints = make([]int64, n)
		case PhysFloat:
			col.Floats = make([]float64, n)
		case PhysStr:
			col.Strs = make([]string, n)
		case PhysBool:
			col.Bools = make([]bool, n)
		default:
			col.Any = make([]value.Value, n)
		}
		for i, t := range r.Tuples() {
			v := t[c]
			if v.IsNull() {
				col.setNull(i, n)
				continue
			}
			switch phys[c] {
			case PhysInt:
				col.Ints[i] = v.Int()
			case PhysFloat:
				col.Floats[i] = v.Float()
			case PhysStr:
				col.Strs[i] = v.Str()
			case PhysBool:
				col.Bools[i] = v.Bool()
			default:
				col.Any[i] = v
			}
		}
	}
	return out
}

// ToRelation boxes the columns back into a row-major relation. Tuples
// are carved from one flat arena allocation (n×width values) rather
// than allocated per row.
func (r *Rel) ToRelation() *relation.Relation {
	out := relation.New(r.Schema)
	w := r.Schema.Len()
	if r.N == 0 || w == 0 {
		for i := 0; i < r.N; i++ {
			out.Append(relation.Tuple{})
		}
		return out
	}
	arena := make([]value.Value, r.N*w)
	for c := range r.Cols {
		col := &r.Cols[c]
		for i := 0; i < r.N; i++ {
			arena[i*w+c] = col.At(i)
		}
	}
	tuples := make([]relation.Tuple, r.N)
	for i := 0; i < r.N; i++ {
		tuples[i] = relation.Tuple(arena[i*w : (i+1)*w : (i+1)*w])
	}
	out.AppendAll(tuples)
	return out
}

// Tuple boxes row i into a freshly allocated tuple.
func (r *Rel) Tuple(i int) relation.Tuple {
	t := make(relation.Tuple, len(r.Cols))
	for c := range r.Cols {
		t[c] = r.Cols[c].At(i)
	}
	return t
}

// ReadTuple fills dst (of schema width) with row i without allocating.
func (r *Rel) ReadTuple(i int, dst relation.Tuple) {
	for c := range r.Cols {
		dst[c] = r.Cols[c].At(i)
	}
}

// Select materializes the rows named by a selection vector into a new
// columnar relation (sel must not contain -1; use Gather2 for padded
// join output).
func (r *Rel) Select(sel []int32) *Rel {
	out := &Rel{Schema: r.Schema, Cols: make([]Vec, len(r.Cols)), N: len(sel)}
	for c := range r.Cols {
		out.Cols[c] = r.Cols[c].Gather(sel)
	}
	return out
}

// KeyHashes computes per-row key hashes over the columns at idx,
// matching Tuple.HashOn bit-for-bit. With nullMatches=false (join
// keys) a row with any NULL key column gets ok[i]=false and must not
// be probed or inserted; with nullMatches=true (grouping keys) NULL
// participates via value.HashNull and every row is ok.
func (r *Rel) KeyHashes(idx []int, nullMatches bool) (hs []uint64, ok []bool) {
	hs = make([]uint64, r.N)
	for i := range hs {
		hs[i] = value.HashSeed
	}
	ok = make([]bool, r.N)
	for i := range ok {
		ok[i] = true
	}
	for _, c := range idx {
		r.Cols[c].HashInto(hs, ok, nullMatches)
	}
	return hs, ok
}

// EqualOn reports pointwise value.Equal between this relation's row i
// at columns idx and o's row j at columns oidx — the columnar
// Tuple.EqualOn, used to verify key-hash bucket hits.
func (r *Rel) EqualOn(i int, o *Rel, j int, idx, oidx []int) bool {
	for k, c := range idx {
		if !r.Cols[c].EqualRows(i, &o.Cols[oidx[k]], j) {
			return false
		}
	}
	return true
}

// Gather2 builds a joined columnar relation over schema s (left's
// columns then right's): row k is left row lsel[k] concatenated with
// right row rsel[k], with -1 NULL-padding either side — inner matches
// and outer-join padding come out of the same kernel.
func Gather2(s *schema.Schema, l *Rel, lsel []int32, rt *Rel, rsel []int32) *Rel {
	if len(lsel) != len(rsel) {
		panic("batch: Gather2 selection vectors disagree")
	}
	out := &Rel{Schema: s, Cols: make([]Vec, 0, len(l.Cols)+len(rt.Cols)), N: len(lsel)}
	for c := range l.Cols {
		out.Cols = append(out.Cols, l.Cols[c].Gather(lsel))
	}
	for c := range rt.Cols {
		out.Cols = append(out.Cols, rt.Cols[c].Gather(rsel))
	}
	return out
}
