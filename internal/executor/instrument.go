package executor

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
)

// RunInstrumented executes the plan like Run while collecting
// per-operator statistics: output cardinality and inclusive wall
// time for every node, plus hash-build sizes, residual-predicate
// evaluations, null-padding counts and nested-loop fallbacks for the
// binary operators. The figures land in two places — the returned
// plan.Annotations (keyed by node, for EXPLAIN ANALYZE rendering and
// the JSON export) and reg's aggregate counters/histograms (nil means
// obs.Default()).
func RunInstrumented(n plan.Node, db plan.Database, reg *obs.Registry) (*relation.Relation, plan.Annotations, error) {
	return RunInstrumentedGuarded(n, db, reg, nil)
}

// RunInstrumentedGuarded is RunInstrumented under resource
// governance, with RunGuarded's budget and panic-containment
// contract; EXPLAIN ANALYZE uses it so -timeout and row/byte caps
// also bound instrumented executions.
func RunInstrumentedGuarded(n plan.Node, db plan.Database, reg *obs.Registry, b *guard.Budget) (out *relation.Relation, ann plan.Annotations, err error) {
	if reg == nil {
		reg = obs.Default()
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), reg)
	ann = plan.Annotations{}
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		out, err = runInstrumented(n, db, reg, ann, b, nil)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, ann, nil
}

func runInstrumented(n plan.Node, db plan.Database, reg *obs.Registry, ann plan.Annotations, b *guard.Budget, ad *Adapt) (*relation.Relation, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	a := ann.For(n)
	var out *relation.Relation
	var err error
	switch m := n.(type) {
	case *plan.Scan:
		out, err = m.Eval(db)
	case *materialized:
		out = m.rel
	case *plan.Select:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			out = algebra.Select(m.Pred, in)
		}
	case *plan.Project:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			out = in.Project(m.Attrs, m.Distinct)
		}
	case *plan.GroupBy:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			out = algebra.GroupProject(m.Keys, m.Aggs, in)
		}
	case *plan.Sort:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			out, err = plan.SortRows(in, m.Keys, m.Limit)
		}
	case *plan.GenSel:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			specs := make([]map[string]bool, len(m.Preserved))
			for i, s := range m.Preserved {
				specs[i] = s.Set()
			}
			out, err = algebra.GenSelect(m.Pred, specs, in)
		}
	case *plan.Join:
		var l, r *relation.Relation
		if l, err = runInstrumented(m.L, db, reg, ann, b, ad); err != nil {
			break
		}
		if r, err = runInstrumented(m.R, db, reg, ann, b, ad); err != nil {
			break
		}
		st := &joinProbe{}
		out, err = joinExecProbe(m.Kind, m.Pred, l, r, st, b, ad)
		recordJoinProbe(a, st, reg)
	case *plan.MGOJNode:
		var l, r *relation.Relation
		if l, err = runInstrumented(m.L, db, reg, ann, b, ad); err != nil {
			break
		}
		if r, err = runInstrumented(m.R, db, reg, ann, b, ad); err != nil {
			break
		}
		st := &joinProbe{}
		out, err = mgojExecProbe(m, l, r, st, b)
		recordJoinProbe(a, st, reg)
	case *plan.MergeJoin:
		var l, r *relation.Relation
		if l, err = runInstrumented(m.L, db, reg, ann, b, ad); err != nil {
			break
		}
		if r, err = runInstrumented(m.R, db, reg, ann, b, ad); err != nil {
			break
		}
		st := &joinProbe{}
		out, err = mergeJoinProbe(m, l, r, st, b)
		recordJoinProbe(a, st, reg)
	case *plan.StreamAgg:
		var in *relation.Relation
		if in, err = runInstrumented(m.Input, db, reg, ann, b, ad); err == nil {
			out, err = streamAggProbe(m, in, b)
		}
	default:
		err = fmt.Errorf("executor: unsupported node %T", n)
	}
	if err != nil {
		return nil, err
	}
	if err := guard.Hit(guard.PointExecOperator); err != nil {
		return nil, err
	}
	switch n.(type) {
	case *plan.Scan, *materialized, *plan.Join, *plan.MGOJNode, *plan.MergeJoin, *plan.StreamAgg:
		// Same charging rule as run: base inputs are free, joins and
		// the order-consuming operators have charged per batch.
	default:
		if err := b.ChargeOut(out.Len(), out.Schema().Len()); err != nil {
			return nil, err
		}
	}
	a.Rows = out.Len()
	a.Elapsed = time.Since(start)
	op := OpName(n)
	reg.Counter("executor.ops").Inc()
	reg.Counter("executor.op." + op).Inc()
	reg.Counter("executor.rows_out").Add(int64(out.Len()))
	reg.Histogram("executor.op_ns").ObserveDuration(a.Elapsed)
	reg.Histogram("executor.rows_out." + op).Observe(int64(out.Len()))
	return out, nil
}

// recordJoinProbe copies one join's physical counters into the node
// annotation and the aggregate registry.
func recordJoinProbe(a *plan.Annotation, st *joinProbe, reg *obs.Registry) {
	a.AddExtra("hash_build_rows", int64(st.BuildRows))
	a.AddExtra("residual_evals", int64(st.ResidualEvals))
	a.AddExtra("null_padded", int64(st.NullPadded))
	if st.Collisions > 0 {
		a.AddExtra("hash_collisions", int64(st.Collisions))
	}
	if st.Partitions > 0 {
		a.AddExtra("hash_partitions", int64(st.Partitions))
	}
	if st.ArenaChunks > 0 {
		a.AddExtra("arena_chunks", int64(st.ArenaChunks))
	}
	if st.NestedLoop {
		a.AddExtra("nested_loop", 1)
	}
	if st.SpillParts > 0 {
		a.AddExtra("spill_partitions", int64(st.SpillParts))
		a.AddExtra("spill_bytes", st.SpillBytes)
	}
	if st.SpillRecursions > 0 {
		a.AddExtra("spill_recursions", int64(st.SpillRecursions))
	}
	if st.BuildSwapped {
		a.AddExtra("build_swapped", 1)
	}
	if st.SpillEscalated {
		a.AddExtra("spill_escalated", 1)
	}
	reg.Counter("executor.hash_build_rows").Add(int64(st.BuildRows))
	reg.Counter("executor.residual_evals").Add(int64(st.ResidualEvals))
	reg.Counter("executor.null_padded").Add(int64(st.NullPadded))
	reg.Counter("executor.hash_collisions").Add(int64(st.Collisions))
}

// OpName returns the stable metric label of a plan operator — the
// label the per-operator counters, the q-error histograms and the
// flight recorder's OpStat rows all key by.
func OpName(n plan.Node) string {
	switch m := n.(type) {
	case *plan.Scan:
		return "scan"
	case *materialized:
		return "materialized"
	case *plan.Select:
		return "select"
	case *plan.Project:
		return "project"
	case *plan.GroupBy:
		return "groupby"
	case *plan.Sort:
		return "sort"
	case *plan.GenSel:
		return "gensel"
	case *plan.Join:
		return "join." + m.Kind.String()
	case *plan.MGOJNode:
		return "mgoj"
	case *plan.MergeJoin:
		return "mergejoin." + m.Kind.String()
	case *plan.StreamAgg:
		return "streamagg"
	default:
		return fmt.Sprintf("%T", n)
	}
}
