package executor

import (
	"repro/internal/batch"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/plan"
	"repro/internal/relation"
)

// vecJoin is the columnar hash join: build an array-chained hash
// table over the right side's precomputed key hashes, probe the left
// side batch-at-a-time accumulating (left,right) row-index pairs, and
// gather the output columns in one pass — NULL padding for outer
// kinds is index -1 in the same gather. Non-equi predicates cannot be
// hashed and fall back to the tuple engine's nested loop; a build
// side that cannot fit the byte budget's headroom routes through the
// spilling grace join. Both escapes are counted.
func (e *vecEngine) vecJoin(kind plan.JoinKind, pred expr.Pred, l, r *batch.Rel, st *joinProbe) (*batch.Rel, error) {
	ls, rs := l.Schema, r.Schema
	keys, residual := splitEqui(pred, ls, rs)
	if len(keys) == 0 {
		e.reg.Counter("exec.vector.fallback.join-nonequi").Inc()
		out, err := joinExecProbe(kind, pred, l.ToRelation(), r.ToRelation(), st, e.b, e.adapt)
		if err != nil {
			return nil, err
		}
		return batch.FromRelation(out), nil
	}
	// An adaptive build/probe swap has no columnar kernel: delegate
	// the whole join to the adaptive row join, which fires the guard
	// point and the exec.adapt.* counter itself.
	if e.adapt.swapWanted(l.N, r.N) {
		e.reg.Counter("exec.vector.fallback.join-adapt").Inc()
		out, err := joinExecProbe(kind, pred, l.ToRelation(), r.ToRelation(), st, e.b, e.adapt)
		if err != nil {
			return nil, err
		}
		return batch.FromRelation(out), nil
	}
	if free, limited := e.b.BytesFree(); limited {
		if need := estBytes(r.N, rs.Len()); 2*need > free {
			e.reg.Counter("exec.vector.spill").Inc()
			opts := SpillOptions{}
			if e.adapt != nil {
				opts.Dir = e.adapt.SpillDir
			}
			out, err := spillJoinProbe(kind, pred, l.ToRelation(), r.ToRelation(), st, e.b, e.reg, opts)
			if err != nil {
				return nil, err
			}
			return batch.FromRelation(out), nil
		}
	}
	li := make([]int, len(keys))
	ri := make([]int, len(keys))
	for i, k := range keys {
		li[i], ri[i] = k.li, k.ri
	}
	buildRes := estBytes(r.N, rs.Len())
	if err := e.b.ReserveBytes(buildRes); err != nil {
		return nil, err
	}
	defer e.b.ReleaseBytes(buildRes)

	// Build: chain right rows with equal hash slots through two flat
	// int32 arrays — head per slot, next per row — instead of a
	// map[uint64][]int. Insertion prepends, so rows are inserted in
	// reverse and each chain iterates in ascending row order: per probe
	// row, matches emerge in the same order the tuple engine's
	// insertion-ordered buckets produce them, which keeps float
	// aggregates over join output accumulating in the same order
	// (bit-identical sums) on both engines.
	rh, rok := r.KeyHashes(ri, false)
	lh, lok := l.KeyHashes(li, false)
	P := nextPow2(2*r.N + 2)
	mask := uint64(P - 1)
	head := make([]int32, P)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, r.N)
	buildRows := 0
	for j := r.N - 1; j >= 0; j-- {
		if !rok[j] {
			continue
		}
		s := rh[j] & mask
		next[j] = head[s]
		head[s] = int32(j)
		buildRows++
	}
	if st != nil {
		st.BuildRows += buildRows
	}

	nl, nr := ls.Len(), rs.Len()
	outSchema := ls.Concat(rs)
	_, residualTrue := residual.(expr.True)
	var env expr.TupleEnv
	var scratch relation.Tuple
	if !residualTrue {
		env = expr.TupleEnv{Schema: outSchema}
		scratch = make(relation.Tuple, nl+nr)
	}
	leftOuter := kind == plan.LeftJoin || kind == plan.FullJoin
	rightOuter := kind == plan.RightJoin || kind == plan.FullJoin
	var rightMatched []bool
	if rightOuter {
		rightMatched = make([]bool, r.N)
	}

	// Probe batch-at-a-time: guard checks, fault points and
	// incremental output charges once per batch, like the tuple
	// engine's per-batch protocol.
	lsel := make([]int32, 0, l.N)
	rsel := make([]int32, 0, l.N)
	collisions, residualEvals, padded := 0, 0, 0
	charged := 0
	for lo := 0; lo < l.N; lo += e.batch {
		if err := guard.Hit(guard.PointExecBatch); err != nil {
			return nil, err
		}
		if err := e.b.Err(); err != nil {
			return nil, err
		}
		if err := e.b.ChargeOut(len(lsel)-charged, nl+nr); err != nil {
			return nil, err
		}
		charged = len(lsel)
		hi := min(lo+e.batch, l.N)
		for i := lo; i < hi; i++ {
			matched := false
			if lok[i] {
				h := lh[i]
				for j := head[h&mask]; j >= 0; j = next[j] {
					if rh[j] != h {
						continue // slot shared by a different hash
					}
					if !l.EqualOn(i, r, int(j), li, ri) {
						collisions++
						continue
					}
					if !residualTrue {
						l.ReadTuple(i, scratch[:nl])
						r.ReadTuple(int(j), scratch[nl:])
						env.Tuple = scratch
						residualEvals++
						if !residual.Eval(env).Holds() {
							continue
						}
					}
					matched = true
					if rightOuter {
						rightMatched[j] = true
					}
					lsel = append(lsel, int32(i))
					rsel = append(rsel, j)
				}
			}
			if !matched && leftOuter {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, -1)
				padded++
			}
		}
	}
	if rightOuter {
		for j := 0; j < r.N; j++ {
			if rightMatched[j] {
				continue
			}
			lsel = append(lsel, -1)
			rsel = append(rsel, int32(j))
			padded++
		}
	}
	if st != nil {
		st.Collisions += collisions
		st.ResidualEvals += residualEvals
		st.NullPadded += padded
	}
	if collisions > 0 {
		e.reg.Counter("exec.hash.collisions").Add(int64(collisions))
	}
	e.reg.Counter("exec.vector.join.batches").Add(int64((l.N + e.batch - 1) / e.batch))
	if err := e.b.ChargeOut(len(lsel)-charged, nl+nr); err != nil {
		return nil, err
	}
	return batch.Gather2(outSchema, l, lsel, r, rsel), nil
}
