package executor

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func randDB(rng *rand.Rand, maxRows, domain int, rels ...string) plan.Database {
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		b := relation.NewBuilder(name, "x", "y")
		n := rng.Intn(maxRows + 1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 2)
			for j := range vals {
				if rng.Intn(8) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(domain)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	return db
}

func eqX(a, b string) expr.Pred { return expr.EqCols(a, "x", b, "x") }
func eqY(a, b string) expr.Pred { return expr.EqCols(a, "y", b, "y") }

// TestRunMatchesReference cross-checks the physical executor against
// the reference semantics on randomized plans and databases: every
// join kind, equi and non-equi predicates, generalized selections,
// MGOJ and aggregation.
func TestRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	plans := []plan.Node{
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt("r1", "r2")),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqY("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, lt("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewGenSel(eqY("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1", "r2")},
			plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"),
				plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
		plan.NewMGOJ(eqX("r2", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewGroupBy(
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "c")}},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewSelect(lt("r1", "r2"),
			plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "y")}, true,
			plan.NewScan("r1")),
	}
	for pi, p := range plans {
		for trial := 0; trial < 25; trial++ {
			db := randDB(rng, 7, 3, "r1", "r2", "r3")
			want, err := p.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(p, db)
			if err != nil {
				t.Fatalf("plan %d: %v", pi, err)
			}
			if !got.EqualAsSets(want) {
				t.Fatalf("plan %d trial %d: executor differs from reference\nplan: %s\ngot:\n%s\nwant:\n%s",
					pi, trial, p, got.Format(true), want.Format(true))
			}
		}
	}
}

// TestRunSaturatedPlansAgree executes every plan of a saturated
// equivalence class with the physical executor and checks they all
// produce the query's result — the end-to-end soundness path the
// benchmarks rely on.
func TestRunSaturatedPlansAgree(t *testing.T) {
	q := plan.NewJoin(plan.LeftJoin, expr.And(eqY("r1", "r3"), eqX("r2", "r3")),
		plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	plans := core.Saturate(q, core.SaturateOptions{MaxPlans: 200})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		db := randDB(rng, 6, 3, "r1", "r2", "r3")
		want, err := Run(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			got, err := Run(p, db)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if !got.EqualAsSets(want) {
				t.Fatalf("trial %d: plan %s disagrees", trial, p)
			}
		}
	}
}

// TestHashJoinNullKeys pins that NULL join keys never match but
// preserved sides still pad.
func TestHashJoinNullKeys(t *testing.T) {
	l := relation.NewBuilder("l", "x").Row(value.Null).Row(value.NewInt(1)).Relation()
	r := relation.NewBuilder("r", "x").Row(value.Null).Row(value.NewInt(1)).Relation()
	out, err := JoinExec(plan.FullJoin, expr.EqCols("l", "x", "r", "x"), l, r)
	if err != nil {
		t.Fatal(err)
	}
	// 1=1 matches; both NULL rows pad on their own side: 3 rows.
	if out.Len() != 3 {
		t.Fatalf("got %d rows, want 3:\n%s", out.Len(), out.Format(true))
	}
}

// TestHashJoinScale is a coarse guard against accidentally quadratic
// equi-joins: 20k x 20k rows must join quickly.
func TestHashJoinScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := 20000
	b1 := relation.NewBuilder("l", "x")
	b2 := relation.NewBuilder("r", "x")
	for i := 0; i < n; i++ {
		b1.Row(value.NewInt(int64(i)))
		b2.Row(value.NewInt(int64(i)))
	}
	out, err := JoinExec(plan.InnerJoin, expr.EqCols("l", "x", "r", "x"), b1.Relation(), b2.Relation())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("got %d rows, want %d", out.Len(), n)
	}
}

// TestRunParallelMatches cross-checks the goroutine-partitioned
// executor against Run across operator kinds and the race detector.
func TestRunParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	plans := []plan.Node{
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt("r1", "r2")),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewSelect(lt("r1", "r1"),
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewGenSel(eqY("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1", "r2")},
			plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"),
				plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
	}
	for pi, p := range plans {
		for trial := 0; trial < 10; trial++ {
			db := randDB(rng, 40, 5, "r1", "r2", "r3")
			want, err := Run(p, db)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 0} {
				got, err := RunParallel(p, db, workers)
				if err != nil {
					t.Fatalf("plan %d workers %d: %v", pi, workers, err)
				}
				if !got.EqualAsMultisets(want) {
					t.Fatalf("plan %d workers %d trial %d: parallel differs", pi, workers, trial)
				}
			}
		}
	}
}
