package executor

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// skewDB builds a database where r2 (the planned build side) is much
// larger than r1 — the shape that trips the build/probe swap.
func skewDB(rng *rand.Rand, small, large, domain int) plan.Database {
	db := make(plan.Database, 2)
	for name, rows := range map[string]int{"r1": small, "r2": large} {
		b := relation.NewBuilder(name, "x", "y")
		for i := 0; i < rows; i++ {
			x := value.Value(value.NewInt(int64(rng.Intn(domain))))
			if rng.Intn(20) == 0 {
				x = value.Null
			}
			b.Row(x, value.NewInt(int64(rng.Intn(domain))))
		}
		db[name] = b.Relation()
	}
	return db
}

// adaptPlans covers every join kind plus a residual conjunct, all with
// the oversized relation on the build (right) side.
func adaptPlans() []plan.Node {
	lt := expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Column("r2", "y")}
	return []plan.Node{
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
	}
}

// TestAdaptSwapMatchesStatic is the correctness pin of the build/probe
// swap: with SwapFactor forcing a swap, every engine — serial,
// parallel at 1/2/4 workers, vectorized, instrumented — produces the
// same multiset the static plan does, for every join kind.
func TestAdaptSwapMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := skewDB(rng, 40, 4000, 50)
	a := &Adapt{SwapFactor: 4}
	for pi, p := range adaptPlans() {
		want, err := Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		base := obs.Default().Snapshot().Counters["exec.adapt.swaps"]
		got, err := RunAdaptive(p, db, nil, a)
		if err != nil {
			t.Fatalf("plan %d: %v", pi, err)
		}
		if !got.EqualAsMultisets(want) {
			t.Fatalf("plan %d: adaptive serial != static", pi)
		}
		if swaps := obs.Default().Snapshot().Counters["exec.adapt.swaps"]; swaps <= base {
			t.Fatalf("plan %d: swap did not fire (counter %d -> %d)", pi, base, swaps)
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := RunParallelAdaptive(p, db, workers, nil, a)
			if err != nil {
				t.Fatalf("plan %d workers %d: %v", pi, workers, err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("plan %d workers %d: adaptive parallel != static", pi, workers)
			}
		}
		got, err = RunVectorizedAdaptive(p, db, nil, a)
		if err != nil {
			t.Fatalf("plan %d vectorized: %v", pi, err)
		}
		if !got.EqualAsMultisets(want) {
			t.Fatalf("plan %d: adaptive vectorized != static", pi)
		}
		reg := obs.NewRegistry()
		got, ann, err := RunInstrumentedAdaptive(p, db, reg, nil, a)
		if err != nil {
			t.Fatalf("plan %d instrumented: %v", pi, err)
		}
		if !got.EqualAsMultisets(want) {
			t.Fatalf("plan %d: adaptive instrumented != static", pi)
		}
		// The transition must be visible in the join's annotation.
		swapped := false
		plan.Walk(p, func(n plan.Node) {
			if a := ann[n]; a != nil && a.Extra["build_swapped"] > 0 {
				swapped = true
			}
		})
		if !swapped {
			t.Fatalf("plan %d: build_swapped extra missing from annotations", pi)
		}
	}
}

// TestAdaptSwapOffIdentical: a nil Adapt (and a zero SwapFactor) is
// the static engine — bit-identical output rows in identical order.
func TestAdaptSwapOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := skewDB(rng, 40, 4000, 50)
	for pi, p := range adaptPlans() {
		want, err := Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunAdaptive(p, db, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("plan %d: nil adapt changed output", pi)
		}
		got, err = RunAdaptive(p, db, nil, &Adapt{})
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("plan %d: zero adapt changed output", pi)
		}
	}
}

// TestAdaptSpillEscalation: under a byte budget the static hash join
// cannot fit, the adaptive join escalates to the grace/spill join and
// completes with the right multiset instead of dying on the trip.
func TestAdaptSpillEscalation(t *testing.T) {
	// Wide key domain: the join output stays small enough to charge
	// under the budget, while the build side's resident footprint
	// (estBytes(3000, 2) = 192 KB) cannot fit the 120 KB limit.
	rng := rand.New(rand.NewSource(99))
	db := skewDB(rng, 3000, 3000, 20000)
	p := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	limits := guard.Limits{MaxBytes: 120_000}

	// Static plan under the same budget: the build reservation trips.
	if _, err := RunGuarded(p, db, guard.New(context.Background(), limits, nil)); !guard.IsBudget(err) {
		t.Fatalf("static join under tight budget = %v, want budget trip", err)
	}

	a := &Adapt{Spill: true, SpillDir: t.TempDir()}
	base := obs.Default().Snapshot().Counters["exec.adapt.spill_escalations"]
	got, err := RunAdaptive(p, db, guard.New(context.Background(), limits, nil), a)
	if err != nil {
		t.Fatalf("adaptive join under tight budget: %v", err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("escalated join != static multiset")
	}
	if n := obs.Default().Snapshot().Counters["exec.adapt.spill_escalations"]; n <= base {
		t.Fatalf("spill escalation did not fire (counter %d -> %d)", base, n)
	}
}

// TestAdaptFaultBuildSwap: the executor.buildswap guard point fires on
// every taken adaptive transition; armed to error or panic it aborts
// the run with the matching typed error on every engine.
func TestAdaptFaultBuildSwap(t *testing.T) {
	defer guard.Clear()
	rng := rand.New(rand.NewSource(5))
	db := skewDB(rng, 40, 4000, 50)
	p := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	a := &Adapt{SwapFactor: 4}
	engines := map[string]func() (*relation.Relation, error){
		"serial": func() (*relation.Relation, error) { return RunAdaptive(p, db, nil, a) },
		"parallel": func() (*relation.Relation, error) {
			return RunParallelAdaptive(p, db, 4, nil, a)
		},
		"vectorized": func() (*relation.Relation, error) { return RunVectorizedAdaptive(p, db, nil, a) },
		"instrumented": func() (*relation.Relation, error) {
			out, _, err := RunInstrumentedAdaptive(p, db, obs.NewRegistry(), nil, a)
			return out, err
		},
	}
	for name, run := range engines {
		t.Run(name+"/error", func(t *testing.T) {
			guard.InjectError(guard.PointExecBuildSwap)
			defer guard.Clear()
			if _, err := run(); !guard.IsInjected(err) {
				t.Fatalf("err = %v, want injected", err)
			}
		})
		t.Run(name+"/panic", func(t *testing.T) {
			guard.InjectPanic(guard.PointExecBuildSwap)
			defer guard.Clear()
			if _, err := run(); !guard.IsPanic(err) {
				t.Fatalf("err = %v, want contained panic", err)
			}
		})
	}
}

// TestAdaptSwapBelowThreshold: sides within the factor leave the join
// untouched — no counter movement, no transition.
func TestAdaptSwapBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := skewDB(rng, 1000, 1200, 50)
	p := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	base := obs.Default().Snapshot().Counters["exec.adapt.swaps"]
	got, err := RunAdaptive(p, db, nil, &Adapt{SwapFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("below-threshold adaptive run changed output")
	}
	if n := obs.Default().Snapshot().Counters["exec.adapt.swaps"]; n != base {
		t.Fatalf("swap fired below threshold (counter %d -> %d)", base, n)
	}
}
