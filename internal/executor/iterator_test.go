package executor

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestStreamingMatchesMaterializing cross-checks the Volcano iterator
// tree against the materializing executor (itself cross-checked
// against the reference semantics) on every operator kind.
func TestStreamingMatchesMaterializing(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	plans := []plan.Node{
		plan.NewScan("r1"),
		plan.NewSelect(lt("r1", "r1"), plan.NewScan("r1")),
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x")}, true, plan.NewScan("r1")),
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt("r1", "r2")),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqY("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, lt("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewGenSel(eqY("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1", "r2")},
			plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"),
				plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
		plan.NewMGOJ(eqX("r2", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewGroupBy(
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "c")}},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
	}
	for pi, p := range plans {
		for trial := 0; trial < 20; trial++ {
			db := randDB(rng, 7, 3, "r1", "r2", "r3")
			want, err := Run(p, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunStreaming(p, db)
			if err != nil {
				t.Fatalf("plan %d: %v", pi, err)
			}
			if !got.EqualAsSets(want) {
				t.Fatalf("plan %d trial %d: streaming differs\nplan: %s\ngot:\n%s\nwant:\n%s",
					pi, trial, p, got.Format(true), want.Format(true))
			}
		}
	}
}

// TestStreamingSaturatedClass runs a saturated equivalence class
// through the iterator executor.
func TestStreamingSaturatedClass(t *testing.T) {
	q := plan.NewJoin(plan.LeftJoin, expr.And(eqY("r1", "r3"), eqX("r2", "r3")),
		plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	plans := core.Saturate(q, core.SaturateOptions{MaxPlans: 100})
	rng := rand.New(rand.NewSource(72))
	db := randDB(rng, 6, 3, "r1", "r2", "r3")
	want, err := RunStreaming(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		got, err := RunStreaming(p, db)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !got.EqualAsSets(want) {
			t.Fatalf("plan disagrees: %s", p)
		}
	}
}

// TestIteratorProtocol exercises Open/Next/Close directly: a second
// Open must rewind the scan.
func TestIteratorProtocol(t *testing.T) {
	r := relation.NewBuilder("r", "a").
		Row(value.NewInt(1)).Row(value.NewInt(2)).Relation()
	db := plan.Database{"r": r}
	it, err := Compile(plan.NewScan("r"), db)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() int {
		if err := it.Open(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if drain() != 2 || drain() != 2 {
		t.Error("re-Open must rewind")
	}
}

// TestStreamingEarlyStop pins the streaming property: pulling only
// one row from a selective join must not error and must return a
// valid tuple.
func TestStreamingEarlyStop(t *testing.T) {
	mk := func(name string, n int) *relation.Relation {
		b := relation.NewBuilder(name, "x")
		for i := 0; i < n; i++ {
			b.Row(value.NewInt(int64(i)))
		}
		return b.Relation()
	}
	db := plan.Database{"l": mk("l", 1000), "r": mk("r", 1000)}
	q := plan.NewJoin(plan.InnerJoin, expr.EqCols("l", "x", "r", "x"),
		plan.NewScan("l"), plan.NewScan("r"))
	it, err := Compile(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	tup, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("expected a first row: %v %v", ok, err)
	}
	if len(tup) != it.Schema().Len() {
		t.Error("tuple arity mismatch")
	}
}
