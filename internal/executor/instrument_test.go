package executor

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/value"
)

// TestInstrumentedSupplierRowCounts runs the Example 1.1 supplier
// query instrumented and checks every operator's measured cardinality
// against ground truth: scans must report exactly the base relation
// sizes, unary operators can only shrink or keep their input, and the
// instrumented result must equal the plain Run result.
func TestInstrumentedSupplierRowCounts(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	reg := obs.NewRegistry()
	got, ann, err := RunInstrumented(q, db, reg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSets(want) {
		t.Fatal("instrumented result differs from Run")
	}

	scans := 0
	plan.Walk(q, func(n plan.Node) {
		a := ann[n]
		if a == nil {
			t.Errorf("node %s has no annotation", n)
			return
		}
		if s, ok := n.(*plan.Scan); ok {
			scans++
			if a.Rows != db[s.Rel].Len() {
				t.Errorf("scan %s reported %d rows, relation has %d", s.Rel, a.Rows, db[s.Rel].Len())
			}
		}
		if sel, ok := n.(*plan.Select); ok {
			if in := ann[sel.Input]; in != nil && a.Rows > in.Rows {
				t.Errorf("select emitted %d rows from %d inputs", a.Rows, in.Rows)
			}
		}
	})
	if scans != 3 {
		t.Fatalf("walked %d scans, supplier query has 3", scans)
	}

	// The top node's annotation is the query result cardinality.
	if a := ann[q]; a.Rows != want.Len() {
		t.Errorf("root annotation %d rows, result has %d", a.Rows, want.Len())
	}

	// The outer join hashes its equi conjuncts: the build side is V3's
	// grouped output, and padding occurred iff the result exceeds the
	// matched rows.
	join := q.(*plan.Join)
	ja := ann[join]
	v3Rows := ann[join.R].Rows
	if ja.Extra["hash_build_rows"] != int64(v3Rows) {
		t.Errorf("hash_build_rows = %d, want build side rows %d", ja.Extra["hash_build_rows"], v3Rows)
	}
	if ja.Extra["nested_loop"] != 0 {
		t.Error("equi outer join took the nested-loop fallback")
	}
	if ja.Extra["residual_evals"] == 0 {
		t.Error("join with a residual (qty < 2*aggqty95) recorded no residual evaluations")
	}

	// Aggregate registry figures match the annotations.
	snap := reg.Snapshot()
	if snap.Counters["executor.ops"] != int64(plan.CountNodes(q)) {
		t.Errorf("executor.ops = %d, want %d", snap.Counters["executor.ops"], plan.CountNodes(q))
	}
	if snap.Counters["executor.rows_out"] != ann.TotalRows() {
		t.Errorf("executor.rows_out = %d, want %d", snap.Counters["executor.rows_out"], ann.TotalRows())
	}
	if snap.Counters["executor.op.scan"] != 3 {
		t.Errorf("executor.op.scan = %d, want 3", snap.Counters["executor.op.scan"])
	}
}

// TestNestedLoopFallbackLogged: a join whose predicate has no
// hashable equi conjunct must record, in the default registry, which
// predicate forced the fallback — through the plain Run path, not
// just the instrumented one.
func TestNestedLoopFallbackLogged(t *testing.T) {
	obs.Default().Reset()
	defer obs.Default().Reset()
	db := randDB(rand.New(rand.NewSource(1)), 5, 3, "r1", "r2")
	pred := expr.Cmp{Op: value.LT, L: expr.Column("r1", "x"), R: expr.Column("r2", "x")}
	q := plan.NewJoin(plan.InnerJoin, pred, plan.NewScan("r1"), plan.NewScan("r2"))
	if _, err := Run(q, db); err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["executor.nested_loop_fallback"] != 1 {
		t.Fatalf("fallback counter = %d, want 1; counters: %v", snap.Counters["executor.nested_loop_fallback"], snap.Counters)
	}
	labeled := "executor.nested_loop_fallback[" + pred.String() + "]"
	if snap.Counters[labeled] != 1 {
		keys := make([]string, 0, len(snap.Counters))
		for k := range snap.Counters {
			keys = append(keys, k)
		}
		t.Fatalf("missing per-predicate fallback counter %q; have %s", labeled, strings.Join(keys, ", "))
	}
}

// TestInstrumentedNullPadding checks the outer-join padding counter
// on a database where padding provably happens.
func TestInstrumentedNullPadding(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	_, ann, err := RunInstrumented(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	join := q.(*plan.Join)
	ja := ann[join]
	matched := ja.Rows - int(ja.Extra["null_padded"])
	if matched < 0 {
		t.Errorf("null_padded %d exceeds output %d", ja.Extra["null_padded"], ja.Rows)
	}
	// LOJ output = matched + padded, and every left tuple appears.
	left := ann[join.L].Rows
	if ja.Rows < left {
		t.Errorf("LOJ emitted %d rows, fewer than its %d left inputs", ja.Rows, left)
	}
}
