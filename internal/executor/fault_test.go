// Fault-injection and leak suite for the guarded executor: injected
// failures and panics at the operator, batch and partition points must
// come back as typed guard errors, budget trips must abort with
// ErrBudget, and a cancellation that lands mid-partitioned-join must
// drain every worker goroutine. Runs under -race via make faults.
package executor

import (
	"context"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/guard"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
)

// faultDB builds two relations big enough that the grace-partitioned
// join engages (combined size ≥ minPartitionRows).
func faultDB(seed int64) plan.Database {
	return bigDB(rand.New(rand.NewSource(seed)), 600, 23, "r1", "r2")
}

func faultJoin() plan.Node {
	return plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
}

// execEntry is one guarded entry point of the executor, wrapped so the
// matrix can drive RunGuarded, RunParallelGuarded and the partitioned
// join uniformly.
type execEntry struct {
	name string
	run  func(db plan.Database, b *guard.Budget) (*relation.Relation, error)
	// ref is the plan whose unguarded Run output the entry's guarded
	// output must reproduce (the untripped-budget determinism gate).
	ref plan.Node
}

func execEntries() []execEntry {
	return []execEntry{
		{"serial", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return RunGuarded(faultJoin(), db, b)
		}, faultJoin()},
		{"parallel", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return RunParallelGuarded(faultJoin(), db, 3, b)
		}, faultJoin()},
		{"joinpar", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return JoinExecParallelGuarded(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], 3, b)
		}, faultJoin()},
		// The spilling grace join always writes and reads partition
		// files (even unbudgeted), so the matrix arms the spill
		// write/read fault points through this entry.
		{"spill", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return JoinExecSpill(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], b, SpillOptions{})
		}, faultJoin()},
		// The order-consuming operators: enforcer sorts establish the
		// input orders, so these entries cross the executor.mergejoin
		// and executor.streamagg points at their batch boundaries.
		{"merge", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return RunGuarded(faultMergeJoin(), db, b)
		}, faultMergeJoin()},
		{"streamagg", func(db plan.Database, b *guard.Budget) (*relation.Relation, error) {
			return RunGuarded(faultStreamAgg(), db, b)
		}, faultStreamAgg()},
	}
}

// faultMergeJoin is faultJoin's merge spelling: sort both inputs on x
// and merge them, so the run crosses PointExecMergeJoin.
func faultMergeJoin() plan.Node {
	sortX := func(rel string) plan.Node {
		return plan.NewSortOrigin([]plan.SortKey{{Attr: schema.Attr(rel, "x")}}, -1,
			plan.NewScan(rel), plan.SortOriginEnforcer)
	}
	return plan.NewMergeJoin(plan.InnerJoin, eqX("r1", "r2"),
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]bool{false}, sortX("r1"), sortX("r2"))
}

// faultStreamAgg aggregates the merge join's output streamed in key
// order, crossing PointExecStreamAgg.
func faultStreamAgg() plan.Node {
	return plan.NewStreamAgg(
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		plan.OrderBy(schema.Attr("r1", "x")),
		faultMergeJoin())
}

// execFired records which guard points one clean run of the entry
// crosses, so the injection matrix only arms points that actually fire
// (a point that never fires would make the assertions vacuous).
func execFired(t *testing.T, e execEntry, db plan.Database) []guard.Point {
	t.Helper()
	counts := map[guard.Point]*atomic.Int64{}
	for _, p := range guard.Points() {
		c := &atomic.Int64{}
		counts[p] = c
		guard.Inject(p, func(guard.Point) error { c.Add(1); return nil })
	}
	defer guard.Clear()
	if _, err := e.run(db, guard.New(context.Background(), guard.Limits{}, nil)); err != nil {
		t.Fatalf("recording run failed: %v", err)
	}
	var fired []guard.Point
	for _, p := range guard.Points() {
		if counts[p].Load() > 0 {
			fired = append(fired, p)
		}
	}
	if len(fired) == 0 {
		t.Fatal("no guard points fired during a guarded execution")
	}
	return fired
}

// TestExecutorFaultMatrix: every point each entry crosses, armed to
// error or panic, must abort the run with the matching typed error —
// the executor never degrades, so a swallowed fault is a failure.
func TestExecutorFaultMatrix(t *testing.T) {
	defer guard.Clear()
	db := faultDB(31)
	for _, e := range execEntries() {
		t.Run(e.name, func(t *testing.T) {
			for _, p := range execFired(t, e, db) {
				t.Run(string(p)+"/error", func(t *testing.T) {
					guard.InjectError(p)
					defer guard.Clear()
					_, err := e.run(db, guard.New(context.Background(), guard.Limits{}, nil))
					if !guard.IsInjected(err) {
						t.Fatalf("err = %v, want injected fault", err)
					}
				})
				t.Run(string(p)+"/panic", func(t *testing.T) {
					guard.InjectPanic(p)
					defer guard.Clear()
					_, err := e.run(db, guard.New(context.Background(), guard.Limits{}, nil))
					if !guard.IsPanic(err) {
						t.Fatalf("err = %v, want *guard.PanicError", err)
					}
				})
			}
		})
	}
}

// TestExecutorBudgetTrips: the rows and bytes caps abort every entry
// point with a typed budget error.
func TestExecutorBudgetTrips(t *testing.T) {
	db := faultDB(32)
	limits := []struct {
		name string
		l    guard.Limits
	}{
		{"rows", guard.Limits{MaxRows: 10}},
		{"bytes", guard.Limits{MaxBytes: 256}},
	}
	for _, e := range execEntries() {
		for _, lc := range limits {
			t.Run(e.name+"/"+lc.name, func(t *testing.T) {
				_, err := e.run(db, guard.New(context.Background(), lc.l, nil))
				if !guard.IsBudget(err) {
					t.Fatalf("err = %v, want guard.ErrBudget", err)
				}
			})
		}
	}
}

// TestExecutorCancellationDrainsWorkers: a cancellation that becomes
// visible after the first partition is claimed must abort the
// partitioned join with ErrCancelled and leave no worker goroutine
// behind — eachPartition's workers re-check the budget before every
// claim and the WaitGroup joins them all.
func TestExecutorCancellationDrainsWorkers(t *testing.T) {
	defer guard.Clear()
	db := faultDB(33)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the first partition hit: the worker that fired
	// it finishes its partition, then every later claim (P = 4 > 3
	// workers guarantees one) sees the cancelled budget.
	guard.Inject(guard.PointExecPartition, func(guard.Point) error {
		cancel()
		return nil
	})
	before := runtime.NumGoroutine()
	_, err := JoinExecParallelGuarded(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], 3,
		guard.New(ctx, guard.Limits{}, nil))
	guard.Clear()
	if !guard.IsCancelled(err) {
		t.Fatalf("err = %v, want guard.ErrCancelled", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecutorPanicLeavesNoWorkers: a panic injected into the
// partition workers is contained per work item and the pool still
// joins cleanly.
func TestExecutorPanicLeavesNoWorkers(t *testing.T) {
	defer guard.Clear()
	db := faultDB(34)
	guard.InjectPanic(guard.PointExecPartition)
	before := runtime.NumGoroutine()
	_, err := JoinExecParallelGuarded(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], 3,
		guard.New(context.Background(), guard.Limits{}, nil))
	guard.Clear()
	if !guard.IsPanic(err) {
		t.Fatalf("err = %v, want *guard.PanicError", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecutorUntrippedBudgetDeterministic: a budget that never trips
// must not change any entry point's output.
func TestExecutorUntrippedBudgetDeterministic(t *testing.T) {
	db := faultDB(35)
	huge := guard.Limits{MaxRows: 1 << 40, MaxBytes: 1 << 50}
	for _, e := range execEntries() {
		t.Run(e.name, func(t *testing.T) {
			want, err := Run(e.ref, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.run(db, guard.New(context.Background(), huge, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatal("guarded output differs from unguarded Run")
			}
		})
	}
}
