// Equivalence suite for the vectorized engine: RunVectorized must be
// multiset-identical to Run (and RunParallel) on every plan shape the
// tuple engine accepts — all join kinds with NULL keys, MGOJ, GenSel,
// grouping with every aggregate form — across batch sizes {1, 3,
// 1024}, and must agree bit-for-bit on aggregate float arithmetic.
// make race-vec runs this file under the race detector.
package executor

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// vecBatchSizes are swept by every equivalence test: 1 and 3 pin
// batch-boundary handling, 1024 is the production granularity.
var vecBatchSizes = []int{1, 3, 1024}

// mixedDB builds relations with an int key x, an int y, a float f and
// a string s (all ~10% NULL) so the typed selection and aggregation
// kernels and the PhysAny fallbacks all engage.
func mixedDB(rng *rand.Rand, rows, domain int, rels ...string) plan.Database {
	words := []string{"ape", "bee", "cat", "dog", "eel"}
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		b := relation.NewBuilder(name, "x", "y", "f", "s")
		n := rows/2 + rng.Intn(rows/2+1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 4)
			for j := range vals {
				if rng.Intn(10) == 0 {
					vals[j] = value.Null
					continue
				}
				switch j {
				case 2:
					vals[j] = value.NewFloat(rng.Float64() * float64(domain))
				case 3:
					vals[j] = value.NewString(words[rng.Intn(len(words))])
				default:
					vals[j] = value.NewInt(int64(rng.Intn(domain)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	return db
}

// vecPlans is the plan zoo: every ported operator plus the fallback
// seams (sort, MGOJ compensation, GenSel padding).
func vecPlans() []plan.Node {
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	return []plan.Node{
		// Selection kernels: typed col-const, col-col, and a disjunction
		// that must take the generic row path.
		plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r1", "x"), R: expr.Int(5)},
			plan.NewScan("r1")),
		plan.NewSelect(expr.And(
			expr.Cmp{Op: value.LT, L: expr.Column("r1", "x"), R: expr.Column("r1", "y")},
			expr.Cmp{Op: value.EQ, L: expr.Column("r1", "s"), R: expr.Str("cat")}),
			plan.NewScan("r1")),
		plan.NewSelect(expr.Or(
			expr.Cmp{Op: value.LT, L: expr.Column("r1", "f"), R: expr.Float(3)},
			expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"), R: expr.Int(1)}),
			plan.NewScan("r1")),
		// Projection, plain and distinct.
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "s")}, false,
			plan.NewScan("r1")),
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "s")}, true,
			plan.NewScan("r1")),
		// Every join kind, with residuals and NULL keys.
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt("r1", "r2")),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqY("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		// Non-equi join: vectorized engine falls back to the nested loop.
		plan.NewJoin(plan.InnerJoin, lt("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		// MGOJ and generalized selection over join trees.
		plan.NewMGOJ(eqX("r2", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewGenSel(eqY("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1", "r2")},
			plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"),
				plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
		// Aggregation: typed int/float kernels, distinct forms, computed
		// arguments, and grouping keys with NULLs.
		plan.NewGroupBy(
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]algebra.Aggregate{
				{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
				{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "c")},
				{Func: algebra.Sum, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "sy")},
				{Func: algebra.Sum, Arg: expr.Column("r2", "f"), Out: schema.Attr("q", "sf")},
				{Func: algebra.Avg, Arg: expr.Column("r2", "f"), Out: schema.Attr("q", "af")},
				{Func: algebra.Min, Arg: expr.Column("r2", "f"), Out: schema.Attr("q", "mf")},
				{Func: algebra.Max, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "my")},
				{Func: algebra.CountDistinct, Arg: expr.Column("r2", "x"), Out: schema.Attr("q", "cd")},
				{Func: algebra.SumDistinct, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "sd")},
				{Func: algebra.AvgDistinct, Arg: expr.Column("r2", "f"), Out: schema.Attr("q", "ad")},
			},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		// Aggregation with no keys over a possibly-empty selection.
		plan.NewGroupBy(nil,
			[]algebra.Aggregate{
				{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
				{Func: algebra.Sum, Arg: expr.Column("r1", "f"), Out: schema.Attr("q", "s")},
			},
			plan.NewSelect(expr.Cmp{Op: value.LT, L: expr.Column("r1", "x"), R: expr.Int(2)},
				plan.NewScan("r1"))),
		// Sort: not ported, exercises the per-operator fallback.
		plan.NewSort([]plan.SortKey{{Attr: schema.Attr("r1", "x")}}, 0,
			plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r1", "y"), R: expr.Int(3)},
				plan.NewScan("r1"))),
	}
}

// TestVectorizedMatchesRun is the three-engine equivalence property:
// Run ≡ RunParallel ≡ RunVectorized as multisets on randomized
// mixed-kind relations with NULL keys, across batch sizes.
func TestVectorizedMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	plans := vecPlans()
	for pi, p := range plans {
		for trial := 0; trial < 2; trial++ {
			db := mixedDB(rng, 300, 19, "r1", "r2", "r3")
			want, err := Run(p, db)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunParallel(p, db, 3)
			if err != nil {
				t.Fatalf("plan %d: RunParallel: %v", pi, err)
			}
			if !par.EqualAsMultisets(want) {
				t.Fatalf("plan %d trial %d: RunParallel differs from Run", pi, trial)
			}
			for _, bs := range vecBatchSizes {
				got, err := RunVectorizedOpts(p, db, nil, VecOptions{BatchSize: bs})
				if err != nil {
					t.Fatalf("plan %d batch %d: %v", pi, bs, err)
				}
				if !got.EqualAsMultisets(want) {
					t.Fatalf("plan %d batch %d trial %d: RunVectorized differs from Run", pi, bs, trial)
				}
			}
		}
	}
}

// TestVectorizedSelectPreservesOrder: filters keep input order, so a
// pure scan→select plan must match Run row-for-row, not just as a
// multiset.
func TestVectorizedSelectPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	db := mixedDB(rng, 400, 17, "r1")
	p := plan.NewSelect(expr.And(
		expr.Cmp{Op: value.GE, L: expr.Column("r1", "x"), R: expr.Int(3)},
		expr.Cmp{Op: value.LT, L: expr.Column("r1", "f"), R: expr.Float(12)}),
		plan.NewScan("r1"))
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range vecBatchSizes {
		got, err := RunVectorizedOpts(p, db, nil, VecOptions{BatchSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("batch %d: lengths differ: %d vs %d", bs, got.Len(), want.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if !got.Tuple(i).EqualTuple(want.Tuple(i)) {
				t.Fatalf("batch %d row %d: order not preserved", bs, i)
			}
		}
	}
}

// TestVectorizedEmptyInputs pins the aggregate empty-group semantics
// and zero-row plumbing through the columnar path.
func TestVectorizedEmptyInputs(t *testing.T) {
	db := plan.Database{"r1": relation.New(schema.Base("r1", "x", "y", "f", "s"))}
	never := expr.Cmp{Op: value.LT, L: expr.Column("r1", "x"), R: expr.Int(-1)}
	plans := []plan.Node{
		plan.NewSelect(never, plan.NewScan("r1")),
		plan.NewGroupBy([]schema.Attribute{schema.Attr("r1", "x")},
			[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
			plan.NewScan("r1")),
		plan.NewGroupBy(nil,
			[]algebra.Aggregate{
				{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
				{Func: algebra.Count, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "c"), NullIfEmpty: true},
				{Func: algebra.Sum, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "s")},
			},
			plan.NewScan("r1")),
	}
	for pi, p := range plans {
		want, err := Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range vecBatchSizes {
			got, err := RunVectorizedOpts(p, db, nil, VecOptions{BatchSize: bs})
			if err != nil {
				t.Fatalf("plan %d: %v", pi, err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("plan %d batch %d: empty-input results differ", pi, bs)
			}
		}
	}
}

// TestVectorizedSpills: under a byte budget the in-memory build cannot
// reserve, the vectorized join must route through the spilling grace
// join and still match the unbudgeted run.
func TestVectorizedSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	db := bigDB(rng, 4000, 100000, "r1", "r2")
	p := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default().Counter("exec.vector.spill").Value()
	got, err := RunVectorizedGuarded(p, db,
		guard.New(context.Background(), guard.Limits{MaxBytes: 100_000}, nil))
	if err != nil {
		t.Fatalf("vectorized join did not spill under budget: %v", err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("spilled vectorized result differs from unbudgeted Run")
	}
	if obs.Default().Counter("exec.vector.spill").Value() == before {
		t.Error("exec.vector.spill not incremented")
	}
}

// TestVectorizedBudgetTrips: the vectorized engine honours the same
// budget protocol — a tight row cap trips with the typed budget error.
func TestVectorizedBudgetTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	db := mixedDB(rng, 400, 7, "r1", "r2")
	p := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	_, err := RunVectorizedGuarded(p, db,
		guard.New(context.Background(), guard.Limits{MaxRows: 50}, nil))
	if !guard.IsBudget(err) {
		t.Fatalf("err = %v, want guard.ErrBudget", err)
	}
}

// TestVectorizedFallbackCounted: an unported operator increments its
// exec.vector.fallback.<op> counter and still computes correctly.
func TestVectorizedFallbackCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(215))
	db := mixedDB(rng, 200, 11, "r1")
	p := plan.NewSort([]plan.SortKey{{Attr: schema.Attr("r1", "x")}}, 0, plan.NewScan("r1"))
	before := obs.Default().Counter("exec.vector.fallback.sort").Value()
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunVectorized(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("fallback result differs from Run")
	}
	if obs.Default().Counter("exec.vector.fallback.sort").Value() == before {
		t.Error("exec.vector.fallback.sort not incremented")
	}
}

// TestVectorizedInstrumented: the -vec EXPLAIN ANALYZE path annotates
// every node with rows and the join with its probe extras.
func TestVectorizedInstrumented(t *testing.T) {
	rng := rand.New(rand.NewSource(216))
	db := mixedDB(rng, 300, 13, "r1", "r2")
	join := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	p := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		join)
	reg := obs.NewRegistry()
	out, ann, err := RunVectorizedInstrumented(p, db, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualAsMultisets(want) {
		t.Fatal("instrumented vectorized result differs from Run")
	}
	a := ann.For(p)
	if a.Rows != out.Len() {
		t.Errorf("root annotation rows = %d, want %d", a.Rows, out.Len())
	}
	ja := ann.For(join)
	if _, ok := ja.Extra["hash_build_rows"]; !ok {
		t.Error("join annotation missing hash_build_rows")
	}
	if reg.Counter("executor.op.join.LOJ").Value() == 0 {
		t.Error("per-operator counter not recorded")
	}
}
