package executor

import (
	"runtime"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// Adapt configures mid-query adaptivity for hash joins. Both
// adaptations commit before the first probe — the only point where
// changing the physical strategy is free of replay: nothing has been
// emitted yet, so the output stays multiset-identical to the static
// plan, and the decision is a deterministic function of the (already
// materialized) input sizes. A nil *Adapt — the default everywhere —
// disables both checks at the cost of one pointer comparison per
// join.
type Adapt struct {
	// SwapFactor enables build/probe swapping: when the planned build
	// side (the right input) materializes more than SwapFactor times
	// the probe side's rows, the join builds its hash table on the
	// smaller left side instead — the planner's side choice encoded a
	// cardinality estimate that execution just disproved. 0 disables
	// swapping.
	SwapFactor float64
	// Spill escalates an in-memory hash join whose build side cannot
	// fit the byte budget's remaining headroom to the grace/spill join
	// instead of dying on the MaxBytes trip.
	Spill bool
	// SpillDir is the spill-file directory when Spill is set (empty =
	// os.TempDir()).
	SpillDir string
}

// RunAdaptive is RunGuarded with mid-query adaptivity: hash joins may
// swap build/probe sides and escalate to the spilling grace join per
// a's thresholds. Results are multiset-identical to RunGuarded; row
// order can differ where an adaptation fires.
func RunAdaptive(n plan.Node, db plan.Database, b *guard.Budget, a *Adapt) (out *relation.Relation, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	return run(n, db, b, a)
}

// RunParallelAdaptive is RunParallelGuarded with mid-query adaptivity.
func RunParallelAdaptive(n plan.Node, db plan.Database, workers int, b *guard.Budget, a *Adapt) (out *relation.Relation, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		out, err = runParallel(n, db, workers, b, a)
	})
	return out, err
}

// RunVectorizedAdaptive is RunVectorizedGuarded with mid-query
// adaptivity: a vectorized join that trips an adapt threshold
// delegates to the adaptive row join (counted on
// exec.vector.fallback.join-adapt).
func RunVectorizedAdaptive(n plan.Node, db plan.Database, b *guard.Budget, a *Adapt) (out *relation.Relation, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	e := &vecEngine{db: db, b: b, batch: execBatchRows, reg: obs.Default(), adapt: a}
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		col, execErr := e.exec(n)
		if execErr != nil {
			err = execErr
			return
		}
		out = col.ToRelation()
	})
	return out, err
}

// RunInstrumentedAdaptive is RunInstrumentedGuarded with mid-query
// adaptivity — the query service's execution entry point when
// feedback is enabled. Adaptive transitions land in the annotations
// (build_swapped, spill_escalated extras) and the exec.adapt.*
// counters.
func RunInstrumentedAdaptive(n plan.Node, db plan.Database, reg *obs.Registry, b *guard.Budget, a *Adapt) (out *relation.Relation, ann plan.Annotations, err error) {
	if reg == nil {
		reg = obs.Default()
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), reg)
	ann = plan.Annotations{}
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		out, err = runInstrumented(n, db, reg, ann, b, a)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, ann, nil
}

// swapWanted is the deterministic pre-probe swap decision: the
// materialized build side outgrew the probe side by the configured
// factor.
func (a *Adapt) swapWanted(probeRows, buildRows int) bool {
	return a != nil && a.SwapFactor > 0 &&
		float64(buildRows) > a.SwapFactor*float64(probeRows)
}

// adaptJoin runs the adapt decision cascade for one hash join whose
// inputs are fully materialized and whose equi keys are already
// split. It returns (out, true, err) when an adaptation took over the
// join, or (nil, false, nil) to tell the caller to proceed with the
// static build-on-right path. Escalation is checked on the effective
// (post-swap) build side, so a swap that also cannot fit memory goes
// straight to the grace join.
func adaptJoin(a *Adapt, kind plan.JoinKind, pred expr.Pred, residual expr.Pred, li, ri []int, l, r *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, bool, error) {
	if a == nil {
		return nil, false, nil
	}
	swap := a.swapWanted(l.Len(), r.Len())
	if a.Spill {
		build, bs := r, r.Schema()
		if swap {
			build, bs = l, l.Schema()
		}
		if free, limited := b.BytesFree(); limited {
			if need := estBytes(build.Len(), bs.Len()); 2*need > free {
				if err := guard.Hit(guard.PointExecBuildSwap); err != nil {
					return nil, true, err
				}
				obs.Default().Counter("exec.adapt.spill_escalations").Inc()
				if st != nil {
					st.SpillEscalated = true
				}
				out, err := spillJoinProbe(kind, pred, l, r, st, b, nil, SpillOptions{Dir: a.SpillDir})
				return out, true, err
			}
		}
	}
	if swap {
		if err := guard.Hit(guard.PointExecBuildSwap); err != nil {
			return nil, true, err
		}
		obs.Default().Counter("exec.adapt.swaps").Inc()
		if st != nil {
			st.BuildSwapped = true
		}
		out, err := joinExecSwapped(kind, residual, li, ri, l, r, st, b)
		return out, true, err
	}
	return nil, false, nil
}

// joinExecSwapped is the build-on-left hash join: the mirror of
// joinExecProbe's core loop, used when adaptivity decides the left
// input is the cheaper side to hash. Output rows keep the (l, r)
// column order and the result is multiset-identical to the unswapped
// join — only physical row order differs, since rows stream out in
// probe (right) order instead of left order.
func joinExecSwapped(kind plan.JoinKind, residual expr.Pred, li, ri []int, l, r *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	out := relation.New(ls.Concat(rs))
	buildRes := estBytes(l.Len(), ls.Len())
	if err := b.ReserveBytes(buildRes); err != nil {
		return nil, err
	}
	defer b.ReleaseBytes(buildRes)
	build := make(map[uint64][]int, l.Len())
	for j, t := range l.Tuples() {
		if h, ok := fastKey(t, li); ok {
			build[h] = append(build[h], j)
			if st != nil {
				st.BuildRows++
			}
		}
	}
	leftMatched := make([]bool, l.Len())
	nl, nr := ls.Len(), rs.Len()
	env := expr.TupleEnv{Schema: out.Schema()}
	scratch := make(relation.Tuple, nl+nr)
	arena := newTupleArena(nl + nr)
	collisions := 0
	charged := 0
	for i, rt := range r.Tuples() {
		if i%execBatchRows == 0 {
			if err := guard.Hit(guard.PointExecBatch); err != nil {
				return nil, err
			}
			if err := b.Err(); err != nil {
				return nil, err
			}
			if err := chargeSince(b, out, &charged, nl+nr); err != nil {
				return nil, err
			}
		}
		matched := false
		if h, ok := fastKey(rt, ri); ok {
			for _, j := range build[h] {
				lt := l.Tuple(j)
				if !lt.EqualOn(rt, li, ri) {
					collisions++
					continue
				}
				copy(scratch, lt)
				copy(scratch[nl:], rt)
				env.Tuple = scratch
				if st != nil {
					st.ResidualEvals++
				}
				if residual.Eval(env).Holds() {
					matched = true
					leftMatched[j] = true
					row := arena.next()
					copy(row, scratch)
					out.Append(row)
				}
			}
		}
		if !matched && (kind == plan.RightJoin || kind == plan.FullJoin) {
			row := arena.next()
			for i := 0; i < nl; i++ {
				row[i] = value.Null
			}
			copy(row[nl:], rt)
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if kind == plan.LeftJoin || kind == plan.FullJoin {
		for j, lt := range l.Tuples() {
			if j%execBatchRows == 0 {
				if err := b.Err(); err != nil {
					return nil, err
				}
				if err := chargeSince(b, out, &charged, nl+nr); err != nil {
					return nil, err
				}
			}
			if leftMatched[j] {
				continue
			}
			row := arena.next()
			copy(row, lt)
			for i := nl; i < nl+nr; i++ {
				row[i] = value.Null
			}
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if st != nil {
		st.Collisions += collisions
	}
	if collisions > 0 {
		obs.Default().Counter("exec.hash.collisions").Add(int64(collisions))
	}
	st.flushArenas(arena)
	if err := chargeSince(b, out, &charged, nl+nr); err != nil {
		return nil, err
	}
	return out, nil
}
