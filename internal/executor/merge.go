// Sort-merge join and streaming sorted aggregation: the executor's
// order-consuming physical operators. Both rely on their inputs
// arriving sorted — a property the optimizer's ordered extraction
// proves before ever planting these nodes — and both verify that
// property at runtime as they walk the input, failing with a typed
// ErrUnsorted instead of silently dropping rows when the claim is
// wrong (a corrupted catalog order, a hand-built plan).
package executor

import (
	"errors"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// ErrUnsorted reports an order-consuming operator fed input that
// violates its claimed sort order.
var ErrUnsorted = errors.New("executor: input not in required sort order")

// MergeJoinExec joins two materialized relations already sorted on the
// node's key order by merging them: one interleaved pass, no hash
// table. Equal-key runs on both sides form blocks joined as a cross
// product (the right block is rescanned once per additional left row);
// NULL keys never match and pad straight through for the outer kinds.
// Output is in left-key order row-for-row for Inner and Left joins —
// the delivered-order claim plan.DeliveredOrder makes for this node.
func MergeJoinExec(m *plan.MergeJoin, l, r *relation.Relation) (*relation.Relation, error) {
	return mergeJoinProbe(m, l, r, nil, nil)
}

func mergeJoinProbe(m *plan.MergeJoin, l, r *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	out := relation.New(ls.Concat(rs))
	li := make([]int, len(m.LKeys))
	ri := make([]int, len(m.RKeys))
	for i := range m.LKeys {
		li[i] = ls.IndexOf(m.LKeys[i])
		ri[i] = rs.IndexOf(m.RKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("executor: merge key %s=%s not resolvable", m.LKeys[i], m.RKeys[i])
		}
	}
	residual := mergeResidual(m.Pred, ls, rs, li, ri)
	reg := obs.Default()
	reg.Counter("exec.merge.runs").Inc()

	nl, nr := ls.Len(), rs.Len()
	env := expr.TupleEnv{Schema: out.Schema()}
	scratch := make(relation.Tuple, nl+nr)
	arena := newTupleArena(nl + nr)
	charged := 0
	steps := 0
	// tick is the per-work-unit governance boundary: one call per
	// cursor advance and per block pair evaluated.
	tick := func() error {
		steps++
		if steps%execBatchRows != 0 {
			return nil
		}
		if err := guard.Hit(guard.PointExecMergeJoin); err != nil {
			return err
		}
		if err := b.Err(); err != nil {
			return err
		}
		return chargeSince(b, out, &charged, nl+nr)
	}
	padLeft := func(lt relation.Tuple) {
		if m.Kind != plan.LeftJoin && m.Kind != plan.FullJoin {
			return
		}
		row := arena.next()
		copy(row, lt)
		for i := nl; i < nl+nr; i++ {
			row[i] = value.Null
		}
		if st != nil {
			st.NullPadded++
		}
		out.Append(row)
	}
	padRight := func(rt relation.Tuple) {
		if m.Kind != plan.RightJoin && m.Kind != plan.FullJoin {
			return
		}
		row := arena.next()
		for i := 0; i < nl; i++ {
			row[i] = value.Null
		}
		copy(row[nl:], rt)
		if st != nil {
			st.NullPadded++
		}
		out.Append(row)
	}
	// verify checks one adjacency of a side's claimed order; the merge
	// touches every adjacent pair exactly once, so the whole input is
	// verified by the time it is consumed.
	verify := func(side string, prev, cur relation.Tuple, idx []int) error {
		if cmpOnKeys(prev, cur, idx, m.Desc) > 0 {
			return fmt.Errorf("%w: merge join %s input at %s", ErrUnsorted, side, m.LeftOrder())
		}
		return nil
	}

	rescans := 0
	i, j := 0, 0
	lts, rts := l.Tuples(), r.Tuples()
	for i < len(lts) && j < len(rts) {
		if err := tick(); err != nil {
			return nil, err
		}
		lt, rt := lts[i], rts[j]
		if hasNullAt(lt, li) {
			padLeft(lt)
			if i+1 < len(lts) {
				if err := verify("left", lt, lts[i+1], li); err != nil {
					return nil, err
				}
			}
			i++
			continue
		}
		if hasNullAt(rt, ri) {
			padRight(rt)
			if j+1 < len(rts) {
				if err := verify("right", rt, rts[j+1], ri); err != nil {
					return nil, err
				}
			}
			j++
			continue
		}
		c := cmpAcross(lt, rt, li, ri, m.Desc)
		if c < 0 {
			padLeft(lt)
			if i+1 < len(lts) {
				if err := verify("left", lt, lts[i+1], li); err != nil {
					return nil, err
				}
			}
			i++
			continue
		}
		if c > 0 {
			padRight(rt)
			if j+1 < len(rts) {
				if err := verify("right", rt, rts[j+1], ri); err != nil {
					return nil, err
				}
			}
			j++
			continue
		}
		// Equal keys: extend both blocks, verifying order as we go.
		i2 := i + 1
		for i2 < len(lts) {
			cc := cmpOnKeys(lts[i2-1], lts[i2], li, m.Desc)
			if cc > 0 {
				return nil, fmt.Errorf("%w: merge join left input at %s", ErrUnsorted, m.LeftOrder())
			}
			if cc != 0 || hasNullAt(lts[i2], li) {
				break
			}
			i2++
		}
		j2 := j + 1
		for j2 < len(rts) {
			cc := cmpOnKeys(rts[j2-1], rts[j2], ri, m.Desc)
			if cc > 0 {
				return nil, fmt.Errorf("%w: merge join right input at %s", ErrUnsorted, m.RightOrder())
			}
			if cc != 0 || hasNullAt(rts[j2], ri) {
				break
			}
			j2++
		}
		if i2-i > 1 {
			// Each additional left row rescans the right block.
			rescans += i2 - i - 1
		}
		var rightHit []bool
		if m.Kind == plan.RightJoin || m.Kind == plan.FullJoin {
			rightHit = make([]bool, j2-j)
		}
		// Left rows outer: output stays in left order, and per-left-row
		// match tracking drives Left/Full padding in place.
		for a := i; a < i2; a++ {
			matched := false
			copy(scratch, lts[a])
			for bj := j; bj < j2; bj++ {
				if err := tick(); err != nil {
					return nil, err
				}
				copy(scratch[nl:], rts[bj])
				env.Tuple = scratch
				if st != nil {
					st.ResidualEvals++
				}
				if residual.Eval(env).Holds() {
					matched = true
					if rightHit != nil {
						rightHit[bj-j] = true
					}
					row := arena.next()
					copy(row, scratch)
					out.Append(row)
				}
			}
			if !matched {
				padLeft(lts[a])
			}
		}
		if rightHit != nil {
			for bj := j; bj < j2; bj++ {
				if !rightHit[bj-j] {
					padRight(rts[bj])
				}
			}
		}
		i, j = i2, j2
	}
	// Drain the exhausted sides, still verifying their order.
	for ; i < len(lts); i++ {
		if err := tick(); err != nil {
			return nil, err
		}
		if i+1 < len(lts) {
			if err := verify("left", lts[i], lts[i+1], li); err != nil {
				return nil, err
			}
		}
		padLeft(lts[i])
	}
	for ; j < len(rts); j++ {
		if err := tick(); err != nil {
			return nil, err
		}
		if j+1 < len(rts) {
			if err := verify("right", rts[j], rts[j+1], ri); err != nil {
				return nil, err
			}
		}
		padRight(rts[j])
	}
	st.flushArenas(arena)
	if rescans > 0 {
		reg.Counter("exec.merge.rescans").Add(int64(rescans))
	}
	reg.Counter("exec.merge.rows").Add(int64(out.Len()))
	if err := chargeSince(b, out, &charged, nl+nr); err != nil {
		return nil, err
	}
	return out, nil
}

// mergeResidual strips the equality conjuncts the merge keys already
// enforce, keeping everything else — other equi conjuncts included —
// for per-pair evaluation inside equal-key blocks.
func mergeResidual(pred expr.Pred, ls, rs *schema.Schema, li, ri []int) expr.Pred {
	type pair struct{ l, r int }
	covered := make(map[pair]bool, len(li))
	for k := range li {
		covered[pair{li[k], ri[k]}] = true
	}
	var rest []expr.Pred
	for _, c := range expr.Conjuncts(pred) {
		if cmp, ok := c.(expr.Cmp); ok && cmp.Op == value.EQ {
			lc, lok := cmp.L.(expr.Col)
			rc, rok := cmp.R.(expr.Col)
			if lok && rok {
				if a, b := ls.IndexOf(lc.Attr), rs.IndexOf(rc.Attr); a >= 0 && b >= 0 && covered[pair{a, b}] {
					continue
				}
				if a, b := ls.IndexOf(rc.Attr), rs.IndexOf(lc.Attr); a >= 0 && b >= 0 && covered[pair{a, b}] {
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	return expr.And(rest...)
}

// hasNullAt reports whether any of the key positions is NULL — a NULL
// key never matches (predicates are null-intolerant).
func hasNullAt(t relation.Tuple, idx []int) bool {
	for _, i := range idx {
		if t[i].IsNull() {
			return true
		}
	}
	return false
}

// cmpOnKeys lexicographically compares two tuples of the same side on
// the key positions, honouring per-key direction.
func cmpOnKeys(a, b relation.Tuple, idx []int, desc []bool) int {
	for k, i := range idx {
		c := plan.CompareForSort(a[i], b[i])
		if desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// cmpAcross compares a left tuple's keys with a right tuple's keys.
func cmpAcross(lt, rt relation.Tuple, li, ri []int, desc []bool) int {
	for k := range li {
		c := plan.CompareForSort(lt[li[k]], rt[ri[k]])
		if desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// StreamAggExec aggregates a relation already sorted on the node's
// InOrder: a key change is a group boundary, so exactly one group's
// accumulators are live at a time. Output rows are emitted in input
// order — the delivered-order claim for this node — with the key
// columns in the logical GroupBy's declaration order, so the schema
// matches algebra.GroupProject's exactly.
func StreamAggExec(g *plan.StreamAgg, in *relation.Relation) (*relation.Relation, error) {
	return streamAggProbe(g, in, nil)
}

func streamAggProbe(g *plan.StreamAgg, in *relation.Relation, b *guard.Budget) (*relation.Relation, error) {
	s := in.Schema()
	keyIdx := make([]int, len(g.Keys))
	for i, a := range g.Keys {
		keyIdx[i] = s.IndexOf(a)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("executor: group key %s not in input schema", a)
		}
	}
	ordIdx := make([]int, len(g.InOrder))
	desc := make([]bool, len(g.InOrder))
	for i, k := range g.InOrder {
		ordIdx[i] = s.IndexOf(k.Attr)
		desc[i] = k.Desc
		if ordIdx[i] < 0 {
			return nil, fmt.Errorf("executor: order key %s not in input schema", k.Attr)
		}
	}
	outAttrs := append([]schema.Attribute(nil), g.Keys...)
	for _, a := range g.Aggs {
		outAttrs = append(outAttrs, a.Out)
	}
	outSchema := schema.New(outAttrs...)
	out := relation.New(outSchema)
	reg := obs.Default()
	reg.Counter("exec.streamagg.runs").Inc()

	// SQL: aggregation with no GROUP BY keys over any input yields one
	// row; with keys, an empty input yields no groups. The extractor
	// only builds StreamAgg with keys, but mirror GroupProject anyway.
	if in.Len() == 0 {
		if len(g.Keys) == 0 && len(g.Aggs) > 0 {
			row := make(relation.Tuple, 0, len(g.Aggs))
			for _, a := range g.Aggs {
				row = append(row, algebra.NewAggState(a.Func).Result(a.Func, a.NullIfEmpty))
			}
			out.Append(row)
		}
		return out, nil
	}

	env := expr.TupleEnv{Schema: s}
	states := make([]*algebra.AggState, len(g.Aggs))
	openGroup := func() {
		for i, a := range g.Aggs {
			states[i] = algebra.NewAggState(a.Func)
		}
	}
	var groupHead relation.Tuple
	groups := 0
	charged := 0
	emit := func() error {
		row := make(relation.Tuple, 0, len(g.Keys)+len(g.Aggs))
		for _, k := range keyIdx {
			row = append(row, groupHead[k])
		}
		for i, a := range g.Aggs {
			row = append(row, states[i].Result(a.Func, a.NullIfEmpty))
		}
		out.Append(row)
		groups++
		return nil
	}

	for i, t := range in.Tuples() {
		if i%execBatchRows == 0 {
			if err := guard.Hit(guard.PointExecStreamAgg); err != nil {
				return nil, err
			}
			if err := b.Err(); err != nil {
				return nil, err
			}
			if err := chargeSince(b, out, &charged, outSchema.Len()); err != nil {
				return nil, err
			}
		}
		if groupHead == nil {
			groupHead = t
			openGroup()
		} else {
			c := cmpOnKeys(groupHead, t, ordIdx, desc)
			if c > 0 {
				return nil, fmt.Errorf("%w: streaming aggregation input at %s", ErrUnsorted, g.InOrder)
			}
			if c != 0 {
				if err := emit(); err != nil {
					return nil, err
				}
				groupHead = t
				openGroup()
			}
		}
		env.Tuple = t
		for ai, a := range g.Aggs {
			var v value.Value
			if a.Arg != nil {
				v = a.Arg.Eval(env)
			}
			states[ai].Add(a.Func, v)
		}
	}
	if err := emit(); err != nil {
		return nil, err
	}
	reg.Counter("exec.streamagg.groups").Add(int64(groups))
	if err := chargeSince(b, out, &charged, outSchema.Len()); err != nil {
		return nil, err
	}
	return out, nil
}
