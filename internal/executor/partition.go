package executor

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// This file implements the grace-style partitioned hash join: both
// inputs are partitioned by join-key hash across workers, per-partition
// tables are built and probed concurrently, and outer-join NULL padding
// happens per partition. The merge is deterministic — partition outputs
// concatenate in partition order, each internally ordered by probe-side
// tuple index, followed by NULL-key pads in index order — so repeated
// runs produce identical relations, multiset-equal to the serial Run.

// minPartitionRows is the combined input size below which partitioning
// costs more than it saves and the serial join runs instead.
const minPartitionRows = 512

// JoinExecParallel joins two materialized relations like JoinExec,
// but grace-partitioned across workers goroutines (0 = GOMAXPROCS).
// It falls back to the serial join — recorded on the
// exec.partition.fallback.* counters — when no equi conjunct exists,
// when only one worker is available, or when the inputs are small.
func JoinExecParallel(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, workers int) (*relation.Relation, error) {
	return JoinExecParallelGuarded(kind, pred, l, r, workers, nil)
}

// JoinExecParallelGuarded is JoinExecParallel under a budget:
// cancellation and tripped limits are observed by every worker before
// it claims its next partition, so an abort drains the pool at the
// next partition boundary — the WaitGroup join guarantees no worker
// goroutine outlives the call, and the per-partition outputs and
// arenas of an aborted join are dropped wholesale.
func JoinExecParallelGuarded(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, workers int, b *guard.Budget) (out *relation.Relation, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, "", nil)
	return partitionedJoinProbe(kind, pred, l, r, workers, nil, b, nil)
}

func partitionedJoinProbe(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, workers int, st *joinProbe, b *guard.Budget, a *Adapt) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	keys, residual := splitEqui(pred, ls, rs)
	reg := obs.Default()
	if len(keys) == 0 {
		reg.Counter("exec.partition.fallback.nonequi").Inc()
		return joinExecProbe(kind, pred, l, r, st, b, a)
	}
	if workers <= 1 || l.Len()+r.Len() < minPartitionRows {
		reg.Counter("exec.partition.fallback.small").Inc()
		return joinExecProbe(kind, pred, l, r, st, b, a)
	}
	// An adaptive build/probe swap covers the whole join, not one
	// partition: delegate to the serial adaptive join, which commits
	// the swap (or its own spill escalation) before the first probe.
	if a.swapWanted(l.Len(), r.Len()) {
		reg.Counter("exec.partition.fallback.adapt").Inc()
		return joinExecProbe(kind, pred, l, r, st, b, a)
	}
	// Out-of-core escape: when the build side's modeled footprint
	// cannot fit the byte budget's remaining headroom, the in-memory
	// partitioned join would trip — spill to disk and recurse instead.
	if free, limited := b.BytesFree(); limited {
		if need := estBytes(r.Len(), rs.Len()); 2*need > free {
			reg.Counter("exec.partition.spill").Inc()
			opts := SpillOptions{}
			if a != nil {
				opts.Dir = a.SpillDir
			}
			return spillJoinProbe(kind, pred, l, r, st, b, reg, opts)
		}
	}
	li := make([]int, len(keys))
	ri := make([]int, len(keys))
	for i, k := range keys {
		li[i], ri[i] = k.li, k.ri
	}

	// The spill check above guarantees this reservation fits (or the
	// budget is unlimited and it no-ops).
	buildRes := estBytes(r.Len(), rs.Len())
	if err := b.ReserveBytes(buildRes); err != nil {
		return nil, err
	}
	defer b.ReleaseBytes(buildRes)

	P := nextPow2(workers)
	reg.Counter("exec.partition.joins").Inc()
	reg.Counter("exec.hash.partitions").Add(int64(P))

	// Phase 1: hash both sides and scatter tuple indices into
	// partitions, chunk-parallel. NULL-key tuples match nothing and
	// are set aside for padding.
	lh, lok, err := hashSide(l, li, workers)
	if err != nil {
		return nil, err
	}
	rh, rok, err := hashSide(r, ri, workers)
	if err != nil {
		return nil, err
	}
	lparts, lnull, err := scatter(lh, lok, P, workers)
	if err != nil {
		return nil, err
	}
	rparts, rnull, err := scatter(rh, rok, P, workers)
	if err != nil {
		return nil, err
	}

	// Phase 2: build per-partition hash tables concurrently. The
	// bucket payload is the position within the partition's index
	// list, so the probe phase can mark per-partition match bitmaps
	// without sharing state across partitions.
	builds := make([]map[uint64][]int32, P)
	if err := eachPartition(workers, P, b, func(_, p int) error {
		m := make(map[uint64][]int32, len(rparts[p]))
		for k, j := range rparts[p] {
			m[rh[j]] = append(m[rh[j]], int32(k))
		}
		builds[p] = m
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 3: probe concurrently. Each worker owns a tuple arena;
	// each partition owns its output slice and right-match bitmap.
	nl, nr := ls.Len(), rs.Len()
	outSchema := ls.Concat(rs)
	outs := make([][]relation.Tuple, P)
	rmatched := make([][]bool, P)
	stats := make([]joinProbe, workers)
	arenas := make([]*tupleArena, workers)
	leftOuter := kind == plan.LeftJoin || kind == plan.FullJoin
	if err := eachPartition(workers, P, b, func(w, p int) error {
		if arenas[w] == nil {
			arenas[w] = newTupleArena(nl + nr)
		}
		arena := arenas[w]
		ws := &stats[w]
		my := make([]bool, len(rparts[p]))
		var rows []relation.Tuple
		env := expr.TupleEnv{Schema: outSchema}
		scratch := make(relation.Tuple, nl+nr)
		build := builds[p]
		for _, i := range lparts[p] {
			lt := l.Tuple(int(i))
			matched := false
			for _, k := range build[lh[i]] {
				rt := r.Tuple(int(rparts[p][k]))
				if !lt.EqualOn(rt, li, ri) {
					ws.Collisions++
					continue
				}
				copy(scratch, lt)
				copy(scratch[nl:], rt)
				env.Tuple = scratch
				ws.ResidualEvals++
				if residual.Eval(env).Holds() {
					matched = true
					my[k] = true
					row := arena.next()
					copy(row, scratch)
					rows = append(rows, row)
				}
			}
			if !matched && leftOuter {
				row := arena.next()
				copy(row, lt)
				for x := nl; x < nl+nr; x++ {
					row[x] = value.Null
				}
				ws.NullPadded++
				rows = append(rows, row)
			}
		}
		outs[p] = rows
		rmatched[p] = my
		// Charge the partition's output as it completes; a trip stops
		// the remaining workers at their next partition claim.
		return b.ChargeOut(len(rows), nl+nr)
	}); err != nil {
		return nil, err
	}

	// Phase 4: deterministic merge — partition outputs in partition
	// order, then NULL-key left pads, then unmatched right pads.
	out := relation.New(outSchema)
	for p := 0; p < P; p++ {
		out.AppendAll(outs[p])
	}
	merged := joinProbe{Partitions: P}
	for w := range stats {
		merged.Collisions += stats[w].Collisions
		merged.ResidualEvals += stats[w].ResidualEvals
		merged.NullPadded += stats[w].NullPadded
	}
	pad := newTupleArena(nl + nr)
	padStart := out.Len()
	if leftOuter {
		for _, i := range lnull {
			row := pad.next()
			copy(row, l.Tuple(int(i)))
			for x := nl; x < nl+nr; x++ {
				row[x] = value.Null
			}
			merged.NullPadded++
			out.Append(row)
		}
	}
	if kind == plan.RightJoin || kind == plan.FullJoin {
		for p := 0; p < P; p++ {
			for k, j := range rparts[p] {
				if rmatched[p][k] {
					continue
				}
				row := pad.next()
				for x := 0; x < nl; x++ {
					row[x] = value.Null
				}
				copy(row[nl:], r.Tuple(int(j)))
				merged.NullPadded++
				out.Append(row)
			}
		}
		for _, j := range rnull {
			row := pad.next()
			for x := 0; x < nl; x++ {
				row[x] = value.Null
			}
			copy(row[nl:], r.Tuple(int(j)))
			merged.NullPadded++
			out.Append(row)
		}
	}

	if pads := out.Len() - padStart; pads > 0 {
		if err := b.ChargeOut(pads, nl+nr); err != nil {
			return nil, err
		}
	}

	if st != nil {
		st.BuildRows += countNonNull(rok)
		st.ResidualEvals += merged.ResidualEvals
		st.NullPadded += merged.NullPadded
		st.Collisions += merged.Collisions
		st.Partitions = P
	}
	if merged.Collisions > 0 {
		reg.Counter("exec.hash.collisions").Add(int64(merged.Collisions))
	}
	all := append(append([]*tupleArena(nil), pad), arenas...)
	live := all[:0]
	for _, a := range all {
		if a != nil {
			live = append(live, a)
		}
	}
	st.flushArenas(live...)
	return out, nil
}

// hashSide computes the join-key hash of every tuple, chunk-parallel;
// ok[i] is false for NULL keys.
func hashSide(rel *relation.Relation, idx []int, workers int) ([]uint64, []bool, error) {
	n := rel.Len()
	hs := make([]uint64, n)
	oks := make([]bool, n)
	err := eachChunk(workers, n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			hs[i], oks[i] = fastKey(rel.Tuple(i), idx)
		}
		return nil
	})
	return hs, oks, err
}

// scatter distributes tuple indices into P hash partitions,
// chunk-parallel with per-worker locals merged in worker order so
// every partition's index list stays ascending (the determinism the
// merge step relies on). NULL-key indices are returned separately.
func scatter(hs []uint64, oks []bool, P, workers int) (parts [][]int32, nullKeys []int32, err error) {
	mask := uint64(P - 1)
	locals := make([][][]int32, workers)
	localNull := make([][]int32, workers)
	if err := eachChunk(workers, len(hs), func(w, lo, hi int) error {
		lp := make([][]int32, P)
		var ln []int32
		for i := lo; i < hi; i++ {
			if !oks[i] {
				ln = append(ln, int32(i))
				continue
			}
			p := int(hs[i] & mask)
			lp[p] = append(lp[p], int32(i))
		}
		locals[w] = lp
		localNull[w] = ln
		return nil
	}); err != nil {
		return nil, nil, err
	}
	parts = make([][]int32, P)
	for p := 0; p < P; p++ {
		for w := 0; w < workers; w++ {
			if locals[w] != nil {
				parts[p] = append(parts[p], locals[w][p]...)
			}
		}
	}
	for w := 0; w < workers; w++ {
		nullKeys = append(nullKeys, localNull[w]...)
	}
	return parts, nullKeys, nil
}

// eachChunk runs f over [0,n) split into at most `workers` contiguous
// chunks, one goroutine each; chunk w covers ascending indices. Each
// chunk runs under Safely, so a panic in one worker surfaces as the
// call's error instead of crashing the pool; the lowest-indexed
// chunk's error wins, keeping failures deterministic.
func eachChunk(workers, n int, f func(w, lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = guard.Safely("join.chunk", "", nil, func() error {
				return f(w, lo, hi)
			})
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// eachPartition runs f(w, p) for every partition p, with worker w
// owning partitions p ≡ w (mod workers). Before claiming a partition
// every worker re-checks the budget, so cancellation or a tripped
// limit drains the pool at the next partition boundary; the WaitGroup
// join means no worker goroutine outlives the call. Each item runs
// under Safely (a panic becomes that partition's error), and the
// lowest-indexed partition's error is the one reported, independent of
// goroutine scheduling.
func eachPartition(workers, P int, b *guard.Budget, f func(w, p int) error) error {
	errs := make([]error, P)
	var wg sync.WaitGroup
	for w := 0; w < workers && w < P; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < P; p += workers {
				if err := b.Err(); err != nil {
					errs[p] = err
					return
				}
				// The fault point sits inside Safely: an injected panic
				// on a pool goroutine must be contained here, not crash
				// the process past the caller's boundary defer.
				errs[p] = guard.Safely("join.partition", "", nil, func() error {
					if err := guard.Hit(guard.PointExecPartition); err != nil {
						return err
					}
					return f(w, p)
				})
				if errs[p] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func countNonNull(oks []bool) int {
	n := 0
	for _, ok := range oks {
		if ok {
			n++
		}
	}
	return n
}
