// Equivalence, determinism and out-of-core suite for the spilling
// grace join: spilled execution must be multiset-identical to the
// in-memory join for every kind (including recursive re-partitioning),
// and must complete under a byte budget that trips the in-memory
// join. Runs under -race via make faults.
package executor

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/plan"
	"repro/internal/value"
)

// TestExecutorSpillMatchesJoinExec: JoinExecSpill ≡ JoinExec as
// multisets across join kinds, residuals and NULL keys, both with
// unconstrained partitions and with a resident cap small enough to
// force recursive re-partitioning.
func TestExecutorSpillMatchesJoinExec(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := bigDB(rng, 500, 17, "r1", "r2")
	l, r := db["r1"], db["r2"]
	residual := expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Column("r2", "y")}
	preds := []expr.Pred{
		eqX("r1", "r2"),
		expr.And(eqX("r1", "r2"), residual),
		expr.And(eqX("r1", "r2"), eqY("r1", "r2")),
	}
	kinds := []plan.JoinKind{plan.InnerJoin, plan.LeftJoin, plan.RightJoin, plan.FullJoin}
	for _, pred := range preds {
		for _, kind := range kinds {
			want, err := JoinExec(kind, pred, l, r)
			if err != nil {
				t.Fatal(err)
			}
			// MaxResidentBytes 0: every level-0 partition joins in
			// memory. 4096: level-0 partitions exceed the cap and
			// recurse at least one level before the small-partition
			// floor engages.
			for _, cap := range []int64{0, 4096} {
				got, err := JoinExecSpill(kind, pred, l, r, nil, SpillOptions{MaxResidentBytes: cap})
				if err != nil {
					t.Fatalf("kind %v cap %d: %v", kind, cap, err)
				}
				if !got.EqualAsMultisets(want) {
					t.Fatalf("kind %v cap %d pred %s: spilled join differs", kind, cap, pred)
				}
			}
		}
	}
}

// TestExecutorSpillRecursionCounters: a tight resident cap must
// actually recurse and surface it on the probe and registry counters.
func TestExecutorSpillRecursionCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := bigDB(rng, 600, 13, "r1", "r2")
	st := &joinProbe{}
	if _, err := spillJoinProbe(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], st, nil, nil,
		SpillOptions{MaxResidentBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if st.SpillParts == 0 || st.SpillBytes == 0 {
		t.Errorf("spill parts/bytes not recorded: %+v", st)
	}
	if st.SpillRecursions == 0 {
		t.Errorf("no recursion under a 2KB resident cap: %+v", st)
	}
}

// TestExecutorSpillDeterministic: identical runs produce
// tuple-for-tuple identical output (partition order, then input
// order, then NULL-key pads).
func TestExecutorSpillDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	db := bigDB(rng, 400, 11, "r1", "r2")
	pred := eqX("r1", "r2")
	a, err := JoinExecSpill(plan.FullJoin, pred, db["r1"], db["r2"], nil, SpillOptions{MaxResidentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinExecSpill(plan.FullJoin, pred, db["r1"], db["r2"], nil, SpillOptions{MaxResidentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).EqualTuple(b.Tuple(i)) {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

// spillDB builds a data≫budget shape: wide key domain so the join
// output stays small while the build side's resident footprint is far
// over the byte budget.
func spillDB(rng *rand.Rand, rows, domain int) plan.Database {
	return bigDB(rng, rows, domain, "r1", "r2")
}

// TestExecutorSpillCompletesWhereInMemoryTrips is the out-of-core
// contract: under a MaxBytes budget the in-memory hash join trips on
// its build-side reservation, while the spilling join completes and
// matches the unbudgeted serial join as a multiset.
func TestExecutorSpillCompletesWhereInMemoryTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	db := spillDB(rng, 4000, 100000)
	l, r := db["r1"], db["r2"]
	pred := eqX("r1", "r2")
	want, err := JoinExec(plan.InnerJoin, pred, l, r)
	if err != nil {
		t.Fatal(err)
	}
	// Build side ≈ rows×3 cols×32 B ≈ 2–4 hundred KB modeled; 100 KB
	// cannot hold it, but can hold any level-1 partition pair plus the
	// (small, wide-domain) join output.
	limits := guard.Limits{MaxBytes: 100_000}
	_, err = RunGuarded(
		plan.NewJoin(plan.InnerJoin, pred, plan.NewScan("r1"), plan.NewScan("r2")),
		db, guard.New(context.Background(), limits, nil))
	if !guard.IsBudget(err) {
		t.Fatalf("in-memory join under budget: err = %v, want guard.ErrBudget", err)
	}
	got, err := JoinExecSpill(plan.InnerJoin, pred, l, r,
		guard.New(context.Background(), limits, nil), SpillOptions{})
	if err != nil {
		t.Fatalf("spilling join under the same budget failed: %v", err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("spilled result differs from unbudgeted join")
	}
	// The parallel engine auto-routes to the spilling join on the same
	// budget and must also complete.
	gotPar, err := JoinExecParallelGuarded(plan.InnerJoin, pred, l, r, 4,
		guard.New(context.Background(), limits, nil))
	if err != nil {
		t.Fatalf("partitioned join did not auto-spill: %v", err)
	}
	if !gotPar.EqualAsMultisets(want) {
		t.Fatal("auto-spilled parallel result differs from unbudgeted join")
	}
}

// TestExecutorSpillFaultPoints: errors injected at the spill write and
// read points surface as typed injected faults without leaking temp
// files (the run directory is removed wholesale on the error path).
func TestExecutorSpillFaultPoints(t *testing.T) {
	defer guard.Clear()
	rng := rand.New(rand.NewSource(95))
	db := bigDB(rng, 400, 11, "r1", "r2")
	for _, p := range []guard.Point{guard.PointSpillWrite, guard.PointSpillRead} {
		guard.InjectError(p)
		_, err := JoinExecSpill(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], nil, SpillOptions{})
		guard.Clear()
		if !guard.IsInjected(err) {
			t.Fatalf("point %s: err = %v, want injected fault", p, err)
		}
	}
}
