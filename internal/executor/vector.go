package executor

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/batch"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
)

// This file is the vectorized engine's plan walker. Data flows
// between operators as columnar batch.Rel relations; the hot
// operators — scan, selection, equi-join build/probe, GROUP BY and
// (distinct) projection — run as batch-at-a-time kernels (vecjoin.go,
// vecagg.go), and every operator the columnar engine has not ported
// falls back per operator to the tuple engine: children are
// materialized row-major, the tuple operator runs through run()'s
// charging protocol, and the result is re-shaped columnar. Fallbacks
// are counted on exec.vector.fallback.<op>, so a plan that silently
// executes mostly row-at-a-time is visible in -stats output.
//
// The contract is RunVectorized ≡ Run as multisets on every plan the
// tuple engine accepts, including NULL-padded outer joins, and
// bit-identical aggregate values (float sums accumulate in input
// order through the same algebra.AggState arithmetic).

// VecOptions tune RunVectorizedOpts.
type VecOptions struct {
	// BatchSize is the probe/selection kernel granularity in rows:
	// guard checks, fault points and incremental output charges happen
	// once per batch. 0 means execBatchRows (1024). The equivalence
	// property tests sweep {1, 3, 1024} to pin batch-boundary
	// handling.
	BatchSize int
}

// RunVectorized executes the plan on the columnar engine. Results are
// multiset-equal to Run; output order may differ on fallback seams.
func RunVectorized(n plan.Node, db plan.Database) (*relation.Relation, error) {
	return RunVectorizedOpts(n, db, nil, VecOptions{})
}

// RunVectorizedGuarded is RunVectorized under resource governance,
// with RunGuarded's budget and panic-containment contract. Joins
// whose build side cannot fit the byte budget's headroom
// automatically route through the spilling grace join.
func RunVectorizedGuarded(n plan.Node, db plan.Database, b *guard.Budget) (*relation.Relation, error) {
	return RunVectorizedOpts(n, db, b, VecOptions{})
}

// RunVectorizedOpts is the fully parameterized entry point.
func RunVectorizedOpts(n plan.Node, db plan.Database, b *guard.Budget, o VecOptions) (out *relation.Relation, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	e := &vecEngine{db: db, b: b, batch: o.BatchSize, reg: obs.Default()}
	if e.batch <= 0 {
		e.batch = execBatchRows
	}
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		var col *batch.Rel
		col, err = e.exec(n)
		if err == nil {
			out = col.ToRelation()
		}
	})
	return out, err
}

// RunVectorizedInstrumented executes on the columnar engine while
// collecting the same per-operator annotations RunInstrumented does,
// plus the vectorized extras (vector batches, fallbacks, spill
// figures) — EXPLAIN ANALYZE's -vec path.
func RunVectorizedInstrumented(n plan.Node, db plan.Database, reg *obs.Registry, b *guard.Budget) (out *relation.Relation, ann plan.Annotations, err error) {
	if reg == nil {
		reg = obs.Default()
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), reg)
	e := &vecEngine{db: db, b: b, batch: execBatchRows, reg: reg, ann: plan.Annotations{}}
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		var col *batch.Rel
		col, err = e.exec(n)
		if err == nil {
			out = col.ToRelation()
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return out, e.ann, nil
}

// vecEngine carries one vectorized execution's configuration.
type vecEngine struct {
	db    plan.Database
	b     *guard.Budget
	batch int
	reg   *obs.Registry
	ann   plan.Annotations // nil outside instrumented runs
	adapt *Adapt           // nil = static plan, no mid-query adaptivity
}

// exec is the columnar analogue of run: budget check on entry, an
// operator fault point as each node completes, joins charged
// incrementally inside the probe kernels, every other materializing
// operator charged on its full output — the exact protocol the tuple
// engines follow, so a budget trips at the same boundaries.
func (e *vecEngine) exec(n plan.Node) (*batch.Rel, error) {
	if err := e.b.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	var st *joinProbe
	if e.ann != nil {
		st = &joinProbe{}
	}
	out, charged, err := e.execNode(n, st)
	if err != nil {
		return nil, err
	}
	if err := guard.Hit(guard.PointExecOperator); err != nil {
		return nil, err
	}
	if !charged {
		if err := e.b.ChargeOut(out.N, out.Schema.Len()); err != nil {
			return nil, err
		}
	}
	if e.ann != nil {
		a := e.ann.For(n)
		a.Rows = out.N
		a.Elapsed = time.Since(start)
		if st != nil {
			switch n.(type) {
			case *plan.Join, *plan.MGOJNode:
				recordJoinProbe(a, st, e.reg)
			}
		}
		op := OpName(n)
		e.reg.Counter("executor.ops").Inc()
		e.reg.Counter("executor.op." + op).Inc()
		e.reg.Counter("executor.rows_out").Add(int64(out.N))
		e.reg.Histogram("executor.op_ns").ObserveDuration(a.Elapsed)
		e.reg.Histogram("executor.rows_out." + op).Observe(int64(out.N))
	}
	return out, nil
}

// execNode dispatches one operator. It reports whether the operator
// already charged its output (scans and materialized inputs are
// exempt; joins charge per batch; fallbacks charge inside run()).
func (e *vecEngine) execNode(n plan.Node, st *joinProbe) (*batch.Rel, bool, error) {
	switch m := n.(type) {
	case *plan.Scan:
		rel, err := m.Eval(e.db)
		if err != nil {
			return nil, false, err
		}
		return batch.FromRelation(rel), true, nil
	case *materialized:
		return batch.FromRelation(m.rel), true, nil
	case *plan.Select:
		in, err := e.exec(m.Input)
		if err != nil {
			return nil, false, err
		}
		out, err := e.vecSelect(m.Pred, in)
		return out, false, err
	case *plan.Project:
		in, err := e.exec(m.Input)
		if err != nil {
			return nil, false, err
		}
		out, err := e.vecProject(m.Attrs, m.Distinct, in)
		return out, false, err
	case *plan.GroupBy:
		in, err := e.exec(m.Input)
		if err != nil {
			return nil, false, err
		}
		out, err := e.vecGroupBy(m.Keys, m.Aggs, in)
		return out, false, err
	case *plan.Join:
		l, err := e.exec(m.L)
		if err != nil {
			return nil, false, err
		}
		r, err := e.exec(m.R)
		if err != nil {
			return nil, false, err
		}
		out, err := e.vecJoin(m.Kind, m.Pred, l, r, st)
		return out, true, err
	case *plan.MGOJNode:
		// The inner join runs vectorized; the preserved-projection
		// compensation is inherently tuple-shaped (distinct projections
		// and set differences over the padded remainder) and reuses the
		// tuple engine's mgojCompensate on the materialized seam.
		l, err := e.exec(m.L)
		if err != nil {
			return nil, false, err
		}
		r, err := e.exec(m.R)
		if err != nil {
			return nil, false, err
		}
		join, err := e.vecJoin(plan.InnerJoin, m.Pred, l, r, st)
		if err != nil {
			return nil, false, err
		}
		e.reg.Counter("exec.vector.fallback.mgoj-compensate").Inc()
		out, err := mgojCompensate(m, join.ToRelation(), l.ToRelation(), r.ToRelation(), st, e.b)
		if err != nil {
			return nil, false, err
		}
		return batch.FromRelation(out), true, nil
	case *plan.GenSel:
		// σ_p runs vectorized; the preserved-side padding reuses the
		// tuple algebra on the materialized seam.
		in, err := e.exec(m.Input)
		if err != nil {
			return nil, false, err
		}
		sel, err := e.vecSelect(m.Pred, in)
		if err != nil {
			return nil, false, err
		}
		specs := make([]map[string]bool, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = s.Set()
		}
		e.reg.Counter("exec.vector.fallback.gensel-pad").Inc()
		out, err := algebra.GenSelectWith(sel.ToRelation(), specs, in.ToRelation())
		if err != nil {
			return nil, false, err
		}
		return batch.FromRelation(out), false, nil
	default:
		return e.fallback(n)
	}
}

// fallback materializes the children columnar-side, runs the tuple
// operator through run()'s charging protocol, and re-shapes the
// result. Counted per operator on exec.vector.fallback.<op>.
func (e *vecEngine) fallback(n plan.Node) (*batch.Rel, bool, error) {
	e.reg.Counter("exec.vector.fallback." + OpName(n)).Inc()
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	for i, c := range ch {
		col, err := e.exec(c)
		if err != nil {
			return nil, false, err
		}
		newCh[i] = &materialized{rel: col.ToRelation()}
	}
	node := n
	if len(ch) > 0 {
		node = n.WithChildren(newCh)
	}
	out, err := run(node, e.db, e.b, e.adapt)
	if err != nil {
		return nil, false, err
	}
	return batch.FromRelation(out), true, nil
}

// JoinExecVec is the columnar hash join over pre-shaped columnar
// inputs — the kernel-level entry the benchmark harness measures
// (batch.FromRelation once, join many times, as a columnar engine
// holds data between operators). Guarded and panic-contained like
// JoinExec.
func JoinExecVec(kind plan.JoinKind, pred expr.Pred, l, r *batch.Rel, b *guard.Budget, o VecOptions) (out *batch.Rel, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, "joinvec", nil)
	e := &vecEngine{b: b, batch: o.BatchSize, reg: obs.Default()}
	if e.batch <= 0 {
		e.batch = execBatchRows
	}
	return e.vecJoin(kind, pred, l, r, nil)
}

// GroupByExecVec is the columnar generalized projection over a
// pre-shaped columnar input, the kernel-level sibling of
// algebra.GroupProject.
func GroupByExecVec(keys []schema.Attribute, aggs []algebra.Aggregate, in *batch.Rel, b *guard.Budget) (out *batch.Rel, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, "groupbyvec", nil)
	e := &vecEngine{b: b, batch: execBatchRows, reg: obs.Default()}
	return e.vecGroupBy(keys, aggs, in)
}
