package executor

import (
	"runtime"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
)

// RunParallel executes a plan like Run, but runs hash joins (plain
// Join and the join inside MGOJ) through the grace-partitioned engine
// and partitions selection scans — including the σ_p of generalized
// selection — across workers goroutines (0 = GOMAXPROCS). Join output
// order differs from Run's; results are equal as sets/multisets,
// which is the relational contract.
func RunParallel(n plan.Node, db plan.Database, workers int) (out *relation.Relation, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	obs.WithPhase(nil, "executor", "execute", func() {
		out, err = runParallel(n, db, workers, nil, nil)
	})
	return out, err
}

// RunParallelGuarded is RunParallel under resource governance, with
// the same contract as RunGuarded: budget checks at operator, batch
// and partition boundaries, and panic containment at this boundary
// plus per-work-item containment inside the worker pools.
func RunParallelGuarded(n plan.Node, db plan.Database, workers int, b *guard.Budget) (out *relation.Relation, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	obs.WithPhase(b.Context(), "executor", "execute", func() {
		out, err = runParallel(n, db, workers, b, nil)
	})
	return out, err
}

// runParallel mirrors run's guard protocol: budget check on operator
// entry, a fault point as each operator completes, joins charged
// inside the partitioned probe, every other materializing operator
// charged on its full output here.
func runParallel(n plan.Node, db plan.Database, workers int, b *guard.Budget, a *Adapt) (*relation.Relation, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	finish := func(out *relation.Relation, charge bool) (*relation.Relation, error) {
		if err := guard.Hit(guard.PointExecOperator); err != nil {
			return nil, err
		}
		if charge {
			if err := b.ChargeOut(out.Len(), out.Schema().Len()); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	switch m := n.(type) {
	case *plan.Join:
		l, err := runParallel(m.L, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		r, err := runParallel(m.R, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		out, err := partitionedJoinProbe(m.Kind, m.Pred, l, r, workers, nil, b, a)
		if err != nil {
			return nil, err
		}
		return finish(out, false)
	case *plan.MGOJNode:
		l, err := runParallel(m.L, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		r, err := runParallel(m.R, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		obs.Default().Counter("exec.parallel.mgoj").Inc()
		join, err := partitionedJoinProbe(plan.InnerJoin, m.Pred, l, r, workers, nil, b, nil)
		if err != nil {
			return nil, err
		}
		// The preserved-projection compensation is a handful of
		// hash-based distinct projections and set differences over the
		// (usually small) padded remainder; it runs serially.
		out, err := mgojCompensate(m, join, l, r, nil, b)
		if err != nil {
			return nil, err
		}
		return finish(out, false)
	case *plan.GenSel:
		in, err := runParallel(m.Input, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		obs.Default().Counter("exec.parallel.gensel").Inc()
		specs := make([]map[string]bool, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = s.Set()
		}
		sel, err := parallelSelect(m.Pred, in, workers)
		if err != nil {
			return nil, err
		}
		out, err := algebra.GenSelectWith(sel, specs, in)
		if err != nil {
			return nil, err
		}
		return finish(out, true)
	case *plan.Select:
		in, err := runParallel(m.Input, db, workers, b, a)
		if err != nil {
			return nil, err
		}
		out, err := parallelSelect(m.Pred, in, workers)
		if err != nil {
			return nil, err
		}
		return finish(out, true)
	default:
		// Unary set-level operators and scans: evaluate children in
		// this mode, then apply the operator sequentially (run applies
		// the shared guard protocol to the sequential tail).
		ch := n.Children()
		if len(ch) == 0 {
			return run(n, db, b, a)
		}
		newCh := make([]plan.Node, len(ch))
		for i, c := range ch {
			out, err := runParallel(c, db, workers, b, a)
			if err != nil {
				return nil, err
			}
			newCh[i] = &materialized{rel: out}
		}
		return run(n.WithChildren(newCh), db, b, a)
	}
}

// materialized injects an already-computed relation into a plan tree.
type materialized struct{ rel *relation.Relation }

func (m *materialized) Children() []plan.Node { return nil }
func (m *materialized) WithChildren(ch []plan.Node) plan.Node {
	if len(ch) != 0 {
		panic("executor: materialized has no children")
	}
	return m
}
func (m *materialized) Schema(plan.Database) (*schema.Schema, error) {
	return m.rel.Schema(), nil
}
func (m *materialized) Eval(plan.Database) (*relation.Relation, error) {
	return m.rel, nil
}
func (m *materialized) String() string { return "materialized" }

// parallelSelect filters chunks of the input concurrently. Chunk
// workers run under eachChunk's panic containment, so a predicate
// that panics on one tuple surfaces as an error instead of killing
// the process from a pool goroutine.
func parallelSelect(p expr.Pred, in *relation.Relation, workers int) (*relation.Relation, error) {
	n := in.Len()
	if n < 2*workers {
		return seqSelect(p, in), nil
	}
	outs := make([][]relation.Tuple, workers)
	if err := eachChunk(workers, n, func(w, lo, hi int) error {
		env := expr.TupleEnv{Schema: in.Schema()}
		var keep []relation.Tuple
		for i := lo; i < hi; i++ {
			t := in.Tuple(i)
			env.Tuple = t
			if p.Eval(env).Holds() {
				keep = append(keep, t)
			}
		}
		outs[w] = keep
		return nil
	}); err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	for _, part := range outs {
		for _, t := range part {
			out.Append(t)
		}
	}
	return out, nil
}

func seqSelect(p expr.Pred, in *relation.Relation) *relation.Relation {
	out := relation.New(in.Schema())
	env := expr.TupleEnv{Schema: in.Schema()}
	for _, t := range in.Tuples() {
		env.Tuple = t
		if p.Eval(env).Holds() {
			out.Append(t)
		}
	}
	return out
}
