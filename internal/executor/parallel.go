package executor

import (
	"runtime"
	"sync"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// RunParallel executes a plan like Run, but partitions hash-join
// probes across workers goroutines (0 = GOMAXPROCS). Join output
// order differs from Run's; results are equal as sets/multisets,
// which is the relational contract.
func RunParallel(n plan.Node, db plan.Database, workers int) (*relation.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch m := n.(type) {
	case *plan.Join:
		l, err := RunParallel(m.L, db, workers)
		if err != nil {
			return nil, err
		}
		r, err := RunParallel(m.R, db, workers)
		if err != nil {
			return nil, err
		}
		return parallelJoin(m.Kind, m.Pred, l, r, workers)
	case *plan.Select:
		in, err := RunParallel(m.Input, db, workers)
		if err != nil {
			return nil, err
		}
		return parallelSelect(m.Pred, in, workers), nil
	default:
		// Unary set-level operators and scans: evaluate children in
		// this mode, then apply the operator sequentially.
		ch := n.Children()
		if len(ch) == 0 {
			return Run(n, db)
		}
		newCh := make([]plan.Node, len(ch))
		for i, c := range ch {
			out, err := RunParallel(c, db, workers)
			if err != nil {
				return nil, err
			}
			newCh[i] = &materialized{rel: out}
		}
		return Run(n.WithChildren(newCh), db)
	}
}

// materialized injects an already-computed relation into a plan tree.
type materialized struct{ rel *relation.Relation }

func (m *materialized) Children() []plan.Node { return nil }
func (m *materialized) WithChildren(ch []plan.Node) plan.Node {
	if len(ch) != 0 {
		panic("executor: materialized has no children")
	}
	return m
}
func (m *materialized) Schema(plan.Database) (*schema.Schema, error) {
	return m.rel.Schema(), nil
}
func (m *materialized) Eval(plan.Database) (*relation.Relation, error) {
	return m.rel, nil
}
func (m *materialized) String() string { return "materialized" }

// parallelSelect filters chunks of the input concurrently.
func parallelSelect(p expr.Pred, in *relation.Relation, workers int) *relation.Relation {
	n := in.Len()
	if n < 2*workers {
		return seqSelect(p, in)
	}
	chunk := (n + workers - 1) / workers
	outs := make([][]relation.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := expr.TupleEnv{Schema: in.Schema()}
			var keep []relation.Tuple
			for i := lo; i < hi; i++ {
				t := in.Tuple(i)
				env.Tuple = t
				if p.Eval(env).Holds() {
					keep = append(keep, t)
				}
			}
			outs[w] = keep
		}(w, lo, hi)
	}
	wg.Wait()
	out := relation.New(in.Schema())
	for _, part := range outs {
		for _, t := range part {
			out.Append(t)
		}
	}
	return out
}

func seqSelect(p expr.Pred, in *relation.Relation) *relation.Relation {
	out := relation.New(in.Schema())
	env := expr.TupleEnv{Schema: in.Schema()}
	for _, t := range in.Tuples() {
		env.Tuple = t
		if p.Eval(env).Holds() {
			out.Append(t)
		}
	}
	return out
}

// parallelJoin partitions the probe (left) side across workers; each
// worker tracks its own right-side match bitmap, merged before the
// unmatched-right sweep.
func parallelJoin(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, workers int) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	keys, residual := splitEqui(pred, ls, rs)
	if len(keys) == 0 || l.Len() < 4*workers {
		return JoinExec(kind, pred, l, r)
	}
	li := make([]int, len(keys))
	ri := make([]int, len(keys))
	for i, k := range keys {
		li[i], ri[i] = k.li, k.ri
	}
	build := make(map[string][]int, r.Len())
	for j, t := range r.Tuples() {
		if k, ok := hashKey(t, ri); ok {
			build[k] = append(build[k], j)
		}
	}
	outSchema := ls.Concat(rs)
	nl, nr := ls.Len(), rs.Len()
	n := l.Len()
	chunk := (n + workers - 1) / workers
	outs := make([][]relation.Tuple, workers)
	matched := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := expr.TupleEnv{Schema: outSchema}
			my := make([]bool, r.Len())
			var rows []relation.Tuple
			scratch := make(relation.Tuple, nl+nr)
			for i := lo; i < hi; i++ {
				lt := l.Tuple(i)
				found := false
				if k, ok := hashKey(lt, li); ok {
					for _, j := range build[k] {
						copy(scratch, lt)
						copy(scratch[nl:], r.Tuple(j))
						env.Tuple = scratch
						if residual.Eval(env).Holds() {
							found = true
							my[j] = true
							row := make(relation.Tuple, nl+nr)
							copy(row, scratch)
							rows = append(rows, row)
						}
					}
				}
				if !found && (kind == plan.LeftJoin || kind == plan.FullJoin) {
					row := make(relation.Tuple, nl+nr)
					copy(row, lt)
					for x := nl; x < nl+nr; x++ {
						row[x] = value.Null
					}
					rows = append(rows, row)
				}
			}
			outs[w] = rows
			matched[w] = my
		}(w, lo, hi)
	}
	wg.Wait()
	out := relation.New(outSchema)
	for _, part := range outs {
		for _, t := range part {
			out.Append(t)
		}
	}
	if kind == plan.RightJoin || kind == plan.FullJoin {
		for j := 0; j < r.Len(); j++ {
			hit := false
			for w := range matched {
				if matched[w] != nil && matched[w][j] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			row := make(relation.Tuple, nl+nr)
			for x := 0; x < nl; x++ {
				row[x] = value.Null
			}
			copy(row[nl:], r.Tuple(j))
			out.Append(row)
		}
	}
	return out, nil
}
