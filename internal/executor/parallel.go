package executor

import (
	"runtime"
	"sync"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
)

// RunParallel executes a plan like Run, but runs hash joins (plain
// Join and the join inside MGOJ) through the grace-partitioned engine
// and partitions selection scans — including the σ_p of generalized
// selection — across workers goroutines (0 = GOMAXPROCS). Join output
// order differs from Run's; results are equal as sets/multisets,
// which is the relational contract.
func RunParallel(n plan.Node, db plan.Database, workers int) (*relation.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch m := n.(type) {
	case *plan.Join:
		l, err := RunParallel(m.L, db, workers)
		if err != nil {
			return nil, err
		}
		r, err := RunParallel(m.R, db, workers)
		if err != nil {
			return nil, err
		}
		return partitionedJoinProbe(m.Kind, m.Pred, l, r, workers, nil)
	case *plan.MGOJNode:
		l, err := RunParallel(m.L, db, workers)
		if err != nil {
			return nil, err
		}
		r, err := RunParallel(m.R, db, workers)
		if err != nil {
			return nil, err
		}
		obs.Default().Counter("exec.parallel.mgoj").Inc()
		join, err := partitionedJoinProbe(plan.InnerJoin, m.Pred, l, r, workers, nil)
		if err != nil {
			return nil, err
		}
		// The preserved-projection compensation is a handful of
		// hash-based distinct projections and set differences over the
		// (usually small) padded remainder; it runs serially.
		return mgojCompensate(m, join, l, r, nil)
	case *plan.GenSel:
		in, err := RunParallel(m.Input, db, workers)
		if err != nil {
			return nil, err
		}
		obs.Default().Counter("exec.parallel.gensel").Inc()
		specs := make([]map[string]bool, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = s.Set()
		}
		return algebra.GenSelectWith(parallelSelect(m.Pred, in, workers), specs, in)
	case *plan.Select:
		in, err := RunParallel(m.Input, db, workers)
		if err != nil {
			return nil, err
		}
		return parallelSelect(m.Pred, in, workers), nil
	default:
		// Unary set-level operators and scans: evaluate children in
		// this mode, then apply the operator sequentially.
		ch := n.Children()
		if len(ch) == 0 {
			return Run(n, db)
		}
		newCh := make([]plan.Node, len(ch))
		for i, c := range ch {
			out, err := RunParallel(c, db, workers)
			if err != nil {
				return nil, err
			}
			newCh[i] = &materialized{rel: out}
		}
		return Run(n.WithChildren(newCh), db)
	}
}

// materialized injects an already-computed relation into a plan tree.
type materialized struct{ rel *relation.Relation }

func (m *materialized) Children() []plan.Node { return nil }
func (m *materialized) WithChildren(ch []plan.Node) plan.Node {
	if len(ch) != 0 {
		panic("executor: materialized has no children")
	}
	return m
}
func (m *materialized) Schema(plan.Database) (*schema.Schema, error) {
	return m.rel.Schema(), nil
}
func (m *materialized) Eval(plan.Database) (*relation.Relation, error) {
	return m.rel, nil
}
func (m *materialized) String() string { return "materialized" }

// parallelSelect filters chunks of the input concurrently.
func parallelSelect(p expr.Pred, in *relation.Relation, workers int) *relation.Relation {
	n := in.Len()
	if n < 2*workers {
		return seqSelect(p, in)
	}
	chunk := (n + workers - 1) / workers
	outs := make([][]relation.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := expr.TupleEnv{Schema: in.Schema()}
			var keep []relation.Tuple
			for i := lo; i < hi; i++ {
				t := in.Tuple(i)
				env.Tuple = t
				if p.Eval(env).Holds() {
					keep = append(keep, t)
				}
			}
			outs[w] = keep
		}(w, lo, hi)
	}
	wg.Wait()
	out := relation.New(in.Schema())
	for _, part := range outs {
		for _, t := range part {
			out.Append(t)
		}
	}
	return out
}

func seqSelect(p expr.Pred, in *relation.Relation) *relation.Relation {
	out := relation.New(in.Schema())
	env := expr.TupleEnv{Schema: in.Schema()}
	for _, t := range in.Tuples() {
		env.Tuple = t
		if p.Eval(env).Holds() {
			out.Append(t)
		}
	}
	return out
}

