package executor

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// The adversarial collision suite: int64s beyond 2^53 that share a
// float64 image hash identically under value.Hash64 while remaining
// unequal under value.Equal (and under the SQL `=` of the reference
// semantics). Every hash consumer must therefore verify bucket hits —
// these tests prove the verification keeps results correct when every
// tuple collides.

const collideBase = int64(1) << 53

func collideVal(i int) value.Value { return value.NewInt(collideBase + int64(i)) }

// collideRel builds rel with n rows whose x column cycles through k
// mutually colliding values and a y payload.
func collideRel(name string, n, k int) *relation.Relation {
	b := relation.NewBuilder(name, "x", "y")
	for i := 0; i < n; i++ {
		b.Row(collideVal(i%k), value.NewInt(int64(i)))
	}
	return b.Relation()
}

func TestCollidingValuesPremise(t *testing.T) {
	a, b := collideVal(0), collideVal(1)
	if value.Equal(a, b) {
		t.Fatal("premise: values must be unequal")
	}
	if a.Hash64() != b.Hash64() {
		t.Fatal("premise: values must collide in Hash64")
	}
}

// TestHashJoinCollisionVerification: a serial hash join over inputs
// where every key shares one hash bucket still matches only truly
// equal keys, and reports the rejected bucket hits as collisions.
func TestHashJoinCollisionVerification(t *testing.T) {
	l := collideRel("l", 4, 2) // x: big, big+1, big, big+1
	r := collideRel("r", 4, 2)
	before := obs.Default().Counter("exec.hash.collisions").Value()
	st := &joinProbe{}
	out, err := joinExecProbe(plan.InnerJoin, expr.EqCols("l", "x", "r", "x"), l, r, st, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 left rows of each key × 2 right rows of the same key = 8 rows;
	// without verification the single bucket would yield 16.
	if out.Len() != 8 {
		t.Fatalf("join produced %d rows, want 8:\n%s", out.Len(), out.Format(true))
	}
	if st.Collisions == 0 {
		t.Error("collision counter not incremented on forced collisions")
	}
	if got := obs.Default().Counter("exec.hash.collisions").Value() - before; got == 0 {
		t.Error("exec.hash.collisions not incremented")
	}
}

// TestPartitionedJoinCollisions: all colliding keys land in one
// partition; the partitioned join must still verify and agree with
// the serial join.
func TestPartitionedJoinCollisions(t *testing.T) {
	l := collideRel("l", 400, 3)
	r := collideRel("r", 400, 3)
	pred := expr.EqCols("l", "x", "r", "x")
	want, err := JoinExec(plan.FullJoin, pred, l, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := JoinExecParallel(plan.FullJoin, pred, l, r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("partitioned join differs from serial under forced collisions")
	}
}

// TestGroupByCollisions: grouping keys that collide must still form
// distinct groups.
func TestGroupByCollisions(t *testing.T) {
	rel := collideRel("t", 90, 3)
	out := algebra.GroupProject(
		[]schema.Attribute{schema.Attr("t", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		rel)
	if out.Len() != 3 {
		t.Fatalf("grouping produced %d groups, want 3:\n%s", out.Len(), out)
	}
	for _, tu := range out.Tuples() {
		if n := out.Value(tu, schema.Attr("q", "n")); n.Int() != 30 {
			t.Fatalf("group count %d, want 30", n.Int())
		}
	}
}

// TestDistinctAggCollisions: duplicate-insensitive aggregates must
// not merge colliding-but-distinct argument values.
func TestDistinctAggCollisions(t *testing.T) {
	b := relation.NewBuilder("t", "x")
	for i := 0; i < 6; i++ {
		b.Row(collideVal(i % 2))
	}
	out := algebra.GroupProject(nil,
		[]algebra.Aggregate{{Func: algebra.CountDistinct, Arg: expr.Column("t", "x"), Out: schema.Attr("q", "n")}},
		b.Relation())
	if got := out.Value(out.Tuple(0), schema.Attr("q", "n")).Int(); got != 2 {
		t.Fatalf("count(distinct) over colliding values = %d, want 2", got)
	}
}

// TestGenSelMGOJCollisions: the compensation paths (distinct
// projection + set difference) stay correct when the preserved
// projections collide, cross-checked against the reference Eval.
func TestGenSelMGOJCollisions(t *testing.T) {
	db := plan.Database{
		"r1": collideRel("r1", 8, 4),
		"r2": collideRel("r2", 6, 3),
	}
	plans := []plan.Node{
		plan.NewGenSel(expr.EqCols("r1", "y", "r2", "y"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, expr.EqCols("r1", "x", "r2", "x"),
				plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewMGOJ(expr.EqCols("r1", "x", "r2", "x"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewScan("r1"), plan.NewScan("r2")),
	}
	for pi, p := range plans {
		want, err := p.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsSets(want) {
			t.Fatalf("plan %d: executor differs from reference under collisions\ngot:\n%s\nwant:\n%s",
				pi, got.Format(true), want.Format(true))
		}
		par, err := RunParallel(p, db, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !par.EqualAsSets(want) {
			t.Fatalf("plan %d: RunParallel differs from reference under collisions", pi)
		}
	}
}
