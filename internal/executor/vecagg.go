package executor

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/batch"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file holds the unary columnar kernels: selection, (distinct)
// projection and grouped aggregation.

// vecSelect filters batch-at-a-time. The predicate is split into
// conjuncts; each conjunct that is a comparison over resolvable
// columns compiles to a typed kernel (int64/float64/string loops over
// the column payloads, boxed value.Apply otherwise), and anything else
// — disjunctions, arithmetic, unresolved columns — evaluates row-wise
// through the same TupleEnv the tuple engine uses, so three-valued
// semantics cannot diverge. Selection vectors stay ascending, so
// vecSelect preserves input order exactly like algebra.Select.
func (e *vecEngine) vecSelect(pred expr.Pred, in *batch.Rel) (*batch.Rel, error) {
	conjs := expr.Conjuncts(pred)
	kernels := make([]func([]int32) []int32, 0, len(conjs))
	for _, c := range conjs {
		if _, ok := c.(expr.True); ok {
			continue
		}
		kernels = append(kernels, e.compileConjunct(c, in))
	}
	if len(kernels) == 0 {
		return in, nil
	}
	sel := make([]int32, 0, in.N)
	chunk := make([]int32, 0, e.batch)
	for lo := 0; lo < in.N; lo += e.batch {
		if err := guard.Hit(guard.PointExecBatch); err != nil {
			return nil, err
		}
		if err := e.b.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+e.batch, in.N)
		chunk = chunk[:0]
		for i := lo; i < hi; i++ {
			chunk = append(chunk, int32(i))
		}
		cand := chunk
		for _, k := range kernels {
			if cand = k(cand); len(cand) == 0 {
				break
			}
		}
		sel = append(sel, cand...)
	}
	if len(sel) == in.N {
		return in, nil
	}
	return in.Select(sel), nil
}

// keepCmp applies a comparison operator to an already-ordered pair.
func keepCmp[T int64 | float64 | string](op value.CmpOp, a, b T) bool {
	switch op {
	case value.EQ:
		return a == b
	case value.NE:
		return a != b
	case value.LT:
		return a < b
	case value.LE:
		return a <= b
	case value.GT:
		return a > b
	case value.GE:
		return a >= b
	}
	return false
}

// compileConjunct turns one conjunct into a selection-vector filter.
// The returned kernel compacts sel in place, keeping rows where the
// conjunct is True (three-valued: Unknown filters, same as the tuple
// engine's Holds()).
func (e *vecEngine) compileConjunct(p expr.Pred, in *batch.Rel) func([]int32) []int32 {
	if c, ok := p.(expr.Cmp); ok {
		if k := e.compileCmp(c, in); k != nil {
			return k
		}
	}
	// Generic conjunct: row-wise three-valued evaluation over a scratch
	// tuple. Counted so plans stuck on the slow path are visible.
	e.reg.Counter("exec.vector.select.generic").Inc()
	env := expr.TupleEnv{Schema: in.Schema}
	scratch := make(relation.Tuple, in.Schema.Len())
	return func(sel []int32) []int32 {
		out := sel[:0]
		for _, s := range sel {
			in.ReadTuple(int(s), scratch)
			env.Tuple = scratch
			if p.Eval(env).Holds() {
				out = append(out, s)
			}
		}
		return out
	}
}

// compileCmp builds a typed kernel for a comparison conjunct, or nil
// when its operands are not resolvable columns/constants.
func (e *vecEngine) compileCmp(c expr.Cmp, in *batch.Rel) func([]int32) []int32 {
	op := c.Op
	l, r := c.L, c.R
	// Normalize const-vs-column to column-vs-const.
	if _, ok := l.(expr.Const); ok {
		if _, ok := r.(expr.Col); ok {
			l, r, op = r, l, op.Flip()
		}
	}
	switch lc := l.(type) {
	case expr.Col:
		ci := in.Schema.IndexOf(lc.Attr)
		if ci < 0 {
			return nil
		}
		v := &in.Cols[ci]
		switch rc := r.(type) {
		case expr.Const:
			return e.colConstKernel(op, v, rc.Val)
		case expr.Col:
			cj := in.Schema.IndexOf(rc.Attr)
			if cj < 0 {
				return nil
			}
			return e.colColKernel(op, v, &in.Cols[cj])
		}
	}
	return nil
}

// colConstKernel compares one column against a literal. Monomorphic
// columns whose physical kind matches the literal run branch-light
// typed loops; everything else (PhysAny, INT column vs FLOAT literal,
// …) boxes through value.Apply, which carries the exact NULL and
// cross-kind comparison semantics.
func (e *vecEngine) colConstKernel(op value.CmpOp, v *batch.Vec, cv value.Value) func([]int32) []int32 {
	if cv.IsNull() {
		// θ NULL is Unknown for every row: nothing qualifies.
		return func(sel []int32) []int32 { return sel[:0] }
	}
	switch {
	case v.Phys == batch.PhysInt && cv.Kind() == value.KindInt:
		k := cv.Int()
		return func(sel []int32) []int32 {
			out := sel[:0]
			for _, s := range sel {
				if !v.IsNull(int(s)) && keepCmp(op, v.Ints[s], k) {
					out = append(out, s)
				}
			}
			return out
		}
	case v.Phys == batch.PhysFloat && cv.Kind() == value.KindFloat:
		k := cv.Float()
		return func(sel []int32) []int32 {
			out := sel[:0]
			for _, s := range sel {
				if !v.IsNull(int(s)) && keepCmp(op, v.Floats[s], k) {
					out = append(out, s)
				}
			}
			return out
		}
	case v.Phys == batch.PhysStr && cv.Kind() == value.KindString:
		k := cv.Str()
		return func(sel []int32) []int32 {
			out := sel[:0]
			for _, s := range sel {
				if !v.IsNull(int(s)) && keepCmp(op, v.Strs[s], k) {
					out = append(out, s)
				}
			}
			return out
		}
	default:
		return func(sel []int32) []int32 {
			out := sel[:0]
			for _, s := range sel {
				if value.Apply(op, v.At(int(s)), cv).Holds() {
					out = append(out, s)
				}
			}
			return out
		}
	}
}

// colColKernel compares two columns of the same relation row-wise.
func (e *vecEngine) colColKernel(op value.CmpOp, a, b *batch.Vec) func([]int32) []int32 {
	if a.Phys == b.Phys {
		switch a.Phys {
		case batch.PhysInt:
			return func(sel []int32) []int32 {
				out := sel[:0]
				for _, s := range sel {
					if !a.IsNull(int(s)) && !b.IsNull(int(s)) && keepCmp(op, a.Ints[s], b.Ints[s]) {
						out = append(out, s)
					}
				}
				return out
			}
		case batch.PhysFloat:
			return func(sel []int32) []int32 {
				out := sel[:0]
				for _, s := range sel {
					if !a.IsNull(int(s)) && !b.IsNull(int(s)) && keepCmp(op, a.Floats[s], b.Floats[s]) {
						out = append(out, s)
					}
				}
				return out
			}
		case batch.PhysStr:
			return func(sel []int32) []int32 {
				out := sel[:0]
				for _, s := range sel {
					if !a.IsNull(int(s)) && !b.IsNull(int(s)) && keepCmp(op, a.Strs[s], b.Strs[s]) {
						out = append(out, s)
					}
				}
				return out
			}
		}
	}
	return func(sel []int32) []int32 {
		out := sel[:0]
		for _, s := range sel {
			if value.Apply(op, a.At(int(s)), b.At(int(s))).Holds() {
				out = append(out, s)
			}
		}
		return out
	}
}

// vecProject projects to attrs. The non-distinct case is zero-copy:
// the output relation shares the input's column vectors. DISTINCT
// dedupes on the projected columns' key hashes (NULL identical to
// NULL, like relation.Project's tuple set) keeping first occurrences
// in input order.
func (e *vecEngine) vecProject(attrs []schema.Attribute, distinct bool, in *batch.Rel) (*batch.Rel, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = in.Schema.IndexOf(a)
		if idx[i] < 0 {
			panic(fmt.Sprintf("executor: project on missing attribute %s", a))
		}
	}
	proj := &batch.Rel{Schema: schema.New(attrs...), Cols: make([]batch.Vec, len(idx)), N: in.N}
	for i, j := range idx {
		proj.Cols[i] = in.Cols[j]
	}
	if !distinct {
		return proj, nil
	}
	all := make([]int, len(attrs))
	for i := range all {
		all[i] = i
	}
	hs, _ := proj.KeyHashes(all, true)
	seen := make(map[uint64][]int32)
	sel := make([]int32, 0, in.N)
	for i := 0; i < in.N; i++ {
		if err := e.checkBatch(i); err != nil {
			return nil, err
		}
		h := hs[i]
		dup := false
		for _, j := range seen[h] {
			if proj.EqualOn(i, proj, int(j), all, all) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(i))
		sel = append(sel, int32(i))
	}
	return proj.Select(sel), nil
}

// checkBatch fires the per-batch guard protocol every e.batch rows of
// a row-indexed kernel loop.
func (e *vecEngine) checkBatch(i int) error {
	if i%e.batch != 0 {
		return nil
	}
	if err := guard.Hit(guard.PointExecBatch); err != nil {
		return err
	}
	return e.b.Err()
}

// vecGroupBy is the columnar generalized projection. Pass one
// assigns every row a dense group id via the grouping keys' hashes
// (NULL identical to NULL, groups in first-seen order — exactly
// algebra.GroupProject's bucketing). Pass two accumulates each
// aggregate with a per-aggregate loop over the typed column payloads:
// COUNT(*), and COUNT/SUM/AVG/MIN/MAX over a monomorphic int or float
// column, never box a value. Distinct aggregates, non-column
// arguments and mixed-kind columns accumulate through the shared
// algebra.AggState, so results are bit-identical to the tuple engine
// (float sums fold in input order in both passes).
func (e *vecEngine) vecGroupBy(keys []schema.Attribute, aggs []algebra.Aggregate, in *batch.Rel) (*batch.Rel, error) {
	keyIdx := make([]int, len(keys))
	for i, a := range keys {
		keyIdx[i] = in.Schema.IndexOf(a)
		if keyIdx[i] < 0 {
			panic(fmt.Sprintf("executor: group-by attribute %s not in %s", a, in.Schema))
		}
	}
	outAttrs := append([]schema.Attribute(nil), keys...)
	for _, a := range aggs {
		outAttrs = append(outAttrs, a.Out)
	}
	outSchema := schema.New(outAttrs...)

	// Pass 1: dense group ids, first-seen order. The group table is
	// open-addressed over the key hashes (cached per group, so probes
	// compare a uint64 before EqualOn verifies) — no per-row map
	// traffic.
	hs, _ := in.KeyHashes(keyIdx, true)
	groupOf := make([]int32, in.N)
	var firstRow []int32
	var ghash []uint64
	P := nextPow2(2*in.N + 2)
	mask := uint64(P - 1)
	slots := make([]int32, P)
	for i := range slots {
		slots[i] = -1
	}
	for i := 0; i < in.N; i++ {
		if err := e.checkBatch(i); err != nil {
			return nil, err
		}
		h := hs[i]
		s := h & mask
		var g int32
		for {
			g = slots[s]
			if g < 0 {
				g = int32(len(firstRow))
				firstRow = append(firstRow, int32(i))
				ghash = append(ghash, h)
				slots[s] = g
				break
			}
			if ghash[g] == h && in.EqualOn(i, in, int(firstRow[g]), keyIdx, keyIdx) {
				break
			}
			s = (s + 1) & mask
		}
		groupOf[i] = g
	}
	ngroups := len(firstRow)

	// SQL: aggregation over an empty input with no GROUP BY columns
	// produces a single row of "empty" aggregates.
	if ngroups == 0 {
		out := relation.New(outSchema)
		if len(keys) == 0 && len(aggs) > 0 {
			row := make(relation.Tuple, 0, len(aggs))
			for _, a := range aggs {
				row = append(row, algebra.NewAggState(a.Func).Result(a.Func, a.NullIfEmpty))
			}
			out.Append(row)
		}
		return batch.FromRelation(out), nil
	}

	// Pass 2: one accumulation loop per aggregate.
	results := make([][]value.Value, len(aggs))
	for ai, a := range aggs {
		res, typed := e.vecAggTyped(a, in, groupOf, ngroups)
		if !typed {
			e.reg.Counter("exec.vector.agg.generic").Inc()
			res = vecAggGeneric(a, in, groupOf, ngroups)
		}
		results[ai] = res
	}

	out := relation.New(outSchema)
	w := len(keys) + len(aggs)
	arena := make([]value.Value, ngroups*w)
	rows := make([]relation.Tuple, ngroups)
	for g := 0; g < ngroups; g++ {
		row := relation.Tuple(arena[g*w : (g+1)*w : (g+1)*w])
		for i, c := range keyIdx {
			row[i] = in.Cols[c].At(int(firstRow[g]))
		}
		for ai := range aggs {
			row[len(keys)+ai] = results[ai][g]
		}
		rows[g] = row
	}
	out.AppendAll(rows)
	return batch.FromRelation(out), nil
}

// vecAggTyped accumulates one aggregate with unboxed loops when the
// aggregate is COUNT(*) or a plain COUNT/SUM/AVG/MIN/MAX over a
// monomorphic int or float column. Reports typed=false otherwise.
func (e *vecEngine) vecAggTyped(a algebra.Aggregate, in *batch.Rel, groupOf []int32, ngroups int) ([]value.Value, bool) {
	if a.Func == algebra.CountStar {
		n := make([]int64, ngroups)
		for _, g := range groupOf {
			n[g]++
		}
		return finishCounts(n, a.NullIfEmpty), true
	}
	col, ok := a.Arg.(expr.Col)
	if !ok {
		return nil, false
	}
	ci := in.Schema.IndexOf(col.Attr)
	if ci < 0 {
		return nil, false
	}
	v := &in.Cols[ci]
	switch a.Func {
	case algebra.Count, algebra.Sum, algebra.Avg, algebra.Min, algebra.Max:
	default:
		return nil, false // distinct forms track a value set; use AggState
	}
	switch v.Phys {
	case batch.PhysInt:
		n := make([]int64, ngroups)
		sumI := make([]int64, ngroups)
		sumF := make([]float64, ngroups)
		mn := make([]int64, ngroups)
		mx := make([]int64, ngroups)
		for i := 0; i < in.N; i++ {
			if v.IsNull(i) {
				continue
			}
			g := groupOf[i]
			x := v.Ints[i]
			if n[g] == 0 || x < mn[g] {
				mn[g] = x
			}
			if n[g] == 0 || x > mx[g] {
				mx[g] = x
			}
			n[g]++
			sumI[g] += x
			sumF[g] += float64(x)
		}
		out := make([]value.Value, ngroups)
		for g := range out {
			switch {
			case n[g] == 0:
				if a.Func == algebra.Count && !a.NullIfEmpty {
					out[g] = value.NewInt(0)
				} else {
					out[g] = value.Null
				}
			case a.Func == algebra.Count:
				out[g] = value.NewInt(n[g])
			case a.Func == algebra.Sum:
				out[g] = value.NewInt(sumI[g])
			case a.Func == algebra.Avg:
				out[g] = value.NewFloat(sumF[g] / float64(n[g]))
			case a.Func == algebra.Min:
				out[g] = value.NewInt(mn[g])
			default:
				out[g] = value.NewInt(mx[g])
			}
		}
		return out, true
	case batch.PhysFloat:
		n := make([]int64, ngroups)
		sumF := make([]float64, ngroups)
		mn := make([]float64, ngroups)
		mx := make([]float64, ngroups)
		for i := 0; i < in.N; i++ {
			if v.IsNull(i) {
				continue
			}
			g := groupOf[i]
			x := v.Floats[i]
			if n[g] == 0 || x < mn[g] {
				mn[g] = x
			}
			if n[g] == 0 || x > mx[g] {
				mx[g] = x
			}
			n[g]++
			sumF[g] += x
		}
		out := make([]value.Value, ngroups)
		for g := range out {
			switch {
			case n[g] == 0:
				if a.Func == algebra.Count && !a.NullIfEmpty {
					out[g] = value.NewInt(0)
				} else {
					out[g] = value.Null
				}
			case a.Func == algebra.Count:
				out[g] = value.NewInt(n[g])
			case a.Func == algebra.Sum:
				out[g] = value.NewFloat(sumF[g])
			case a.Func == algebra.Avg:
				out[g] = value.NewFloat(sumF[g] / float64(n[g]))
			case a.Func == algebra.Min:
				out[g] = value.NewFloat(mn[g])
			default:
				out[g] = value.NewFloat(mx[g])
			}
		}
		return out, true
	}
	return nil, false
}

// finishCounts finalizes COUNT(*) tallies with the NullIfEmpty rule.
func finishCounts(n []int64, nullIfEmpty bool) []value.Value {
	out := make([]value.Value, len(n))
	for g, c := range n {
		if c == 0 && nullIfEmpty {
			out[g] = value.Null
		} else {
			out[g] = value.NewInt(c)
		}
	}
	return out
}

// vecAggGeneric accumulates one aggregate through algebra.AggState —
// the exact tuple-engine accumulator — for distinct forms, computed
// arguments and mixed-kind columns.
func vecAggGeneric(a algebra.Aggregate, in *batch.Rel, groupOf []int32, ngroups int) []value.Value {
	states := make([]*algebra.AggState, ngroups)
	for g := range states {
		states[g] = algebra.NewAggState(a.Func)
	}
	env := expr.TupleEnv{Schema: in.Schema}
	scratch := make(relation.Tuple, in.Schema.Len())
	for i := 0; i < in.N; i++ {
		var v value.Value
		if a.Arg != nil {
			in.ReadTuple(i, scratch)
			env.Tuple = scratch
			v = a.Arg.Eval(env)
		}
		states[groupOf[i]].Add(a.Func, v)
	}
	out := make([]value.Value, ngroups)
	for g := range out {
		out[g] = states[g].Result(a.Func, a.NullIfEmpty)
	}
	return out
}
