package executor

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// bigDB builds relations large enough (≥ minPartitionRows combined)
// that the grace-partitioned join engages rather than falling back to
// the serial join.
func bigDB(rng *rand.Rand, rows, domain int, rels ...string) plan.Database {
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		b := relation.NewBuilder(name, "x", "y")
		n := rows/2 + rng.Intn(rows/2+1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 2)
			for j := range vals {
				if rng.Intn(10) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(domain)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	return db
}

// TestPartitionedRunParallelMatchesRun is the multiset-equivalence
// property of the partitioned engine: Run, RunParallel and the
// partitioned join agree (as multisets) on randomized relations with
// NULL keys, across worker counts, for every join kind plus MGOJ,
// generalized selection and aggregation. make race-exec runs it under
// the race detector.
func TestPartitionedRunParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	plans := []plan.Node{
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), lt("r1", "r2")),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.RightJoin, eqY("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewMGOJ(eqX("r2", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewGenSel(eqY("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1", "r2")},
			plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"),
				plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
		plan.NewGroupBy(
			[]schema.Attribute{schema.Attr("r1", "x")},
			[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: schema.Attr("q", "c")}},
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
	}
	for pi, p := range plans {
		for trial := 0; trial < 3; trial++ {
			db := bigDB(rng, 400, 23, "r1", "r2", "r3")
			want, err := Run(p, db)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 8, 0} {
				got, err := RunParallel(p, db, workers)
				if err != nil {
					t.Fatalf("plan %d workers %d: %v", pi, workers, err)
				}
				if !got.EqualAsMultisets(want) {
					t.Fatalf("plan %d workers %d trial %d: partitioned run differs from Run", pi, workers, trial)
				}
			}
		}
	}
}

// TestJoinExecParallelMatchesSerial pins the partitioned join itself
// (not the full plan walker) against JoinExec for every kind,
// including residual predicates on top of the equi conjunct.
func TestJoinExecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := bigDB(rng, 500, 17, "r1", "r2")
	l, r := db["r1"], db["r2"]
	residual := expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Column("r2", "y")}
	preds := []expr.Pred{
		eqX("r1", "r2"),
		expr.And(eqX("r1", "r2"), residual),
		expr.And(eqX("r1", "r2"), eqY("r1", "r2")),
	}
	kinds := []plan.JoinKind{plan.InnerJoin, plan.LeftJoin, plan.RightJoin, plan.FullJoin}
	for _, pred := range preds {
		for _, kind := range kinds {
			want, err := JoinExec(kind, pred, l, r)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 5, 8} {
				got, err := JoinExecParallel(kind, pred, l, r, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !got.EqualAsMultisets(want) {
					t.Fatalf("kind %v workers %d pred %s: partitioned join differs", kind, workers, pred)
				}
			}
		}
	}
}

// TestPartitionedJoinDeterministic: the merge is deterministic — two
// runs with the same inputs produce tuple-for-tuple identical output.
func TestPartitionedJoinDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := bigDB(rng, 400, 11, "r1", "r2")
	pred := eqX("r1", "r2")
	a, err := JoinExecParallel(plan.FullJoin, pred, db["r1"], db["r2"], 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinExecParallel(plan.FullJoin, pred, db["r1"], db["r2"], 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).EqualTuple(b.Tuple(i)) {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

// TestPartitionedJoinCounters: the partitioned path reports its
// partition fan-out through obs and the joinProbe.
func TestPartitionedJoinCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := bigDB(rng, 500, 13, "r1", "r2")
	before := obs.Default().Counter("exec.hash.partitions").Value()
	st := &joinProbe{}
	if _, err := partitionedJoinProbe(plan.InnerJoin, eqX("r1", "r2"), db["r1"], db["r2"], 4, st, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 4 {
		t.Errorf("probe partitions = %d, want 4", st.Partitions)
	}
	if st.BuildRows == 0 {
		t.Error("probe build rows not recorded")
	}
	got := obs.Default().Counter("exec.hash.partitions").Value() - before
	if got != 4 {
		t.Errorf("exec.hash.partitions delta = %d, want 4", got)
	}
}
