package executor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file implements the out-of-core leg of the grace hash join:
// when the build side's modeled resident footprint would trip the
// byte budget, both inputs are hash-partitioned into temp files and
// each partition pair is joined independently — in memory when it
// fits the remaining headroom, recursively re-partitioned on the next
// 4 hash bits when it does not. Because partitioning is by join-key
// hash, all potential matches of a tuple land in the same partition
// at every level, so each partition pair joins with the original join
// kind and its outer padding stays correct; NULL-key tuples (which
// match nothing under null in-tolerant predicates) are set aside
// before the first write and padded once at the end. Partition files
// are processed in ascending partition index with rows in input
// order, so spilled execution is deterministic and multiset-equal to
// the in-memory join.
//
// Budget accounting is exactly-once, in two currencies that never
// overlap: join output rows/bytes are charged cumulatively by the
// per-partition joinExecProbe calls (each output row is emitted by
// exactly one partition), while transient resident state — a loaded
// partition pair, plus the build table joinExecProbe reserves itself
// — is reserved via ReserveBytes and released when the partition is
// dropped. Spilled file bytes are deliberately not charged against
// MaxBytes (they are on disk, which is the point); they are surfaced
// on the exec.spill.bytes counter instead.

const (
	// spillFanout is the partition count per level: 2^spillHashBits.
	spillFanout   = 16
	spillHashBits = 4
	// maxSpillDepth bounds recursion. Each level consumes
	// spillHashBits fresh hash bits, so 8 levels consume 32 of the 64
	// key-hash bits — enough to cut any realistically skewed input,
	// while guaranteeing termination when a single key dominates (a
	// partition of identical keys never shrinks; recursing on it would
	// re-create itself forever). At the bound the partition is joined
	// in memory regardless, surfacing a typed budget trip if it truly
	// does not fit.
	maxSpillDepth = 8
	// spillMinRows is the combined partition size below which
	// re-partitioning cannot pay for itself: such partitions are
	// joined in memory (attempting the reservation) instead of fanned
	// into ever-smaller files.
	spillMinRows = 128
)

// spillValueWidth mirrors guard's per-value width estimate for
// resident-footprint modeling.
const spillValueWidth = 32

// estBytes models the resident footprint of rows×width values.
func estBytes(rows, width int) int64 {
	return int64(rows) * int64(width) * spillValueWidth
}

// SpillOptions configure JoinExecSpill.
type SpillOptions struct {
	// Dir is where partition files are created (a fresh directory
	// under os.TempDir() when empty). The directory's spill files are
	// removed as they are consumed and the run's subdirectory is
	// removed on return.
	Dir string
	// MaxResidentBytes caps the modeled resident footprint of a
	// partition pair joined in memory when no byte-limited budget is
	// supplied; 0 means unlimited (every level-0 partition joins in
	// memory — the files are still written and read back, which is
	// what the equivalence tests exercise).
	MaxResidentBytes int64
}

// JoinExecSpill joins two materialized relations with the spilling
// grace hash join. The result is multiset-equal to JoinExec for every
// join kind. Joins with no hashable equi conjunct cannot be
// hash-partitioned and fall back to the in-memory nested loop,
// recorded on exec.spill.fallback.nonequi.
func JoinExecSpill(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, b *guard.Budget, opts SpillOptions) (out *relation.Relation, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, "", nil)
	return spillJoinProbe(kind, pred, l, r, nil, b, nil, opts)
}

// spillJoinProbe meters against reg (obs.Default() when nil) so the
// instrumented engines can land exec.spill.* in their run's private
// registry.
func spillJoinProbe(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, st *joinProbe, b *guard.Budget, reg *obs.Registry, opts SpillOptions) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	keys, _ := splitEqui(pred, ls, rs)
	if reg == nil {
		reg = obs.Default()
	}
	if len(keys) == 0 {
		reg.Counter("exec.spill.fallback.nonequi").Inc()
		return joinExecProbe(kind, pred, l, r, st, b, nil)
	}
	li := make([]int, len(keys))
	ri := make([]int, len(keys))
	for i, k := range keys {
		li[i], ri[i] = k.li, k.ri
	}
	dir, err := os.MkdirTemp(opts.Dir, "spilljoin-")
	if err != nil {
		return nil, fmt.Errorf("executor: spill dir: %w", err)
	}
	defer os.RemoveAll(dir)
	reg.Counter("exec.spill.joins").Inc()

	sp := &spiller{
		kind: kind, pred: pred,
		li: li, ri: ri,
		lschema: ls, rschema: rs,
		dir: dir, b: b, st: st, reg: reg,
		maxResident: opts.MaxResidentBytes,
	}

	// Level 0: scatter both in-memory inputs into partition files,
	// setting NULL-key tuples aside for top-level padding.
	lparts, lnull, err := sp.writeRelation(l, li, 0)
	if err != nil {
		return nil, err
	}
	rparts, rnull, err := sp.writeRelation(r, ri, 0)
	if err != nil {
		return nil, err
	}

	nl, nr := ls.Len(), rs.Len()
	out := relation.New(ls.Concat(rs))
	for p := 0; p < spillFanout; p++ {
		if err := b.Err(); err != nil {
			return nil, err
		}
		part, err := sp.joinPair(lparts[p], rparts[p], 0, false)
		if err != nil {
			return nil, err
		}
		if part != nil {
			out.AppendAll(part.Tuples())
		}
	}

	// NULL-key padding, once, at the top: these tuples were never
	// written to any partition.
	pads := 0
	if kind == plan.LeftJoin || kind == plan.FullJoin {
		for _, i := range lnull {
			row := make(relation.Tuple, nl+nr)
			copy(row, l.Tuple(i))
			for x := nl; x < nl+nr; x++ {
				row[x] = value.Null
			}
			out.Append(row)
			pads++
		}
	}
	if kind == plan.RightJoin || kind == plan.FullJoin {
		for _, j := range rnull {
			row := make(relation.Tuple, nl+nr)
			for x := 0; x < nl; x++ {
				row[x] = value.Null
			}
			copy(row[nl:], r.Tuple(j))
			out.Append(row)
			pads++
		}
	}
	if st != nil {
		st.NullPadded += pads
	}
	if err := b.ChargeOut(pads, nl+nr); err != nil {
		return nil, err
	}
	return out, nil
}

// spiller carries the per-join state of one spilled execution.
type spiller struct {
	kind        plan.JoinKind
	pred        expr.Pred
	li, ri      []int
	lschema     *schema.Schema
	rschema     *schema.Schema
	dir         string
	b           *guard.Budget
	st          *joinProbe
	reg         *obs.Registry
	maxResident int64
	nfile       int
}

// spillFile is one written partition side: its path (empty for an
// empty partition — no file is created) and row/byte totals.
type spillFile struct {
	path  string
	rows  int
	bytes int64
}

// joinPair joins one partition pair at the given level: in memory
// when the modeled resident footprint fits the headroom (or when
// force, the depth bound, or the small-partition floor applies),
// recursively re-partitioned otherwise. The consumed partition files
// are removed either way, bounding disk usage to the live frontier.
func (sp *spiller) joinPair(lf, rf spillFile, level int, force bool) (*relation.Relation, error) {
	defer func() {
		if lf.path != "" {
			os.Remove(lf.path)
		}
		if rf.path != "" {
			os.Remove(rf.path)
		}
	}()
	if lf.rows == 0 && rf.rows == 0 {
		return nil, nil
	}
	// An empty non-preserved side means no output from this partition;
	// outer kinds still need the preserved side's padding, which the
	// in-memory join produces from tiny inputs, so fall through.
	nl, nr := sp.lschema.Len(), sp.rschema.Len()
	// Resident model for the in-memory attempt: both loaded partitions
	// plus the build table joinExecProbe will reserve over the right
	// side.
	resident := estBytes(lf.rows, nl) + 2*estBytes(rf.rows, nr)
	fits := true
	if free, limited := sp.b.BytesFree(); limited {
		fits = resident <= free/2 // keep half the headroom for the output
	} else if sp.maxResident > 0 {
		fits = resident <= sp.maxResident
	}
	if !fits && !force && level+1 < maxSpillDepth && lf.rows+rf.rows > spillMinRows {
		return sp.recurse(lf, rf, level)
	}
	lrel, err := sp.readFile(lf, sp.lschema)
	if err != nil {
		return nil, err
	}
	rrel, err := sp.readFile(rf, sp.rschema)
	if err != nil {
		return nil, err
	}
	loaded := estBytes(lf.rows, nl) + estBytes(rf.rows, nr)
	if err := sp.b.ReserveBytes(loaded); err != nil {
		return nil, err
	}
	defer sp.b.ReleaseBytes(loaded)
	return joinExecProbe(sp.kind, sp.pred, lrel, rrel, sp.st, sp.b, nil)
}

// recurse re-partitions one oversized pair on the next 4 hash bits
// and joins the children in partition order. A child that did not
// shrink (every row shares the parent's hash bits at this level —
// one dominant key) is forced in memory: more levels cannot split it.
func (sp *spiller) recurse(lf, rf spillFile, level int) (*relation.Relation, error) {
	sp.reg.Counter("exec.spill.recursions").Inc()
	if sp.st != nil {
		sp.st.SpillRecursions++
	}
	lparts, err := sp.repartition(lf, sp.lschema, sp.li, level+1)
	if err != nil {
		return nil, err
	}
	rparts, err := sp.repartition(rf, sp.rschema, sp.ri, level+1)
	if err != nil {
		return nil, err
	}
	out := relation.New(sp.lschema.Concat(sp.rschema))
	for p := 0; p < spillFanout; p++ {
		if err := sp.b.Err(); err != nil {
			return nil, err
		}
		force := lparts[p].rows == lf.rows && rparts[p].rows == rf.rows
		part, err := sp.joinPair(lparts[p], rparts[p], level+1, force)
		if err != nil {
			return nil, err
		}
		if part != nil {
			out.AppendAll(part.Tuples())
		}
	}
	return out, nil
}

// partWriters is one level's fan-out of partition writers for one
// side, created lazily so empty partitions cost no file.
type partWriters struct {
	sp      *spiller
	files   [spillFanout]spillFile
	fs      [spillFanout]*os.File
	ws      [spillFanout]*bufio.Writer
	scratch []byte
}

func (pw *partWriters) write(p int, t relation.Tuple) error {
	if pw.ws[p] == nil {
		pw.sp.nfile++
		path := filepath.Join(pw.sp.dir, fmt.Sprintf("part-%06d", pw.sp.nfile))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("executor: spill create: %w", err)
		}
		pw.fs[p] = f
		pw.ws[p] = bufio.NewWriterSize(f, 1<<16)
		pw.files[p].path = path
	}
	pw.scratch = encodeTuple(pw.scratch[:0], t)
	if _, err := pw.ws[p].Write(pw.scratch); err != nil {
		return fmt.Errorf("executor: spill write: %w", err)
	}
	pw.files[p].rows++
	pw.files[p].bytes += int64(len(pw.scratch))
	return nil
}

// close flushes and closes every written partition, firing the spill
// write fault point per file and folding totals into the counters.
func (pw *partWriters) close() ([spillFanout]spillFile, error) {
	var parts, bytes int64
	for p := 0; p < spillFanout; p++ {
		if pw.ws[p] == nil {
			continue
		}
		if err := guard.Hit(guard.PointSpillWrite); err != nil {
			pw.abort()
			return pw.files, err
		}
		if err := pw.ws[p].Flush(); err != nil {
			pw.abort()
			return pw.files, fmt.Errorf("executor: spill flush: %w", err)
		}
		if err := pw.fs[p].Close(); err != nil {
			pw.abort()
			return pw.files, fmt.Errorf("executor: spill close: %w", err)
		}
		pw.fs[p], pw.ws[p] = nil, nil
		parts++
		bytes += pw.files[p].bytes
	}
	pw.sp.reg.Counter("exec.spill.partitions").Add(parts)
	pw.sp.reg.Counter("exec.spill.bytes").Add(bytes)
	if pw.sp.st != nil {
		pw.sp.st.SpillParts += int(parts)
		pw.sp.st.SpillBytes += bytes
	}
	return pw.files, nil
}

// abort closes any still-open files (errors ignored; the caller is
// already failing and the run directory is removed wholesale).
func (pw *partWriters) abort() {
	for p := 0; p < spillFanout; p++ {
		if pw.fs[p] != nil {
			pw.fs[p].Close()
			pw.fs[p], pw.ws[p] = nil, nil
		}
	}
}

// writeRelation scatters an in-memory relation into level-0 partition
// files by join-key hash; NULL-key row indices are returned for
// top-level padding instead of being written.
func (sp *spiller) writeRelation(r *relation.Relation, idx []int, level int) ([spillFanout]spillFile, []int, error) {
	pw := &partWriters{sp: sp}
	var nullKeys []int
	shift := uint(spillHashBits * level)
	for i, t := range r.Tuples() {
		h, ok := fastKey(t, idx)
		if !ok {
			nullKeys = append(nullKeys, i)
			continue
		}
		p := int((h >> shift) & (spillFanout - 1))
		if err := pw.write(p, t); err != nil {
			pw.abort()
			return pw.files, nil, err
		}
	}
	files, err := pw.close()
	return files, nullKeys, err
}

// repartition streams one spilled partition into the next level's
// fan-out without materializing it: read a tuple, hash, route. The
// source file is removed by the caller's joinPair defer.
func (sp *spiller) repartition(f spillFile, s *schema.Schema, idx []int, level int) ([spillFanout]spillFile, error) {
	pw := &partWriters{sp: sp}
	if f.rows == 0 {
		return pw.close()
	}
	src, err := sp.openFile(f)
	if err != nil {
		return pw.files, err
	}
	defer src.Close()
	rd := bufio.NewReaderSize(src, 1<<16)
	width := s.Len()
	shift := uint(spillHashBits * level)
	for n := 0; n < f.rows; n++ {
		t, err := decodeTuple(rd, width)
		if err != nil {
			pw.abort()
			return pw.files, fmt.Errorf("executor: spill decode %s: %w", f.path, err)
		}
		h, ok := fastKey(t, idx)
		if !ok {
			// NULL keys were filtered at level 0; a NULL here means the
			// file is corrupt.
			pw.abort()
			return pw.files, fmt.Errorf("executor: spill decode %s: unexpected NULL key", f.path)
		}
		if err := pw.write(int((h>>shift)&(spillFanout-1)), t); err != nil {
			pw.abort()
			return pw.files, err
		}
	}
	return pw.close()
}

// openFile opens a spill file for reading, firing the read fault
// point.
func (sp *spiller) openFile(f spillFile) (*os.File, error) {
	if err := guard.Hit(guard.PointSpillRead); err != nil {
		return nil, err
	}
	src, err := os.Open(f.path)
	if err != nil {
		return nil, fmt.Errorf("executor: spill open: %w", err)
	}
	return src, nil
}

// readFile materializes one spilled partition back into a relation,
// tuples carved from an arena.
func (sp *spiller) readFile(f spillFile, s *schema.Schema) (*relation.Relation, error) {
	out := relation.New(s)
	if f.rows == 0 {
		return out, nil
	}
	src, err := sp.openFile(f)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	rd := bufio.NewReaderSize(src, 1<<16)
	width := s.Len()
	arena := newTupleArena(width)
	for n := 0; n < f.rows; n++ {
		t, err := decodeTupleInto(rd, arena.next())
		if err != nil {
			return nil, fmt.Errorf("executor: spill decode %s: %w", f.path, err)
		}
		out.Append(t)
	}
	return out, nil
}

// Spill file format: tuples back to back, each value as a kind byte
// followed by its payload — INT and FLOAT as 8 little-endian bytes,
// STRING as a uvarint length plus bytes, BOOL as one byte, NULL as
// nothing. Row counts live in the in-memory spillFile record, so no
// framing or trailer is needed.
const (
	spillKindNull byte = iota
	spillKindInt
	spillKindFloat
	spillKindStr
	spillKindBool
)

func encodeTuple(buf []byte, t relation.Tuple) []byte {
	for _, v := range t {
		switch v.Kind() {
		case value.KindNull:
			buf = append(buf, spillKindNull)
		case value.KindInt:
			buf = append(buf, spillKindInt)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
		case value.KindFloat:
			buf = append(buf, spillKindFloat)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
		case value.KindString:
			s := v.Str()
			buf = append(buf, spillKindStr)
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		case value.KindBool:
			buf = append(buf, spillKindBool)
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

func decodeTuple(rd *bufio.Reader, width int) (relation.Tuple, error) {
	return decodeTupleInto(rd, make(relation.Tuple, width))
}

func decodeTupleInto(rd *bufio.Reader, t relation.Tuple) (relation.Tuple, error) {
	var b8 [8]byte
	for i := range t {
		kind, err := rd.ReadByte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case spillKindNull:
			t[i] = value.Null
		case spillKindInt:
			if _, err := readFull(rd, b8[:]); err != nil {
				return nil, err
			}
			t[i] = value.NewInt(int64(binary.LittleEndian.Uint64(b8[:])))
		case spillKindFloat:
			if _, err := readFull(rd, b8[:]); err != nil {
				return nil, err
			}
			t[i] = value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b8[:])))
		case spillKindStr:
			n, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, n)
			if _, err := readFull(rd, buf); err != nil {
				return nil, err
			}
			t[i] = value.NewString(string(buf))
		case spillKindBool:
			c, err := rd.ReadByte()
			if err != nil {
				return nil, err
			}
			t[i] = value.NewBool(c != 0)
		default:
			return nil, fmt.Errorf("bad value kind byte %d", kind)
		}
	}
	return t, nil
}

func readFull(rd *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := rd.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
