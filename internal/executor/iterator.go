package executor

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Iterator is the Volcano-style pull interface: Open prepares the
// operator (building hash tables, running blocking children), Next
// yields one tuple at a time, Close releases state. Schema is valid
// after Open.
type Iterator interface {
	Open() error
	Next() (relation.Tuple, bool, error)
	Close() error
	Schema() *schema.Schema
}

// Compile translates a logical plan into an iterator tree over db.
// Selections, projections and the probe side of hash joins stream
// tuple-at-a-time; grouping, generalized selection and MGOJ are
// blocking (they must see their whole input), matching their
// set-level definitions.
func Compile(n plan.Node, db plan.Database) (Iterator, error) {
	switch m := n.(type) {
	case *plan.Scan:
		rel, err := m.Eval(db)
		if err != nil {
			return nil, err
		}
		return &scanIter{rel: rel}, nil
	case *plan.Select:
		in, err := Compile(m.Input, db)
		if err != nil {
			return nil, err
		}
		return &selectIter{in: in, pred: m.Pred}, nil
	case *plan.Project:
		in, err := Compile(m.Input, db)
		if err != nil {
			return nil, err
		}
		return &projectIter{in: in, attrs: m.Attrs, distinct: m.Distinct}, nil
	case *plan.Join:
		l, err := Compile(m.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Compile(m.R, db)
		if err != nil {
			return nil, err
		}
		return &joinIter{kind: m.Kind, pred: m.Pred, left: l, right: r}, nil
	case *plan.GroupBy, *plan.GenSel, *plan.MGOJNode:
		// Blocking operators: evaluate via the materializing executor
		// over their (compiled) inputs.
		return &blockingIter{node: n, db: db}, nil
	default:
		return nil, fmt.Errorf("executor: cannot compile %T", n)
	}
}

// RunStreaming executes a plan through the iterator tree and
// materializes the result (primarily for tests and benchmarks; real
// consumers would pull).
func RunStreaming(n plan.Node, db plan.Database) (*relation.Relation, error) {
	it, err := Compile(n, db)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Schema())
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Append(t)
	}
}

// --- scan ------------------------------------------------------------

type scanIter struct {
	rel *relation.Relation
	pos int
}

func (s *scanIter) Open() error { s.pos = 0; return nil }

func (s *scanIter) Next() (relation.Tuple, bool, error) {
	if s.pos >= s.rel.Len() {
		return nil, false, nil
	}
	t := s.rel.Tuple(s.pos)
	s.pos++
	return t, true, nil
}

func (s *scanIter) Close() error           { return nil }
func (s *scanIter) Schema() *schema.Schema { return s.rel.Schema() }

// --- select ----------------------------------------------------------

type selectIter struct {
	in   Iterator
	pred expr.Pred
}

func (s *selectIter) Open() error { return s.in.Open() }

func (s *selectIter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := s.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if s.pred.Eval(expr.TupleEnv{Schema: s.in.Schema(), Tuple: t}).Holds() {
			return t, true, nil
		}
	}
}

func (s *selectIter) Close() error           { return s.in.Close() }
func (s *selectIter) Schema() *schema.Schema { return s.in.Schema() }

// --- project ---------------------------------------------------------

type projectIter struct {
	in       Iterator
	attrs    []schema.Attribute
	distinct bool
	idx      []int
	seen     map[string]bool
	out      *schema.Schema
}

func (p *projectIter) Open() error {
	if err := p.in.Open(); err != nil {
		return err
	}
	p.out = schema.New(p.attrs...)
	p.idx = make([]int, len(p.attrs))
	for i, a := range p.attrs {
		p.idx[i] = p.in.Schema().IndexOf(a)
		if p.idx[i] < 0 {
			return fmt.Errorf("executor: projection attribute %s missing from %s", a, p.in.Schema())
		}
	}
	if p.distinct {
		p.seen = make(map[string]bool)
	}
	return nil
}

func (p *projectIter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := p.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		row := make(relation.Tuple, len(p.idx))
		for i, j := range p.idx {
			row[i] = t[j]
		}
		if p.distinct {
			k := row.Key()
			if p.seen[k] {
				continue
			}
			p.seen[k] = true
		}
		return row, true, nil
	}
}

func (p *projectIter) Close() error           { p.seen = nil; return p.in.Close() }
func (p *projectIter) Schema() *schema.Schema { return p.out }

// --- join ------------------------------------------------------------

// joinIter is a hash join (falling back to block nested loops for
// non-equi predicates): the right input is built into a hash table on
// Open, the left input streams through Next. Right/full outer
// padding is emitted after the probe side drains.
type joinIter struct {
	kind  plan.JoinKind
	pred  expr.Pred
	left  Iterator
	right Iterator

	out      *schema.Schema
	keysL    []int
	keysR    []int
	residual expr.Pred
	build    map[uint64][]int
	rightRel *relation.Relation
	matched  []bool

	cur        relation.Tuple // current left tuple
	curMatches []int          // candidate right indices
	curPos     int
	curMatched bool
	phase      int // 0 probing, 1 right-unmatched sweep
	sweepPos   int
	nl, nr     int
}

func (j *joinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	ls, rs := j.left.Schema(), j.right.Schema()
	j.out = ls.Concat(rs)
	j.nl, j.nr = ls.Len(), rs.Len()
	keys, residual := splitEqui(j.pred, ls, rs)
	j.residual = residual
	j.keysL = j.keysL[:0]
	j.keysR = j.keysR[:0]
	for _, k := range keys {
		j.keysL = append(j.keysL, k.li)
		j.keysR = append(j.keysR, k.ri)
	}
	if len(keys) == 0 {
		j.residual = j.pred
	}
	// Materialize and index the right input.
	j.rightRel = relation.New(rs)
	for {
		t, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.rightRel.Append(t)
	}
	j.build = make(map[uint64][]int, j.rightRel.Len())
	if len(keys) > 0 {
		for i, t := range j.rightRel.Tuples() {
			if h, ok := fastKey(t, j.keysR); ok {
				j.build[h] = append(j.build[h], i)
			}
		}
	}
	j.matched = make([]bool, j.rightRel.Len())
	j.cur = nil
	j.phase = 0
	j.sweepPos = 0
	return nil
}

func (j *joinIter) Next() (relation.Tuple, bool, error) {
	for {
		switch j.phase {
		case 0:
			if j.cur == nil {
				t, ok, err := j.left.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					// Probe side drained; maybe sweep the right side.
					if j.kind == plan.RightJoin || j.kind == plan.FullJoin {
						j.phase = 1
						continue
					}
					return nil, false, nil
				}
				j.cur = t
				j.curPos = 0
				j.curMatched = false
				if len(j.keysL) > 0 {
					if h, ok := fastKey(t, j.keysL); ok {
						j.curMatches = j.build[h]
					} else {
						j.curMatches = nil
					}
				} else {
					j.curMatches = allIndices(j.rightRel.Len())
				}
			}
			for j.curPos < len(j.curMatches) {
				ri := j.curMatches[j.curPos]
				j.curPos++
				rt := j.rightRel.Tuple(ri)
				if len(j.keysL) > 0 && !j.cur.EqualOn(rt, j.keysL, j.keysR) {
					continue // hash collision: bucket hit, unequal keys
				}
				row := make(relation.Tuple, j.nl+j.nr)
				copy(row, j.cur)
				copy(row[j.nl:], rt)
				if j.residual.Eval(expr.TupleEnv{Schema: j.out, Tuple: row}).Holds() {
					j.curMatched = true
					j.matched[ri] = true
					return row, true, nil
				}
			}
			// Exhausted candidates for the current left tuple.
			t := j.cur
			matched := j.curMatched
			j.cur = nil
			if !matched && (j.kind == plan.LeftJoin || j.kind == plan.FullJoin) {
				row := make(relation.Tuple, j.nl+j.nr)
				copy(row, t)
				for i := j.nl; i < j.nl+j.nr; i++ {
					row[i] = value.Null
				}
				return row, true, nil
			}
		case 1:
			for j.sweepPos < j.rightRel.Len() {
				i := j.sweepPos
				j.sweepPos++
				if j.matched[i] {
					continue
				}
				row := make(relation.Tuple, j.nl+j.nr)
				for k := 0; k < j.nl; k++ {
					row[k] = value.Null
				}
				copy(row[j.nl:], j.rightRel.Tuple(i))
				return row, true, nil
			}
			return nil, false, nil
		}
	}
}

func (j *joinIter) Close() error {
	j.build = nil
	j.rightRel = nil
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *joinIter) Schema() *schema.Schema { return j.out }

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- blocking fallback ------------------------------------------------

// blockingIter evaluates grouping, generalized selection and MGOJ by
// compiling and draining their inputs, then applying the set-level
// operator, and streaming the materialized result.
type blockingIter struct {
	node plan.Node
	db   plan.Database
	rel  *relation.Relation
	pos  int
}

func (b *blockingIter) Open() error {
	switch m := b.node.(type) {
	case *plan.GroupBy:
		in, err := RunStreaming(m.Input, b.db)
		if err != nil {
			return err
		}
		b.rel = algebra.GroupProject(m.Keys, m.Aggs, in)
	case *plan.GenSel:
		in, err := RunStreaming(m.Input, b.db)
		if err != nil {
			return err
		}
		specs := make([]map[string]bool, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = s.Set()
		}
		out, err := algebra.GenSelect(m.Pred, specs, in)
		if err != nil {
			return err
		}
		b.rel = out
	case *plan.MGOJNode:
		l, err := RunStreaming(m.L, b.db)
		if err != nil {
			return err
		}
		r, err := RunStreaming(m.R, b.db)
		if err != nil {
			return err
		}
		out, err := mgojExec(m, l, r)
		if err != nil {
			return err
		}
		b.rel = out
	default:
		return fmt.Errorf("executor: blockingIter over %T", b.node)
	}
	b.pos = 0
	return nil
}

func (b *blockingIter) Next() (relation.Tuple, bool, error) {
	if b.rel == nil || b.pos >= b.rel.Len() {
		return nil, false, nil
	}
	t := b.rel.Tuple(b.pos)
	b.pos++
	return t, true, nil
}

func (b *blockingIter) Close() error { b.rel = nil; return nil }

func (b *blockingIter) Schema() *schema.Schema {
	if b.rel != nil {
		return b.rel.Schema()
	}
	return nil
}
