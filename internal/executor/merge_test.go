// Property suite for the order-consuming physical operators: the
// sort-merge join and the streaming sorted aggregation must agree —
// as multisets — with the hash engines on randomized inputs across
// all join kinds, NULL keys, duplicate-key blocks and worker counts,
// and every output whose plan claims a delivered order must actually
// be sorted (plan.CheckSorted). make race-order runs this file under
// the race detector.
package executor

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// sortedOn returns a copy of rel sorted by the keys (full sort, no
// limit) — the materialized form the order-consuming operators
// require of their inputs.
func sortedOn(t *testing.T, rel *relation.Relation, keys []plan.SortKey) *relation.Relation {
	t.Helper()
	out, err := plan.SortRows(rel, keys, -1)
	if err != nil {
		t.Fatalf("sorting input: %v", err)
	}
	return out
}

func ascKey(rel, col string) []plan.SortKey {
	return []plan.SortKey{{Attr: schema.Attr(rel, col)}}
}

// mergeOn builds a MergeJoin node on l.x = r.x (single key, the
// given direction) with pred as the full join predicate.
func mergeOn(kind plan.JoinKind, pred expr.Pred, lrel, rrel string, desc bool) *plan.MergeJoin {
	return plan.NewMergeJoin(kind, pred,
		[]schema.Attribute{schema.Attr(lrel, "x")},
		[]schema.Attribute{schema.Attr(rrel, "x")},
		[]bool{desc},
		plan.NewScan(lrel), plan.NewScan(rrel))
}

// TestMergeJoinMatchesHashJoin is the core pin: on randomized
// relations with NULL keys and heavy duplication, MergeJoinExec over
// key-sorted inputs returns the same multiset as the hash JoinExec,
// for every join kind, both key directions, and with a non-key
// residual conjunct in the predicate. For Inner and Left joins the
// output must additionally be physically sorted on the left key —
// the delivered-order claim plan.DeliveredOrder makes.
func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	lt := func(a, b string) expr.Pred {
		return expr.Cmp{Op: value.LT, L: expr.Column(a, "y"), R: expr.Column(b, "y")}
	}
	kinds := []plan.JoinKind{plan.InnerJoin, plan.LeftJoin, plan.RightJoin, plan.FullJoin}
	preds := []struct {
		name string
		pred func() expr.Pred
	}{
		{"equi", func() expr.Pred { return eqX("r1", "r2") }},
		{"equi+residual", func() expr.Pred { return expr.And(eqX("r1", "r2"), lt("r1", "r2")) }},
	}
	for trial := 0; trial < 20; trial++ {
		db := randDB(rng, 12, 3, "r1", "r2") // domain 3: long duplicate blocks, ~1/8 NULLs
		for _, kind := range kinds {
			for _, pc := range preds {
				for _, desc := range []bool{false, true} {
					m := mergeOn(kind, pc.pred(), "r1", "r2", desc)
					keys := []plan.SortKey{{Attr: schema.Attr("r1", "x"), Desc: desc}}
					rkeys := []plan.SortKey{{Attr: schema.Attr("r2", "x"), Desc: desc}}
					l := sortedOn(t, db["r1"], keys)
					r := sortedOn(t, db["r2"], rkeys)
					got, err := MergeJoinExec(m, l, r)
					if err != nil {
						t.Fatalf("trial %d %s/%s desc=%v: merge: %v", trial, kind, pc.name, desc, err)
					}
					want, err := JoinExec(kind, pc.pred(), l, r)
					if err != nil {
						t.Fatalf("trial %d %s/%s: hash: %v", trial, kind, pc.name, err)
					}
					if !got.EqualAsMultisets(want) {
						t.Fatalf("trial %d %s/%s desc=%v: merge join differs from hash join\nmerge:\n%s\nhash:\n%s",
							trial, kind, pc.name, desc, got.Format(true), want.Format(true))
					}
					if ord := plan.DeliveredOrder(m, nil); len(ord) > 0 {
						if err := plan.CheckSorted(got, ord); err != nil {
							t.Fatalf("trial %d %s/%s desc=%v: delivered-order claim broken: %v",
								trial, kind, pc.name, desc, err)
						}
					}
				}
			}
		}
	}
}

// TestMergeJoinMultiKey pins the two-key merge (x then y, mixed
// directions) against the hash join, including the duplicate-block
// rescan path and its counter.
func TestMergeJoinMultiKey(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	pred := expr.And(eqX("r1", "r2"), eqY("r1", "r2"))
	lk := []schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "y")}
	rk := []schema.Attribute{schema.Attr("r2", "x"), schema.Attr("r2", "y")}
	desc := []bool{false, true}
	before := obs.Default().Snapshot().Counters["exec.merge.rescans"]
	for trial := 0; trial < 10; trial++ {
		db := randDB(rng, 20, 2, "r1", "r2") // domain 2: guaranteed equal-key blocks
		m := plan.NewMergeJoin(plan.InnerJoin, pred, lk, rk, desc,
			plan.NewScan("r1"), plan.NewScan("r2"))
		l := sortedOn(t, db["r1"], []plan.SortKey(m.LeftOrder()))
		r := sortedOn(t, db["r2"], []plan.SortKey(m.RightOrder()))
		got, err := MergeJoinExec(m, l, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := JoinExec(plan.InnerJoin, pred, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsMultisets(want) {
			t.Fatalf("trial %d: multi-key merge differs from hash", trial)
		}
		if err := plan.CheckSorted(got, m.LeftOrder()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if after := obs.Default().Snapshot().Counters["exec.merge.rescans"]; after <= before {
		t.Error("duplicate-heavy workload never exercised the block-rescan path (exec.merge.rescans flat)")
	}
}

// TestStreamAggMatchesHashGroupBy: streaming aggregation over
// key-sorted input returns the same multiset as the hash GroupBy,
// including NULL group keys, every aggregate function, and the
// requirement-aligned key permutation with a desc direction. Output
// must be sorted in the consumed order.
func TestStreamAggMatchesHashGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	aggs := []algebra.Aggregate{
		{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
		{Func: algebra.Count, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "c")},
		{Func: algebra.Sum, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "s"), NullIfEmpty: true},
		{Func: algebra.Min, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "lo"), NullIfEmpty: true},
		{Func: algebra.Max, Arg: expr.Column("r1", "y"), Out: schema.Attr("q", "hi"), NullIfEmpty: true},
	}
	keys := []schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r1", "y")}
	orders := []plan.Order{
		plan.OrderBy(keys...),
		{{Attr: schema.Attr("r1", "y"), Desc: true}, {Attr: schema.Attr("r1", "x")}}, // aligned permutation
	}
	for trial := 0; trial < 20; trial++ {
		db := randDB(rng, 15, 3, "r1")
		for _, inOrder := range orders {
			g := plan.NewStreamAgg(keys, aggs, inOrder, plan.NewScan("r1"))
			in := sortedOn(t, db["r1"], []plan.SortKey(inOrder))
			got, err := StreamAggExec(g, in)
			if err != nil {
				t.Fatalf("trial %d order %s: %v", trial, inOrder, err)
			}
			want, err := plan.NewGroupBy(keys, aggs, plan.NewScan("r1")).Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("trial %d order %s: stream agg differs from hash group by\nstream:\n%s\nhash:\n%s",
					trial, inOrder, got.Format(true), want.Format(true))
			}
			if err := plan.CheckSorted(got, inOrder); err != nil {
				t.Fatalf("trial %d: output not in consumed order: %v", trial, err)
			}
		}
	}
	// Empty input: keyed grouping yields no rows, keyless yields one.
	empty := relation.NewBuilder("r1", "x", "y").Relation()
	g := plan.NewStreamAgg(keys, aggs, orders[0], plan.NewScan("r1"))
	out, err := StreamAggExec(g, empty)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty keyed input: %d rows, err %v", out.Len(), err)
	}
}

// TestOrderOperatorsAcrossEngines runs full plans containing
// MergeJoin and StreamAgg (with enforcer sorts establishing their
// input orders, so Validate passes) through Run, RunInstrumented and
// RunParallel at several worker counts: all engines must agree with
// the reference evaluation as multisets, and the per-operator
// counters must move.
func TestOrderOperatorsAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(414))
	sortX := func(rel string) plan.Node {
		return plan.NewSortOrigin(ascKey(rel, "x"), -1, plan.NewScan(rel), plan.SortOriginEnforcer)
	}
	mj := plan.NewMergeJoin(plan.LeftJoin, eqX("r1", "r2"),
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]bool{false}, sortX("r1"), sortX("r2"))
	agg := plan.NewStreamAgg(
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		plan.OrderBy(schema.Attr("r1", "x")),
		plan.NewSortOrigin(ascKey("r1", "x"), -1, mj, plan.SortOriginEnforcer))
	plans := []plan.Node{mj, agg}

	before := obs.Default().Snapshot().Counters
	for trial := 0; trial < 8; trial++ {
		db := randDB(rng, 10, 3, "r1", "r2")
		for pi, p := range plans {
			if err := plan.Validate(p, db); err != nil {
				t.Fatalf("plan %d fails validation: %v", pi, err)
			}
			want, err := p.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(p, db)
			if err != nil {
				t.Fatalf("plan %d: Run: %v", pi, err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("plan %d trial %d: Run differs from reference", pi, trial)
			}
			reg := obs.NewRegistry()
			inst, _, err := RunInstrumented(p, db, reg)
			if err != nil {
				t.Fatalf("plan %d: RunInstrumented: %v", pi, err)
			}
			if !inst.EqualAsMultisets(want) {
				t.Fatalf("plan %d trial %d: RunInstrumented differs", pi, trial)
			}
			for _, workers := range []int{1, 2, 4} {
				par, err := RunParallel(p, db, workers)
				if err != nil {
					t.Fatalf("plan %d workers %d: %v", pi, workers, err)
				}
				if !par.EqualAsMultisets(want) {
					t.Fatalf("plan %d trial %d workers %d: RunParallel differs", pi, trial, workers)
				}
			}
		}
	}
	after := obs.Default().Snapshot().Counters
	if after["exec.merge.runs"] <= before["exec.merge.runs"] {
		t.Error("exec.merge.runs did not move")
	}
	if after["exec.streamagg.runs"] <= before["exec.streamagg.runs"] {
		t.Error("exec.streamagg.runs did not move")
	}
}

// TestMergeJoinRejectsUnsorted: feeding the operators input that
// violates their claimed order must fail with ErrUnsorted, never
// silently drop or duplicate rows.
func TestMergeJoinRejectsUnsorted(t *testing.T) {
	unsorted := func(name string) *relation.Relation {
		return relation.NewBuilder(name, "x", "y").
			Row(value.NewInt(3), value.NewInt(0)).
			Row(value.NewInt(1), value.NewInt(1)).
			Row(value.NewInt(2), value.NewInt(2)).
			Relation()
	}
	sorted := func(name string) *relation.Relation {
		return relation.NewBuilder(name, "x", "y").
			Row(value.NewInt(1), value.NewInt(0)).
			Row(value.NewInt(2), value.NewInt(1)).
			Relation()
	}
	m := mergeOn(plan.LeftJoin, eqX("r1", "r2"), "r1", "r2", false)
	if _, err := MergeJoinExec(m, unsorted("r1"), sorted("r2")); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted left: err = %v, want ErrUnsorted", err)
	}
	if _, err := MergeJoinExec(m, sorted("r1"), unsorted("r2")); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted right: err = %v, want ErrUnsorted", err)
	}
	g := plan.NewStreamAgg(
		[]schema.Attribute{schema.Attr("r1", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "n")}},
		plan.OrderBy(schema.Attr("r1", "x")), plan.NewScan("r1"))
	if _, err := StreamAggExec(g, unsorted("r1")); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted agg input: err = %v, want ErrUnsorted", err)
	}
}
