// Package executor evaluates logical plans with physical operators:
// hash joins for equi-predicates (with residual evaluation and
// preserved-side padding for outer joins), hash-based generalized
// selection and aggregation, and nested loops as the general
// fallback. Results are bit-identical (as sets) to the reference
// semantics of plan.Node.Eval, which the package tests verify; the
// benchmarks use this executor so that measured plan-cost shapes
// reflect realistic engines rather than O(n·m) reference loops.
package executor

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// execBatchRows is the join probe's guard granularity: cancellation,
// fault points and row/byte charges are checked once per this many
// probe-side tuples, so governance costs a modulus per tuple and the
// response latency to a trip is bounded by one batch.
const execBatchRows = 1024

// Run executes the plan against db.
func Run(n plan.Node, db plan.Database) (*relation.Relation, error) {
	return run(n, db, nil, nil)
}

// RunGuarded is Run under resource governance: the budget's
// cancellation and row/byte limits are checked at per-operator and
// per-batch boundaries (surfacing guard.ErrCancelled / ErrBudget),
// and a panic anywhere in the execution converts to a
// *guard.PanicError carrying the plan fingerprint instead of
// unwinding into the caller.
func RunGuarded(n plan.Node, db plan.Database, b *guard.Budget) (out *relation.Relation, err error) {
	phase := "execute"
	defer guard.RecoverAs(&err, &phase, plan.Key(n), nil)
	return run(n, db, b, nil)
}

// run is the guarded recursion shared by Run and RunGuarded. Each
// operator checks the budget on entry (one pointer comparison when
// unbudgeted); joins charge their output incrementally inside the
// probe loops, every other materializing operator charges its full
// output here once computed.
func run(n plan.Node, db plan.Database, b *guard.Budget, a *Adapt) (*relation.Relation, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	out, err := runNode(n, db, b, a)
	if err != nil {
		return nil, err
	}
	if err := guard.Hit(guard.PointExecOperator); err != nil {
		return nil, err
	}
	switch n.(type) {
	case *plan.Scan, *materialized, *plan.Join, *plan.MGOJNode, *plan.MergeJoin, *plan.StreamAgg:
		// Base inputs are not intermediate state; joins and the
		// order-consuming operators have already charged per batch.
	default:
		if err := b.ChargeOut(out.Len(), out.Schema().Len()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runNode(n plan.Node, db plan.Database, b *guard.Budget, a *Adapt) (*relation.Relation, error) {
	switch m := n.(type) {
	case *plan.Scan:
		return m.Eval(db)
	case *materialized:
		return m.rel, nil
	case *plan.Select:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		return algebra.Select(m.Pred, in), nil
	case *plan.Project:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		return in.Project(m.Attrs, m.Distinct), nil
	case *plan.GroupBy:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		return algebra.GroupProject(m.Keys, m.Aggs, in), nil
	case *plan.Sort:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		return plan.SortRows(in, m.Keys, m.Limit)
	case *plan.GenSel:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		specs := make([]map[string]bool, len(m.Preserved))
		for i, s := range m.Preserved {
			specs[i] = s.Set()
		}
		return algebra.GenSelect(m.Pred, specs, in)
	case *plan.Join:
		l, err := run(m.L, db, b, a)
		if err != nil {
			return nil, err
		}
		r, err := run(m.R, db, b, a)
		if err != nil {
			return nil, err
		}
		return joinExecProbe(m.Kind, m.Pred, l, r, nil, b, a)
	case *plan.MGOJNode:
		l, err := run(m.L, db, b, a)
		if err != nil {
			return nil, err
		}
		r, err := run(m.R, db, b, a)
		if err != nil {
			return nil, err
		}
		return mgojExecProbe(m, l, r, nil, b)
	case *plan.MergeJoin:
		l, err := run(m.L, db, b, a)
		if err != nil {
			return nil, err
		}
		r, err := run(m.R, db, b, a)
		if err != nil {
			return nil, err
		}
		return mergeJoinProbe(m, l, r, nil, b)
	case *plan.StreamAgg:
		in, err := run(m.Input, db, b, a)
		if err != nil {
			return nil, err
		}
		return streamAggProbe(m, in, b)
	default:
		return nil, fmt.Errorf("executor: unsupported node %T", n)
	}
}

// equiKey is one hashable equality conjunct l.col = r.col.
type equiKey struct {
	li, ri int // column positions in the left/right schemas
}

// splitEqui partitions pred into hashable equality conjuncts and a
// residual predicate.
func splitEqui(pred expr.Pred, ls, rs *schema.Schema) (keys []equiKey, residual expr.Pred) {
	var rest []expr.Pred
	for _, c := range expr.Conjuncts(pred) {
		cmp, ok := c.(expr.Cmp)
		if !ok || cmp.Op != value.EQ {
			rest = append(rest, c)
			continue
		}
		lc, lok := cmp.L.(expr.Col)
		rc, rok := cmp.R.(expr.Col)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		li, ri := ls.IndexOf(lc.Attr), rs.IndexOf(rc.Attr)
		if li >= 0 && ri >= 0 {
			keys = append(keys, equiKey{li, ri})
			continue
		}
		// Try the mirrored orientation.
		li, ri = ls.IndexOf(rc.Attr), rs.IndexOf(lc.Attr)
		if li >= 0 && ri >= 0 {
			keys = append(keys, equiKey{li, ri})
			continue
		}
		rest = append(rest, c)
	}
	return keys, expr.And(rest...)
}

// fastKey hashes the values at the given positions, or ok=false (no
// match possible) when any is NULL — predicates are null in-tolerant.
// It is the shared allocation-free key helper of every hashing path
// (serial join, partitioned join, iterator join, instrumented runs):
// a thin named wrapper over relation.Tuple.HashOn so all of them
// measurably execute the same code. Bucket hits MUST be confirmed
// with Tuple.EqualOn — hashes collide.
func fastKey(t relation.Tuple, idx []int) (uint64, bool) {
	return t.HashOn(idx)
}

// arenaChunkTuples is how many output tuples one arena slab holds;
// per-worker arenas amortize row allocation to one make per slab.
const arenaChunkTuples = 512

// tupleArena hands out fixed-width tuples carved from chunked slabs.
// Rows from one arena stay reachable as long as the output relation
// does, which is the same lifetime the per-row make had.
type tupleArena struct {
	width  int
	slab   []value.Value
	chunks int
	tuples int
}

func newTupleArena(width int) *tupleArena { return &tupleArena{width: width} }

// next returns an uninitialized tuple of the arena's width, with
// capacity clipped so appends never bleed into neighbouring rows.
func (a *tupleArena) next() relation.Tuple {
	if len(a.slab) < a.width {
		a.slab = make([]value.Value, arenaChunkTuples*a.width)
		a.chunks++
	}
	t := relation.Tuple(a.slab[:a.width:a.width])
	a.slab = a.slab[a.width:]
	a.tuples++
	return t
}

// joinProbe collects the physical counters of one join execution for
// EXPLAIN ANALYZE; a nil probe disables collection (the registry
// fallback accounting always runs).
type joinProbe struct {
	BuildRows     int  // tuples hashed on the build (right) side
	ResidualEvals int  // residual/loop predicate evaluations
	NullPadded    int  // NULL-padded rows emitted for outer kinds
	Collisions    int  // bucket hits rejected by key verification
	Partitions    int  // grace partitions (0 = unpartitioned)
	ArenaChunks   int  // output arena slabs allocated
	NestedLoop    bool // true when no equi conjunct was hashable

	SpillParts      int   // partition files written to disk
	SpillBytes      int64 // bytes written to spill files
	SpillRecursions int   // recursive re-partitionings

	BuildSwapped   bool // adaptive build/probe swap fired pre-probe
	SpillEscalated bool // adaptive escalation to the grace/spill join
}

// flushArenas folds arena totals into the probe and the process-wide
// registry.
func (st *joinProbe) flushArenas(arenas ...*tupleArena) {
	chunks, tuples := 0, 0
	for _, a := range arenas {
		chunks += a.chunks
		tuples += a.tuples
	}
	if st != nil {
		st.ArenaChunks += chunks
	}
	reg := obs.Default()
	reg.Counter("exec.arena.chunks").Add(int64(chunks))
	reg.Counter("exec.arena.tuples").Add(int64(tuples))
}

// JoinExec joins two materialized relations with the given kind and
// predicate, using a hash join when an equality conjunct exists and a
// nested loop otherwise.
func JoinExec(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation) (*relation.Relation, error) {
	return joinExecProbe(kind, pred, l, r, nil, nil, nil)
}

// chargeSince charges the growth of out since *charged against the
// budget's row/byte limits and advances the cursor; the join probe
// calls it at batch boundaries and once at the end, so output is
// charged exactly once.
func chargeSince(b *guard.Budget, out *relation.Relation, charged *int, width int) error {
	d := out.Len() - *charged
	*charged = out.Len()
	return b.ChargeOut(d, width)
}

func joinExecProbe(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, st *joinProbe, b *guard.Budget, a *Adapt) (*relation.Relation, error) {
	ls, rs := l.Schema(), r.Schema()
	out := relation.New(ls.Concat(rs))
	keys, residual := splitEqui(pred, ls, rs)
	if len(keys) == 0 {
		// No hashable equi conjunct: record which predicate forced the
		// quadratic fallback so misclassified equi joins are visible.
		reg := obs.Default()
		reg.Counter("executor.nested_loop_fallback").Inc()
		reg.Counter("executor.nested_loop_fallback[" + pred.String() + "]").Inc()
		if st != nil {
			st.NestedLoop = true
		}
		return nestedLoop(kind, pred, l, r, out, st, b)
	}
	li := make([]int, len(keys))
	ri := make([]int, len(keys))
	for i, k := range keys {
		li[i], ri[i] = k.li, k.ri
	}
	// Mid-query adaptivity, decided before anything is built or
	// probed: swap build/probe sides when the planned build side
	// outgrew its estimate, or escalate to the grace/spill join when
	// the effective build side cannot fit the byte budget's headroom.
	if out, handled, err := adaptJoin(a, kind, pred, residual, li, ri, l, r, st, b); handled {
		return out, err
	}
	// Reserve the build side's modeled resident footprint before
	// materializing the hash table: under a MaxBytes budget an
	// oversized build trips typed here, which is exactly the abort the
	// spilling grace join (spill.go) exists to avoid — it reserves
	// per-partition footprints that fit instead.
	buildRes := estBytes(r.Len(), rs.Len())
	if err := b.ReserveBytes(buildRes); err != nil {
		return nil, err
	}
	defer b.ReleaseBytes(buildRes)
	// Build on the right input, bucketed by 64-bit key hash.
	build := make(map[uint64][]int, r.Len())
	for j, t := range r.Tuples() {
		if h, ok := fastKey(t, ri); ok {
			build[h] = append(build[h], j)
			if st != nil {
				st.BuildRows++
			}
		}
	}
	rightMatched := make([]bool, r.Len())
	nl, nr := ls.Len(), rs.Len()
	env := expr.TupleEnv{Schema: out.Schema()}
	scratch := make(relation.Tuple, nl+nr)
	arena := newTupleArena(nl + nr)
	collisions := 0
	charged := 0
	for i, lt := range l.Tuples() {
		if i%execBatchRows == 0 {
			if err := guard.Hit(guard.PointExecBatch); err != nil {
				return nil, err
			}
			if err := b.Err(); err != nil {
				return nil, err
			}
			if err := chargeSince(b, out, &charged, nl+nr); err != nil {
				return nil, err
			}
		}
		matched := false
		if h, ok := fastKey(lt, li); ok {
			for _, j := range build[h] {
				rt := r.Tuple(j)
				if !lt.EqualOn(rt, li, ri) {
					collisions++
					continue
				}
				copy(scratch, lt)
				copy(scratch[nl:], rt)
				env.Tuple = scratch
				if st != nil {
					st.ResidualEvals++
				}
				if residual.Eval(env).Holds() {
					matched = true
					rightMatched[j] = true
					row := arena.next()
					copy(row, scratch)
					out.Append(row)
				}
			}
		}
		if !matched && (kind == plan.LeftJoin || kind == plan.FullJoin) {
			row := arena.next()
			copy(row, lt)
			for i := nl; i < nl+nr; i++ {
				row[i] = value.Null
			}
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if kind == plan.RightJoin || kind == plan.FullJoin {
		for j, rt := range r.Tuples() {
			if j%execBatchRows == 0 {
				if err := b.Err(); err != nil {
					return nil, err
				}
				if err := chargeSince(b, out, &charged, nl+nr); err != nil {
					return nil, err
				}
			}
			if rightMatched[j] {
				continue
			}
			row := arena.next()
			for i := 0; i < nl; i++ {
				row[i] = value.Null
			}
			copy(row[nl:], rt)
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if st != nil {
		st.Collisions += collisions
	}
	if collisions > 0 {
		obs.Default().Counter("exec.hash.collisions").Add(int64(collisions))
	}
	st.flushArenas(arena)
	if err := chargeSince(b, out, &charged, nl+nr); err != nil {
		return nil, err
	}
	return out, nil
}

// nestedLoop is the fallback join for non-equi predicates.
func nestedLoop(kind plan.JoinKind, pred expr.Pred, l, r *relation.Relation, out *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, error) {
	nl, nr := l.Schema().Len(), r.Schema().Len()
	env := expr.TupleEnv{Schema: out.Schema()}
	scratch := make(relation.Tuple, nl+nr)
	rightMatched := make([]bool, r.Len())
	charged := 0
	for i, lt := range l.Tuples() {
		if i%execBatchRows == 0 {
			if err := guard.Hit(guard.PointExecBatch); err != nil {
				return nil, err
			}
			if err := b.Err(); err != nil {
				return nil, err
			}
			if err := chargeSince(b, out, &charged, nl+nr); err != nil {
				return nil, err
			}
		}
		matched := false
		copy(scratch, lt)
		for j, rt := range r.Tuples() {
			copy(scratch[nl:], rt)
			env.Tuple = scratch
			if st != nil {
				st.ResidualEvals++
			}
			if pred.Eval(env).Holds() {
				matched = true
				rightMatched[j] = true
				row := make(relation.Tuple, nl+nr)
				copy(row, scratch)
				out.Append(row)
			}
		}
		if !matched && (kind == plan.LeftJoin || kind == plan.FullJoin) {
			row := make(relation.Tuple, nl+nr)
			copy(row, lt)
			for i := nl; i < nl+nr; i++ {
				row[i] = value.Null
			}
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if kind == plan.RightJoin || kind == plan.FullJoin {
		for j, rt := range r.Tuples() {
			if rightMatched[j] {
				continue
			}
			row := make(relation.Tuple, nl+nr)
			for i := 0; i < nl; i++ {
				row[i] = value.Null
			}
			copy(row[nl:], rt)
			if st != nil {
				st.NullPadded++
			}
			out.Append(row)
		}
	}
	if err := chargeSince(b, out, &charged, nl+nr); err != nil {
		return nil, err
	}
	return out, nil
}

// mgojExec executes MGOJ as a hash/nested-loop join followed by
// preserved-projection padding, mirroring algebra.MGOJ.
func mgojExec(m *plan.MGOJNode, l, r *relation.Relation) (*relation.Relation, error) {
	return mgojExecProbe(m, l, r, nil, nil)
}

// mgojExecProbe runs MGOJ's inner join non-adaptively: the
// compensation pass re-reads both inputs, so a build/probe swap
// would buy nothing.
func mgojExecProbe(m *plan.MGOJNode, l, r *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, error) {
	join, err := joinExecProbe(plan.InnerJoin, m.Pred, l, r, st, b, nil)
	if err != nil {
		return nil, err
	}
	return mgojCompensate(m, join, l, r, st, b)
}

// mgojCompensate appends MGOJ's preserved-projection padding to an
// already-computed inner join of l and r; shared between the serial
// and the partitioned MGOJ paths. Only the padding rows are charged —
// the join rows were charged as the probe emitted them.
func mgojCompensate(m *plan.MGOJNode, join, l, r *relation.Relation, st *joinProbe, b *guard.Budget) (*relation.Relation, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	s := join.Schema()
	out := relation.New(s)
	for _, t := range join.Tuples() {
		out.Append(t)
	}
	pads := 0
	for _, spec := range m.Preserved {
		attrs := s.AttrsOfRels(spec.Set())
		if len(attrs) == 0 {
			return nil, fmt.Errorf("executor: preserved spec %s resolves to nothing", spec)
		}
		var source *relation.Relation
		switch {
		case containsAll(l.Schema(), attrs):
			source = l
		case containsAll(r.Schema(), attrs):
			source = r
		default:
			// A specification spanning both inputs needs the
			// cross-product's projections, as in Definition 2.1.
			source = algebra.Product(l, r)
		}
		all := source.Project(attrs, true)
		kept := join.Project(attrs, true)
		for _, t := range all.Minus(kept).PadTo(s).Tuples() {
			if !allNull(t) {
				if st != nil {
					st.NullPadded++
				}
				pads++
				out.Append(t)
			}
		}
	}
	if err := b.ChargeOut(pads, s.Len()); err != nil {
		return nil, err
	}
	return out, nil
}

func containsAll(s *schema.Schema, attrs []schema.Attribute) bool {
	for _, a := range attrs {
		if !s.Contains(a) {
			return false
		}
	}
	return true
}

func allNull(t relation.Tuple) bool {
	for _, v := range t {
		if !v.IsNull() {
			return false
		}
	}
	return true
}
