package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
)

// hashFor keeps every test key in one shard so LRU order is
// observable; distinct h values exercise cross-shard independence.
func hashFor(shard uint64) uint64 { return shard }

func build(v string, bytes int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, bytes, nil }
}

func TestDoHitMiss(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()

	e, st, err := c.Do(ctx, "k1", hashFor(0), build("plan1", 100))
	if err != nil || st != Miss || e.Value.(string) != "plan1" {
		t.Fatalf("first access: entry=%v status=%v err=%v", e, st, err)
	}
	e, st, err = c.Do(ctx, "k1", hashFor(0), func() (any, int64, error) {
		t.Fatal("build must not run on a hit")
		return nil, 0, nil
	})
	if err != nil || st != Hit || e.Value.(string) != "plan1" {
		t.Fatalf("second access: entry=%v status=%v err=%v", e, st, err)
	}

	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Entries != 1 || stats.Bytes != 100 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, ok := c.Lookup("k1", hashFor(0)); !ok {
		t.Fatal("Lookup missed a cached key")
	}
	if _, ok := c.Lookup("k2", hashFor(0)); ok {
		t.Fatal("Lookup invented an entry")
	}
}

// TestEvictionLRU: shard budget is maxBytes/16; exceeding it evicts
// from the LRU tail, and a recently touched entry survives over a
// stale one.
func TestEvictionLRU(t *testing.T) {
	// 1600 total → 100 bytes per shard; 40-byte entries → 2 fit.
	c := New(1600, obs.NewRegistry())
	ctx := context.Background()

	c.Do(ctx, "a", hashFor(0), build("A", 40))
	c.Do(ctx, "b", hashFor(0), build("B", 40))
	c.Do(ctx, "a", hashFor(0), build("", 0)) // touch a: now b is LRU
	c.Do(ctx, "c", hashFor(0), build("C", 40))

	if _, ok := c.Lookup("b", hashFor(0)); ok {
		t.Fatal("b was LRU and should have been evicted")
	}
	if _, ok := c.Lookup("a", hashFor(0)); !ok {
		t.Fatal("a was touched and must survive")
	}
	if _, ok := c.Lookup("c", hashFor(0)); !ok {
		t.Fatal("c is newest and must survive")
	}
	st := c.Stats()
	if st.Evicted != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOversizedEntryStillServes: an entry larger than its whole shard
// budget evicts everything else but is itself retained — one giant
// plan degrades capacity, never availability.
func TestOversizedEntryStillServes(t *testing.T) {
	c := New(1600, obs.NewRegistry()) // 100 bytes/shard
	ctx := context.Background()
	c.Do(ctx, "small", hashFor(0), build("s", 40))
	c.Do(ctx, "huge", hashFor(0), build("h", 500))
	if _, ok := c.Lookup("huge", hashFor(0)); !ok {
		t.Fatal("oversized newest entry must be kept")
	}
	if _, ok := c.Lookup("small", hashFor(0)); ok {
		t.Fatal("small entry should have been evicted to make room")
	}
	if got := c.Bytes(); got != 500 {
		t.Fatalf("Bytes = %d, want 500", got)
	}
}

// TestSingleflight: N concurrent misses on one key run the build
// exactly once; everyone shares the result.
func TestSingleflight(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()

	var builds atomic.Int64
	release := make(chan struct{})
	slow := func() (any, int64, error) {
		builds.Add(1)
		<-release
		return "built", 64, nil
	}

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]Status, n)
	errs := make([]error, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, st, err := c.Do(ctx, "k", hashFor(3), slow)
			statuses[i], errs[i] = st, err
			if e != nil {
				vals[i] = e.Value
			}
		}(i)
	}
	// Let every goroutine reach the flight before releasing the build.
	deadline := time.After(5 * time.Second)
	for c.Stats().Waits < n-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d waiters joined the flight", c.Stats().Waits)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	miss, shared := 0, 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if vals[i] != "built" {
			t.Fatalf("goroutine %d got %v", i, vals[i])
		}
		switch statuses[i] {
		case Miss:
			miss++
		case Shared:
			shared++
		default:
			t.Fatalf("goroutine %d: status %v", i, statuses[i])
		}
	}
	if miss != 1 || shared != n-1 {
		t.Fatalf("miss=%d shared=%d, want 1 and %d", miss, shared, n-1)
	}
}

// TestSingleflightWaiterCancel: a waiter whose context expires leaves
// with a typed cancellation; the build itself and other waiters are
// unaffected.
func TestSingleflightWaiterCancel(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	release := make(chan struct{})
	go c.Do(context.Background(), "k", hashFor(0), func() (any, int64, error) {
		<-release
		return "v", 8, nil
	})
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := c.Do(ctx, "k", hashFor(0), build("other", 8))
	if st != Shared || !guard.IsCancelled(err) {
		t.Fatalf("cancelled waiter: status=%v err=%v", st, err)
	}
	close(release)

	// The original build still completes and serves later hits.
	for c.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	if e, st, err := c.Do(context.Background(), "k", hashFor(0), build("x", 8)); err != nil || st != Hit || e.Value != "v" {
		t.Fatalf("after cancel: entry=%v status=%v err=%v", e, st, err)
	}
}

// TestBuildErrorNotCached: a failing build reports its error to the
// caller (and any waiters) but caches nothing — the next request
// retries and can succeed.
func TestBuildErrorNotCached(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	boom := errors.New("optimizer exploded")

	if _, st, err := c.Do(ctx, "k", hashFor(0), func() (any, int64, error) {
		return nil, 0, boom
	}); st != Miss || !errors.Is(err, boom) {
		t.Fatalf("status=%v err=%v", st, err)
	}
	if c.Len() != 0 {
		t.Fatal("error outcome must not be cached")
	}
	if e, st, err := c.Do(ctx, "k", hashFor(0), build("ok", 8)); err != nil || st != Miss || e.Value != "ok" {
		t.Fatalf("retry: entry=%v status=%v err=%v", e, st, err)
	}
}

// TestBuildPanicContained: a panicking build resolves the flight with
// a typed panic error; neither the caller nor any waiter wedges, and
// the key remains buildable.
func TestBuildPanicContained(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()

	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", hashFor(0), func() (any, int64, error) {
			<-release
			panic("plan construction bug")
		})
		done <- err
	}()
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", hashFor(0), build("x", 8))
		waiter <- err
	}()
	for c.Stats().Waits == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i, ch := range []chan error{done, waiter} {
		select {
		case err := <-ch:
			if !guard.IsPanic(err) {
				t.Fatalf("outcome %d: want contained panic, got %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("outcome %d: wedged after build panic", i)
		}
	}
	if e, st, err := c.Do(ctx, "k", hashFor(0), build("ok", 8)); err != nil || st != Miss || e.Value != "ok" {
		t.Fatalf("after panic: entry=%v status=%v err=%v", e, st, err)
	}
}

// TestFaultLookup / TestFaultInsert cover the fault matrix for the two
// plancache points: injected errors and panics surface as typed errors
// and never wedge later requests on the same key.
func TestFaultLookup(t *testing.T) {
	defer guard.Clear()
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()

	guard.InjectError(guard.PointCacheLookup)
	if _, _, err := c.Do(ctx, "k", hashFor(0), build("v", 8)); !guard.IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	guard.Clear()
	if _, st, err := c.Do(ctx, "k", hashFor(0), build("v", 8)); err != nil || st != Miss {
		t.Fatalf("after fault cleared: status=%v err=%v", st, err)
	}
}

func TestFaultInsert(t *testing.T) {
	defer guard.Clear()
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()

	guard.InjectError(guard.PointCacheInsert)
	if _, _, err := c.Do(ctx, "k", hashFor(0), build("v", 8)); !guard.IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed insert must cache nothing")
	}

	guard.InjectPanic(guard.PointCacheInsert)
	if _, _, err := c.Do(ctx, "k", hashFor(0), build("v", 8)); !guard.IsPanic(err) {
		t.Fatalf("want contained panic, got %v", err)
	}

	guard.Clear()
	if e, st, err := c.Do(ctx, "k", hashFor(0), build("v", 8)); err != nil || st != Miss || e.Value != "v" {
		t.Fatalf("recovery after faults: entry=%v status=%v err=%v", e, st, err)
	}
}

// TestConcurrentMixedKeys drives many goroutines over overlapping keys
// under -race: counters stay consistent and every successful access
// yields the value its key's build produced.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(1600, obs.NewRegistry()) // tiny: evictions happen constantly
	ctx := context.Background()
	const goroutines = 12
	const rounds = 200

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("key-%d", (g+r)%7)
				want := "plan:" + k
				e, _, err := c.Do(ctx, k, hashFor(uint64((g+r)%7)), build(want, 30))
				if err != nil {
					t.Error(err)
					return
				}
				if e.Value.(string) != want {
					t.Errorf("key %s yielded %v", k, e.Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no accesses recorded")
	}
	if got := c.Bytes(); got > 1600 {
		t.Fatalf("byte accounting drifted above budget: %d", got)
	}
}
