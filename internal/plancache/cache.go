// Package plancache is a sharded, byte-bounded, concurrent cache of
// optimized plans keyed by the canonical fingerprint (plan.Key) of a
// parameterized query template. It is the serving layer's amortizer:
// the optimizer runs once per distinct template, and every later
// request with the same shape binds its constants into the cached
// winner and goes straight to execution.
//
// Keying is deliberately syntactic. Two queries share an entry exactly
// when their parameterized lowered trees render to the same canonical
// key; semantic equivalence (same answers, different syntax) is
// undecidable in general and is not attempted. The full key string is
// compared on lookup — the 64-bit fingerprint hash only picks the
// shard — so hash collisions cannot alias plans.
//
// Concurrency: each shard is an independent mutex-protected LRU, and a
// per-shard singleflight table collapses concurrent misses on the same
// key into one optimizer run. The build function runs outside the
// shard lock, so a slow optimization never blocks hits on other keys
// in the same shard, and its completion signal is delivered via a
// deferred channel close — an injected error or panic in the build
// path releases all waiters rather than wedging them.
package plancache

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/guard"
	"repro/internal/obs"
)

// Status classifies the outcome of one cache access.
type Status uint8

// The access outcomes.
const (
	// Hit: the key was cached; no optimization ran.
	Hit Status = iota
	// Miss: this caller ran the build and (on success) inserted.
	Miss
	// Shared: another caller was already building the key; this one
	// waited and shares its result without running the build.
	Shared
)

// String returns the status label used in metrics and logs.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Entry is one cached plan. The value and cost are immutable after
// insertion; callers must not mutate Value (plans are immutable trees,
// so binding parameters builds new spines and never writes through).
type Entry struct {
	// Key is the full canonical template key (plan.Key of the
	// parameterized tree).
	Key string
	// Hash is the template fingerprint used for shard selection.
	Hash uint64
	// Value is the cached artifact — for the query service, the
	// optimized parameterized plan plus binding metadata.
	Value any
	// Bytes is the caller-estimated footprint charged against the
	// cache's byte budget.
	Bytes int64
}

// Cache is the sharded plan cache. The zero value is not usable; call
// New.
type Cache struct {
	shards [numShards]shard
	reg    *obs.Registry

	hits      *obs.Counter
	misses    *obs.Counter
	evicts    *obs.Counter
	waits     *obs.Counter
	refreshes *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
}

const numShards = 16

// New builds a cache bounded to roughly maxBytes across all shards
// (each shard holds at most maxBytes/16, and always retains its most
// recent entry even when that entry alone exceeds the shard budget, so
// an oversized plan still serves instead of thrashing). reg receives
// the plancache.* series and may be nil (obs.Default()).
func New(maxBytes int64, reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.Default()
	}
	c := &Cache{
		reg:       reg,
		hits:      reg.Counter("plancache.hits"),
		misses:    reg.Counter("plancache.misses"),
		evicts:    reg.Counter("plancache.evictions"),
		waits:     reg.Counter("plancache.singleflight_waits"),
		refreshes: reg.Counter("plancache.refreshes"),
		bytes:     reg.Gauge("plancache.bytes"),
		entries:   reg.Gauge("plancache.entries"),
	}
	perShard := maxBytes / numShards
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

// shard is one lock domain: an LRU list of entries plus the in-flight
// build table.
type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	flights  map[string]*flight
}

// lruNode is an intrusive doubly-linked LRU element.
type lruNode struct {
	entry      *Entry
	prev, next *lruNode
}

// flight is one in-progress build. done is closed (exactly once, via
// defer) when the build finishes, after entry/err are set.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

func (s *shard) init(maxBytes int64) {
	s.maxBytes = maxBytes
	s.entries = make(map[string]*lruNode)
	s.flights = make(map[string]*flight)
}

// Do returns the entry for key, building it at most once across
// concurrent callers. On a hit the cached entry returns immediately.
// On a miss this caller runs build (outside any lock) and inserts the
// result; concurrent callers for the same key block until the build
// finishes (or their ctx expires) and share its outcome — including
// its error, which is returned to every waiter but never cached, so
// the next request retries.
func (c *Cache) Do(ctx context.Context, key string, hash uint64, build func() (any, int64, error)) (*Entry, Status, error) {
	// Safely contains an injected panic at the lookup point into a
	// typed error — the fault matrix requires every cache fault to
	// surface as a classified client error, never a crash.
	if err := guard.Safely("plancache.lookup", key, c.reg, func() error {
		return guard.Hit(guard.PointCacheLookup)
	}); err != nil {
		return nil, Miss, err
	}
	s := &c.shards[hash%numShards]

	s.mu.Lock()
	if n, ok := s.entries[key]; ok {
		s.moveToFront(n)
		s.mu.Unlock()
		c.hits.Inc()
		return n.entry, Hit, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		c.waits.Inc()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, Shared, f.err
			}
			c.hits.Inc()
			return f.entry, Shared, nil
		case <-ctx.Done():
			return nil, Shared, fmt.Errorf("%w: %v", guard.ErrCancelled, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	c.misses.Inc()
	var entry *Entry
	var err error
	// Resolve the flight no matter how the build ends: the deferred
	// close runs even if this frame unwinds, so waiters are never
	// wedged by a failing or panicking build.
	func() {
		defer func() {
			f.entry, f.err = entry, err
			close(f.done)
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
		}()
		entry, err = c.runBuild(s, key, hash, build)
	}()
	if err != nil {
		return nil, Miss, err
	}
	return entry, Miss, nil
}

// Refresh rebuilds the entry for key in place — the drift-triggered
// re-planning path. Unlike Do it never returns a stale cached value:
// it runs build (under the same per-shard singleflight, so concurrent
// refreshes and misses of the key collapse into one optimizer run)
// and replaces the entry on success. The old entry keeps serving Do
// callers throughout the rebuild and survives a build error or panic
// untouched — a failed refresh can wedge neither the slot nor the
// waiters, and never leaves a poisoned entry behind.
func (c *Cache) Refresh(ctx context.Context, key string, hash uint64, build func() (any, int64, error)) (*Entry, error) {
	if err := guard.Safely("plancache.replan", key, c.reg, func() error {
		return guard.Hit(guard.PointCacheReplan)
	}); err != nil {
		return nil, err
	}
	s := &c.shards[hash%numShards]

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		// Someone is already building this key (a racing refresh, or a
		// miss after an eviction). Share its outcome instead of
		// stacking a second optimizer run.
		s.mu.Unlock()
		c.waits.Inc()
		select {
		case <-f.done:
			return f.entry, f.err
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", guard.ErrCancelled, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	c.refreshes.Inc()
	var entry *Entry
	var err error
	func() {
		defer func() {
			f.entry, f.err = entry, err
			close(f.done)
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
		}()
		entry, err = c.runBuild(s, key, hash, build)
	}()
	return entry, err
}

// runBuild executes the build outside the shard lock and inserts the
// result. A panic inside build is contained into a typed error
// (guard.PanicError via Safely) so the flight always resolves with a
// classified outcome.
func (c *Cache) runBuild(s *shard, key string, hash uint64, build func() (any, int64, error)) (*Entry, error) {
	var entry *Entry
	err := guard.Safely("plancache.build", key, c.reg, func() error {
		value, bytes, err := build()
		if err != nil {
			return err
		}
		if err := guard.Hit(guard.PointCacheInsert); err != nil {
			return err
		}
		entry = &Entry{Key: key, Hash: hash, Value: value, Bytes: bytes}
		c.insert(s, entry)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return entry, nil
}

// insert adds the entry at the LRU front and evicts from the tail
// until the shard fits its byte budget (always keeping the newest
// entry).
func (c *Cache) insert(s *shard, e *Entry) {
	s.mu.Lock()
	if old, ok := s.entries[e.Key]; ok {
		// A racing build of the same key already inserted (possible
		// when a build errors, the flight retires, and two fresh
		// requests race). Replace, keeping byte accounting straight.
		s.bytes -= old.entry.Bytes
		old.entry = e
		s.bytes += e.Bytes
		s.moveToFront(old)
		s.settleLocked(old)
		s.mu.Unlock()
		c.publishSize()
		return
	}
	n := &lruNode{entry: e}
	s.entries[e.Key] = n
	s.pushFront(n)
	s.bytes += e.Bytes
	evicted := s.settleLocked(n)
	s.mu.Unlock()
	c.evicts.Add(int64(evicted))
	c.publishSize()
}

// settleLocked evicts least-recently-used entries until the shard is
// within budget, never evicting keep. Returns the eviction count.
func (s *shard) settleLocked(keep *lruNode) int {
	evicted := 0
	for s.bytes > s.maxBytes && s.tail != nil && s.tail != keep {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.entry.Key)
		s.bytes -= victim.entry.Bytes
		evicted++
	}
	return evicted
}

func (s *shard) pushFront(n *lruNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shard) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard) moveToFront(n *lruNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// publishSize refreshes the size gauges from all shards.
func (c *Cache) publishSize() {
	var bytes, entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		bytes += s.bytes
		entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	c.bytes.Set(bytes)
	c.entries.Set(entries)
}

// Lookup returns the cached entry without building on a miss.
func (c *Cache) Lookup(key string, hash uint64) (*Entry, bool) {
	s := &c.shards[hash%numShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.entries[key]; ok {
		s.moveToFront(n)
		return n.entry, true
	}
	return nil, false
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Bytes returns the cache's current charged footprint.
func (c *Cache) Bytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Entries snapshots every cached entry across all shards, sorted by
// key — the /debug/cache detail listing. The returned slice is fresh
// but the *Entry values are the live (immutable) cache entries.
func (c *Cache) Entries() []*Entry {
	var out []*Entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, n := range s.entries {
			out = append(out, n.entry)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats is a point-in-time summary for /debug/cache.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evicted   int64 `json:"evictions"`
	Waits     int64 `json:"singleflight_waits"`
	Refreshes int64 `json:"refreshes"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:   c.Len(),
		Bytes:     c.Bytes(),
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evicted:   c.evicts.Value(),
		Waits:     c.waits.Value(),
		Refreshes: c.refreshes.Value(),
	}
}
