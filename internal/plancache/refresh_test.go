package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/guard"
	"repro/internal/obs"
)

// TestRefreshReplaces: Refresh rebuilds an existing entry in place —
// later Do calls see the new value, byte accounting stays straight,
// and the refresh counter moves.
func TestRefreshReplaces(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(1<<20, reg)
	ctx := context.Background()

	e, st, err := c.Do(ctx, "k", 7, func() (any, int64, error) { return "v1", 100, nil })
	if err != nil || st != Miss || e.Value != "v1" {
		t.Fatalf("seed Do = %v %v %v", e, st, err)
	}
	e2, err := c.Refresh(ctx, "k", 7, func() (any, int64, error) { return "v2", 250, nil })
	if err != nil || e2.Value != "v2" {
		t.Fatalf("Refresh = %v %v", e2, err)
	}
	e3, st, err := c.Do(ctx, "k", 7, func() (any, int64, error) {
		t.Fatal("Do after refresh must hit, not rebuild")
		return nil, 0, nil
	})
	if err != nil || st != Hit || e3.Value != "v2" {
		t.Fatalf("Do after refresh = %v %v %v", e3, st, err)
	}
	if got := c.Bytes(); got != 250 {
		t.Fatalf("Bytes = %d, want 250 (old footprint must be released)", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got := c.Stats().Refreshes; got != 1 {
		t.Fatalf("Stats().Refreshes = %d, want 1", got)
	}
}

// TestRefreshErrorKeepsOld: a failing rebuild leaves the previous
// entry serving — the replan path may fail, but it may never cost the
// cache a working plan.
func TestRefreshErrorKeepsOld(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", 3, func() (any, int64, error) { return "good", 10, nil }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("optimizer exploded")
	if _, err := c.Refresh(ctx, "k", 3, func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Refresh err = %v, want %v", err, boom)
	}
	e, st, err := c.Do(ctx, "k", 3, func() (any, int64, error) {
		t.Fatal("old entry should still serve")
		return nil, 0, nil
	})
	if err != nil || st != Hit || e.Value != "good" {
		t.Fatalf("Do after failed refresh = %v %v %v", e, st, err)
	}
}

// TestRefreshPanicContained: a panicking rebuild surfaces as a typed
// *guard.PanicError, resolves the singleflight, and keeps the old
// entry.
func TestRefreshPanicContained(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", 3, func() (any, int64, error) { return "good", 10, nil }); err != nil {
		t.Fatal(err)
	}
	_, err := c.Refresh(ctx, "k", 3, func() (any, int64, error) { panic("mid-replan") })
	if !guard.IsPanic(err) {
		t.Fatalf("Refresh err = %v, want contained panic", err)
	}
	if e, ok := c.Lookup("k", 3); !ok || e.Value != "good" {
		t.Fatalf("old entry lost after panicking refresh: %v %v", e, ok)
	}
	// The flight must be retired: the next refresh runs.
	if e, err := c.Refresh(ctx, "k", 3, func() (any, int64, error) { return "v2", 10, nil }); err != nil || e.Value != "v2" {
		t.Fatalf("refresh after contained panic = %v %v", e, err)
	}
}

// TestRefreshSingleflight: N concurrent refreshes of one key run the
// build exactly once and all share the outcome; a concurrent Do for
// the same key shares the in-flight build instead of racing it.
func TestRefreshSingleflight(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", 3, func() (any, int64, error) { return "v1", 10, nil }); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	release := make(chan struct{})
	build := func() (any, int64, error) {
		builds.Add(1)
		<-release
		return "v2", 10, nil
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]any, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			e, err := c.Refresh(ctx, "k", 3, build)
			errs[i] = err
			if e != nil {
				vals[i] = e.Value
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != "v2" {
			t.Fatalf("refresher %d: %v %v", i, vals[i], errs[i])
		}
	}
}

// TestRefreshFault: the plancache.replan guard point, armed to error
// and to panic, fails the refresh with a typed error while the cached
// entry keeps serving.
func TestRefreshFault(t *testing.T) {
	defer guard.Clear()
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", 3, func() (any, int64, error) { return "good", 10, nil }); err != nil {
		t.Fatal(err)
	}
	guard.InjectError(guard.PointCacheReplan)
	if _, err := c.Refresh(ctx, "k", 3, func() (any, int64, error) {
		t.Fatal("build must not run under an injected replan fault")
		return nil, 0, nil
	}); !guard.IsInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	guard.Clear()
	guard.InjectPanic(guard.PointCacheReplan)
	if _, err := c.Refresh(ctx, "k", 3, func() (any, int64, error) { return nil, 0, nil }); !guard.IsPanic(err) {
		t.Fatalf("err = %v, want contained panic", err)
	}
	guard.Clear()
	if e, ok := c.Lookup("k", 3); !ok || e.Value != "good" {
		t.Fatalf("entry lost under replan faults: %v %v", e, ok)
	}
}

// TestEntriesSnapshot: Entries lists every cached entry sorted by key.
func TestEntriesSnapshot(t *testing.T) {
	c := New(1<<20, obs.NewRegistry())
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(ctx, key, uint64(i), func() (any, int64, error) { return i, 10, nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Entries()
	if len(got) != 5 {
		t.Fatalf("Entries len = %d, want 5", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("k%d", i); e.Key != want {
			t.Fatalf("Entries[%d].Key = %q, want %q (sorted)", i, e.Key, want)
		}
	}
}
