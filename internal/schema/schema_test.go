package schema

import (
	"strings"
	"testing"
)

func TestBaseSchema(t *testing.T) {
	s := Base("r1", "a", "b")
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3 (a, b, rid)", s.Len())
	}
	if !s.Contains(Attr("r1", "a")) || !s.Contains(RID("r1")) {
		t.Error("missing attributes")
	}
	if s.Contains(Attr("r1", "z")) || s.Contains(Attr("r2", "a")) {
		t.Error("phantom attributes")
	}
	if got := s.At(2); !got.Virtual || got.Col != "#rid" {
		t.Errorf("rid attr = %v", got)
	}
	if s.IndexOf(Attr("r1", "b")) != 1 {
		t.Errorf("IndexOf b = %d", s.IndexOf(Attr("r1", "b")))
	}
	if s.IndexOf(Attr("r9", "b")) != -1 {
		t.Error("IndexOf of absent must be -1")
	}
}

func TestDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute must panic")
		}
	}()
	New(Attr("r", "a"), Attr("r", "a"))
}

func TestConcatDisjoint(t *testing.T) {
	a := Base("r1", "a")
	b := Base("r2", "a")
	if !a.Disjoint(b) {
		t.Error("r1/r2 schemas must be disjoint")
	}
	c := a.Concat(b)
	if c.Len() != 4 {
		t.Errorf("concat len = %d", c.Len())
	}
	if !c.ContainsAll(a) || !c.ContainsAll(b) {
		t.Error("concat must contain both inputs")
	}
	if a.Disjoint(a) {
		t.Error("a schema is not disjoint from itself")
	}
}

func TestConcatOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping concat must panic")
		}
	}()
	a := Base("r1", "a")
	a.Concat(a)
}

func TestProject(t *testing.T) {
	s := Base("r1", "a", "b", "c")
	p := s.Project(Attr("r1", "c"), Attr("r1", "a"))
	if p.Len() != 2 || p.At(0) != Attr("r1", "c") {
		t.Errorf("project = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("projecting a missing attribute must panic")
		}
	}()
	s.Project(Attr("r9", "a"))
}

func TestRelsAndAttrsOfRels(t *testing.T) {
	s := Base("r1", "a").Concat(Base("r2", "b"))
	if got := s.Rels(); len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Errorf("rels = %v", got)
	}
	attrs := s.AttrsOfRels(map[string]bool{"r2": true})
	if len(attrs) != 2 { // b + rid
		t.Errorf("attrs of r2 = %v", attrs)
	}
	for _, a := range attrs {
		if a.Rel != "r2" {
			t.Errorf("wrong rel in %v", a)
		}
	}
}

func TestEqualAndString(t *testing.T) {
	a := Base("r1", "a", "b")
	b := Base("r1", "a", "b")
	if !a.Equal(b) {
		t.Error("identical schemas must be equal")
	}
	c := New(Attr("r1", "b"), Attr("r1", "a"))
	if a.Equal(c) {
		t.Error("order matters for Equal")
	}
	if !strings.Contains(a.String(), "r1.a") {
		t.Errorf("String = %q", a.String())
	}
	if Attr("r1", "a").String() != "r1.a" {
		t.Error("attribute String wrong")
	}
}

func TestAttrsCopy(t *testing.T) {
	s := Base("r1", "a")
	attrs := s.Attrs()
	attrs[0].Col = "mutated"
	if s.At(0).Col == "mutated" {
		t.Error("Attrs must return a copy")
	}
}
