package sql

import (
	"fmt"
	"strconv"

	"repro/internal/value"
)

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches; text "" matches any
// token of the kind.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(words ...string) bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	for _, w := range words {
		if t.text == w {
			return true
		}
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.atKeyword(word) {
		return fmt.Errorf("sql: expected %q, got %s", word, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.at(tokSymbol, sym) {
		return fmt.Errorf("sql: expected %q, got %s", sym, p.peek())
	}
	p.next()
	return nil
}

var reservedAfterItem = map[string]bool{
	"from": true, "where": true, "group": true, "having": true,
	"on": true, "join": true, "left": true, "right": true, "full": true,
	"inner": true, "outer": true, "and": true, "as": true, "order": true,
	"or": true, "not": true, "limit": true, "between": true, "in": true,
	"desc": true, "asc": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.atKeyword("distinct") {
		p.next()
		stmt.Distinct = true
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.at(tokSymbol, ",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(stmt); err != nil {
		return nil, err
	}
	if p.atKeyword("where") {
		p.next()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if p.at(tokSymbol, ",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("having") {
		p.next()
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.atKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.atKeyword("desc") {
				p.next()
				item.Desc = true
			} else if p.atKeyword("asc") {
				p.next()
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.at(tokSymbol, ",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("limit") {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected a number after LIMIT, got %s", t)
		}
		n, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = int(n)
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.at(tokSymbol, "*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("as") {
		p.next()
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS, got %s", t)
		}
		item.As = t.text
	} else if p.at(tokIdent, "") && !reservedAfterItem[p.peek().text] {
		item.As = p.next().text
	}
	return item, nil
}

func (p *parser) parseFrom(stmt *SelectStmt) error {
	first, err := p.parseFromItem()
	if err != nil {
		return err
	}
	stmt.From = append(stmt.From, first)
	for {
		switch {
		case p.at(tokSymbol, ","):
			p.next()
			item, err := p.parseFromItem()
			if err != nil {
				return err
			}
			stmt.From = append(stmt.From, item)
		case p.atKeyword("join", "inner", "left", "right", "full", "leftouterjoin", "rightouterjoin", "fullouterjoin"):
			kind := "join"
			switch p.peek().text {
			case "inner":
				p.next()
				if err := p.expectKeyword("join"); err != nil {
					return err
				}
			case "join":
				p.next()
			case "left", "right", "full":
				kind = p.peek().text
				p.next()
				if p.atKeyword("outer") {
					p.next()
				}
				if err := p.expectKeyword("join"); err != nil {
					return err
				}
			case "leftouterjoin":
				kind = "left"
				p.next()
			case "rightouterjoin":
				kind = "right"
				p.next()
			case "fullouterjoin":
				kind = "full"
				p.next()
			}
			item, err := p.parseFromItem()
			if err != nil {
				return err
			}
			if err := p.expectKeyword("on"); err != nil {
				return err
			}
			on, err := p.parseExpr()
			if err != nil {
				return err
			}
			item.Join = JoinSpec{Kind: kind, On: on}
			stmt.From = append(stmt.From, item)
		default:
			return nil
		}
	}
}

func (p *parser) parseFromItem() (FromItem, error) {
	var item FromItem
	if p.at(tokSymbol, "(") {
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return item, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		item.Sub = sub
	} else {
		t := p.next()
		if t.kind != tokIdent {
			return item, fmt.Errorf("sql: expected table name, got %s", t)
		}
		item.Table = t.text
	}
	if p.atKeyword("as") {
		p.next()
		t := p.next()
		if t.kind != tokIdent {
			return item, fmt.Errorf("sql: expected alias after AS, got %s", t)
		}
		item.As = t.text
	} else if p.at(tokIdent, "") && !reservedAfterItem[p.peek().text] {
		item.As = p.next().text
	}
	if item.Sub != nil && item.As == "" {
		return item, fmt.Errorf("sql: derived table requires an alias")
	}
	return item, nil
}

// parseExpr parses boolean expressions with standard precedence:
// OR < AND < NOT < comparison.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.atKeyword("between") {
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: "and",
			L: BinExpr{Op: ">=", L: l, R: lo},
			R: BinExpr{Op: "<=", L: l, R: hi}}, nil
	}
	if p.atKeyword("in") {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var alts Expr
		for {
			v, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			eq := BinExpr{Op: "=", L: l, R: v}
			if alts == nil {
				alts = eq
			} else {
				alts = BinExpr{Op: "or", L: alts, R: eq}
			}
			if p.at(tokSymbol, ",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return alts, nil
	}
	if p.at(tokSymbol, "") {
		switch p.peek().text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") {
		op := p.next().text
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

var aggFuncs = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return Lit{Val: value.NewInt(i)}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Lit{Val: value.NewFloat(f)}, nil
	case t.kind == tokString:
		p.next()
		return Lit{Val: value.NewString(t.text)}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		if p.atKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return SubqueryExpr{Stmt: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && aggFuncs[t.text]:
		fn := p.next().text
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		call := AggCall{Func: fn}
		if p.at(tokSymbol, "*") {
			p.next()
			call.Star = true
		} else {
			if p.atKeyword("distinct") {
				p.next()
				call.Distinct = true
			}
			arg, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.kind == tokIdent:
		return p.parseColRef()
	default:
		return nil, fmt.Errorf("sql: unexpected token %s", t)
	}
}

func (p *parser) parseColRef() (ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColRef{}, fmt.Errorf("sql: expected column reference, got %s", t)
	}
	if p.at(tokSymbol, ".") {
		p.next()
		c := p.next()
		if c.kind != tokIdent {
			return ColRef{}, fmt.Errorf("sql: expected column after %q., got %s", t.text, c)
		}
		return ColRef{Qualifier: t.text, Column: c.text}, nil
	}
	return ColRef{Column: t.text}, nil
}
