package sql

import "testing"

// FuzzParse ensures the lexer and parser never panic on arbitrary
// input — they must fail with errors.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select a from t",
		"select a, b from t where a = 1 and b < 'x'",
		"select * from (select a from t) as v left outer join s on v.a = s.a",
		"select supkey, count(*) as c from d group by supkey having count(*) > 2",
		"select a from t where b = (select count(*) from s where s.a = t.a)",
		"select -- comment\n a from t",
		"select a from t where a >= 1.5e2",
		"select '' from t",
		"(((((",
		"select",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err == nil && stmt != nil {
			_ = stmt.String() // rendering must not panic either
		}
	})
}
