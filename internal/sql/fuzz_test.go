package sql

import (
	"testing"

	"repro/internal/plan"
)

// FuzzParse ensures the lexer and parser never panic on arbitrary
// input — they must fail with errors — and that for every input that
// does parse, parameterization commutes with lowering: extracting the
// literals into slots, lowering the template, and rebinding the values
// at the plan level must reproduce the exact tree direct lowering
// builds. This is the property the serving layer's plan cache rests
// on: a cached template plan plus bound parameters is indistinguishable
// from a freshly planned query.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select a from t",
		"select a, b from t where a = 1 and b < 'x'",
		"select * from (select a from t) as v left outer join s on v.a = s.a",
		"select supkey, count(*) as c from d group by supkey having count(*) > 2",
		"select a from t where b = (select count(*) from s where s.a = t.a)",
		"select -- comment\n a from t",
		"select a from t where a >= 1.5e2",
		"select '' from t",
		"(((((",
		"select",
		// Parameterization-relevant shapes: literals in projections,
		// join conditions, HAVING, subqueries, and arithmetic.
		"select a + 1 from t where b = 2",
		"select t.a from t, s where t.a = s.a and t.b = 10 and s.c = 20",
		"select v.a from (select a from t where b > 5) as v where v.a <> 0",
		"select a, count(*) as n from t where b >= 1 group by a having count(*) > 1",
		"select t.a from t where t.b = (select count(*) from s where s.a = t.a) and t.a < 5",
		"select distinct a from t where a = '$1' order by a limit 3",
	} {
		f.Add(seed)
	}
	db := testDB()
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil || stmt == nil {
			return
		}
		_ = stmt.String() // rendering must not panic

		tmpl, params := Parameterize(stmt)
		_ = tmpl.String()
		if rebound := BindLiterals(tmpl, params); rebound.String() != stmt.String() {
			t.Fatalf("BindLiterals(Parameterize(x)) != x:\n  got  %s\n  want %s",
				rebound, stmt)
		}

		// Lowering either fails the same way for statement and template
		// (structure, not literal values, decides lowerability), or
		// succeeds for both with identical trees after rebinding.
		direct, derr := Lower(stmt, db)
		lowered, terr := Lower(tmpl, db)
		if (derr == nil) != (terr == nil) {
			t.Fatalf("lowerability diverged: direct err=%v, template err=%v for %q", derr, terr, input)
		}
		if derr != nil {
			return
		}
		bound, err := plan.BindParams(lowered, params)
		if err != nil {
			t.Fatalf("bind after lowering %q: %v", input, err)
		}
		if plan.Key(bound) != plan.Key(direct) {
			t.Fatalf("parameterize→lower→bind differs from direct lowering for %q:\n  bound  %s\n  direct %s",
				input, plan.Key(bound), plan.Key(direct))
		}
	})
}
