package sql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// SelectStmt is one SELECT block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr // nil = true
	GroupBy  []ColRef
	Having   Expr // nil = none
	OrderBy  []OrderItem
	Limit    int // -1 = none
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// SelectItem is one output column: an expression with an optional
// alias. Star marks SELECT *.
type SelectItem struct {
	Star bool
	Expr Expr
	As   string
}

// FromItem is one FROM-clause element: either a base table (Table
// set) or a derived table (Sub set), optionally joined to the
// previous tree with an explicit join.
type FromItem struct {
	Table string
	Sub   *SelectStmt
	As    string
	// Join links this item to the accumulated FROM tree; empty for
	// comma-separated items (inner joined through WHERE).
	Join JoinSpec
}

// JoinSpec describes an explicit JOIN … ON ….
type JoinSpec struct {
	Kind string // "", "join", "left", "right", "full"
	On   Expr
}

// Expr is a parsed scalar or boolean expression.
type Expr interface{ String() string }

// ColRef references [qualifier.]column.
type ColRef struct {
	Qualifier string // may be empty
	Column    string
}

// String implements Expr.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// Lit is a literal.
type Lit struct{ Val value.Value }

// String implements Expr.
func (l Lit) String() string { return l.Val.GoString() }

// BinExpr is a binary operation: comparison, AND, or arithmetic.
type BinExpr struct {
	Op   string // "and", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"
	L, R Expr
}

// String implements Expr.
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// AggCall is an aggregate invocation in a SELECT list or HAVING.
type AggCall struct {
	Func     string // "count", "sum", "min", "max", "avg"
	Star     bool   // count(*)
	Distinct bool
	Arg      Expr // nil when Star
}

// String implements Expr.
func (a AggCall) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "distinct "
	}
	return fmt.Sprintf("%s(%s%s)", a.Func, d, arg)
}

// UnaryExpr is a prefix operator, currently only NOT.
type UnaryExpr struct {
	Op string
	E  Expr
}

// String implements Expr.
func (u UnaryExpr) String() string { return u.Op + " (" + u.E.String() + ")" }

// SubqueryExpr is a scalar subquery in an expression position; the
// supported form is a (possibly correlated) single-aggregate SELECT.
type SubqueryExpr struct{ Stmt *SelectStmt }

// String implements Expr.
func (s SubqueryExpr) String() string { return "(" + s.Stmt.String() + ")" }

// String renders the statement approximately as SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.String())
		if it.As != "" {
			b.WriteString(" as " + it.As)
		}
	}
	b.WriteString(" from ")
	for i, f := range s.From {
		if i > 0 {
			if f.Join.Kind == "" {
				b.WriteString(", ")
			} else {
				b.WriteString(" " + f.Join.Kind + " join ")
			}
		}
		if f.Sub != nil {
			b.WriteString("(" + f.Sub.String() + ")")
		} else {
			b.WriteString(f.Table)
		}
		if f.As != "" {
			b.WriteString(" as " + f.As)
		}
		if f.Join.On != nil {
			b.WriteString(" on " + f.Join.On.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" where " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" having " + s.Having.String())
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			b.WriteString(" order by ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Col.String())
		if o.Desc {
			b.WriteString(" desc")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " limit %d", s.Limit)
	}
	return b.String()
}
