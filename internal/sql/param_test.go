package sql

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/value"
)

// TestParameterizeExtractsLiterals: every literal becomes a slot, in
// deterministic left-to-right clause order, and the original statement
// is recoverable by rebinding.
func TestParameterizeExtractsLiterals(t *testing.T) {
	stmt, err := Parse("select a from t where a = 1 and b < 'x' and a + 2 > 3")
	if err != nil {
		t.Fatal(err)
	}
	tmpl, params := Parameterize(stmt)
	if len(params) != 4 {
		t.Fatalf("want 4 params, got %d: %v", len(params), params)
	}
	want := []value.Value{value.NewInt(1), value.NewString("x"), value.NewInt(2), value.NewInt(3)}
	for i, v := range want {
		if params[i].Key() != v.Key() {
			t.Fatalf("param %d = %s, want %s", i+1, params[i], v)
		}
	}
	// The template renders with $n markers, not literals.
	text := tmpl.String()
	for _, marker := range []string{"$1", "$2", "$3", "$4"} {
		if !strings.Contains(text, marker) {
			t.Fatalf("template %q lacks %s", text, marker)
		}
	}
	// Rebinding the extracted literals restores the original text.
	if got, orig := BindLiterals(tmpl, params).String(), stmt.String(); got != orig {
		t.Fatalf("rebind mismatch:\n  got  %s\n  want %s", got, orig)
	}
	// The original statement is untouched (deep copy).
	if strings.Contains(stmt.String(), "$") {
		t.Fatalf("Parameterize mutated its input: %s", stmt)
	}
}

// TestParameterizeTemplateIdentity: queries differing only in
// constants produce the same template (same canonical plan key), and
// different shapes do not.
func TestParameterizeTemplateIdentity(t *testing.T) {
	db := testDB()
	key := func(q string) string {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		tmpl, _ := Parameterize(stmt)
		node, err := Lower(tmpl, db)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return plan.Key(node)
	}
	a := key("select a from t where b = 10")
	b := key("select a from t where b = 99")
	if a != b {
		t.Fatalf("same shape, different templates:\n  %s\n  %s", a, b)
	}
	c := key("select a from t where b < 10")
	if a == c {
		t.Fatal("different operators must not share a template")
	}
}

// TestParameterizedLoweringCommutes: lowering the template and binding
// the literals back at the plan level yields exactly the tree direct
// lowering produces — on joins, derived tables, aggregation and the
// correlated-count unnest path.
func TestParameterizedLoweringCommutes(t *testing.T) {
	db := testDB()
	queries := []string{
		"select a from t where a = 1 and b < 7",
		"select t.a, c from t, s where t.a = s.a and c > 100 and b = 20",
		"select v.a from (select a from t where b > 5) as v left join s on v.a = s.a where s.c <> 0",
		"select a, count(*) as n from t where b >= 10 group by a having count(*) > 1",
		"select t.a from t where t.b = (select count(*) from s where s.a = t.a) and t.a < 5",
		"select distinct a from t where a = 2 order by a limit 3",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		direct, err := Lower(stmt, db)
		if err != nil {
			t.Fatalf("%s: direct lowering: %v", q, err)
		}
		tmpl, params := Parameterize(stmt)
		lowered, err := Lower(tmpl, db)
		if err != nil {
			t.Fatalf("%s: template lowering: %v", q, err)
		}
		if got, want := plan.ParamCount(lowered), len(params); got != want {
			t.Fatalf("%s: ParamCount=%d, want %d", q, got, want)
		}
		bound, err := plan.BindParams(lowered, params)
		if err != nil {
			t.Fatalf("%s: bind: %v", q, err)
		}
		if plan.Key(bound) != plan.Key(direct) {
			t.Fatalf("%s: bound template differs from direct lowering:\n  bound  %s\n  direct %s",
				q, plan.Key(bound), plan.Key(direct))
		}
	}
}

// TestParseAndLowerConcurrent is the serving-path concurrency audit:
// many goroutines parse, parameterize and lower against the same
// plan.Database simultaneously (as every server goroutine does), all
// under -race. Lowering must share no mutable state across calls and
// every goroutine must see the identical template key.
func TestParseAndLowerConcurrent(t *testing.T) {
	db := testDB()
	queries := []string{
		"select a from t where a = 1",
		"select t.a, c from t, s where t.a = s.a and c > 100",
		"select a, count(*) as n from t group by a having count(*) > 1",
		"select t.a from t where t.b = (select count(*) from s where s.a = t.a)",
	}
	// Reference keys, computed serially.
	want := make([]string, len(queries))
	for i, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		tmpl, _ := Parameterize(stmt)
		node, err := Lower(tmpl, db)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = plan.Key(node)
	}

	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				stmt, err := Parse(queries[i])
				if err != nil {
					errs <- err
					return
				}
				tmpl, params := Parameterize(stmt)
				node, err := Lower(tmpl, db)
				if err != nil {
					errs <- err
					return
				}
				if got := plan.Key(node); got != want[i] {
					errs <- fmt.Errorf("goroutine %d: key mismatch for %q:\n  got  %s\n  want %s", g, queries[i], got, want[i])
					return
				}
				if _, err := plan.BindParams(node, params); err != nil {
					errs <- err
					return
				}
				// Direct ParseAndLower shares the same paths.
				if _, err := ParseAndLower(queries[i], db); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
