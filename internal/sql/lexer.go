// Package sql implements a front end for the SQL subset the paper's
// queries are written in: SELECT lists with aggregates and aliases,
// FROM clauses with base tables, derived tables and
// INNER/LEFT/RIGHT/FULL OUTER joins, WHERE with conjunctive
// comparisons and correlated COUNT subqueries, GROUP BY and HAVING.
//
// Lowering produces logical plans over the same operators the rest of
// the system reorders: views are merged (name resolution through
// derived tables rather than opaque boundaries), aggregated views
// become generalized projections, and correlated COUNT subqueries are
// unnested through core.JoinAggregateQuery into the outer-join +
// group-by + generalized-selection form of Section 1.1.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers lowercased; symbols verbatim
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. SQL keywords are returned as
// identifiers; the parser matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (isIdentChar(rune(input[i]))) {
				i++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[start:i]), start})
		case unicode.IsDigit(c):
			start := i
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < len(input) && input[i] != '\'' {
				i++
			}
			if i >= len(input) {
				return nil, fmt.Errorf("sql: unterminated string literal at %d", start)
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		default:
			start := i
			// Two-character operators first.
			if i+1 < len(input) {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					toks = append(toks, token{tokSymbol, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
