package sql

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

// lowerJoinAggregate handles SELECT blocks whose WHERE clause
// contains correlated COUNT subqueries (the join-aggregate queries of
// Section 1.1). The block is modelled as a core.JoinAggregateQuery
// and unnested into the outer-join + group-by + generalized-selection
// plan, instead of the tuple-iteration-semantics evaluation a naive
// engine would use.
func (l *lowerer) lowerJoinAggregate(stmt *SelectStmt, parent *scope, top bool) (*lowered, error) {
	if len(stmt.From) != 1 || stmt.From[0].Sub != nil {
		return nil, fmt.Errorf("sql: correlated COUNT unnesting requires a single base table in FROM")
	}
	if stmt.Distinct || len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return nil, fmt.Errorf("sql: correlated COUNT unnesting does not support DISTINCT/GROUP BY/HAVING")
	}
	alias := stmt.From[0].As
	if alias == "" {
		alias = stmt.From[0].Table
	}
	if alias != stmt.From[0].Table {
		return nil, fmt.Errorf("sql: table aliases are not supported in unnested blocks")
	}
	sc := newScope(parent)
	cols, err := l.baseCols(stmt.From[0].Table, alias)
	if err != nil {
		return nil, err
	}
	if err := sc.add(alias, cols); err != nil {
		return nil, err
	}

	q := &core.JoinAggregateQuery{Rel: stmt.From[0].Table}
	out := &lowered{cols: make(map[string]schema.Attribute)}
	for _, it := range stmt.Items {
		c, ok := it.Expr.(ColRef)
		if !ok || it.Star {
			return nil, fmt.Errorf("sql: unnested blocks support plain column projections only")
		}
		a, err := sc.resolve(c)
		if err != nil {
			return nil, err
		}
		q.Proj = append(q.Proj, a)
		name := it.As
		if name == "" {
			name = c.Column
		}
		out.cols[name] = a
		out.order = append(out.order, name)
	}

	local, filters, err := l.splitCountFilters(stmt.Where, sc)
	if err != nil {
		return nil, err
	}
	q.Local = local
	q.Filters = filters

	node, err := q.Unnest(l.db)
	if err != nil {
		return nil, err
	}
	out.node = node
	return out, nil
}

// splitCountFilters partitions a WHERE expression into plain
// conjuncts (returned as one predicate) and correlated COUNT filters.
func (l *lowerer) splitCountFilters(e Expr, sc *scope) (expr.Pred, []core.CountFilter, error) {
	var plain []expr.Pred
	var filters []core.CountFilter
	var walk func(e Expr) error
	walk = func(e Expr) error {
		b, ok := e.(BinExpr)
		if !ok {
			return fmt.Errorf("sql: expected predicate, got %s", e)
		}
		if b.Op == "and" {
			if err := walk(b.L); err != nil {
				return err
			}
			return walk(b.R)
		}
		lSub, lIsSub := b.L.(SubqueryExpr)
		rSub, rIsSub := b.R.(SubqueryExpr)
		switch {
		case lIsSub && rIsSub:
			return fmt.Errorf("sql: comparing two subqueries is not supported")
		case rIsSub:
			f, err := l.lowerCountFilter(b.L, b.Op, rSub.Stmt, sc, false)
			if err != nil {
				return err
			}
			filters = append(filters, f)
		case lIsSub:
			f, err := l.lowerCountFilter(b.R, b.Op, lSub.Stmt, sc, true)
			if err != nil {
				return err
			}
			filters = append(filters, f)
		default:
			p, err := l.lowerPred(b, sc, nil)
			if err != nil {
				return err
			}
			plain = append(plain, p)
		}
		return nil
	}
	if e != nil {
		if err := walk(e); err != nil {
			return nil, nil, err
		}
	}
	if len(plain) == 0 {
		return nil, filters, nil
	}
	return expr.And(plain...), filters, nil
}

// lowerCountFilter lowers "lhs θ (SELECT count(*) FROM …)" (flip set
// when the subquery was on the left).
func (l *lowerer) lowerCountFilter(lhs Expr, op string, sub *SelectStmt, sc *scope, flip bool) (core.CountFilter, error) {
	var f core.CountFilter
	s, err := l.lowerScalar(lhs, sc, nil)
	if err != nil {
		return f, err
	}
	f.LHS = s
	cmp, err := cmpOpOf(op)
	if err != nil {
		return f, err
	}
	if flip {
		cmp = cmp.Flip()
	}
	f.Op = cmp
	cq, err := l.lowerCountQuery(sub, sc)
	if err != nil {
		return f, err
	}
	f.Sub = cq
	return f, nil
}

// lowerCountQuery lowers one COUNT(*) subquery block.
func (l *lowerer) lowerCountQuery(stmt *SelectStmt, parent *scope) (*core.CountQuery, error) {
	if len(stmt.Items) != 1 || stmt.Items[0].Star {
		return nil, fmt.Errorf("sql: count subquery must select exactly count(*)")
	}
	call, ok := stmt.Items[0].Expr.(AggCall)
	if !ok || call.Func != "count" || !call.Star {
		return nil, fmt.Errorf("sql: count subquery must select count(*), got %s", stmt.Items[0].Expr)
	}
	if len(stmt.From) != 1 || stmt.From[0].Sub != nil || len(stmt.GroupBy) > 0 {
		return nil, fmt.Errorf("sql: count subquery must scan a single base table")
	}
	alias := stmt.From[0].As
	if alias != "" && alias != stmt.From[0].Table {
		return nil, fmt.Errorf("sql: table aliases are not supported in count subqueries")
	}
	table := stmt.From[0].Table
	sc := newScope(parent)
	cols, err := l.baseCols(table, table)
	if err != nil {
		return nil, err
	}
	if err := sc.add(table, cols); err != nil {
		return nil, err
	}
	corr, filters, err := l.splitCountFilters(stmt.Where, sc)
	if err != nil {
		return nil, err
	}
	return &core.CountQuery{Rel: table, Corr: corr, Filters: filters}, nil
}

func cmpOpOf(op string) (value.CmpOp, error) {
	switch op {
	case "=":
		return value.EQ, nil
	case "<>":
		return value.NE, nil
	case "<":
		return value.LT, nil
	case "<=":
		return value.LE, nil
	case ">":
		return value.GT, nil
	case ">=":
		return value.GE, nil
	}
	return 0, fmt.Errorf("sql: unsupported comparison %q", op)
}

// ParseAndLower is the one-call front door: parse SQL and lower it to
// a logical plan against db.
func ParseAndLower(query string, db plan.Database) (plan.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Lower(stmt, db)
}
