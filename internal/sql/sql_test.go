package sql

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestParseBasics(t *testing.T) {
	cases := []string{
		"select a, b from t where a = 1",
		"select distinct t.a from t, s where t.a = s.a and t.b < 3",
		"select a as x from t left outer join s on t.a = s.a",
		"select supkey, count(*) as c from detail group by supkey having count(*) > 2",
		"select a from t where b = (select count(*) from s where s.a = t.a)",
		"select * from (select a from t) as v",
		"select a from t join s on t.a = s.a",
		"select a from t full outer join s on t.a = s.a",
		"select a from t right join s on t.a = s.a",
		"select sum(a) as s, min(b) as lo, max(b) as hi, avg(a) as m from t",
		"select count(distinct a) as d from t",
	}
	for _, c := range cases {
		stmt, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		if stmt.String() == "" {
			t.Errorf("Parse(%q): empty round trip", c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t join s", // missing ON
		"select a from (select b from t)",
		"select a from t where a = 'unterminated",
		"select a from t where a ~ b",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func testDB() plan.Database {
	t1 := relation.NewBuilder("t", "a", "b").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(2), value.NewInt(20)).
		Row(value.NewInt(2), value.NewInt(30)).
		Relation()
	s1 := relation.NewBuilder("s", "a", "c").
		Row(value.NewInt(2), value.NewInt(200)).
		Row(value.NewInt(3), value.NewInt(300)).
		Relation()
	return plan.Database{"t": t1, "s": s1}
}

// sameRowsPositional compares two relations as tuple multisets by
// column position, ignoring attribute names.
func sameRowsPositional(a, b *relation.Relation) bool {
	if a.Len() != b.Len() || a.Schema().Len() != b.Schema().Len() {
		return false
	}
	counts := make(map[string]int, a.Len())
	for _, t := range a.Tuples() {
		counts[t.Key()]++
	}
	for _, t := range b.Tuples() {
		counts[t.Key()]--
		if counts[t.Key()] < 0 {
			return false
		}
	}
	return true
}

func mustRun(t *testing.T, query string, db plan.Database) *relation.Relation {
	t.Helper()
	node, err := ParseAndLower(query, db)
	if err != nil {
		t.Fatalf("lower %q: %v", query, err)
	}
	out, err := executor.Run(node, db)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return out
}

func TestLowerSimpleSelect(t *testing.T) {
	db := testDB()
	out := mustRun(t, "select a, b from t where b >= 20", db)
	if out.Len() != 2 {
		t.Fatalf("got %d rows:\n%s", out.Len(), out)
	}
}

func TestLowerJoinKinds(t *testing.T) {
	db := testDB()
	if got := mustRun(t, "select t.a, s.c from t join s on t.a = s.a", db); got.Len() != 2 {
		t.Errorf("inner join rows = %d, want 2", got.Len())
	}
	if got := mustRun(t, "select t.a, s.c from t left outer join s on t.a = s.a", db); got.Len() != 3 {
		t.Errorf("left join rows = %d, want 3", got.Len())
	}
	if got := mustRun(t, "select t.a, s.c from t full outer join s on t.a = s.a", db); got.Len() != 4 {
		t.Errorf("full join rows = %d, want 4", got.Len())
	}
	if got := mustRun(t, "select t.a, s.c from t right outer join s on t.a = s.a", db); got.Len() != 3 {
		t.Errorf("right join rows = %d, want 3 (2 matches + unmatched s row)", got.Len())
	}
}

func TestLowerCommaJoin(t *testing.T) {
	db := testDB()
	got := mustRun(t, "select t.a, s.c from t, s where t.a = s.a", db)
	want := mustRun(t, "select t.a, s.c from t join s on t.a = s.a", db)
	if !got.EqualAsMultisets(want) {
		t.Errorf("comma join differs from explicit join")
	}
}

func TestLowerAliases(t *testing.T) {
	db := testDB()
	// Self join with aliases: pairs of t rows sharing a.
	got := mustRun(t, "select x.b as b1, y.b as b2 from t as x, t as y where x.a = y.a", db)
	if got.Len() != 5 { // a=1: 1 pair; a=2: 4 pairs
		t.Errorf("self join rows = %d, want 5:\n%s", got.Len(), got)
	}
}

func TestLowerGroupByHaving(t *testing.T) {
	db := testDB()
	out := mustRun(t, "select a, count(*) as c, sum(b) as s from t group by a having count(*) >= 2", db)
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", out.Len(), out)
	}
	tu := out.Tuple(0)
	if out.Value(tu, schema.Attr("t", "a")).Int() != 2 {
		t.Errorf("group key wrong:\n%s", out)
	}
}

func TestLowerDistinct(t *testing.T) {
	db := testDB()
	out := mustRun(t, "select distinct a from t", db)
	if out.Len() != 2 {
		t.Errorf("distinct rows = %d, want 2", out.Len())
	}
}

// TestLowerSupplierSQL lowers the Example 1.1 query from SQL text and
// checks it computes exactly what the hand-built plan computes.
func TestLowerSupplierSQL(t *testing.T) {
	cfg := datagen.SupplierConfig{Suppliers: 25, Parts: 5, AggRows: 60, DetailRows: 300, BankruptFrac: 0.2, Seed: 3}
	db := datagen.Supplier(cfg)
	query := `
	  select v2.supkey as supkey, v2.partkey as partkey, v2.qty as qty, v3.aggqty95 as aggqty95
	  from (select agg94.supkey as supkey, agg94.partkey as partkey, agg94.qty as qty
	        from agg94, sup_detail
	        where agg94.supkey = sup_detail.supkey and sup_detail.suprating = 'BANKRUPT') as v2
	  left outer join
	       (select supkey, partkey, count(*) as aggqty95
	        from detail95 group by supkey, partkey) as v3
	  on v2.supkey = v3.supkey and v2.partkey = v3.partkey and v2.qty < 2 * v3.aggqty95`
	node, err := ParseAndLower(query, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor.Run(node, db)
	if err != nil {
		t.Fatal(err)
	}
	// The hand-built plan projects nothing and names its count column
	// v3.aggqty95 while the lowered plan generates its own qualifier;
	// compare positionally on (supkey, partkey, qty, count).
	want, err := executor.Run(datagen.SupplierQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	wantProj := want.Project([]schema.Attribute{
		schema.Attr("agg94", "supkey"), schema.Attr("agg94", "partkey"),
		schema.Attr("agg94", "qty"), datagen.V3Count,
	}, false)
	if !sameRowsPositional(got, wantProj) {
		t.Fatalf("SQL lowering differs from hand-built plan: %d vs %d rows\n%s\n%s",
			got.Len(), wantProj.Len(), got, wantProj)
	}
	if got.Len() == 0 {
		t.Error("empty result makes the test vacuous")
	}
}

// TestLowerUnnestsCorrelatedCount checks the join-aggregate path: the
// SQL with nested correlated COUNT subqueries lowers to the unnested
// plan and matches tuple iteration semantics.
func TestLowerUnnestsCorrelatedCount(t *testing.T) {
	r1 := relation.NewBuilder("r1", "a", "b", "c", "f").
		Row(value.NewInt(1), value.NewInt(1), value.NewInt(1), value.NewInt(1)).
		Row(value.NewInt(2), value.NewInt(0), value.NewInt(2), value.NewInt(1)).
		Row(value.NewInt(3), value.NewInt(2), value.NewInt(1), value.NewInt(2)).
		Relation()
	r2 := relation.NewBuilder("r2", "c", "d", "e").
		Row(value.NewInt(1), value.NewInt(1), value.NewInt(7)).
		Row(value.NewInt(1), value.NewInt(0), value.NewInt(8)).
		Row(value.NewInt(2), value.NewInt(1), value.NewInt(7)).
		Relation()
	r3 := relation.NewBuilder("r3", "e", "f").
		Row(value.NewInt(7), value.NewInt(1)).
		Row(value.NewInt(8), value.NewInt(2)).
		Relation()
	db := plan.Database{"r1": r1, "r2": r2, "r3": r3}

	query := `
	  select r1.a from r1
	  where r1.b = (select count(*) from r2
	                where r2.c = r1.c and r2.d = (select count(*) from r3
	                                              where r2.e = r3.e and r1.f = r3.f))`
	node, err := ParseAndLower(query, db)
	if err != nil {
		t.Fatal(err)
	}
	// The lowered plan must be the unnested outer-join form, not a
	// nested-loops evaluation: it contains left outer joins and a
	// generalized selection.
	text := plan.Indent(node)
	if !strings.Contains(text, "GenSel") || !strings.Contains(text, "LOJ") {
		t.Errorf("expected unnested plan with LOJ and GenSel:\n%s", text)
	}
	got, err := executor.Run(node, db)
	if err != nil {
		t.Fatal(err)
	}
	tis := &core.JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []core.CountFilter{{
			LHS: expr.Column("r1", "b"),
			Op:  value.EQ,
			Sub: &core.CountQuery{
				Rel:  "r2",
				Corr: expr.EqCols("r2", "c", "r1", "c"),
				Filters: []core.CountFilter{{
					LHS: expr.Column("r2", "d"),
					Op:  value.EQ,
					Sub: &core.CountQuery{
						Rel:  "r3",
						Corr: expr.And(expr.EqCols("r2", "e", "r3", "e"), expr.EqCols("r1", "f", "r3", "f")),
					},
				}},
			},
		}},
	}
	want, err := tis.TIS(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatalf("unnested SQL differs from TIS:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLowerErrors(t *testing.T) {
	db := testDB()
	bad := []string{
		"select a from nosuch",
		"select nosuch from t",
		"select a from t where t.a = u.b",
		"select t.a from t, t",       // duplicate without alias
		"select a, a from t",         // duplicate output
		"select a from t group by b", // a not grouped
		"select a + 1 from t",        // computed select item
	}
	for _, q := range bad {
		if _, err := ParseAndLower(q, db); err == nil {
			t.Errorf("ParseAndLower(%q) should fail", q)
		}
	}
}

// TestLowerAmbiguous pins unqualified-column resolution.
func TestLowerAmbiguous(t *testing.T) {
	db := testDB()
	if _, err := ParseAndLower("select a from t, s where t.a = s.a", db); err == nil {
		t.Error("unqualified ambiguous column should fail")
	}
	if _, err := ParseAndLower("select b from t, s where t.a = s.a", db); err != nil {
		t.Errorf("unambiguous unqualified column should resolve: %v", err)
	}
}

func TestLowerBooleanPredicates(t *testing.T) {
	db := testDB()
	if got := mustRun(t, "select a from t where a = 1 or b = 30", db); got.Len() != 2 {
		t.Errorf("OR rows = %d, want 2", got.Len())
	}
	if got := mustRun(t, "select a from t where not (a = 1)", db); got.Len() != 2 {
		t.Errorf("NOT rows = %d, want 2", got.Len())
	}
	if got := mustRun(t, "select a from t where b between 15 and 25", db); got.Len() != 1 {
		t.Errorf("BETWEEN rows = %d, want 1", got.Len())
	}
	if got := mustRun(t, "select a from t where a in (2, 9)", db); got.Len() != 2 {
		t.Errorf("IN rows = %d, want 2", got.Len())
	}
	// Precedence: OR binds loosest.
	if got := mustRun(t, "select a from t where a = 1 and b = 99 or a = 2", db); got.Len() != 2 {
		t.Errorf("precedence rows = %d, want 2", got.Len())
	}
}

func TestLowerOrderByLimit(t *testing.T) {
	db := testDB()
	out := mustRun(t, "select a, b from t order by b desc limit 2", db)
	if out.Len() != 2 {
		t.Fatalf("limit rows = %d", out.Len())
	}
	if out.Value(out.Tuple(0), schema.Attr("t", "b")).Int() != 30 {
		t.Errorf("desc order wrong:\n%s", out)
	}
	// Ordering by an alias works too.
	out2 := mustRun(t, "select b as bee from t order by bee limit 1", db)
	if out2.Len() != 1 || out2.Value(out2.Tuple(0), schema.Attr("t", "b")).Int() != 10 {
		t.Errorf("alias order wrong:\n%s", out2)
	}
	// ORDER BY a column outside the select list fails.
	if _, err := ParseAndLower("select a from t order by nosuch", db); err == nil {
		t.Error("unknown order column should fail")
	}
	if _, err := ParseAndLower("select a from t order by b", db); err == nil {
		t.Error("non-selected order column should fail")
	}
}

func TestStmtStringRendering(t *testing.T) {
	for _, q := range []string{
		"select distinct a as x from t left join s on t.a = s.a where a = 1 or not (b < 2) group by a having count(*) > 1 order by a desc limit 5",
		"select a from (select b from t) as v, s where v.b = s.a",
		"select a from t where b in (1, 2) and c between 3 and 4",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		rendered := stmt.String()
		// The rendering must itself re-parse.
		if _, err := Parse(rendered); err != nil {
			t.Errorf("re-parse of %q failed: %v", rendered, err)
		}
	}
}

func TestUnnestAllOps(t *testing.T) {
	db := testDB()
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		q := "select a from t where b " + op + " (select count(*) from s where s.a = t.a)"
		if _, err := ParseAndLower(q, db); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}
