package sql

import "repro/internal/value"

// Param is a parameter slot "$n" (1-based) in a parameterized AST. It
// is produced by Parameterize, never by the parser: client SQL always
// carries inline literals, and the service normalizes them so queries
// differing only in constants share one plan-cache entry.
type Param struct{ Idx int }

// String implements Expr.
func (p Param) String() string { return "$" + itoa(p.Idx) }

// itoa avoids strconv for this tiny hot path (Idx is small and
// positive).
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Parameterize returns a deep copy of stmt with every literal replaced
// by a numbered Param slot, plus the extracted literals in slot order
// (params[i] binds $i+1). The walk order is deterministic — select
// list, FROM (derived tables and join conditions in clause order),
// WHERE, then HAVING — so the same query text always produces the same
// template and the same binding vector. LIMIT is part of the template
// (it is plan structure, not a scalar), as are GROUP BY and ORDER BY
// columns, which cannot hold literals.
//
// Lowering commutes with parameterization: Lower(template) with $n
// later bound to params[n-1] is structurally identical to lowering the
// original statement, because lowering decides structure from
// attribute references alone. The fuzz suite asserts this.
func Parameterize(stmt *SelectStmt) (*SelectStmt, []value.Value) {
	p := &paramizer{}
	out := p.stmt(stmt)
	return out, p.params
}

type paramizer struct {
	params []value.Value
}

func (p *paramizer) slot(v value.Value) Param {
	p.params = append(p.params, v)
	return Param{Idx: len(p.params)}
}

func (p *paramizer) stmt(s *SelectStmt) *SelectStmt {
	out := *s
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		out.Items[i] = it
		if it.Expr != nil {
			out.Items[i].Expr = p.expr(it.Expr)
		}
	}
	out.From = make([]FromItem, len(s.From))
	for i, f := range s.From {
		out.From[i] = f
		if f.Sub != nil {
			out.From[i].Sub = p.stmt(f.Sub)
		}
		if f.Join.On != nil {
			out.From[i].Join.On = p.expr(f.Join.On)
		}
	}
	if s.Where != nil {
		out.Where = p.expr(s.Where)
	}
	out.GroupBy = append([]ColRef(nil), s.GroupBy...)
	if s.Having != nil {
		out.Having = p.expr(s.Having)
	}
	out.OrderBy = append([]OrderItem(nil), s.OrderBy...)
	return &out
}

func (p *paramizer) expr(e Expr) Expr {
	switch x := e.(type) {
	case Lit:
		return p.slot(x.Val)
	case BinExpr:
		return BinExpr{Op: x.Op, L: p.expr(x.L), R: p.expr(x.R)}
	case UnaryExpr:
		return UnaryExpr{Op: x.Op, E: p.expr(x.E)}
	case AggCall:
		out := x
		if x.Arg != nil {
			out.Arg = p.expr(x.Arg)
		}
		return out
	case SubqueryExpr:
		return SubqueryExpr{Stmt: p.stmt(x.Stmt)}
	default:
		// ColRef, Param: no literals underneath.
		return e
	}
}

// BindLiterals is the inverse of Parameterize for testing: it returns
// a deep copy of stmt with each Param slot replaced by Lit(params[Idx-1]).
// Slots out of range are left in place.
func BindLiterals(stmt *SelectStmt, params []value.Value) *SelectStmt {
	b := &binder{params: params}
	return b.stmt(stmt)
}

type binder struct {
	params []value.Value
}

func (b *binder) stmt(s *SelectStmt) *SelectStmt {
	out := *s
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		out.Items[i] = it
		if it.Expr != nil {
			out.Items[i].Expr = b.expr(it.Expr)
		}
	}
	out.From = make([]FromItem, len(s.From))
	for i, f := range s.From {
		out.From[i] = f
		if f.Sub != nil {
			out.From[i].Sub = b.stmt(f.Sub)
		}
		if f.Join.On != nil {
			out.From[i].Join.On = b.expr(f.Join.On)
		}
	}
	if s.Where != nil {
		out.Where = b.expr(s.Where)
	}
	out.GroupBy = append([]ColRef(nil), s.GroupBy...)
	if s.Having != nil {
		out.Having = b.expr(s.Having)
	}
	out.OrderBy = append([]OrderItem(nil), s.OrderBy...)
	return &out
}

func (b *binder) expr(e Expr) Expr {
	switch x := e.(type) {
	case Param:
		if x.Idx >= 1 && x.Idx <= len(b.params) {
			return Lit{Val: b.params[x.Idx-1]}
		}
		return e
	case BinExpr:
		return BinExpr{Op: x.Op, L: b.expr(x.L), R: b.expr(x.R)}
	case UnaryExpr:
		return UnaryExpr{Op: x.Op, E: b.expr(x.E)}
	case AggCall:
		out := x
		if x.Arg != nil {
			out.Arg = b.expr(x.Arg)
		}
		return out
	case SubqueryExpr:
		return SubqueryExpr{Stmt: b.stmt(x.Stmt)}
	default:
		return e
	}
}
