package sql

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

// Lower translates a parsed SELECT into a logical plan over db's
// schemas. Derived tables are merged (their columns resolve through
// to the underlying attributes rather than being hidden behind an
// opaque boundary), aggregated views become generalized projections,
// and correlated COUNT subqueries in WHERE are unnested via
// core.JoinAggregateQuery into the outer-join + group-by +
// generalized-selection form of Section 1.1.
func Lower(stmt *SelectStmt, db plan.Database) (plan.Node, error) {
	l := &lowerer{db: db}
	out, err := l.lowerBlock(stmt, nil, true)
	if err != nil {
		return nil, err
	}
	return out.node, nil
}

// lowered is a lowered SELECT block: its plan plus the mapping from
// output column names to underlying attributes.
type lowered struct {
	node plan.Node
	cols map[string]schema.Attribute
	// order preserves the select-list order for projections.
	order []string
}

type lowerer struct {
	db      plan.Database
	aggSeq  int
	blockID int
}

// scope resolves column references against the relations in view.
type scope struct {
	byQual map[string]map[string]schema.Attribute
	order  []string
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{byQual: make(map[string]map[string]schema.Attribute), parent: parent}
}

func (s *scope) add(alias string, cols map[string]schema.Attribute) error {
	if _, dup := s.byQual[alias]; dup {
		return fmt.Errorf("sql: duplicate relation name %q in FROM", alias)
	}
	s.byQual[alias] = cols
	s.order = append(s.order, alias)
	return nil
}

// resolve maps a column reference to an attribute, searching enclosing
// scopes for correlated references.
func (s *scope) resolve(c ColRef) (schema.Attribute, error) {
	for sc := s; sc != nil; sc = sc.parent {
		if c.Qualifier != "" {
			if cols, ok := sc.byQual[c.Qualifier]; ok {
				if a, ok := cols[c.Column]; ok {
					return a, nil
				}
				return schema.Attribute{}, fmt.Errorf("sql: relation %q has no column %q", c.Qualifier, c.Column)
			}
			continue
		}
		var found schema.Attribute
		matches := 0
		for _, alias := range sc.order {
			if a, ok := sc.byQual[alias][c.Column]; ok {
				found = a
				matches++
			}
		}
		if matches > 1 {
			return schema.Attribute{}, fmt.Errorf("sql: ambiguous column %q", c.Column)
		}
		if matches == 1 {
			return found, nil
		}
	}
	return schema.Attribute{}, fmt.Errorf("sql: unknown column %s", c)
}

// baseCols lists a base relation's real columns, requalified by the
// alias.
func (l *lowerer) baseCols(table, alias string) (map[string]schema.Attribute, error) {
	rel, ok := l.db[table]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", table)
	}
	cols := make(map[string]schema.Attribute)
	s := rel.Schema()
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		if a.Virtual {
			continue
		}
		cols[a.Col] = schema.Attr(alias, a.Col)
	}
	return cols, nil
}

// lowerBlock lowers one SELECT block. top marks the outermost block,
// which gets a final projection; derived blocks stay unprojected so
// the enclosing query can reorder across them (view merging).
func (l *lowerer) lowerBlock(stmt *SelectStmt, parent *scope, top bool) (*lowered, error) {
	l.blockID++
	sc := newScope(parent)

	// Correlated-count unnesting path: WHERE contains a subquery.
	if containsSubquery(stmt.Where) {
		return l.lowerJoinAggregate(stmt, parent, top)
	}

	// FROM clause.
	var node plan.Node
	var commaItems []plan.Node
	for _, f := range stmt.From {
		var itemNode plan.Node
		alias := f.As
		if f.Sub != nil {
			sub, err := l.lowerBlock(f.Sub, parent, false)
			if err != nil {
				return nil, err
			}
			cols := make(map[string]schema.Attribute, len(sub.cols))
			for k, v := range sub.cols {
				cols[k] = v
			}
			if err := sc.add(alias, cols); err != nil {
				return nil, err
			}
			itemNode = sub.node
		} else {
			if alias == "" {
				alias = f.Table
			}
			cols, err := l.baseCols(f.Table, alias)
			if err != nil {
				return nil, err
			}
			if err := sc.add(alias, cols); err != nil {
				return nil, err
			}
			if alias == f.Table {
				itemNode = plan.NewScan(f.Table)
			} else {
				itemNode = plan.NewScanAs(f.Table, alias)
			}
		}
		switch {
		case f.Join.Kind != "":
			on, err := l.lowerPred(f.Join.On, sc, nil)
			if err != nil {
				return nil, err
			}
			kind := map[string]plan.JoinKind{
				"join": plan.InnerJoin, "left": plan.LeftJoin,
				"right": plan.RightJoin, "full": plan.FullJoin,
			}[f.Join.Kind]
			if node == nil {
				return nil, fmt.Errorf("sql: JOIN without a left-hand side")
			}
			node = plan.NewJoin(kind, on, node, itemNode)
		case node == nil:
			node = itemNode
		default:
			commaItems = append(commaItems, itemNode)
		}
	}

	// WHERE: split conjuncts into join predicates (for comma-joined
	// items) and filters.
	var filters []expr.Pred
	if stmt.Where != nil {
		p, err := l.lowerPred(stmt.Where, sc, nil)
		if err != nil {
			return nil, err
		}
		filters = expr.Conjuncts(p)
	}
	node, filters = attachCommaJoins(node, commaItems, filters)
	// Push single-subtree filters onto the tree top (the optimizer's
	// rules handle further movement).
	if rest := expr.And(filters...); !isTrue(rest) {
		node = plan.NewSelect(rest, node)
	}

	// SELECT list and aggregation.
	return l.finishBlock(stmt, sc, node, top)
}

// attachCommaJoins greedily joins comma-separated FROM items using
// the WHERE conjuncts that connect them, leaving the used conjuncts
// out of the returned filter list.
func attachCommaJoins(node plan.Node, items []plan.Node, filters []expr.Pred) (plan.Node, []expr.Pred) {
	remaining := append([]plan.Node(nil), items...)
	for len(remaining) > 0 {
		attached := false
		for i, item := range remaining {
			cur := plan.BaseRelSet(node)
			itemRels := plan.BaseRelSet(item)
			var joinPreds, rest []expr.Pred
			for _, f := range filters {
				rels := expr.RelSet(f)
				refsCur, refsItem, refsOther := false, false, false
				for r := range rels {
					switch {
					case cur[r]:
						refsCur = true
					case itemRels[r]:
						refsItem = true
					default:
						refsOther = true
					}
				}
				if refsCur && refsItem && !refsOther {
					joinPreds = append(joinPreds, f)
				} else {
					rest = append(rest, f)
				}
			}
			if len(joinPreds) > 0 {
				node = plan.NewJoin(plan.InnerJoin, expr.And(joinPreds...), node, item)
				filters = rest
				remaining = append(remaining[:i], remaining[i+1:]...)
				attached = true
				break
			}
		}
		if !attached {
			// No connecting predicate: cartesian product via an
			// always-true join (kept as a filterless inner join).
			node = plan.NewJoin(plan.InnerJoin, expr.True{}, node, remaining[0])
			remaining = remaining[1:]
		}
	}
	return node, filters
}

// finishBlock applies grouping, HAVING, projection and DISTINCT.
func (l *lowerer) finishBlock(stmt *SelectStmt, sc *scope, node plan.Node, top bool) (*lowered, error) {
	hasAgg := false
	for _, it := range stmt.Items {
		if _, ok := it.Expr.(AggCall); ok {
			hasAgg = true
		}
	}
	out := &lowered{cols: make(map[string]schema.Attribute)}

	if hasAgg || len(stmt.GroupBy) > 0 {
		var keys []schema.Attribute
		for _, g := range stmt.GroupBy {
			a, err := sc.resolve(g)
			if err != nil {
				return nil, err
			}
			keys = append(keys, a)
		}
		var aggs []algebra.Aggregate
		addAgg := func(call AggCall, name string) (schema.Attribute, error) {
			l.aggSeq++
			outAttr := schema.Attr(fmt.Sprintf("q%d", l.blockID), name)
			agg := algebra.Aggregate{Out: outAttr}
			switch {
			case call.Func == "count" && call.Star:
				agg.Func = algebra.CountStar
			case call.Func == "count" && call.Distinct:
				agg.Func = algebra.CountDistinct
			case call.Func == "count":
				agg.Func = algebra.Count
			case call.Func == "sum" && call.Distinct:
				agg.Func = algebra.SumDistinct
			case call.Func == "sum":
				agg.Func = algebra.Sum
			case call.Func == "min":
				agg.Func = algebra.Min
			case call.Func == "max":
				agg.Func = algebra.Max
			case call.Func == "avg" && call.Distinct:
				agg.Func = algebra.AvgDistinct
			case call.Func == "avg":
				agg.Func = algebra.Avg
			default:
				return schema.Attribute{}, fmt.Errorf("sql: unsupported aggregate %q", call.Func)
			}
			if call.Arg != nil {
				s, err := l.lowerScalar(call.Arg, sc, nil)
				if err != nil {
					return schema.Attribute{}, err
				}
				agg.Arg = s
			}
			aggs = append(aggs, agg)
			return outAttr, nil
		}
		// Select list: group keys and aggregates.
		for _, it := range stmt.Items {
			if it.Star {
				return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
			}
			switch e := it.Expr.(type) {
			case AggCall:
				name := it.As
				if name == "" {
					name = fmt.Sprintf("%s_%d", e.Func, l.aggSeq+1)
				}
				a, err := addAgg(e, name)
				if err != nil {
					return nil, err
				}
				out.cols[name] = a
				out.order = append(out.order, name)
			case ColRef:
				a, err := sc.resolve(e)
				if err != nil {
					return nil, err
				}
				if !attrIn(keys, a) {
					return nil, fmt.Errorf("sql: column %s is not in GROUP BY", e)
				}
				name := it.As
				if name == "" {
					name = e.Column
				}
				out.cols[name] = a
				out.order = append(out.order, name)
			default:
				return nil, fmt.Errorf("sql: unsupported select item %s with GROUP BY", it.Expr)
			}
		}
		// HAVING may introduce further aggregates.
		var having expr.Pred
		if stmt.Having != nil {
			p, err := l.lowerPredWithAggs(stmt.Having, sc, addAgg)
			if err != nil {
				return nil, err
			}
			having = p
		}
		node = plan.NewGroupBy(keys, aggs, node)
		if having != nil {
			node = plan.NewSelect(having, node)
		}
	} else {
		// Plain select list: column references only.
		for _, it := range stmt.Items {
			if it.Star {
				for _, alias := range sc.order {
					for col, a := range sc.byQual[alias] {
						name := col
						if _, dup := out.cols[name]; dup {
							name = alias + "_" + col
						}
						out.cols[name] = a
						out.order = append(out.order, name)
					}
				}
				continue
			}
			c, ok := it.Expr.(ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: unsupported select item %s (only columns and aggregates)", it.Expr)
			}
			a, err := sc.resolve(c)
			if err != nil {
				return nil, err
			}
			name := it.As
			if name == "" {
				name = c.Column
			}
			if _, dup := out.cols[name]; dup {
				return nil, fmt.Errorf("sql: duplicate output column %q (add AS aliases)", name)
			}
			out.cols[name] = a
			out.order = append(out.order, name)
		}
	}

	if stmt.Distinct {
		attrs := make([]schema.Attribute, 0, len(out.order))
		for _, name := range out.order {
			attrs = append(attrs, out.cols[name])
		}
		node = plan.NewGroupBy(attrs, nil, node)
	} else if top {
		attrs := make([]schema.Attribute, 0, len(out.order))
		for _, name := range out.order {
			attrs = append(attrs, out.cols[name])
		}
		node = plan.NewProject(attrs, false, node)
	}
	if len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		if !top {
			return nil, fmt.Errorf("sql: ORDER BY / LIMIT only at the outermost query")
		}
		var keys []plan.SortKey
		for _, o := range stmt.OrderBy {
			a, err := out.resolveOutput(o.Col, sc)
			if err != nil {
				return nil, err
			}
			keys = append(keys, plan.SortKey{Attr: a, Desc: o.Desc})
		}
		// Tag the root sort as query-required: the optimizer's memo
		// path strips a limitless one into a physical order property
		// and may satisfy it without any sort at all.
		node = plan.NewSortOrigin(keys, stmt.Limit, node, plan.SortOriginQuery)
	}
	out.node = node
	return out, nil
}

// resolveOutput maps an ORDER BY column to an attribute of the final
// projection: output aliases first, then scope resolution, in both
// cases requiring membership in the projected columns.
func (lo *lowered) resolveOutput(c ColRef, sc *scope) (schema.Attribute, error) {
	if c.Qualifier == "" {
		if a, ok := lo.cols[c.Column]; ok {
			return a, nil
		}
	}
	a, err := sc.resolve(c)
	if err != nil {
		return schema.Attribute{}, err
	}
	for _, name := range lo.order {
		if lo.cols[name] == a {
			return a, nil
		}
	}
	return schema.Attribute{}, fmt.Errorf("sql: ORDER BY column %s is not in the select list", c)
}

func attrIn(attrs []schema.Attribute, a schema.Attribute) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

func isTrue(p expr.Pred) bool {
	_, ok := p.(expr.True)
	return ok
}

// lowerScalar lowers a scalar expression; aggOut, when non-nil, maps
// aggregate calls encountered in HAVING to generated columns.
func (l *lowerer) lowerScalar(e Expr, sc *scope, aggOut func(AggCall, string) (schema.Attribute, error)) (expr.Scalar, error) {
	switch x := e.(type) {
	case ColRef:
		a, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return expr.Col{Attr: a}, nil
	case Lit:
		return expr.Const{Val: x.Val}, nil
	case Param:
		return expr.Param{Idx: x.Idx}, nil
	case AggCall:
		if aggOut == nil {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x)
		}
		l.aggSeq++
		a, err := aggOut(x, fmt.Sprintf("%s_%d", x.Func, l.aggSeq))
		if err != nil {
			return nil, err
		}
		return expr.Col{Attr: a}, nil
	case BinExpr:
		var op expr.ArithOp
		switch x.Op {
		case "+":
			op = expr.Add
		case "-":
			op = expr.Sub
		case "*":
			op = expr.Mul
		case "/":
			op = expr.Div
		default:
			return nil, fmt.Errorf("sql: %q is not a scalar operator", x.Op)
		}
		lh, err := l.lowerScalar(x.L, sc, aggOut)
		if err != nil {
			return nil, err
		}
		rh, err := l.lowerScalar(x.R, sc, aggOut)
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: op, L: lh, R: rh}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported scalar expression %s", e)
	}
}

// lowerPred lowers a boolean expression into a conjunctive predicate.
func (l *lowerer) lowerPred(e Expr, sc *scope, aggOut func(AggCall, string) (schema.Attribute, error)) (expr.Pred, error) {
	if u, ok := e.(UnaryExpr); ok && u.Op == "not" {
		inner, err := l.lowerPred(u.E, sc, aggOut)
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	}
	b, ok := e.(BinExpr)
	if !ok {
		return nil, fmt.Errorf("sql: expected a predicate, got %s", e)
	}
	if b.Op == "or" {
		lp, err := l.lowerPred(b.L, sc, aggOut)
		if err != nil {
			return nil, err
		}
		rp, err := l.lowerPred(b.R, sc, aggOut)
		if err != nil {
			return nil, err
		}
		return expr.Or(lp, rp), nil
	}
	if b.Op == "and" {
		lp, err := l.lowerPred(b.L, sc, aggOut)
		if err != nil {
			return nil, err
		}
		rp, err := l.lowerPred(b.R, sc, aggOut)
		if err != nil {
			return nil, err
		}
		return expr.And(lp, rp), nil
	}
	var op value.CmpOp
	switch b.Op {
	case "=":
		op = value.EQ
	case "<>":
		op = value.NE
	case "<":
		op = value.LT
	case "<=":
		op = value.LE
	case ">":
		op = value.GT
	case ">=":
		op = value.GE
	default:
		return nil, fmt.Errorf("sql: unsupported predicate operator %q", b.Op)
	}
	lh, err := l.lowerScalar(b.L, sc, aggOut)
	if err != nil {
		return nil, err
	}
	rh, err := l.lowerScalar(b.R, sc, aggOut)
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, L: lh, R: rh}, nil
}

// lowerPredWithAggs is lowerPred with HAVING aggregate support.
func (l *lowerer) lowerPredWithAggs(e Expr, sc *scope, aggOut func(AggCall, string) (schema.Attribute, error)) (expr.Pred, error) {
	return l.lowerPred(e, sc, aggOut)
}

func containsSubquery(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case SubqueryExpr:
		return true
	case BinExpr:
		return containsSubquery(x.L) || containsSubquery(x.R)
	default:
		return false
	}
}
