package obs

import "math"

// Diff returns the movement from base to s — what happened between
// two snapshots of the same registry. The benchmark harnesses use it
// to report per-workload counter deltas instead of process-lifetime
// absolutes.
//
//   - Counters: s − base, zero deltas dropped (a counter that did not
//     move during the window is noise in a delta report).
//   - Gauges: s's current value (gauges are levels, not cumulative —
//     a "delta" of a level is meaningless, the closing value is what
//     a window report wants).
//   - Histograms: delta count, sum and buckets; mean and the
//     P50/P95/P99 bounds are recomputed from the delta buckets, so
//     they describe only the window's observations. Min/Max are not
//     recoverable from two snapshots and are left zero. Histograms
//     with no new observations are dropped.
//
// Diff of a snapshot against an unrelated registry's snapshot is
// well-defined (missing base entries count from zero) but only
// meaningful when base precedes s on the same registry.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	var out Snapshot
	for name, v := range s.Counters {
		if d := v - base.Counters[name]; d != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] = d
		}
	}
	for name, v := range s.Gauges {
		if out.Gauges == nil {
			out.Gauges = make(map[string]int64)
		}
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d := diffHistogram(h, base.Histograms[name])
		if d.Count == 0 {
			continue
		}
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		out.Histograms[name] = d
	}
	return out
}

func diffHistogram(s, base HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: s.Count - base.Count,
		Sum:   s.Sum - base.Sum,
	}
	if d.Count <= 0 {
		return HistogramSnapshot{}
	}
	d.Mean = float64(d.Sum) / float64(d.Count)
	baseAt := make(map[int64]int64, len(base.Buckets))
	for _, b := range base.Buckets {
		baseAt[b.Le] = b.N
	}
	for _, b := range s.Buckets {
		if n := b.N - baseAt[b.Le]; n > 0 {
			d.Buckets = append(d.Buckets, Bucket{Le: b.Le, N: n})
		}
	}
	d.P50 = bucketQuantile(d.Count, d.Buckets, 0.50)
	d.P95 = bucketQuantile(d.Count, d.Buckets, 0.95)
	d.P99 = bucketQuantile(d.Count, d.Buckets, 0.99)
	return d
}

// bucketQuantile returns the q-quantile upper bound over a list of
// occupied buckets sorted by ascending Le with non-cumulative counts —
// the snapshot-side twin of Histogram.Quantile.
func bucketQuantile(count int64, buckets []Bucket, q float64) int64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range buckets {
		cum += b.N
		if cum >= rank {
			return b.Le
		}
	}
	return buckets[len(buckets)-1].Le
}
