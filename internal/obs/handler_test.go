package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

type fakeQueryLog struct{ body string }

func (f *fakeQueryLog) WriteJSON(w io.Writer) error {
	_, err := io.WriteString(w, f.body)
	return err
}

func TestHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("optimizer.plans_enumerated").Add(9)
	r.HistogramVec("executor.qerror_milli", "op").With("scan").Observe(1000)
	srv := httptest.NewServer(Handler(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if fams["optimizer_plans_enumerated_total"].Samples[0].Value != 9 {
		t.Fatal("counter not exposed")
	}
	if fams["executor_qerror_milli"] == nil {
		t.Fatal("labeled histogram not exposed")
	}
}

func TestHandlerQueries(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), &fakeQueryLog{body: `{"records":[]}`}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var parsed map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["records"]; !ok {
		t.Fatal("records key missing")
	}
}

func TestHandlerQueriesNil(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestHandlerConcurrentScrape hammers /metrics while the registry is
// being written and merged into — the scrape-while-executing shape —
// and demands every response still parse strictly. Run under -race.
func TestHandlerConcurrentScrape(t *testing.T) {
	agg := NewRegistry()
	srv := httptest.NewServer(Handler(agg, nil))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			v := agg.HistogramVec("executor.qerror_milli", "op")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				agg.Counter("executor.ops").Inc()
				v.With("scan").Observe(int64(i % 4096))
				run := NewRegistry()
				run.Counter("memo.waves").Add(int64(w + 1))
				run.Histogram("executor.op_ns").Observe(int64(i))
				agg.Merge(run)
			}
		}(w)
	}

	for i := 0; i < 30; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		_, perr := ParseExposition(resp.Body)
		resp.Body.Close()
		if perr != nil {
			close(stop)
			writers.Wait()
			t.Fatalf("scrape %d failed strict parse: %v", i, perr)
		}
	}
	close(stop)
	writers.Wait()
}
