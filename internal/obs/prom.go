package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), written with the
// standard library only. The registry's free-form dotted names map
// onto the exposition charset by sanitization (every byte outside
// [a-zA-Z0-9_:] becomes '_'), counters follow the _total naming
// convention, and histograms expand into the cumulative
// _bucket{le=…}/_sum/_count series the power-of-two buckets already
// hold. Labeled metrics (CounterVec/HistogramVec children) carry their
// canonical label body straight into the sample line — EncodeLabels
// already escaped the values exposition-style.

// WriteProm renders the snapshot in the Prometheus text format.
// Output is deterministic: families sorted by exposition name,
// samples sorted by the registry name that produced them.
func (s Snapshot) WriteProm(w io.Writer) error {
	type sample struct {
		suffix string // "", "_total", "_bucket", "_sum", "_count"
		labels string // raw label body without braces, "" for none
		value  string
	}
	type family struct {
		name    string
		typ     string
		samples []sample
	}
	families := make(map[string]*family)
	var order []string
	add := func(name, typ string, mk func(labels string) []sample) error {
		base, labels := SplitLabels(name)
		fam := PromName(base)
		if typ == "counter" {
			fam += "_total"
		}
		f := families[fam]
		if f == nil {
			f = &family{name: fam, typ: typ}
			families[fam] = f
			order = append(order, fam)
		} else if f.typ != typ {
			return fmt.Errorf("obs: exposition name collision: %q emitted as both %s and %s", fam, f.typ, typ)
		}
		f.samples = append(f.samples, mk(labels)...)
		return nil
	}

	var err error
	for _, name := range sortedKeys(s.Counters) {
		v := s.Counters[name]
		err = add(name, "counter", func(labels string) []sample {
			return []sample{{labels: labels, value: fmt.Sprintf("%d", v)}}
		})
		if err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		err = add(name, "gauge", func(labels string) []sample {
			return []sample{{labels: labels, value: fmt.Sprintf("%d", v)}}
		})
		if err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		err = add(name, "histogram", func(labels string) []sample {
			var out []sample
			var cum int64
			for _, b := range h.Buckets {
				cum += b.N
				out = append(out, sample{
					suffix: "_bucket",
					labels: spliceLe(labels, fmt.Sprintf("%d", b.Le)),
					value:  fmt.Sprintf("%d", cum),
				})
			}
			// A scrape racing an Observe/Merge can catch the buckets a
			// step ahead of the count it snapshotted; clamp so the series
			// stays cumulative and +Inf == _count, which the strict
			// parser (and Prometheus itself) requires.
			total := h.Count
			if cum > total {
				total = cum
			}
			out = append(out,
				sample{suffix: "_bucket", labels: spliceLe(labels, "+Inf"), value: fmt.Sprintf("%d", total)},
				sample{suffix: "_sum", labels: labels, value: fmt.Sprintf("%d", h.Sum)},
				sample{suffix: "_count", labels: labels, value: fmt.Sprintf("%d", total)},
			)
			return out
		})
		if err != nil {
			return err
		}
	}

	sort.Strings(order)
	for _, fam := range order {
		f := families[fam]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, sm := range f.samples {
			line := f.name + sm.suffix
			if sm.labels != "" {
				line += "{" + sm.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", line, sm.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteProm renders a point-in-time snapshot of the registry in the
// Prometheus text format; the /metrics handler serves it.
func (r *Registry) WriteProm(w io.Writer) error { return r.Snapshot().WriteProm(w) }

// spliceLe appends the le label to a (possibly empty) label body.
func spliceLe(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

// PromName maps a registry name onto the exposition metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: invalid bytes become '_', and a
// leading digit is prefixed.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
