// Package obs is the engine's zero-dependency observability layer: a
// lightweight metrics registry (counters, gauges, histograms, all
// safe for concurrent update via atomics) and a span-based tracer for
// phase timing. The optimizer records rule firings, dedup hit rates
// and per-phase wall time into it; the executor records per-operator
// row counts, hash-build sizes and nested-loop fallbacks. Snapshots
// serialize to JSON, which is how EXPLAIN ANALYZE output reaches
// external tooling and the benchmarks.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, safe for concurrent
// use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (either sign).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds values v with
// 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0 and v == 1 lands in
// bucket 1), covering the whole int64 range.
const histBuckets = 65

// Histogram accumulates an int64 distribution in power-of-two
// buckets, safe for concurrent use. It is sized for nanosecond
// timings and row counts alike; quantiles are approximate (bucket
// upper bound). Obtain instances from NewHistogram or a Registry —
// the zero value has uninitialized min/max sentinels.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 while empty
	max     atomic.Int64 // MinInt64 while empty
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a wall-time measurement in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1])
// from the bucket boundaries, or 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// Bucket is one occupied histogram bucket in a snapshot: Le is the
// bucket's inclusive upper bound (0, 1, 3, 7, …, 2^i-1) and N its
// non-cumulative observation count. Only occupied buckets are
// exported, so the slice stays small; the Prometheus writer
// re-accumulates them into the format's cumulative le series.
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// bucketBound returns bucket i's inclusive upper bound.
func bucketBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// HistogramSnapshot is the serializable summary of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketBound(i), N: n})
		}
	}
	return s
}

// merge folds src's observations into h: counts, sums and buckets add,
// min/max widen. Safe against concurrent observation of either side.
func (h *Histogram) merge(src *Histogram) {
	n := src.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(src.sum.Load())
	for i := 0; i < histBuckets; i++ {
		if b := src.buckets[i].Load(); b > 0 {
			h.buckets[i].Add(b)
		}
	}
	for _, v := range []int64{src.min.Load(), src.max.Load()} {
		for {
			old := h.min.Load()
			if v >= old || h.min.CompareAndSwap(old, v) {
				break
			}
		}
		for {
			old := h.max.Load()
			if v <= old || h.max.CompareAndSwap(old, v) {
				break
			}
		}
	}
}

// Registry holds named metrics. Lookups get-or-create, so callers
// never register up front; names are free-form dotted paths
// ("optimizer.phase.saturate_ns") with an optional bracketed label
// ("executor.nested_loop_fallback[pred]").
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the sink for code paths
// that are not handed an explicit one (e.g. executor.JoinExec's
// nested-loop fallback accounting).
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Safe
// to call on a nil registry (falls back to Default).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		r = defaultRegistry
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		r = defaultRegistry
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		r = defaultRegistry
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Merge folds src's metrics into r: counters add, gauges take src's
// value, histograms merge bucket-wise (counts, sums and buckets add,
// min/max widen). This is how a per-query private registry — the
// EXPLAIN ANALYZE isolation contract — feeds a process-wide aggregate
// one for /metrics exposition without the query paths ever contending
// on shared metric maps. Safe for concurrent use on both sides.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	if r == nil {
		r = defaultRegistry
	}
	src.mu.RLock()
	counters := make(map[string]*Counter, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(src.histograms))
	for name, h := range src.histograms {
		histograms[name] = h
	}
	src.mu.RUnlock()
	for name, c := range counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range gauges {
		r.Gauge(name).Set(g.Value())
	}
	for name, h := range histograms {
		r.Histogram(name).merge(h)
	}
}

// Reset drops every metric; meant for tests and between CLI runs.
func (r *Registry) Reset() {
	if r == nil {
		r = defaultRegistry
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable
// and stable under iteration.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		r = defaultRegistry
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// String renders the snapshot as sorted "name value" lines, the
// -stats output format.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-52s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-52s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-52s n=%d sum=%d mean=%.1f min=%d max=%d p50<=%d p95<=%d p99<=%d\n",
			n, h.Count, h.Sum, h.Mean, h.Min, h.Max, h.P50, h.P95, h.P99)
	}
	return b.String()
}

// MarshalJSON keeps Snapshot encodable even when empty.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal(alias(s))
}
