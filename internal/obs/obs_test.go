package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObsConcurrentCounters hammers one counter and one gauge from
// many goroutines; run under -race this also proves the update paths
// are data-race free.
func TestObsConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("test.hits").Inc()
				r.Counter("test.bulk").Add(3)
				r.Gauge("test.level").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.hits").Value(); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("test.bulk").Value(); got != 3*workers*perWorker {
		t.Errorf("bulk = %d, want %d", got, 3*workers*perWorker)
	}
	if got := r.Gauge("test.level").Value(); got != workers*perWorker {
		t.Errorf("level = %d, want %d", got, workers*perWorker)
	}
}

// TestObsConcurrentHistogram checks count/sum/min/max under
// concurrent observation.
func TestObsConcurrentHistogram(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				r.Histogram("test.lat").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("test.lat")
	if h.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	wantSum := int64(workers) * perWorker * (perWorker + 1) / 2
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
	snap := r.Snapshot().Histograms["test.lat"]
	if snap.Min != 1 || snap.Max != perWorker {
		t.Errorf("min/max = %d/%d, want 1/%d", snap.Min, snap.Max, perWorker)
	}
	if snap.P50 < 255 || snap.P50 > 511 {
		t.Errorf("p50 = %d, want within [255,511] (median 250.5 rounds to bucket bound)", snap.P50)
	}
}

// TestObsHistogramBuckets pins the power-of-two bucketing and
// quantile bounds on a deterministic distribution.
func TestObsHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 1, 2, 3, 900} {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	// rank ceil(0.5*6)=3 lands in the two 1s + the 0 → bucket 1, bound 1.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("q0.5 = %d, want 1", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("q1 = %d, want 1023 (900 is in [512,1024))", got)
	}
	if h.Mean() != (1+1+2+3+900)/6.0 {
		t.Errorf("mean = %f", h.Mean())
	}
}

// TestObsEmptyHistogramSnapshot: an unobserved histogram must not
// leak its sentinels into the snapshot.
func TestObsEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	_ = r.Histogram("test.empty")
	snap := r.Snapshot().Histograms["test.empty"]
	if snap.Min != 0 || snap.Max != 0 || snap.Count != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", snap)
	}
	if got := r.Histogram("test.empty").Quantile(0.9); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestObsConcurrentRegistryCreation races get-or-create on the same
// and different names; every goroutine must land on the same metric
// instance for a given name.
func TestObsConcurrentRegistryCreation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.Counter("shared").Inc()
			r.Histogram("shared.h").Observe(int64(w))
			r.Gauge("shared.g").Set(int64(w))
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 32 {
		t.Errorf("shared counter = %d, want 32 (lost a creation race?)", got)
	}
	if got := r.Histogram("shared.h").Count(); got != 32 {
		t.Errorf("shared histogram count = %d, want 32", got)
	}
}

// TestObsSnapshotJSONRoundTrip: the snapshot must survive
// marshal/unmarshal bit-for-bit — this is the EXPLAIN ANALYZE JSON
// contract.
func TestObsSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(100)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["a.b"] != 7 || got.Gauges["g"] != -2 || got.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// TestObsSnapshotString checks the text rendering is sorted and
// complete.
func TestObsSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	out := r.Snapshot().String()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") {
		t.Fatalf("missing metrics in %q", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Errorf("output not sorted:\n%s", out)
	}
}

// TestObsTracerSpans exercises nesting, notes, rendering and the
// nil-safety contract.
func TestObsTracerSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("optimize")
	child := root.Child("saturate")
	child.Annotate("plans=%d", 42)
	child.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "optimize" {
		t.Fatalf("spans = %+v", spans)
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "saturate" {
		t.Fatalf("children = %+v", spans[0].Children)
	}
	if spans[0].Children[0].Notes[0] != "plans=42" {
		t.Errorf("notes = %v", spans[0].Children[0].Notes)
	}
	if spans[0].DurNs < spans[0].Children[0].DurNs {
		t.Errorf("parent (%d ns) shorter than child (%d ns)", spans[0].DurNs, spans[0].Children[0].DurNs)
	}
	if out := tr.String(); !strings.Contains(out, "saturate") || !strings.Contains(out, "plans=42") {
		t.Errorf("render missing content:\n%s", out)
	}

	// Nil tracer and spans swallow everything.
	var nilTr *Tracer
	s := nilTr.Start("x")
	s.Child("y").Annotate("z")
	s.End()
	if nilTr.String() != "" || nilTr.Snapshot() != nil || s.Elapsed() != 0 {
		t.Error("nil tracer leaked state")
	}
}

// TestObsConcurrentTracer builds spans from many goroutines under one
// parent — the -race gate for the tracer's locking.
func TestObsConcurrentTracer(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := root.Child("worker")
			s.Annotate("w=%d", w)
			time.Sleep(time.Microsecond)
			s.End()
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Snapshot()[0].Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

// TestObsDefaultRegistry: nil receivers route to the shared default.
func TestObsDefaultRegistry(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	var nilReg *Registry
	nilReg.Counter("via.nil").Inc()
	if got := Default().Counter("via.nil").Value(); got != 1 {
		t.Errorf("default counter = %d, want 1", got)
	}
}

// TestObsHistogramExtremes: observations at the int64 edges must not
// panic or mis-bucket.
func TestObsHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxInt64)
	h.Observe(math.MinInt64)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Errorf("q1 = %d, want MaxInt64", got)
	}
}
