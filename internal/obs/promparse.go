package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Strict validating parser for the Prometheus text exposition format
// (version 0.0.4), stdlib only. It exists so the engine can check its
// own /metrics output — the exposition tests and the `make obs` smoke
// target scrape an endpoint and run every line through it. It is
// deliberately stricter than real scrapers: unknown sample names
// inside a family, non-cumulative histogram buckets, a missing +Inf
// bucket, duplicate series or a malformed escape all fail the parse.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: a # TYPE line plus its samples.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseExposition parses and validates a complete exposition. It
// returns the families keyed by name, or the first violation found.
func ParseExposition(r io.Reader) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	seen := make(map[string]bool) // duplicate-series detection
	var current *PromFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families, &current); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if current == nil {
			return nil, fmt.Errorf("line %d: sample %q before any # TYPE line", lineNo, s.Name)
		}
		if !sampleBelongs(current, s.Name) {
			return nil, fmt.Errorf("line %d: sample %q does not belong to family %q (type %s)",
				lineNo, s.Name, current.Name, current.Type)
		}
		serik := s.Name + "\xff" + canonicalLabels(s.Labels)
		if seen[serik] {
			return nil, fmt.Errorf("line %d: duplicate series %s%v", lineNo, s.Name, s.Labels)
		}
		seen[serik] = true
		current.Samples = append(current.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]*PromFamily, current **PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		// "# arbitrary comment" is legal and ignored.
		return nil
	}
	switch fields[1] {
	case "TYPE":
		name, typ := fields[2], ""
		if len(fields) == 4 {
			typ = fields[3]
		}
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid type %q for %q", typ, name)
		}
		if f := families[name]; f != nil && f.Type != "" {
			return fmt.Errorf("duplicate TYPE line for %q", name)
		}
		f := families[name]
		if f == nil {
			f = &PromFamily{Name: name}
			families[name] = f
		}
		f.Type = typ
		*current = f
	case "HELP":
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP line", name)
		}
		f := families[name]
		if f == nil {
			f = &PromFamily{Name: name}
			families[name] = f
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		body, tail, err := splitLabelBody(rest[1:])
		if err != nil {
			return s, err
		}
		labels, err := parseLabels(body)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp after the value is legal in the format; we emit none,
	// and the strict parser rejects one.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// splitLabelBody scans an escaped label body up to its closing brace,
// returning the body and everything after the brace.
func splitLabelBody(rest string) (body, tail string, err error) {
	inQuote := false
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return rest[:i], rest[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label body in %q", rest)
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '=' in %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		if len(body) <= eq+1 || body[eq+1] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		value, rest, err := parseQuoted(body[eq+2:])
		if err != nil {
			return nil, fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = value
		body = rest
		if len(body) > 0 {
			if body[0] != ',' {
				return nil, fmt.Errorf("expected ',' between label pairs, got %q", body)
			}
			body = body[1:]
		}
	}
	return labels, nil
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i++
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleBelongs reports whether a sample name is legal inside the
// family: the bare name for counters/gauges/untyped, the
// _bucket/_sum/_count expansions for histograms (and summaries'
// quantile/_sum/_count).
func sampleBelongs(f *PromFamily, name string) bool {
	switch f.Type {
	case "histogram":
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	case "summary":
		return name == f.Name || name == f.Name+"_sum" || name == f.Name+"_count"
	default:
		return name == f.Name
	}
}

// validateFamily applies the cross-sample rules: every family with a
// TYPE must have samples, and histogram buckets must be cumulative,
// le-ordered and closed by a +Inf bucket that equals _count.
func validateFamily(f *PromFamily) error {
	if f.Type == "" {
		return fmt.Errorf("family %q has samples or HELP but no TYPE line", f.Name)
	}
	if len(f.Samples) == 0 {
		return fmt.Errorf("family %q has a TYPE line but no samples", f.Name)
	}
	if f.Type != "histogram" {
		return nil
	}
	// Group bucket samples by their non-le label set.
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	grp := func(labels map[string]string) *series {
		key := canonicalLabelsExcept(labels, "le")
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %q: bucket sample without le label", f.Name)
			}
			v, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("family %q: bad le %q", f.Name, le)
			}
			g := grp(s.Labels)
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_count":
			g := grp(s.Labels)
			g.count = s.Value
			g.hasCnt = true
		}
	}
	for key, g := range groups {
		if !g.hasCnt {
			return fmt.Errorf("family %q{%s}: buckets without a _count sample", f.Name, key)
		}
		if len(g.les) == 0 {
			return fmt.Errorf("family %q{%s}: histogram without buckets", f.Name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("family %q{%s}: le values not increasing", f.Name, key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("family %q{%s}: bucket counts not cumulative", f.Name, key)
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], 1) {
			return fmt.Errorf("family %q{%s}: missing +Inf bucket", f.Name, key)
		}
		if g.counts[last] != g.count {
			return fmt.Errorf("family %q{%s}: +Inf bucket %v != count %v", f.Name, key, g.counts[last], g.count)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}
