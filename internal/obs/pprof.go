package obs

import (
	"context"
	"runtime/pprof"
)

// WithPhase runs f with pprof labels engine=<engine>, phase=<phase>
// attached to the calling goroutine. Goroutines started inside f —
// the saturation, memo-apply, costing and partitioned-join worker
// pools all spawn within their phase — inherit the labels, so a CPU
// profile of the process attributes samples to optimizer/executor
// phases instead of one undifferentiated call tree. The previous
// label set is restored when f returns; nesting composes (the inner
// labels win for the inner region).
func WithPhase(ctx context.Context, engine, phase string, f func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("engine", engine, "phase", phase), func(context.Context) { f() })
}
