package obs

import (
	"io"
	"net/http"
)

// QueryLog is the flight-recorder face the HTTP surface needs: a JSON
// dump of recent query records. flight.Recorder implements it; the
// indirection keeps obs free of a dependency on its own subpackage.
type QueryLog interface {
	WriteJSON(w io.Writer) error
}

// Handler returns the observability HTTP surface:
//
//	GET /metrics        Prometheus text exposition of r
//	GET /debug/queries  flight-recorder JSON (404 when queries is nil)
//
// Both endpoints snapshot under read locks and atomics only, so
// scraping while queries execute is safe and never blocks the engine.
// A nil registry serves the process-wide default.
func Handler(r *Registry, queries QueryLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			panic(http.ErrAbortHandler)
		}
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, req *http.Request) {
		if queries == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := queries.WriteJSON(w); err != nil {
			panic(http.ErrAbortHandler)
		}
	})
	return mux
}
