package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric vectors. A vector is a family of metrics sharing one
// base name and a small, fixed set of label names; each distinct label
// value combination resolves to its own child metric, stored in the
// registry under the canonical encoded name
//
//	base{k1="v1",k2="v2"}
//
// with the pairs sorted by label name and values escaped. Because the
// children live in the registry's ordinary maps under their encoded
// names, every existing consumer — Snapshot, Diff, Merge, String and
// the Prometheus writer — handles labeled metrics with no special
// cases, and two vectors built for the same (name, labels) resolve to
// the same children.
//
// Vectors are for small label sets (operator types, phases, engines):
// every combination stays resident for the life of the registry, which
// is the exposition contract — a counter that stops moving still
// scrapes.

// CounterVec is a family of counters over a fixed label set. Obtain
// one from Registry.CounterVec; the zero value is not usable.
type CounterVec struct {
	r     *Registry
	base  string
	names []string // sanitized, in declaration order

	mu       sync.RWMutex
	children map[string]*Counter
}

// HistogramVec is a family of histograms over a fixed label set.
// Obtain one from Registry.HistogramVec.
type HistogramVec struct {
	r     *Registry
	base  string
	names []string

	mu       sync.RWMutex
	children map[string]*Histogram
}

// CounterVec returns a counter family with the given label names.
// Label names are sanitized to the exposition charset
// ([a-zA-Z_][a-zA-Z0-9_]*). Safe to call on a nil registry (falls
// back to Default). Hold the vector: each call allocates a fresh
// handle (the children are shared through the registry regardless).
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		r = defaultRegistry
	}
	return &CounterVec{r: r, base: name, names: sanitizeLabelNames(labelNames)}
}

// HistogramVec returns a histogram family with the given label names.
func (r *Registry) HistogramVec(name string, labelNames ...string) *HistogramVec {
	if r == nil {
		r = defaultRegistry
	}
	return &HistogramVec{r: r, base: name, names: sanitizeLabelNames(labelNames)}
}

// With returns the child counter for the given label values, in the
// label-name order the vector was declared with. It panics on a
// value-count mismatch — that is a programming error, not data.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.names) {
		panic("obs: CounterVec " + v.base + ": label value count mismatch")
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	c = v.r.Counter(EncodeLabels(v.base, v.names, values))
	v.mu.Lock()
	if v.children == nil {
		v.children = make(map[string]*Counter)
	}
	v.children[key] = c
	v.mu.Unlock()
	return c
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.names) {
		panic("obs: HistogramVec " + v.base + ": label value count mismatch")
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	h = v.r.Histogram(EncodeLabels(v.base, v.names, values))
	v.mu.Lock()
	if v.children == nil {
		v.children = make(map[string]*Histogram)
	}
	v.children[key] = h
	v.mu.Unlock()
	return h
}

// EncodeLabels builds the canonical registry name of a labeled metric:
// base{k1="v1",k2="v2"}, pairs sorted by label name, values escaped
// per the exposition format. With no labels it returns base unchanged.
func EncodeLabels(base string, names, values []string) string {
	if len(names) == 0 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, len(names))
	for i := range names {
		pairs[i] = pair{names[i], values[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels inverts EncodeLabels far enough for renderers: it
// returns the base name and the raw (already escaped) label body, or
// ("", "") body when the name carries no labels.
func SplitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeLabelNames maps arbitrary label names onto the exposition
// charset [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = sanitizeLabelName(n)
	}
	return out
}

func sanitizeLabelName(n string) string {
	if n == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range n {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
