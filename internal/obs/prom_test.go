package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// promRegistry builds a registry exercising every exposition shape:
// plain and labeled counters, a gauge, plain and labeled histograms,
// and names needing sanitization.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("optimizer.plans_enumerated").Add(2752)
	r.CounterVec("executor.op_count", "op").With("join.inner").Add(3)
	r.CounterVec("executor.op_count", "op").With("scan").Add(7)
	r.Gauge("optimizer.last_considered").Set(2752)
	h := r.Histogram("executor.op_ns")
	for _, v := range []int64{5, 120, 90000, 1 << 22} {
		h.Observe(v)
	}
	qv := r.HistogramVec("executor.qerror_milli", "op")
	qv.With("scan").Observe(1000)
	qv.With("scan").Observe(3500)
	qv.With("join.inner").Observe(12000)
	return r
}

func TestWritePromParsesStrict(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("strict parse of own output failed: %v\n%s", err, text)
	}

	c := fams["optimizer_plans_enumerated_total"]
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 2752 {
		t.Fatalf("counter family = %+v", c)
	}
	ops := fams["executor_op_count_total"]
	if ops == nil || len(ops.Samples) != 2 {
		t.Fatalf("labeled counter family = %+v", ops)
	}
	byOp := map[string]float64{}
	for _, s := range ops.Samples {
		byOp[s.Labels["op"]] = s.Value
	}
	if byOp["join.inner"] != 3 || byOp["scan"] != 7 {
		t.Fatalf("labeled counter values = %v", byOp)
	}
	if g := fams["optimizer_last_considered"]; g == nil || g.Type != "gauge" || g.Samples[0].Value != 2752 {
		t.Fatalf("gauge family = %+v", g)
	}

	hist := fams["executor_op_ns"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hist)
	}
	var infSeen, sum, count float64
	for _, s := range hist.Samples {
		switch s.Name {
		case "executor_op_ns_bucket":
			if s.Labels["le"] == "+Inf" {
				infSeen = s.Value
			}
		case "executor_op_ns_sum":
			sum = s.Value
		case "executor_op_ns_count":
			count = s.Value
		}
	}
	if infSeen != 4 || count != 4 || sum != float64(5+120+90000+1<<22) {
		t.Fatalf("histogram inf/count/sum = %v/%v/%v", infSeen, count, sum)
	}

	// The labeled histogram has one bucket series per op value, each
	// closed by its own +Inf.
	qerr := fams["executor_qerror_milli"]
	if qerr == nil {
		t.Fatal("labeled histogram family missing")
	}
	infs := map[string]float64{}
	for _, s := range qerr.Samples {
		if s.Name == "executor_qerror_milli_bucket" && s.Labels["le"] == "+Inf" {
			infs[s.Labels["op"]] = s.Value
		}
	}
	if infs["scan"] != 2 || infs["join.inner"] != 1 {
		t.Fatalf("labeled histogram +Inf counts = %v", infs)
	}
}

// TestWritePromEveryLineValid walks the raw output line by line: each
// is a TYPE comment or a sample whose name matches the exposition
// charset — no raw dotted registry names leak through.
func TestWritePromEveryLineValid(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if !validMetricName(s.Name) || strings.Contains(s.Name, ".") {
			t.Fatalf("line %q: invalid sample name %q", line, s.Name)
		}
		for k := range s.Labels {
			if !validLabelName(k) {
				t.Fatalf("line %q: invalid label name %q", line, k)
			}
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := promRegistry()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteProm output is not deterministic")
	}
}

func TestWritePromTypeCollision(t *testing.T) {
	r := NewRegistry()
	// gauge "x" and histogram "x" share the exposition name "x".
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err == nil {
		t.Fatal("expected a collision error for gauge and histogram sharing a name")
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"executor.op.join.left-outer": "executor_op_join_left_outer",
		"9lives":                      "_9lives",
		"ok_name:sub":                 "ok_name:sub",
		"":                            "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":       "m 1\n",
		"bad type":                 "# TYPE m zebra\nm 1\n",
		"duplicate TYPE":           "# TYPE m counter\nm 1\n# TYPE m counter\n",
		"foreign sample in family": "# TYPE m counter\nother 1\n",
		"duplicate series":         "# TYPE m counter\nm 1\nm 2\n",
		"trailing timestamp":       "# TYPE m counter\nm 1 1234567\n",
		"unterminated label":       "# TYPE m counter\nm{a=\"x 1\n",
		"bad escape":               "# TYPE m counter\nm{a=\"\\q\"} 1\n",
		"unquoted label value":     "# TYPE m counter\nm{a=x} 1\n",
		"duplicate label":          "# TYPE m counter\nm{a=\"1\",a=\"2\"} 1\n",
		"type without samples":     "# TYPE m counter\n",
		"histogram without +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"histogram le not sorted":  "# TYPE h histogram\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"histogram bucket sans le": "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"invalid metric name":      "# TYPE m-x counter\nm-x 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, text)
		}
	}
}

func TestParseExpositionAccepts(t *testing.T) {
	text := "# a freeform comment\n" +
		"# HELP m helpful words\n" +
		"# TYPE m counter\n" +
		"m{a=\"x\"} 1\n" +
		"m{a=\"y\"} 2\n" +
		"# TYPE g gauge\n" +
		"g NaN\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 2\n" +
		"h_bucket{le=\"+Inf\"} 3\n" +
		"h_sum 12\n" +
		"h_count 3\n"
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if fams["m"].Help != "helpful words" {
		t.Fatalf("help = %q", fams["m"].Help)
	}
	if !math.IsNaN(fams["g"].Samples[0].Value) {
		t.Fatal("NaN gauge not parsed")
	}
	if len(fams["h"].Samples) != 4 {
		t.Fatalf("histogram samples = %d", len(fams["h"].Samples))
	}
}
