package obs

import (
	"testing"
)

func TestDiffCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(5)
	r.Counter("b").Add(2)
	before := r.Snapshot()
	r.Counter("a").Add(3)
	r.Counter("c").Inc()
	d := r.Snapshot().Diff(before)
	if d.Counters["a"] != 3 || d.Counters["c"] != 1 {
		t.Fatalf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.Counters["b"]; ok {
		t.Fatalf("unmoved counter b should be dropped: %v", d.Counters)
	}
}

func TestDiffGaugesAreLevels(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g").Set(10)
	before := r.Snapshot()
	r.Gauge("g").Set(4)
	d := r.Snapshot().Diff(before)
	if d.Gauges["g"] != 4 {
		t.Fatalf("gauge in diff = %d, want closing value 4", d.Gauges["g"])
	}
}

func TestDiffHistogramsRecomputeQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// Before the window: 100 small observations.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	before := r.Snapshot()
	// The window itself: 10 large observations.
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20)
	}
	d := r.Snapshot().Diff(before)
	w := d.Histograms["h"]
	if w.Count != 10 || w.Sum != 10<<20 {
		t.Fatalf("window count/sum = %d/%d", w.Count, w.Sum)
	}
	// All window observations are large, so the window quantiles must
	// reflect only them — not the pre-window values.
	if w.P50 < 1<<20-1 || w.P99 < 1<<20-1 {
		t.Fatalf("window quantiles polluted by pre-window data: p50=%d p99=%d", w.P50, w.P99)
	}
	// A histogram that did not move is dropped.
	r.Histogram("idle").Observe(1)
	before2 := r.Snapshot()
	d2 := r.Snapshot().Diff(before2)
	if _, ok := d2.Histograms["idle"]; ok {
		t.Fatalf("idle histogram should be dropped from diff")
	}
}

func TestDiffAgainstEmptyBase(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Histogram("h").Observe(5)
	d := r.Snapshot().Diff(Snapshot{})
	if d.Counters["a"] != 7 || d.Histograms["h"].Count != 1 {
		t.Fatalf("diff vs empty = %+v", d)
	}
}

func TestRegistryMerge(t *testing.T) {
	agg := NewRegistry()
	agg.Counter("runs").Add(1)
	agg.Histogram("ns").Observe(100)

	run := NewRegistry()
	run.Counter("runs").Add(1)
	run.Counter("memo.waves").Add(3)
	run.Gauge("last").Set(42)
	run.Histogram("ns").Observe(7)
	run.Histogram("ns").Observe(200000)

	agg.Merge(run)
	s := agg.Snapshot()
	if s.Counters["runs"] != 2 || s.Counters["memo.waves"] != 3 {
		t.Fatalf("merged counters = %v", s.Counters)
	}
	if s.Gauges["last"] != 42 {
		t.Fatalf("merged gauge = %v", s.Gauges)
	}
	h := s.Histograms["ns"]
	if h.Count != 3 || h.Sum != 200107 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if h.Min != 7 || h.Max != 200000 {
		t.Fatalf("merged min/max = %d/%d, want 7/200000", h.Min, h.Max)
	}
	// Merging a nil src is a no-op; merging into nil goes to Default.
	agg.Merge(nil)
	if agg.Snapshot().Counters["runs"] != 2 {
		t.Fatal("nil merge changed the registry")
	}
}

func TestMergePreservesBucketQuantiles(t *testing.T) {
	agg := NewRegistry()
	run1, run2 := NewRegistry(), NewRegistry()
	for i := 0; i < 99; i++ {
		run1.Histogram("h").Observe(1)
	}
	run2.Histogram("h").Observe(1 << 30)
	agg.Merge(run1)
	agg.Merge(run2)
	h := agg.Snapshot().Histograms["h"]
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.P50 != 1 {
		t.Fatalf("p50 = %d, want 1", h.P50)
	}
	if h.P99 != 1 {
		t.Fatalf("p99 = %d, want 1 (99 of 100 observations are 1)", h.P99)
	}
}
