package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer collects a forest of timed spans. All methods are nil-safe:
// a nil *Tracer (and the nil *Spans it hands out) swallow every call,
// so instrumented code paths need no "is tracing on" branches.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span
}

// NewTracer returns an empty tracer whose span offsets are relative
// to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one timed region, possibly with children and attributes.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	mu       sync.Mutex
	children []*Span
	attrs    []string
	tracer   *Tracer
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), tracer: t}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), tracer: s.tracer}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Annotate attaches a formatted note to the span.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// End closes the span; further Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Elapsed returns the span's duration (time since start if still
// open).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is the serializable form of a span subtree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	OffsetNs int64          `json:"offsetNs"` // start relative to the tracer epoch
	DurNs    int64          `json:"durNs"`
	Notes    []string       `json:"notes,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the tracer's span forest.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	epoch := t.epoch
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(roots))
	for i, s := range roots {
		out[i] = s.snapshot(epoch)
	}
	return out
}

func (s *Span) snapshot(epoch time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:     s.name,
		OffsetNs: s.start.Sub(epoch).Nanoseconds(),
		DurNs:    s.dur.Nanoseconds(),
		Notes:    append([]string(nil), s.attrs...),
	}
	if !s.ended {
		snap.DurNs = time.Since(s.start).Nanoseconds()
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(epoch))
	}
	return snap
}

// String renders the span forest as an indented tree with durations
// and each child's share of its parent, the -trace output format.
func (t *Tracer) String() string {
	if t == nil {
		return ""
	}
	return RenderSpans(t.Snapshot())
}

// RenderSpans renders an already-snapshotted span forest; it is what
// decoded JSON reports use to reproduce -trace output.
func RenderSpans(spans []SpanSnapshot) string {
	var b strings.Builder
	for _, s := range spans {
		renderSpan(&b, s, 0, s.DurNs)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s SpanSnapshot, depth int, parentNs int64) {
	pad := strings.Repeat("  ", depth)
	share := ""
	if depth > 0 && parentNs > 0 {
		share = fmt.Sprintf(" (%.0f%%)", 100*float64(s.DurNs)/float64(parentNs))
	}
	fmt.Fprintf(b, "%s%-*s %12s%s\n", pad, 24-2*depth, s.Name, time.Duration(s.DurNs), share)
	for _, note := range s.Notes {
		fmt.Fprintf(b, "%s  · %s\n", pad, note)
	}
	for _, c := range s.Children {
		renderSpan(b, c, depth+1, s.DurNs)
	}
}
