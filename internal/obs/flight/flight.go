// Package flight is the engine's query flight recorder: a bounded,
// race-safe ring of recent query records. Every instrumented
// execution deposits one Record — query and plan fingerprints, phase
// timings, memo/guard counters, degradation and budget-trip flags,
// and the per-operator estimated-vs-actual rows with their q-errors
// keyed by subtree fingerprint. The ring holds the last N queries in
// O(N) memory forever: a long-lived service keeps a recent-history
// window for /debug/queries without unbounded growth, and the
// per-subtree q-error rows are the data feed the cardinality-feedback
// loop consumes.
package flight

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultCapacity is the ring size New uses for capacity <= 0.
const DefaultCapacity = 128

// Phase is one optimizer/executor phase's wall time.
type Phase struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// OpStat is one operator's estimate-accuracy row. Key is the subtree
// fingerprint (plan.Key of the operator's subtree), which is what
// makes the row actionable: the same subtree appearing under a
// different parent — or in a different query — has the same key, so
// feedback learned from one execution transfers to every plan that
// contains the subtree.
type OpStat struct {
	Op      string  `json:"op"`
	Key     string  `json:"key"`
	EstRows float64 `json:"estRows"`
	Rows    int     `json:"rows"`
	// QError is max(est/actual, actual/est) with both sides clamped to
	// at least one row; 1.0 means a perfect estimate.
	QError float64 `json:"qError,omitempty"`
	Ns     int64   `json:"ns"`
}

// QError computes the q-error of an estimate against an actual
// cardinality: max(est/actual, actual/est), both clamped to >= 1 row
// so empty results and missing estimates stay finite. The result is
// always >= 1; 1.0 is a perfect estimate.
func QError(est float64, actual int) float64 {
	e := est
	if e < 1 {
		e = 1
	}
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// Record is one query's flight entry.
type Record struct {
	// Seq is the recorder-assigned monotone sequence number; Add
	// stamps it.
	Seq   int64     `json:"seq"`
	Start time.Time `json:"start"`
	// Query is the query fingerprint (plan.Key of the plan as
	// written); Hash is its 64-bit form for compact indexing.
	Query string `json:"query"`
	Hash  uint64 `json:"hash,omitempty"`
	// PlanKey is the chosen plan's fingerprint.
	PlanKey string `json:"planKey,omitempty"`
	DurNs   int64  `json:"durNs"`
	RowsOut int    `json:"rowsOut"`
	// Degraded carries the optimizer's degradation reason, if any.
	Degraded string `json:"degraded,omitempty"`
	// BudgetTrips names the budget kinds that tripped during the run.
	BudgetTrips []string `json:"budgetTrips,omitempty"`
	// Slow is stamped by Add when DurNs meets the recorder's
	// slow-query threshold.
	Slow bool `json:"slow,omitempty"`
	// Error is the terminal error of a failed execution; successful
	// runs leave it empty.
	Error  string  `json:"error,omitempty"`
	Phases []Phase `json:"phases,omitempty"`
	// Counters is the run's memo/guard counter subset.
	Counters map[string]int64 `json:"counters,omitempty"`
	Ops      []OpStat         `json:"ops,omitempty"`
}

// Recorder is the bounded ring. All methods are safe for concurrent
// use and nil-safe (a nil recorder swallows records and dumps empty),
// matching the rest of the obs layer's "no is-it-on branches"
// contract.
type Recorder struct {
	mu     sync.Mutex
	ring   []Record
	next   int // ring slot the next Add writes
	n      int // occupied slots, <= len(ring)
	seq    int64
	slowNs int64
	slow   int64 // records stamped Slow
}

// New returns a recorder holding the last capacity records
// (DefaultCapacity for capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Record, capacity)}
}

// SetSlowThreshold sets the duration at or above which Add stamps
// records Slow. Zero (the default) disables stamping.
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slowNs = d.Nanoseconds()
	r.mu.Unlock()
}

// SlowThreshold returns the current slow-query threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.slowNs)
}

// Add deposits one record, stamping Seq and Slow, and returns the
// stamped record. The oldest record is overwritten once the ring is
// full — the bound never grows.
func (r *Recorder) Add(rec Record) Record {
	if r == nil {
		return rec
	}
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	if r.slowNs > 0 && rec.DurNs >= r.slowNs {
		rec.Slow = true
		r.slow++
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
	return rec
}

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns the number of records ever added (Seq of the newest).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Snapshot copies the held records, newest first.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.n)
	for i := 0; i < r.n; i++ {
		// next-1 is the newest slot; walk backwards.
		idx := (r.next - 1 - i + len(r.ring)*2) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// dump is the /debug/queries JSON schema.
type dump struct {
	Capacity        int      `json:"capacity"`
	Len             int      `json:"len"`
	Total           int64    `json:"total"`
	Dropped         int64    `json:"dropped"`
	SlowThresholdNs int64    `json:"slowThresholdNs,omitempty"`
	SlowCount       int64    `json:"slowCount,omitempty"`
	Records         []Record `json:"records"`
}

// WriteJSON dumps the recorder — capacity, totals, slow-query stats
// and the held records newest first — as one JSON document; it is the
// /debug/queries endpoint body. A nil recorder writes an empty dump.
func (r *Recorder) WriteJSON(w io.Writer) error {
	d := dump{Records: []Record{}}
	if r != nil {
		records := r.Snapshot()
		r.mu.Lock()
		d.Capacity = len(r.ring)
		d.Len = r.n
		d.Total = r.seq
		d.Dropped = r.seq - int64(r.n)
		d.SlowThresholdNs = r.slowNs
		d.SlowCount = r.slow
		r.mu.Unlock()
		d.Records = records
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
