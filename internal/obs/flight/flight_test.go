package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est    float64
		actual int
		want   float64
	}{
		{100, 100, 1},
		{100, 50, 2},
		{50, 100, 2},
		{0, 100, 100}, // missing estimate clamps to 1
		{100, 0, 100}, // empty result clamps to 1
		{0, 0, 1},     // both clamp: perfect
		{0.25, 1, 1},  // sub-row estimates clamp too
	}
	for _, c := range cases {
		if got := QError(c.est, c.actual); got != c.want {
			t.Errorf("QError(%v, %d) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
	if q := QError(3, 7); q < 2.33 || q > 2.34 {
		t.Errorf("QError(3,7) = %v", q)
	}
}

func TestRecorderBounded(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Add(Record{Query: fmt.Sprintf("q%d", i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Newest first, and only the last four survive.
	for i, want := range []string{"q9", "q8", "q7", "q6"} {
		if snap[i].Query != want {
			t.Fatalf("snap[%d] = %q, want %q", i, snap[i].Query, want)
		}
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq >= snap[i-1].Seq {
			t.Fatalf("snapshot not newest-first: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := New(0).Cap(); got != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestRecorderSlowStamping(t *testing.T) {
	r := New(8)
	r.SetSlowThreshold(100 * time.Millisecond)
	fast := r.Add(Record{DurNs: int64(10 * time.Millisecond)})
	slow := r.Add(Record{DurNs: int64(250 * time.Millisecond)})
	if fast.Slow {
		t.Fatal("fast query stamped slow")
	}
	if !slow.Slow {
		t.Fatal("slow query not stamped")
	}
	if r.SlowThreshold() != 100*time.Millisecond {
		t.Fatalf("threshold = %v", r.SlowThreshold())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.SetSlowThreshold(time.Second)
	r.Add(Record{Query: "q"})
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d map[string]any
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if recs, ok := d["records"].([]any); !ok || len(recs) != 0 {
		t.Fatalf("nil dump records = %v", d["records"])
	}
}

func TestRecorderWriteJSONSchema(t *testing.T) {
	r := New(2)
	r.SetSlowThreshold(time.Millisecond)
	r.Add(Record{
		Query:   "q1",
		PlanKey: "p1",
		DurNs:   int64(5 * time.Millisecond),
		RowsOut: 3,
		Phases:  []Phase{{Name: "explore", Ns: 100}},
		Ops: []OpStat{
			{Op: "scan", Key: "scan(r1)", EstRows: 50, Rows: 100, QError: 2, Ns: 42},
		},
		Counters:    map[string]int64{"memo.waves": 4},
		BudgetTrips: []string{"exprs"},
		Degraded:    "budget",
	})
	r.Add(Record{Query: "q2"})
	r.Add(Record{Query: "q3"}) // evicts q1

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Capacity        int      `json:"capacity"`
		Len             int      `json:"len"`
		Total           int64    `json:"total"`
		Dropped         int64    `json:"dropped"`
		SlowThresholdNs int64    `json:"slowThresholdNs"`
		SlowCount       int64    `json:"slowCount"`
		Records         []Record `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Capacity != 2 || d.Len != 2 || d.Total != 3 || d.Dropped != 1 {
		t.Fatalf("dump header = %+v", d)
	}
	if d.SlowThresholdNs != time.Millisecond.Nanoseconds() || d.SlowCount != 1 {
		t.Fatalf("slow stats = %d/%d", d.SlowThresholdNs, d.SlowCount)
	}
	if len(d.Records) != 2 || d.Records[0].Query != "q3" || d.Records[1].Query != "q2" {
		t.Fatalf("records = %+v", d.Records)
	}
}

// TestRecorderConcurrent runs adders, snapshotters and dumpers
// together; meaningful under -race, and verifies the bound holds
// throughout.
func TestRecorderConcurrent(t *testing.T) {
	r := New(16)
	r.SetSlowThreshold(time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Record{Query: fmt.Sprintf("w%d-%d", w, i), DurNs: int64(i)})
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := len(r.Snapshot()); n > 16 {
					t.Errorf("snapshot overflowed the ring: %d", n)
					return
				}
				var buf bytes.Buffer
				if err := r.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 || r.Len() != 16 {
		t.Fatalf("total/len = %d/%d", r.Total(), r.Len())
	}
}
