package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLabelsEncode(t *testing.T) {
	cases := []struct {
		base   string
		names  []string
		values []string
		want   string
	}{
		{"executor.qerror_milli", []string{"op"}, []string{"join.inner"},
			`executor.qerror_milli{op="join.inner"}`},
		// Pairs sort by label name regardless of declaration order.
		{"m", []string{"z", "a"}, []string{"1", "2"}, `m{a="2",z="1"}`},
		// Values escape backslash, quote and newline.
		{"m", []string{"k"}, []string{`a"b\c` + "\n"}, `m{k="a\"b\\c\n"}`},
		{"m", nil, nil, "m"},
	}
	for _, c := range cases {
		got := EncodeLabels(c.base, c.names, c.values)
		if got != c.want {
			t.Errorf("EncodeLabels(%q,%v,%v) = %q, want %q", c.base, c.names, c.values, got, c.want)
		}
	}
}

func TestLabelsSplit(t *testing.T) {
	base, labels := SplitLabels(`m{a="1"}`)
	if base != "m" || labels != `a="1"` {
		t.Fatalf("SplitLabels = %q, %q", base, labels)
	}
	base, labels = SplitLabels("plain.name")
	if base != "plain.name" || labels != "" {
		t.Fatalf("SplitLabels(plain) = %q, %q", base, labels)
	}
	// A brace without the closing suffix is not a label body.
	base, labels = SplitLabels("odd{name")
	if base != "odd{name" || labels != "" {
		t.Fatalf("SplitLabels(odd) = %q, %q", base, labels)
	}
}

func TestCounterVecChildrenLandInRegistry(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("executor.op_count", "op")
	v.With("scan").Add(3)
	v.With("join.inner").Inc()
	v.With("scan").Inc()

	s := r.Snapshot()
	if got := s.Counters[`executor.op_count{op="scan"}`]; got != 4 {
		t.Fatalf("scan child = %d, want 4", got)
	}
	if got := s.Counters[`executor.op_count{op="join.inner"}`]; got != 1 {
		t.Fatalf("join child = %d, want 1", got)
	}
	// A second vector handle for the same family shares children.
	v2 := r.CounterVec("executor.op_count", "op")
	v2.With("scan").Inc()
	if got := r.Snapshot().Counters[`executor.op_count{op="scan"}`]; got != 5 {
		t.Fatalf("shared child = %d, want 5", got)
	}
}

func TestHistogramVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("qerr", "op")
	v.With("scan").Observe(1000)
	v.With("scan").Observe(2000)
	v.With("mgoj").Observe(8000)

	s := r.Snapshot()
	h, ok := s.Histograms[`qerr{op="scan"}`]
	if !ok || h.Count != 2 || h.Sum != 3000 {
		t.Fatalf("scan histogram = %+v, ok=%v", h, ok)
	}
	if h, ok := s.Histograms[`qerr{op="mgoj"}`]; !ok || h.Count != 1 {
		t.Fatalf("mgoj histogram = %+v, ok=%v", h, ok)
	}
}

func TestVecWithPanicsOnArityMismatch(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("m", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label value count mismatch")
		}
	}()
	v.With("only-one")
}

func TestVecSanitizesLabelNames(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "op-type").With("x").Inc()
	if got := r.Snapshot().Counters[`m{op_type="x"}`]; got != 1 {
		t.Fatalf("sanitized label child missing; counters = %v", r.Snapshot().Counters)
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "w")
	h := r.HistogramVec("h", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < 1000; i++ {
				v.With(label).Inc()
				h.With(label).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for name, n := range r.Snapshot().Counters {
		if strings.HasPrefix(name, "c{") {
			total += n
		}
	}
	if total != 8000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
}
