package datagen

import (
	"testing"

	"repro/internal/value"
)

// TestSkewedDeterministic: the same config yields byte-identical
// relations — the gate benchmark's baseline depends on it.
func TestSkewedDeterministic(t *testing.T) {
	a, b := Skewed(DefaultSkewConfig), Skewed(DefaultSkewConfig)
	for _, name := range []string{"fact", "d1", "d2"} {
		if a[name].String() != b[name].String() {
			t.Fatalf("%s differs across identical configs", name)
		}
	}
}

// TestSkewedShape pins sizes and domains.
func TestSkewedShape(t *testing.T) {
	cfg := DefaultSkewConfig
	db := Skewed(cfg)
	if got := db["fact"].Len(); got != cfg.FactRows {
		t.Fatalf("fact rows = %d, want %d", got, cfg.FactRows)
	}
	if got := db["d1"].Len(); got != cfg.DimRows {
		t.Fatalf("d1 rows = %d, want %d", got, cfg.DimRows)
	}
	if got := db["d2"].Len(); got != cfg.TagRows {
		t.Fatalf("d2 rows = %d, want %d", got, cfg.TagRows)
	}
	for _, tup := range db["fact"].Tuples() {
		k := tup[0].Int()
		if k < 0 || k >= int64(cfg.Keys) {
			t.Fatalf("fact.k = %d outside [0, %d)", k, cfg.Keys)
		}
	}
}

// TestSkewedSkewAndCorrelation: key 0 owns far more than its uniform
// share of the fact table, and v is exactly k mod CorrMod on every
// row — the two properties that break the estimator's uniformity and
// independence assumptions.
func TestSkewedSkewAndCorrelation(t *testing.T) {
	cfg := DefaultSkewConfig
	db := Skewed(cfg)
	k0 := 0
	for _, tup := range db["fact"].Tuples() {
		k, v := tup[0].Int(), tup[1].Int()
		if v != k%int64(cfg.CorrMod) {
			t.Fatalf("v = %d, want k %% %d = %d", v, cfg.CorrMod, k%int64(cfg.CorrMod))
		}
		if k == 0 {
			k0++
		}
	}
	uniformShare := cfg.FactRows / cfg.Keys
	if k0 < 10*uniformShare {
		t.Fatalf("key 0 has %d rows, want ≥ 10× the uniform share (%d)", k0, uniformShare)
	}
	nonNull := 0
	for _, tup := range db["fact"].Tuples() {
		if tup[0] != value.Null {
			nonNull++
		}
	}
	if nonNull != cfg.FactRows {
		t.Fatalf("fact.k has NULLs: %d non-null of %d", nonNull, cfg.FactRows)
	}
}
