package datagen

import (
	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

// V3Count is the generated column of view V3 (the paper's 95AGGQTY).
var V3Count = schema.Attr("v3", "aggqty95")

// SupplierV2 builds view V2 of Example 1.1: the BANKRUPT suppliers'
// 1994 aggregate rows,
//
//	Select a.supkey, a.qty, a.partkey
//	From agg94 a, sup_detail b
//	Where a.supkey = b.supkey and b.suprating = 'BANKRUPT'
func SupplierV2() plan.Node {
	bankrupt := expr.Cmp{
		Op: value.EQ,
		L:  expr.Column("sup_detail", "suprating"),
		R:  expr.Str("BANKRUPT"),
	}
	return plan.NewJoin(plan.InnerJoin,
		expr.EqCols("agg94", "supkey", "sup_detail", "supkey"),
		plan.NewScan("agg94"),
		plan.NewSelect(bankrupt, plan.NewScan("sup_detail")))
}

// SupplierV3 builds view V3: the 1995 per-(supplier, part) transaction
// counts,
//
//	Select supkey, partkey, 95AGGQTY = COUNT(*)
//	From detail95 Groupby supkey, partkey
func SupplierV3() plan.Node {
	return plan.NewGroupBy(
		[]schema.Attribute{
			schema.Attr("detail95", "supkey"),
			schema.Attr("detail95", "partkey"),
		},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: V3Count}},
		plan.NewScan("detail95"))
}

// SupplierQuery builds the Example 1.1 query as written:
//
//	Select … From V2 LeftOuterJoin V3
//	On (V2.supkey = V3.supkey and V2.partkey = V3.partkey
//	    and V2.qty < 2 * V3.95AGGQTY)
//
// Note the outer join predicate referencing the aggregated column —
// the case the paper's machinery exists for.
func SupplierQuery() plan.Node {
	on := expr.And(
		expr.EqCols("agg94", "supkey", "detail95", "supkey"),
		expr.EqCols("agg94", "partkey", "detail95", "partkey"),
		expr.Cmp{
			Op: value.LT,
			L:  expr.Column("agg94", "qty"),
			R:  expr.Arith{Op: expr.Mul, L: expr.Int(2), R: expr.Col{Attr: V3Count}},
		},
	)
	return plan.NewJoin(plan.LeftJoin, on, SupplierV2(), SupplierV3())
}
