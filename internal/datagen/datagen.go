// Package datagen builds the deterministic synthetic workloads the
// experiments run on: the supplier/part workload of Example 1.1
// (94AGG, 95DETAIL, SUP_DETAIL), the relation tables of Example 2.1,
// and generic chain/star databases with controllable sizes and value
// domains. The paper evaluated against proprietary IBM workloads;
// these generators are the synthetic equivalent, sized so the same
// crossovers (few bankrupt suppliers vs. large detail relations)
// appear.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// SupplierConfig sizes the Example 1.1 workload.
type SupplierConfig struct {
	Suppliers    int     // distinct SUPKEY values
	Parts        int     // distinct PARTKEY values
	AggRows      int     // rows in 94AGG (supplier × part pairs with history)
	DetailRows   int     // rows in 95DETAIL (transactions)
	BankruptFrac float64 // fraction of suppliers rated BANKRUPT
	Seed         int64
}

// DefaultSupplierConfig is a laptop-scale instance preserving the
// paper's proportions: 94AGG is small relative to 95DETAIL.
var DefaultSupplierConfig = SupplierConfig{
	Suppliers:    200,
	Parts:        50,
	AggRows:      1000,
	DetailRows:   20000,
	BankruptFrac: 0.02,
	Seed:         1996,
}

// Supplier generates the three relations of Example 1.1:
//
//	sup_detail(supkey, suprating, supdetail)
//	agg94(supkey, partkey, qty)
//	detail95(supkey, partkey, date, qty)
func Supplier(cfg SupplierConfig) plan.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := make(plan.Database, 3)

	sup := relation.NewBuilder("sup_detail", "supkey", "suprating", "supdetail")
	bankrupt := int(float64(cfg.Suppliers) * cfg.BankruptFrac)
	for s := 0; s < cfg.Suppliers; s++ {
		rating := "OK"
		if s < bankrupt {
			rating = "BANKRUPT"
		}
		sup.Row(
			value.NewInt(int64(s)),
			value.NewString(rating),
			value.NewString(fmt.Sprintf("supplier-%d", s)),
		)
	}
	db["sup_detail"] = sup.Relation()

	agg := relation.NewBuilder("agg94", "supkey", "partkey", "qty")
	for i := 0; i < cfg.AggRows; i++ {
		agg.Row(
			value.NewInt(int64(rng.Intn(cfg.Suppliers))),
			value.NewInt(int64(rng.Intn(cfg.Parts))),
			value.NewInt(int64(1+rng.Intn(100))),
		)
	}
	db["agg94"] = agg.Relation()

	detail := relation.NewBuilder("detail95", "supkey", "partkey", "date", "qty")
	for i := 0; i < cfg.DetailRows; i++ {
		detail.Row(
			value.NewInt(int64(rng.Intn(cfg.Suppliers))),
			value.NewInt(int64(rng.Intn(cfg.Parts))),
			value.NewInt(int64(19950101+rng.Intn(365))),
			value.NewInt(int64(1+rng.Intn(10))),
		)
	}
	db["detail95"] = detail.Relation()
	return db
}

// Example21 builds the exact relations of the paper's Example 2.1.
func Example21() plan.Database {
	s := value.NewString
	r1 := relation.NewBuilder("r1", "a", "b", "c", "f").
		Row(s("a1"), s("b1"), s("c1"), s("f1")).
		Row(s("a2"), s("b1"), s("c1"), s("f2")).
		Row(s("a2"), s("b1"), s("c2"), s("f2")).
		Relation()
	r2 := relation.NewBuilder("r2", "c", "d", "e").
		Row(s("c1"), s("d1"), s("e1")).
		Relation()
	r3 := relation.NewBuilder("r3", "e", "f").
		Row(s("e1"), s("f1")).
		Row(s("e1"), s("f3")).
		Relation()
	return plan.Database{"r1": r1, "r2": r2, "r3": r3}
}

// UniformConfig sizes a generic relation: Rows tuples with integer
// columns x, y drawn uniformly from [0, Domain).
type UniformConfig struct {
	Rows     int
	Domain   int
	NullFrac float64
}

// Uniform builds one relation named name with columns x and y.
func Uniform(rng *rand.Rand, name string, cfg UniformConfig) *relation.Relation {
	b := relation.NewBuilder(name, "x", "y")
	for i := 0; i < cfg.Rows; i++ {
		vals := make([]value.Value, 2)
		for j := range vals {
			if cfg.NullFrac > 0 && rng.Float64() < cfg.NullFrac {
				vals[j] = value.Null
			} else {
				vals[j] = value.NewInt(int64(rng.Intn(cfg.Domain)))
			}
		}
		b.Row(vals...)
	}
	return b.Relation()
}

// Chain builds n relations r1..rn of the given per-relation size,
// suitable for chain queries r1 ⊙ r2 ⊙ … ⊙ rn on x-columns.
func Chain(n int, cfg UniformConfig, seed int64) plan.Database {
	rng := rand.New(rand.NewSource(seed))
	db := make(plan.Database, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("r%d", i)
		db[name] = Uniform(rng, name, cfg)
	}
	return db
}

// Zipf builds a relation whose x column follows a Zipf distribution
// over [0, Domain) with exponent s (>1; larger = more skew) and whose
// y column is uniform. Skewed joins are where reorderings that delay
// the fan-out pay off.
func Zipf(rng *rand.Rand, name string, rows, domain int, s float64) *relation.Relation {
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	b := relation.NewBuilder(name, "x", "y")
	for i := 0; i < rows; i++ {
		b.Row(
			value.NewInt(int64(z.Uint64())),
			value.NewInt(int64(rng.Intn(domain))),
		)
	}
	return b.Relation()
}

// Star builds a center relation r1 plus n satellite relations
// r2..r(n+1), each joinable to the center on x.
func Star(satellites int, cfg UniformConfig, seed int64) plan.Database {
	rng := rand.New(rand.NewSource(seed))
	db := make(plan.Database, satellites+1)
	db["r1"] = Uniform(rng, "r1", cfg)
	for i := 0; i < satellites; i++ {
		name := fmt.Sprintf("r%d", i+2)
		db[name] = Uniform(rng, name, cfg)
	}
	return db
}
