package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/guard"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// genBatchRows is the generator's guard granularity: the budget's
// cancellation and the datagen fault point are checked once per this
// many generated rows, so aborting a large synthetic build responds
// within one batch. Generated base tables are not charged against the
// row/byte limits — like scans in the executor, base data is input,
// not intermediate state; the limits exist to bound what queries
// *produce*.
const genBatchRows = 1024

// genCheck is the per-batch guard check shared by the guarded
// generators.
func genCheck(i int, b *guard.Budget) error {
	if i%genBatchRows != 0 {
		return nil
	}
	if err := guard.Hit(guard.PointDatagenBatch); err != nil {
		return err
	}
	return b.Cancelled()
}

// UniformGuarded is Uniform under a budget: generation observes
// cancellation (and the datagen fault point) at batch boundaries. The
// unguarded generators stay check-free so existing deterministic
// workload builds are byte-for-byte unaffected.
func UniformGuarded(rng *rand.Rand, name string, cfg UniformConfig, b *guard.Budget) (*relation.Relation, error) {
	bld := relation.NewBuilder(name, "x", "y")
	for i := 0; i < cfg.Rows; i++ {
		if err := genCheck(i, b); err != nil {
			return nil, err
		}
		vals := make([]value.Value, 2)
		for j := range vals {
			if cfg.NullFrac > 0 && rng.Float64() < cfg.NullFrac {
				vals[j] = value.Null
			} else {
				vals[j] = value.NewInt(int64(rng.Intn(cfg.Domain)))
			}
		}
		bld.Row(vals...)
	}
	return bld.Relation(), nil
}

// ChainGuarded is Chain under a budget. The rng consumption matches
// Chain exactly, so an uncancelled guarded build produces the
// identical database for the same seed.
func ChainGuarded(n int, cfg UniformConfig, seed int64, b *guard.Budget) (plan.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := make(plan.Database, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("r%d", i)
		rel, err := UniformGuarded(rng, name, cfg, b)
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	return db, nil
}

// StarGuarded is Star under a budget, with Chain's determinism
// contract.
func StarGuarded(satellites int, cfg UniformConfig, seed int64, b *guard.Budget) (plan.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := make(plan.Database, satellites+1)
	r1, err := UniformGuarded(rng, "r1", cfg, b)
	if err != nil {
		return nil, err
	}
	db["r1"] = r1
	for i := 0; i < satellites; i++ {
		name := fmt.Sprintf("r%d", i+2)
		rel, err := UniformGuarded(rng, name, cfg, b)
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	return db, nil
}

// SupplierGuarded is Supplier under a budget: each of the three
// relation-building loops checks the guard per batch.
func SupplierGuarded(cfg SupplierConfig, b *guard.Budget) (plan.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := make(plan.Database, 3)

	sup := relation.NewBuilder("sup_detail", "supkey", "suprating", "supdetail")
	bankrupt := int(float64(cfg.Suppliers) * cfg.BankruptFrac)
	for s := 0; s < cfg.Suppliers; s++ {
		if err := genCheck(s, b); err != nil {
			return nil, err
		}
		rating := "OK"
		if s < bankrupt {
			rating = "BANKRUPT"
		}
		sup.Row(
			value.NewInt(int64(s)),
			value.NewString(rating),
			value.NewString(fmt.Sprintf("supplier-%d", s)),
		)
	}
	db["sup_detail"] = sup.Relation()

	agg := relation.NewBuilder("agg94", "supkey", "partkey", "qty")
	for i := 0; i < cfg.AggRows; i++ {
		if err := genCheck(i, b); err != nil {
			return nil, err
		}
		agg.Row(
			value.NewInt(int64(rng.Intn(cfg.Suppliers))),
			value.NewInt(int64(rng.Intn(cfg.Parts))),
			value.NewInt(int64(1+rng.Intn(100))),
		)
	}
	db["agg94"] = agg.Relation()

	detail := relation.NewBuilder("detail95", "supkey", "partkey", "date", "qty")
	for i := 0; i < cfg.DetailRows; i++ {
		if err := genCheck(i, b); err != nil {
			return nil, err
		}
		detail.Row(
			value.NewInt(int64(rng.Intn(cfg.Suppliers))),
			value.NewInt(int64(rng.Intn(cfg.Parts))),
			value.NewInt(int64(19950101+rng.Intn(365))),
			value.NewInt(int64(1+rng.Intn(10))),
		)
	}
	db["detail95"] = detail.Relation()
	return db, nil
}
