package datagen

import (
	"math/rand"

	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// SkewConfig sizes the feedback-gate workload: a fact table whose
// grouping key is zipfian (a handful of keys own most rows) and whose
// v column is a pure function of the key (v = k mod CorrMod), so the
// optimizer's uniformity and independence assumptions are both wrong
// at once — σ(k=c ∧ v=c′) is estimated as the product of two
// independent selectivities when the true selectivity is that of the
// k conjunct alone. Two dimension tables hang off uniform join
// columns so the misestimate propagates through a join chain and
// flips the optimal join order.
type SkewConfig struct {
	FactRows int // rows in fact(k, v, j)
	DimRows  int // rows in d1(j, a)
	TagRows  int // rows in d2(a, tag)
	// Keys is the fact key domain; zipfian with exponent ZipfS, so
	// key 0 is the heavy hitter. Chosen > 64 by default so the
	// ANALYZE step keeps no most-common-values list and the estimator
	// falls back to uniformity.
	Keys  int
	ZipfS float64 // zipf exponent (>1; default 1.2)
	// CorrMod makes fact.v = fact.k mod CorrMod — the correlated
	// column pair.
	CorrMod    int
	JoinDomain int // fact.j / d1.j domain
	ADomain    int // d1.a / d2.a domain
	TagDomain  int // d2.tag domain
	Seed       int64
}

// DefaultSkewConfig is the benchserve feedback-gate instance: the
// static plan's estimate for the filtered fact table is off by more
// than an order of magnitude, so the first execution's q-error trips
// the drift detector.
var DefaultSkewConfig = SkewConfig{
	FactRows:   20000,
	DimRows:    64000,
	TagRows:    2000,
	Keys:       100,
	ZipfS:      1.2,
	CorrMod:    10,
	JoinDomain: 1000,
	ADomain:    1000,
	TagDomain:  10,
	Seed:       2026,
}

// Skewed builds the three-relation feedback workload:
//
//	fact(k, v, j)  — k zipfian, v = k mod CorrMod, j uniform
//	d1(j, a)       — uniform
//	d2(a, tag)     — uniform
//
// Deterministic for a given config (the zipf sampler and every
// uniform draw come from one seeded source).
func Skewed(cfg SkewConfig) plan.Database {
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.CorrMod <= 0 {
		cfg.CorrMod = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	db := make(plan.Database, 3)

	fact := relation.NewBuilder("fact", "k", "v", "j")
	for i := 0; i < cfg.FactRows; i++ {
		k := int64(zipf.Uint64())
		fact.Row(
			value.NewInt(k),
			value.NewInt(k%int64(cfg.CorrMod)),
			value.NewInt(int64(rng.Intn(cfg.JoinDomain))),
		)
	}
	db["fact"] = fact.Relation()

	d1 := relation.NewBuilder("d1", "j", "a")
	for i := 0; i < cfg.DimRows; i++ {
		d1.Row(
			value.NewInt(int64(rng.Intn(cfg.JoinDomain))),
			value.NewInt(int64(rng.Intn(cfg.ADomain))),
		)
	}
	db["d1"] = d1.Relation()

	d2 := relation.NewBuilder("d2", "a", "tag")
	for i := 0; i < cfg.TagRows; i++ {
		d2.Row(
			value.NewInt(int64(rng.Intn(cfg.ADomain))),
			value.NewInt(int64(rng.Intn(cfg.TagDomain))),
		)
	}
	db["d2"] = d2.Relation()
	return db
}
