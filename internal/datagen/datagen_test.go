package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestSupplierShapes(t *testing.T) {
	cfg := SupplierConfig{Suppliers: 20, Parts: 5, AggRows: 50, DetailRows: 200, BankruptFrac: 0.1, Seed: 1}
	db := Supplier(cfg)
	if got := db["sup_detail"].Len(); got != 20 {
		t.Errorf("sup_detail rows = %d", got)
	}
	if got := db["agg94"].Len(); got != 50 {
		t.Errorf("agg94 rows = %d", got)
	}
	if got := db["detail95"].Len(); got != 200 {
		t.Errorf("detail95 rows = %d", got)
	}
	// Deterministic: same seed, same data.
	db2 := Supplier(cfg)
	if !db["agg94"].EqualAsSets(db2["agg94"]) {
		t.Error("generation is not deterministic")
	}
	bankrupt := 0
	sup := db["sup_detail"]
	for _, tu := range sup.Tuples() {
		if sup.Value(tu, schema.Attr("sup_detail", "suprating")).Str() == "BANKRUPT" {
			bankrupt++
		}
	}
	if bankrupt != 2 {
		t.Errorf("bankrupt suppliers = %d, want 2", bankrupt)
	}
}

// TestSupplierQueryPushUpEquivalence is the correctness backbone of
// experiment E7: the Example 1.1 query as written and its
// aggregation-pulled-up reordering produce identical results on the
// generated workload.
func TestSupplierQueryPushUpEquivalence(t *testing.T) {
	cfg := SupplierConfig{Suppliers: 30, Parts: 6, AggRows: 80, DetailRows: 500, BankruptFrac: 0.1, Seed: 7}
	db := Supplier(cfg)
	q := SupplierQuery()
	pushed, err := core.PushUpGroupBy(q.(*plan.Join), db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := executor.Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor.Run(pushed, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSets(want) {
		t.Fatalf("pushed-up supplier query differs:\nas written %d rows, pushed %d rows", want.Len(), got.Len())
	}
	if want.Len() == 0 {
		t.Error("workload produced an empty result; experiment would be vacuous")
	}
}

func TestExample21Database(t *testing.T) {
	db := Example21()
	if db["r1"].Len() != 3 || db["r2"].Len() != 1 || db["r3"].Len() != 2 {
		t.Errorf("unexpected Example 2.1 sizes")
	}
	v := db["r1"].Value(db["r1"].Tuple(0), schema.Attr("r1", "a"))
	if v.Kind() != value.KindString || v.Str() != "a1" {
		t.Errorf("r1[0].a = %v", v)
	}
}

func TestChain(t *testing.T) {
	db := Chain(4, UniformConfig{Rows: 10, Domain: 5}, 3)
	if len(db) != 4 {
		t.Fatalf("chain has %d relations", len(db))
	}
	for i := 1; i <= 4; i++ {
		name := "r" + string(rune('0'+i))
		if db[name] == nil || db[name].Len() != 10 {
			t.Errorf("relation %s missing or wrong size", name)
		}
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestZipfSkew(t *testing.T) {
	rng := newTestRand(9)
	r := Zipf(rng, "z", 5000, 100, 1.5)
	if r.Len() != 5000 {
		t.Fatalf("rows = %d", r.Len())
	}
	// The most frequent value should dominate: count value 0.
	zero := 0
	for _, tu := range r.Tuples() {
		if r.Value(tu, schema.Attr("z", "x")).Int() == 0 {
			zero++
		}
	}
	if zero < 1500 {
		t.Errorf("Zipf head too light: %d/5000 zeros", zero)
	}
}

func TestStar(t *testing.T) {
	db := Star(3, UniformConfig{Rows: 10, Domain: 5}, 4)
	if len(db) != 4 {
		t.Fatalf("star relations = %d", len(db))
	}
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		if db[name] == nil {
			t.Errorf("missing %s", name)
		}
	}
}
