package datagen

import (
	"context"
	"testing"

	"repro/internal/guard"
)

var guardedCfg = UniformConfig{Rows: 3000, Domain: 50, NullFrac: 0.1}

// TestGuardedMatchesUnguarded: for the same seed, the guarded
// generators must produce byte-identical databases — the guard checks
// consume no randomness.
func TestGuardedMatchesUnguarded(t *testing.T) {
	b := guard.New(context.Background(), guard.Limits{}, nil)

	chain, err := ChainGuarded(4, guardedCfg, 7, b)
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range Chain(4, guardedCfg, 7) {
		if !chain[name].EqualAsMultisets(rel) {
			t.Fatalf("ChainGuarded differs from Chain on %s", name)
		}
	}

	star, err := StarGuarded(3, guardedCfg, 7, b)
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range Star(3, guardedCfg, 7) {
		if !star[name].EqualAsMultisets(rel) {
			t.Fatalf("StarGuarded differs from Star on %s", name)
		}
	}

	sup, err := SupplierGuarded(DefaultSupplierConfig, b)
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range Supplier(DefaultSupplierConfig) {
		if !sup[name].EqualAsMultisets(rel) {
			t.Fatalf("SupplierGuarded differs from Supplier on %s", name)
		}
	}
}

// TestGuardedCancellation: a cancelled context aborts generation with
// the typed cancellation error.
func TestGuardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := guard.New(ctx, guard.Limits{}, nil)
	if _, err := ChainGuarded(4, guardedCfg, 7, b); !guard.IsCancelled(err) {
		t.Fatalf("ChainGuarded err = %v, want guard.ErrCancelled", err)
	}
	if _, err := SupplierGuarded(DefaultSupplierConfig, b); !guard.IsCancelled(err) {
		t.Fatalf("SupplierGuarded err = %v, want guard.ErrCancelled", err)
	}
}

// TestGuardedFaultPoint: an injected fault at the datagen batch point
// surfaces as the typed injected error.
func TestGuardedFaultPoint(t *testing.T) {
	defer guard.Clear()
	guard.InjectError(guard.PointDatagenBatch)
	b := guard.New(context.Background(), guard.Limits{}, nil)
	if _, err := StarGuarded(3, guardedCfg, 7, b); !guard.IsInjected(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}
