// Package assoctree enumerates the association trees of a query
// hypergraph (Definition 3.2). An association tree fixes the order in
// which relations are combined, without yet assigning operators; the
// optimizer assigns operators and generalized-selection compensations
// afterwards.
//
// Two enumeration modes are provided. Strict mode is the baseline
// definition of [BHAR95a]: a hyperedge may only be used when both of
// its hypernodes are completely contained in the two subtrees being
// combined, so a complex hyperedge like h2 = <{r2},{r4,r5}> forces r4
// and r5 to be combined before r2 joins them. Broken mode is this
// paper's Definition 3.2: a hyperedge may be broken up, so any
// non-empty subsets of its hypernodes suffice, which admits strictly
// more association trees — the plan-space widening the paper is
// about.
package assoctree

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/hypergraph"
)

// Tree is a binary association tree; a leaf has Leaf set and nil
// children, an internal node has both children.
type Tree struct {
	Leaf string
	L, R *Tree
}

// IsLeaf reports whether t is a leaf.
func (t *Tree) IsLeaf() bool { return t.L == nil && t.R == nil }

// Leaves appends the leaf names in left-to-right order.
func (t *Tree) Leaves() []string {
	var out []string
	var rec func(t *Tree)
	rec = func(t *Tree) {
		if t.IsLeaf() {
			out = append(out, t.Leaf)
			return
		}
		rec(t.L)
		rec(t.R)
	}
	rec(t)
	return out
}

// String renders the tree in the paper's dot notation, e.g.
// "((r1.r2).((r4.r5).r3))".
func (t *Tree) String() string {
	if t.IsLeaf() {
		return t.Leaf
	}
	return "(" + t.L.String() + "." + t.R.String() + ")"
}

// Enumerator enumerates association trees over a hypergraph with up
// to 64 nodes, using subset dynamic programming.
type Enumerator struct {
	H     *hypergraph.Hypergraph
	Mode  hypergraph.ConnectMode
	names []string
	index map[string]int
	// fromMask / toMask give each hyperedge's hypernodes as bitmasks.
	fromMask, toMask []uint64
}

// NewEnumerator prepares subset DP state. It returns an error when
// the hypergraph has more than 64 nodes.
func NewEnumerator(h *hypergraph.Hypergraph, mode hypergraph.ConnectMode) (*Enumerator, error) {
	if len(h.Nodes) > 64 {
		return nil, fmt.Errorf("assoctree: %d nodes exceed the 64-node enumeration limit", len(h.Nodes))
	}
	e := &Enumerator{
		H:     h,
		Mode:  mode,
		names: append([]string(nil), h.Nodes...),
		index: make(map[string]int, len(h.Nodes)),
	}
	sort.Strings(e.names)
	for i, n := range e.names {
		e.index[n] = i
	}
	for _, edge := range h.Edges {
		e.fromMask = append(e.fromMask, e.mask(edge.From))
		e.toMask = append(e.toMask, e.mask(edge.To))
	}
	return e, nil
}

func (e *Enumerator) mask(rels []string) uint64 {
	var m uint64
	for _, r := range rels {
		m |= 1 << uint(e.index[r])
	}
	return m
}

// MaskOf converts a relation set to the enumerator's bitmask.
func (e *Enumerator) MaskOf(rels []string) uint64 { return e.mask(rels) }

// NamesOf converts a bitmask back to sorted relation names.
func (e *Enumerator) NamesOf(m uint64) []string {
	var out []string
	for i := 0; i < len(e.names); i++ {
		if m&(1<<uint(i)) != 0 {
			out = append(out, e.names[i])
		}
	}
	return out
}

// connects reports whether hyperedge i can be used to combine subtree
// masks a and b under the enumerator's mode.
func (e *Enumerator) connects(i int, a, b uint64) bool {
	f, t := e.fromMask[i], e.toMask[i]
	switch e.Mode {
	case hypergraph.Strict:
		return (f&^a == 0 && t&^b == 0) || (f&^b == 0 && t&^a == 0)
	default: // Broken: any non-empty piece of each hypernode.
		return (f&a != 0 && t&b != 0) || (f&b != 0 && t&a != 0)
	}
}

// CanCombine reports whether two disjoint connected subsets may be
// combined into one subtree: some hyperedge must connect them (no
// cartesian products, matching Definition 3.2 item 3).
func (e *Enumerator) CanCombine(a, b uint64) bool {
	for i := range e.fromMask {
		if e.connects(i, a, b) {
			return true
		}
	}
	return false
}

// CrossEdges returns the hyperedges usable when combining a and b
// under the mode (the E_{T_s} of Definition 3.2, including broken-up
// pieces in Broken mode).
func (e *Enumerator) CrossEdges(a, b uint64) []*hypergraph.Hyperedge {
	var out []*hypergraph.Hyperedge
	for i, edge := range e.H.Edges {
		if e.connects(i, a, b) {
			out = append(out, edge)
		}
	}
	return out
}

// Count returns the number of distinct association trees over the
// whole node set. Trees are counted as unordered ((A.B) ≡ (B.A)).
func (e *Enumerator) Count() uint64 {
	n := len(e.names)
	full := uint64(1)<<uint(n) - 1
	counts := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		counts[1<<uint(i)] = 1
	}
	// Iterate subsets in increasing popcount order.
	subsets := make([]uint64, 0, 1<<uint(n))
	for s := uint64(1); s <= full; s++ {
		subsets = append(subsets, s)
	}
	sort.Slice(subsets, func(i, j int) bool {
		return bits.OnesCount64(subsets[i]) < bits.OnesCount64(subsets[j])
	})
	for _, s := range subsets {
		if bits.OnesCount64(s) < 2 {
			continue
		}
		var total uint64
		// Enumerate unordered partitions: fix the lowest bit in a.
		low := s & (-s)
		rest := s &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			a := low | sub
			b := s &^ a
			if b != 0 {
				ca, cb := counts[a], counts[b]
				if ca > 0 && cb > 0 && e.CanCombine(a, b) {
					total += ca * cb
				}
			}
			if sub == 0 {
				break
			}
		}
		if total > 0 {
			counts[s] = total
		}
	}
	return counts[full]
}

// Trees materializes every association tree over the whole node set,
// up to the given limit (0 = no limit). Trees are produced with the
// lexicographically-smallest relation of each combination in the left
// subtree, giving a canonical form per unordered tree.
func (e *Enumerator) Trees(limit int) []*Tree {
	n := len(e.names)
	full := uint64(1)<<uint(n) - 1
	memo := make(map[uint64][]*Tree)
	for i := 0; i < n; i++ {
		memo[1<<uint(i)] = []*Tree{{Leaf: e.names[i]}}
	}
	subsets := make([]uint64, 0, 1<<uint(n))
	for s := uint64(1); s <= full; s++ {
		subsets = append(subsets, s)
	}
	sort.Slice(subsets, func(i, j int) bool {
		return bits.OnesCount64(subsets[i]) < bits.OnesCount64(subsets[j])
	})
	truncated := false
	for _, s := range subsets {
		if bits.OnesCount64(s) < 2 {
			continue
		}
		var out []*Tree
		low := s & (-s)
		rest := s &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			a := low | sub
			b := s &^ a
			if b != 0 {
				ta, tb := memo[a], memo[b]
				if len(ta) > 0 && len(tb) > 0 && e.CanCombine(a, b) {
					for _, x := range ta {
						for _, y := range tb {
							out = append(out, &Tree{L: x, R: y})
							if limit > 0 && s == full && len(out) >= limit {
								truncated = true
								break
							}
						}
						if truncated {
							break
						}
					}
				}
			}
			if sub == 0 || truncated {
				break
			}
		}
		if len(out) > 0 {
			memo[s] = out
		}
	}
	return memo[full]
}

// HasTree reports whether the given tree is a valid association tree
// for the hypergraph under the enumerator's mode: every subtree's
// leaf set must be connected and every internal combination must be
// joinable by some (possibly broken) hyperedge.
func (e *Enumerator) HasTree(t *Tree) bool {
	var rec func(t *Tree) (uint64, bool)
	rec = func(t *Tree) (uint64, bool) {
		if t.IsLeaf() {
			i, ok := e.index[t.Leaf]
			if !ok {
				return 0, false
			}
			return 1 << uint(i), true
		}
		a, okA := rec(t.L)
		if !okA {
			return 0, false
		}
		b, okB := rec(t.R)
		if !okB {
			return 0, false
		}
		if a&b != 0 || !e.CanCombine(a, b) {
			return 0, false
		}
		s := a | b
		if !e.H.Connected(maskToSet(e, s), e.Mode) {
			return 0, false
		}
		return s, true
	}
	m, ok := rec(t)
	if !ok {
		return false
	}
	return m == uint64(1)<<uint(len(e.names))-1
}

func maskToSet(e *Enumerator, m uint64) map[string]bool {
	set := make(map[string]bool)
	for i := 0; i < len(e.names); i++ {
		if m&(1<<uint(i)) != 0 {
			set[e.names[i]] = true
		}
	}
	return set
}

// ParseTree parses the paper's dot notation, e.g.
// "((r1.r2).((r4.r5).r3))".
func ParseTree(s string) (*Tree, error) {
	p := &treeParser{s: s}
	t, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("assoctree: trailing input at %d in %q", p.i, s)
	}
	return t, nil
}

type treeParser struct {
	s string
	i int
}

func (p *treeParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *treeParser) parse() (*Tree, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("assoctree: unexpected end of input in %q", p.s)
	}
	if p.s[p.i] == '(' {
		p.i++
		l, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != '.' {
			return nil, fmt.Errorf("assoctree: expected '.' at %d in %q", p.i, p.s)
		}
		p.i++
		r, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != ')' {
			return nil, fmt.Errorf("assoctree: expected ')' at %d in %q", p.i, p.s)
		}
		p.i++
		return &Tree{L: l, R: r}, nil
	}
	start := p.i
	for p.i < len(p.s) && !strings.ContainsRune("().", rune(p.s[p.i])) && p.s[p.i] != ' ' {
		p.i++
	}
	if p.i == start {
		return nil, fmt.Errorf("assoctree: expected leaf name at %d in %q", start, p.s)
	}
	return &Tree{Leaf: p.s[start:p.i]}, nil
}
