package assoctree

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// q4 is Example 3.2 / Figure 1 (see hypergraph tests).
func q4(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p24 := expr.EqCols("r2", "a", "r4", "a")
	p25 := expr.EqCols("r2", "b", "r5", "b")
	p45 := expr.EqCols("r4", "c", "r5", "c")
	p35 := expr.EqCols("r3", "d", "r5", "d")
	inner := plan.NewJoin(plan.InnerJoin, p35,
		plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
		plan.NewScan("r3"))
	mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
	h, err := hypergraph.FromPlan(plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func enum(t *testing.T, h *hypergraph.Hypergraph, mode hypergraph.ConnectMode) *Enumerator {
	t.Helper()
	e, err := NewEnumerator(h, mode)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestQ4StrictCount pins the [BHAR95a] baseline: without hyperedge
// break-up, Q4 admits exactly 7 association trees (r4 and r5 must be
// combined before r2 can join them through h2).
func TestQ4StrictCount(t *testing.T) {
	e := enum(t, q4(t), hypergraph.Strict)
	if got := e.Count(); got != 7 {
		t.Errorf("strict count = %d, want 7", got)
	}
	if got := len(e.Trees(0)); got != 7 {
		t.Errorf("strict trees = %d, want 7", got)
	}
}

// TestQ4BrokenWidensPlanSpace checks the paper's headline claim for
// Example 3.2: Definition 3.2 admits strictly more association trees
// than [BHAR95a], including the listed tree (r1.((r2.r4).(r5.r3)))
// where r2 meets r4 before r5 is available.
func TestQ4BrokenWidensPlanSpace(t *testing.T) {
	strict := enum(t, q4(t), hypergraph.Strict)
	broken := enum(t, q4(t), hypergraph.Broken)
	sc, bc := strict.Count(), broken.Count()
	if bc <= sc {
		t.Errorf("broken count %d should exceed strict count %d", bc, sc)
	}
	// Every strict tree remains valid under Definition 3.2.
	for _, tr := range strict.Trees(0) {
		if !broken.HasTree(tr) {
			t.Errorf("strict tree %s rejected by broken mode", tr)
		}
	}
}

// TestQ4ListedTrees checks the example trees the paper lists in
// Section 3 (after Definition 3.2).
func TestQ4ListedTrees(t *testing.T) {
	strict := enum(t, q4(t), hypergraph.Strict)
	broken := enum(t, q4(t), hypergraph.Broken)
	cases := []struct {
		tree           string
		strict, broken bool
	}{
		{"((r1.r2).((r4.r5).r3))", true, true},
		{"((r1.r2).(r4.(r5.r3)))", true, true}, // the paper's second listed tree
		{"(r1.((r2.r4).(r5.r3)))", false, true},
		{"(r1.((r2.r5).(r4.r3)))", false, false}, // see note below
		{"(r1.(r2.((r4.r5).r3)))", true, true},
	}
	for _, c := range cases {
		tr, err := ParseTree(c.tree)
		if err != nil {
			t.Fatalf("parse %q: %v", c.tree, err)
		}
		if got := strict.HasTree(tr); got != c.strict {
			t.Errorf("strict.HasTree(%s) = %v, want %v", c.tree, got, c.strict)
		}
		if got := broken.HasTree(tr); got != c.broken {
			t.Errorf("broken.HasTree(%s) = %v, want %v", c.tree, got, c.broken)
		}
	}
	// Note: the paper lists (r1.((r2.r5).(r4.r3))) as a valid tree,
	// but its subtree (r4.r3) has no hyperedge piece connecting r4
	// and r3, violating Definition 3.2 item 2 as literally stated.
	// We follow the formal definition; see DESIGN.md.
}

// TestChainCounts sanity-checks the enumerator on pure join chains,
// where the number of association trees of an n-relation chain query
// is known in closed form (1, 1, 3, 11, 45, …; OEIS A001700-adjacent
// counts of binary trees over intervals — for a chain with simple
// edges both modes agree).
func TestChainCounts(t *testing.T) {
	build := func(n int) *hypergraph.Hypergraph {
		var node plan.Node = plan.NewScan("r1")
		for i := 2; i <= n; i++ {
			p := expr.EqCols(relName(i-1), "a", relName(i), "a")
			node = plan.NewJoin(plan.InnerJoin, p, node, plan.NewScan(relName(i)))
		}
		h, err := hypergraph.FromPlan(node)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Unordered binary trees over a chain of n relations where every
	// subtree is a contiguous interval: the Catalan numbers C(n-1).
	want := map[int]uint64{2: 1, 3: 2, 4: 5, 5: 14, 6: 42}
	for n, w := range want {
		for _, mode := range []hypergraph.ConnectMode{hypergraph.Strict, hypergraph.Broken} {
			e := enum(t, build(n), mode)
			if got := e.Count(); got != w {
				t.Errorf("chain(%d) mode %v count = %d, want %d", n, mode, got, w)
			}
		}
	}
}

func relName(i int) string {
	return "r" + string(rune('0'+i))
}

// TestStarCounts checks a star query (r1 joined to each of r2..rn):
// every tree must attach satellites to the component containing r1.
func TestStarCounts(t *testing.T) {
	build := func(n int) *hypergraph.Hypergraph {
		var node plan.Node = plan.NewScan("r1")
		for i := 2; i <= n; i++ {
			p := expr.EqCols("r1", "a", relName(i), "a")
			node = plan.NewJoin(plan.InnerJoin, p, node, plan.NewScan(relName(i)))
		}
		h, err := hypergraph.FromPlan(node)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Star with k satellites: trees = k! (satellites attach in any
	// order, each combination is a fresh join with the center blob).
	want := map[int]uint64{2: 1, 3: 2, 4: 6, 5: 24}
	for n, w := range want {
		e := enum(t, build(n), hypergraph.Strict)
		if got := e.Count(); got != w {
			t.Errorf("star(%d) count = %d, want %d", n, got, w)
		}
	}
}

func TestParseTreeErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "(r1.r2", "(r1 r2)", "(r1.r2))", "()", "(.r1)"} {
		if _, err := ParseTree(bad); err == nil {
			t.Errorf("ParseTree(%q) should fail", bad)
		}
	}
	tr, err := ParseTree("((r1.r2).((r4.r5).r3))")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "((r1.r2).((r4.r5).r3))" {
		t.Errorf("round trip = %q", got)
	}
	leaves := tr.Leaves()
	if len(leaves) != 5 || leaves[0] != "r1" || leaves[4] != "r3" {
		t.Errorf("leaves = %v", leaves)
	}
}

// TestTreesMatchesCount cross-checks materialization against the DP
// count on Q4 in both modes.
func TestTreesMatchesCount(t *testing.T) {
	for _, mode := range []hypergraph.ConnectMode{hypergraph.Strict, hypergraph.Broken} {
		e := enum(t, q4(t), mode)
		if got, want := uint64(len(e.Trees(0))), e.Count(); got != want {
			t.Errorf("mode %v: %d materialized trees, count says %d", mode, got, want)
		}
		// All materialized trees are valid per HasTree and distinct.
		seen := map[string]bool{}
		for _, tr := range e.Trees(0) {
			if !e.HasTree(tr) {
				t.Errorf("mode %v: enumerated tree %s fails HasTree", mode, tr)
			}
			if seen[tr.String()] {
				t.Errorf("mode %v: duplicate tree %s", mode, tr)
			}
			seen[tr.String()] = true
		}
	}
}
