package hypergraph

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
)

// q4 builds the plan of Example 3.2 / Figure 1:
//
//	Q4 = r1 →p12 (r2 →(p24∧p25) ((r4 ⋈p45 r5) ⋈p35 r3))
func q4() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p24 := expr.EqCols("r2", "a", "r4", "a")
	p25 := expr.EqCols("r2", "b", "r5", "b")
	p45 := expr.EqCols("r4", "c", "r5", "c")
	p35 := expr.EqCols("r3", "d", "r5", "d")
	inner := plan.NewJoin(plan.InnerJoin, p35,
		plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
		plan.NewScan("r3"))
	mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
	return plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid)
}

// findEdge locates the unique hyperedge whose node set matches.
func findEdge(t *testing.T, h *Hypergraph, nodes ...string) *Hyperedge {
	t.Helper()
	for _, e := range h.Edges {
		if reflect.DeepEqual(e.Nodes(), nodes) {
			return e
		}
	}
	t.Fatalf("no hyperedge over %v in\n%s", nodes, h)
	return nil
}

// TestFigure1Structure reproduces Figure 1: five nodes, four
// hyperedges, with h2 the directed hyperedge <{r2},{r4,r5}>.
func TestFigure1Structure(t *testing.T) {
	h, err := FromPlan(q4())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Nodes; !reflect.DeepEqual(got, []string{"r1", "r2", "r3", "r4", "r5"}) {
		t.Errorf("nodes = %v", got)
	}
	if len(h.Edges) != 4 {
		t.Fatalf("got %d hyperedges, want 4:\n%s", len(h.Edges), h)
	}
	h1 := findEdge(t, h, "r1", "r2")
	if h1.Kind != Directed || h1.From[0] != "r1" {
		t.Errorf("h1 should be directed r1->r2: %s", h1)
	}
	h2 := findEdge(t, h, "r2", "r4", "r5")
	if h2.Kind != Directed || !reflect.DeepEqual(h2.From, []string{"r2"}) || !reflect.DeepEqual(h2.To, []string{"r4", "r5"}) {
		t.Errorf("h2 should be directed {r2}->{r4,r5}: %s", h2)
	}
	if !h2.Complex() {
		t.Errorf("h2 carries a complex predicate")
	}
	h3 := findEdge(t, h, "r3", "r5")
	if h3.Kind != Undirected {
		t.Errorf("h3 should be undirected: %s", h3)
	}
	h4 := findEdge(t, h, "r4", "r5")
	if h4.Kind != Undirected {
		t.Errorf("h4 should be undirected: %s", h4)
	}
	if !h.IsAcyclic() {
		t.Errorf("Figure 1's hypergraph should be acyclic (paper, Example 3.2)")
	}
}

// TestFigure1PreservedSet checks pres(h2) = {r1, r2} (Section 3).
func TestFigure1PreservedSet(t *testing.T) {
	h, err := FromPlan(q4())
	if err != nil {
		t.Fatal(err)
	}
	h2 := findEdge(t, h, "r2", "r4", "r5")
	if got := h.Pres(h2); !reflect.DeepEqual(got, []string{"r1", "r2"}) {
		t.Errorf("pres(h2) = %v, want [r1 r2]", got)
	}
	h1 := findEdge(t, h, "r1", "r2")
	if got := h.Pres(h1); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Errorf("pres(h1) = %v, want [r1]", got)
	}
}

// TestFigure1Connectivity checks Definition 3.2's induced
// connectivity: {r2,r4} is connected only in Broken mode (h2 may be
// broken up), while {r3,r4} is connected in neither mode — the basis
// for which subtrees the enumerator may form.
func TestFigure1Connectivity(t *testing.T) {
	h, err := FromPlan(q4())
	if err != nil {
		t.Fatal(err)
	}
	set := func(rels ...string) map[string]bool { return nodeSet(rels) }
	cases := []struct {
		rels           []string
		strict, broken bool
	}{
		{[]string{"r4", "r5"}, true, true},
		{[]string{"r2", "r4"}, false, true},
		{[]string{"r2", "r5"}, false, true},
		{[]string{"r3", "r4"}, false, false},
		{[]string{"r1", "r2"}, true, true},
		{[]string{"r2", "r4", "r5"}, true, true},
		{[]string{"r1", "r3"}, false, false},
		{[]string{"r2", "r3", "r5"}, false, true},
		{[]string{"r1", "r2", "r3", "r4", "r5"}, true, true},
		{[]string{"r5"}, true, true},
	}
	for _, c := range cases {
		if got := h.Connected(set(c.rels...), Strict); got != c.strict {
			t.Errorf("Connected(%v, Strict) = %v, want %v", c.rels, got, c.strict)
		}
		if got := h.Connected(set(c.rels...), Broken); got != c.broken {
			t.Errorf("Connected(%v, Broken) = %v, want %v", c.rels, got, c.broken)
		}
	}
}

// TestConfQ4 checks conflict sets on Figure 1: no full outer joins
// means every conf involving only join edges below outer joins works
// through ccoj.
func TestConfQ4(t *testing.T) {
	h, err := FromPlan(q4())
	if err != nil {
		t.Fatal(err)
	}
	h2 := findEdge(t, h, "r2", "r4", "r5")
	if got := h.Conf(h2); len(got) != 0 {
		t.Errorf("conf(h2) = %v, want empty (no full outer joins downstream)", got)
	}
	// h4 = {r4,r5} is a join edge inside the null-supplying side of
	// h2, so ccoj(h4) = {h2}.
	h4 := findEdge(t, h, "r4", "r5")
	ccoj := h.CCOJ(h4)
	if len(ccoj) != 1 || ccoj[0] != h2 {
		t.Errorf("ccoj(h4) = %v, want {h2}", ccoj)
	}
	// With no full outer joins anywhere, conf(h4) = {h2} ∪ conf(h2) =
	// {h2}.
	conf := h.Conf(h4)
	if len(conf) != 1 || conf[0] != h2 {
		t.Errorf("conf(h4) = %v, want {h2}", conf)
	}
}

// fullOuterChain builds r1 ↔p12 (r2 ⋈p23 r3): a join edge under a
// full outer join.
func fullOuterChain() plan.Node {
	p12 := expr.EqCols("r1", "a", "r2", "a")
	p23 := expr.EqCols("r2", "b", "r3", "b")
	return plan.NewJoin(plan.FullJoin, p12,
		plan.NewScan("r1"),
		plan.NewJoin(plan.InnerJoin, p23, plan.NewScan("r2"), plan.NewScan("r3")))
}

func TestConfFullOuter(t *testing.T) {
	h, err := FromPlan(fullOuterChain())
	if err != nil {
		t.Fatal(err)
	}
	foj := findEdge(t, h, "r1", "r2")
	if foj.Kind != BiDirected {
		t.Fatalf("expected bi-directed edge: %s", foj)
	}
	if got := h.Conf(foj); len(got) != 0 {
		t.Errorf("conf of a bi-directed edge must be empty, got %v", got)
	}
	join := findEdge(t, h, "r2", "r3")
	conf := h.Conf(join)
	if len(conf) != 1 || conf[0] != foj {
		t.Errorf("conf(r2⋈r3) = %v, want the full outer join edge", conf)
	}
	// Preserved sets of the full outer join.
	if got := h.Pres(foj); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Errorf("pres1(foj) = %v", got)
	}
	if got := h.Pres2(foj); !reflect.DeepEqual(got, []string{"r2", "r3"}) {
		t.Errorf("pres2(foj) = %v", got)
	}
	// pres away from the join edge: the side of the full outer join
	// whose component does not contain r2⋈r3, i.e. {r1}. This is the
	// preserved spec Theorem 1 assigns when deferring a piece of the
	// join predicate (the corrected identity (6); see DESIGN.md).
	if got := h.PresAway(foj, join); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Errorf("pres_join(foj) = %v, want [r1]", got)
	}
}

// TestConfDirectedSeesFullOuter: a directed edge whose null-supplying
// side leads to a full outer join must carry it in its conflict set.
func TestConfDirectedSeesFullOuter(t *testing.T) {
	// r1 →p12 (r2 ↔p23 r3)
	p12 := expr.EqCols("r1", "a", "r2", "a")
	p23 := expr.EqCols("r2", "b", "r3", "b")
	n := plan.NewJoin(plan.LeftJoin, p12,
		plan.NewScan("r1"),
		plan.NewJoin(plan.FullJoin, p23, plan.NewScan("r2"), plan.NewScan("r3")))
	h, err := FromPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	loj := findEdge(t, h, "r1", "r2")
	foj := findEdge(t, h, "r2", "r3")
	conf := h.Conf(loj)
	if len(conf) != 1 || conf[0] != foj {
		t.Errorf("conf(loj) = %v, want the full outer join", conf)
	}
}

func TestFromPlanErrors(t *testing.T) {
	// Duplicate relation.
	p := expr.EqCols("r1", "a", "r1", "b")
	dup := plan.NewJoin(plan.InnerJoin, p, plan.NewScan("r1"), plan.NewScan("r1"))
	if _, err := FromPlan(dup); err == nil {
		t.Error("expected error for duplicate relation")
	}
	// Predicate referencing a relation outside its operands.
	bad := plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "a", "r9", "a"),
		plan.NewScan("r1"), plan.NewScan("r2"))
	if _, err := FromPlan(bad); err == nil {
		t.Error("expected error for out-of-scope predicate")
	}
	// One-sided predicate.
	oneSided := plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "a", "r1", "b"),
		plan.NewScan("r1"), plan.NewScan("r2"))
	if _, err := FromPlan(oneSided); err == nil {
		t.Error("expected error for one-sided predicate")
	}
}

// TestCyclicHypergraph checks IsAcyclic on a genuine predicate cycle
// r1-r2-r3-r1.
func TestCyclicHypergraph(t *testing.T) {
	p12 := expr.EqCols("r1", "a", "r2", "a")
	p23 := expr.EqCols("r2", "b", "r3", "b")
	p13 := expr.EqCols("r1", "c", "r3", "c")
	n := plan.NewJoin(plan.InnerJoin, expr.And(p13),
		plan.NewJoin(plan.InnerJoin, expr.And(p12), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	// Fold p23 into the top edge to close the cycle: edge {r1,r2}x{r3}.
	n = plan.NewJoin(plan.InnerJoin, expr.And(p13, p23),
		plan.NewJoin(plan.InnerJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	h, err := FromPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	// {r1,r2}-{r3} hyperedge plus {r1}-{r2} edge: GYO reduces this
	// (the pair edge is contained), so it is α-acyclic.
	if !h.IsAcyclic() {
		t.Errorf("containment case should be acyclic")
	}
	// Three separate simple edges do form a cycle.
	n2 := plan.NewJoin(plan.InnerJoin, p13,
		plan.NewJoin(plan.InnerJoin, p23,
			plan.NewJoin(plan.InnerJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewScan("r1x"))
	_ = n2 // r1x makes the top edge valid; build the triangle directly instead.
	h2 := &Hypergraph{
		Nodes: []string{"r1", "r2", "r3"},
		Edges: []*Hyperedge{
			{ID: 1, Kind: Undirected, From: []string{"r1"}, To: []string{"r2"}, Pred: p12},
			{ID: 2, Kind: Undirected, From: []string{"r2"}, To: []string{"r3"}, Pred: p23},
			{ID: 3, Kind: Undirected, From: []string{"r1"}, To: []string{"r3"}, Pred: p13},
		},
	}
	if h2.IsAcyclic() {
		t.Errorf("triangle should be cyclic")
	}
}

func TestDOT(t *testing.T) {
	h, err := FromPlan(q4())
	if err != nil {
		t.Fatal(err)
	}
	out := h.DOT()
	for _, want := range []string{"digraph", "square", "r1", "dir=forward"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
