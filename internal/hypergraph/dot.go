package hypergraph

import (
	"fmt"
	"strings"
)

// DOT renders the hypergraph as a Graphviz graph in the style of the
// paper's Figure 1: relations are circles; a simple hyperedge becomes
// a (possibly directed) edge labelled with its predicate; a complex
// hyperedge becomes a small square connected to its member relations,
// with arrowheads on the null-supplying side for directed edges.
func (h *Hypergraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph hypergraph {\n  layout=neato;\n  node [fontname=\"Helvetica\"];\n  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for _, n := range h.Nodes {
		fmt.Fprintf(&b, "  %s [shape=circle];\n", n)
	}
	for _, e := range h.Edges {
		label := fmt.Sprintf("h%d: %s", e.ID, e.Pred)
		if e.IsEdge() {
			attrs := fmt.Sprintf("label=%q", label)
			switch e.Kind {
			case Undirected:
				attrs += ", dir=none"
			case BiDirected:
				attrs += ", dir=both"
			}
			fmt.Fprintf(&b, "  %s -> %s [%s];\n", e.From[0], e.To[0], attrs)
			continue
		}
		// Complex hyperedge: a connector square.
		hub := fmt.Sprintf("h%d", e.ID)
		fmt.Fprintf(&b, "  %s [shape=square, label=%q, fontsize=10];\n", hub, label)
		for _, n := range e.From {
			fmt.Fprintf(&b, "  %s -> %s [dir=none];\n", n, hub)
		}
		for _, n := range e.To {
			arrow := "dir=none"
			if e.Kind == Directed {
				arrow = "dir=forward"
			} else if e.Kind == BiDirected {
				arrow = "dir=both"
			}
			fmt.Fprintf(&b, "  %s -> %s [%s];\n", hub, n, arrow)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
