// Package hypergraph implements the query hypergraph model of
// Section 3: nodes are the base relations of a query, hyperedges
// represent binary operations between two hypernodes (the sets of
// relations each side of the operator's predicate references).
//
// Directed hyperedges represent one-sided outer joins (drawn from the
// preserved side to the null-supplying side), bi-directed hyperedges
// represent full outer joins, and undirected hyperedges represent
// inner joins. On top of the graph the package computes the semantic
// sets the paper's Theorem 1 needs: preserved sets pres(h) and
// pres_h1(h), closest conflicting outer joins ccoj(h0), and conflict
// sets conf(h0) (Definition 3.3). All of these are computed once per
// query, as the paper emphasises.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
)

// EdgeKind classifies a hyperedge by the operator it represents.
type EdgeKind uint8

// The edge kinds.
const (
	Undirected EdgeKind = iota // inner join ⋈
	Directed                   // one-sided outer join →
	BiDirected                 // full outer join ↔
)

// String renders the kind.
func (k EdgeKind) String() string {
	switch k {
	case Undirected:
		return "join"
	case Directed:
		return "outerjoin"
	case BiDirected:
		return "fullouterjoin"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Hyperedge is one binary operation of the query. For a Directed
// edge, From is the hypernode on the preserved side and To the
// hypernode on the null-supplying side; for Undirected and BiDirected
// edges the orientation carries no meaning beyond bookkeeping.
type Hyperedge struct {
	ID   int
	Kind EdgeKind
	From []string // hypernode V1 (sorted)
	To   []string // hypernode V2 (sorted)
	Pred expr.Pred
	// Origin is the plan node the edge was built from, when the
	// hypergraph came from FromPlan; nil for hand-built graphs.
	Origin *plan.Join
}

// Nodes returns From ∪ To.
func (e *Hyperedge) Nodes() []string {
	out := append(append([]string(nil), e.From...), e.To...)
	sort.Strings(out)
	return out
}

// IsEdge reports whether both hypernodes have cardinality one (a
// simple edge in the paper's terminology).
func (e *Hyperedge) IsEdge() bool { return len(e.From) == 1 && len(e.To) == 1 }

// Complex reports whether the edge's predicate references more than
// two relations.
func (e *Hyperedge) Complex() bool { return len(e.From)+len(e.To) > 2 }

// String renders e.g. "h1: {r2} -> {r4 r5} on p".
func (e *Hyperedge) String() string {
	arrow := "--"
	switch e.Kind {
	case Directed:
		arrow = "->"
	case BiDirected:
		arrow = "<->"
	}
	return fmt.Sprintf("h%d: {%s} %s {%s} on %s",
		e.ID, strings.Join(e.From, " "), arrow, strings.Join(e.To, " "), e.Pred)
}

// Hypergraph is the query hypergraph H = (V, E).
type Hypergraph struct {
	Nodes []string // sorted relation names
	Edges []*Hyperedge
}

// String renders the hypergraph in the style of Figure 1.
func (h *Hypergraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "H = <{%s}, {", strings.Join(h.Nodes, ", "))
	for i, e := range h.Edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "h%d", e.ID)
	}
	b.WriteString("}>\n")
	for _, e := range h.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// nodeSet builds a set from names.
func nodeSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func sortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FromPlan builds the query hypergraph of a join tree. The tree may
// contain Scan and Join nodes only (strip selections, generalized
// selections and group-bys first; they do not contribute hyperedges).
// Each Join contributes one hyperedge whose hypernodes are the
// relations its predicate references on each side, directed from the
// preserved to the null-supplying side for one-sided outer joins.
func FromPlan(n plan.Node) (*Hypergraph, error) {
	h := &Hypergraph{}
	seen := make(map[string]bool)
	var build func(n plan.Node) (map[string]bool, error)
	build = func(n plan.Node) (map[string]bool, error) {
		switch m := n.(type) {
		case *plan.Scan:
			name := m.Name()
			if seen[name] {
				return nil, fmt.Errorf("hypergraph: relation %q occurs twice; rename apart first", name)
			}
			seen[name] = true
			h.Nodes = append(h.Nodes, name)
			return map[string]bool{name: true}, nil
		case *plan.Join:
			lRels, err := build(m.L)
			if err != nil {
				return nil, err
			}
			rRels, err := build(m.R)
			if err != nil {
				return nil, err
			}
			pRels := expr.RelSet(m.Pred)
			var from, to []string
			for rel := range pRels {
				switch {
				case lRels[rel]:
					from = append(from, rel)
				case rRels[rel]:
					to = append(to, rel)
				default:
					return nil, fmt.Errorf("hypergraph: predicate %s references %q outside its operands", m.Pred, rel)
				}
			}
			if len(from) == 0 || len(to) == 0 {
				return nil, fmt.Errorf("hypergraph: predicate %s does not reference both operands of %s", m.Pred, m.Kind)
			}
			sort.Strings(from)
			sort.Strings(to)
			e := &Hyperedge{ID: len(h.Edges) + 1, Pred: m.Pred, Origin: m}
			switch m.Kind {
			case plan.InnerJoin:
				e.Kind, e.From, e.To = Undirected, from, to
			case plan.LeftJoin:
				e.Kind, e.From, e.To = Directed, from, to
			case plan.RightJoin:
				e.Kind, e.From, e.To = Directed, to, from
			case plan.FullJoin:
				e.Kind, e.From, e.To = BiDirected, from, to
			}
			h.Edges = append(h.Edges, e)
			all := make(map[string]bool, len(lRels)+len(rRels))
			for r := range lRels {
				all[r] = true
			}
			for r := range rRels {
				all[r] = true
			}
			return all, nil
		default:
			return nil, fmt.Errorf("hypergraph: unsupported node %T in join tree (strip unary operators first)", n)
		}
	}
	if _, err := build(n); err != nil {
		return nil, err
	}
	sort.Strings(h.Nodes)
	return h, nil
}

// Edge returns the hyperedge with the given ID, or nil.
func (h *Hypergraph) Edge(id int) *Hyperedge {
	for _, e := range h.Edges {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// ConnectMode selects how induced sub-hypergraph connectivity treats
// hyperedges whose hypernodes are only partially inside the node
// subset.
type ConnectMode uint8

const (
	// Strict is the [BHAR95a] rule: a hyperedge connects its
	// hypernodes only when both are entirely inside the subset.
	Strict ConnectMode = iota
	// Broken is the Definition 3.2 rule of this paper: a hyperedge
	// ⟨V1,V2⟩ may be broken up, so any u ∈ V1 and v ∈ V2 inside the
	// subset are connected through it (footnote 6).
	Broken
)

// Connected reports whether the induced sub-hypergraph over the node
// subset s is connected under the given mode. The empty and singleton
// subsets are connected.
func (h *Hypergraph) Connected(s map[string]bool, mode ConnectMode) bool {
	if len(s) <= 1 {
		return true
	}
	uf := newUnionFind()
	for n := range s {
		uf.add(n)
	}
	for _, e := range h.Edges {
		switch mode {
		case Strict:
			inside := true
			for _, n := range e.Nodes() {
				if !s[n] {
					inside = false
					break
				}
			}
			if inside {
				nodes := e.Nodes()
				for _, n := range nodes[1:] {
					uf.union(nodes[0], n)
				}
			}
		case Broken:
			for _, u := range e.From {
				if !s[u] {
					continue
				}
				for _, v := range e.To {
					if s[v] {
						uf.union(u, v)
					}
				}
			}
		}
	}
	return uf.components() == 1
}

// unionFind is a minimal disjoint-set over strings.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) add(x string) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
}

func (u *unionFind) find(x string) string {
	u.add(x)
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(x, y string) { u.parent[u.find(x)] = u.find(y) }

func (u *unionFind) components() int {
	roots := make(map[string]bool)
	for x := range u.parent {
		roots[u.find(x)] = true
	}
	return len(roots)
}

// reach computes the set of nodes from which the start set can be
// reached by a path in the paper's sense: each step *crosses* a
// hyperedge from one hypernode to the other (members of the same
// hypernode are not adjacent through that edge), and a path never
// reuses a hyperedge. Only edges for which traverse returns true may
// be crossed. Paths are explored by depth-first search with
// backtracking; query hypergraphs are small, so the worst-case cost
// is irrelevant in practice.
//
// The crossing requirement matters: in Q6's hypergraph the top edge
// <{r1},{r2,r4}> must not make r4 reachable from r2 (the path would
// have to cross the edge twice), which is exactly why the paper's
// pres of the middle edge is {r1, r2} and not everything.
func (h *Hypergraph) reach(start map[string]bool, traverse func(e *Hyperedge) bool) map[string]bool {
	found := make(map[string]bool, len(start))
	for n := range start {
		found[n] = true
	}
	used := make(map[int]bool)
	var dfs func(node string)
	dfs = func(node string) {
		for _, e := range h.Edges {
			if used[e.ID] || !traverse(e) {
				continue
			}
			var next []string
			switch {
			case containsNode(e.From, node):
				next = e.To
			case containsNode(e.To, node):
				next = e.From
			default:
				continue
			}
			used[e.ID] = true
			for _, n := range next {
				found[n] = true
				dfs(n)
			}
			delete(used, e.ID)
		}
	}
	for n := range start {
		dfs(n)
	}
	return found
}

func containsNode(nodes []string, n string) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

// Region returns the set of nodes from which some node of start is
// reachable by a path (in the crossing, distinct-edge sense of reach)
// that never uses exclude. It is the building block of the preserved
// sets and of the separation precondition for predicate break-up.
func (h *Hypergraph) Region(start []string, exclude *Hyperedge) map[string]bool {
	return h.reach(nodeSet(start), func(e *Hyperedge) bool { return e != exclude })
}

// Pres computes pres(h) for a directed hyperedge: the relations "to
// the left of" (preserved by) h — the connected component containing
// h's preserved hypernode once h is removed. For a bi-directed edge
// it returns the component of the From side; use Pres2 for the other
// side. It panics on undirected edges, which preserve nothing.
func (h *Hypergraph) Pres(e *Hyperedge) []string {
	if e.Kind == Undirected {
		panic("hypergraph: Pres of an undirected edge")
	}
	comp := h.reach(nodeSet(e.From), func(x *Hyperedge) bool { return x != e })
	return sortedKeys(comp)
}

// Pres2 returns the component of a bi-directed edge's To side with
// the edge removed (pres_2(h) in Section 3).
func (h *Hypergraph) Pres2(e *Hyperedge) []string {
	if e.Kind != BiDirected {
		panic("hypergraph: Pres2 of a non-bi-directed edge")
	}
	comp := h.reach(nodeSet(e.To), func(x *Hyperedge) bool { return x != e })
	return sortedKeys(comp)
}

// PresAway computes pres_{away}(e): the relations preserved by e away
// from edge `away` (Section 3). For a directed e this is pres(e)
// regardless of away. For a bi-directed e it is the side of e whose
// component (with e removed) does not contain `away`: the relations
// whose (unique, by acyclicity) path to e avoids `away`, which are
// exactly the tuples a deferred predicate's generalized selection
// must keep preserving on e's far side.
func (h *Hypergraph) PresAway(e, away *Hyperedge) []string {
	if e.Kind == Directed {
		return h.Pres(e)
	}
	if e.Kind != BiDirected {
		panic("hypergraph: PresAway of an undirected edge")
	}
	side1 := h.reach(nodeSet(e.From), func(x *Hyperedge) bool { return x != e })
	if !intersects(away.Nodes(), side1) {
		return sortedKeys(side1)
	}
	side2 := h.reach(nodeSet(e.To), func(x *Hyperedge) bool { return x != e })
	if intersects(away.Nodes(), side2) {
		// `away` touches both sides; with the paper's simplicity
		// assumption this cannot happen, but fall back to the full
		// preserved union rather than guessing.
		return sortedKeys(side1)
	}
	return sortedKeys(side2)
}

// CCOJ computes the closest conflicting outer joins of an undirected
// (join) edge h0: the directed hyperedges e whose null-supplying side
// leads to h0 through join / one-sided outer join edges — i.e. h0
// lies inside e's null-supplying region, with no other such directed
// edge in between. The paper notes |ccoj(h0)| ≤ 1 for simple queries.
func (h *Hypergraph) CCOJ(h0 *Hyperedge) []*Hyperedge {
	if h0.Kind != Undirected {
		return nil
	}
	region := nodeSet(h0.Nodes())
	var found []*Hyperedge
	for changed := true; changed; {
		changed = false
		for _, e := range h.Edges {
			if e == h0 || e.Kind == BiDirected {
				continue
			}
			toIn := intersects(e.To, region)
			fromIn := intersects(e.From, region)
			if e.Kind == Directed && toIn && !fromIn {
				// Entered from the null-supplying side: e is a
				// candidate closest conflicting outer join. Do not
				// traverse past it.
				if !containsEdge(found, e) {
					found = append(found, e)
				}
				continue
			}
			// Interior ≃ step: cross the edge (hypernode to
			// hypernode, never within a hypernode).
			if fromIn {
				changed = absorb(region, e.To) || changed
			}
			if toIn {
				changed = absorb(region, e.From) || changed
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].ID < found[j].ID })
	return found
}

// absorb adds nodes to the region, reporting whether it grew.
func absorb(region map[string]bool, nodes []string) bool {
	grew := false
	for _, n := range nodes {
		if !region[n] {
			region[n] = true
			grew = true
		}
	}
	return grew
}

// Conf computes the hypergraph conflict set conf(h0) of
// Definition 3.3. The members are the (full) outer join hyperedges
// whose operators cannot be descendants of h0's operator in any
// expression tree, and whose preserved sets a generalized selection
// deferring part of h0's predicate must therefore also preserve
// (Theorem 1).
func (h *Hypergraph) Conf(h0 *Hyperedge) []*Hyperedge {
	switch h0.Kind {
	case BiDirected:
		return nil
	case Directed:
		// Full outer joins reachable from the null-supplying side
		// through join / one-sided outer join edges.
		return h.fullOuterFrontier(nodeSet(h0.To), h0)
	default: // Undirected
		ccoj := h.CCOJ(h0)
		if len(ccoj) > 0 {
			// conf(h0) = ccoj(h0) ∪ conf of each member.
			out := append([]*Hyperedge(nil), ccoj...)
			for _, e := range ccoj {
				for _, c := range h.Conf(e) {
					if !containsEdge(out, c) {
						out = append(out, c)
					}
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
			return out
		}
		return h.fullOuterFrontier(nodeSet(h0.Nodes()), h0)
	}
}

// fullOuterFrontier grows a region from start through join and
// one-sided outer join edges (≃) and collects, without traversing,
// the bi-directed edges that touch the region.
func (h *Hypergraph) fullOuterFrontier(start map[string]bool, exclude *Hyperedge) []*Hyperedge {
	region := make(map[string]bool, len(start))
	for n := range start {
		region[n] = true
	}
	var frontier []*Hyperedge
	for changed := true; changed; {
		changed = false
		for _, e := range h.Edges {
			if e == exclude {
				continue
			}
			fromIn, toIn := intersects(e.From, region), intersects(e.To, region)
			if !fromIn && !toIn {
				continue
			}
			if e.Kind == BiDirected {
				if !containsEdge(frontier, e) {
					frontier = append(frontier, e)
				}
				continue
			}
			if fromIn {
				changed = absorb(region, e.To) || changed
			}
			if toIn {
				changed = absorb(region, e.From) || changed
			}
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].ID < frontier[j].ID })
	return frontier
}

func intersects(nodes []string, set map[string]bool) bool {
	for _, n := range nodes {
		if set[n] {
			return true
		}
	}
	return false
}

func containsEdge(list []*Hyperedge, e *Hyperedge) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// IsAcyclic reports whether the hypergraph is acyclic in the sense
// the paper uses for Figure 1, which "has no cycles" even though
// hyperedges h2 and h4 share the nodes r4 and r5: a path must *cross*
// a hyperedge from one hypernode to the other, so entering and
// leaving through the same hypernode does not create a cycle. This
// coincides with hypergraph α-acyclicity, tested here with the
// standard GYO ear-removal reduction over the vertex sets From ∪ To.
func (h *Hypergraph) IsAcyclic() bool {
	edges := make([]map[string]bool, 0, len(h.Edges))
	for _, e := range h.Edges {
		edges = append(edges, nodeSet(e.Nodes()))
	}
	for changed := true; changed; {
		changed = false
		// Count vertex occurrences.
		occ := make(map[string]int)
		for _, e := range edges {
			for v := range e {
				occ[v]++
			}
		}
		// Remove vertices occurring in a single hyperedge.
		for _, e := range edges {
			for v := range e {
				if occ[v] == 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Remove empty hyperedges and hyperedges contained in another.
		keep := edges[:0]
		for i, e := range edges {
			if len(e) == 0 {
				changed = true
				continue
			}
			contained := false
			for j, f := range edges {
				if i == j || len(f) < len(e) {
					continue
				}
				if j < i && sameSet(e, f) {
					contained = true // drop duplicates once
					break
				}
				if len(f) > len(e) || (len(f) == len(e) && !sameSet(e, f)) {
					all := true
					for v := range e {
						if !f[v] {
							all = false
							break
						}
					}
					if all {
						contained = true
						break
					}
				}
			}
			if contained {
				changed = true
				continue
			}
			keep = append(keep, e)
		}
		edges = keep
	}
	return len(edges) == 0
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
