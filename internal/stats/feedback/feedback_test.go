package feedback

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/guard"
	"repro/internal/obs"
)

func TestFeedbackRecordLookup(t *testing.T) {
	s := New(Options{})
	if _, ok, _ := s.Lookup("k"); ok {
		t.Fatal("lookup hit on empty store")
	}
	if err := s.Record("k", 10, 1000); err != nil {
		t.Fatal(err)
	}
	rows, ok, err := s.Lookup("k")
	if err != nil || !ok {
		t.Fatalf("lookup = %v, %v, %v; want hit", rows, ok, err)
	}
	if rows != 1000 {
		t.Fatalf("first observation should be taken as-is: got %g, want 1000", rows)
	}
	if got := s.Observations("k"); got != 1 {
		t.Fatalf("observations = %d, want 1", got)
	}
}

// TestFeedbackDecayProperty: under repeated identical observations the
// correction converges geometrically to the observed value; for any
// decay d, after each fold the distance to the target shrinks by
// exactly (1-d).
func TestFeedbackDecayProperty(t *testing.T) {
	for _, decay := range []float64{0.25, 0.5, 0.9, 1.0} {
		s := New(Options{Decay: decay})
		const est, actual = 100.0, 5000.0
		if err := s.Record("k", est, actual); err != nil {
			t.Fatal(err)
		}
		prev, _, _ := s.Lookup("k")
		for i := 0; i < 20; i++ {
			if err := s.Record("k", est, actual); err != nil {
				t.Fatal(err)
			}
			cur, _, _ := s.Lookup("k")
			wantGap := (1 - decay) * math.Abs(actual-prev)
			if gap := math.Abs(actual - cur); math.Abs(gap-wantGap) > 1e-6 {
				t.Fatalf("decay %g step %d: gap = %g, want %g", decay, i, gap, wantGap)
			}
			prev = cur
		}
		if final, _, _ := s.Lookup("k"); math.Abs(final-actual) > actual*0.01 {
			t.Fatalf("decay %g: did not converge: %g", decay, final)
		}
	}
}

// TestFeedbackDecayShift: after a workload shift the correction tracks
// the new truth — old history decays away instead of anchoring the
// average forever.
func TestFeedbackDecayShift(t *testing.T) {
	s := New(Options{Decay: 0.5})
	for i := 0; i < 10; i++ {
		if err := s.Record("k", 100, 10000); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := s.Record("k", 100, 50); err != nil {
			t.Fatal(err)
		}
	}
	rows, _, _ := s.Lookup("k")
	if rows > 100 {
		t.Fatalf("after shift to 50, correction = %g; old regime still dominates", rows)
	}
}

// TestFeedbackClampProperty: no single observation can move the
// correction beyond MaxRatio of the estimate, in either direction,
// and a negative actual is treated as zero.
func TestFeedbackClampProperty(t *testing.T) {
	s := New(Options{Decay: 1, MaxRatio: 100})
	cases := []struct {
		est, actual, want float64
	}{
		{10, 1e9, 1000},   // clamped high
		{10, 1e-9, 0.1},   // clamped low
		{10, 500, 500},    // inside the band
		{10, -5, 0.1},     // negative → 0 → clamped to est/ratio
		{0, 12345, 12345}, // no estimate anchor: taken as-is
		{-3, 777, 777},    // negative estimate: taken as-is
		{0, -1, 0},        // negative actual without anchor → 0
	}
	for i, c := range cases {
		key := fmt.Sprintf("k%d", i)
		if err := s.Record(key, c.est, c.actual); err != nil {
			t.Fatal(err)
		}
		if rows, _, _ := s.Lookup(key); math.Abs(rows-c.want) > 1e-9 {
			t.Fatalf("case %d (est %g actual %g): rows = %g, want %g", i, c.est, c.actual, rows, c.want)
		}
	}
}

// TestFeedbackBounded: the store never retains more than MaxEntries
// keys, evicting oldest-inserted first, and counts the evictions.
func TestFeedbackBounded(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{MaxEntries: 8, Obs: reg})
	for i := 0; i < 50; i++ {
		if err := s.Record(fmt.Sprintf("k%d", i), 10, float64(i)); err != nil {
			t.Fatal(err)
		}
		if s.Len() > 8 {
			t.Fatalf("after %d records, Len = %d > MaxEntries 8", i+1, s.Len())
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	// The newest keys survive; the oldest are gone.
	if _, ok, _ := s.Lookup("k0"); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok, _ := s.Lookup("k49"); !ok {
		t.Fatal("k49 should be retained")
	}
	snap := reg.Snapshot().Counters
	if snap["feedback.store.evictions"] != 42 {
		t.Fatalf("evictions = %d, want 42", snap["feedback.store.evictions"])
	}
	// Re-recording a retained key must not evict anything.
	before := s.Len()
	if err := s.Record("k49", 10, 99); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before {
		t.Fatalf("updating an existing key changed Len %d -> %d", before, s.Len())
	}
}

// TestFeedbackConcurrent: records and lookups race across goroutines;
// run under -race this is the store's memory-safety gate, and the
// invariants (bound respected, lookups never see torn values outside
// the clamp band) hold throughout.
func TestFeedbackConcurrent(t *testing.T) {
	s := New(Options{MaxEntries: 64, Decay: 0.5, MaxRatio: 1e3})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(100))
				if rng.Intn(2) == 0 {
					if err := s.Record(key, 10, float64(rng.Intn(5000))); err != nil {
						t.Error(err)
						return
					}
				} else {
					rows, ok, err := s.Lookup(key)
					if err != nil {
						t.Error(err)
						return
					}
					if ok && (rows < 0 || rows > 10*1e3) {
						t.Errorf("lookup %s = %g outside clamp band", key, rows)
						return
					}
				}
				if n := s.Len(); n > 64 {
					t.Errorf("Len = %d > bound", n)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestFeedbackFaults: the feedback.record and feedback.lookup guard
// points surface injected errors as typed failures and leave the
// store unchanged.
func TestFeedbackFaults(t *testing.T) {
	defer guard.Clear()
	s := New(Options{})
	if err := s.Record("k", 10, 100); err != nil {
		t.Fatal(err)
	}

	guard.InjectError(guard.PointFeedbackRecord)
	if err := s.Record("k2", 10, 100); !guard.IsInjected(err) {
		t.Fatalf("Record under fault = %v, want injected", err)
	}
	guard.Clear()
	if _, ok, _ := s.Lookup("k2"); ok {
		t.Fatal("faulted Record must not store")
	}

	guard.InjectError(guard.PointFeedbackLookup)
	if _, _, err := s.Lookup("k"); !guard.IsInjected(err) {
		t.Fatalf("Lookup under fault = %v, want injected", err)
	}
	guard.Clear()
	if rows, ok, err := s.Lookup("k"); err != nil || !ok || rows != 100 {
		t.Fatalf("store damaged by faults: %g %v %v", rows, ok, err)
	}
}
