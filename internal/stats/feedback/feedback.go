// Package feedback closes the loop from execution back to the cost
// model: a race-safe, bounded store of estimated→actual row
// corrections keyed by subtree plan.Key. The instrumented executor
// records what each subtree actually produced; a stats.Session with
// the store attached prefers the corrected cardinality over the
// static model, so re-optimization of a drifted plan ranks join
// orders by observed truth instead of the estimate that misled it.
//
// Corrections are keyed by the *template* subtree key (parameter
// slots, not bound constants), so what one execution learns transfers
// to every plan — and every future parameter binding — containing the
// same subtree. Observations fold in under exponential decay, so a
// workload shift re-learns instead of averaging forever, and an
// outlier clamp bounds how far a single wild run can drag the
// correction.
package feedback

import (
	"sync"

	"repro/internal/guard"
	"repro/internal/obs"
)

// Options bound and shape a Store.
type Options struct {
	// MaxEntries caps the number of distinct subtree keys retained;
	// beyond it the oldest-inserted key is evicted. 0 means
	// DefaultMaxEntries.
	MaxEntries int
	// Decay is the EWMA weight of the newest observation in (0, 1].
	// 1 keeps only the latest actual; small values average over a
	// long history. 0 means DefaultDecay.
	Decay float64
	// MaxRatio clamps each observation's actual/estimated ratio into
	// [1/MaxRatio, MaxRatio] before folding, bounding the damage of a
	// single outlier run. 0 means DefaultMaxRatio.
	MaxRatio float64
	// Obs, when non-nil, receives the store's counters
	// (feedback.store.*).
	Obs *obs.Registry
}

// Defaults for the zero Options.
const (
	DefaultMaxEntries = 4096
	DefaultDecay      = 0.5
	DefaultMaxRatio   = 1e6
)

// entry is one subtree's learned cardinality.
type entry struct {
	rows float64 // EWMA of clamped actual row counts
	n    int64   // observations folded in
}

// Store is the bounded correction map. All methods are safe for
// concurrent use; Lookup takes a read lock so the hot path (every
// costed subtree of every re-optimization) scales across sessions.
type Store struct {
	opts Options

	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // insertion order, for bounded eviction

	records   *obs.Counter
	hits      *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

// New builds a Store with opts (zero fields take the defaults above).
func New(opts Options) *Store {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.Decay <= 0 || opts.Decay > 1 {
		opts.Decay = DefaultDecay
	}
	if opts.MaxRatio < 1 {
		opts.MaxRatio = DefaultMaxRatio
	}
	s := &Store{
		opts:    opts,
		entries: make(map[string]*entry),
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.records = reg.Counter("feedback.store.records")
	s.hits = reg.Counter("feedback.store.lookup_hits")
	s.evictions = reg.Counter("feedback.store.evictions")
	s.size = reg.Gauge("feedback.store.entries")
	return s
}

// Record folds one observation — the subtree keyed by key was
// estimated at est rows and actually produced actual — into the
// store. The observation is clamped to within MaxRatio of the
// estimate, then EWMA-folded into any prior correction for the key.
func (s *Store) Record(key string, est, actual float64) error {
	if err := guard.Hit(guard.PointFeedbackRecord); err != nil {
		return err
	}
	obs := clamp(est, actual, s.opts.MaxRatio)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		e.rows = s.opts.Decay*obs + (1-s.opts.Decay)*e.rows
		e.n++
	} else {
		for len(s.entries) >= s.opts.MaxEntries && len(s.order) > 0 {
			victim := s.order[0]
			s.order = s.order[1:]
			if _, live := s.entries[victim]; live {
				delete(s.entries, victim)
				s.evictions.Inc()
			}
		}
		s.entries[key] = &entry{rows: obs, n: 1}
		s.order = append(s.order, key)
	}
	s.records.Inc()
	s.size.Set(int64(len(s.entries)))
	return nil
}

// Lookup returns the corrected cardinality for key, if one has been
// learned. The returned rows are never negative.
func (s *Store) Lookup(key string) (rows float64, ok bool, err error) {
	if err := guard.Hit(guard.PointFeedbackLookup); err != nil {
		return 0, false, err
	}
	s.mu.RLock()
	e, live := s.entries[key]
	if live {
		rows = e.rows
	}
	s.mu.RUnlock()
	if !live {
		return 0, false, nil
	}
	s.hits.Inc()
	if rows < 0 {
		rows = 0
	}
	return rows, true, nil
}

// Len reports the number of distinct subtree keys currently retained.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Observations reports how many observations have been folded into
// key (0 if the key is unknown) — test and debug surface.
func (s *Store) Observations(key string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.entries[key]; ok {
		return e.n
	}
	return 0
}

// clamp bounds actual to within maxRatio of est in either direction.
// A zero or negative estimate cannot anchor a ratio, so the actual is
// taken as-is (never negative).
func clamp(est, actual, maxRatio float64) float64 {
	if actual < 0 {
		actual = 0
	}
	if est <= 0 {
		return actual
	}
	if hi := est * maxRatio; actual > hi {
		return hi
	}
	if lo := est / maxRatio; actual < lo {
		return lo
	}
	return actual
}
