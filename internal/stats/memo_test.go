package stats

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

func memoDB() plan.Database {
	db := plan.Database{}
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		b := relation.NewBuilder(name, "x", "y")
		for i := 0; i < 30; i++ {
			b.Row(value.NewInt(int64(i%7)), value.NewInt(int64(i%5)))
		}
		db[name] = b.Relation()
	}
	return db
}

// memoPlans builds a family of plans sharing most subtrees, the shape
// the memo is designed for.
func memoPlans() []plan.Node {
	r := func(n string) plan.Node { return plan.NewScan(n) }
	eq := func(a, b string) expr.Pred { return expr.EqCols(a, "x", b, "x") }
	base := plan.NewJoin(plan.InnerJoin, eq("r1", "r2"), r("r1"), r("r2"))
	return []plan.Node{
		base,
		plan.NewJoin(plan.LeftJoin, eq("r2", "r3"), base, r("r3")),
		plan.NewJoin(plan.FullJoin, eq("r2", "r3"), base, r("r3")),
		plan.NewSelect(eq("r1", "r2"), plan.NewJoin(plan.LeftJoin, eq("r2", "r3"), base, r("r3"))),
		plan.NewGenSel(eq("r1", "r3"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eq("r2", "r3"), base, r("r3"))),
		plan.NewMGOJ(eq("r3", "r4"), []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewJoin(plan.LeftJoin, eq("r2", "r3"), base, r("r3")), r("r4")),
	}
}

// TestSessionMatchesEstimator: memoized estimates are bit-identical
// to the plain estimator's, and the memo actually hits on shared
// subtrees.
func TestSessionMatchesEstimator(t *testing.T) {
	est := NewEstimator(FromDatabase(memoDB()))
	reg := obs.NewRegistry()
	sess := est.NewSession(reg)
	for _, p := range memoPlans() {
		wantCost, err := est.PlanCost(p)
		if err != nil {
			t.Fatal(err)
		}
		wantRows, err := est.Rows(p)
		if err != nil {
			t.Fatal(err)
		}
		gotCost, err := sess.PlanCost(p)
		if err != nil {
			t.Fatal(err)
		}
		gotRows, err := sess.Rows(p)
		if err != nil {
			t.Fatal(err)
		}
		if gotCost != wantCost || gotRows != wantRows {
			t.Errorf("%s: session (%.4f, %.4f) != estimator (%.4f, %.4f)",
				p, gotCost, gotRows, wantCost, wantRows)
		}
	}
	snap := reg.Snapshot().Counters
	if snap["stats.memo.cost_hits"] == 0 {
		t.Error("shared subtrees should produce cost memo hits")
	}
	if snap["stats.memo.rows_hits"] == 0 {
		t.Error("shared subtrees should produce rows memo hits")
	}
}

// TestSessionConcurrent drives one session from several goroutines —
// the optimizer's parallel cost phase — and checks agreement with the
// serial estimator. Run under -race by make race.
func TestSessionConcurrent(t *testing.T) {
	est := NewEstimator(FromDatabase(memoDB()))
	plans := memoPlans()
	want := make([]float64, len(plans))
	for i, p := range plans {
		c, err := est.PlanCost(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	sess := est.NewSession(obs.NewRegistry())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, p := range plans {
					c, err := sess.PlanCost(p)
					if err != nil {
						errs[w] = err
						return
					}
					if c != want[i] {
						t.Errorf("worker %d: plan %d cost %.4f, want %.4f", w, i, c, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionError: estimation errors (unknown relation) surface
// through the session unchanged and are not cached as values.
func TestSessionError(t *testing.T) {
	est := NewEstimator(FromDatabase(memoDB()))
	sess := est.NewSession(obs.NewRegistry())
	bad := plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "x", "zz", "x"),
		plan.NewScan("r1"), plan.NewScan("zz"))
	if _, err := sess.PlanCost(bad); err == nil {
		t.Fatal("expected an error for unknown relation")
	}
	if _, err := sess.Rows(bad); err == nil {
		t.Fatal("expected an error for unknown relation")
	}
}
