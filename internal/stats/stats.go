// Package stats implements the statistics and cost model the
// optimizer ranks plans with (Section 4 notes that the enumeration
// technique "has to be extended so that it considers the cost of the
// generalized selection operator"; its cost is modelled like MGOJ's,
// as the paper prescribes).
//
// The model is the textbook System-R style: per-table row counts,
// per-column distinct counts, uniformity and independence
// assumptions. Costs are abstract work units (tuples touched and
// predicates evaluated), which is the right fidelity for reproducing
// the paper's *relative* plan-cost claims.
package stats

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/stats/feedback"
	"repro/internal/value"
)

// ColumnStats summarises one column.
type ColumnStats struct {
	Distinct float64 // number of distinct non-NULL values
	NullFrac float64 // fraction of NULLs
	// TopValues maps frequent value keys to their fraction of the
	// rows (a most-common-values list), used for column = constant
	// selectivity. Populated when the column has few distinct values.
	TopValues map[string]float64
}

// TableStats summarises one base relation.
type TableStats struct {
	Rows    float64
	Columns map[string]ColumnStats // keyed by column name
	// Sorted is the physical sort order the stored extension delivers
	// when scanned (nil when unsorted) — the property the order-aware
	// extractor consults to skip enforcer sorts over pre-sorted input.
	Sorted plan.Order
}

// Catalog maps base relation names to statistics.
type Catalog map[string]TableStats

// FromDatabase computes exact statistics from the extensions of db —
// the "ANALYZE" of this engine.
func FromDatabase(db plan.Database) Catalog {
	cat := make(Catalog, len(db))
	for name, rel := range db {
		ts := TableStats{Rows: float64(rel.Len()), Columns: make(map[string]ColumnStats)}
		s := rel.Schema()
		for i := 0; i < s.Len(); i++ {
			a := s.At(i)
			if a.Virtual {
				continue
			}
			freq := make(map[string]int)
			nulls := 0
			for _, t := range rel.Tuples() {
				v := t[i]
				if v.IsNull() {
					nulls++
					continue
				}
				freq[v.Key()]++
			}
			cs := ColumnStats{Distinct: float64(len(freq))}
			if rel.Len() > 0 {
				cs.NullFrac = float64(nulls) / float64(rel.Len())
			}
			if len(freq) > 0 && len(freq) <= 64 && rel.Len() > 0 {
				cs.TopValues = make(map[string]float64, len(freq))
				for k, n := range freq {
					cs.TopValues[k] = float64(n) / float64(rel.Len())
				}
			}
			ts.Columns[a.Col] = cs
		}
		ts.Sorted = plan.DetectOrder(rel)
		cat[name] = ts
	}
	return cat
}

// column returns stats for an attribute, with a permissive default
// for generated columns (aggregates) whose distribution is unknown.
func (c Catalog) column(a schema.Attribute) ColumnStats {
	if ts, ok := c[a.Rel]; ok {
		if cs, ok := ts.Columns[a.Col]; ok {
			return cs
		}
		return ColumnStats{Distinct: math.Max(1, ts.Rows/10)}
	}
	return ColumnStats{Distinct: 10}
}

// CostModel weights the abstract operations.
type CostModel struct {
	Tuple      float64 // producing one output tuple
	Pred       float64 // one predicate evaluation
	Hash       float64 // one hash probe/insert (equi-joins, grouping)
	IndexProbe float64 // one index lookup into a base relation
}

// DefaultCost is a reasonable weighting: predicate evaluation is
// cheap, hashing slightly more, materializing output dominates, and
// an index probe costs a few comparisons. Base relations are assumed
// to carry indexes on their join columns (Example 1.1's "specially if
// there is an index in relation 95DETAIL").
var DefaultCost = CostModel{Tuple: 1.0, Pred: 0.2, Hash: 0.5, IndexProbe: 2.0}

// Estimator derives cardinalities and costs for logical plans.
type Estimator struct {
	Cat  Catalog
	Cost CostModel
}

// NewEstimator builds an estimator over the catalog with the default
// cost model.
func NewEstimator(cat Catalog) *Estimator {
	return &Estimator{Cat: cat, Cost: DefaultCost}
}

// Selectivity estimates the fraction of candidate tuples satisfying
// p, assuming independence across conjuncts.
func (e *Estimator) Selectivity(p expr.Pred) float64 {
	sel := 1.0
	for _, c := range expr.Conjuncts(p) {
		sel *= e.atomSelectivity(c)
	}
	return clamp01(sel)
}

func (e *Estimator) atomSelectivity(p expr.Pred) float64 {
	cmp, ok := p.(expr.Cmp)
	if !ok {
		return 0.5
	}
	lCol, lIsCol := cmp.L.(expr.Col)
	rCol, rIsCol := cmp.R.(expr.Col)
	switch cmp.Op {
	case value.EQ:
		switch {
		case lIsCol && rIsCol:
			d1 := math.Max(1, e.Cat.column(lCol.Attr).Distinct)
			d2 := math.Max(1, e.Cat.column(rCol.Attr).Distinct)
			return 1 / math.Max(d1, d2)
		case lIsCol:
			return e.eqConstSelectivity(lCol, cmp.R)
		case rIsCol:
			return e.eqConstSelectivity(rCol, cmp.L)
		default:
			return 0.1
		}
	case value.NE:
		return 1 - e.atomSelectivity(expr.Cmp{Op: value.EQ, L: cmp.L, R: cmp.R})
	default: // range comparisons
		return 1.0 / 3
	}
}

// eqConstSelectivity estimates column = constant, consulting the
// most-common-values list when the constant is a literal.
func (e *Estimator) eqConstSelectivity(col expr.Col, other expr.Scalar) float64 {
	cs := e.Cat.column(col.Attr)
	if c, ok := other.(expr.Const); ok && cs.TopValues != nil {
		if frac, ok := cs.TopValues[c.Val.Key()]; ok {
			return frac
		}
		return 0.001 // literal absent from the MCV list: rare value
	}
	return 1 / math.Max(1, cs.Distinct)
}

// Rows estimates the output cardinality of n.
func (e *Estimator) Rows(n plan.Node) (float64, error) { return e.rows(n, nil) }

// rows is Rows with an optional memo session: when s is non-nil,
// estimates are looked up and recorded by subtree fingerprint, so a
// subtree shared by many plans of an equivalence class is estimated
// once.
func (e *Estimator) rows(n plan.Node, s *Session) (float64, error) {
	memoize := s != nil && len(n.Children()) > 0 // a Scan lookup is cheaper than a memo hit
	var key string
	if memoize {
		key = plan.Key(n)
		if v, ok := s.rows.Load(key); ok {
			s.rowsHits.Inc()
			return v.(float64), nil
		}
		s.rowsMiss.Inc()
		// Learned truth beats the model: a feedback correction for this
		// subtree (recorded from an instrumented execution) replaces the
		// static estimate. Cached in the memo like any other estimate so
		// the store is consulted once per distinct subtree per session.
		if s.fb != nil {
			rows, ok, err := s.fb.Lookup(key)
			if err != nil {
				return 0, err
			}
			if ok {
				s.fbHits.Add(1)
				s.rows.Store(key, rows)
				return rows, nil
			}
		}
	}
	v, err := e.rowsSwitch(n, s)
	if err != nil {
		return 0, err
	}
	if memoize {
		s.rows.Store(key, v)
	}
	return v, nil
}

func (e *Estimator) rowsSwitch(n plan.Node, s *Session) (float64, error) {
	switch m := n.(type) {
	case *plan.Scan:
		ts, ok := e.Cat[m.Rel]
		if !ok {
			return 0, fmt.Errorf("stats: no statistics for %q", m.Rel)
		}
		return ts.Rows, nil
	case *plan.Select:
		in, err := e.rows(m.Input, s)
		if err != nil {
			return 0, err
		}
		return in * e.Selectivity(m.Pred), nil
	case *plan.Join:
		return e.joinRows(m.Kind, m.Pred, m.L, m.R, s)
	case *plan.MergeJoin:
		// Same logical output as the hash join of the same kind.
		return e.joinRows(m.Kind, m.Pred, m.L, m.R, s)
	case *plan.GenSel:
		in, err := e.rows(m.Input, s)
		if err != nil {
			return 0, err
		}
		sel := e.Selectivity(m.Pred)
		out := in * sel
		// Each preserved relation re-contributes its unmatched
		// distinct projections, at most the input cardinality.
		for range m.Preserved {
			out += in * (1 - sel) * 0.5
		}
		return math.Min(out, in*(1+float64(len(m.Preserved)))), nil
	case *plan.MGOJNode:
		l, err := e.rows(m.L, s)
		if err != nil {
			return 0, err
		}
		r, err := e.rows(m.R, s)
		if err != nil {
			return 0, err
		}
		match := l * r * e.Selectivity(m.Pred)
		return match + float64(len(m.Preserved))*math.Max(l, r)*0.5, nil
	case *plan.GroupBy:
		return e.groupRows(m.Keys, m.Input, s)
	case *plan.StreamAgg:
		// Same logical output as hash grouping on the same keys.
		return e.groupRows(m.Keys, m.Input, s)
	case *plan.Project:
		in, err := e.rows(m.Input, s)
		if err != nil {
			return 0, err
		}
		if m.Distinct {
			return math.Max(1, in/2), nil
		}
		return in, nil
	case *plan.Sort:
		in, err := e.rows(m.Input, s)
		if err != nil {
			return 0, err
		}
		if m.Limit >= 0 {
			return math.Min(in, float64(m.Limit)), nil
		}
		return in, nil
	default:
		return 0, fmt.Errorf("stats: cannot estimate %T", n)
	}
}

// joinRows estimates the output of a join of the given kind — shared
// by the hash and merge physical forms, which produce the same
// multiset.
func (e *Estimator) joinRows(kind plan.JoinKind, p expr.Pred, ln, rn plan.Node, s *Session) (float64, error) {
	l, err := e.rows(ln, s)
	if err != nil {
		return 0, err
	}
	r, err := e.rows(rn, s)
	if err != nil {
		return 0, err
	}
	match := l * r * e.Selectivity(p)
	switch kind {
	case plan.InnerJoin:
		return match, nil
	case plan.LeftJoin:
		return math.Max(match, l), nil
	case plan.RightJoin:
		return math.Max(match, r), nil
	default: // FullJoin
		return math.Max(match, math.Max(l, r)), nil
	}
}

// groupRows estimates the number of groups over keys — shared by the
// hash and streaming physical forms.
func (e *Estimator) groupRows(keys []schema.Attribute, input plan.Node, s *Session) (float64, error) {
	in, err := e.rows(input, s)
	if err != nil {
		return 0, err
	}
	groups := 1.0
	for _, k := range keys {
		if k.Virtual {
			// A row identifier makes groups nearly per-row.
			groups *= math.Max(1, in)
		} else {
			groups *= math.Max(1, e.Cat.column(k).Distinct)
		}
		if groups >= in {
			break
		}
	}
	return math.Min(groups, math.Max(1, in)), nil
}

// PlanCost estimates the total abstract cost of executing n,
// including its inputs. Joins with at least one equality conjunct
// cost as hash joins; others as nested loops. Generalized selection
// costs one pass over its input plus an anti-join pass per preserved
// relation — the same shape as MGOJ, per Section 4.
func (e *Estimator) PlanCost(n plan.Node) (float64, error) { return e.planCost(n, nil) }

// planCost is PlanCost with an optional memo session. Costing is
// where memoization pays twice: the recursion consults the row
// estimator at every node (itself recursive), and the plans of an
// equivalence class share almost all subtrees, so both the per-node
// (rows, cost) pairs and the row estimates are computed once per
// distinct subtree instead of once per occurrence.
func (e *Estimator) planCost(n plan.Node, s *Session) (float64, error) {
	var rec func(n plan.Node) (rows, cost float64, err error)
	rec = func(n plan.Node) (float64, float64, error) {
		memoize := s != nil && len(n.Children()) > 0
		var key string
		if memoize {
			key = plan.Key(n)
			if v, ok := s.cost.Load(key); ok {
				s.costHits.Inc()
				ent := v.(memoEntry)
				return ent.rows, ent.cost, nil
			}
			s.costMiss.Inc()
		}
		rows, cost, err := e.costSwitch(n, s, rec)
		if err != nil {
			return 0, 0, err
		}
		if memoize {
			s.cost.Store(key, memoEntry{rows: rows, cost: cost})
		}
		return rows, cost, nil
	}
	_, cost, err := rec(n)
	return cost, err
}

// costSwitch computes one node's (rows, cost) given rec for the
// inputs; recursion goes through rec so the memo sees every level.
func (e *Estimator) costSwitch(n plan.Node, s *Session, rec func(plan.Node) (float64, float64, error)) (float64, float64, error) {
	{
		rows, err := e.rows(n, s)
		if err != nil {
			return 0, 0, err
		}
		switch m := n.(type) {
		case *plan.Scan:
			return rows, rows * e.Cost.Tuple, nil
		case *plan.Select:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			return rows, c + in*e.Cost.Pred + rows*e.Cost.Tuple, nil
		case *plan.Join, *plan.MGOJNode:
			var l, r plan.Node
			var p expr.Pred
			var preserved int
			if j, ok := n.(*plan.Join); ok {
				l, r, p = j.L, j.R, j.Pred
			} else {
				mg := n.(*plan.MGOJNode)
				l, r, p = mg.L, mg.R, mg.Pred
				preserved = len(mg.Preserved)
			}
			lr, lc, err := rec(l)
			if err != nil {
				return 0, 0, err
			}
			rr, rc, err := rec(r)
			if err != nil {
				return 0, 0, err
			}
			var opCost float64
			if hasEquiConjunct(p) {
				opCost = (lr + rr) * e.Cost.Hash
				// An index nested loop over a base relation beats the
				// hash join when the outer input is small — the
				// Example 1.1 index case.
				if _, rScan := r.(*plan.Scan); rScan {
					opCost = math.Min(opCost, lr*e.Cost.IndexProbe)
				}
				if _, lScan := l.(*plan.Scan); lScan {
					opCost = math.Min(opCost, rr*e.Cost.IndexProbe)
				}
				opCost += rows * e.Cost.Tuple
			} else {
				opCost = lr*rr*e.Cost.Pred + rows*e.Cost.Tuple
			}
			opCost += float64(preserved) * (lr + rr) * e.Cost.Hash
			return rows, lc + rc + opCost, nil
		case *plan.MergeJoin:
			lr, lc, err := rec(m.L)
			if err != nil {
				return 0, 0, err
			}
			rr, rc, err := rec(m.R)
			if err != nil {
				return 0, 0, err
			}
			// One interleaved pass over both sorted inputs — a
			// comparison per advance, no hash table — plus the output.
			// The savings relative to a hash join are real only when
			// the inputs arrive sorted; when they do not, the explicit
			// enforcer Sort nodes beneath carry the n log n charge.
			op := (lr+rr)*e.Cost.Pred + rows*e.Cost.Tuple
			return rows, lc + rc + op, nil
		case *plan.StreamAgg:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			// A boundary comparison per input tuple replaces the hash
			// probe; sorted arrival is paid for by enforcers below.
			return rows, c + in*e.Cost.Pred + rows*e.Cost.Tuple, nil
		case *plan.GenSel:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			op := in * e.Cost.Pred
			// Anti-join per preserved relation: hash the selected
			// projections, probe the input's projections.
			op += float64(len(m.Preserved)) * 2 * in * e.Cost.Hash
			return rows, c + op + rows*e.Cost.Tuple, nil
		case *plan.GroupBy:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			return rows, c + in*e.Cost.Hash + rows*e.Cost.Tuple, nil
		case *plan.Project:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			op := in * e.Cost.Tuple
			if m.Distinct {
				op += in * e.Cost.Hash
			}
			return rows, c + op, nil
		case *plan.Sort:
			in, c, err := rec(m.Input)
			if err != nil {
				return 0, 0, err
			}
			// n log n comparisons plus the (limited) output.
			op := in*math.Log2(math.Max(2, in))*e.Cost.Pred + rows*e.Cost.Tuple
			return rows, c + op, nil
		default:
			return 0, 0, fmt.Errorf("stats: cannot cost %T", n)
		}
	}
}

// memoEntry is one memoized (rows, cost) pair.
type memoEntry struct {
	rows, cost float64
}

// Session memoizes row and cost estimates by subtree fingerprint
// (plan.Key) for the duration of one optimizer run. The plans of an
// equivalence class differ only along a rewrite spine and share
// almost every subtree, so estimating 20k closure members touches
// each distinct subtree once instead of once per plan. Sessions are
// safe for concurrent use — the optimizer's parallel cost phase
// shares one session across workers; duplicated computation under a
// race is benign because estimates are pure functions of the subtree.
//
// A session must not outlive its catalog: keys are plan fingerprints,
// so estimates for a re-ANALYZEd database need a fresh session.
type Session struct {
	e      *Estimator
	rows   sync.Map // plan key -> float64
	cost   sync.Map // plan key -> memoEntry
	budget *guard.Budget
	fb     *feedback.Store
	fbHits atomic.Int64

	rowsHits, rowsMiss, costHits, costMiss *obs.Counter
}

// NewSession opens a memoized estimation session. Cache hit/miss
// totals are reported to reg as stats.memo.{rows,cost}_{hits,misses}
// (the process-wide default registry when reg is nil).
func (e *Estimator) NewSession(reg *obs.Registry) *Session {
	return &Session{
		e:        e,
		rowsHits: reg.Counter("stats.memo.rows_hits"),
		rowsMiss: reg.Counter("stats.memo.rows_misses"),
		costHits: reg.Counter("stats.memo.cost_hits"),
		costMiss: reg.Counter("stats.memo.cost_misses"),
	}
}

// SetFeedback attaches a cardinality feedback store: row estimation
// consults it by subtree fingerprint before the static model, so the
// session ranks plans with corrected cardinalities where executions
// have recorded the truth. A nil store (the default) adds one pointer
// comparison per memo miss.
func (s *Session) SetFeedback(fb *feedback.Store) { s.fb = fb }

// FeedbackHits reports how many distinct subtrees this session
// estimated from feedback corrections rather than the static model.
func (s *Session) FeedbackHits() int64 { return s.fbHits.Load() }

// SetBudget attaches a guard budget to the session: every exported
// estimation entry point checks cancellation before descending, so a
// long costing or extraction phase sharing the session across workers
// stays interruptible. A nil budget (the default) adds one pointer
// comparison per call.
func (s *Session) SetBudget(b *guard.Budget) { s.budget = b }

// Rows is Estimator.Rows through the session's memo.
func (s *Session) Rows(n plan.Node) (float64, error) {
	if err := s.budget.Cancelled(); err != nil {
		return 0, err
	}
	return s.e.rows(n, s)
}

// PlanCost is Estimator.PlanCost through the session's memo.
func (s *Session) PlanCost(n plan.Node) (float64, error) {
	if err := s.budget.Cancelled(); err != nil {
		return 0, err
	}
	return s.e.planCost(n, s)
}

// Estimator returns the underlying estimator (catalog and cost
// model).
func (s *Session) Estimator() *Estimator { return s.e }

// ScanOrder reports the physical sort order the scan delivers, from
// the catalog's ANALYZE-time detection, requalified to the scan's
// alias. It makes Session an order-aware coster: the memo's ordered
// extractor consults it to know which leaves are born sorted.
func (s *Session) ScanOrder(sc *plan.Scan) plan.Order {
	ts, ok := s.e.Cat[sc.Rel]
	if !ok {
		return nil
	}
	return plan.RequalifyOrder(ts.Sorted, sc.Rel, sc.Name())
}

// hasEquiConjunct reports whether p contains a column = column
// conjunct usable by a hash join.
func hasEquiConjunct(p expr.Pred) bool {
	for _, c := range expr.Conjuncts(p) {
		if cmp, ok := c.(expr.Cmp); ok && cmp.Op == value.EQ {
			if _, lc := cmp.L.(expr.Col); lc {
				if _, rc := cmp.R.(expr.Col); rc {
					return true
				}
			}
		}
	}
	return false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Summarize renders the catalog compactly for EXPLAIN output.
func (c Catalog) Summarize() string {
	out := ""
	for name, ts := range c {
		out += fmt.Sprintf("%s: %.0f rows, %d columns\n", name, ts.Rows, len(ts.Columns))
	}
	return out
}

// RowsOf is a convenience to fetch actual row counts from a database.
func RowsOf(db plan.Database) map[string]int {
	out := make(map[string]int, len(db))
	for k, v := range db {
		out[k] = v.Len()
	}
	return out
}
