package stats_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/value"
)

// q5Closure enumerates the Section 3 Q5 closure (2752 plans, heavily
// overlapping subtrees) — the exact population the optimizer's cost
// phase walks.
func q5Closure() ([]plan.Node, plan.Database) {
	eqX := func(a, c string) expr.Pred { return expr.EqCols(a, "x", c, "x") }
	eqY := func(a, c string) expr.Pred { return expr.EqCols(a, "y", c, "y") }
	left := plan.NewJoin(plan.FullJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r3")),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, eqX("r2", "r3"), plan.NewScan("r2"), plan.NewScan("r3")))
	right := plan.NewJoin(plan.LeftJoin, expr.And(eqX("r4", "r5"), eqY("r4", "r6")),
		plan.NewScan("r4"),
		plan.NewJoin(plan.InnerJoin, eqX("r5", "r6"), plan.NewScan("r5"), plan.NewScan("r6")))
	q5 := plan.NewJoin(plan.LeftJoin, eqY("r2", "r4"), left, right)
	db := plan.Database{}
	for _, name := range []string{"r1", "r2", "r3", "r4", "r5", "r6"} {
		b := relation.NewBuilder(name, "x", "y")
		for i := 0; i < 50; i++ {
			b.Row(value.NewInt(int64(i%9)), value.NewInt(int64(i%6)))
		}
		db[name] = b.Relation()
	}
	return core.Saturate(q5, core.SaturateOptions{MaxPlans: 10000}), db
}

// BenchmarkCostClosure costs every member of the Q5 closure, the
// optimizer's cost phase in isolation. "estimator" recomputes every
// subtree (the seed behaviour: 11.79ms, 96672 allocs per pass);
// "session" memoizes shared subtrees by fingerprint.
func BenchmarkCostClosure(b *testing.B) {
	plans, db := q5Closure()
	est := stats.NewEstimator(stats.FromDatabase(db))
	b.Run("estimator", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range plans {
				if _, err := est.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := est.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := est.NewSession(nil)
			for _, p := range plans {
				if _, err := sess.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
