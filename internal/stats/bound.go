package stats

import "repro/internal/plan"

// PlanCostBound is PlanCost with a branch-and-bound early exit: it
// returns (cost, true) when the plan's total cost is strictly below
// bound, and (partial, false) as soon as the bottom-up recursion can
// tell the total will reach it — without finishing (or memoizing) the
// remainder of the tree. Because every node's cost is the sum of its
// child costs plus a non-negative operator cost, the running child
// sum is a lower bound on the total, so bailing when it crosses the
// bound never misclassifies a cheaper plan.
//
// Subtrees that do complete are memoized exactly as under PlanCost,
// so an abandoned candidate still seeds the session's cache for the
// next one — the usual pattern during memo extraction, where sibling
// candidates share most subtrees.
func (s *Session) PlanCostBound(n plan.Node, bound float64) (float64, bool, error) {
	if err := s.budget.Cancelled(); err != nil {
		return 0, false, err
	}
	var full func(n plan.Node) (float64, float64, error)
	full = func(n plan.Node) (float64, float64, error) {
		memoize := len(n.Children()) > 0
		var key string
		if memoize {
			key = plan.Key(n)
			if v, ok := s.cost.Load(key); ok {
				s.costHits.Inc()
				ent := v.(memoEntry)
				return ent.rows, ent.cost, nil
			}
			s.costMiss.Inc()
		}
		rows, cost, err := s.e.costSwitch(n, s, full)
		if err != nil {
			return 0, 0, err
		}
		if memoize {
			s.cost.Store(key, memoEntry{rows: rows, cost: cost})
		}
		return rows, cost, nil
	}
	var bounded func(n plan.Node, bound float64) (float64, bool, error)
	bounded = func(n plan.Node, bound float64) (float64, bool, error) {
		if len(n.Children()) > 0 {
			if v, ok := s.cost.Load(plan.Key(n)); ok {
				s.costHits.Inc()
				cost := v.(memoEntry).cost
				return cost, cost < bound, nil
			}
		}
		var childSum float64
		for _, c := range n.Children() {
			cc, within, err := bounded(c, bound-childSum)
			if err != nil {
				return 0, false, err
			}
			childSum += cc
			if !within || childSum >= bound {
				return childSum, false, nil
			}
		}
		// All children are complete (and cached), so finishing this
		// node through the exact recursion is one costSwitch call.
		_, cost, err := full(n)
		if err != nil {
			return 0, false, err
		}
		return cost, cost < bound, nil
	}
	return bounded(n, bound)
}
