package stats

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func testDB() plan.Database {
	r1 := relation.NewBuilder("r1", "x", "y")
	for i := 0; i < 100; i++ {
		r1.Row(value.NewInt(int64(i%10)), value.NewInt(int64(i)))
	}
	r2 := relation.NewBuilder("r2", "x", "s")
	for i := 0; i < 50; i++ {
		v := "ok"
		if i < 5 {
			v = "BANKRUPT"
		}
		r2.Row(value.NewInt(int64(i)), value.NewString(v))
	}
	return plan.Database{"r1": r1.Relation(), "r2": r2.Relation()}
}

func TestFromDatabase(t *testing.T) {
	cat := FromDatabase(testDB())
	r1 := cat["r1"]
	if r1.Rows != 100 {
		t.Errorf("rows = %v", r1.Rows)
	}
	if got := r1.Columns["x"].Distinct; got != 10 {
		t.Errorf("distinct(x) = %v", got)
	}
	if got := r1.Columns["y"].Distinct; got != 100 {
		t.Errorf("distinct(y) = %v", got)
	}
	if _, hasRID := r1.Columns["#rid"]; hasRID {
		t.Error("virtual columns must not be analyzed")
	}
	// MCV list on the low-cardinality string column.
	s := cat["r2"].Columns["s"]
	if s.TopValues == nil {
		t.Fatal("expected MCV list")
	}
	if got := s.TopValues[value.NewString("BANKRUPT").Key()]; got != 0.1 {
		t.Errorf("BANKRUPT fraction = %v, want 0.1", got)
	}
}

func TestSelectivity(t *testing.T) {
	est := NewEstimator(FromDatabase(testDB()))
	eqJoin := expr.EqCols("r1", "x", "r2", "x")
	// 1/max(10, 50) = 0.02.
	if got := est.Selectivity(eqJoin); got != 0.02 {
		t.Errorf("join selectivity = %v", got)
	}
	eqConst := expr.Cmp{Op: value.EQ, L: expr.Column("r2", "s"), R: expr.Str("BANKRUPT")}
	if got := est.Selectivity(eqConst); got != 0.1 {
		t.Errorf("MCV selectivity = %v, want 0.1", got)
	}
	rare := expr.Cmp{Op: value.EQ, L: expr.Column("r2", "s"), R: expr.Str("nope")}
	if got := est.Selectivity(rare); got != 0.001 {
		t.Errorf("absent-literal selectivity = %v", got)
	}
	rng := expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Int(3)}
	if got := est.Selectivity(rng); got != 1.0/3 {
		t.Errorf("range selectivity = %v", got)
	}
	conj := expr.And(eqJoin, rng)
	if got, want := est.Selectivity(conj), 0.02*(1.0/3); got < want-1e-12 || got > want+1e-12 {
		t.Errorf("conjunction selectivity = %v, want %v", got, want)
	}
	ne := expr.Cmp{Op: value.NE, L: expr.Column("r1", "x"), R: expr.Column("r2", "x")}
	if got := est.Selectivity(ne); got != 0.98 {
		t.Errorf("<> selectivity = %v", got)
	}
}

func TestRowsEstimates(t *testing.T) {
	db := testDB()
	est := NewEstimator(FromDatabase(db))
	p := expr.EqCols("r1", "x", "r2", "x")

	scan := plan.NewScan("r1")
	if got, _ := est.Rows(scan); got != 100 {
		t.Errorf("scan rows = %v", got)
	}
	inner := plan.NewJoin(plan.InnerJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))
	if got, _ := est.Rows(inner); got != 100 {
		t.Errorf("inner join rows = %v (100*50*0.02)", got)
	}
	left := plan.NewJoin(plan.LeftJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))
	if got, _ := est.Rows(left); got < 100 {
		t.Errorf("LOJ must preserve at least the left side: %v", got)
	}
	full := plan.NewJoin(plan.FullJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))
	lr, _ := est.Rows(left)
	fr, _ := est.Rows(full)
	if fr < lr {
		t.Errorf("FOJ estimate (%v) below LOJ (%v)", fr, lr)
	}
	gp := plan.NewGroupBy([]schema.Attribute{schema.Attr("r1", "x")}, nil, plan.NewScan("r1"))
	if got, _ := est.Rows(gp); got != 10 {
		t.Errorf("group rows = %v, want distinct(x)=10", got)
	}
	if _, err := est.Rows(plan.NewScan("nosuch")); err == nil {
		t.Error("unknown relation must fail")
	}
}

func TestPlanCostPrefersCheaperOrders(t *testing.T) {
	db := testDB()
	est := NewEstimator(FromDatabase(db))
	p := expr.EqCols("r1", "x", "r2", "x")
	hashable := plan.NewJoin(plan.InnerJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))
	nonEqui := plan.NewJoin(plan.InnerJoin,
		expr.Cmp{Op: value.LT, L: expr.Column("r1", "x"), R: expr.Column("r2", "x")},
		plan.NewScan("r1"), plan.NewScan("r2"))
	hc, err := est.PlanCost(hashable)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := est.PlanCost(nonEqui)
	if err != nil {
		t.Fatal(err)
	}
	if hc >= nc {
		t.Errorf("hash join (%v) must be cheaper than nested loop (%v)", hc, nc)
	}
	// A selection on top adds cost.
	sel := plan.NewSelect(expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Int(3)}, hashable)
	scost, _ := est.PlanCost(sel)
	if scost <= hc {
		t.Errorf("selection must add cost: %v vs %v", scost, hc)
	}
	// GS costs like a join plus compensation, more than a plain
	// selection over the same input.
	gs := plan.NewGenSel(p, []plan.PreservedSpec{plan.NewPreserved("r1")}, hashable)
	gcost, err := est.PlanCost(gs)
	if err != nil {
		t.Fatal(err)
	}
	plainSel := plan.NewSelect(p, hashable)
	pcost, _ := est.PlanCost(plainSel)
	if gcost <= pcost {
		t.Errorf("GS (%v) must cost more than plain selection (%v)", gcost, pcost)
	}
}

func TestIndexNestedLoopBeatsHashForTinyOuter(t *testing.T) {
	tiny := relation.NewBuilder("tiny", "x")
	for i := 0; i < 3; i++ {
		tiny.Row(value.NewInt(int64(i)))
	}
	big := relation.NewBuilder("big", "x")
	for i := 0; i < 10000; i++ {
		big.Row(value.NewInt(int64(i)))
	}
	db := plan.Database{"tiny": tiny.Relation(), "big": big.Relation()}
	est := NewEstimator(FromDatabase(db))
	p := expr.EqCols("tiny", "x", "big", "x")
	j := plan.NewJoin(plan.InnerJoin, p, plan.NewScan("tiny"), plan.NewScan("big"))
	cost, err := est.PlanCost(j)
	if err != nil {
		t.Fatal(err)
	}
	// Hash join would pay ~10000*Hash on the big side; the index
	// nested loop pays 3 probes. The total must stay near the big
	// relation's scan cost.
	if cost > 10000*est.Cost.Tuple+1000 {
		t.Errorf("index nested loop not applied: cost %v", cost)
	}
}

func TestSummarizeAndRowsOf(t *testing.T) {
	db := testDB()
	cat := FromDatabase(db)
	if s := cat.Summarize(); len(s) == 0 {
		t.Error("empty summary")
	}
	rows := RowsOf(db)
	if rows["r1"] != 100 || rows["r2"] != 50 {
		t.Errorf("RowsOf = %v", rows)
	}
}

// TestEstimatesCoverAllNodes pushes cardinality and cost estimation
// through every operator, including the paper's σ* and MGOJ.
func TestEstimatesCoverAllNodes(t *testing.T) {
	db := testDB()
	est := NewEstimator(FromDatabase(db))
	p := expr.EqCols("r1", "x", "r2", "x")
	join := plan.NewJoin(plan.LeftJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))
	nodes := []plan.Node{
		plan.NewGenSel(p, []plan.PreservedSpec{plan.NewPreserved("r1")}, join),
		plan.NewMGOJ(p, []plan.PreservedSpec{plan.NewPreserved("r1")},
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewGroupBy([]schema.Attribute{schema.RID("r1")}, nil, plan.NewScan("r1")),
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x")}, true, plan.NewScan("r1")),
		plan.NewProject([]schema.Attribute{schema.Attr("r1", "x")}, false, plan.NewScan("r1")),
		plan.NewSort([]plan.SortKey{{Attr: schema.Attr("r1", "x")}}, 5, plan.NewScan("r1")),
		plan.NewSort(nil, -1, plan.NewScan("r1")),
		plan.NewJoin(plan.RightJoin, p, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewJoin(plan.FullJoin, p, plan.NewScan("r1"), plan.NewScan("r2")),
	}
	for _, n := range nodes {
		rows, err := est.Rows(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if rows < 0 {
			t.Errorf("%s: negative estimate %v", n, rows)
		}
		cost, err := est.PlanCost(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if cost <= 0 {
			t.Errorf("%s: non-positive cost %v", n, cost)
		}
	}
	// The limited sort estimates fewer rows than the unlimited one.
	lim, _ := est.Rows(nodes[5])
	unlim, _ := est.Rows(nodes[6])
	if lim >= unlim {
		t.Errorf("limit 5 estimate %v should be below %v", lim, unlim)
	}
	// Error propagation.
	for _, n := range []plan.Node{
		plan.NewSelect(p, plan.NewScan("nosuch")),
		plan.NewGenSel(p, nil, plan.NewScan("nosuch")),
		plan.NewGroupBy(nil, nil, plan.NewScan("nosuch")),
		plan.NewSort(nil, -1, plan.NewScan("nosuch")),
		plan.NewMGOJ(p, nil, plan.NewScan("nosuch"), plan.NewScan("r1")),
	} {
		if _, err := est.Rows(n); err == nil {
			t.Errorf("Rows(%T) should fail", n)
		}
		if _, err := est.PlanCost(n); err == nil {
			t.Errorf("PlanCost(%T) should fail", n)
		}
	}
}
