package optimizer

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// OptimizeDP runs the Section 4 dynamic program directly: bottom-up
// enumeration of association trees over the query hypergraph (with
// Definition 3.2's broken-edge connectivity), keeping the cheapest
// plan per relation subset — the System-R approach the paper says its
// checks slot into. It applies to pure inner-join queries (run
// Simplify first; outer joins need the operator-assignment machinery
// of the saturation path).
//
// dpMaskLimit is the widest relation set the DP's uint64 subset masks
// can represent. Two bits are held back so the full-set mask and the
// subset-enumeration arithmetic stay overflow-free.
const dpMaskLimit = 62

// dpGuard rejects relation counts the subset bitmask cannot encode.
func dpGuard(n int) error {
	if n > dpMaskLimit {
		return fmt.Errorf("optimizer: %d relations exceed the DP limit of %d", n, dpMaskLimit)
	}
	return nil
}

// Each conjunct of every join predicate is placed at the first
// combination where both its sides are available, which is exactly
// the conjunct break-up freedom the paper's Definition 3.2 adds.
func (o *Optimizer) OptimizeDP(q plan.Node, db plan.Database) (*Result, error) {
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		return nil, err
	}
	for _, e := range h.Edges {
		if e.Kind != hypergraph.Undirected {
			return nil, fmt.Errorf("optimizer: DP enumeration handles inner joins only; edge %s is %s", e, e.Kind)
		}
	}
	n := len(h.Nodes)
	if err := dpGuard(n); err != nil {
		return nil, err
	}
	names := append([]string(nil), h.Nodes...)
	sort.Strings(names)
	index := make(map[string]int, n)
	for i, name := range names {
		index[name] = i
	}

	// Collect every conjunct with its relation mask.
	type conjunct struct {
		pred expr.Pred
		mask uint64
	}
	var conjuncts []conjunct
	for _, e := range h.Edges {
		for _, c := range expr.Conjuncts(e.Pred) {
			var m uint64
			for _, rel := range expr.Rels(c) {
				i, ok := index[rel]
				if !ok {
					return nil, fmt.Errorf("optimizer: predicate %s references unknown relation", c)
				}
				m |= 1 << uint(i)
			}
			conjuncts = append(conjuncts, conjunct{pred: c, mask: m})
		}
	}

	type entry struct {
		node plan.Node
		cost float64
	}
	best := make(map[uint64]entry)
	for i, name := range names {
		scan := plan.NewScan(name)
		cost, err := o.Est.PlanCost(scan)
		if err != nil {
			return nil, err
		}
		best[1<<uint(i)] = entry{node: scan, cost: cost}
	}

	full := uint64(1)<<uint(n) - 1
	// Preallocation is a hint only: beyond ~2^20 subsets the append
	// growth is noise next to the enumeration itself.
	hint := n
	if hint > 20 {
		hint = 20
	}
	subsets := make([]uint64, 0, 1<<uint(hint))
	for s := uint64(1); s <= full; s++ {
		subsets = append(subsets, s)
	}
	sort.Slice(subsets, func(i, j int) bool {
		return bits.OnesCount64(subsets[i]) < bits.OnesCount64(subsets[j])
	})

	considered := 0
	for _, s := range subsets {
		if bits.OnesCount64(s) < 2 {
			continue
		}
		low := s & (-s)
		rest := s &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			a := low | sub
			b := s &^ a
			if b != 0 {
				ea, okA := best[a]
				eb, okB := best[b]
				if okA && okB {
					// Applicable conjuncts: both sides touched, all
					// relations available.
					var preds []expr.Pred
					for _, c := range conjuncts {
						if c.mask&^s == 0 && c.mask&a != 0 && c.mask&b != 0 {
							preds = append(preds, c.pred)
						}
					}
					if len(preds) > 0 {
						join := plan.NewJoin(plan.InnerJoin, expr.And(preds...), ea.node, eb.node)
						cost, err := o.Est.PlanCost(join)
						if err != nil {
							return nil, err
						}
						considered++
						if cur, ok := best[s]; !ok || cost < cur.cost {
							best[s] = entry{node: join, cost: cost}
						}
					}
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	top, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: query graph is disconnected; no join order covers all relations")
	}
	origCost, err := o.Est.PlanCost(q)
	if err != nil {
		return nil, err
	}
	origRows, err := o.Est.Rows(q)
	if err != nil {
		return nil, err
	}
	rows, err := o.Est.Rows(top.node)
	if err != nil {
		return nil, err
	}
	return &Result{
		Best:       Ranked{Plan: top.node, Cost: top.cost, Rows: rows},
		Original:   Ranked{Plan: q, Cost: origCost, Rows: origRows},
		Considered: considered,
		Plans:      []Ranked{{Plan: top.node, Cost: top.cost, Rows: rows}},
	}, nil
}
