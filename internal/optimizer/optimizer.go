// Package optimizer selects the cheapest equivalent plan for a query
// (Section 4): it closes the query under the paper's reordering
// identities — commutativity, the [BHAR95a]/[GALI92a]
// associativities, MGOJ introduction and generalized-selection
// predicate break-up — plus the aggregation push-up of Example 3.1,
// costs every member of the closure, and returns the minimum.
//
// A Baseline optimizer (no break-up, no push-up) models the state of
// the art the paper improves on; comparing the two reproduces the
// paper's cost-win claims (experiments E7 and E9 in DESIGN.md).
package optimizer

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simplify"
	"repro/internal/stats"
	"repro/internal/stats/feedback"
)

// Options configure an optimization run.
type Options struct {
	// Rules is the identity rule set; core.DefaultRules() if nil.
	Rules []core.Rule
	// MaxPlans caps the enumerated equivalence class (default 20000).
	MaxPlans int
	// PushUpAggregates also seeds the enumeration with
	// aggregation-pull-up variants of the query (Example 3.1).
	PushUpAggregates bool
	// Workers parallelizes the saturate and cost phases across
	// goroutines. 0 and 1 run serially; < 0 means
	// runtime.GOMAXPROCS(0). Any value yields the identical result:
	// the same plan set, ranking and best plan as the serial run.
	Workers int
	// Obs receives the run's metrics (rule firings, dedup hits, plans
	// enumerated, per-phase wall time); obs.Default() when nil.
	Obs *obs.Registry
	// Tracer, when non-nil, collects a span tree of the optimization
	// phases (simplify, saturate, cost, rank) for -trace output.
	Tracer *obs.Tracer
	// Budget, when non-nil, governs the run: cancellation (checked at
	// wave boundaries and inside the cost phase) aborts with
	// guard.ErrCancelled, while a tripped expression budget degrades
	// gracefully — Optimize returns the best plan found so far, or
	// the heuristic left-deep order when that is cheaper, with
	// Result.Degraded naming the reason.
	Budget *guard.Budget
	// Feedback, when non-nil, attaches a cardinality feedback store to
	// the run's estimation session: subtrees with recorded
	// estimated→actual corrections are costed at the observed
	// cardinality instead of the static model's. Off (nil) by default —
	// a nil store leaves plans, costs and traces bit-identical to a
	// run without feedback.
	Feedback *feedback.Store
	// UseMemo selects the enumeration engine. The default, MemoAuto,
	// explores through the internal/memo group table — equivalence
	// groups with branch-and-bound extraction — whenever every rule
	// declares a group-local scope, and falls back to whole-tree
	// saturation otherwise (optimizer.memo_fallback counts the
	// fallbacks). MemoOff forces saturation. On the memo path,
	// Result.Considered counts admitted memo expressions and
	// Result.Plans holds only the winner — the full ranked list is a
	// saturation-path artifact (the memo never materializes the class).
	UseMemo MemoMode
}

// MemoMode is the Options.UseMemo setting.
type MemoMode uint8

const (
	// MemoAuto (the default) uses the memo when the rule set supports
	// it, saturation otherwise.
	MemoAuto MemoMode = iota
	// MemoOff always uses whole-tree saturation.
	MemoOff
)

// Ranked is one enumerated plan with its estimated cost.
type Ranked struct {
	Plan plan.Node
	Cost float64
	Rows float64
	// Derivation is the chain of identity rules that produced the
	// plan from the query as written (empty for the original).
	Derivation []string
}

// PhaseTiming is the wall time of one optimization phase.
type PhaseTiming struct {
	Name    string
	Elapsed time.Duration
}

// Result reports an optimization run.
type Result struct {
	Best       Ranked
	Original   Ranked
	Considered int
	// All plans, cheapest first (capped by Options.MaxPlans).
	Plans []Ranked
	// Phases reports per-phase wall time in execution order
	// (simplify, saturate, cost, rank).
	Phases []PhaseTiming
	// RuleFirings counts, per identity rule, the plans it admitted
	// into the equivalence class (each plan credits the final rule of
	// its derivation).
	RuleFirings map[string]int
	// Degraded is non-empty when resource governance stopped
	// enumeration early ("budget:exprs"): Best is the cheapest plan
	// found before the stop — possibly the greedy left-deep fallback
	// — rather than the optimum over the full equivalence class.
	Degraded string
	// FeedbackCorrections counts the distinct subtrees this run costed
	// from feedback corrections instead of the static model (0 when
	// Options.Feedback is nil or no correction matched).
	FeedbackCorrections int
	// Order, on the memo path, reports how a root ORDER BY was
	// satisfied as a physical property: the required order, what the
	// chosen plan delivers, and how many enforcer sorts were injected
	// (zero means the requirement was eliminated — some operator's
	// natural output order covered it). Nil when the query required no
	// order or the saturation path ran.
	Order *OrderInfo
}

// OrderInfo is Result.Order: the provenance of a root sort
// requirement.
type OrderInfo struct {
	Required  plan.Order
	Delivered plan.Order
	// Enforced counts the explicit enforcer Sort nodes in the best
	// plan; Eliminated reports the zero-enforcer case.
	Enforced int
}

// Eliminated reports whether the requirement was met without any
// enforcer sort.
func (oi *OrderInfo) Eliminated() bool { return oi.Enforced == 0 }

// Optimizer ranks the equivalence class of a query by estimated cost.
type Optimizer struct {
	Est  *stats.Estimator
	Opts Options
}

// New builds an optimizer over the given statistics with the paper's
// full rule set and aggregation push-up enabled.
func New(est *stats.Estimator) *Optimizer {
	return &Optimizer{Est: est, Opts: Options{PushUpAggregates: true}}
}

// NewBaseline builds the comparison optimizer: no generalized
// selection, no MGOJ, no aggregation push-up — only the reorderings
// available before this paper.
func NewBaseline(est *stats.Estimator) *Optimizer {
	return &Optimizer{Est: est, Opts: Options{Rules: core.BaselineRules()}}
}

// Optimize enumerates the equivalence class of q and returns the
// cheapest plan. The database is needed only for schema resolution of
// aggregation push-up seeds; pass nil when PushUpAggregates is off.
//
// Under a budget (Options.Budget) the run is interruptible and
// bounded: cancellation and contained panics surface as typed guard
// errors, and an exhausted expression budget degrades to the best
// plan found so far (Result.Degraded). The package boundary converts
// any internal panic into a *guard.PanicError carrying the phase
// reached and the query fingerprint.
func (o *Optimizer) Optimize(q plan.Node, db plan.Database) (res *Result, err error) {
	reg := o.Opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	curPhase := "init"
	defer guard.RecoverAs(&err, &curPhase, plan.Key(q), reg)
	reg.Counter("optimizer.runs").Inc()
	root := o.Opts.Tracer.Start("optimize")
	defer root.End()
	var phases []PhaseTiming
	phase := func(name string) func() {
		curPhase = name
		sp := root.Child(name)
		start := time.Now()
		return func() {
			d := time.Since(start)
			sp.End()
			phases = append(phases, PhaseTiming{Name: name, Elapsed: d})
			reg.Histogram("optimizer.phase." + name + "_ns").ObserveDuration(d)
		}
	}

	maxPlans := o.Opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 20000
	}
	rules := o.Opts.Rules
	if rules == nil {
		rules = core.DefaultRules()
	}
	if o.Opts.PushUpAggregates {
		// Aggregation pull-up participates in the closure itself, so
		// it composes with reorderings (Query 1's join must move next
		// to the aggregation before the pull-up applies).
		rules = append(append([]core.Rule(nil), rules...), core.PushUpRule(db))
	}
	b := o.Opts.Budget
	if err := b.Cancelled(); err != nil {
		return nil, err
	}
	if err := guard.Hit(guard.PointSimplify); err != nil {
		return nil, err
	}
	if o.Opts.UseMemo == MemoAuto {
		if ok, _ := memo.Supports(rules); ok {
			return o.optimizeMemo(q, rules, maxPlans, reg, phase, &phases)
		}
		reg.Counter("optimizer.memo_fallback").Inc()
	}
	type seed struct {
		node   plan.Node
		prefix []string
	}
	seeds := []seed{{node: q}}
	// Outer join simplification first ([BHAR95c]); the paper assumes
	// simple queries, and downgraded operators reorder more freely.
	endSimplify := phase("simplify")
	if s := simplify.Simplify(q); s.String() != q.String() {
		seeds = append(seeds, seed{node: s, prefix: []string{"simplify-outer-joins"}})
		reg.Counter("optimizer.simplified_seeds").Inc()
	}
	endSimplify()
	endSaturate := phase("saturate")
	seen := make(map[string]bool)
	var all []plan.Node
	var chains [][]string
	var degraded string
	firings := make(map[string]int)
	var satErr error
	// The pprof labels make CPU profiles attribute samples to the
	// enumeration phase; the saturation worker pool inherits them.
	obs.WithPhase(b.Context(), "saturation", "saturate", func() {
		for _, sd := range seeds {
			plans, trace, stopped, serr := core.SaturateGuarded(sd.node, core.SaturateOptions{
				Rules:    rules,
				MaxPlans: maxPlans - len(all),
				Workers:  o.Opts.Workers,
				Budget:   b,
				Obs:      reg,
			})
			if serr != nil {
				satErr = serr
				return
			}
			if stopped != "" {
				degraded = stopped
			}
			for _, p := range plans {
				key := plan.Key(p)
				if !seen[key] {
					seen[key] = true
					all = append(all, p)
					chain := append(append([]string(nil), sd.prefix...), core.DerivationChain(trace, key)...)
					chains = append(chains, chain)
					if len(chain) > 0 {
						firings[chain[len(chain)-1]]++
					}
				}
			}
			if len(all) >= maxPlans || degraded != "" {
				break
			}
		}
	})
	endSaturate()
	if satErr != nil {
		return nil, satErr
	}
	reg.Counter("optimizer.plans_enumerated").Add(int64(len(all)))
	reg.Gauge("optimizer.last_considered").Set(int64(len(all)))
	if len(all) == 0 {
		return nil, fmt.Errorf("optimizer: no plans enumerated for %s", q)
	}
	sess := o.Est.NewSession(reg)
	sess.SetBudget(b)
	sess.SetFeedback(o.Opts.Feedback)
	if degraded != "" {
		reg.Counter("guard.degraded").Inc()
		// The greedy left-deep order joins the truncated closure as
		// one more candidate: the normal ranking picks it exactly when
		// it beats everything enumerated before the budget tripped.
		if hp, ok := heuristicLeftDeep(q, sess); ok {
			if key := plan.Key(hp); !seen[key] {
				seen[key] = true
				all = append(all, hp)
				chains = append(chains, []string{HeuristicRule})
			}
		}
	}
	endCost := phase("cost")
	var ranked []Ranked
	obs.WithPhase(b.Context(), "saturation", "cost", func() {
		ranked, err = o.costAll(sess, all, chains, reg)
	})
	if err != nil {
		return nil, err
	}
	endCost()
	reg.Counter("optimizer.plans_costed").Add(int64(len(ranked)))
	endRank := phase("rank")
	res = &Result{Considered: len(ranked), Original: ranked[0], RuleFirings: firings, Degraded: degraded}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Cost < ranked[j].Cost })
	res.Plans = ranked
	res.Best = ranked[0]
	res.FeedbackCorrections = int(sess.FeedbackHits())
	endRank()
	res.Phases = phases
	root.Annotate("plans=%d best=%.1f", res.Considered, res.Best.Cost)
	return res, nil
}

// costAll estimates cost and cardinality for every enumerated plan
// through one stats.Session, so shared subtrees across the closure are
// costed once. With Options.Workers > 1 the plans fan out across
// goroutines; results land in their plan's slot, so the ranking input
// is index-deterministic and the sort (stable) agrees with the serial
// run. On error the first failing index wins, matching the serial
// loop's first-error semantics; each item runs under guard.Safely so
// a costing panic in a worker goroutine surfaces as a typed error.
func (o *Optimizer) costAll(sess *stats.Session, all []plan.Node, chains [][]string, reg *obs.Registry) ([]Ranked, error) {
	ranked := make([]Ranked, len(all))
	costOne := func(i int) error {
		return guard.Safely("cost", plan.Key(all[i]), reg, func() error {
			if e := guard.Hit(guard.PointCost); e != nil {
				return e
			}
			cost, err := sess.PlanCost(all[i])
			if err != nil {
				return fmt.Errorf("optimizer: costing %s: %w", all[i], err)
			}
			rows, err := sess.Rows(all[i])
			if err != nil {
				return err
			}
			ranked[i] = Ranked{Plan: all[i], Cost: cost, Rows: rows, Derivation: chains[i]}
			return nil
		})
	}
	workers := o.Opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(all) < 2 {
		for i := range all {
			if err := costOne(i); err != nil {
				return nil, err
			}
		}
		return ranked, nil
	}
	if workers > len(all) {
		workers = len(all)
	}
	errs := make([]error, len(all))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(all) {
					return
				}
				errs[i] = costOne(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ranked, nil
}

// Explain renders an optimization result: the chosen plan, its cost,
// and how it compares with the query as written.
func Explain(res *Result) string {
	out := fmt.Sprintf("plans considered: %d\n", res.Considered)
	if res.Degraded != "" {
		out += fmt.Sprintf("degraded:        %s (best-effort plan, not the full-class optimum)\n", res.Degraded)
	}
	out += fmt.Sprintf("original cost:   %.1f (est. %.0f rows)\n", res.Original.Cost, res.Original.Rows)
	out += fmt.Sprintf("best cost:       %.1f (est. %.0f rows)\n", res.Best.Cost, res.Best.Rows)
	if res.Original.Cost > 0 {
		out += fmt.Sprintf("speedup:         %.2fx\n", res.Original.Cost/res.Best.Cost)
	}
	if len(res.Best.Derivation) > 0 {
		out += "derivation:      " + strings.Join(res.Best.Derivation, " -> ") + "\n"
	}
	if res.FeedbackCorrections > 0 {
		out += fmt.Sprintf("feedback:        corrected %d estimates\n", res.FeedbackCorrections)
	}
	if res.Order != nil {
		prov := fmt.Sprintf("enforced %d", res.Order.Enforced)
		if res.Order.Eliminated() {
			prov = "eliminated"
		}
		out += fmt.Sprintf("order:           required %s delivered %s (%s)\n", res.Order.Required, res.Order.Delivered, prov)
	}
	if len(res.Phases) > 0 {
		parts := make([]string, len(res.Phases))
		for i, p := range res.Phases {
			parts[i] = fmt.Sprintf("%s %s", p.Name, p.Elapsed.Round(time.Microsecond))
		}
		out += "phases:          " + strings.Join(parts, ", ") + "\n"
	}
	if len(res.RuleFirings) > 0 {
		rules := make([]string, 0, len(res.RuleFirings))
		for r := range res.RuleFirings {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		parts := make([]string, len(rules))
		for i, r := range rules {
			parts[i] = fmt.Sprintf("%s×%d", r, res.RuleFirings[r])
		}
		out += "rule firings:    " + strings.Join(parts, ", ") + "\n"
	}
	out += "best plan:\n" + plan.Indent(res.Best.Plan)
	return out
}
