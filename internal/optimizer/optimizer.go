// Package optimizer selects the cheapest equivalent plan for a query
// (Section 4): it closes the query under the paper's reordering
// identities — commutativity, the [BHAR95a]/[GALI92a]
// associativities, MGOJ introduction and generalized-selection
// predicate break-up — plus the aggregation push-up of Example 3.1,
// costs every member of the closure, and returns the minimum.
//
// A Baseline optimizer (no break-up, no push-up) models the state of
// the art the paper improves on; comparing the two reproduces the
// paper's cost-win claims (experiments E7 and E9 in DESIGN.md).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/simplify"
	"repro/internal/stats"
)

// Options configure an optimization run.
type Options struct {
	// Rules is the identity rule set; core.DefaultRules() if nil.
	Rules []core.Rule
	// MaxPlans caps the enumerated equivalence class (default 20000).
	MaxPlans int
	// PushUpAggregates also seeds the enumeration with
	// aggregation-pull-up variants of the query (Example 3.1).
	PushUpAggregates bool
}

// Ranked is one enumerated plan with its estimated cost.
type Ranked struct {
	Plan plan.Node
	Cost float64
	Rows float64
	// Derivation is the chain of identity rules that produced the
	// plan from the query as written (empty for the original).
	Derivation []string
}

// Result reports an optimization run.
type Result struct {
	Best       Ranked
	Original   Ranked
	Considered int
	// All plans, cheapest first (capped by Options.MaxPlans).
	Plans []Ranked
}

// Optimizer ranks the equivalence class of a query by estimated cost.
type Optimizer struct {
	Est  *stats.Estimator
	Opts Options
}

// New builds an optimizer over the given statistics with the paper's
// full rule set and aggregation push-up enabled.
func New(est *stats.Estimator) *Optimizer {
	return &Optimizer{Est: est, Opts: Options{PushUpAggregates: true}}
}

// NewBaseline builds the comparison optimizer: no generalized
// selection, no MGOJ, no aggregation push-up — only the reorderings
// available before this paper.
func NewBaseline(est *stats.Estimator) *Optimizer {
	return &Optimizer{Est: est, Opts: Options{Rules: core.BaselineRules()}}
}

// Optimize enumerates the equivalence class of q and returns the
// cheapest plan. The database is needed only for schema resolution of
// aggregation push-up seeds; pass nil when PushUpAggregates is off.
func (o *Optimizer) Optimize(q plan.Node, db plan.Database) (*Result, error) {
	maxPlans := o.Opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 20000
	}
	type seed struct {
		node   plan.Node
		prefix []string
	}
	seeds := []seed{{node: q}}
	// Outer join simplification first ([BHAR95c]); the paper assumes
	// simple queries, and downgraded operators reorder more freely.
	if s := simplify.Simplify(q); s.String() != q.String() {
		seeds = append(seeds, seed{node: s, prefix: []string{"simplify-outer-joins"}})
	}
	rules := o.Opts.Rules
	if o.Opts.PushUpAggregates {
		// Aggregation pull-up participates in the closure itself, so
		// it composes with reorderings (Query 1's join must move next
		// to the aggregation before the pull-up applies).
		if rules == nil {
			rules = core.DefaultRules()
		}
		rules = append(append([]core.Rule(nil), rules...), core.PushUpRule(db))
	}
	seen := make(map[string]bool)
	var all []plan.Node
	var chains [][]string
	for _, sd := range seeds {
		plans, trace := core.SaturateTraced(sd.node, core.SaturateOptions{Rules: rules, MaxPlans: maxPlans - len(all)})
		for _, p := range plans {
			key := p.String()
			if !seen[key] {
				seen[key] = true
				all = append(all, p)
				chain := append(append([]string(nil), sd.prefix...), core.DerivationChain(trace, key)...)
				chains = append(chains, chain)
			}
		}
		if len(all) >= maxPlans {
			break
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("optimizer: no plans enumerated for %s", q)
	}
	ranked := make([]Ranked, 0, len(all))
	for i, p := range all {
		cost, err := o.Est.PlanCost(p)
		if err != nil {
			return nil, fmt.Errorf("optimizer: costing %s: %w", p, err)
		}
		rows, err := o.Est.Rows(p)
		if err != nil {
			return nil, err
		}
		ranked = append(ranked, Ranked{Plan: p, Cost: cost, Rows: rows, Derivation: chains[i]})
	}
	res := &Result{Considered: len(ranked), Original: ranked[0]}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Cost < ranked[j].Cost })
	res.Plans = ranked
	res.Best = ranked[0]
	return res, nil
}

// Explain renders an optimization result: the chosen plan, its cost,
// and how it compares with the query as written.
func Explain(res *Result) string {
	out := fmt.Sprintf("plans considered: %d\n", res.Considered)
	out += fmt.Sprintf("original cost:   %.1f (est. %.0f rows)\n", res.Original.Cost, res.Original.Rows)
	out += fmt.Sprintf("best cost:       %.1f (est. %.0f rows)\n", res.Best.Cost, res.Best.Rows)
	if res.Original.Cost > 0 {
		out += fmt.Sprintf("speedup:         %.2fx\n", res.Original.Cost/res.Best.Cost)
	}
	if len(res.Best.Derivation) > 0 {
		out += "derivation:      " + strings.Join(res.Best.Derivation, " -> ") + "\n"
	}
	out += "best plan:\n" + plan.Indent(res.Best.Plan)
	return out
}
