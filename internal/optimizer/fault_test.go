// Fault-injection property suite for the optimizer: every registered
// guard point that fires during an optimization, when armed to fail or
// panic, must surface as a typed guard error or a degraded-but-valid
// plan — never a hang, an uncontained panic, or a silently wrong
// result. Runs under -race via make faults.
package optimizer_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
)

// faultMaxPlans bounds each enumeration so the full
// point × mode × engine × worker matrix stays fast.
const faultMaxPlans = 1500

// faultSeeds is the injection matrix's query set: the Section 1.1/2
// outer-join query, the paper's Q5 and Q6, a seven-relation chain and
// a four-relation star.
func faultSeeds() []struct {
	name string
	q    plan.Node
	rels int
} {
	return []struct {
		name string
		q    plan.Node
		rels int
	}{
		{"query2", memoQuery2(), 3},
		{"Q5", experiments.Q5(), 6},
		{"Q6", experiments.Q6(), 4},
		{"chain7", experiments.ChainQuery(7), 7},
		{"star4", experiments.StarQuery(4), 4},
	}
}

// faultRun is one guarded optimization configuration.
type faultRun struct {
	mode    optimizer.MemoMode
	workers int
	ctx     context.Context // nil means context.Background()
	limits  *guard.Limits   // nil means no budget threaded at all
}

// optimize runs q under the configuration on a fresh registry and
// returns the result, the registry's counters and the error — unlike
// optimizeWith it never fails the test itself, so callers can assert
// on the error classification.
func (fr faultRun) optimize(q plan.Node, db plan.Database) (*optimizer.Result, map[string]int64, error) {
	reg := obs.NewRegistry()
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := optimizer.New(est)
	o.Opts.UseMemo = fr.mode
	o.Opts.Workers = fr.workers
	o.Opts.Obs = reg
	o.Opts.MaxPlans = faultMaxPlans
	if fr.limits != nil {
		ctx := fr.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		o.Opts.Budget = guard.New(ctx, *fr.limits, reg)
	}
	res, err := o.Optimize(q, db)
	return res, reg.Snapshot().Counters, err
}

// firedPoints runs one clean optimization with counting hooks armed at
// every registered point and returns the points that actually fired
// for this (query, engine, workers) combination.
func firedPoints(t *testing.T, fr faultRun, q plan.Node, db plan.Database) []guard.Point {
	t.Helper()
	counts := map[guard.Point]*atomic.Int64{}
	for _, p := range guard.Points() {
		c := &atomic.Int64{}
		counts[p] = c
		guard.Inject(p, func(guard.Point) error { c.Add(1); return nil })
	}
	defer guard.Clear()
	if _, _, err := fr.optimize(q, db); err != nil {
		t.Fatalf("recording run failed: %v", err)
	}
	var fired []guard.Point
	for _, p := range guard.Points() {
		if counts[p].Load() > 0 {
			fired = append(fired, p)
		}
	}
	if len(fired) == 0 {
		t.Fatal("no guard points fired during a full optimization")
	}
	return fired
}

// TestOptimizerFaultMatrix: for every seed query, engine and worker
// count, discover which guard points the run crosses, then arm each
// one to (a) fail with a typed error and (b) panic, and assert the
// outcome is always classified: an injected error surfaces as
// guard.ErrInjected, a panic as *guard.PanicError, and a nil error
// only ever comes with a structurally valid plan.
func TestOptimizerFaultMatrix(t *testing.T) {
	defer guard.Clear()
	lim := &guard.Limits{}
	for _, tc := range faultSeeds() {
		for _, mode := range []optimizer.MemoMode{optimizer.MemoOff, optimizer.MemoAuto} {
			for _, workers := range []int{1, 4} {
				fr := faultRun{mode: mode, workers: workers, limits: lim}
				name := tc.name + "/" + modeName(mode) + "/w" + string(rune('0'+workers))
				t.Run(name, func(t *testing.T) {
					db := memoTestDB(tc.rels)
					for _, p := range firedPoints(t, fr, tc.q, db) {
						t.Run(string(p)+"/error", func(t *testing.T) {
							guard.InjectError(p)
							defer guard.Clear()
							res, _, err := fr.optimize(tc.q, db)
							assertFaultOutcome(t, res, err, db, guard.IsInjected, "injected error")
						})
						t.Run(string(p)+"/panic", func(t *testing.T) {
							guard.InjectPanic(p)
							defer guard.Clear()
							res, _, err := fr.optimize(tc.q, db)
							assertFaultOutcome(t, res, err, db, guard.IsPanic, "contained panic")
						})
					}
				})
			}
		}
	}
}

// assertFaultOutcome encodes the suite's invariant: either the run
// failed with exactly the expected typed error, or it completed with a
// plan that passes the structural invariant checker.
func assertFaultOutcome(t *testing.T, res *optimizer.Result, err error, db plan.Database, typed func(error) bool, want string) {
	t.Helper()
	if err != nil {
		if !typed(err) {
			t.Fatalf("error is not a %s: %v", want, err)
		}
		return
	}
	if res == nil || res.Best.Plan == nil {
		t.Fatal("nil error but no plan")
	}
	if verr := plan.Validate(res.Best.Plan, db); verr != nil {
		t.Fatalf("fault survived with an invalid plan: %v\n%s", verr, plan.Indent(res.Best.Plan))
	}
}

func modeName(m optimizer.MemoMode) string {
	if m == optimizer.MemoOff {
		return "saturate"
	}
	return "memo"
}

// TestOptimizerCancelledContext: a context cancelled before the run
// starts aborts both engines with guard.ErrCancelled at the first wave
// boundary, and the registry records the cancellation.
func TestOptimizerCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db := memoTestDB(6)
	for _, mode := range []optimizer.MemoMode{optimizer.MemoOff, optimizer.MemoAuto} {
		t.Run(modeName(mode), func(t *testing.T) {
			fr := faultRun{mode: mode, workers: 1, ctx: ctx, limits: &guard.Limits{}}
			_, counters, err := fr.optimize(experiments.Q5(), db)
			if !guard.IsCancelled(err) {
				t.Fatalf("err = %v, want guard.ErrCancelled", err)
			}
			if counters["guard.cancelled"] == 0 {
				t.Errorf("guard.cancelled counter not bumped: %v", counters)
			}
		})
	}
}

// TestOptimizerBudgetDegrades: a tight expression budget must not fail
// the run — it degrades to a best-effort plan that is structurally
// valid and semantically equivalent to the query, with the trip and
// the degradation visible in the counters.
func TestOptimizerBudgetDegrades(t *testing.T) {
	for _, tc := range faultSeeds() {
		for _, mode := range []optimizer.MemoMode{optimizer.MemoOff, optimizer.MemoAuto} {
			t.Run(tc.name+"/"+modeName(mode), func(t *testing.T) {
				db := memoTestDB(tc.rels)
				fr := faultRun{mode: mode, workers: 1, limits: &guard.Limits{MaxExprs: 3}}
				res, counters, err := fr.optimize(tc.q, db)
				if err != nil {
					t.Fatalf("budget trip must degrade, not fail: %v", err)
				}
				if res.Degraded == "" {
					t.Fatal("MaxExprs=3 run did not report degradation")
				}
				if counters["guard.budget_trips.exprs"] == 0 {
					t.Errorf("guard.budget_trips.exprs not bumped: %v", counters)
				}
				if counters["guard.degraded"] == 0 {
					t.Errorf("guard.degraded not bumped: %v", counters)
				}
				if verr := plan.Validate(res.Best.Plan, db); verr != nil {
					t.Fatalf("degraded plan fails validation: %v\n%s", verr, plan.Indent(res.Best.Plan))
				}
				ok, eqErr := plan.Equivalent(tc.q, res.Best.Plan, db)
				if eqErr != nil {
					t.Fatal(eqErr)
				}
				if !ok {
					t.Fatalf("degraded plan is not equivalent to the query:\n%s", plan.Indent(res.Best.Plan))
				}
			})
		}
	}
}

// TestOptimizerBudgetUntrippedDeterministic is the determinism gate:
// threading a budget that never trips must not change the outcome —
// same expression count, same winner, same cost as the unbudgeted run,
// at any worker count.
func TestOptimizerBudgetUntrippedDeterministic(t *testing.T) {
	huge := &guard.Limits{MaxExprs: 1 << 40}
	for _, tc := range faultSeeds() {
		for _, mode := range []optimizer.MemoMode{optimizer.MemoOff, optimizer.MemoAuto} {
			t.Run(tc.name+"/"+modeName(mode), func(t *testing.T) {
				db := memoTestDB(tc.rels)
				bare := faultRun{mode: mode, workers: 1}
				base, _, err := bare.optimize(tc.q, db)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					fr := faultRun{mode: mode, workers: workers, limits: huge}
					res, counters, err := fr.optimize(tc.q, db)
					if err != nil {
						t.Fatal(err)
					}
					if res.Degraded != "" {
						t.Fatalf("untripped budget degraded: %s", res.Degraded)
					}
					if counters["guard.budget_trips.exprs"] != 0 {
						t.Fatalf("untripped budget recorded a trip: %v", counters)
					}
					if res.Considered != base.Considered {
						t.Errorf("workers=%d considered %d, unbudgeted %d", workers, res.Considered, base.Considered)
					}
					if plan.Key(res.Best.Plan) != plan.Key(base.Best.Plan) || res.Best.Cost != base.Best.Cost {
						t.Errorf("workers=%d best (%s, %.4f) != unbudgeted (%s, %.4f)",
							workers, plan.Key(res.Best.Plan), res.Best.Cost,
							plan.Key(base.Best.Plan), base.Best.Cost)
					}
				}
			})
		}
	}
}
