package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/value"
)

// buildRel creates a relation with columns x, y filled from the given
// generator.
func buildRel(name string, rows int, gen func(i int) (int64, int64)) *relation.Relation {
	b := relation.NewBuilder(name, "x", "y")
	for i := 0; i < rows; i++ {
		x, y := gen(i)
		b.Row(value.NewInt(x), value.NewInt(y))
	}
	return b.Relation()
}

// query2 is (r1 →p12 r2) →(p13∧p23) r3 as in Section 1.1 / 2.
func query2() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p13 := expr.EqCols("r1", "y", "r3", "y")
	p23 := expr.EqCols("r2", "x", "r3", "x")
	return plan.NewJoin(plan.LeftJoin, expr.And(p13, p23),
		plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
}

func TestOptimizeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		db := plan.Database{}
		for _, name := range []string{"r1", "r2", "r3"} {
			db[name] = buildRel(name, 1+rng.Intn(8), func(int) (int64, int64) {
				return int64(rng.Intn(3)), int64(rng.Intn(3))
			})
		}
		est := stats.NewEstimator(stats.FromDatabase(db))
		q := query2()
		res, err := New(est).Optimize(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Cost > res.Original.Cost {
			t.Errorf("best cost %f exceeds original %f", res.Best.Cost, res.Original.Cost)
		}
		ok, err := plan.Equivalent(q, res.Best.Plan, db)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("chosen plan is not equivalent to the query:\n%s", plan.Indent(res.Best.Plan))
		}
	}
}

// TestBreakupWidensPlanSpace is experiment E9's enumeration half: the
// full rule set strictly widens the plan space of Query 2, and the
// chosen plan never costs more than the baseline's choice.
func TestBreakupWidensPlanSpace(t *testing.T) {
	db := plan.Database{
		"r1": buildRel("r1", 300, func(i int) (int64, int64) { return int64(i % 5), int64(i) }),
		"r2": buildRel("r2", 200, func(i int) (int64, int64) { return int64(i % 5), int64(i % 3) }),
		"r3": buildRel("r3", 100, func(i int) (int64, int64) { return int64(i % 4), int64(i + 500) }),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := query2()

	full, err := New(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if full.Considered <= base.Considered {
		t.Errorf("break-up should enumerate more plans: full %d, baseline %d", full.Considered, base.Considered)
	}
	if full.Best.Cost > base.Best.Cost {
		t.Errorf("break-up best (%.1f) should not exceed baseline best (%.1f)", full.Best.Cost, base.Best.Cost)
	}
	ok, err := plan.Equivalent(q, full.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("best plan not equivalent:\n%s", plan.Indent(full.Best.Plan))
	}
}

// TestPushUpBeatsBaseline is experiment E7's cost half (Example 1.1):
// when the outer side of the join is tiny (few BANKRUPT suppliers)
// and the aggregated detail relation is huge and indexed, pulling the
// aggregation above the join beats aggregating first — the paper's
// "reduction of cardinality through grouping … as a good alternative
// to the potential reduction through join", read in reverse.
func TestPushUpBeatsBaseline(t *testing.T) {
	aggCol := schema.Attr("v3", "cnt")
	buildQuery := func() plan.Node {
		gp := plan.NewGroupBy(
			[]schema.Attribute{schema.Attr("detail", "x")},
			[]algebra.Aggregate{{Func: algebra.CountStar, Out: aggCol}},
			plan.NewScan("detail"))
		pred := expr.And(
			expr.EqCols("v2", "x", "detail", "x"),
			expr.Cmp{Op: value.LT, L: expr.Column("v2", "y"),
				R: expr.Arith{Op: expr.Mul, L: expr.Int(2), R: expr.Col{Attr: aggCol}}},
		)
		return plan.NewJoin(plan.LeftJoin, pred, plan.NewScan("v2"), gp)
	}
	db := plan.Database{
		// v2: the few suppliers surviving the BANKRUPT filter.
		"v2": buildRel("v2", 8, func(i int) (int64, int64) { return int64(i * 50), int64(i) }),
		// detail: the large 95DETAIL-like relation.
		"detail": buildRel("detail", 4000, func(i int) (int64, int64) { return int64(i % 400), int64(i) }),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := buildQuery()

	full, err := New(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if full.Best.Cost >= base.Best.Cost {
		t.Errorf("push-up best (%.1f) should beat aggregate-first baseline (%.1f)",
			full.Best.Cost, base.Best.Cost)
	}
	// The winning plan joins first: its aggregation sits above the
	// join.
	joinBelowGP := false
	plan.Walk(full.Best.Plan, func(n plan.Node) {
		if gb, ok := n.(*plan.GroupBy); ok {
			if _, ok := gb.Input.(*plan.Join); ok {
				joinBelowGP = true
			}
		}
	})
	if !joinBelowGP {
		t.Errorf("winning plan should aggregate after the join:\n%s", plan.Indent(full.Best.Plan))
	}
	ok, err := plan.Equivalent(q, full.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("best plan not equivalent:\n%s", plan.Indent(full.Best.Plan))
	}
}

// TestPushUpSeeding checks that a query with an aggregation below a
// join (the Example 1.1 shape) gets pull-up variants in its plan
// space and that the chosen plan stays correct.
func TestPushUpSeeding(t *testing.T) {
	aggCol := schema.Attr("v", "agg")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: aggCol}},
		plan.NewScan("r2"))
	pred := expr.And(
		expr.EqCols("r1", "x", "r2", "x"),
		expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Col{Attr: aggCol}},
	)
	q := plan.NewJoin(plan.LeftJoin, pred, plan.NewScan("r1"), gp)

	db := plan.Database{
		"r1": buildRel("r1", 30, func(i int) (int64, int64) { return int64(i % 10), int64(i % 4) }),
		"r2": buildRel("r2", 50, func(i int) (int64, int64) { return int64(i % 10), int64(i % 6) }),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := New(est)
	// This test inspects the full ranked plan list, which only the
	// saturation path materializes (the memo keeps the class implicit).
	o.Opts.UseMemo = MemoOff
	res, err := o.Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// The plan space must include a pulled-up variant (a GroupBy
	// above the join).
	foundPulled := false
	for _, r := range res.Plans {
		if gs, ok := r.Plan.(*plan.GenSel); ok {
			if _, ok := gs.Input.(*plan.GroupBy); ok {
				foundPulled = true
				break
			}
		}
	}
	if !foundPulled {
		t.Errorf("no pulled-up aggregation variant among %d plans", len(res.Plans))
	}
	ok, err := plan.Equivalent(q, res.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("best plan not equivalent:\n%s", plan.Indent(res.Best.Plan))
	}
}

// TestBaselineRulesSubset ensures the baseline truly is a subset: its
// plan space never exceeds the full optimizer's.
func TestBaselineRulesSubset(t *testing.T) {
	db := plan.Database{
		"r1": buildRel("r1", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
		"r2": buildRel("r2", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
		"r3": buildRel("r3", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := query2()
	full, err := New(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	fullSet := map[string]bool{}
	for _, r := range full.Plans {
		fullSet[r.Plan.String()] = true
	}
	for _, r := range base.Plans {
		if !fullSet[r.Plan.String()] {
			t.Errorf("baseline plan missing from full space: %s", r.Plan)
		}
	}
}

// TestExplain smoke-tests the textual report.
func TestExplain(t *testing.T) {
	db := plan.Database{
		"r1": buildRel("r1", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
		"r2": buildRel("r2", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
		"r3": buildRel("r3", 5, func(i int) (int64, int64) { return int64(i), int64(i) }),
	}
	est := stats.NewEstimator(stats.FromDatabase(db))
	res, err := New(est).Optimize(query2(), db)
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(res)
	if s == "" || len(s) < 40 {
		t.Errorf("explain output too short: %q", s)
	}
}
