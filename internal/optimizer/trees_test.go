package optimizer

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
)

// query2LOJ is (r1 →p12 r2) →(p13∧p23) r3.
func query2LOJ() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p13 := expr.EqCols("r1", "y", "r3", "y")
	p23 := expr.EqCols("r2", "x", "r3", "x")
	return plan.NewJoin(plan.LeftJoin, expr.And(p13, p23),
		plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
}

func TestOptimizeTreesQuery2(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := query2LOJ()
	res, err := New(est).OptimizeTrees(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Query 2 has three association trees and none require dependent
	// breaking.
	if res.Considered != 3 {
		t.Errorf("considered = %d, want 3 (one plan per association tree)", res.Considered)
	}
	for _, r := range res.Plans {
		ok, err := plan.Equivalent(q, r.Plan, db)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("tree-assigned plan not equivalent:\n%s", plan.Indent(r.Plan))
		}
	}
	// The saturation optimizer must not find anything cheaper than
	// the tree enumeration's best (the tree path has one canonical
	// plan per order; saturation explores the same orders).
	sat, err := New(est).Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost > sat.Best.Cost*1.05 {
		t.Errorf("tree best %.1f much worse than saturation best %.1f", res.Best.Cost, sat.Best.Cost)
	}
}

func TestOptimizeTreesInnerJoins(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := joinChain("r1", "r2", "r3", "r4")
	res, err := New(est).OptimizeTrees(q, db)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := New(est).OptimizeDP(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Tree enumeration must match the DP's best cost on pure joins.
	if res.Best.Cost != dp.Best.Cost {
		t.Errorf("tree best %.1f != DP best %.1f\ntree:\n%s\ndp:\n%s",
			res.Best.Cost, dp.Best.Cost, plan.Indent(res.Best.Plan), plan.Indent(dp.Best.Plan))
	}
	ok, err := plan.Equivalent(q, res.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("tree best not equivalent")
	}
}
