package optimizer

import (
	"fmt"

	"repro/internal/assoctree"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/simplify"
)

// OptimizeTrees is the paper's own enumeration strategy end to end
// (Section 4, steps a and b): enumerate the association trees of the
// query hypergraph under Definition 3.2, assign operators and
// generalized-selection compensations to each with
// core.AssignOperators, cost the resulting expression trees and pick
// the cheapest. Trees that would require breaking a dependent
// predicate (the separation precondition) are skipped; they are not
// valid reorderings.
//
// Unlike Optimize (which saturates rewrite rules), this path scales
// with the number of association trees and produces exactly one
// expression tree per join order.
func (o *Optimizer) OptimizeTrees(q plan.Node, db plan.Database) (*Result, error) {
	// Operator assignment assumes a simple query (see
	// core.AssignOperators); simplification is an identity, so
	// enumerate over the simplified form.
	q = simplify.Simplify(q)
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		return nil, err
	}
	enum, err := assoctree.NewEnumerator(h, hypergraph.Broken)
	if err != nil {
		return nil, err
	}
	maxTrees := o.Opts.MaxPlans
	if maxTrees <= 0 {
		maxTrees = 20000
	}
	trees := enum.Trees(maxTrees)
	if len(trees) == 0 {
		return nil, fmt.Errorf("optimizer: no association trees for %s", q)
	}
	origCost, err := o.Est.PlanCost(q)
	if err != nil {
		return nil, err
	}
	origRows, err := o.Est.Rows(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Original: Ranked{Plan: q, Cost: origCost, Rows: origRows}}
	skipped := 0
	for _, tr := range trees {
		node, err := core.AssignOperators(h, tr)
		if err != nil {
			skipped++
			continue
		}
		cost, err := o.Est.PlanCost(node)
		if err != nil {
			return nil, err
		}
		rows, err := o.Est.Rows(node)
		if err != nil {
			return nil, err
		}
		res.Plans = append(res.Plans, Ranked{Plan: node, Cost: cost, Rows: rows})
	}
	if len(res.Plans) == 0 {
		return nil, fmt.Errorf("optimizer: all %d association trees were skipped (dependent predicates)", len(trees))
	}
	res.Considered = len(res.Plans)
	best := res.Plans[0]
	for _, r := range res.Plans[1:] {
		if r.Cost < best.Cost {
			best = r
		}
	}
	res.Best = best
	return res, nil
}
