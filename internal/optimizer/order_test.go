// End-to-end pins for the order-aware memo: a root ORDER BY over
// sorted base tables must be satisfied by a merge join with zero
// enforcer sorts, while unsorted inputs get exactly one enforcer at
// the root. Lives in the external package alongside memo_test.go.
package optimizer_test

import (
	"testing"

	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/value"
)

// orderedRel builds a relation named name with columns (k, v) whose k
// column is physically ascending with the given fan-out (duplicates
// per key).
func orderedRel(name string, keys, fanout int) *relation.Relation {
	b := relation.NewBuilder(name, "k", "v")
	for i := 0; i < keys; i++ {
		for j := 0; j < fanout; j++ {
			b.Row(value.NewInt(int64(i)), value.NewInt(int64(i*fanout+j)))
		}
	}
	return b.Relation()
}

// shuffledRel is orderedRel with the rows permuted so no prefix is
// sorted (deterministic LCG permutation).
func shuffledRel(name string, keys, fanout int) *relation.Relation {
	n := keys * fanout
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Deterministic shuffle: multiply-and-mod walk over the rows.
	for i := n - 1; i > 0; i-- {
		j := (i*7 + 3) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	b := relation.NewBuilder(name, "k", "v")
	for _, p := range perm {
		b.Row(value.NewInt(int64(p/fanout)), value.NewInt(int64(p)))
	}
	return b.Relation()
}

// orderedJoinQuery is SELECT * FROM l JOIN r ON l.k = r.k ORDER BY
// l.k — the redundant-sort shape: a merge join on k delivers the
// required order for free.
func orderedJoinQuery() plan.Node {
	j := plan.NewJoin(plan.InnerJoin, expr.EqCols("l", "k", "r", "k"),
		plan.NewScan("l"), plan.NewScan("r"))
	keys := []plan.SortKey{{Attr: schema.Attr("l", "k")}}
	return plan.NewSortOrigin(keys, -1, j, plan.SortOriginQuery)
}

func optimizeOrdered(t *testing.T, q plan.Node, db plan.Database) (*optimizer.Result, map[string]int64) {
	t.Helper()
	reg := obs.NewRegistry()
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := optimizer.New(est)
	o.Opts.UseMemo = optimizer.MemoAuto
	o.Opts.Obs = reg
	res, err := o.Optimize(q, db)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res, reg.Snapshot().Counters
}

// countSorts walks a plan counting Sort nodes by origin.
func countSorts(n plan.Node) (enforcer, query, other int) {
	plan.Walk(n, func(m plan.Node) {
		if s, ok := m.(*plan.Sort); ok {
			switch s.Origin {
			case plan.SortOriginEnforcer:
				enforcer++
			case plan.SortOriginQuery:
				query++
			default:
				other++
			}
		}
	})
	return
}

// TestOrderEliminatedBySortedMerge: with both inputs physically
// sorted on the join key, the optimizer must satisfy ORDER BY l.k
// with a merge join and no sort anywhere in the plan, and the
// executed output must match the reference evaluation and be
// physically ordered.
func TestOrderEliminatedBySortedMerge(t *testing.T) {
	db := plan.Database{
		"l": orderedRel("l", 40, 2),
		"r": orderedRel("r", 40, 3),
	}
	q := orderedJoinQuery()
	res, counters := optimizeOrdered(t, q, db)

	if res.Order == nil {
		t.Fatal("Result.Order is nil: root ORDER BY was not pushed into the memo")
	}
	if !res.Order.Eliminated() {
		t.Fatalf("order requirement not eliminated (enforced=%d):\n%s",
			res.Order.Enforced, plan.Indent(res.Best.Plan))
	}
	if !res.Order.Delivered.Satisfies(res.Order.Required) {
		t.Fatalf("delivered %s does not satisfy required %s",
			res.Order.Delivered, res.Order.Required)
	}
	enf, qry, other := countSorts(res.Best.Plan)
	if enf != 0 || qry != 0 || other != 0 {
		t.Fatalf("expected a sort-free plan, got enforcer=%d query=%d other=%d:\n%s",
			enf, qry, other, plan.Indent(res.Best.Plan))
	}
	var merges int
	plan.Walk(res.Best.Plan, func(m plan.Node) {
		if _, ok := m.(*plan.MergeJoin); ok {
			merges++
		}
	})
	if merges != 1 {
		t.Fatalf("expected exactly one merge join, got %d:\n%s", merges, plan.Indent(res.Best.Plan))
	}
	if counters["memo.order.required"] != 1 {
		t.Errorf("memo.order.required = %d, want 1", counters["memo.order.required"])
	}
	if counters["memo.order.eliminated"] != 1 || counters["memo.order.enforced"] != 0 {
		t.Errorf("order counters: eliminated=%d enforced=%d, want 1/0",
			counters["memo.order.eliminated"], counters["memo.order.enforced"])
	}
	if err := plan.Validate(res.Best.Plan, db); err != nil {
		t.Fatalf("winner fails validation: %v\n%s", err, plan.Indent(res.Best.Plan))
	}

	// Execute and pin against the reference evaluation of the query.
	got, err := executor.Run(res.Best.Plan, db)
	if err != nil {
		t.Fatalf("executing winner: %v", err)
	}
	want, err := q.Eval(db)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("winner returned %d rows, reference %d", got.Len(), want.Len())
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("winner output differs from reference as a multiset")
	}
	// The stream must actually be sorted on l.k.
	ki := got.Schema().IndexOf(schema.Attr("l", "k"))
	for i := 1; i < got.Len(); i++ {
		if plan.CompareForSort(got.Tuple(i-1)[ki], got.Tuple(i)[ki]) > 0 {
			t.Fatalf("output not sorted on l.k at row %d", i)
		}
	}
}

// TestOrderEnforcedOnUnsortedInputs: with unsorted base tables the
// requirement cannot be eliminated — the winner carries at least one
// enforcer sort (either a root enforcer over a hash join or
// sort-both-inputs feeding a merge join, whichever costs less) and
// Result.Order reports the exact count the plan carries.
func TestOrderEnforcedOnUnsortedInputs(t *testing.T) {
	db := plan.Database{
		"l": shuffledRel("l", 40, 2),
		"r": shuffledRel("r", 40, 3),
	}
	q := orderedJoinQuery()
	res, counters := optimizeOrdered(t, q, db)

	if res.Order == nil {
		t.Fatal("Result.Order is nil")
	}
	if res.Order.Eliminated() {
		t.Fatalf("requirement reported eliminated on unsorted inputs:\n%s", plan.Indent(res.Best.Plan))
	}
	enf, _, _ := countSorts(res.Best.Plan)
	if enf < 1 || res.Order.Enforced != enf {
		t.Fatalf("expected >=1 enforcer sort with an exact report, got walk=%d reported=%d:\n%s",
			enf, res.Order.Enforced, plan.Indent(res.Best.Plan))
	}
	if counters["memo.order.enforced"] != int64(enf) {
		t.Errorf("memo.order.enforced = %d, want %d (one per enforcer sort)", counters["memo.order.enforced"], enf)
	}
	if err := plan.Validate(res.Best.Plan, db); err != nil {
		t.Fatalf("winner fails validation: %v\n%s", err, plan.Indent(res.Best.Plan))
	}
	got, err := executor.Run(res.Best.Plan, db)
	if err != nil {
		t.Fatalf("executing winner: %v", err)
	}
	want, err := q.Eval(db)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("winner output differs from reference as a multiset")
	}
}

// TestOrderEnforcerAtRootForThetaJoin: a non-equi join has no merge
// implementation, so the only way to meet the requirement is a single
// enforcer sort over the join — pinning exact enforcer placement.
func TestOrderEnforcerAtRootForThetaJoin(t *testing.T) {
	db := plan.Database{
		"l": shuffledRel("l", 10, 2),
		"r": shuffledRel("r", 10, 2),
	}
	pred := expr.Cmp{Op: value.LT, L: expr.Column("l", "k"), R: expr.Column("r", "k")}
	j := plan.NewJoin(plan.InnerJoin, pred, plan.NewScan("l"), plan.NewScan("r"))
	keys := []plan.SortKey{{Attr: schema.Attr("l", "k")}}
	q := plan.NewSortOrigin(keys, -1, j, plan.SortOriginQuery)
	res, _ := optimizeOrdered(t, q, db)

	if res.Order == nil || res.Order.Eliminated() {
		t.Fatalf("theta join cannot deliver order for free: %+v", res.Order)
	}
	enf, _, _ := countSorts(res.Best.Plan)
	if enf != 1 || res.Order.Enforced != 1 {
		t.Fatalf("expected exactly one enforcer sort, got walk=%d reported=%d:\n%s",
			enf, res.Order.Enforced, plan.Indent(res.Best.Plan))
	}
	root, ok := res.Best.Plan.(*plan.Sort)
	if !ok || root.Origin != plan.SortOriginEnforcer {
		t.Fatalf("enforcer must sit at the root, got %T:\n%s", res.Best.Plan, plan.Indent(res.Best.Plan))
	}
	got, err := executor.Run(res.Best.Plan, db)
	if err != nil {
		t.Fatalf("executing winner: %v", err)
	}
	want, err := q.Eval(db)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatal("winner output differs from reference as a multiset")
	}
}

// TestOrderTopKKeepsRootSort: ORDER BY ... LIMIT k is not stripped
// into a required property — the top-K sort stays at the root and the
// plan below optimizes order-free.
func TestOrderTopKKeepsRootSort(t *testing.T) {
	db := plan.Database{
		"l": orderedRel("l", 40, 2),
		"r": orderedRel("r", 40, 3),
	}
	j := plan.NewJoin(plan.InnerJoin, expr.EqCols("l", "k", "r", "k"),
		plan.NewScan("l"), plan.NewScan("r"))
	keys := []plan.SortKey{{Attr: schema.Attr("l", "k")}}
	q := plan.NewSortOrigin(keys, 5, j, plan.SortOriginQuery)
	res, counters := optimizeOrdered(t, q, db)

	if res.Order != nil {
		t.Fatalf("top-K query should not set Result.Order, got %+v", res.Order)
	}
	if counters["memo.order.required"] != 0 {
		t.Errorf("memo.order.required = %d, want 0", counters["memo.order.required"])
	}
	root, ok := res.Best.Plan.(*plan.Sort)
	if !ok {
		t.Fatalf("top-K winner root is %T, want *plan.Sort:\n%s", res.Best.Plan, plan.Indent(res.Best.Plan))
	}
	if root.Limit != 5 {
		t.Fatalf("root sort limit = %d, want 5", root.Limit)
	}
	got, err := executor.Run(res.Best.Plan, db)
	if err != nil {
		t.Fatalf("executing winner: %v", err)
	}
	if got.Len() != 5 {
		t.Fatalf("top-K returned %d rows, want 5", got.Len())
	}
}

// TestOrderFreeQueriesUnchanged: queries without a root ORDER BY must
// be untouched by the order machinery — no contexts, no Order info,
// identical best cost to the legacy path (covered in depth by
// TestMemoMatchesSaturate; this pins the counters stay silent).
func TestOrderFreeQueriesUnchanged(t *testing.T) {
	db := memoTestDB(3)
	res, counters := optimizeOrdered(t, memoQuery2(), db)
	if res.Order != nil {
		t.Fatalf("order-free query set Result.Order: %+v", res.Order)
	}
	for _, c := range []string{"memo.order.required", "memo.order.contexts", "memo.order.enforced", "memo.order.eliminated"} {
		if counters[c] != 0 {
			t.Errorf("%s = %d, want 0 on an order-free query", c, counters[c])
		}
	}
}
