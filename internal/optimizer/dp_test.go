package optimizer

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
)

// joinChain builds r1 ⋈ r2 ⋈ … as a left-deep inner-join tree.
func joinChain(rels ...string) plan.Node {
	var node plan.Node = plan.NewScan(rels[0])
	for i := 1; i < len(rels); i++ {
		p := expr.EqCols(rels[i-1], "x", rels[i], "x")
		node = plan.NewJoin(plan.InnerJoin, p, node, plan.NewScan(rels[i]))
	}
	return node
}

func dpDB() plan.Database {
	db := plan.Database{}
	sizes := map[string]int{"r1": 200, "r2": 10, "r3": 400, "r4": 30}
	for name, n := range sizes {
		db[name] = buildRel(name, n, func(i int) (int64, int64) {
			return int64(i % 20), int64(i % 7)
		})
	}
	return db
}

// TestDPMatchesSaturationBest cross-validates the two enumeration
// strategies: on pure join queries the DP's best cost must equal the
// cheapest plan in the saturated equivalence class.
func TestDPMatchesSaturationBest(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	for _, rels := range [][]string{
		{"r1", "r2", "r3"},
		{"r1", "r2", "r3", "r4"},
	} {
		q := joinChain(rels...)
		opt := New(est)
		dp, err := opt.OptimizeDP(q, db)
		if err != nil {
			t.Fatal(err)
		}
		sat, err := opt.Optimize(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Best.Cost != sat.Best.Cost {
			t.Errorf("%v: DP best %.1f != saturation best %.1f\nDP:\n%s\nSAT:\n%s",
				rels, dp.Best.Cost, sat.Best.Cost,
				plan.Indent(dp.Best.Plan), plan.Indent(sat.Best.Plan))
		}
	}
}

// TestDPCorrectness checks the DP's plan evaluates to the original
// query's result.
func TestDPCorrectness(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := joinChain("r1", "r2", "r3", "r4")
	dp, err := New(est).OptimizeDP(q, db)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := plan.Equivalent(q, dp.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("DP plan differs:\n%s", plan.Indent(dp.Best.Plan))
	}
	if dp.Best.Cost > dp.Original.Cost {
		t.Error("DP must not regress")
	}
}

// TestDPComplexConjunctPlacement checks that a conjunct referencing
// three relations is applied only once all three are joined.
func TestDPComplexConjunctPlacement(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	complexPred := expr.And(
		expr.EqCols("r1", "x", "r2", "x"),
		expr.EqCols("r1", "y", "r3", "y"),
		expr.EqCols("r2", "y", "r3", "y"),
	)
	q := plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "y", "r3", "y"),
		plan.NewJoin(plan.InnerJoin, complexPred,
			plan.NewScan("r1"),
			plan.NewJoin(plan.InnerJoin, expr.EqCols("r2", "x", "r3", "x"),
				plan.NewScan("r2"), plan.NewScan("r3"))),
		plan.NewScan("r4"))
	_ = q
	// Simpler: a three-relation query whose top edge carries a
	// complex predicate.
	q2 := plan.NewJoin(plan.InnerJoin,
		expr.And(expr.EqCols("r1", "x", "r3", "x"), expr.EqCols("r2", "y", "r3", "y")),
		plan.NewJoin(plan.InnerJoin, expr.EqCols("r1", "x", "r2", "x"),
			plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	dp, err := New(est).OptimizeDP(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := plan.Equivalent(q2, dp.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("complex conjunct misplaced:\n%s", plan.Indent(dp.Best.Plan))
	}
}

// TestDPRejectsOuterJoins pins the inner-join-only contract.
func TestDPRejectsOuterJoins(t *testing.T) {
	db := dpDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	q := plan.NewJoin(plan.LeftJoin, expr.EqCols("r1", "x", "r2", "x"),
		plan.NewScan("r1"), plan.NewScan("r2"))
	if _, err := New(est).OptimizeDP(q, db); err == nil {
		t.Error("outer joins must be rejected")
	}
}

// TestDPGuardBoundary pins the widened subset-mask capacity: the old
// uint32 masks capped the DP at 30 relations, so counts just past
// that boundary must now be accepted, up to the uint64 limit of 62.
func TestDPGuardBoundary(t *testing.T) {
	for _, n := range []int{1, 30, 31, 32, 62} {
		if err := dpGuard(n); err != nil {
			t.Errorf("dpGuard(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{63, 64, 100} {
		if err := dpGuard(n); err == nil {
			t.Errorf("dpGuard(%d) accepted a relation set the mask cannot encode", n)
		}
	}
}
