package optimizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simplify"
)

// optimizeMemo is the memo-based enumeration path (Options.UseMemo):
// the query and its simplified variant seed a group table, a fixpoint
// exploration saturates the groups under the rule set, and the best
// plan is extracted bottom-up with branch-and-bound pruning instead
// of costing every materialized member of the class.
//
// The Result contract is preserved with memo semantics: Considered
// counts admitted expressions (matched by the
// optimizer.plans_enumerated counter), RuleFirings credits the rule
// that admitted each expression, Best carries the derivation chain
// reconstructed from the memo's provenance records, and Plans holds
// the winner only.
func (o *Optimizer) optimizeMemo(q plan.Node, rules []core.Rule, maxPlans int, reg *obs.Registry, phase func(string) func(), phases *[]PhaseTiming) (*Result, error) {
	reg.Counter("optimizer.memo_runs").Inc()
	// A root ORDER BY (a Sort without LIMIT) is not a logical operator
	// to enumerate around — it is a physical property requirement on
	// the root group. Strip it and carry it into extraction, which may
	// satisfy it with a merge join's delivered order (eliminating the
	// sort entirely), re-inject it as an enforcer, or anything between.
	// Top-K sorts keep their node: the limit is part of the output, not
	// a property.
	var required plan.Order
	inner := q
	if s, ok := q.(*plan.Sort); ok && s.Limit < 0 && len(s.Keys) > 0 {
		required = plan.Order(s.Keys)
		inner = s.Input
		reg.Counter("memo.order.required").Inc()
	}
	type seed struct {
		node   plan.Node
		prefix []string
	}
	seeds := []seed{{node: inner}}
	endSimplify := phase("simplify")
	if s := simplify.Simplify(inner); s.String() != inner.String() {
		seeds = append(seeds, seed{node: s, prefix: []string{"simplify-outer-joins"}})
		reg.Counter("optimizer.simplified_seeds").Inc()
	}
	endSimplify()

	endExplore := phase("explore")
	m, err := memo.New(memo.Options{
		Rules:    rules,
		MaxExprs: maxPlans,
		Workers:  o.Opts.Workers,
		Obs:      reg,
		Budget:   o.Opts.Budget,
	})
	if err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	// Seeds may collapse into one group (simplification can be a
	// no-op modulo rewrites already discovered); keep the distinct
	// roots with the first seed's prefix winning ties.
	var roots []memo.GroupID
	var prefixes [][]string
	rootSeen := make(map[memo.GroupID]bool)
	for _, sd := range seeds {
		gid := m.Add(sd.node)
		if !rootSeen[gid] {
			rootSeen[gid] = true
			roots = append(roots, gid)
			prefixes = append(prefixes, sd.prefix)
		}
	}
	if err := m.Explore(); err != nil {
		return nil, err
	}
	endExplore()
	reg.Counter("optimizer.plans_enumerated").Add(int64(m.Exprs()))
	reg.Gauge("optimizer.last_considered").Set(int64(m.Exprs()))
	degraded := ""
	if m.CappedReason() == memo.CappedBudget {
		degraded = memo.CappedBudget
		reg.Counter("guard.degraded").Inc()
	}

	endCost := phase("cost")
	sess := o.Est.NewSession(reg)
	sess.SetBudget(o.Opts.Budget)
	sess.SetFeedback(o.Opts.Feedback)
	// Extraction over a budget-capped memo still yields the cheapest
	// plan among everything admitted (seeds are never charged, so a
	// materializable plan always exists): degradation returns the
	// best-so-far rather than an error.
	best, err := m.ExtractOrdered(roots, sess, required)
	if err != nil {
		return nil, fmt.Errorf("optimizer: extracting %s: %w", q, err)
	}
	bestPlan, bestCost := best.Plan, best.Cost
	derivation := append(append([]string(nil), prefixes[best.Root]...), m.Derivation(best.Group)...)
	if degraded != "" {
		// A truncated memo may hold only expensive orders; offer the
		// greedy left-deep fallback (wrapped in an enforcer sort when
		// the root requires an order) and keep whichever is cheaper.
		if hp, ok := heuristicLeftDeep(inner, sess); ok {
			if len(required) > 0 {
				hp = plan.NewSortOrigin(append([]plan.SortKey(nil), required...), -1, hp, plan.SortOriginEnforcer)
			}
			if hc, herr := sess.PlanCost(hp); herr == nil && hc < bestCost {
				bestPlan, bestCost = hp, hc
				derivation = []string{HeuristicRule}
			}
		}
	}
	bestRows, err := sess.Rows(bestPlan)
	if err != nil {
		return nil, err
	}
	origCost, err := sess.PlanCost(q)
	if err != nil {
		return nil, fmt.Errorf("optimizer: costing %s: %w", q, err)
	}
	origRows, err := sess.Rows(q)
	if err != nil {
		return nil, err
	}
	endCost()
	reg.Counter("optimizer.plans_costed").Inc()

	bestRanked := Ranked{Plan: bestPlan, Cost: bestCost, Rows: bestRows, Derivation: derivation}
	res := &Result{
		Best:                bestRanked,
		Original:            Ranked{Plan: q, Cost: origCost, Rows: origRows},
		Considered:          m.Exprs(),
		Plans:               []Ranked{bestRanked},
		RuleFirings:         m.RuleFirings(),
		Phases:              *phases,
		Degraded:            degraded,
		FeedbackCorrections: int(sess.FeedbackHits()),
	}
	if len(required) > 0 {
		enforced := 0
		plan.Walk(bestPlan, func(n plan.Node) {
			if s, ok := n.(*plan.Sort); ok && s.Origin == plan.SortOriginEnforcer {
				enforced++
			}
		})
		res.Order = &OrderInfo{
			Required:  required,
			Delivered: plan.DeliveredOrder(bestPlan, sess.ScanOrder),
			Enforced:  enforced,
		}
		reg.Counter("memo.order.enforced").Add(int64(enforced))
		if enforced == 0 {
			reg.Counter("memo.order.eliminated").Inc()
		}
	}
	return res, nil
}
