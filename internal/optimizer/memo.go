package optimizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simplify"
)

// optimizeMemo is the memo-based enumeration path (Options.UseMemo):
// the query and its simplified variant seed a group table, a fixpoint
// exploration saturates the groups under the rule set, and the best
// plan is extracted bottom-up with branch-and-bound pruning instead
// of costing every materialized member of the class.
//
// The Result contract is preserved with memo semantics: Considered
// counts admitted expressions (matched by the
// optimizer.plans_enumerated counter), RuleFirings credits the rule
// that admitted each expression, Best carries the derivation chain
// reconstructed from the memo's provenance records, and Plans holds
// the winner only.
func (o *Optimizer) optimizeMemo(q plan.Node, rules []core.Rule, maxPlans int, reg *obs.Registry, phase func(string) func(), phases *[]PhaseTiming) (*Result, error) {
	reg.Counter("optimizer.memo_runs").Inc()
	type seed struct {
		node   plan.Node
		prefix []string
	}
	seeds := []seed{{node: q}}
	endSimplify := phase("simplify")
	if s := simplify.Simplify(q); s.String() != q.String() {
		seeds = append(seeds, seed{node: s, prefix: []string{"simplify-outer-joins"}})
		reg.Counter("optimizer.simplified_seeds").Inc()
	}
	endSimplify()

	endExplore := phase("explore")
	m, err := memo.New(memo.Options{
		Rules:    rules,
		MaxExprs: maxPlans,
		Workers:  o.Opts.Workers,
		Obs:      reg,
	})
	if err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	// Seeds may collapse into one group (simplification can be a
	// no-op modulo rewrites already discovered); keep the distinct
	// roots with the first seed's prefix winning ties.
	var roots []memo.GroupID
	var prefixes [][]string
	rootSeen := make(map[memo.GroupID]bool)
	for _, sd := range seeds {
		gid := m.Add(sd.node)
		if !rootSeen[gid] {
			rootSeen[gid] = true
			roots = append(roots, gid)
			prefixes = append(prefixes, sd.prefix)
		}
	}
	m.Explore()
	endExplore()
	reg.Counter("optimizer.plans_enumerated").Add(int64(m.Exprs()))
	reg.Gauge("optimizer.last_considered").Set(int64(m.Exprs()))

	endCost := phase("cost")
	sess := o.Est.NewSession(reg)
	best, err := m.Extract(roots, sess)
	if err != nil {
		return nil, fmt.Errorf("optimizer: extracting %s: %w", q, err)
	}
	bestRows, err := sess.Rows(best.Plan)
	if err != nil {
		return nil, err
	}
	origCost, err := sess.PlanCost(q)
	if err != nil {
		return nil, fmt.Errorf("optimizer: costing %s: %w", q, err)
	}
	origRows, err := sess.Rows(q)
	if err != nil {
		return nil, err
	}
	endCost()
	reg.Counter("optimizer.plans_costed").Inc()

	derivation := append(append([]string(nil), prefixes[best.Root]...), m.Derivation(best.Group)...)
	bestRanked := Ranked{Plan: best.Plan, Cost: best.Cost, Rows: bestRows, Derivation: derivation}
	res := &Result{
		Best:        bestRanked,
		Original:    Ranked{Plan: q, Cost: origCost, Rows: origRows},
		Considered:  m.Exprs(),
		Plans:       []Ranked{bestRanked},
		RuleFirings: m.RuleFirings(),
		Phases:      *phases,
	}
	return res, nil
}
