// The memo property suite lives in the external test package because
// it drives the seed queries of internal/experiments, which itself
// imports the optimizer.
package optimizer_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/value"
)

// memoBuildRel creates a relation with columns x, y filled from the
// given generator (the external-package twin of buildRel).
func memoBuildRel(name string, rows int, gen func(i int) (int64, int64)) *relation.Relation {
	b := relation.NewBuilder(name, "x", "y")
	for i := 0; i < rows; i++ {
		x, y := gen(i)
		b.Row(value.NewInt(x), value.NewInt(y))
	}
	return b.Relation()
}

// memoQuery2 is (r1 →p12 r2) →(p13∧p23) r3 as in Section 1.1 / 2.
func memoQuery2() plan.Node {
	p12 := expr.EqCols("r1", "x", "r2", "x")
	p13 := expr.EqCols("r1", "y", "r3", "y")
	p23 := expr.EqCols("r2", "x", "r3", "x")
	return plan.NewJoin(plan.LeftJoin, expr.And(p13, p23),
		plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
}

// memoTestDB builds r1..rn with varied sizes and skew, small enough
// that plan.Equivalent can evaluate outer-join closures directly.
func memoTestDB(n int) plan.Database {
	db := plan.Database{}
	for i := 1; i <= n; i++ {
		name := "r" + string(rune('0'+i))
		rows := 3 + (i*5)%7
		mod := 2 + i%3
		db[name] = memoBuildRel(name, rows, func(j int) (int64, int64) {
			return int64(j % mod), int64((j + i) % 3)
		})
	}
	return db
}

// pushUpQuery is the Example 1.1 shape: an aggregation below an outer
// join whose predicate references the aggregate column.
func pushUpQuery() plan.Node {
	aggCol := schema.Attr("v", "agg")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: aggCol}},
		plan.NewScan("r2"))
	pred := expr.And(
		expr.EqCols("r1", "x", "r2", "x"),
		expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"), R: expr.Col{Attr: aggCol}},
	)
	return plan.NewJoin(plan.LeftJoin, pred, plan.NewScan("r1"), gp)
}

// memoSeeds are the property suite's queries: the paper's Section 3
// examples, an outer-join chain, an inner-join star, the Section 1.1
// outer-join query and the aggregation push-up shape.
func memoSeeds() []struct {
	name string
	q    plan.Node
	rels int
} {
	return []struct {
		name string
		q    plan.Node
		rels int
	}{
		{"query2", memoQuery2(), 3},
		{"Q5", experiments.Q5(), 6},
		{"Q6", experiments.Q6(), 4},
		{"chain4", experiments.ChainQuery(4), 4},
		{"chain5", experiments.ChainQuery(5), 5},
		{"star4", experiments.StarQuery(4), 4},
		{"pushup", pushUpQuery(), 2},
	}
}

// optimizeWith runs one optimization with the given engine mode and
// worker count on a fresh registry, returning the result and the
// registry snapshot.
func optimizeWith(t *testing.T, q plan.Node, db plan.Database, mode optimizer.MemoMode, workers int) (*optimizer.Result, map[string]int64) {
	t.Helper()
	reg := obs.NewRegistry()
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := optimizer.New(est)
	o.Opts.UseMemo = mode
	o.Opts.Workers = workers
	o.Opts.Obs = reg
	res, err := o.Optimize(q, db)
	if err != nil {
		t.Fatalf("optimize (mode=%d workers=%d): %v", mode, workers, err)
	}
	return res, reg.Snapshot().Counters
}

// TestMemoMatchesSaturate is the correctness pin for the memo engine:
// for every seed query, extraction from the memo returns the same
// best cost as the exhaustive saturate-and-cost-everything path, and
// the same best plan (modulo cost ties, where the memo's winner must
// be one of the saturation plans sharing the minimal cost). Run under
// -race by make race-par.
func TestMemoMatchesSaturate(t *testing.T) {
	for _, tc := range memoSeeds() {
		t.Run(tc.name, func(t *testing.T) {
			db := memoTestDB(tc.rels)
			sat, _ := optimizeWith(t, tc.q, db, optimizer.MemoOff, 1)
			mem, counters := optimizeWith(t, tc.q, db, optimizer.MemoAuto, 1)
			if counters["optimizer.memo_runs"] != 1 {
				t.Fatalf("memo engine did not run (counters %v)", counters)
			}
			if mem.Best.Cost != sat.Best.Cost {
				t.Fatalf("memo best cost %.6f != saturate best cost %.6f\nmemo: %s\nsat:  %s",
					mem.Best.Cost, sat.Best.Cost, mem.Best.Plan, sat.Best.Plan)
			}
			if plan.Key(mem.Best.Plan) != plan.Key(sat.Best.Plan) {
				// Cost tie: the memo may surface a different minimal
				// plan, but it must be one saturation also found at
				// exactly the best cost.
				tied := map[string]bool{}
				for _, r := range sat.Plans {
					if r.Cost == sat.Best.Cost {
						tied[plan.Key(r.Plan)] = true
					}
				}
				if !tied[plan.Key(mem.Best.Plan)] {
					t.Fatalf("memo best is not among saturation's minimal-cost plans:\n%s", plan.Indent(mem.Best.Plan))
				}
			}
			if mem.Original.Cost != sat.Original.Cost {
				t.Errorf("original cost differs: memo %.6f, saturate %.6f", mem.Original.Cost, sat.Original.Cost)
			}
			if verr := plan.Validate(mem.Best.Plan, db); verr != nil {
				t.Fatalf("memo best plan fails validation: %v\n%s", verr, plan.Indent(mem.Best.Plan))
			}
			ok, err := plan.Equivalent(tc.q, mem.Best.Plan, db)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("memo best plan is not equivalent to the query:\n%s", plan.Indent(mem.Best.Plan))
			}
			if len(mem.RuleFirings) == 0 {
				t.Error("memo path reported no rule firings")
			}
			if counters["optimizer.plans_enumerated"] != int64(mem.Considered) {
				t.Errorf("plans_enumerated %d != Considered %d", counters["optimizer.plans_enumerated"], mem.Considered)
			}
		})
	}
}

// TestMemoWorkersDeterministic: parallel memo exploration produces
// the identical memo — same expression count, same winner, same cost,
// same rule firings — for any worker count.
func TestMemoWorkersDeterministic(t *testing.T) {
	for _, tc := range memoSeeds() {
		t.Run(tc.name, func(t *testing.T) {
			db := memoTestDB(tc.rels)
			serial, _ := optimizeWith(t, tc.q, db, optimizer.MemoAuto, 1)
			for _, w := range []int{2, 4, -1} {
				par, _ := optimizeWith(t, tc.q, db, optimizer.MemoAuto, w)
				if par.Considered != serial.Considered {
					t.Fatalf("workers=%d considered %d exprs, serial %d", w, par.Considered, serial.Considered)
				}
				if plan.Key(par.Best.Plan) != plan.Key(serial.Best.Plan) || par.Best.Cost != serial.Best.Cost {
					t.Fatalf("workers=%d best (%s, %.4f) != serial (%s, %.4f)",
						w, plan.Key(par.Best.Plan), par.Best.Cost, plan.Key(serial.Best.Plan), serial.Best.Cost)
				}
				for r, n := range serial.RuleFirings {
					if par.RuleFirings[r] != n {
						t.Fatalf("workers=%d firing count for %s: %d vs serial %d", w, r, par.RuleFirings[r], n)
					}
				}
			}
		})
	}
}

// TestMemoPrunes: branch-and-bound extraction must actually prune on
// a workload with a non-trivial group structure.
func TestMemoPrunes(t *testing.T) {
	db := memoTestDB(6)
	_, counters := optimizeWith(t, experiments.Q5(), db, optimizer.MemoAuto, 1)
	if counters["memo.pruned"] == 0 {
		t.Error("extraction reported no branch-and-bound prunes on Q5")
	}
	if counters["memo.groups"] == 0 || counters["memo.exprs"] == 0 {
		t.Errorf("memo counters missing: %v", counters)
	}
	if counters["memo.extract_ns"] == 0 {
		t.Error("memo.extract_ns not reported")
	}
}

// TestMemoDerivationReplays: the derivation chain the memo attaches
// to the winner is non-trivial whenever the winner differs from the
// query, and every named rule exists in the rule set.
func TestMemoDerivationReplays(t *testing.T) {
	db := memoTestDB(6)
	q := experiments.Q5()
	res, _ := optimizeWith(t, q, db, optimizer.MemoAuto, 1)
	if plan.Key(res.Best.Plan) != plan.Key(q) && len(res.Best.Derivation) == 0 {
		t.Fatal("winner differs from the query but has an empty derivation chain")
	}
	known := map[string]bool{"simplify-outer-joins": true, "push-up-aggregation": true}
	for _, r := range coreDefaultRuleNames() {
		known[r] = true
	}
	for _, step := range res.Best.Derivation {
		if !known[step] {
			t.Errorf("derivation step %q is not a known rule", step)
		}
	}
}

func coreDefaultRuleNames() []string {
	return []string{"commute", "assoc-inner", "assoc-left", "join-loj", "assoc-full",
		"select-pushdown", "select-merge", "mgoj-intro", "split"}
}
