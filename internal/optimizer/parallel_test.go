package optimizer

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stats"
)

// parTestDB gives query2's relations enough skew that the closure has
// a clear, unique cost minimum.
func parTestDB() plan.Database {
	return plan.Database{
		"r1": buildRel("r1", 240, func(i int) (int64, int64) { return int64(i % 6), int64(i) }),
		"r2": buildRel("r2", 160, func(i int) (int64, int64) { return int64(i % 6), int64(i % 4) }),
		"r3": buildRel("r3", 90, func(i int) (int64, int64) { return int64(i % 5), int64(i % 4) }),
	}
}

// TestOptimizeWorkersDeterministic: a parallel optimization run is
// observationally identical to the serial run — same plan set in the
// same ranked order, same costs, same best plan, same rule firings.
func TestOptimizeWorkersDeterministic(t *testing.T) {
	db := parTestDB()
	q := query2()
	run := func(workers int) *Result {
		est := stats.NewEstimator(stats.FromDatabase(db))
		o := New(est)
		o.Opts.Workers = workers
		o.Opts.Obs = obs.NewRegistry()
		res, err := o.Optimize(q, db)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 4, -1} {
		par := run(w)
		if par.Considered != serial.Considered {
			t.Fatalf("workers=%d considered %d plans, serial %d", w, par.Considered, serial.Considered)
		}
		if plan.Key(par.Best.Plan) != plan.Key(serial.Best.Plan) || par.Best.Cost != serial.Best.Cost {
			t.Fatalf("workers=%d best (%s, %.4f) != serial (%s, %.4f)",
				w, plan.Key(par.Best.Plan), par.Best.Cost, plan.Key(serial.Best.Plan), serial.Best.Cost)
		}
		for i := range serial.Plans {
			sp, pp := serial.Plans[i], par.Plans[i]
			if plan.Key(sp.Plan) != plan.Key(pp.Plan) || sp.Cost != pp.Cost || sp.Rows != pp.Rows {
				t.Fatalf("workers=%d ranked[%d] differs: (%s, %.4f) vs serial (%s, %.4f)",
					w, i, plan.Key(pp.Plan), pp.Cost, plan.Key(sp.Plan), sp.Cost)
			}
		}
		if len(par.RuleFirings) != len(serial.RuleFirings) {
			t.Fatalf("workers=%d rule firings differ: %v vs %v", w, par.RuleFirings, serial.RuleFirings)
		}
		for r, n := range serial.RuleFirings {
			if par.RuleFirings[r] != n {
				t.Fatalf("workers=%d firing count for %s: %d vs serial %d", w, r, par.RuleFirings[r], n)
			}
		}
	}
}

// TestOptimizeCostMemoCounters: the cost phase routes through the
// shared-subtree session, so a closure with thousands of overlapping
// plans must report memo hits.
func TestOptimizeCostMemoCounters(t *testing.T) {
	db := parTestDB()
	reg := obs.NewRegistry()
	est := stats.NewEstimator(stats.FromDatabase(db))
	o := New(est)
	o.Opts.Obs = reg
	if _, err := o.Optimize(query2(), db); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot().Counters
	if snap["stats.memo.cost_hits"] == 0 {
		t.Error("optimizer cost phase should hit the subtree cost memo")
	}
	if snap["stats.memo.rows_hits"] == 0 {
		t.Error("optimizer cost phase should hit the subtree rows memo")
	}
}
