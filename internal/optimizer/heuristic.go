package optimizer

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/stats"
)

// HeuristicRule names the derivation step tagged on plans produced by
// the left-deep fallback, so EXPLAIN output shows how a degraded
// winner was obtained.
const HeuristicRule = "heuristic-left-deep"

// heuristicLeftDeep builds a greedy left-deep join order for q:
// smallest base relation first, then repeatedly the connected
// relation minimizing the estimated rows of the next join, with every
// join conjunct placed at the first step both its sides are available
// (the same placement freedom the DP uses). It is the degradation
// fallback when the enumeration budget trips before saturation or the
// memo finishes — Selinger's greedy escape hatch rather than a search.
//
// The query may carry a spine of unary operators (Project, GroupBy,
// Select, …) above a pure inner-join core; the spine is re-applied
// over the reordered core. Queries outside that shape (outer joins in
// the core, repeated relations, disconnected graphs) return ok=false
// and degradation falls back to the best plan enumerated so far.
func heuristicLeftDeep(q plan.Node, sess *stats.Session) (plan.Node, bool) {
	// Peel the unary spine down to the join core.
	var spine []plan.Node
	core := q
	for {
		ch := core.Children()
		if len(ch) != 1 {
			break
		}
		spine = append(spine, core)
		core = ch[0]
	}
	if _, ok := core.(*plan.Join); !ok {
		return nil, false
	}
	h, err := hypergraph.FromPlan(core)
	if err != nil {
		return nil, false
	}
	for _, e := range h.Edges {
		if e.Kind != hypergraph.Undirected {
			return nil, false
		}
	}
	n := len(h.Nodes)
	if n < 2 || n > dpMaskLimit {
		return nil, false
	}
	names := append([]string(nil), h.Nodes...)
	sort.Strings(names)
	index := make(map[string]int, n)
	for i, name := range names {
		index[name] = i
	}
	type conjunct struct {
		pred expr.Pred
		mask uint64
		used bool
	}
	var conjuncts []conjunct
	for _, e := range h.Edges {
		for _, c := range expr.Conjuncts(e.Pred) {
			var m uint64
			for _, rel := range expr.Rels(c) {
				i, ok := index[rel]
				if !ok {
					return nil, false
				}
				m |= 1 << uint(i)
			}
			conjuncts = append(conjuncts, conjunct{pred: c, mask: m})
		}
	}

	scanRows := make([]float64, n)
	for i, name := range names {
		r, err := sess.Rows(plan.NewScan(name))
		if err != nil {
			return nil, false
		}
		scanRows[i] = r
	}
	// Seed: the smallest relation (ties break on the sorted name
	// order, so the choice is deterministic).
	start := 0
	for i := 1; i < n; i++ {
		if scanRows[i] < scanRows[start] {
			start = i
		}
	}
	cur := plan.Node(plan.NewScan(names[start]))
	set := uint64(1) << uint(start)

	for step := 1; step < n; step++ {
		bestIdx := -1
		var bestJoin plan.Node
		bestRows := 0.0
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if set&bit != 0 {
				continue
			}
			nset := set | bit
			var preds []expr.Pred
			for _, c := range conjuncts {
				if !c.used && c.mask&^nset == 0 && c.mask&set != 0 && c.mask&bit != 0 {
					preds = append(preds, c.pred)
				}
			}
			if len(preds) == 0 {
				continue // not connected to the current prefix yet
			}
			join := plan.NewJoin(plan.InnerJoin, expr.And(preds...), cur, plan.NewScan(names[i]))
			rows, err := sess.Rows(join)
			if err != nil {
				return nil, false
			}
			if bestIdx < 0 || rows < bestRows {
				bestIdx, bestJoin, bestRows = i, join, rows
			}
		}
		if bestIdx < 0 {
			return nil, false // disconnected join graph
		}
		bit := uint64(1) << uint(bestIdx)
		set |= bit
		for ci := range conjuncts {
			c := &conjuncts[ci]
			if !c.used && c.mask&^set == 0 && c.mask&^bit != 0 && c.mask&bit != 0 {
				c.used = true
			}
		}
		cur = bestJoin
	}
	// Every conjunct must have been placed; a dropped one would change
	// the result, not just the cost. (Single-relation conjuncts inside
	// a join predicate are never placeable by the touches-both-sides
	// rule, so such queries decline the heuristic entirely.)
	for _, c := range conjuncts {
		if !c.used {
			return nil, false
		}
	}
	// Re-apply the unary spine innermost-last.
	for i := len(spine) - 1; i >= 0; i-- {
		cur = spine[i].WithChildren([]plan.Node{cur})
	}
	return cur, true
}
