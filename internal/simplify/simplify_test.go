package simplify

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func eqX(a, b string) expr.Pred { return expr.EqCols(a, "x", b, "x") }
func eqY(a, b string) expr.Pred { return expr.EqCols(a, "y", b, "y") }

func randDB(rng *rand.Rand, maxRows int, rels ...string) plan.Database {
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		b := relation.NewBuilder(name, "x", "y")
		n := rng.Intn(maxRows + 1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 2)
			for j := range vals {
				if rng.Intn(6) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(3)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	return db
}

// TestSelectOverNullSupplier: σ with a predicate on the
// null-supplying side turns the outer join into an inner join.
func TestSelectOverNullSupplier(t *testing.T) {
	loj := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	q := plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r2", "y"), R: expr.Int(1)}, loj)
	out := Simplify(q)
	j := out.(*plan.Select).Input.(*plan.Join)
	if j.Kind != plan.InnerJoin {
		t.Errorf("LOJ should simplify to inner join, got %v", j.Kind)
	}
	// A predicate on the preserved side must NOT simplify.
	q2 := plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r1", "y"), R: expr.Int(1)}, loj)
	if Simplify(q2).(*plan.Select).Input.(*plan.Join).Kind != plan.LeftJoin {
		t.Error("predicate on the preserved side must not simplify")
	}
}

// TestFullOuterDowngrades covers the three FOJ downgrade cases.
func TestFullOuterDowngrades(t *testing.T) {
	foj := plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	cases := []struct {
		pred expr.Pred
		want plan.JoinKind
	}{
		{expr.Cmp{Op: value.GE, L: expr.Column("r2", "y"), R: expr.Int(0)}, plan.RightJoin},
		{expr.Cmp{Op: value.GE, L: expr.Column("r1", "y"), R: expr.Int(0)}, plan.LeftJoin},
		{expr.And(
			expr.Cmp{Op: value.GE, L: expr.Column("r1", "y"), R: expr.Int(0)},
			expr.Cmp{Op: value.GE, L: expr.Column("r2", "y"), R: expr.Int(0)},
		), plan.InnerJoin},
	}
	for _, c := range cases {
		out := Simplify(plan.NewSelect(c.pred, foj))
		got := out.(*plan.Select).Input.(*plan.Join).Kind
		if got != c.want {
			t.Errorf("σ[%s](FOJ) simplified to %v, want %v", c.pred, got, c.want)
		}
	}
}

// TestInnerJoinAboveSimplifies: an inner join whose predicate
// references the null-supplying side of a LOJ below it rejects the
// padded rows.
func TestInnerJoinAboveSimplifies(t *testing.T) {
	loj := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	q := plan.NewJoin(plan.InnerJoin, eqY("r2", "r3"), loj, plan.NewScan("r3"))
	out := Simplify(q).(*plan.Join)
	if out.L.(*plan.Join).Kind != plan.InnerJoin {
		t.Errorf("LOJ below a filtering inner join should simplify:\n%s", plan.Indent(out))
	}
	// If the upper join references only the preserved side, no
	// simplification.
	q2 := plan.NewJoin(plan.InnerJoin, eqY("r1", "r3"), loj, plan.NewScan("r3"))
	if Simplify(q2).(*plan.Join).L.(*plan.Join).Kind != plan.LeftJoin {
		t.Error("preserved-side reference must not simplify the LOJ")
	}
}

// TestLOJAboveDoesNotReject: a left outer join above does NOT reject
// its own left side's nulls (padded rows survive).
func TestLOJAboveDoesNotReject(t *testing.T) {
	inner := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	q := plan.NewJoin(plan.LeftJoin, eqY("r2", "r3"), inner, plan.NewScan("r3"))
	out := Simplify(q).(*plan.Join)
	if out.L.(*plan.Join).Kind != plan.LeftJoin {
		t.Error("a LOJ above must not reject its left input's padded rows")
	}
}

// TestGroupByKeyRejection: rejection survives grouping only through
// the keys.
func TestGroupByKeyRejection(t *testing.T) {
	loj := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "y")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("q", "c")}},
		loj)
	// HAVING on the key that comes from the null-supplying side.
	q := plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r2", "y"), R: expr.Int(0)}, gp)
	out := Simplify(q)
	j := out.(*plan.Select).Input.(*plan.GroupBy).Input.(*plan.Join)
	if j.Kind != plan.InnerJoin {
		t.Errorf("rejection should pass through the group key, got %v", j.Kind)
	}
	// HAVING on the aggregate output must not reject anything below.
	q2 := plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Col{Attr: schema.Attr("q", "c")}, R: expr.Int(0)}, gp)
	j2 := Simplify(q2).(*plan.Select).Input.(*plan.GroupBy).Input.(*plan.Join)
	if j2.Kind != plan.LeftJoin {
		t.Error("aggregate-output predicates must not simplify below the grouping")
	}
}

// TestGenSelBlocksRejection: σ* preserves rejected rows, so rejection
// must not pass through it.
func TestGenSelBlocksRejection(t *testing.T) {
	loj := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	gs := plan.NewGenSel(eqY("r1", "r2"), []plan.PreservedSpec{plan.NewPreserved("r1")}, loj)
	q := plan.NewSelect(expr.Cmp{Op: value.GE, L: expr.Column("r2", "y"), R: expr.Int(0)}, gs)
	out := Simplify(q)
	j := out.(*plan.Select).Input.(*plan.GenSel).Input.(*plan.Join)
	// The outer Select's rejection of r2 nulls cannot cross the GS
	// (whose preserved rows are padded on r2), so the LOJ must stay.
	// Note the GS's own predicate also must not reject.
	if j.Kind != plan.LeftJoin {
		t.Errorf("rejection crossed a generalized selection, got %v", j.Kind)
	}
}

// TestSimplifyEquivalence is the soundness property: simplified plans
// evaluate identically on randomized databases.
func TestSimplifyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	geY := func(rel string) expr.Pred {
		return expr.Cmp{Op: value.GE, L: expr.Column(rel, "y"), R: expr.Int(0)}
	}
	queries := []plan.Node{
		plan.NewSelect(geY("r2"),
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewSelect(geY("r1"),
			plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))),
		plan.NewJoin(plan.InnerJoin, eqY("r2", "r3"),
			plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
			plan.NewScan("r3")),
		plan.NewSelect(geY("r3"),
			plan.NewJoin(plan.LeftJoin, eqY("r2", "r3"),
				plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
				plan.NewScan("r3"))),
	}
	for qi, q := range queries {
		s := Simplify(q)
		// All the listed queries admit at least one downgrade.
		if s.String() == q.String() {
			t.Errorf("query %d: no simplification happened:\n%s", qi, plan.Indent(s))
		}
		if CountOuterJoins(s) > CountOuterJoins(q) {
			t.Errorf("query %d: simplification added outer joins", qi)
		}
		for trial := 0; trial < 40; trial++ {
			db := randDB(rng, 6, "r1", "r2", "r3")
			ok, err := plan.Equivalent(q, s, db)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("query %d trial %d: simplification changed semantics\noriginal:\n%s\nsimplified:\n%s",
					qi, trial, plan.Indent(q), plan.Indent(s))
			}
		}
	}
}

// TestSimplifySharing: untouched plans come back pointer-identical.
func TestSimplifySharing(t *testing.T) {
	q := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	if Simplify(q) != plan.Node(q) {
		t.Error("a plan with nothing to simplify must be returned unchanged")
	}
}
