// Package simplify implements outer join simplification ([BHAR95c],
// also [GALI92a]): the preprocessing the paper assumes has already
// happened ("we assume queries have been simplified … so that they do
// not contain any redundant (full) outer join edges; that is, we
// assume queries are simple").
//
// The mechanism is null rejection. A NULL-padded row produced by an
// outer join dies at any ancestor whose null-intolerant predicate
// references a padded attribute; an outer join whose padded rows all
// die can be downgraded — full outer join to one-sided, one-sided to
// inner join — which both shrinks intermediate results and unlocks
// the larger reordering space of inner joins.
package simplify

import (
	"repro/internal/plan"
	"repro/internal/schema"
)

// Simplify rewrites n by downgrading outer joins whose NULL-padded
// rows are rejected upstream. The result is equivalent to n (verified
// by the package tests on randomized databases) and never has more
// outer joins than the input.
func Simplify(n plan.Node) plan.Node {
	return walk(n, nil)
}

// attrSet is an attribute-level null-rejection set: a row carrying
// NULL in any member attribute cannot reach the query result.
type attrSet map[schema.Attribute]bool

func (s attrSet) add(attrs []schema.Attribute) attrSet {
	if len(attrs) == 0 {
		return s
	}
	out := make(attrSet, len(s)+len(attrs))
	for a := range s {
		out[a] = true
	}
	for _, a := range attrs {
		out[a] = true
	}
	return out
}

// touchesRels reports whether any rejected attribute belongs to a
// relation in rels — i.e. whether rows padded on those relations are
// rejected.
func (s attrSet) touchesRels(rels map[string]bool) bool {
	for a := range s {
		if rels[a.Rel] {
			return true
		}
	}
	return false
}

// restrict keeps only the attributes of relations in rels.
func (s attrSet) restrict(rels map[string]bool) attrSet {
	out := make(attrSet)
	for a := range s {
		if rels[a.Rel] {
			out[a] = true
		}
	}
	return out
}

func walk(n plan.Node, reject attrSet) plan.Node {
	switch m := n.(type) {
	case *plan.Scan:
		return m
	case *plan.Select:
		// The selection's null-intolerant predicate rejects NULLs in
		// every attribute it references.
		childReject := reject.add(m.Pred.Attrs(nil))
		in := walk(m.Input, childReject)
		if in == m.Input {
			return m
		}
		return plan.NewSelect(m.Pred, in)
	case *plan.Join:
		lRels, rRels := plan.BaseRelSet(m.L), plan.BaseRelSet(m.R)
		kind := m.Kind
		// Downgrade the operator when padded rows die upstream.
		switch kind {
		case plan.LeftJoin:
			if reject.touchesRels(rRels) {
				kind = plan.InnerJoin
			}
		case plan.RightJoin:
			if reject.touchesRels(lRels) {
				kind = plan.InnerJoin
			}
		case plan.FullJoin:
			rejL := reject.touchesRels(lRels)
			rejR := reject.touchesRels(rRels)
			switch {
			case rejL && rejR:
				kind = plan.InnerJoin
			case rejR:
				// Rows padded on the right (preserving unmatched left
				// tuples) die, leaving the right outer join.
				kind = plan.RightJoin
			case rejL:
				kind = plan.LeftJoin
			}
		}
		// Propagate rejection into the children. The join predicate
		// itself rejects NULLs only on sides whose rows must match to
		// appear in the output.
		predAttrs := m.Pred.Attrs(nil)
		lReject := reject.restrict(lRels)
		rReject := reject.restrict(rRels)
		switch kind {
		case plan.InnerJoin:
			lReject = lReject.add(filterAttrs(predAttrs, lRels))
			rReject = rReject.add(filterAttrs(predAttrs, rRels))
		case plan.LeftJoin:
			rReject = rReject.add(filterAttrs(predAttrs, rRels))
		case plan.RightJoin:
			lReject = lReject.add(filterAttrs(predAttrs, lRels))
		}
		l := walk(m.L, lReject)
		r := walk(m.R, rReject)
		if kind == m.Kind && l == m.L && r == m.R {
			return m
		}
		return plan.NewJoin(kind, m.Pred, l, r)
	case *plan.GenSel:
		// A generalized selection deliberately preserves rows its
		// predicate rejects, so upstream rejection only survives on
		// the attributes every preserved spec retains. Be
		// conservative: propagate nothing.
		in := walk(m.Input, nil)
		if in == m.Input {
			return m
		}
		return plan.NewGenSel(m.Pred, m.Preserved, in)
	case *plan.MGOJNode:
		l := walk(m.L, nil)
		r := walk(m.R, nil)
		if l == m.L && r == m.R {
			return m
		}
		return plan.NewMGOJ(m.Pred, m.Preserved, l, r)
	case *plan.GroupBy:
		// A rejected group key rejects every row of its group.
		in := walk(m.Input, reject.intersectAttrs(m.Keys))
		if in == m.Input {
			return m
		}
		return plan.NewGroupBy(m.Keys, m.Aggs, in)
	case *plan.Project:
		in := walk(m.Input, reject.intersectAttrs(m.Attrs))
		if in == m.Input {
			return m
		}
		return plan.NewProject(m.Attrs, m.Distinct, in)
	default:
		return n
	}
}

// intersectAttrs keeps only rejected attributes that survive a
// projection/grouping onto attrs.
func (s attrSet) intersectAttrs(attrs []schema.Attribute) attrSet {
	keep := make(map[schema.Attribute]bool, len(attrs))
	for _, a := range attrs {
		keep[a] = true
	}
	out := make(attrSet)
	for a := range s {
		if keep[a] {
			out[a] = true
		}
	}
	return out
}

func filterAttrs(attrs []schema.Attribute, rels map[string]bool) []schema.Attribute {
	var out []schema.Attribute
	for _, a := range attrs {
		if rels[a.Rel] {
			out = append(out, a)
		}
	}
	return out
}

// CountOuterJoins counts one-sided and full outer joins in a plan,
// the metric simplification reduces.
func CountOuterJoins(n plan.Node) int {
	count := 0
	plan.Walk(n, func(m plan.Node) {
		if j, ok := m.(*plan.Join); ok && j.Kind != plan.InnerJoin {
			count++
		}
	})
	return count
}
