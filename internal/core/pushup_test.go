package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestExample31PushUp reproduces Example 3.1 (experiment E12): the
// expression
//
//	π_{r1.x r2.x, c=count(r1)}(r1 →p12 r2) →(p13∧p23) r3
//
// where p13 references the generated column c, is rewritten to
//
//	σ*_{p13}[r1r2](π_{…+r3attrs, c=count(r1)}((r1 →p12 r2) →p23 r3))
//
// and both evaluate identically on randomized databases.
func TestExample31PushUp(t *testing.T) {
	cCol := schema.Attr("v", "c")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r2", "x")},
		[]algebra.Aggregate{algebra.CountRel("r1", cCol)},
		plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
	)
	p13 := expr.Cmp{Op: value.GE, L: expr.Column("r3", "y"), R: expr.Col{Attr: cCol}}
	p23 := eqX("r2", "r3")
	q := plan.NewJoin(plan.LeftJoin, expr.And(p13, p23), gp, plan.NewScan("r3"))

	rng := rand.New(rand.NewSource(31))
	db := randDB(rng, 5, 3, "r1", "r2", "r3")
	rewritten, err := PushUpGroupBy(q, db)
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := rewritten.(*plan.GenSel)
	if !ok {
		t.Fatalf("expected generalized selection at the root, got %s", rewritten)
	}
	// The paper writes the preserved relation as r1r2; the generated
	// column c (qualified "v" here) is part of that derived relation
	// and rides along in the spec.
	if len(gs.Preserved) != 1 || gs.Preserved[0].String() != "r1r2v" {
		t.Errorf("preserved = %v, want [r1r2v] (Example 3.1's r1r2 plus its count column)", gs.Preserved)
	}
	if _, ok := gs.Input.(*plan.GroupBy); !ok {
		t.Errorf("the generalized projection should now be at the top of the join tree:\n%s", plan.Indent(rewritten))
	}
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, 5, 3, "r1", "r2", "r3")
		mustEquivalent(t, q, rewritten, db, "Example 3.1 push-up")
	}
}

// TestPushUpNullSupplying is the Example 1.1 shape: the aggregation
// sits on the null-supplying side of the outer join and the join
// predicate references the aggregated column (QTY < 2*95AGGQTY). The
// pulled-up plan must reproduce the outer join's NULLs, not zero
// counts (count-bug compensation).
func TestPushUpNullSupplying(t *testing.T) {
	aggCol := schema.Attr("v3", "agg")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: aggCol}},
		plan.NewScan("r2"),
	)
	pKey := eqX("r1", "r2")
	pAgg := expr.Cmp{Op: value.LT, L: expr.Column("r1", "y"),
		R: expr.Arith{Op: expr.Mul, L: expr.Int(2), R: expr.Col{Attr: aggCol}}}
	q := plan.NewJoin(plan.LeftJoin, expr.And(pKey, pAgg), plan.NewScan("r1"), gp)

	rng := rand.New(rand.NewSource(11))
	db := randDB(rng, 5, 3, "r1", "r2")
	rewritten, err := PushUpGroupBy(q, db)
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := rewritten.(*plan.GenSel)
	if !ok {
		t.Fatalf("expected generalized selection at the root, got %s", rewritten)
	}
	if len(gs.Preserved) != 1 || gs.Preserved[0].String() != "r1" {
		t.Errorf("preserved = %v, want [r1] (the outer join's preserved side)", gs.Preserved)
	}
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, 6, 3, "r1", "r2")
		mustEquivalent(t, q, rewritten, db, "null-supplying push-up")
	}
}

// TestPushUpInnerJoin checks the inner-join variant: deferred
// predicates become a plain selection.
func TestPushUpInnerJoin(t *testing.T) {
	aggCol := schema.Attr("v", "c")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: aggCol}},
		plan.NewScan("r2"),
	)
	pKey := eqX("r1", "r2")
	pAgg := expr.Cmp{Op: value.NE, L: expr.Column("r1", "y"), R: expr.Col{Attr: aggCol}}
	q := plan.NewJoin(plan.InnerJoin, expr.And(pKey, pAgg), plan.NewScan("r1"), gp)

	rng := rand.New(rand.NewSource(13))
	db := randDB(rng, 5, 3, "r1", "r2")
	rewritten, err := PushUpGroupBy(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rewritten.(*plan.Select); !ok {
		t.Fatalf("expected a plain selection at the root for the inner-join case, got %s", rewritten)
	}
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, 6, 3, "r1", "r2")
		mustEquivalent(t, q, rewritten, db, "inner-join push-up")
	}
}

// TestPushUpRejects pins the precondition checks.
func TestPushUpRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := randDB(rng, 3, 3, "r1", "r2")
	// No GP operand.
	j := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	if _, err := PushUpGroupBy(j, db); err == nil {
		t.Error("expected error without a generalized projection operand")
	}
	// Join predicate referencing a non-grouping column of the GP side.
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.CountStar, Out: schema.Attr("v", "c")}},
		plan.NewScan("r2"),
	)
	bad := plan.NewJoin(plan.InnerJoin,
		expr.Cmp{Op: value.EQ, L: expr.Column("r1", "x"), R: expr.Column("r2", "y")},
		plan.NewScan("r1"), gp)
	if _, err := PushUpGroupBy(bad, db); err == nil {
		t.Error("expected error for predicate over a non-grouping column")
	}
	// Full outer join unsupported.
	foj := plan.NewJoin(plan.FullJoin, eqX("r1", "r2"), plan.NewScan("r1"), gp)
	if _, err := PushUpGroupBy(foj, db); err == nil {
		t.Error("expected error for full outer join push-up")
	}
}

// TestPushUpRule wraps PushUpGroupBy as a saturation rule.
func TestPushUpRule(t *testing.T) {
	aggCol := schema.Attr("v", "c")
	gp := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r2", "x")},
		[]algebra.Aggregate{{Func: algebra.Count, Arg: expr.Column("r2", "y"), Out: aggCol}},
		plan.NewScan("r2"))
	q := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), gp)
	rng := rand.New(rand.NewSource(91))
	db := randDB(rng, 5, 3, "r1", "r2")
	rule := PushUpRule(db)
	alts := rule.Apply(q)
	if len(alts) != 1 {
		t.Fatalf("rule produced %d alternatives, want 1", len(alts))
	}
	mustEquivalent(t, q, alts[0], db, "push-up rule")
	// Non-join nodes and ineligible joins produce nothing.
	if got := rule.Apply(plan.NewScan("r1")); got != nil {
		t.Error("rule must ignore scans")
	}
	plain := plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	if got := rule.Apply(plain); got != nil {
		t.Error("rule must ignore joins without a GP operand")
	}
}

// TestNonNullableRID pins the preserved-spine analysis used by
// count(*) conversion.
func TestNonNullableRID(t *testing.T) {
	p := eqX("r1", "r2")
	cases := []struct {
		node plan.Node
		rel  string
		ok   bool
	}{
		{plan.NewScan("r1"), "r1", true},
		{plan.NewJoin(plan.InnerJoin, p, plan.NewScan("r1"), plan.NewScan("r2")), "r1", true},
		{plan.NewJoin(plan.LeftJoin, p, plan.NewScan("r1"), plan.NewScan("r2")), "r1", true},
		{plan.NewJoin(plan.RightJoin, p, plan.NewScan("r1"), plan.NewScan("r2")), "r2", true},
		{plan.NewSelect(p, plan.NewJoin(plan.LeftJoin, p, plan.NewScan("r1"), plan.NewScan("r2"))), "r1", true},
		{plan.NewJoin(plan.FullJoin, p, plan.NewScan("r1"), plan.NewScan("r2")), "", false},
	}
	for _, c := range cases {
		rid, ok := nonNullableRID(c.node)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.node, ok, c.ok)
			continue
		}
		if ok && rid.Rel != c.rel {
			t.Errorf("%s: rid rel = %s, want %s", c.node, rid.Rel, c.rel)
		}
	}
}
