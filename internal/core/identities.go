package core

import (
	"repro/internal/expr"
	"repro/internal/plan"
)

// This file states the eight association identities of Section 3.1
// explicitly, each as a pair of plan constructors (LHS, RHS). They
// are special cases of the Theorem 1 compensation implemented in
// theorem1.go; the package tests check both that the two sides
// evaluate identically on randomized databases and that
// DeferConjuncts derives the RHS from the LHS.
//
// Throughout, p1 is the conjunct being broken off and p2 the
// conjunct that stays with the operator; rels(n) abbreviates the base
// relations under node n.

func preservedOf(n plan.Node) plan.PreservedSpec {
	return plan.NewPreserved(plan.BaseRels(n)...)
}

// Identity1 is (1): r1 →(p1∧p2) r2 = σ*_p1[r1](r1 →p2 r2).
func Identity1(r1, r2 plan.Node, p1, p2 expr.Pred) (lhs, rhs plan.Node) {
	lhs = plan.NewJoin(plan.LeftJoin, expr.And(p1, p2), r1, r2)
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1)},
		plan.NewJoin(plan.LeftJoin, p2, r1, r2))
	return
}

// Identity2 is (2): r1 ↔(p1∧p2) r2 = σ*_p1[r1,r2](r1 ↔p2 r2).
func Identity2(r1, r2 plan.Node, p1, p2 expr.Pred) (lhs, rhs plan.Node) {
	lhs = plan.NewJoin(plan.FullJoin, expr.And(p1, p2), r1, r2)
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1), preservedOf(r2)},
		plan.NewJoin(plan.FullJoin, p2, r1, r2))
	return
}

// Identity3 is (3): (r1 ⊙p12 r2) →(p13∧p23) r3 =
// σ*_p13[r1r2]((r1 ⊙p12 r2) →p23 r3), for ⊙ any of ⋈, →, ←, ↔.
func Identity3(kind plan.JoinKind, r1, r2, r3 plan.Node, p12, p13, p23 expr.Pred) (lhs, rhs plan.Node) {
	left := plan.NewJoin(kind, p12, r1, r2)
	lhs = plan.NewJoin(plan.LeftJoin, expr.And(p13, p23), left, r3)
	rhs = plan.NewGenSel(p13, []plan.PreservedSpec{preservedOf(left)},
		plan.NewJoin(plan.LeftJoin, p23, left, r3))
	return
}

// Identity4 is (4): (r1 ⊙p12 r2) ↔(p13∧p23) r3 =
// σ*_p13[r1r2, r3]((r1 ⊙p12 r2) ↔p23 r3).
func Identity4(kind plan.JoinKind, r1, r2, r3 plan.Node, p12, p13, p23 expr.Pred) (lhs, rhs plan.Node) {
	left := plan.NewJoin(kind, p12, r1, r2)
	lhs = plan.NewJoin(plan.FullJoin, expr.And(p13, p23), left, r3)
	rhs = plan.NewGenSel(p13, []plan.PreservedSpec{preservedOf(left), preservedOf(r3)},
		plan.NewJoin(plan.FullJoin, p23, left, r3))
	return
}

// Identity5 is (5): r1 →p12 (r2 ⋈(p1∧p2) r3) =
// σ*_p1[r1](r1 →p12 (r2 ⋈p2 r3)).
func Identity5(r1, r2, r3 plan.Node, p12, p1, p2 expr.Pred) (lhs, rhs plan.Node) {
	lhs = plan.NewJoin(plan.LeftJoin, p12, r1,
		plan.NewJoin(plan.InnerJoin, expr.And(p1, p2), r2, r3))
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1)},
		plan.NewJoin(plan.LeftJoin, p12, r1,
			plan.NewJoin(plan.InnerJoin, p2, r2, r3)))
	return
}

// Identity6 is (6): r1 ↔p12 (r2 ⋈(p1∧p2) r3) =
// σ*_p1[r1](r1 ↔p12 (r2 ⋈p2 r3)).
//
// The paper prints the preserved list as [r1, r2r3]; the combined
// r2r3 spec would re-preserve inner-join tuples that fail p1, which
// the left-hand side discards, so the correct list (confirmed by the
// randomized equivalence tests and by the conflict-set derivation of
// Theorem 1 with pres away-from semantics) is [r1] alone.
func Identity6(r1, r2, r3 plan.Node, p12, p1, p2 expr.Pred) (lhs, rhs plan.Node) {
	lhs = plan.NewJoin(plan.FullJoin, p12, r1,
		plan.NewJoin(plan.InnerJoin, expr.And(p1, p2), r2, r3))
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1)},
		plan.NewJoin(plan.FullJoin, p12, r1,
			plan.NewJoin(plan.InnerJoin, p2, r2, r3)))
	return
}

// Identity7 is (7): r1 ↔p12 (r2 ←(p1∧p2) r3) =
// σ*_p1[r1, r3](r1 ↔p12 (r2 ←p2 r3)).
func Identity7(r1, r2, r3 plan.Node, p12, p1, p2 expr.Pred) (lhs, rhs plan.Node) {
	lhs = plan.NewJoin(plan.FullJoin, p12, r1,
		plan.NewJoin(plan.RightJoin, expr.And(p1, p2), r2, r3))
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1), preservedOf(r3)},
		plan.NewJoin(plan.FullJoin, p12, r1,
			plan.NewJoin(plan.RightJoin, p2, r2, r3)))
	return
}

// Identity8 is (8): r1 ↔p12 ((r2 ⋈(p1∧p2) r3) ←p24 r4) =
// σ*_p1[r1, r4](r1 ↔p12 ((r2 ⋈p2 r3) ←p24 r4)).
func Identity8(r1, r2, r3, r4 plan.Node, p12, p1, p2, p24 expr.Pred) (lhs, rhs plan.Node) {
	inner := func(p expr.Pred) plan.Node {
		return plan.NewJoin(plan.RightJoin, p24,
			plan.NewJoin(plan.InnerJoin, p, r2, r3), r4)
	}
	lhs = plan.NewJoin(plan.FullJoin, p12, r1, inner(expr.And(p1, p2)))
	rhs = plan.NewGenSel(p1, []plan.PreservedSpec{preservedOf(r1), preservedOf(r4)},
		plan.NewJoin(plan.FullJoin, p12, r1, inner(p2)))
	return
}
