package core

import (
	"fmt"
	"sort"

	"repro/internal/assoctree"
	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// AssignOperators implements Section 4's steps (a) and (b): given the
// query hypergraph and one of its association trees (Definition 3.2),
// build an equivalent expression tree by
//
//	a) assigning operators to the tree's internal nodes — inner joins,
//	   one-sided outer joins, or MGOJ with a partial preservation list
//	   when only part of an outer join's preserved region has arrived
//	   (the paper's Q4' construction), and
//	b) re-applying the conjuncts that could not ride their edge's
//	   operator (broken-up pieces of complex predicates) with
//	   compensating generalized selections at the root, with preserved
//	   lists per Theorem 1.
//
// Every conjunct of every edge is placed exactly once: either at its
// edge's materialization node (the lowest tree node where any of the
// edge's conjuncts can be evaluated) or behind a top-level σ*. The
// dependent-predicate separation precondition applies to deferred
// conjuncts just as in DeferConjuncts.
func AssignOperators(h *hypergraph.Hypergraph, t *assoctree.Tree) (plan.Node, error) {
	a := &assigner{h: h}
	if err := a.prepare(t); err != nil {
		return nil, err
	}
	node, _, err := a.build(t)
	if err != nil {
		return nil, err
	}
	// Step (b): compensate deferred conjuncts, outermost first in
	// edge order (independent predicates sit closer to the root in
	// the original expression, matching the Q6 procedure).
	sort.SliceStable(a.deferred, func(i, j int) bool {
		return a.deferred[i].edge.ID > a.deferred[j].edge.ID
	})
	for _, d := range a.deferred {
		if err := a.checkSeparation(d.edge); err != nil {
			return nil, err
		}
		specs := CompensationSpecs(h, d.edge)
		if len(specs) == 0 {
			node = plan.NewSelect(d.pred, node)
		} else {
			node = plan.NewGenSel(d.pred, specs, node)
		}
	}
	return node, nil
}

// conjunctInfo tracks one conjunct of one hyperedge through the
// assignment.
type conjunctInfo struct {
	pred expr.Pred
	edge *hypergraph.Hyperedge
	rels map[string]bool
	// node is the lowest tree node (by id) where the conjunct can be
	// evaluated with both sides touched.
	node int
}

type deferredConjunct struct {
	pred expr.Pred
	edge *hypergraph.Hyperedge
}

type assigner struct {
	h         *hypergraph.Hypergraph
	conjuncts []*conjunctInfo
	// matNode maps edge id to its materialization tree-node id.
	matNode  map[int]int
	nextID   int
	deferred []deferredConjunct
	scopes   map[int]map[string]bool
}

// prepare computes, for every conjunct, the tree node where it first
// becomes evaluable, and for every edge its materialization node.
func (a *assigner) prepare(t *assoctree.Tree) error {
	for _, e := range a.h.Edges {
		for _, c := range expr.Conjuncts(e.Pred) {
			a.conjuncts = append(a.conjuncts, &conjunctInfo{
				pred: c,
				edge: e,
				rels: expr.RelSet(c),
				node: -1,
			})
		}
	}
	// Walk the tree assigning node ids (post-order) and locating each
	// conjunct's application node.
	a.matNode = make(map[int]int)
	var walk func(t *assoctree.Tree) (map[string]bool, int, error)
	walk = func(t *assoctree.Tree) (map[string]bool, int, error) {
		if t.IsLeaf() {
			id := a.nextID
			a.nextID++
			return map[string]bool{t.Leaf: true}, id, nil
		}
		lRels, _, err := walk(t.L)
		if err != nil {
			return nil, 0, err
		}
		rRels, _, err := walk(t.R)
		if err != nil {
			return nil, 0, err
		}
		id := a.nextID
		a.nextID++
		all := union(lRels, rRels)
		for _, c := range a.conjuncts {
			if c.node >= 0 {
				continue
			}
			if subset(c.rels, all) && intersectsSet(c.rels, lRels) && intersectsSet(c.rels, rRels) {
				c.node = id
				if _, ok := a.matNode[c.edge.ID]; !ok {
					a.matNode[c.edge.ID] = id
				}
			}
		}
		return all, id, nil
	}
	rels, _, err := walk(t)
	if err != nil {
		return err
	}
	if len(rels) != len(a.h.Nodes) {
		return fmt.Errorf("core: tree covers %d of %d relations", len(rels), len(a.h.Nodes))
	}
	for _, c := range a.conjuncts {
		if c.node < 0 {
			return fmt.Errorf("core: conjunct %s never becomes evaluable in tree %s", c.pred, t)
		}
	}
	return nil
}

// build constructs the expression tree bottom-up (step a).
func (a *assigner) build(t *assoctree.Tree) (plan.Node, int, error) {
	a.nextID = 0
	var rec func(t *assoctree.Tree) (plan.Node, map[string]bool, int, error)
	rec = func(t *assoctree.Tree) (plan.Node, map[string]bool, int, error) {
		if t.IsLeaf() {
			id := a.nextID
			a.nextID++
			return plan.NewScan(t.Leaf), map[string]bool{t.Leaf: true}, id, nil
		}
		lNode, lRels, _, err := rec(t.L)
		if err != nil {
			return nil, nil, 0, err
		}
		rNode, rRels, _, err := rec(t.R)
		if err != nil {
			return nil, nil, 0, err
		}
		id := a.nextID
		a.nextID++

		// Partition this node's conjuncts into riders (their edge
		// materializes here) and deferrals (pieces of edges
		// materialized deeper).
		var riders []expr.Pred
		var riderEdges []*hypergraph.Hyperedge
		for _, c := range a.conjuncts {
			if c.node != id {
				continue
			}
			if a.matNode[c.edge.ID] == id {
				riders = append(riders, c.pred)
				riderEdges = append(riderEdges, c.edge)
			} else {
				a.deferred = append(a.deferred, deferredConjunct{pred: c.pred, edge: c.edge})
			}
		}

		// Preservation obligations: see preservedOn.
		lSpec := a.preservedOn(lRels, rRels, riderEdges)
		rSpec := a.preservedOn(rRels, lRels, riderEdges)
		pred := expr.And(riders...)

		node, err := combine(pred, lNode, rNode, lRels, rRels, lSpec, rSpec)
		if err != nil {
			return nil, nil, 0, err
		}
		return node, union(lRels, rRels), id, nil
	}
	node, _, id, err := rec(t)
	return node, id, err
}

// preservedOn computes the set of relations on `side` that must be
// preserved when combining against `other` under the node's rider
// predicates.
//
// An outer join edge e guarantees, in the original query, that
// partial rows over its preserved region survive the failure of any
// predicate those rows never meet. At this tree node, the candidate
// S = presRegion(e) ∩ side is endangered — and must be preserved —
// exactly when
//
//   - some rider belongs to e itself (e's own operator semantics:
//     its preserved side pads instead of dropping), or
//   - some rider belongs to another edge whose original operand
//     scope does not cover S: in the original that predicate never
//     filters S-data, but at this node S-data rides along and an
//     unpreserved combination would lose it (the paper's Q4' MGOJ
//     situation).
//
// With no riders the node performs a cross product, drops nothing,
// and owes nothing.
func (a *assigner) preservedOn(side, other map[string]bool, riderEdges []*hypergraph.Hyperedge) map[string]bool {
	if len(riderEdges) == 0 {
		return nil
	}
	out := make(map[string]bool)
	consider := func(e *hypergraph.Hyperedge, presSide, nullSide map[string]bool) {
		s := intersect(presSide, side)
		if len(s) == 0 || !intersectsSet(nullSide, other) {
			return
		}
		// e's own rider: its operator preserves the whole candidate
		// (the edge's join semantics pad rather than drop).
		for _, re := range riderEdges {
			if re == e {
				for r := range s {
					out[r] = true
				}
				return
			}
		}
		// Other riders legitimately drop the sub-data their original
		// operand scope covered; only the remainder is endangered and
		// must be preserved (partially — the MGOJ case).
		endangered := make(map[string]bool, len(s))
		for r := range s {
			endangered[r] = true
		}
		for _, re := range riderEdges {
			sc := a.scope(re)
			for r := range s {
				if sc[r] {
					delete(endangered, r)
				}
			}
		}
		for r := range endangered {
			out[r] = true
		}
	}
	for _, e := range a.h.Edges {
		switch e.Kind {
		case hypergraph.Directed:
			consider(e, a.h.Region(e.From, e), a.h.Region(e.To, e))
		case hypergraph.BiDirected:
			s1 := a.h.Region(e.From, e)
			s2 := a.h.Region(e.To, e)
			consider(e, s1, s2)
			consider(e, s2, s1)
		}
	}
	return out
}

// scope returns the relations beneath e's operator in the original
// query — the rows its predicate filtered there.
func (a *assigner) scope(e *hypergraph.Hyperedge) map[string]bool {
	if e.Origin == nil {
		// Hand-built hypergraph: fall back to the edge's own nodes.
		return nodeSetOf(e.Nodes())
	}
	if a.scopes == nil {
		a.scopes = make(map[int]map[string]bool)
	}
	if s, ok := a.scopes[e.ID]; ok {
		return s
	}
	s := plan.BaseRelSet(e.Origin)
	a.scopes[e.ID] = s
	return s
}

func nodeSetOf(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// combine builds the operator for one tree node from its preservation
// obligations: plain join (none), left/right outer join (one side
// fully preserved), full outer join (both sides fully preserved), or
// MGOJ with partial preservation lists otherwise.
func combine(pred expr.Pred, l, r plan.Node, lRels, rRels, lSpec, rSpec map[string]bool) (plan.Node, error) {
	fullL := len(lSpec) > 0 && len(lSpec) == len(lRels)
	fullR := len(rSpec) > 0 && len(rSpec) == len(rRels)
	switch {
	case len(lSpec) == 0 && len(rSpec) == 0:
		return plan.NewJoin(plan.InnerJoin, pred, l, r), nil
	case fullL && len(rSpec) == 0:
		return plan.NewJoin(plan.LeftJoin, pred, l, r), nil
	case len(lSpec) == 0 && fullR:
		return plan.NewJoin(plan.RightJoin, pred, l, r), nil
	case fullL && fullR:
		return plan.NewJoin(plan.FullJoin, pred, l, r), nil
	default:
		var specs []plan.PreservedSpec
		if len(lSpec) > 0 {
			specs = append(specs, plan.NewPreserved(keysOf(lSpec)...))
		}
		if len(rSpec) > 0 {
			specs = append(specs, plan.NewPreserved(keysOf(rSpec)...))
		}
		return plan.NewMGOJ(pred, specs, l, r), nil
	}
}

// checkSeparation is the dependent-predicate precondition for a
// deferred conjunct's edge (see DeferConjuncts).
func (a *assigner) checkSeparation(e *hypergraph.Hyperedge) error {
	pside := a.h.Region(e.From, e)
	nside := a.h.Region(e.To, e)
	for rel := range pside {
		if nside[rel] {
			return fmt.Errorf("core: edge %s does not separate the query (relation %s reachable from both sides); this association tree requires breaking a dependent predicate", e, rel)
		}
	}
	return nil
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersectsSet(a, b map[string]bool) bool {
	small, big := a, b
	if len(big) < len(small) {
		small, big = big, small
	}
	for k := range small {
		if big[k] {
			return true
		}
	}
	return false
}

func keysOf(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
