package core

import (
	"repro/internal/expr"
	"repro/internal/plan"
)

// A Rule proposes equivalent alternatives for a single subtree. Rules
// are expression-level identities: every alternative must evaluate to
// the same relation as the input node on every database, so they may
// be applied at any position of a plan.
type Rule struct {
	Name  string
	Apply func(n plan.Node) []plan.Node
	// Scope declares how deeply Apply inspects the structure of its
	// input, which is what lets the memo explorer apply the rule
	// group-locally: a binding only has to materialize the subtree to
	// the declared depth (anything deeper is an arbitrary member of
	// the corresponding equivalence group). The zero value,
	// ScopeUnknown, keeps undeclared rules sound: the memo cannot
	// bind them and the optimizer falls back to whole-tree
	// saturation.
	Scope RuleScope
}

// RuleScope classifies the structural depth a rule's Apply matches
// on. Predicate-scoping checks (plan.BaseRelSet via refsOnly and
// friends) do not count toward the depth: every member of an
// equivalence group spans the same base relations, so any member
// stands in for the group.
type RuleScope uint8

const (
	// ScopeUnknown is the zero value: the rule has not declared a
	// group-local form. Saturation applies it as always; the memo
	// explorer refuses and reports the rule so Optimize can fall
	// back.
	ScopeUnknown RuleScope = iota
	// ScopeNode rules inspect only the root operator (kind,
	// predicate) and reuse the children as opaque subtrees —
	// commutativity is the canonical example.
	ScopeNode
	// ScopeChild rules additionally match on the operator of one
	// direct child (associativities, pushdown, merge, MGOJ
	// introduction, aggregation pull-up). The memo binds them once
	// per (expression, child slot, child expression).
	ScopeChild
	// ScopeJoinTree rules inspect the entire subtree but only match
	// pure join-over-scan trees (predicate break-up). The memo binds
	// them to every distinct pure-join materialization of the group,
	// which is exactly the set saturation would have presented.
	ScopeJoinTree
)

// refsOnly reports whether p references only relations under n.
func refsOnly(p expr.Pred, n plan.Node) bool {
	return expr.ReferencesOnly(p, plan.BaseRelSet(n))
}

// refsSome reports whether p references at least one relation under n.
func refsSome(p expr.Pred, n plan.Node) bool {
	return expr.References(p, plan.BaseRelSet(n))
}

// refsBoth reports whether p references relations on both sides.
func refsBoth(p expr.Pred, a, b plan.Node) bool {
	return refsSome(p, a) && refsSome(p, b)
}

// asJoin matches a join of one of the given kinds.
func asJoin(n plan.Node, kinds ...plan.JoinKind) (*plan.Join, bool) {
	j, ok := n.(*plan.Join)
	if !ok {
		return nil, false
	}
	for _, k := range kinds {
		if j.Kind == k {
			return j, true
		}
	}
	return nil, false
}

// RuleCommute swaps the operands of commutative operators:
// A ⋈p B = B ⋈p A and A ↔p B = B ↔p A; a one-sided outer join
// commutes into its mirror: A →p B = B ←p A.
var RuleCommute = Rule{
	Name:  "commute",
	Scope: ScopeNode,
	Apply: func(n plan.Node) []plan.Node {
		j, ok := n.(*plan.Join)
		if !ok {
			return nil
		}
		switch j.Kind {
		case plan.InnerJoin, plan.FullJoin:
			return []plan.Node{plan.NewJoin(j.Kind, j.Pred, j.R, j.L)}
		case plan.LeftJoin:
			return []plan.Node{plan.NewJoin(plan.RightJoin, j.Pred, j.R, j.L)}
		case plan.RightJoin:
			return []plan.Node{plan.NewJoin(plan.LeftJoin, j.Pred, j.R, j.L)}
		}
		return nil
	},
}

// RuleAssocInner is inner join associativity:
// (A ⋈p B) ⋈q C = A ⋈p (B ⋈q C) when q references only B ∪ C (and
// still both operands on each side), in both directions.
var RuleAssocInner = Rule{
	Name:  "assoc-inner",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		var out []plan.Node
		if top, ok := asJoin(n, plan.InnerJoin); ok {
			if l, ok := asJoin(top.L, plan.InnerJoin); ok {
				// (A ⋈p B) ⋈q C → A ⋈p (B ⋈q C)
				if refsOnly(top.Pred, plan.NewJoin(plan.InnerJoin, expr.True{}, l.R, top.R)) &&
					refsBoth(top.Pred, l.R, top.R) {
					inner := plan.NewJoin(plan.InnerJoin, top.Pred, l.R, top.R)
					if refsBoth(l.Pred, l.L, inner) {
						out = append(out, plan.NewJoin(plan.InnerJoin, l.Pred, l.L, inner))
					}
				}
			}
			if r, ok := asJoin(top.R, plan.InnerJoin); ok {
				// A ⋈p (B ⋈q C) → (A ⋈p B) ⋈q C when p ⊆ A∪B.
				if refsOnly(top.Pred, join2(top.L, r.L)) && refsBoth(top.Pred, top.L, r.L) {
					left := plan.NewJoin(plan.InnerJoin, top.Pred, top.L, r.L)
					if refsBoth(r.Pred, left, r.R) {
						out = append(out, plan.NewJoin(plan.InnerJoin, r.Pred, left, r.R))
					}
				}
			}
		}
		return out
	},
}

// join2 builds a throwaway node whose base-relation set is the union
// of a and b, for predicate scoping checks.
func join2(a, b plan.Node) plan.Node {
	return plan.NewJoin(plan.InnerJoin, expr.True{}, a, b)
}

// RuleAssocLeft is one-sided outer join associativity
// ([GALI92a]/[BHAR95a]; valid because predicates are null
// in-tolerant):
//
//	(A →p B) →q C = A →p (B →q C)   when q references only B ∪ C
//	                                 and references B
//
// in both directions (right-to-left requires p to reference only
// A ∪ B).
var RuleAssocLeft = Rule{
	Name:  "assoc-left",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		var out []plan.Node
		if top, ok := asJoin(n, plan.LeftJoin); ok {
			if l, ok := asJoin(top.L, plan.LeftJoin); ok {
				// (A →p B) →q C with q ⊆ B∪C, q refs B → A →p (B →q C)
				if refsOnly(top.Pred, join2(l.R, top.R)) && refsBoth(top.Pred, l.R, top.R) {
					out = append(out, plan.NewJoin(plan.LeftJoin, l.Pred, l.L,
						plan.NewJoin(plan.LeftJoin, top.Pred, l.R, top.R)))
				}
				// (A →p B) →q C with q ⊆ A∪C → (A →q C) →p B
				if refsOnly(top.Pred, join2(l.L, top.R)) && refsBoth(top.Pred, l.L, top.R) {
					out = append(out, plan.NewJoin(plan.LeftJoin, l.Pred,
						plan.NewJoin(plan.LeftJoin, top.Pred, l.L, top.R), l.R))
				}
			}
			if r, ok := asJoin(top.R, plan.LeftJoin); ok {
				// A →p (B →q C) with p ⊆ A∪B → (A →p B) →q C
				if refsOnly(top.Pred, join2(top.L, r.L)) && refsBoth(top.Pred, top.L, r.L) {
					out = append(out, plan.NewJoin(plan.LeftJoin, r.Pred,
						plan.NewJoin(plan.LeftJoin, top.Pred, top.L, r.L), r.R))
				}
			}
		}
		return out
	},
}

// RuleJoinLOJ exchanges an inner join with a left outer join that
// preserves a common side:
//
//	(A →p B) ⋈q C = (A ⋈q C) →p B   when q references only A ∪ C
//
// in both directions. The inner join filters only A tuples, which
// commutes with padding unmatched A tuples on sch(B).
var RuleJoinLOJ = Rule{
	Name:  "join-loj",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		var out []plan.Node
		if top, ok := asJoin(n, plan.InnerJoin); ok {
			if l, ok := asJoin(top.L, plan.LeftJoin); ok {
				if refsOnly(top.Pred, join2(l.L, top.R)) && refsBoth(top.Pred, l.L, top.R) {
					out = append(out, plan.NewJoin(plan.LeftJoin, l.Pred,
						plan.NewJoin(plan.InnerJoin, top.Pred, l.L, top.R), l.R))
				}
			}
		}
		if top, ok := asJoin(n, plan.LeftJoin); ok {
			if l, ok := asJoin(top.L, plan.InnerJoin); ok {
				// (A ⋈q C) →p B → (A →p B) ⋈q C when p ⊆ A∪B.
				if refsOnly(top.Pred, join2(l.L, top.R)) && refsBoth(top.Pred, l.L, top.R) {
					out = append(out, plan.NewJoin(plan.InnerJoin, l.Pred,
						plan.NewJoin(plan.LeftJoin, top.Pred, l.L, top.R), l.R))
				}
				// (A ⋈q C) →p B with p ⊆ C∪B → A ⋈q (C →p B).
				if refsOnly(top.Pred, join2(l.R, top.R)) && refsBoth(top.Pred, l.R, top.R) {
					out = append(out, plan.NewJoin(plan.InnerJoin, l.Pred, l.L,
						plan.NewJoin(plan.LeftJoin, top.Pred, l.R, top.R)))
				}
			}
		}
		if top, ok := asJoin(n, plan.InnerJoin); ok {
			if r, ok := asJoin(top.R, plan.LeftJoin); ok {
				// A ⋈q (C →p B) = (A ⋈q C) →p B when q ⊆ A∪C.
				if refsOnly(top.Pred, join2(top.L, r.L)) && refsBoth(top.Pred, top.L, r.L) {
					out = append(out, plan.NewJoin(plan.LeftJoin, r.Pred,
						plan.NewJoin(plan.InnerJoin, top.Pred, top.L, r.L), r.R))
				}
			}
		}
		return out
	},
}

// RuleAssocFull is full outer join associativity
//
//	(A ↔p B) ↔q C = A ↔p (B ↔q C)
//
// valid when p references only A ∪ B, q references only B ∪ C, and
// both reference B (null in-tolerance then guarantees padded tuples
// never spuriously join) — [GALI92a].
var RuleAssocFull = Rule{
	Name:  "assoc-full",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		var out []plan.Node
		if top, ok := asJoin(n, plan.FullJoin); ok {
			if l, ok := asJoin(top.L, plan.FullJoin); ok {
				if refsOnly(top.Pred, join2(l.R, top.R)) && refsBoth(top.Pred, l.R, top.R) &&
					refsOnly(l.Pred, join2(l.L, l.R)) {
					out = append(out, plan.NewJoin(plan.FullJoin, l.Pred, l.L,
						plan.NewJoin(plan.FullJoin, top.Pred, l.R, top.R)))
				}
			}
			if r, ok := asJoin(top.R, plan.FullJoin); ok {
				if refsOnly(top.Pred, join2(top.L, r.L)) && refsBoth(top.Pred, top.L, r.L) &&
					refsOnly(r.Pred, join2(r.L, r.R)) {
					out = append(out, plan.NewJoin(plan.FullJoin, r.Pred,
						plan.NewJoin(plan.FullJoin, top.Pred, top.L, r.L), r.R))
				}
			}
		}
		return out
	},
}

// RuleSelectPushdown moves selection conjuncts toward the relations
// they reference: into the inner join's predicate when they span both
// operands, below the operator when they reference only an operand
// that the operator does not NULL-pad (either side of an inner join,
// the preserved side of an outer join). Conjuncts over a
// null-supplying side stay put — removing padded rows is
// simplification's job, not pushdown's.
var RuleSelectPushdown = Rule{
	Name:  "select-pushdown",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		sel, ok := n.(*plan.Select)
		if !ok {
			return nil
		}
		j, ok := sel.Input.(*plan.Join)
		if !ok {
			return nil
		}
		var toLeft, toRight, toJoin, stay []expr.Pred
		for _, c := range expr.Conjuncts(sel.Pred) {
			switch {
			case refsOnly(c, j.L) && (j.Kind == plan.InnerJoin || j.Kind == plan.LeftJoin):
				toLeft = append(toLeft, c)
			case refsOnly(c, j.R) && (j.Kind == plan.InnerJoin || j.Kind == plan.RightJoin):
				toRight = append(toRight, c)
			case j.Kind == plan.InnerJoin && refsBoth(c, j.L, j.R):
				toJoin = append(toJoin, c)
			default:
				stay = append(stay, c)
			}
		}
		if len(toLeft)+len(toRight)+len(toJoin) == 0 {
			return nil
		}
		l, r := j.L, j.R
		if len(toLeft) > 0 {
			l = plan.NewSelect(expr.And(toLeft...), l)
		}
		if len(toRight) > 0 {
			r = plan.NewSelect(expr.And(toRight...), r)
		}
		pred := j.Pred
		if len(toJoin) > 0 {
			pred = expr.And(append([]expr.Pred{pred}, toJoin...)...)
		}
		var out plan.Node = plan.NewJoin(j.Kind, pred, l, r)
		if len(stay) > 0 {
			out = plan.NewSelect(expr.And(stay...), out)
		}
		return []plan.Node{out}
	},
}

// RuleSelectMerge collapses stacked selections; canonical form for
// the dedup key and a prerequisite for further pushdown.
var RuleSelectMerge = Rule{
	Name:  "select-merge",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		outer, ok := n.(*plan.Select)
		if !ok {
			return nil
		}
		inner, ok := outer.Input.(*plan.Select)
		if !ok {
			return nil
		}
		return []plan.Node{plan.NewSelect(expr.And(outer.Pred, inner.Pred), inner.Input)}
	},
}

// RuleMGOJIntro introduces the modified generalized outer join of
// [BHAR95a], which the paper's Q4' reordering relies on: a one-sided
// outer join over an inner join has no plain reassociation that keeps
// the preserved side intact, but
//
//	A →p (B ⋈q C) = (A →p B) MGOJ_q[rels(A)] C   when p ⊆ A∪B
//	A →p (B ⋈q C) = (A →p C) MGOJ_q[rels(A)] B   when p ⊆ A∪C
//
// — join the outer-join result with the remaining input while
// re-preserving A's tuples that lose their match.
var RuleMGOJIntro = Rule{
	Name:  "mgoj-intro",
	Scope: ScopeChild,
	Apply: func(n plan.Node) []plan.Node {
		top, ok := asJoin(n, plan.LeftJoin)
		if !ok {
			return nil
		}
		inner, ok := asJoin(top.R, plan.InnerJoin)
		if !ok {
			return nil
		}
		specA := []plan.PreservedSpec{plan.NewPreserved(plan.BaseRels(top.L)...)}
		var out []plan.Node
		if refsOnly(top.Pred, join2(top.L, inner.L)) && refsBoth(top.Pred, top.L, inner.L) {
			out = append(out, plan.NewMGOJ(inner.Pred, specA,
				plan.NewJoin(plan.LeftJoin, top.Pred, top.L, inner.L), inner.R))
		}
		if refsOnly(top.Pred, join2(top.L, inner.R)) && refsBoth(top.Pred, top.L, inner.R) {
			out = append(out, plan.NewMGOJ(inner.Pred, specA,
				plan.NewJoin(plan.LeftJoin, top.Pred, top.L, inner.R), inner.L))
		}
		return out
	},
}

// RuleSplit implements the paper's predicate break-up: for every
// split option of a pure join subtree, defer one conjunct to a
// compensating generalized selection per Theorem 1.
var RuleSplit = Rule{
	Name:  "split",
	Scope: ScopeJoinTree,
	Apply: func(n plan.Node) []plan.Node {
		if _, ok := n.(*plan.Join); !ok {
			return nil
		}
		if !pureJoinTree(n) {
			return nil
		}
		var out []plan.Node
		for _, opt := range SplitOptionsOf(n) {
			alt, err := DeferConjuncts(n, opt.Target, []int{opt.Conjunct})
			if err == nil {
				out = append(out, alt)
			}
		}
		return out
	},
}

// pureJoinTree reports whether n consists solely of joins over scans.
func pureJoinTree(n plan.Node) bool {
	ok := true
	plan.Walk(n, func(m plan.Node) {
		switch m.(type) {
		case *plan.Join, *plan.Scan:
		default:
			ok = false
		}
	})
	return ok
}

// DefaultRules is the rule set the saturation engine uses: the
// paper's break-up rules plus the [BHAR95a]/[GALI92a] reassociation
// identities the paper builds on.
func DefaultRules() []Rule {
	return []Rule{
		RuleSelectPushdown,
		RuleSelectMerge,
		RuleCommute,
		RuleAssocInner,
		RuleAssocLeft,
		RuleJoinLOJ,
		RuleAssocFull,
		RuleMGOJIntro,
		RuleSplit,
	}
}

// BaselineRules is the rule set without predicate break-up — the
// state of the art the paper improves on ([BHAR95a] without
// generalized selection). Used by the baseline optimizer.
func BaselineRules() []Rule {
	return []Rule{
		RuleSelectPushdown,
		RuleSelectMerge,
		RuleCommute,
		RuleAssocInner,
		RuleAssocLeft,
		RuleJoinLOJ,
		RuleAssocFull,
	}
}
