package core

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/simplify"
)

// CompensationSpecs computes, per Theorem 1, the preserved-relation
// list of the generalized selection that compensates for breaking a
// conjunct off hyperedge e of hypergraph h:
//
//   - full outer join edge: [pres_1(e), pres_2(e)] — both sides stay
//     preserved (identities (2), (4));
//   - one-sided outer join edge: pres_{e}(h_i) for every h_i in
//     conf(e), plus pres(e) (identities (1), (3), (7));
//   - inner join edge: pres_{e}(h_i) for every h_i in conf(e); an
//     empty conflict set means a plain selection suffices
//     (identities (5), (6), (8)).
//
// Note on identity (6): the paper prints the preserved list
// [r1, r2r3], but the combined r2r3 spec re-preserves inner-join
// tuples that the original query discards; the conflict-set
// derivation used here yields [r1], which the randomized equivalence
// tests confirm. See DESIGN.md.
func CompensationSpecs(h *hypergraph.Hypergraph, e *hypergraph.Hyperedge) []plan.PreservedSpec {
	var specs []plan.PreservedSpec
	switch e.Kind {
	case hypergraph.BiDirected:
		specs = append(specs,
			plan.NewPreserved(h.Pres(e)...),
			plan.NewPreserved(h.Pres2(e)...))
	case hypergraph.Directed:
		for _, hi := range h.Conf(e) {
			specs = append(specs, plan.NewPreserved(h.PresAway(hi, e)...))
		}
		specs = append(specs, plan.NewPreserved(h.Pres(e)...))
	default: // Undirected
		for _, hi := range h.Conf(e) {
			specs = append(specs, plan.NewPreserved(h.PresAway(hi, e)...))
		}
	}
	return dedupeSpecs(specs)
}

func dedupeSpecs(specs []plan.PreservedSpec) []plan.PreservedSpec {
	seen := make(map[string]bool, len(specs))
	out := specs[:0]
	for _, s := range specs {
		k := s.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// DeferConjuncts breaks the conjuncts of `target` (a join node inside
// the pure join tree rooted at q) selected by deferIdx off its
// predicate and re-applies them at the root of q with the Theorem 1
// generalized selection. The remaining predicate must still reference
// both operands of the target (otherwise the operator would
// degenerate), and at least one conjunct must remain.
//
// The returned plan is equivalent to q; when the deferred predicate's
// compensation needs no preservation (inner join edge with an empty
// conflict set) a plain selection is produced instead of a
// generalized selection.
func DeferConjuncts(q plan.Node, target *plan.Join, deferIdx []int) (plan.Node, error) {
	// Theorem 1 holds for *simple* queries (the paper's standing
	// assumption, end of Section 1.1): an outer join whose padded
	// rows a null-intolerant ancestor predicate rejects is redundant,
	// and compensating around it would resurrect rows the original
	// query discards. Require the input to be its own simplification.
	if s := simplify.Simplify(q); s.String() != q.String() {
		return nil, fmt.Errorf("core: query is not simple (outer joins are removable); run simplify.Simplify first")
	}
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		return nil, err
	}
	var edge *hypergraph.Hyperedge
	for _, e := range h.Edges {
		if e.Origin == target {
			edge = e
			break
		}
	}
	if edge == nil {
		return nil, fmt.Errorf("core: target join %s not found in plan %s", target, q)
	}
	// Soundness precondition (the paper's dependent-predicate rule,
	// end of Section 3): breaking a conjunct off edge h is valid only
	// if h separates the hypergraph — no other hyperedge may span
	// h's preserved-side and null-supplying-side regions. When one
	// does (as Q6's top predicate p12∧p14 spans the middle edge), the
	// spanning predicate is dependent and must be broken first;
	// deferring the inner conjunct directly would preserve
	// combinations that exist only because the conjunct was dropped.
	pside := h.Region(edge.From, edge)
	nside := h.Region(edge.To, edge)
	for r := range pside {
		if nside[r] {
			return nil, fmt.Errorf("core: edge %s does not separate the query (relation %s reachable from both sides); break the spanning (dependent) predicate first", edge, r)
		}
	}
	conj := expr.Conjuncts(target.Pred)
	if len(deferIdx) == 0 || len(deferIdx) >= len(conj) {
		return nil, fmt.Errorf("core: must defer a non-empty proper subset of the %d conjuncts", len(conj))
	}
	deferSet := make(map[int]bool, len(deferIdx))
	for _, i := range deferIdx {
		if i < 0 || i >= len(conj) {
			return nil, fmt.Errorf("core: conjunct index %d out of range [0,%d)", i, len(conj))
		}
		deferSet[i] = true
	}
	var deferred, remaining []expr.Pred
	for i, c := range conj {
		if deferSet[i] {
			deferred = append(deferred, c)
		} else {
			remaining = append(remaining, c)
		}
	}
	remPred := expr.And(remaining...)
	// The remaining predicate must still reference both operands.
	lRels, rRels := plan.BaseRelSet(target.L), plan.BaseRelSet(target.R)
	if !expr.References(remPred, lRels) || !expr.References(remPred, rRels) {
		return nil, fmt.Errorf("core: remaining predicate %s no longer references both operands", remPred)
	}
	specs := CompensationSpecs(h, edge)
	defPred := expr.And(deferred...)

	newQ := plan.Rewrite(q, func(n plan.Node) plan.Node {
		if n == target {
			return plan.NewJoin(target.Kind, remPred, target.L, target.R)
		}
		return nil
	})
	if len(specs) == 0 {
		return plan.NewSelect(defPred, newQ), nil
	}
	return plan.NewGenSel(defPred, specs, newQ), nil
}

// SplitOptions lists every valid single-conjunct deferral of a pure
// join tree: for each join node whose predicate has at least two
// conjuncts, each conjunct whose removal keeps the operator
// two-sided. The options drive both the saturation engine and the
// recursive Q5/Q6 splitting procedure.
type SplitOption struct {
	Target   *plan.Join
	Conjunct int
}

// SplitOptionsOf enumerates the split options of q.
func SplitOptionsOf(q plan.Node) []SplitOption {
	var opts []SplitOption
	plan.Walk(q, func(n plan.Node) {
		j, ok := n.(*plan.Join)
		if !ok {
			return
		}
		conj := expr.Conjuncts(j.Pred)
		if len(conj) < 2 {
			return
		}
		lRels, rRels := plan.BaseRelSet(j.L), plan.BaseRelSet(j.R)
		for i := range conj {
			var rest []expr.Pred
			for k, c := range conj {
				if k != i {
					rest = append(rest, c)
				}
			}
			rem := expr.And(rest...)
			if expr.References(rem, lRels) && expr.References(rem, rRels) {
				opts = append(opts, SplitOption{Target: j, Conjunct: i})
			}
		}
	})
	return opts
}
