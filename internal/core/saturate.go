package core

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/plan"
)

// SaturateOptions bound the saturation.
type SaturateOptions struct {
	// Rules to close under; DefaultRules() if nil.
	Rules []Rule
	// MaxPlans caps the equivalence class size (0 means 100000).
	MaxPlans int
	// Obs, when non-nil, receives enumeration counters:
	// optimizer.rule_applied.<rule> (every identity firing),
	// optimizer.rule_admitted.<rule> (firings yielding a new plan),
	// optimizer.dedup_hits (firings deduplicated away),
	// optimizer.plans_admitted and optimizer.enumeration_capped.
	Obs *obs.Registry
}

// Derivation records how a plan entered the closure: the canonical
// string of its parent plan and the rule that produced it. The root
// has no derivation.
type Derivation struct {
	Parent string
	Rule   string
}

// Saturate computes the closure of root under the rule set: the set
// of equivalent plans reachable by applying rules at any subtree
// position, deduplicated by canonical plan string. The input plan is
// always the first element. This is the paper's enumeration (Section
// 4) realised as a transformation-based optimizer: every rule is an
// identity, so every returned plan evaluates to the same relation as
// root.
func Saturate(root plan.Node, opts SaturateOptions) []plan.Node {
	plans, _ := SaturateTraced(root, opts)
	return plans
}

// SaturateTraced is Saturate plus a derivation map (keyed by plan
// string) recording, for every plan except the root, which rule
// produced it from which parent. Walking the map back to the root
// yields the identity chain that justifies a plan — EXPLAIN-style
// provenance for the paper's rewrites.
func SaturateTraced(root plan.Node, opts SaturateOptions) ([]plan.Node, map[string]Derivation) {
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxPlans := opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 100000
	}
	rootKey := root.String()
	seen := map[string]bool{rootKey: true}
	trace := make(map[string]Derivation)
	out := []plan.Node{root}
	queue := []plan.Node{root}
	reg := opts.Obs // nil disables enumeration accounting
	for len(queue) > 0 && len(out) < maxPlans {
		cur := queue[0]
		curKey := cur.String()
		queue = queue[1:]
		for _, alt := range alternatives(cur, rules) {
			if reg != nil {
				reg.Counter("optimizer.rule_applied." + alt.rule).Inc()
			}
			key := alt.plan.String()
			if seen[key] {
				if reg != nil {
					reg.Counter("optimizer.dedup_hits").Inc()
				}
				continue
			}
			seen[key] = true
			trace[key] = Derivation{Parent: curKey, Rule: alt.rule}
			out = append(out, alt.plan)
			queue = append(queue, alt.plan)
			if reg != nil {
				reg.Counter("optimizer.rule_admitted." + alt.rule).Inc()
				reg.Counter("optimizer.plans_admitted").Inc()
			}
			if len(out) >= maxPlans {
				if reg != nil {
					reg.Counter("optimizer.enumeration_capped").Inc()
				}
				break
			}
		}
	}
	return out, trace
}

// DerivationChain reconstructs the rule applications leading from the
// root to the plan with the given canonical string, oldest first.
func DerivationChain(trace map[string]Derivation, planKey string) []string {
	var chain []string
	for {
		d, ok := trace[planKey]
		if !ok {
			break
		}
		chain = append(chain, d.Rule)
		planKey = d.Parent
	}
	// Reverse to oldest-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

type altPlan struct {
	plan plan.Node
	rule string
}

// alternatives applies every rule at every subtree position of cur
// and returns the resulting full plans with the producing rule.
func alternatives(cur plan.Node, rules []Rule) []altPlan {
	var out []altPlan
	var paths [][]int
	collectPaths(cur, nil, &paths)
	for _, path := range paths {
		sub := nodeAt(cur, path)
		for _, r := range rules {
			for _, alt := range r.Apply(sub) {
				out = append(out, altPlan{plan: replaceAt(cur, path, alt), rule: r.Name})
			}
		}
	}
	return out
}

func collectPaths(n plan.Node, prefix []int, out *[][]int) {
	*out = append(*out, append([]int(nil), prefix...))
	for i, c := range n.Children() {
		collectPaths(c, append(prefix, i), out)
	}
}

func nodeAt(n plan.Node, path []int) plan.Node {
	for _, i := range path {
		n = n.Children()[i]
	}
	return n
}

func replaceAt(n plan.Node, path []int, sub plan.Node) plan.Node {
	if len(path) == 0 {
		return sub
	}
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	copy(newCh, ch)
	newCh[path[0]] = replaceAt(ch[path[0]], path[1:], sub)
	return n.WithChildren(newCh)
}

// JoinOrders extracts the distinct association-tree shapes (orders in
// which base relations are combined, ignoring operators and unary
// nodes) of a set of plans, sorted lexicographically. It is used to
// compare the plan space with and without predicate break-up.
func JoinOrders(plans []plan.Node) []string {
	set := make(map[string]bool)
	var shape func(n plan.Node) string
	shape = func(n plan.Node) string {
		switch m := n.(type) {
		case *plan.Scan:
			return m.Rel
		case *plan.Join:
			l, r := shape(m.L), shape(m.R)
			if l > r {
				l, r = r, l
			}
			return "(" + l + "." + r + ")"
		case *plan.MGOJNode:
			l, r := shape(m.L), shape(m.R)
			if l > r {
				l, r = r, l
			}
			return "(" + l + "." + r + ")"
		default:
			ch := n.Children()
			if len(ch) == 1 {
				return shape(ch[0])
			}
			return n.String()
		}
	}
	for _, p := range plans {
		set[shape(p)] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
