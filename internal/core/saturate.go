package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
)

// SaturateOptions bound the saturation.
type SaturateOptions struct {
	// Rules to close under; DefaultRules() if nil.
	Rules []Rule
	// MaxPlans caps the equivalence class size (0 means 100000).
	MaxPlans int
	// Budget, when non-nil, governs the run: cancellation is checked
	// at every wave boundary (SaturateGuarded returns
	// guard.ErrCancelled), and every admitted plan is charged against
	// the expression budget — tripping it stops enumeration
	// gracefully with the plans found so far.
	Budget *guard.Budget
	// Workers sets the number of goroutines expanding the frontier.
	// 0 and 1 run the serial loop; < 0 means runtime.GOMAXPROCS(0).
	// Any value returns the identical plan sequence and derivation
	// trace: the parallel engine expands breadth-first waves
	// concurrently but admits candidates in the serial order.
	Workers int
	// Obs, when non-nil, receives enumeration counters:
	// optimizer.rule_applied.<rule> (every identity firing),
	// optimizer.rule_admitted.<rule> (firings yielding a new plan),
	// optimizer.dedup_hits (firings deduplicated away),
	// optimizer.plans_admitted and optimizer.enumeration_capped,
	// plus, for parallel runs, optimizer.saturate.waves and the
	// optimizer.saturate.worker_busy_ns utilization histogram.
	Obs *obs.Registry
}

// workers resolves the option to a concrete goroutine count.
func (o SaturateOptions) workers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// Derivation records how a plan entered the closure: the canonical
// string of its parent plan and the rule that produced it. The root
// has no derivation.
type Derivation struct {
	Parent string
	Rule   string
}

// Saturate computes the closure of root under the rule set: the set
// of equivalent plans reachable by applying rules at any subtree
// position, deduplicated by canonical plan fingerprint. The input
// plan is always the first element. This is the paper's enumeration
// (Section 4) realised as a transformation-based optimizer: every
// rule is an identity, so every returned plan evaluates to the same
// relation as root.
func Saturate(root plan.Node, opts SaturateOptions) []plan.Node {
	plans, _ := SaturateTraced(root, opts)
	return plans
}

// StoppedBudget is the SaturateGuarded stop reason for an expression
// budget trip; optimizer degradation tags reuse it verbatim.
const StoppedBudget = "budget:exprs"

// SaturateTraced is Saturate plus a derivation map (keyed by plan
// fingerprint, i.e. the canonical plan string) recording, for every
// plan except the root, which rule produced it from which parent.
// Walking the map back to the root yields the identity chain that
// justifies a plan — EXPLAIN-style provenance for the paper's
// rewrites.
//
// With Workers > 1 the expansion runs as a level-synchronized worker
// pool: each breadth-first wave's rule applications and fingerprint
// computations fan out across goroutines, and a single-threaded merge
// admits the results in frontier order, so the output plan sequence,
// the trace and the best-plan choice are identical to the serial run
// regardless of scheduling.
func SaturateTraced(root plan.Node, opts SaturateOptions) ([]plan.Node, map[string]Derivation) {
	plans, trace, _, _ := SaturateGuarded(root, opts)
	return plans, trace
}

// SaturateGuarded is SaturateTraced under resource governance. A
// tripped expression budget is not an error: enumeration stops
// gracefully and stopped reports StoppedBudget alongside the plans
// found so far (always at least the root). Cancellation, injected
// faults and contained rule-application panics return a typed error
// plus whatever prefix of the closure was admitted before the abort.
// Checks sit at wave boundaries and admissions only, so a guarded run
// whose budget never trips produces the same plans and trace as
// SaturateTraced for any worker count.
func SaturateGuarded(root plan.Node, opts SaturateOptions) (plans []plan.Node, trace map[string]Derivation, stopped string, err error) {
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxPlans := opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 100000
	}
	if w := opts.workers(); w > 1 {
		return saturateParallel(root, rules, maxPlans, w, opts.Budget, opts.Obs)
	}
	return saturateSerial(root, rules, maxPlans, opts.Budget, opts.Obs)
}

// saturateSerial is the single-goroutine breadth-first closure. The
// queue is consumed through a head index with periodic compaction
// instead of queue = queue[1:], so the backing array of a long run is
// released as it drains rather than pinned in full.
func saturateSerial(root plan.Node, rules []Rule, maxPlans int, b *guard.Budget, reg *obs.Registry) ([]plan.Node, map[string]Derivation, string, error) {
	rootKey := plan.Key(root)
	seen := map[string]bool{rootKey: true}
	trace := make(map[string]Derivation)
	out := []plan.Node{root}
	queue := []plan.Node{root}
	head := 0
	var scratch []altPlan // reused across dequeues: alternatives are consumed immediately
	for head < len(queue) && len(out) < maxPlans {
		// The serial engine's dequeue is its wave boundary: one
		// cancellation check and fault point per expanded plan.
		if err := b.Cancelled(); err != nil {
			return out, trace, "", err
		}
		if err := guard.Hit(guard.PointSaturateWave); err != nil {
			return out, trace, "", err
		}
		cur := queue[head]
		queue[head] = nil
		head++
		if head >= 1024 && head*2 >= len(queue) {
			queue = queue[:copy(queue, queue[head:])]
			head = 0
		}
		curKey := plan.Key(cur) // cached: computed once per plan, ever
		err := guard.Safely("saturate", curKey, reg, func() error {
			if e := guard.Hit(guard.PointRuleApply); e != nil {
				return e
			}
			scratch = appendAlternatives(scratch[:0], cur, rules)
			return nil
		})
		if err != nil {
			return out, trace, "", err
		}
		for _, alt := range scratch {
			if reg != nil {
				reg.Counter("optimizer.rule_applied." + alt.rule).Inc()
			}
			key := plan.Key(alt.plan)
			if seen[key] {
				if reg != nil {
					reg.Counter("optimizer.dedup_hits").Inc()
				}
				continue
			}
			seen[key] = true
			trace[key] = Derivation{Parent: curKey, Rule: alt.rule}
			out = append(out, alt.plan)
			queue = append(queue, alt.plan)
			if reg != nil {
				reg.Counter("optimizer.rule_admitted." + alt.rule).Inc()
				reg.Counter("optimizer.plans_admitted").Inc()
			}
			if b.ChargeExprs(1) != nil {
				return out, trace, StoppedBudget, nil
			}
			if len(out) >= maxPlans {
				if reg != nil {
					reg.Counter("optimizer.enumeration_capped").Inc()
				}
				break
			}
		}
	}
	return out, trace, "", nil
}

// saturateParallel expands the closure wave by wave: all plans
// admitted in wave i form the frontier of wave i+1, workers apply the
// rule set to frontier items concurrently (pre-filtering against the
// seen-set of completed waves, which is read-only while workers run),
// and the merge admits survivors in frontier order. Because serial
// breadth-first admission also processes the queue in exactly that
// order, the plan sequence and trace are bit-identical to
// saturateSerial's.
func saturateParallel(root plan.Node, rules []Rule, maxPlans, workers int, b *guard.Budget, reg *obs.Registry) ([]plan.Node, map[string]Derivation, string, error) {
	rootKey := plan.Key(root)
	seen := map[string]bool{rootKey: true}
	trace := make(map[string]Derivation)
	out := []plan.Node{root}
	frontier := []plan.Node{root}
	if reg != nil {
		reg.Gauge("optimizer.saturate.workers").Set(int64(workers))
	}
	for len(frontier) > 0 && len(out) < maxPlans {
		if err := b.Cancelled(); err != nil {
			return out, trace, "", err
		}
		if err := guard.Hit(guard.PointSaturateWave); err != nil {
			return out, trace, "", err
		}
		results := make([][]altPlan, len(frontier))
		// Per-item error slots: a boundary defer cannot see a worker
		// goroutine's panic, so each item runs under guard.Safely and
		// the lowest-index failure wins — deterministic for any
		// scheduling.
		errs := make([]error, len(frontier))
		var next atomic.Int64
		var wg sync.WaitGroup
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(frontier) {
						break
					}
					errs[i] = guard.Safely("saturate", plan.Key(frontier[i]), reg, func() error {
						if e := guard.Hit(guard.PointRuleApply); e != nil {
							return e
						}
						alts := appendAlternatives(nil, frontier[i], rules)
						// Force fingerprints while parallel (cached for the
						// merge) and drop candidates already admitted by a
						// previous wave; within-wave duplicates are caught
						// in the ordered merge below.
						kept := alts[:0]
						for _, a := range alts {
							if reg != nil {
								reg.Counter("optimizer.rule_applied." + a.rule).Inc()
							}
							if seen[plan.Key(a.plan)] {
								if reg != nil {
									reg.Counter("optimizer.dedup_hits").Inc()
								}
								continue
							}
							kept = append(kept, a)
						}
						results[i] = kept
						return nil
					})
				}
				if reg != nil {
					reg.Histogram("optimizer.saturate.worker_busy_ns").ObserveDuration(time.Since(start))
				}
			}()
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return out, trace, "", e
			}
		}
		if reg != nil {
			reg.Counter("optimizer.saturate.waves").Inc()
		}
		waveStart := len(out)
	merge:
		for i, alts := range results {
			curKey := plan.Key(frontier[i])
			for _, alt := range alts {
				key := plan.Key(alt.plan)
				if seen[key] {
					if reg != nil {
						reg.Counter("optimizer.dedup_hits").Inc()
					}
					continue
				}
				seen[key] = true
				trace[key] = Derivation{Parent: curKey, Rule: alt.rule}
				out = append(out, alt.plan)
				if reg != nil {
					reg.Counter("optimizer.rule_admitted." + alt.rule).Inc()
					reg.Counter("optimizer.plans_admitted").Inc()
				}
				if b.ChargeExprs(1) != nil {
					return out, trace, StoppedBudget, nil
				}
				if len(out) >= maxPlans {
					if reg != nil {
						reg.Counter("optimizer.enumeration_capped").Inc()
					}
					break merge
				}
			}
		}
		frontier = out[waveStart:]
	}
	return out, trace, "", nil
}

// DerivationChain reconstructs the rule applications leading from the
// root to the plan with the given canonical string, oldest first.
func DerivationChain(trace map[string]Derivation, planKey string) []string {
	var chain []string
	for {
		d, ok := trace[planKey]
		if !ok {
			break
		}
		chain = append(chain, d.Rule)
		planKey = d.Parent
	}
	// Reverse to oldest-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

type altPlan struct {
	plan plan.Node
	rule string
}

// appendAlternatives applies every rule at every subtree position of
// cur and appends the resulting full plans (with the producing rule)
// to out, reusing its capacity. The traversal rebuilds the spine on
// the way out of the recursion, so no path slices are materialized
// and unchanged siblings are shared with cur.
func appendAlternatives(out []altPlan, cur plan.Node, rules []Rule) []altPlan {
	return appendAlts(out, cur, rules, nil)
}

// appendAlts recurses pre-order; wrap rebuilds the ancestors of n
// around a replacement subtree (nil at the root). The visit order
// matches the collectPaths order the serial engine always used, so
// admission order — and with it the derivation trace — is preserved.
func appendAlts(out []altPlan, n plan.Node, rules []Rule, wrap func(plan.Node) plan.Node) []altPlan {
	for _, r := range rules {
		for _, alt := range r.Apply(n) {
			if wrap != nil {
				alt = wrap(alt)
			}
			out = append(out, altPlan{plan: alt, rule: r.Name})
		}
	}
	ch := n.Children()
	for i, c := range ch {
		childWrap := func(sub plan.Node) plan.Node {
			newCh := make([]plan.Node, len(ch))
			copy(newCh, ch)
			newCh[i] = sub
			rebuilt := n.WithChildren(newCh)
			if wrap != nil {
				return wrap(rebuilt)
			}
			return rebuilt
		}
		out = appendAlts(out, c, rules, childWrap)
	}
	return out
}

// JoinOrders extracts the distinct association-tree shapes (orders in
// which base relations are combined, ignoring operators and unary
// nodes) of a set of plans, sorted lexicographically. It is used to
// compare the plan space with and without predicate break-up.
func JoinOrders(plans []plan.Node) []string {
	set := make(map[string]bool)
	var shape func(n plan.Node) string
	shape = func(n plan.Node) string {
		switch m := n.(type) {
		case *plan.Scan:
			return m.Rel
		case *plan.Join:
			l, r := shape(m.L), shape(m.R)
			if l > r {
				l, r = r, l
			}
			return "(" + l + "." + r + ")"
		case *plan.MGOJNode:
			l, r := shape(m.L), shape(m.R)
			if l > r {
				l, r = r, l
			}
			return "(" + l + "." + r + ")"
		default:
			ch := n.Children()
			if len(ch) == 1 {
				return shape(ch[0])
			}
			return n.String()
		}
	}
	for _, p := range plans {
		set[shape(p)] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
