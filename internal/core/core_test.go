package core

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/value"
)

// randDB builds a database with relations named rels, each with
// columns x and y, random small-domain integer values and occasional
// NULLs so joins, padding and duplicate values all occur.
func randDB(rng *rand.Rand, maxRows, domain int, rels ...string) plan.Database {
	db := make(plan.Database, len(rels))
	for _, name := range rels {
		b := relation.NewBuilder(name, "x", "y")
		n := rng.Intn(maxRows + 1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 2)
			for j := range vals {
				if rng.Intn(8) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(domain)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	return db
}

// eqX builds rel1.x = rel2.x; eqY builds rel1.y = rel2.y.
func eqX(r1, r2 string) expr.Pred { return expr.EqCols(r1, "x", r2, "x") }
func eqY(r1, r2 string) expr.Pred { return expr.EqCols(r1, "y", r2, "y") }

func mustEquivalent(t *testing.T, a, b plan.Node, db plan.Database, msg string) {
	t.Helper()
	ok, err := plan.Equivalent(a, b, db)
	if err != nil {
		t.Fatalf("%s: %v", msg, err)
	}
	if !ok {
		ra, _ := a.Eval(db)
		rb, _ := b.Eval(db)
		t.Fatalf("%s:\nlhs %s\n%s\nrhs %s\n%s", msg, a, ra.Format(true), b, rb.Format(true))
	}
}

// TestIdentities1to8 verifies every association identity of Section
// 3.1 by execution on randomized databases (E4 in DESIGN.md).
func TestIdentities1to8(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	scan := plan.NewScan
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, 5, 3, "r1", "r2", "r3", "r4")

		lhs, rhs := Identity1(scan("r1"), scan("r2"), eqY("r1", "r2"), eqX("r1", "r2"))
		mustEquivalent(t, lhs, rhs, db, "identity (1)")

		lhs, rhs = Identity2(scan("r1"), scan("r2"), eqY("r1", "r2"), eqX("r1", "r2"))
		mustEquivalent(t, lhs, rhs, db, "identity (2)")

		for _, kind := range []plan.JoinKind{plan.InnerJoin, plan.LeftJoin, plan.RightJoin, plan.FullJoin} {
			lhs, rhs = Identity3(kind, scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r1", "r3"), eqX("r2", "r3"))
			mustEquivalent(t, lhs, rhs, db, "identity (3) ⊙="+kind.String())

			lhs, rhs = Identity4(kind, scan("r1"), scan("r2"), scan("r3"),
				eqX("r1", "r2"), eqY("r1", "r3"), eqX("r2", "r3"))
			mustEquivalent(t, lhs, rhs, db, "identity (4) ⊙="+kind.String())
		}

		lhs, rhs = Identity5(scan("r1"), scan("r2"), scan("r3"),
			eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		mustEquivalent(t, lhs, rhs, db, "identity (5)")

		lhs, rhs = Identity6(scan("r1"), scan("r2"), scan("r3"),
			eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		mustEquivalent(t, lhs, rhs, db, "identity (6), corrected preserved list [r1]")

		lhs, rhs = Identity7(scan("r1"), scan("r2"), scan("r3"),
			eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"))
		mustEquivalent(t, lhs, rhs, db, "identity (7)")

		lhs, rhs = Identity8(scan("r1"), scan("r2"), scan("r3"), scan("r4"),
			eqX("r1", "r2"), eqY("r2", "r3"), eqX("r2", "r3"), eqX("r2", "r4"))
		mustEquivalent(t, lhs, rhs, db, "identity (8)")
	}
}

// TestIdentity6PaperVariantFails documents why the preserved list
// printed in the paper for identity (6) — [r1, r2r3] — is not an
// identity: preserving the combined r2r3 relation resurrects
// inner-join tuples that fail the deferred conjunct, which the
// original query discards.
func TestIdentity6PaperVariantFails(t *testing.T) {
	// r2 ⋈ r3 succeeds on p2 but fails p1; r1 matches nothing.
	r1 := relation.NewBuilder("r1", "x", "y").Row(value.NewInt(9), value.NewInt(9)).Relation()
	r2 := relation.NewBuilder("r2", "x", "y").Row(value.NewInt(1), value.NewInt(5)).Relation()
	r3 := relation.NewBuilder("r3", "x", "y").Row(value.NewInt(1), value.NewInt(6)).Relation()
	db := plan.Database{"r1": r1, "r2": r2, "r3": r3}

	p12 := eqX("r1", "r2")
	p1, p2 := eqY("r2", "r3"), eqX("r2", "r3")
	lhs := plan.NewJoin(plan.FullJoin, p12, plan.NewScan("r1"),
		plan.NewJoin(plan.InnerJoin, expr.And(p1, p2), plan.NewScan("r2"), plan.NewScan("r3")))
	paperRHS := plan.NewGenSel(p1,
		[]plan.PreservedSpec{plan.NewPreserved("r1"), plan.NewPreserved("r2", "r3")},
		plan.NewJoin(plan.FullJoin, p12, plan.NewScan("r1"),
			plan.NewJoin(plan.InnerJoin, p2, plan.NewScan("r2"), plan.NewScan("r3"))))
	ok, err := plan.Equivalent(lhs, paperRHS, db)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("paper's identity (6) preserved list unexpectedly held; the counterexample should distinguish them")
	}
	// The corrected list [r1] is an identity on the same database.
	_, rhs := Identity6(plan.NewScan("r1"), plan.NewScan("r2"), plan.NewScan("r3"), p12, p1, p2)
	mustEquivalent(t, lhs, rhs, db, "corrected identity (6)")
}

// query2 is the unnested Query 2 shape of Section 1.1:
// (r1 →p12 r2) →(p13∧p23) r3.
func query2() plan.Node {
	p12 := eqX("r1", "r2")
	p13 := eqY("r1", "r3")
	p23 := eqX("r2", "r3")
	return plan.NewJoin(plan.LeftJoin, expr.And(p13, p23),
		plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
}

// TestDeferConjunctsQuery2 reproduces the Section 2 discussion: both
// conjuncts of the complex predicate can be deferred, each giving a
// σ*[r1r2]-compensated plan.
func TestDeferConjunctsQuery2(t *testing.T) {
	q := query2()
	top := q.(*plan.Join)
	rng := rand.New(rand.NewSource(2))
	for idx := 0; idx < 2; idx++ {
		alt, err := DeferConjuncts(q, top, []int{idx})
		if err != nil {
			t.Fatal(err)
		}
		gs, ok := alt.(*plan.GenSel)
		if !ok {
			t.Fatalf("expected a generalized selection at the root, got %s", alt)
		}
		if len(gs.Preserved) != 1 || gs.Preserved[0].String() != "r1r2" {
			t.Errorf("preserved = %v, want [r1r2]", gs.Preserved)
		}
		for trial := 0; trial < 25; trial++ {
			db := randDB(rng, 5, 3, "r1", "r2", "r3")
			mustEquivalent(t, q, alt, db, "Query 2 deferral")
		}
	}
}

func TestDeferConjunctsErrors(t *testing.T) {
	q := query2()
	top := q.(*plan.Join)
	if _, err := DeferConjuncts(q, top, nil); err == nil {
		t.Error("empty deferral should fail")
	}
	if _, err := DeferConjuncts(q, top, []int{0, 1}); err == nil {
		t.Error("deferring all conjuncts should fail")
	}
	if _, err := DeferConjuncts(q, top, []int{7}); err == nil {
		t.Error("out-of-range index should fail")
	}
	other := query2().(*plan.Join)
	if _, err := DeferConjuncts(q, other, []int{0}); err == nil {
		t.Error("foreign target node should fail")
	}
}

// TestQuery2ThreeOrders is experiment E9: without generalized
// selection the complex predicate locks Query 2 into a single join
// order; with it, all three linear orders appear.
func TestQuery2ThreeOrders(t *testing.T) {
	q := query2()
	baseline := Saturate(q, SaturateOptions{Rules: BaselineRules()})
	baseOrders := JoinOrders(baseline)
	if len(baseOrders) != 1 {
		t.Errorf("baseline orders = %v, want exactly the original", baseOrders)
	}
	full := Saturate(q, SaturateOptions{})
	orders := JoinOrders(full)
	want := map[string]bool{
		"((r1.r2).r3)": true,
		"((r1.r3).r2)": true,
		"((r2.r3).r1)": true,
	}
	got := map[string]bool{}
	for _, o := range orders {
		got[o] = true
	}
	for o := range want {
		if !got[o] {
			t.Errorf("missing join order %s; got %v", o, orders)
		}
	}
}

// TestSaturationSound verifies the central soundness property: every
// plan in the closure evaluates to the same relation as the original
// query, on randomized databases.
func TestSaturationSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	queries := map[string]plan.Node{
		"query2": query2(),
		"q4": func() plan.Node {
			p12 := eqX("r1", "r2")
			p24 := eqX("r2", "r4")
			p25 := eqY("r2", "r5")
			p45 := eqX("r4", "r5")
			p35 := eqY("r3", "r5")
			inner := plan.NewJoin(plan.InnerJoin, p35,
				plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
				plan.NewScan("r3"))
			mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
			return plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid)
		}(),
		"fullouter": plan.NewJoin(plan.FullJoin, eqX("r1", "r2"),
			plan.NewScan("r1"),
			plan.NewJoin(plan.FullJoin, expr.And(eqX("r2", "r3"), eqY("r2", "r3")),
				plan.NewScan("r2"), plan.NewScan("r3"))),
		"q5": q5(),
		"q6": q6(),
	}
	for name, q := range queries {
		plans := Saturate(q, SaturateOptions{MaxPlans: 400})
		if len(plans) < 2 {
			t.Errorf("%s: saturation produced only %d plan(s)", name, len(plans))
		}
		for trial := 0; trial < 6; trial++ {
			db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4", "r5", "r6")
			want, err := q.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range plans {
				got, err := p.Eval(db)
				if err != nil {
					t.Fatalf("%s: eval %s: %v", name, p, err)
				}
				if !got.EqualAsSets(want) {
					t.Fatalf("%s trial %d: plan not equivalent to query:\nplan: %s\noriginal: %s\ngot:\n%s\nwant:\n%s",
						name, trial, p, q, got.Format(true), want.Format(true))
				}
			}
		}
	}
}

// TestQ4SaturationWidens is experiment E3's plan-level counterpart:
// predicate break-up strictly widens the set of join orders for Q4.
func TestQ4SaturationWidens(t *testing.T) {
	p12 := eqX("r1", "r2")
	p24 := eqX("r2", "r4")
	p25 := eqY("r2", "r5")
	p45 := eqX("r4", "r5")
	p35 := eqY("r3", "r5")
	inner := plan.NewJoin(plan.InnerJoin, p35,
		plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
		plan.NewScan("r3"))
	mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
	q4 := plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid)

	base := JoinOrders(Saturate(q4, SaturateOptions{Rules: BaselineRules(), MaxPlans: 5000}))
	full := JoinOrders(Saturate(q4, SaturateOptions{MaxPlans: 5000}))
	if len(full) <= len(base) {
		t.Errorf("break-up should widen the join-order space: baseline %d, full %d", len(base), len(full))
	}
	// The order of the paper's association tree (r1.((r2.r4).(r5.r3)))
	// — r2 combined with r4 before r5 — must be reachable with
	// break-up and unreachable without.
	target := "(((r2.r4).(r3.r5)).r1)"
	has := func(orders []string, want string) bool {
		for _, o := range orders {
			if o == want {
				return true
			}
		}
		return false
	}
	if has(base, target) {
		t.Errorf("baseline unexpectedly reaches %s", target)
	}
	if !has(full, target) {
		t.Errorf("break-up does not reach %s; got %v", target, full)
	}
}

// TestDerivationChain reconstructs the rule path from the trace.
func TestDerivationChain(t *testing.T) {
	q := query2()
	plans, trace := SaturateTraced(q, SaturateOptions{})
	if len(plans) < 3 {
		t.Fatal("closure too small")
	}
	// The root has an empty chain.
	if got := DerivationChain(trace, q.String()); len(got) != 0 {
		t.Errorf("root chain = %v", got)
	}
	// Every non-root plan has a non-empty chain ending at the root.
	withSplit := 0
	for _, p := range plans[1:] {
		chain := DerivationChain(trace, p.String())
		if len(chain) == 0 {
			t.Errorf("plan %s has no derivation", p)
		}
		for _, step := range chain {
			if step == "split" {
				withSplit++
				break
			}
		}
	}
	if withSplit == 0 {
		t.Error("no plan derived through the split rule")
	}
}

// TestSplitOptionsEdgeCases: single-conjunct edges offer no splits;
// complex predicates offer one option per deferrable conjunct.
func TestSplitOptionsEdgeCases(t *testing.T) {
	single := plan.NewJoin(plan.LeftJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2"))
	if got := SplitOptionsOf(single); len(got) != 0 {
		t.Errorf("single conjunct offered %d splits", len(got))
	}
	if got := SplitOptionsOf(query2()); len(got) != 2 {
		t.Errorf("query2 offers %d splits, want 2", len(got))
	}
	// A two-conjunct predicate whose conjuncts both touch the same
	// pair cannot defer either... both CAN defer (remainder still
	// references both sides).
	both := plan.NewJoin(plan.LeftJoin, expr.And(eqX("r1", "r2"), eqY("r1", "r2")),
		plan.NewScan("r1"), plan.NewScan("r2"))
	if got := SplitOptionsOf(both); len(got) != 2 {
		t.Errorf("simple 2-conjunct edge offers %d splits, want 2", len(got))
	}
}

// TestSaturateTraceReplays is the provenance soundness check: from
// any admitted plan, walking the trace's parent links terminates at
// the root within closure-size steps (no cycles, no dangling
// parents), and replaying each recorded rule against its parent
// actually reproduces the child's fingerprint — so every derivation
// the optimizer reports is a chain of real rule firings.
func TestSaturateTraceReplays(t *testing.T) {
	q := query2()
	plans, trace := SaturateTraced(q, SaturateOptions{})
	rootKey := plan.Key(q)
	byKey := make(map[string]plan.Node, len(plans))
	for _, p := range plans {
		byKey[plan.Key(p)] = p
	}
	byName := make(map[string]Rule)
	for _, r := range DefaultRules() {
		byName[r.Name] = r
	}
	type step struct {
		child string
		d     Derivation
	}
	for _, p := range plans {
		key := plan.Key(p)
		var chain []step
		for key != rootKey {
			d, ok := trace[key]
			if !ok {
				t.Fatalf("plan %s is not the root but has no derivation", key)
			}
			chain = append(chain, step{child: key, d: d})
			key = d.Parent
			if len(chain) > len(plans) {
				t.Fatalf("derivation walk from %s exceeds the closure size: cycle in the trace", plan.Key(p))
			}
		}
		// Replay oldest-first: each recorded rule, applied at every
		// position of the recorded parent, must reach the child.
		for i := len(chain) - 1; i >= 0; i-- {
			st := chain[i]
			parent, ok := byKey[st.d.Parent]
			if !ok {
				t.Fatalf("derivation parent %s was never admitted", st.d.Parent)
			}
			r, ok := byName[st.d.Rule]
			if !ok {
				t.Fatalf("derivation names unknown rule %q", st.d.Rule)
			}
			found := false
			for _, alt := range appendAlternatives(nil, parent, []Rule{r}) {
				if plan.Key(alt.plan) == st.child {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("rule %q on %s does not reproduce %s", st.d.Rule, st.d.Parent, st.child)
			}
		}
	}
}
