package core

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/simplify"
	"repro/internal/value"
)

// q5 is the Section 3 example with two *independent* complex
// predicates:
//
//	Q5 = (r1 ↔(p12∧p13) (r2 →p23 r3)) →p24 (r4 →(p45∧p46) (r5 ⋈p56 r6))
func q5() plan.Node {
	p12 := eqX("r1", "r2")
	p13 := eqY("r1", "r3")
	p23 := eqX("r2", "r3")
	p24 := eqY("r2", "r4")
	p45 := eqX("r4", "r5")
	p46 := eqY("r4", "r6")
	p56 := eqX("r5", "r6")
	left := plan.NewJoin(plan.FullJoin, expr.And(p12, p13),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, p23, plan.NewScan("r2"), plan.NewScan("r3")))
	right := plan.NewJoin(plan.LeftJoin, expr.And(p45, p46),
		plan.NewScan("r4"),
		plan.NewJoin(plan.InnerJoin, p56, plan.NewScan("r5"), plan.NewScan("r6")))
	return plan.NewJoin(plan.LeftJoin, p24, left, right)
}

// q6 is the Section 3 example with *dependent* complex predicates:
//
//	Q6 = r1 ↔(p12∧p14) (r2 →(p23∧p24) (r3 →p34 r4))
func q6() plan.Node {
	p12 := eqX("r1", "r2")
	p14 := eqY("r1", "r4")
	p23 := eqX("r2", "r3")
	p24 := eqY("r2", "r4")
	p34 := eqX("r3", "r4")
	return plan.NewJoin(plan.FullJoin, expr.And(p12, p14),
		plan.NewScan("r1"),
		plan.NewJoin(plan.LeftJoin, expr.And(p23, p24),
			plan.NewScan("r2"),
			plan.NewJoin(plan.LeftJoin, p34, plan.NewScan("r3"), plan.NewScan("r4"))))
}

// splitTwice breaks one conjunct of the outer complex predicate and
// then one conjunct of the inner one, mirroring the paper's Q6
// procedure (independent predicate first, then its dependents),
// re-wrapping the intermediate generalized selection.
func splitTwice(t *testing.T, q plan.Node, outerIdx, innerIdx int) plan.Node {
	t.Helper()
	// Q6 as printed is not simple (its innermost outer join is
	// removable; see DESIGN.md §4a) — the paper's machinery assumes
	// simplified input, so split the simplified, equivalent form.
	q = simplify.Simplify(q)
	top := q.(*plan.Join)
	first, err := DeferConjuncts(q, top, []int{outerIdx})
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := first.(*plan.GenSel)
	if !ok {
		t.Fatalf("first split should produce a generalized selection, got %s", first)
	}
	innerTree := gs.Input
	// Find the join that still carries two conjuncts.
	var target *plan.Join
	plan.Walk(innerTree, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && len(expr.Conjuncts(j.Pred)) == 2 {
			target = j
		}
	})
	if target == nil {
		t.Fatalf("no remaining complex predicate in %s", innerTree)
	}
	second, err := DeferConjuncts(innerTree, target, []int{innerIdx})
	if err != nil {
		t.Fatal(err)
	}
	return first.WithChildren([]plan.Node{second})
}

// TestQ6RecursiveSplit is experiment E6's dependent-predicate half:
// all four double-split forms of Q6 are generated and equivalent to
// the original.
func TestQ6RecursiveSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	q := q6()
	for outer := 0; outer < 2; outer++ {
		for inner := 0; inner < 2; inner++ {
			alt := splitTwice(t, q, outer, inner)
			// The root must be a GS over a GS (the paper's
			// σ*_{p}[…]σ*_{p'}[r1r2](…) shape).
			gs1, ok := alt.(*plan.GenSel)
			if !ok {
				t.Fatalf("outer=%d inner=%d: root is %T", outer, inner, alt)
			}
			if _, ok := gs1.Input.(*plan.GenSel); !ok {
				t.Fatalf("outer=%d inner=%d: expected nested generalized selections:\n%s",
					outer, inner, plan.Indent(alt))
			}
			for trial := 0; trial < 20; trial++ {
				db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4")
				mustEquivalent(t, q, alt, db, "Q6 double split")
			}
		}
	}
}

// TestQ6DependentPredicateRejected pins the paper's dependent-
// predicate rule (end of Section 3): in Q6 the top predicate
// p12∧p14 spans the middle edge's two regions (it references r4
// inside the null-supplying side), so breaking the *inner* complex
// predicate before the outer one is rejected — the independent
// predicate must be broken first.
func TestQ6DependentPredicateRejected(t *testing.T) {
	q := simplify.Simplify(q6())
	var target *plan.Join
	plan.Walk(q, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && j.Kind == plan.LeftJoin && len(expr.Conjuncts(j.Pred)) == 2 {
			target = j
		}
	})
	if _, err := DeferConjuncts(q, target, []int{0}); err == nil {
		t.Fatal("breaking the dependent inner predicate first should be rejected")
	}
}

// TestQ6PaperOrderCounterexample is the concrete database showing why
// the rejection above is necessary: deferring p23 while p14 still
// rides on the full outer join preserves an (r1,r2) combination that
// the original query never produces. The double-split (outer first)
// handles the same database correctly.
func TestQ6PaperOrderCounterexample(t *testing.T) {
	mk := func(x, y int64) []value.Value { return []value.Value{value.NewInt(x), value.NewInt(y)} }
	db := plan.Database{
		"r1": newBuilder("r1", []string{"x", "y"}).Row(mk(1, 5)...).Relation(),
		"r2": newBuilder("r2", []string{"x", "y"}).Row(mk(1, 5)...).Relation(),
		"r3": newBuilder("r3", []string{"x", "y"}).Row(mk(9, 0)...).Relation(),
		"r4": newBuilder("r4", []string{"x", "y"}).Row(mk(9, 5)...).Relation(),
	}
	q := q6()
	want, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// p23 (r2.x = r3.x) fails while p24, p34, p12, p14 all hold: the
	// original query pads r1 and preserves r2 separately.
	if want.Len() != 2 {
		t.Fatalf("expected the padded 2-row result, got:\n%s", want.Format(true))
	}
	// The outer-first double split is equivalent on this database.
	for outer := 0; outer < 2; outer++ {
		alt := splitTwice(t, q, outer, 0)
		mustEquivalent(t, q, alt, db, "Q6 outer-first double split")
	}
}

// TestQ5IndependentSplits is E6's independent half: Q5's two complex
// predicates split independently and in either order, all variants
// equivalent.
func TestQ5IndependentSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	q := q5()
	// Collect the two complex-predicate joins.
	var targets []*plan.Join
	plan.Walk(q, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && len(expr.Conjuncts(j.Pred)) == 2 {
			targets = append(targets, j)
		}
	})
	if len(targets) != 2 {
		t.Fatalf("expected two complex predicates, found %d", len(targets))
	}
	for _, tgt := range targets {
		for idx := 0; idx < 2; idx++ {
			alt, err := DeferConjuncts(q, tgt, []int{idx})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 15; trial++ {
				db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4", "r5", "r6")
				mustEquivalent(t, q, alt, db, "Q5 single split")
			}
		}
	}
	// Both splits applied (independent predicates: order must not
	// matter for equivalence).
	first, err := DeferConjuncts(q, targets[0], []int{0})
	if err != nil {
		t.Fatal(err)
	}
	gs := first.(*plan.GenSel)
	var second *plan.Join
	plan.Walk(gs.Input, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && len(expr.Conjuncts(j.Pred)) == 2 {
			second = j
		}
	})
	inner, err := DeferConjuncts(gs.Input, second, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	both := first.WithChildren([]plan.Node{inner})
	for trial := 0; trial < 15; trial++ {
		db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4", "r5", "r6")
		mustEquivalent(t, q, both, db, "Q5 double split")
	}
}
