package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
)

// PushUpGroupBy implements the aggregation push-up of Example 3.1 /
// Section 4 ([BHAR95b]/[GUPT95]): a generalized projection below a
// binary operator is moved above it, which is the prerequisite for
// reordering queries whose predicates reference aggregated columns.
//
// Given j = GP(input) ⊙p other (or the mirrored form), with
// p = p' ∧ p_d where p_d is the set of conjuncts referencing the
// GP's generated columns:
//
//   - the new operator joins input with other on p' directly;
//   - the GP moves to the top, grouping additionally by every
//     attribute (real and virtual) of the other side, so each
//     original (group, partner) pair is one new group — the
//     π_{V3 r3 r1'r2', c=count(r1)} of Example 3.1;
//   - p_d is re-applied above the GP: with a plain selection when the
//     operator was an inner join, and with a generalized selection
//     preserving the operator's preserved side when it was an outer
//     join (the compensation of Theorem 1);
//   - when the GP sat on the null-supplying side, counts become
//     NULL-if-empty so NULL-padded groups reproduce the original
//     padding instead of a spurious zero (the [GANS87] count bug).
//
// Preconditions (checked): p' must reference only the GP's grouping
// columns on the GP side — otherwise groups do not join uniformly —
// and must still reference both operands.
func PushUpGroupBy(j *plan.Join, db plan.Database) (plan.Node, error) {
	if j.Kind == plan.FullJoin {
		return nil, fmt.Errorf("core: push-up through a full outer join is not supported")
	}
	gp, gpOnLeft := j.L.(*plan.GroupBy)
	if !gpOnLeft {
		var ok bool
		gp, ok = j.R.(*plan.GroupBy)
		if !ok {
			return nil, fmt.Errorf("core: neither operand of %s is a generalized projection", j.Kind)
		}
	}
	other := j.R
	if !gpOnLeft {
		other = j.L
	}

	// The GP is on the null-supplying side when the operator
	// preserves the opposite operand.
	nullSupplying := (j.Kind == plan.LeftJoin && !gpOnLeft) || (j.Kind == plan.RightJoin && gpOnLeft)
	preservedOther := j.Kind != plan.InnerJoin

	aggCols := make(map[schema.Attribute]bool, len(gp.Aggs))
	for _, a := range gp.Aggs {
		aggCols[a.Out] = true
	}
	keyCols := make(map[schema.Attribute]bool, len(gp.Keys))
	for _, k := range gp.Keys {
		keyCols[k] = true
	}

	var deferred, direct []expr.Pred
	for _, c := range expr.Conjuncts(j.Pred) {
		refsAgg := false
		for _, a := range c.Attrs(nil) {
			if aggCols[a] {
				refsAgg = true
				break
			}
		}
		if refsAgg {
			deferred = append(deferred, c)
			continue
		}
		// Direct conjuncts must touch the GP side only through its
		// grouping columns.
		gpInputRels := plan.BaseRelSet(gp.Input)
		for _, a := range c.Attrs(nil) {
			if (gpInputRels[a.Rel] || gpSideAttr(gp, a)) && !keyCols[a] {
				return nil, fmt.Errorf("core: conjunct %s references non-grouping column %s", c, a)
			}
		}
		direct = append(direct, c)
	}
	directPred := expr.And(direct...)
	otherRels := plan.BaseRelSet(other)
	gpRels := plan.BaseRelSet(gp.Input)
	if !expr.References(directPred, otherRels) || !expr.References(directPred, gpRels) {
		return nil, fmt.Errorf("core: remaining predicate %s does not reference both operands", directPred)
	}

	// New join: GP's input against other, same kind and operand
	// order.
	var newJoin *plan.Join
	if gpOnLeft {
		newJoin = plan.NewJoin(j.Kind, directPred, gp.Input, other)
	} else {
		newJoin = plan.NewJoin(j.Kind, directPred, other, gp.Input)
	}

	// New GP: original keys plus every attribute of the other side.
	otherSchema, err := other.Schema(db)
	if err != nil {
		return nil, err
	}
	keys := append([]schema.Attribute(nil), gp.Keys...)
	keys = append(keys, otherSchema.Attrs()...)
	aggs := make([]algebra.Aggregate, len(gp.Aggs))
	copy(aggs, gp.Aggs)
	if nullSupplying {
		for i := range aggs {
			switch aggs[i].Func {
			case algebra.Count, algebra.CountDistinct:
				aggs[i].NullIfEmpty = true
			case algebra.CountStar:
				// COUNT(*) would count the padded row itself; convert
				// to a count over a row identifier that is non-NULL
				// in exactly the real input rows.
				rid, ok := nonNullableRID(gp.Input)
				if !ok {
					return nil, fmt.Errorf("core: cannot convert count(*) of %s for null-supplying push-up", gp.Input)
				}
				aggs[i].Func = algebra.Count
				aggs[i].Arg = expr.Col{Attr: rid}
				aggs[i].NullIfEmpty = true
			}
		}
	}
	var out plan.Node = plan.NewGroupBy(keys, aggs, newJoin)

	if len(deferred) > 0 {
		defPred := expr.And(deferred...)
		if !preservedOther && !nullSupplying && j.Kind == plan.InnerJoin {
			out = plan.NewSelect(defPred, out)
		} else {
			// Preserve the operator's preserved side: the GP side for
			// a left join over GP (Example 3.1), the other side when
			// the GP was null-supplying (Example 1.1).
			var spec plan.PreservedSpec
			if nullSupplying {
				spec = plan.NewPreserved(sortedRels(otherRels)...)
			} else {
				// The preserved relation is the GP's own output:
				// group columns plus the generated aggregate columns,
				// which are functionally determined by the group and
				// must survive on padded rows exactly as the original
				// outer join kept them.
				names := relsOfAttrs(gp.Keys)
				for _, a := range gp.Aggs {
					names = append(names, a.Out.Rel)
				}
				spec = plan.NewPreserved(dedupeStrings(names)...)
			}
			out = plan.NewGenSel(defPred, []plan.PreservedSpec{spec}, out)
		}
	} else if j.Kind == plan.InnerJoin {
		// Nothing deferred and nothing to compensate.
	}
	return out, nil
}

// PushUpRule wraps PushUpGroupBy as a saturation rule, so the pull-up
// composes with the join reorderings: an aggregation that becomes
// adjacent to a join only after a rewrite (Query 1's r4 join) still
// gets pulled. The database is needed to resolve the join partner's
// schema for the widened grouping key.
func PushUpRule(db plan.Database) Rule {
	return Rule{
		Name:  "push-up-aggregation",
		Scope: ScopeChild,
		Apply: func(n plan.Node) []plan.Node {
			j, ok := n.(*plan.Join)
			if !ok {
				return nil
			}
			alt, err := PushUpGroupBy(j, db)
			if err != nil {
				return nil
			}
			return []plan.Node{alt}
		},
	}
}

// nonNullableRID finds the virtual row identifier of a base relation
// that is non-NULL in every row of n's output: a relation on the
// preserved spine of n's operator tree.
func nonNullableRID(n plan.Node) (schema.Attribute, bool) {
	switch m := n.(type) {
	case *plan.Scan:
		return schema.RID(m.Rel), true
	case *plan.Join:
		switch m.Kind {
		case plan.InnerJoin:
			if rid, ok := nonNullableRID(m.L); ok {
				return rid, true
			}
			return nonNullableRID(m.R)
		case plan.LeftJoin:
			return nonNullableRID(m.L)
		case plan.RightJoin:
			return nonNullableRID(m.R)
		}
	case *plan.Select:
		return nonNullableRID(m.Input)
	}
	return schema.Attribute{}, false
}

// gpSideAttr reports whether a is produced by the generalized
// projection (one of its keys or generated columns).
func gpSideAttr(gp *plan.GroupBy, a schema.Attribute) bool {
	for _, k := range gp.Keys {
		if k == a {
			return true
		}
	}
	for _, g := range gp.Aggs {
		if g.Out == a {
			return true
		}
	}
	return false
}

func relsOfAttrs(attrs []schema.Attribute) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range attrs {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

func dedupeStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sortedRels(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	return out
}
