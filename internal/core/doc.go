// Package core implements the paper's primary contribution: the
// deferred application of complex predicates through generalized
// selection (Section 3), including
//
//   - the association identities (1)–(8) of Section 3.1, realised as
//     the general Theorem 1 compensation: any conjunct subset of any
//     join / outer join / full outer join predicate can be broken off
//     and re-applied at the root with a generalized selection whose
//     preserved-relation list is derived from the query hypergraph's
//     preserved sets and conflict sets;
//   - recursive splitting of multiple complex predicates (the Q5/Q6
//     procedure at the end of Section 3);
//   - a saturation-based enumeration engine that closes a query under
//     the identity rules — commutativity, the outer-join
//     associativities of [BHAR95a]/[GALI92a], and predicate
//     break-up — generating the paper's widened plan space;
//   - the group-by push-up of Example 3.1 / Section 4, which moves a
//     generalized projection above a join and defers predicates on
//     aggregated columns via generalized selection;
//   - the unnesting of correlated join-aggregate queries
//     ([GANS87]/[MURA92], Section 1.1) into outer-join + group-by
//     form that the rest of the machinery can reorder.
//
// Every transformation in this package is an expression-level
// equality and is verified against the reference executor on
// randomized databases in the package tests.
package core
