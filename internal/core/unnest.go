package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// CountFilter is one correlated filter "LHS θ (SELECT COUNT(*) FROM
// Sub.Rel WHERE Sub.Corr …)" as in the join-aggregate queries of
// Section 1.1. LHS may reference any enclosing query block.
type CountFilter struct {
	LHS expr.Scalar
	Op  value.CmpOp
	Sub *CountQuery
}

// CountQuery is a correlated COUNT(*) subquery block: scan Rel, keep
// the tuples satisfying Corr (which may reference enclosing blocks)
// and every nested CountFilter, and return how many survive.
type CountQuery struct {
	Rel     string
	Corr    expr.Pred
	Filters []CountFilter
}

// JoinAggregateQuery is the outermost block of a nested
// join-aggregate query:
//
//	SELECT Proj FROM Rel WHERE Local AND <Filters>
//
// mirroring the Section 1.1 example
//
//	Select r1.a From r1
//	Where r1.b θ1 (Select count(*) From r2
//	               Where r2.c = r1.c and r2.d θ2 (Select count(*) From r3
//	                                              Where r2.e = r3.e and r1.f = r3.f))
type JoinAggregateQuery struct {
	Rel     string
	Proj    []schema.Attribute
	Local   expr.Pred // optional uncorrelated predicate; nil means true
	Filters []CountFilter
}

// TIS evaluates the query with Tuple Iteration Semantics — the
// nested-loops strategy Section 1.1 attributes to the majority of
// commercial RDBMS: for every outer tuple, each correlated subquery
// is re-evaluated from scratch. It is the reference semantics the
// unnested plan must match, and the baseline of experiment E8.
func (q *JoinAggregateQuery) TIS(db plan.Database) (*relation.Relation, error) {
	outer, ok := db[q.Rel]
	if !ok {
		return nil, fmt.Errorf("core: unknown relation %q", q.Rel)
	}
	out := relation.New(schema.New(q.Proj...))
	idx := make([]int, len(q.Proj))
	for i, a := range q.Proj {
		idx[i] = outer.Schema().IndexOf(a)
		if idx[i] < 0 {
			return nil, fmt.Errorf("core: projection %s not in %q", a, q.Rel)
		}
	}
	for _, t := range outer.Tuples() {
		env := expr.TupleEnv{Schema: outer.Schema(), Tuple: t}
		if q.Local != nil && !q.Local.Eval(env).Holds() {
			continue
		}
		ok, err := evalFilters(q.Filters, env, db)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := make(relation.Tuple, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Append(row)
	}
	return out, nil
}

func evalFilters(filters []CountFilter, env expr.Env, db plan.Database) (bool, error) {
	for _, f := range filters {
		cnt, err := f.Sub.count(env, db)
		if err != nil {
			return false, err
		}
		lhs := f.LHS.Eval(env)
		if !value.Apply(f.Op, lhs, value.NewInt(cnt)).Holds() {
			return false, nil
		}
	}
	return true, nil
}

func (cq *CountQuery) count(outerEnv expr.Env, db plan.Database) (int64, error) {
	rel, ok := db[cq.Rel]
	if !ok {
		return 0, fmt.Errorf("core: unknown relation %q", cq.Rel)
	}
	var n int64
	for _, t := range rel.Tuples() {
		env := expr.ChainEnv{
			Inner: expr.TupleEnv{Schema: rel.Schema(), Tuple: t},
			Outer: outerEnv,
		}
		if cq.Corr != nil && !cq.Corr.Eval(env).Holds() {
			continue
		}
		ok, err := evalFilters(cq.Filters, env, db)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		n++
	}
	return n, nil
}

// Unnest rewrites a tree of correlated COUNT subqueries into the
// outer-join + group-by form of [GANS87]/[MURA92] (Queries 2 and 3 of
// Section 1.1), with one refinement: the HAVING step of every
// non-outermost level is a *generalized selection* preserving the
// enclosing relations, which closes the classic count bug — tuples
// all of whose partners fail a θ filter survive NULL-padded, so the
// next level counts them as zero exactly as tuple iteration semantics
// does. This is the paper's point that GS is the primitive that makes
// such plans (and their reorderings) expressible.
//
// Filters may nest arbitrarily and a block may carry several filters;
// each is attached, recursively unnested, collapsed with a per-group
// count and filtered in sequence.
func (q *JoinAggregateQuery) Unnest(db plan.Database) (plan.Node, error) {
	var node plan.Node = plan.NewScan(q.Rel)
	if q.Local != nil {
		node = plan.NewSelect(q.Local, node)
	}
	u := &unnester{db: db}
	node, err := u.block(node, []string{q.Rel}, q.Filters, true)
	if err != nil {
		return nil, err
	}
	return plan.NewProject(q.Proj, false, node), nil
}

type unnester struct {
	db  plan.Database
	seq int
}

// block processes the filters of one query block. node carries the
// block's (and its ancestors') attributes; enclosing lists the
// relations whose rows must survive failing filters (everything up to
// and including the block's own relation). top marks the outermost
// block, whose comparisons filter outright (Query 3's HAVING).
func (u *unnester) block(node plan.Node, enclosing []string, filters []CountFilter, top bool) (plan.Node, error) {
	for _, f := range filters {
		if f.Sub == nil {
			return nil, fmt.Errorf("core: filter without a subquery")
		}
		if f.Sub.Corr == nil {
			return nil, fmt.Errorf("core: count subquery over %q has no correlation predicate", f.Sub.Rel)
		}
		sub := f.Sub.Rel
		// The grouping keys of this filter's collapse are exactly the
		// attributes in scope before the subquery attaches: one row
		// per (enclosing entity, partner) pair. Columns generated
		// inside the recursion below are per-partner values and must
		// not become keys.
		before, err := node.Schema(u.db)
		if err != nil {
			return nil, err
		}
		keys := before.Attrs()
		// Attach the subquery's relation with its correlation
		// predicate (possibly complex, as in Section 1.1's
		// r2.e = r3.e and r1.f = r3.f).
		node = plan.NewJoin(plan.LeftJoin, f.Sub.Corr, node, plan.NewScan(sub))
		// Recursively unnest the subquery's own filters; within them
		// the subquery's relation is also enclosing.
		inner, err := u.block(node, append(append([]string(nil), enclosing...), sub), f.Sub.Filters, false)
		if err != nil {
			return nil, err
		}
		node = inner
		u.seq++
		cntAttr := schema.Attr(fmt.Sprintf("q%d", u.seq), "cnt")
		node = plan.NewGroupBy(keys, []algebra.Aggregate{
			{Func: algebra.Count, Arg: expr.Col{Attr: schema.RID(sub)}, Out: cntAttr},
		}, node)
		having := expr.Cmp{Op: f.Op, L: f.LHS, R: expr.Col{Attr: cntAttr}}
		if top {
			// Outermost comparison: a plain selection, as in Query 3.
			node = plan.NewSelect(having, node)
		} else {
			// Preserve the enclosing relations so failing groups
			// NULL-pad instead of disappearing (count-bug
			// compensation). The block's own relation is excluded:
			// a partner failing the filter must not count.
			spec := plan.NewPreserved(enclosing[:len(enclosing)-1]...)
			node = plan.NewGenSel(having, []plan.PreservedSpec{spec}, node)
		}
	}
	return node, nil
}
